package spray

// hotSeeder is the capability the tiered wrapper exposes for
// profile-guided promotion; the helpers below find it through any
// wrapper layers.
type hotSeeder interface {
	SeedHotLines(lines []int)
	LineElems() int
}

// findSeeder unwraps binned+/plan+ layers (via their Inner exposure)
// until it reaches a tiered reducer, or reports that r has none.
func findSeeder[T Value](r Reducer[T]) (hotSeeder, bool) {
	for {
		if s, ok := r.(hotSeeder); ok {
			return s, true
		}
		iw, ok := r.(interface{ Inner() Reducer[T] })
		if !ok {
			return nil, false
		}
		r = iw.Inner()
	}
}

// SeedHotLines installs a profile-guided promotion set into the tiered
// layer of r: the given cache-line numbers (hottest first, in units of
// the tiered layer's LineElems) are promoted into every thread's replica
// cache at the start of each subsequent region. Wrapper layers
// (binned+hot+..., plan+hot+...) are traversed automatically. Returns
// false when r has no tiered layer. Call between regions only.
func SeedHotLines[T Value](r Reducer[T], lines []int) bool {
	s, ok := findSeeder(r)
	if !ok {
		return false
	}
	s.SeedHotLines(lines)
	return true
}

// SeedFromProfile seeds the tiered layer of r with the top k hot lines
// of a contention profile from a previous run (spraybulk -hotprofile,
// Instrumentation.HotspotProfile, or the advisor's recorder) — the
// profile-guided half of the tiered strategy's promotion policy. Line
// granularity is converted when the profile was sampled at a different
// LineElems. Returns false when r has no tiered layer or the profile is
// empty.
func SeedFromProfile[T Value](r Reducer[T], p *HotspotProfile, k int) bool {
	s, ok := findSeeder(r)
	if !ok || p == nil {
		return false
	}
	lines := p.PromotionSet(k)
	if len(lines) == 0 {
		return false
	}
	if le := s.LineElems(); p.LineElems > 0 && p.LineElems != le {
		// Rescale: map each profiled line's first element into the
		// tiered layer's line space, dropping duplicates that collapse
		// onto the same target line (order, hence heat ranking, is
		// preserved).
		seen := make(map[int]struct{}, len(lines))
		scaled := lines[:0]
		for _, ln := range lines {
			t := ln * p.LineElems / le
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			scaled = append(scaled, t)
		}
		lines = scaled
	}
	s.SeedHotLines(lines)
	return true
}

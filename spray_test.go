package spray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spray/internal/num"
)

// fig2Sequential is the paper's Figure 2 loop, sequentially.
func fig2Sequential(in []float64) []float64 {
	n := len(in)
	out := make([]float64, n+1)
	for i := 1; i < n; i++ {
		out[i-1] += 2 * in[i] // fn0
		out[i+1] += 3 * in[i] // fn1
	}
	return out
}

func testInput(n int) []float64 {
	rng := rand.New(rand.NewSource(99))
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(rng.Intn(7) - 3)
	}
	return in
}

func TestReduceForAllStrategiesFig2(t *testing.T) {
	const n = 2000
	in := testInput(n)
	want := fig2Sequential(in)
	for _, st := range AllStrategies() {
		for _, threads := range []int{1, 3, 6} {
			team := NewTeam(threads)
			out := make([]float64, n+1)
			r := ReduceFor(team, st, out, 1, n, Static(),
				func(acc Accessor[float64], from, to int) {
					for i := from; i < to; i++ {
						acc.Add(i-1, 2*in[i])
						acc.Add(i+1, 3*in[i])
					}
				})
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
			if r.Name() != st.String() {
				t.Errorf("reducer name %q != strategy %q", r.Name(), st)
			}
		}
	}
}

func TestReduceForSchedules(t *testing.T) {
	const n = 1500
	in := testInput(n)
	want := fig2Sequential(in)
	team := NewTeam(4)
	defer team.Close()
	for _, sched := range []Schedule{Static(), StaticChunk(16), Dynamic(8), Guided(4)} {
		for _, st := range []Strategy{Atomic(), BlockCAS(64), Keeper(), Dense()} {
			out := make([]float64, n+1)
			ReduceFor(team, st, out, 1, n, sched,
				func(acc Accessor[float64], from, to int) {
					for i := from; i < to; i++ {
						acc.Add(i-1, 2*in[i])
						acc.Add(i+1, 3*in[i])
					}
				})
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s %s: diff %v", st, sched, d)
			}
		}
	}
}

func TestRunReductionReuse(t *testing.T) {
	const n, regions = 800, 5
	in := testInput(n)
	oneRegion := fig2Sequential(in)
	want := make([]float64, n+1)
	for i := range want {
		want[i] = float64(regions) * oneRegion[i]
	}
	team := NewTeam(3)
	defer team.Close()
	for _, st := range []Strategy{BlockLock(128), Keeper(), Map(), Builtin()} {
		out := make([]float64, n+1)
		r := New(st, out, team.Size())
		for reg := 0; reg < regions; reg++ {
			RunReduction(team, r, 1, n, Static(),
				func(acc Accessor[float64], from, to int) {
					for i := from; i < to; i++ {
						acc.Add(i-1, 2*in[i])
						acc.Add(i+1, 3*in[i])
					}
				})
		}
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("%s: diff %v over %d regions", st, d, regions)
		}
	}
}

func TestRunReductionTeamMismatchPanics(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	r := New(Atomic(), make([]float64, 10), 4)
	defer func() {
		if recover() == nil {
			t.Error("thread-count mismatch did not panic")
		}
	}()
	RunReduction(team, r, 0, 10, Static(), func(acc Accessor[float64], from, to int) {})
}

func TestStrategyStringParseRoundTrip(t *testing.T) {
	all := append(AllStrategies(),
		BTree(8), BlockPrivate(64), BlockLock(4096), BlockCAS(16384))
	for _, st := range all {
		got, err := ParseStrategy(st.String())
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", st.String(), err)
			continue
		}
		if got != st {
			t.Errorf("round trip %q -> %v", st.String(), got)
		}
	}
}

func TestParseStrategyAliasesAndErrors(t *testing.T) {
	for _, alias := range []string{"builtin", "omp", "omp-builtin"} {
		st, err := ParseStrategy(alias)
		if err != nil || st != Builtin() {
			t.Errorf("ParseStrategy(%q) = %v, %v", alias, st, err)
		}
	}
	if st, err := ParseStrategy("block-cas"); err != nil || st != BlockCAS(DefaultBlockSize) {
		t.Errorf("bare block-cas = %v, %v", st, err)
	}
	for _, bad := range []string{"", "blocks", "block-cas-x", "block-cas--4", "btree-0"} {
		if _, err := ParseStrategy(bad); err == nil {
			t.Errorf("ParseStrategy(%q) succeeded", bad)
		}
	}
}

func TestParseStrategies(t *testing.T) {
	sts, err := ParseStrategies("atomic, keeper ,block-cas-64")
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 || sts[0] != Atomic() || sts[1] != Keeper() || sts[2] != BlockCAS(64) {
		t.Errorf("got %v", sts)
	}
	if _, err := ParseStrategies("atomic,nope"); err == nil {
		t.Error("bad list parsed")
	}
}

func TestStrategyPropertyParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		ParseStrategy(s) // must not panic, error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryReportingThroughPublicAPI(t *testing.T) {
	const n = 1 << 16
	team := NewTeam(4)
	defer team.Close()
	body := func(acc Accessor[float64], from, to int) {
		for i := from; i < to; i++ {
			acc.Add(i, 1)
		}
	}
	out := make([]float64, n)
	dense := ReduceFor(team, Dense(), out, 0, n, Static(), body)
	atomic := ReduceFor(team, Atomic(), out, 0, n, Static(), body)
	blk := ReduceFor(team, BlockCAS(1024), out, 0, n, Static(), body)
	if dense.PeakBytes() != int64(4*n*8) {
		t.Errorf("dense peak=%d, want %d", dense.PeakBytes(), 4*n*8)
	}
	if atomic.PeakBytes() != 0 {
		t.Errorf("atomic peak=%d", atomic.PeakBytes())
	}
	if blk.PeakBytes() >= dense.PeakBytes()/4 {
		t.Errorf("block peak=%d not far below dense %d", blk.PeakBytes(), dense.PeakBytes())
	}
}

func TestParallelForPublicWrapper(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	marks := make([]int32, 100)
	ParallelFor(team, 0, 100, Dynamic(3), func(tid, from, to int) {
		for i := from; i < to; i++ {
			marks[i]++
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestDefaultTeamAndClose(t *testing.T) {
	team := DefaultTeam()
	if team.Size() < 1 {
		t.Fatalf("size=%d", team.Size())
	}
	team.Close()
}

func TestFig5InputDependentPattern(t *testing.T) {
	// The paper's Figure 5: out[col[i]] += fn(in[i]) with arbitrary col.
	const n, m = 4096, 1024
	rng := rand.New(rand.NewSource(5))
	col := make([]int, n)
	in := make([]float64, n)
	for i := range col {
		col[i] = rng.Intn(m)
		in[i] = float64(rng.Intn(9) - 4)
	}
	want := make([]float64, m)
	for i := range col {
		want[col[i]] += 2 * in[i]
	}
	team := NewTeam(5)
	defer team.Close()
	for _, st := range AllStrategies() {
		out := make([]float64, m)
		ReduceFor(team, st, out, 0, n, Static(),
			func(acc Accessor[float64], from, to int) {
				for i := from; i < to; i++ {
					acc.Add(col[i], 2*in[i])
				}
			})
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("%s: diff %v", st, d)
		}
	}
}

func TestReduceForEach(t *testing.T) {
	const n = 1000
	in := testInput(n)
	want := fig2Sequential(in)
	team := NewTeam(3)
	defer team.Close()
	out := make([]float64, n+1)
	ReduceForEach(team, BlockCAS(64), out, 1, n, Dynamic(16),
		func(acc Accessor[float64], i int) {
			acc.Add(i-1, 2*in[i])
			acc.Add(i+1, 3*in[i])
		})
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("diff %v", d)
	}
}

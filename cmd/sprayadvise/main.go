// Command sprayadvise records the access pattern of a sparse-reduction
// workload and recommends a SPRAY strategy, applying the paper's §VII
// guidance ("atomics where accesses are few and without contention,
// blocks where locality is high, keeper where updates match the static
// ownership") as measurable rules. Built-in workloads cover the paper's
// three test cases plus a contended histogram.
//
// Usage:
//
//	sprayadvise -workload conv
//	sprayadvise -workload tmv -threads 8
//	sprayadvise -workload all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spray/internal/advisor"
	"spray/internal/par"
	"spray/internal/sparse"
)

func main() {
	var (
		workload = flag.String("workload", "all", "conv | tmv | graph | histogram | all")
		threads  = flag.Int("threads", 8, "threads the region would use")
		block    = flag.Int("block", 0, "block size for locality metrics (0 = spray default)")
		size     = flag.Int("n", 1_000_000, "problem size")
		iters    = flag.Int("iters", 1, "expected repetitions of the region with an identical pattern (>1 enables the iterative plan recommendation)")
	)
	flag.Parse()

	run := map[string]func(){
		"conv":      func() { conv(*size, *threads, *block, *iters) },
		"tmv":       func() { tmv(*size/10, *threads, *block, *iters) },
		"graph":     func() { graph(*size/10, *threads, *block, *iters) },
		"histogram": func() { histogram(*size, *threads, *block, *iters) },
	}
	if *workload == "all" {
		for _, name := range []string{"conv", "tmv", "graph", "histogram"} {
			run[name]()
		}
		return
	}
	fn, ok := run[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "sprayadvise: unknown workload %q\n", *workload)
		os.Exit(1)
	}
	fn()
}

// conv records the paper's Figure 9 stencil back-propagation.
func conv(n, threads, block, iters int) {
	fmt.Printf("== conv back-propagation (N=%d) ==\n", n)
	r := advisor.NewRecorder(n, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(1, n-1, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			tape.Add(i-1, 1)
			tape.Add(i, 1)
			tape.Add(i+1, 1)
		}
	}
	printReport(r.Analyze(), iters)
}

// tmv records the Figure 10 transpose-SpMV scatter on a banded matrix.
func tmv(rows, threads, block, iters int) {
	fmt.Printf("== transpose-SpMV on banded matrix (%d rows) ==\n", rows)
	a := sparse.Banded[float64](rows, rows, 9, 200, 1)
	r := advisor.NewRecorder(a.Cols, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, a.Rows, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				tape.Add(int(a.Col[k]), 1)
			}
		}
	}
	printReport(r.Analyze(), iters)
}

// graph records a PageRank-style push over a power-law graph.
func graph(nodes, threads, block, iters int) {
	fmt.Printf("== graph push (PageRank-style, %d nodes) ==\n", nodes)
	g := sparse.Graph[float64](nodes, 8, 2)
	r := advisor.NewRecorder(nodes, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, g.Rows, tid, threads)
		tape := r.Tape(tid)
		for u := from; u < to; u++ {
			for k := g.RowPtr[u]; k < g.RowPtr[u+1]; k++ {
				tape.Add(int(g.Col[k]), 1)
			}
		}
	}
	rep := r.Analyze()
	printReport(rep, iters)
	if hot := r.TopConflicts(5); len(hot) > 0 {
		fmt.Printf("hottest shared indices: %v\n\n", hot)
	}
}

// histogram records a skewed binning workload (the Figure 5 pattern).
func histogram(samples, threads, block, iters int) {
	const bins = 1 << 16
	fmt.Printf("== skewed histogram (%d samples into %d bins) ==\n", samples, bins)
	rng := rand.New(rand.NewSource(7))
	keys := make([]int32, samples)
	for i := range keys {
		if rng.Intn(10) != 0 {
			keys[i] = int32(rng.Intn(bins / 100))
		} else {
			keys[i] = int32(rng.Intn(bins))
		}
	}
	r := advisor.NewRecorder(bins, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, samples, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			tape.Add(int(keys[i]), 1)
		}
	}
	printReport(r.Analyze(), iters)
}

// printReport renders the analysis and, for repeated regions, the
// iterative recommendation beneath the one-shot one.
func printReport(rep advisor.Report, iters int) {
	fmt.Print(rep)
	if iters > 1 {
		rec := rep.RecommendIterative(iters)
		fmt.Printf("iterative (x%d)     %s — %s\n", iters, rec.Strategy, rec.Reason)
	}
	fmt.Println()
}

// Command sprayadvise records the access pattern of a sparse-reduction
// workload and recommends a SPRAY strategy, applying the paper's §VII
// guidance ("atomics where accesses are few and without contention,
// blocks where locality is high, keeper where updates match the static
// ownership") as measurable rules. Built-in workloads cover the paper's
// three test cases plus a contended histogram.
//
// Usage:
//
//	sprayadvise -workload conv
//	sprayadvise -workload tmv -threads 8
//	sprayadvise -workload all
//
// With -profile, the advisor instead reads sampled hot-line contention
// profiles (the JSON written by spraybulk/sprayall -hotprofile, or
// saved from /debug/spray/heatmap) and recommends a strategy per
// profile from the measured conflict classes, rates, and hot-line
// concentration:
//
//	spraybulk -workload conv -hotprofile hot.json
//	sprayadvise -profile hot.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spray/internal/advisor"
	"spray/internal/hotspot"
	"spray/internal/par"
	"spray/internal/sparse"
)

func main() {
	var (
		workload = flag.String("workload", "all", "conv | tmv | graph | histogram | all")
		threads  = flag.Int("threads", 8, "threads the region would use")
		block    = flag.Int("block", 0, "block size for locality metrics (0 = spray default)")
		size     = flag.Int("n", 1_000_000, "problem size")
		iters    = flag.Int("iters", 1, "expected repetitions of the region with an identical pattern (>1 enables the iterative plan recommendation)")
		profile  = flag.String("profile", "", "recommend from a sampled hot-line contention profile file instead of recording a workload")
	)
	flag.Parse()

	if *profile != "" {
		fromProfile(*profile)
		return
	}

	run := map[string]func(){
		"conv":      func() { conv(*size, *threads, *block, *iters) },
		"tmv":       func() { tmv(*size/10, *threads, *block, *iters) },
		"graph":     func() { graph(*size/10, *threads, *block, *iters) },
		"histogram": func() { histogram(*size, *threads, *block, *iters) },
	}
	if *workload == "all" {
		for _, name := range []string{"conv", "tmv", "graph", "histogram"} {
			run[name]()
		}
		return
	}
	fn, ok := run[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "sprayadvise: unknown workload %q\n", *workload)
		os.Exit(1)
	}
	fn()
}

// conv records the paper's Figure 9 stencil back-propagation.
func conv(n, threads, block, iters int) {
	fmt.Printf("== conv back-propagation (N=%d) ==\n", n)
	r := advisor.NewRecorder(n, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(1, n-1, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			tape.Add(i-1, 1)
			tape.Add(i, 1)
			tape.Add(i+1, 1)
		}
	}
	printReport(r.Analyze(), iters)
}

// tmv records the Figure 10 transpose-SpMV scatter on a banded matrix.
func tmv(rows, threads, block, iters int) {
	fmt.Printf("== transpose-SpMV on banded matrix (%d rows) ==\n", rows)
	a := sparse.Banded[float64](rows, rows, 9, 200, 1)
	r := advisor.NewRecorder(a.Cols, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, a.Rows, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				tape.Add(int(a.Col[k]), 1)
			}
		}
	}
	printReport(r.Analyze(), iters)
}

// graph records a PageRank-style push over a power-law graph.
func graph(nodes, threads, block, iters int) {
	fmt.Printf("== graph push (PageRank-style, %d nodes) ==\n", nodes)
	g := sparse.Graph[float64](nodes, 8, 2)
	r := advisor.NewRecorder(nodes, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, g.Rows, tid, threads)
		tape := r.Tape(tid)
		for u := from; u < to; u++ {
			for k := g.RowPtr[u]; k < g.RowPtr[u+1]; k++ {
				tape.Add(int(g.Col[k]), 1)
			}
		}
	}
	rep := r.Analyze()
	printReport(rep, iters)
	if hot := r.TopConflicts(5); len(hot) > 0 {
		fmt.Printf("hottest shared indices: %v\n\n", hot)
	}
}

// histogram records a skewed binning workload (the Figure 5 pattern).
func histogram(samples, threads, block, iters int) {
	const bins = 1 << 16
	fmt.Printf("== skewed histogram (%d samples into %d bins) ==\n", samples, bins)
	rng := rand.New(rand.NewSource(7))
	keys := make([]int32, samples)
	for i := range keys {
		if rng.Intn(10) != 0 {
			keys[i] = int32(rng.Intn(bins / 100))
		} else {
			keys[i] = int32(rng.Intn(bins))
		}
	}
	r := advisor.NewRecorder(bins, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, samples, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			tape.Add(int(keys[i]), 1)
		}
	}
	printReport(r.Analyze(), iters)
}

// fromProfile loads sampled contention profiles and prints one
// profile-guided recommendation per entry.
func fromProfile(path string) {
	profiles, err := hotspot.ReadProfiles(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprayadvise:", err)
		os.Exit(1)
	}
	for _, p := range profiles {
		fmt.Printf("== %s (N=%d, t=%d) ==\n", p.Strategy, p.N, p.Threads)
		total := p.TotalConflicts()
		fmt.Printf("updates            %d\n", p.Updates)
		fmt.Printf("conflict events    %d", total)
		if cls, w := p.DominantClass(); cls != "" {
			fmt.Printf(" (dominant %s: %d)", cls, w)
		}
		fmt.Println()
		if top := p.TopLines(5); len(top) > 0 {
			fmt.Printf("hottest lines      ")
			for i, l := range top {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("line %d (idx %d, %d)", l.Line, l.Index, l.Count)
			}
			fmt.Printf("\nconcentration      %.0f%% of sampled weight in the top 16 lines\n",
				100*advisor.ProfileConcentration(p, 16))
		}
		rec := advisor.RecommendFromProfile(p)
		fmt.Printf("recommendation     %s — %s\n\n", rec.Strategy, rec.Reason)
	}
}

// printReport renders the analysis and, for repeated regions, the
// iterative recommendation beneath the one-shot one.
func printReport(rep advisor.Report, iters int) {
	fmt.Print(rep)
	if iters > 1 {
		rec := rep.RecommendIterative(iters)
		fmt.Printf("iterative (x%d)     %s — %s\n", iters, rec.Strategy, rec.Reason)
	}
	fmt.Println()
}

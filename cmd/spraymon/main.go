// Command spraymon is a polling terminal monitor for a live spray
// process serving diagnostics (any harness started with -metrics-http,
// or an embedder calling spray.ServeMetrics). Each frame renders, per
// strategy, the counter rates of the last window, the movement of the
// latency percentiles, and any new anomaly or panic events from the
// structured feed; for reducers with the index-space contention
// profiler enabled (Instrumentation.EnableHotspot) it adds a heatmap
// panel — a sparkline of conflict weight across the index space from
// /debug/spray/heatmap, with the dominant conflict class and the
// hottest cache lines beneath. It scrapes /metrics (Prometheus text
// exposition) and falls back to the legacy /debug/vars expvar page
// when only that is served.
//
// Usage:
//
//	spraymon -addr localhost:6060
//	spraymon -addr localhost:6060 -interval 2s
//	spraymon -addr localhost:6060 -once      # one frame, then exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spray/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:6060", "host:port (or full URL) of the spray process to scrape")
		interval = flag.Duration("interval", time.Second, "scrape period")
		once     = flag.Bool("once", false, "render a single frame and exit (no rates on the first frame)")
		frames   = flag.Int("frames", 0, "stop after this many frames (0 = run until killed)")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	m := &obs.Monitor{BaseURL: base}

	if *once {
		fatalIf(m.Tick(os.Stdout))
		return
	}
	for n := 0; *frames <= 0 || n < *frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		if err := m.Tick(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spraymon:", err)
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spraymon:", err)
		os.Exit(1)
	}
}

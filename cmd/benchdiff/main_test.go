package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spray/internal/bench"
)

const (
	baseFixture      = "testdata/base.json"
	regressedFixture = "testdata/regressed.json"
)

// exec runs the command and returns its exit code plus captured output.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDetectsFixtureRegression(t *testing.T) {
	code, stdout, stderr := exec(t, baseFixture, regressedFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "REGRESSED") || !strings.Contains(stdout, "atomic/bulk @ 2") {
		t.Errorf("stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "regressed beyond the noise threshold") {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestCleanComparisonPasses(t *testing.T) {
	code, stdout, _ := exec(t, baseFixture, baseFixture)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "no regression") {
		t.Errorf("stdout:\n%s", stdout)
	}
}

func TestExpectRegressionSelfTest(t *testing.T) {
	if code, _, _ := exec(t, "-expect-regression", "-q", baseFixture, regressedFixture); code != 0 {
		t.Errorf("self-test on regressed fixture: exit %d, want 0", code)
	}
	if code, _, _ := exec(t, "-expect-regression", "-q", baseFixture, baseFixture); code != 1 {
		t.Errorf("self-test on identical fixture: exit %d, want 1", code)
	}
}

func TestWideNoiseBandAbsorbsFixtureRegression(t *testing.T) {
	// The fixture's 50% move disappears under a 60% relative floor.
	if code, _, _ := exec(t, "-min-rel", "0.6", "-q", baseFixture, regressedFixture); code != 0 {
		t.Errorf("exit with wide band = %d, want 0", code)
	}
}

func TestGateBootstrapsMissingBaseline(t *testing.T) {
	basePath := filepath.Join(t.TempDir(), "baseline.json")
	code, _, stderr := exec(t, "-gate", basePath, baseFixture)
	if code != 0 {
		t.Fatalf("bootstrap exit = %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "new baseline") {
		t.Errorf("stderr: %s", stderr)
	}
	promoted, err := bench.ReadFile(basePath)
	if err != nil || promoted.Schema != bench.SchemaVersion {
		t.Fatalf("promoted baseline unreadable: %v", err)
	}
	// The next gated run compares against the promoted baseline strictly.
	if code, _, _ := exec(t, "-gate", basePath, baseFixture); code != 0 {
		t.Errorf("gate against promoted baseline: exit %d, want 0", code)
	}
	if code, _, _ := exec(t, "-gate", basePath, regressedFixture); code != 1 {
		t.Errorf("gate must still fail on a real regression: exit %d, want 1", code)
	}
}

func TestGatePromotesOverLegacyBaseline(t *testing.T) {
	basePath := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(basePath, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "-gate", basePath, baseFixture)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr)
	}
	promoted, err := bench.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Legacy() {
		t.Error("legacy baseline was not replaced")
	}
}

func TestRejectsLegacyCandidate(t *testing.T) {
	candPath := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(candPath, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, baseFixture, candPath)
	if code != 2 || !strings.Contains(stderr, "re-record") {
		t.Errorf("exit = %d, stderr: %s", code, stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := exec(t, baseFixture); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code, _, _ := exec(t, "-no-such-flag", baseFixture, baseFixture); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, _ := exec(t, "missing.json", baseFixture); code != 2 {
		t.Errorf("missing baseline without -gate: exit %d, want 2", code)
	}
}

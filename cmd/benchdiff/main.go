// Command benchdiff compares two benchmark JSON files written by
// bench.WriteJSON (cmd/spraybulk -json, make bench-bulk) and reports the
// per-point deltas. It exits nonzero when any point's mean regressed
// beyond a noise threshold derived from the recorded standard deviations,
// making it usable as a CI gate:
//
//	benchdiff old.json new.json
//	benchdiff -sigma 4 -min-rel 0.10 old.json new.json
//	benchdiff -gate baseline.json new.json
//
// In -gate mode a missing, legacy or host-incompatible baseline is not an
// error: the candidate is promoted to be the new baseline and the gate
// passes, so the first run on a fresh machine bootstraps itself instead
// of failing CI. Same-host runs still gate strictly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spray/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sigma  = fs.Float64("sigma", bench.DefaultSigma, "noise band width in combined standard deviations")
		minRel = fs.Float64("min-rel", bench.DefaultMinRel, "noise band floor as a fraction of the old mean")
		gate   = fs.Bool("gate", false, "baseline-bootstrap mode: promote the candidate when the baseline is missing or not comparable")
		expect = fs.Bool("expect-regression", false, "self-test mode: exit 0 only when a regression IS detected")
		quiet  = fs.Bool("q", false, "suppress the delta table; print only the verdict")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] <baseline.json> <candidate.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	basePath, candPath := fs.Arg(0), fs.Arg(1)

	cand, err := bench.ReadFile(candPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if cand.Legacy() {
		fmt.Fprintf(stderr, "benchdiff: candidate %s predates host metadata (schema %d); re-record it\n", candPath, cand.Schema)
		return 2
	}

	base, err := bench.ReadFile(basePath)
	if err != nil {
		if *gate && os.IsNotExist(err) {
			return promote(basePath, cand, "no baseline", stderr)
		}
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	d, err := bench.DiffFiles(base, cand, bench.DiffOptions{Sigma: *sigma, MinRel: *minRel})
	if err != nil {
		if *gate {
			return promote(basePath, cand, err.Error(), stderr)
		}
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	if !*quiet {
		fmt.Fprintf(stdout, "baseline:  %s (%s)\n", basePath, base.Host)
		fmt.Fprintf(stdout, "candidate: %s (%s)\n", candPath, cand.Host)
		d.WriteTable(stdout)
	}
	regressed := d.Regressions() > 0
	if *expect {
		if !regressed {
			fmt.Fprintln(stderr, "benchdiff: expected a regression, found none")
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: regression detected as expected (%d point(s))\n", d.Regressions())
		return 0
	}
	if regressed {
		fmt.Fprintf(stderr, "benchdiff: %d point(s) regressed beyond the noise threshold\n", d.Regressions())
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: no regression")
	return 0
}

// promote installs the candidate as the new baseline (gate mode only).
func promote(basePath string, cand *bench.File, why string, stderr io.Writer) int {
	f, err := os.Create(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if err := cand.Write(f); err != nil {
		f.Close()
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	fmt.Fprintf(stderr, "benchdiff: %s — recorded %s as the new baseline\n", why, basePath)
	return 0
}

// Command schedcheck gates the schedule comparison: it reads the
// BENCH_sched.json written by `spraybulk -workload imbalance` and
// asserts the work-stealing schedule's ranking claims, point by point:
//
//   - On every imbalanced leg (every result whose title does not say
//     "uniform"), steal must beat dynamic outright and stay within
//     -guided-tol of guided at every thread count, and the geometric
//     mean of steal/guided across all imbalanced points must be <= 1 —
//     the "measurably faster" claim, robust to a single noisy point.
//   - On the uniform control leg, steal must stay within -uniform-tol
//     of static. The default tolerance is wide because on a time-sliced
//     host (CI containers: one core, many members) the OS serializes
//     the members, so a member that finishes its slice steals from
//     members that simply have not been scheduled yet; under an
//     ownership strategy (keeper) those steals manufacture foreign
//     traffic a concurrent host never sees. On real multicore, tighten
//     it toward a few percent.
//
// Exit status 0 when every claim holds, 1 with a per-violation listing
// otherwise.
//
// Usage:
//
//	schedcheck results/BENCH_sched.json
//	schedcheck -guided-tol 0.1 -uniform-tol 0.05 results/BENCH_sched.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"spray/internal/bench"
)

func main() {
	var (
		guidedTol  = flag.Float64("guided-tol", 0.20, "per-point slack for steal vs guided on imbalanced legs (0.20 = steal may be up to 20% slower at any single point; the geomean must still favor steal)")
		uniformTol = flag.Float64("uniform-tol", 0.60, "slack for steal vs static on the uniform control leg (see the command comment for why the default is wide)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: schedcheck [flags] BENCH_sched.json")
		os.Exit(2)
	}
	f, err := bench.ReadFile(flag.Arg(0))
	fatalIf(err)
	if f.Legacy() {
		fatalIf(fmt.Errorf("%s is a legacy schema-%d file; re-run spraybulk -workload imbalance", flag.Arg(0), f.Schema))
	}

	var violations []string
	var logGuided []float64 // ln(steal/guided) per imbalanced point
	var logDynamic []float64
	checked := 0
	for _, res := range f.Results {
		series := map[string][]bench.Point{}
		for _, s := range res.Series {
			series[kindOf(s.Name)] = s.Points
		}
		steal, ok := series["steal"]
		if !ok {
			continue // not a schedule-comparison result
		}
		uniform := strings.Contains(strings.ToLower(res.Title), "uniform")
		fmt.Printf("== %s ==\n", res.Title)
		for i, sp := range steal {
			th := int(sp.X)
			st := mean(series["static"], i)
			dy := mean(series["dynamic"], i)
			gu := mean(series["guided"], i)
			fmt.Printf("  t=%d  steal %s  static %s (x%.2f)  dynamic %s (x%.2f)  guided %s (x%.2f)\n",
				th, secs(sp.Time.Mean), secs(st), ratio(sp.Time.Mean, st),
				secs(dy), ratio(sp.Time.Mean, dy), secs(gu), ratio(sp.Time.Mean, gu))
			checked++
			if uniform {
				if st > 0 && sp.Time.Mean > st*(1+*uniformTol) {
					violations = append(violations, fmt.Sprintf(
						"%s t=%d: steal %.3gs vs static %.3gs exceeds the %.0f%% uniform tolerance",
						res.Title, th, sp.Time.Mean, st, *uniformTol*100))
				}
				continue
			}
			if dy > 0 {
				logDynamic = append(logDynamic, math.Log(sp.Time.Mean/dy))
				if sp.Time.Mean >= dy {
					violations = append(violations, fmt.Sprintf(
						"%s t=%d: steal %.3gs not faster than dynamic %.3gs",
						res.Title, th, sp.Time.Mean, dy))
				}
			}
			if gu > 0 {
				logGuided = append(logGuided, math.Log(sp.Time.Mean/gu))
				if sp.Time.Mean > gu*(1+*guidedTol) {
					violations = append(violations, fmt.Sprintf(
						"%s t=%d: steal %.3gs vs guided %.3gs exceeds the %.0f%% per-point tolerance",
						res.Title, th, sp.Time.Mean, gu, *guidedTol*100))
				}
			}
		}
	}
	if checked == 0 {
		fatalIf(fmt.Errorf("no schedule-comparison series (a 'steal' series) found in %s", flag.Arg(0)))
	}
	if g := geomean(logGuided); len(logGuided) > 0 {
		fmt.Printf("\nimbalanced-leg geomean: steal/guided %.3f, steal/dynamic %.3f\n", g, geomean(logDynamic))
		if g > 1 {
			violations = append(violations, fmt.Sprintf(
				"geomean steal/guided %.3f > 1: steal is not faster than guided across the imbalanced legs", g))
		}
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "\nschedcheck: %d violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Printf("schedcheck: all claims hold over %d points\n", checked)
}

// kindOf maps a series name ("dynamic(8)", "steal:4096", "static") to
// its schedule kind for lookup.
func kindOf(name string) string {
	for _, cut := range []string{"(", ":"} {
		if i := strings.Index(name, cut); i >= 0 {
			name = name[:i]
		}
	}
	if name == "static-chunk" {
		return "static"
	}
	return name
}

func mean(pts []bench.Point, i int) float64 {
	if i >= len(pts) {
		return 0
	}
	return pts[i].Time.Mean
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func secs(v float64) string {
	return bench.FormatSeconds(v)
}

func geomean(logs []float64) float64 {
	if len(logs) == 0 {
		return 0
	}
	var sum float64
	for _, l := range logs {
		sum += l
	}
	return math.Exp(sum / float64(len(logs)))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedcheck:", err)
		os.Exit(1)
	}
}

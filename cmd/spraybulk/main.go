// Command spraybulk measures the bulk-update fast path: each strategy
// runs the conv back-propagation and transpose-matrix-vector workloads
// twice — element-wise (one Add per update) and batched (AddN/Scatter) —
// and reports both series side by side.
//
// Usage:
//
//	spraybulk -n 2000000 -max-threads 8
//	spraybulk -workload tmv -json results/BENCH_bulk.json
//
// The scatter workload instead compares the plain Scatter path against
// the binned write-combining wrapper (spray.Binned) on duplicate-heavy
// streams:
//
//	spraybulk -workload scatter -json results/BENCH_scatter.json
//
// The plan workload sweeps applications-per-solve instead of threads,
// measuring how the plan-compiled wrapper (spray.Planned) amortizes its
// record+compile cost against its inner strategies and the MKL-style
// inspector/executor:
//
//	spraybulk -workload plan -json results/BENCH_plan.json
//
// The tiered workload drives a Zipfian-skewed scatter stream and a
// banded transpose-matrix-vector product through the hot/cold tiered
// wrapper (spray.Tiered) against its inner strategies, with a
// profile-guided SeedFromProfile warmup before each measured point:
//
//	spraybulk -workload tiered -json results/BENCH_tiered.json
//
// -hotprofile attaches the index-space contention profiler to every
// measured configuration and writes the sampled hot-line profiles as a
// JSON array; feed the file to sprayadvise -profile for a
// profile-guided strategy recommendation:
//
//	spraybulk -workload conv -hotprofile hot.json
//	sprayadvise -profile hot.json
//
// Both commands accept -cpuprofile / -memprofile to capture pprof
// profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spray"
	"spray/internal/bench"
	"spray/internal/cliutil"
	"spray/internal/experiments"
	"spray/internal/hotspot"
	"spray/internal/telemetry"
)

func main() {
	var (
		n          = flag.Int("n", 2_000_000, "conv array length / tmv node count")
		maxThreads = flag.Int("max-threads", 8, "largest thread count in the sweep")
		threads    = flag.String("threads", "", "explicit comma-separated thread counts (overrides -max-threads)")
		strategies = flag.String("strategies", "", "comma-separated strategy list (default: dense,atomic,block-cas,keeper)")
		workload   = flag.String("workload", "all", "workload to run: conv, tmv, scatter, plan, tiered, imbalance or all")
		schedules  = flag.String("schedule", "", "comma-separated loop schedules for the imbalance workload's comparison series (spray.ParseSchedule forms, e.g. static,dynamic:8,guided,steal:4096; default static,dynamic,guided,steal)")
		planIters  = flag.String("plan-iters", "", "comma-separated applications-per-solve counts for the plan workload (default: 1,2,4,8,16,32)")
		repeats    = flag.Int("repeats", 3, "samples per configuration")
		minTime    = flag.Duration("min-time", 100*time.Millisecond, "minimum time per sample")
		jsonPath   = flag.String("json", "results/BENCH_bulk.json", "write results as JSON to this path (empty = skip)")
		metrics    = flag.Bool("metrics", false, "instrument every run: print a telemetry region report per measured point and attach the counters to the JSON output")
		hotPath    = flag.String("hotprofile", "", "attach the index-space contention profiler and write the sampled hot-line profiles (JSON array, one per measured configuration) to this path")
		tracePath  = flag.String("trace", "", "record span timelines and write them as Chrome trace-event JSON to this path (chrome://tracing, ui.perfetto.dev)")
		prof       cliutil.Profiling
		met        cliutil.Metrics
	)
	prof.AddFlags(flag.CommandLine)
	met.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	fatalIf(err)

	cfg := experiments.DefaultBulkConfig(*n, *maxThreads)
	cfg.Runner = bench.Runner{Repeats: *repeats, MinTime: *minTime}
	var sink *telemetry.TraceSink
	if *tracePath != "" {
		sink = telemetry.NewTraceSink(0)
		cfg.Trace = sink
	}
	serving, err := met.Start()
	fatalIf(err)
	if serving {
		*metrics = true
	}
	if *metrics {
		cfg.Telemetry = true
		cfg.OnReport = func(label string, rep spray.RegionReport) {
			fmt.Printf("-- %s --\n%s\n", label, rep)
		}
	}
	var hotProfiles []*spray.HotspotProfile
	if *hotPath != "" {
		cfg.HotProfile = func(label string, p *spray.HotspotProfile) {
			if p != nil {
				hotProfiles = append(hotProfiles, p)
			}
		}
	}
	if *threads != "" {
		ths, err := cliutil.ParseInts(*threads)
		fatalIf(err)
		cfg.Threads = ths
	}
	if *strategies != "" {
		sts, err := spray.ParseStrategies(*strategies)
		fatalIf(err)
		cfg.Strategies = sts
	}

	// The scatter comparison defaults to the write-combining strategy set
	// unless the user picked strategies explicitly.
	scfg := cfg
	if *strategies == "" {
		scfg.Strategies = experiments.DefaultScatterConfig(*n, *maxThreads).Strategies
	}

	// The tiered hot/cold comparison defaults to the replication-vs-inner
	// strategy set unless the user picked strategies explicitly.
	tcfg := cfg
	if *strategies == "" {
		tcfg.Strategies = experiments.DefaultTieredConfig(*n, *maxThreads).Strategies
	}

	// The imbalance workload compares loop schedules instead of
	// strategies: -schedule picks its series, -strategies (first entry)
	// the reduction everything accumulates through.
	icfg := experiments.DefaultImbalanceConfig(*n/4, *maxThreads)
	icfg.Runner = cfg.Runner
	icfg.Threads = cfg.Threads
	icfg.Telemetry = cfg.Telemetry
	icfg.OnReport = cfg.OnReport
	if *strategies != "" {
		icfg.Strategy = cfg.Strategies[0]
	}
	if *schedules != "" {
		scheds, err := cliutil.ParseSchedules(*schedules)
		fatalIf(err)
		icfg.Schedules = scheds
	}

	// The plan amortization sweep runs at the largest team size with a
	// banded matrix sized off -n; the strategy set defaults to the
	// plan-vs-inner comparison unless overridden.
	pcfg := experiments.DefaultPlanConfig(*n/4, cfg.Threads[len(cfg.Threads)-1])
	pcfg.Runner = cfg.Runner
	pcfg.Telemetry = cfg.Telemetry
	pcfg.OnReport = cfg.OnReport
	pcfg.HotProfile = cfg.HotProfile
	if *strategies != "" {
		pcfg.Strategies = cfg.Strategies
	}
	if *planIters != "" {
		its, err := cliutil.ParseInts(*planIters)
		fatalIf(err)
		pcfg.Iterations = its
	}

	var results []*bench.Result
	switch *workload {
	case "conv":
		results = append(results, experiments.BulkConv(cfg))
	case "tmv":
		results = append(results, experiments.BulkTMV(cfg))
	case "scatter":
		results = append(results, experiments.ScatterConv(scfg), experiments.ScatterTMV(scfg))
	case "plan":
		results = append(results, experiments.PlanTMV(pcfg))
	case "tiered":
		results = append(results, experiments.TieredConv(tcfg), experiments.TieredTMV(tcfg))
	case "imbalance":
		lres, err := experiments.ImbalanceLulesh(icfg)
		fatalIf(err)
		results = append(results,
			experiments.ImbalanceSkew(icfg), experiments.ImbalanceTMV(icfg),
			lres, experiments.ImbalanceConv(icfg))
	case "all":
		lres, err := experiments.ImbalanceLulesh(icfg)
		fatalIf(err)
		results = append(results, experiments.BulkConv(cfg), experiments.BulkTMV(cfg),
			experiments.ScatterConv(scfg), experiments.ScatterTMV(scfg),
			experiments.PlanTMV(pcfg),
			experiments.TieredConv(tcfg), experiments.TieredTMV(tcfg),
			experiments.ImbalanceSkew(icfg), experiments.ImbalanceTMV(icfg),
			lres, experiments.ImbalanceConv(icfg))
	default:
		fatalIf(fmt.Errorf("unknown workload %q (want conv, tmv, scatter, plan, tiered, imbalance or all)", *workload))
	}
	for _, res := range results {
		res.WriteTable(os.Stdout)
		fmt.Println()
	}

	if *jsonPath != "" {
		if dir := filepath.Dir(*jsonPath); dir != "." {
			fatalIf(os.MkdirAll(dir, 0o755))
		}
		f, err := os.Create(*jsonPath)
		fatalIf(err)
		fatalIf(bench.WriteJSON(f, results))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if *hotPath != "" {
		fatalIf(hotspot.WriteProfiles(*hotPath, hotProfiles))
		fmt.Fprintf(os.Stderr, "wrote %s (%d hot-line profiles)\n", *hotPath, len(hotProfiles))
	}
	if sink != nil {
		f, err := os.Create(*tracePath)
		fatalIf(err)
		fatalIf(sink.WriteChrome(f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s (%d timelines, %d dropped events)\n", *tracePath, sink.Len(), sink.Dropped())
	}
	fatalIf(stopProf())
	met.Finish()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spraybulk:", err)
		os.Exit(1)
	}
}

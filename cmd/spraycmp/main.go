// Command spraycmp diffs two result CSVs produced by the figure
// harnesses (sprayconv/spraytmv/spraylulesh/sprayall -csv), in the spirit
// of benchstat: per (series, thread-count) rows with the relative time
// change and both memory columns. Use it to compare machines, spray
// versions, or tuning changes.
//
// Usage:
//
//	spraycmp old/fig14.csv new/fig14.csv
package main

import (
	"fmt"
	"os"

	"spray/internal/bench"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: spraycmp <old.csv> <new.csv>")
		os.Exit(2)
	}
	oldRes := load(os.Args[1])
	newRes := load(os.Args[2])
	fmt.Printf("comparing %s -> %s\n", os.Args[1], os.Args[2])
	bench.WriteComparison(os.Stdout, bench.Compare(oldRes, newRes))
}

func load(path string) *bench.Result {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spraycmp:", err)
		os.Exit(1)
	}
	defer f.Close()
	res, err := bench.ReadCSV(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spraycmp: %s: %v\n", path, err)
		os.Exit(1)
	}
	return res
}

// Command spraylulesh reproduces the LULESH shock-hydrodynamics
// experiment of the SPRAY paper (§VI-C / Figure 16): whole-application
// run time and force-scheme memory overhead for the original
// domain-specific 8-copy parallelization against SPRAY reducers.
//
// The paper runs a 90³ mesh for 100 iterations; the default here is 30³
// so the full sweep finishes quickly — pass -edge 90 for the paper's
// size.
//
// Usage:
//
//	spraylulesh -edge 30 -cycles 100
//	spraylulesh -schemes original,block-lock-1024 -threads 1,4
//	spraylulesh -verify block-cas-1024 -edge 30   # LULESH-style final output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spray"
	"spray/internal/cliutil"
	"spray/internal/experiments"
	"spray/internal/lulesh"
	"spray/internal/par"
)

func main() {
	var (
		edge       = flag.Int("edge", 30, "elements per mesh edge (paper: 90)")
		cycles     = flag.Int("cycles", 100, "iterations to run (paper: 100)")
		maxThreads = flag.Int("max-threads", 0, "largest thread count (0 = paper's 1..56)")
		threads    = flag.String("threads", "", "explicit comma-separated thread counts")
		schemes    = flag.String("schemes", "", `comma-separated force schemes: "original" and/or spray strategy names`)
		repeats    = flag.Int("repeats", 3, "samples per configuration")
		csvPath    = flag.String("csv", "", "also write results as CSV to this path")
		verify     = flag.String("verify", "", "run one simulation with this force scheme and print the LULESH-style final output instead of benchmarking")
		regions    = flag.Int("regions", 1, "material regions for -verify (LULESH 2.0 -r)")
		cost       = flag.Int("cost", 1, "EOS cost repetition for every 5th region (-verify only, LULESH 2.0 -c)")
		met        cliutil.Metrics
	)
	met.AddFlags(flag.CommandLine)
	flag.Parse()

	_, err := met.Start()
	fatalIf(err)
	defer met.Finish()

	if *verify != "" {
		runVerify(*verify, *edge, *cycles, *maxThreads, *regions, *cost)
		return
	}

	cfg := experiments.DefaultLuleshConfig(*edge, *cycles, *maxThreads)
	cfg.Repeats = *repeats
	if *threads != "" {
		ths, err := cliutil.ParseInts(*threads)
		fatalIf(err)
		cfg.Threads = ths
	}
	if *schemes != "" {
		cfg.Schemes = cliutil.ParseNames(*schemes)
	}

	res, err := experiments.Lulesh(cfg)
	fatalIf(err)
	res.WriteTable(os.Stdout)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatalIf(err)
		fatalIf(res.WriteCSV(f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

// runVerify runs a single simulation and prints the final-output block,
// mirroring LULESH's VerifyAndWriteFinalOutput.
func runVerify(scheme string, edge, cycles, threads, regions, cost int) {
	var fs lulesh.ForceScheme
	if scheme == "original" {
		fs = lulesh.Original()
	} else {
		st, err := spray.ParseStrategy(scheme)
		fatalIf(err)
		fs = lulesh.Spray(st)
	}
	if threads <= 0 {
		threads = 4
	}
	params := lulesh.Defaults()
	params.MaxCycles = cycles
	params.StopTime = 1e9
	params.NumRegions = regions
	params.RegionCost = cost
	d := lulesh.New(edge, params)
	team := par.NewTeam(threads)
	defer team.Close()
	start := time.Now()
	_, err := d.Run(team, fs)
	fatalIf(err)
	elapsed := time.Since(start)
	d.Summarize().Write(os.Stdout)
	fmt.Printf("   Force scheme        =  %s\n", fs.Name())
	fmt.Printf("   Scheme peak memory  =  %d bytes\n", fs.PeakBytes())
	fmt.Printf("   Elapsed time        =  %v (%d threads)\n", elapsed, threads)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spraylulesh:", err)
		os.Exit(1)
	}
}

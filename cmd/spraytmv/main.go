// Command spraytmv reproduces the CSR transpose-matrix-vector experiment
// of the SPRAY paper (§VI-B): Figures 14 (s3dkt3m2) and 15 (debr), run
// time and memory overhead for SPRAY strategies against the MKL-style
// legacy and inspector/executor baselines.
//
// Usage:
//
//	spraytmv -matrix s3dkt3m2
//	spraytmv -matrix debr -max-threads 8
//	spraytmv -matrix path/to/file.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spray"
	"spray/internal/bench"
	"spray/internal/cliutil"
	"spray/internal/experiments"
	"spray/internal/sparse"
)

func main() {
	var (
		matrix     = flag.String("matrix", "s3dkt3m2", `matrix: "s3dkt3m2", "debr", or a MatrixMarket file path`)
		seed       = flag.Int64("seed", 1, "generator seed for the synthetic matrices")
		maxThreads = flag.Int("max-threads", 0, "largest thread count (0 = paper's 1..56)")
		threads    = flag.String("threads", "", "explicit comma-separated thread counts")
		strategies = flag.String("strategies", "", "comma-separated strategy list (default: paper's set)")
		noMKL      = flag.Bool("no-mkl", false, "skip the MKL-substitute baselines")
		repeats    = flag.Int("repeats", 5, "samples per configuration")
		minTime    = flag.Duration("min-time", 200*time.Millisecond, "minimum time per sample")
		csvPath    = flag.String("csv", "", "also write results as CSV to this path")
	)
	flag.Parse()

	var (
		a   *sparse.CSR[float32]
		err error
	)
	switch *matrix {
	case "s3dkt3m2":
		fmt.Fprintln(os.Stderr, "generating s3dkt3m2-like banded matrix (90449^2, ~1.9M nnz)...")
		a = sparse.S3DKT3M2Like[float32](*seed)
	case "debr":
		fmt.Fprintln(os.Stderr, "generating debr-like broad-band matrix (1048576^2, ~4.1M nnz)...")
		a = sparse.DebrLike[float32](*seed)
	default:
		var f *os.File
		f, err = os.Open(*matrix)
		fatalIf(err)
		a, err = sparse.ReadMatrixMarket[float32](f)
		f.Close()
		fatalIf(err)
	}

	cfg := experiments.TMVConfig{
		Name:       *matrix,
		Matrix:     a,
		Threads:    bench.ThreadCounts(*maxThreads),
		Strategies: experiments.DefaultTMVStrategies(),
		Runner:     bench.Runner{Repeats: *repeats, MinTime: *minTime},
		WithMKL:    !*noMKL,
	}
	if *threads != "" {
		ths, err := cliutil.ParseInts(*threads)
		fatalIf(err)
		cfg.Threads = ths
	}
	if *strategies != "" {
		sts, err := spray.ParseStrategies(*strategies)
		fatalIf(err)
		cfg.Strategies = sts
	}

	res := experiments.TMV(cfg)
	res.WriteTable(os.Stdout)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatalIf(err)
		fatalIf(res.WriteCSV(f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spraytmv:", err)
		os.Exit(1)
	}
}

// Command sprayall runs the complete evaluation of the SPRAY
// reproduction — every figure of the paper — at a configurable scale and
// emits the tables (stdout) plus per-figure CSV files. The EXPERIMENTS.md
// numbers in this repository were produced by this command.
//
// Usage:
//
//	sprayall                   # laptop scale
//	sprayall -paper            # paper-scale problem sizes (slow)
//	sprayall -outdir results/  # also write CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spray"
	"spray/internal/bench"
	"spray/internal/cliutil"
	"spray/internal/experiments"
	"spray/internal/hotspot"
	"spray/internal/sparse"
	"spray/internal/telemetry"
)

func main() {
	var (
		paper      = flag.Bool("paper", false, "use the paper's full problem sizes (slow)")
		maxThreads = flag.Int("max-threads", 0, "largest thread count (0 = paper's 1..56)")
		outdir     = flag.String("outdir", "", "directory for per-figure CSV files")
		repeats    = flag.Int("repeats", 3, "samples per configuration")
		minTime    = flag.Duration("min-time", 100*time.Millisecond, "minimum time per sample")
		schedule   = flag.String("schedule", "", "loop schedule for the conv and tmv figure sweeps (spray.ParseSchedule form, e.g. steal or dynamic:8; default static) — rerun with different values to compare schedules across the bench CSVs")
		metrics    = flag.Bool("metrics", false, "instrument the conv figures: print a telemetry region report per measured point (stderr) and attach counters to CSV-adjacent data")
		tracePath  = flag.String("trace", "", "record span timelines for the conv figures and write them as Chrome trace-event JSON to this path")
		hotPath    = flag.String("hotprofile", "", "attach the index-space contention profiler to the conv, plan, scatter and tiered sweeps and write the sampled hot-line profiles (JSON array) to this path")
		prof       cliutil.Profiling
		met        cliutil.Metrics
	)
	prof.AddFlags(flag.CommandLine)
	met.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	fatalIf(err)

	convN, tmvScale, luleshEdge, luleshCycles := 1_000_000, 0.1, 15, 30
	if *paper {
		convN, tmvScale, luleshEdge, luleshCycles = 10_000_000, 1.0, 90, 100
	}
	runner := bench.Runner{Repeats: *repeats, MinTime: *minTime}

	fmt.Printf("spray evaluation — GOMAXPROCS=%d, paper-scale=%v\n\n", runtime.GOMAXPROCS(0), *paper)

	serving, err := met.Start()
	fatalIf(err)
	if serving {
		*metrics = true
	}
	var onReport func(label string, rep spray.RegionReport)
	if *metrics {
		onReport = func(label string, rep spray.RegionReport) {
			fmt.Fprintf(os.Stderr, "-- %s --\n%s\n", label, rep)
		}
	}

	var sink *telemetry.TraceSink
	if *tracePath != "" {
		sink = telemetry.NewTraceSink(0)
	}

	var hotProfiles []*spray.HotspotProfile
	var onHot func(label string, p *spray.HotspotProfile)
	if *hotPath != "" {
		onHot = func(label string, p *spray.HotspotProfile) {
			if p != nil {
				hotProfiles = append(hotProfiles, p)
			}
		}
	}

	var sched spray.Schedule // zero value: static, the paper's setup
	if *schedule != "" {
		sched, err = spray.ParseSchedule(*schedule)
		fatalIf(err)
	}

	// Figures 11-13: convolution back-propagation.
	convCfg := experiments.DefaultConvConfig(convN, *maxThreads)
	convCfg.Schedule = sched
	convCfg.Runner = runner
	convCfg.Instrument = *metrics
	convCfg.OnReport = onReport
	convCfg.Trace = sink
	convCfg.HotProfile = onHot
	emit(experiments.Fig11(convCfg), *outdir, "fig11.csv")
	emit(experiments.Fig12(convCfg), *outdir, "fig12.csv")
	f13 := experiments.DefaultFig13Config(convN, *maxThreads)
	f13.Runner = runner
	f13.Instrument = *metrics
	f13.OnReport = onReport
	f13.Trace = sink
	emit(experiments.Fig13(f13), *outdir, "fig13.csv")

	// Figures 14-15: transpose-matrix-vector products.
	s3 := scaleMatrix("s3dkt3m2", tmvScale)
	emit(experiments.TMV(experiments.TMVConfig{
		Name: "s3dkt3m2", Matrix: s3,
		Threads:    bench.ThreadCounts(*maxThreads),
		Strategies: experiments.DefaultTMVStrategies(),
		Runner:     runner, WithMKL: true,
		Schedule: sched,
	}), *outdir, "fig14.csv")

	debr := scaleMatrix("debr", tmvScale)
	emit(experiments.TMV(experiments.TMVConfig{
		Name: "debr", Matrix: debr,
		Threads:    bench.ThreadCounts(*maxThreads),
		Strategies: experiments.DefaultTMVStrategies(),
		Runner:     runner, WithMKL: true,
		Schedule: sched,
	}), *outdir, "fig15.csv")

	// Figure 16: LULESH.
	lcfg := experiments.DefaultLuleshConfig(luleshEdge, luleshCycles, *maxThreads)
	lcfg.Repeats = *repeats
	lres, err := experiments.Lulesh(lcfg)
	fatalIf(err)
	emit(lres, *outdir, "fig16.csv")

	// Beyond-paper strategies on the conv kernel.
	emit(experiments.Extensions(convCfg), *outdir, "extensions.csv")

	// Plan-compiled reduction: the amortization curve over repeated
	// applications on the s3dkt3m2-shaped band profile.
	ths := bench.ThreadCounts(*maxThreads)
	pcfg := experiments.DefaultPlanConfig(int(90449*tmvScale), ths[len(ths)-1])
	pcfg.Runner = runner
	pcfg.Telemetry = *metrics
	pcfg.OnReport = onReport
	pcfg.HotProfile = onHot
	emit(experiments.PlanTMV(pcfg), *outdir, "plan_tmv.csv")

	// Write-combining scatter: binned vs unbinned on the duplicate-heavy
	// conv adjoint stream and the banded transpose product.
	scfg := experiments.DefaultScatterConfig(convN/4, *maxThreads)
	scfg.Runner = runner
	scfg.Telemetry = *metrics
	scfg.OnReport = onReport
	scfg.Trace = sink
	scfg.HotProfile = onHot
	emit(experiments.ScatterConv(scfg), *outdir, "scatter_conv.csv")
	emit(experiments.ScatterTMV(scfg), *outdir, "scatter_tmv.csv")

	// Tiered hot/cold replication: the Zipfian skewed scatter stream and
	// the banded transpose product, hot+atomic vs its inner strategies.
	tcfg := experiments.DefaultTieredConfig(convN/4, *maxThreads)
	tcfg.Runner = runner
	tcfg.Telemetry = *metrics
	tcfg.OnReport = onReport
	tcfg.Trace = sink
	tcfg.HotProfile = onHot
	emit(experiments.TieredConv(tcfg), *outdir, "tiered_conv.csv")
	emit(experiments.TieredTMV(tcfg), *outdir, "tiered_tmv.csv")

	if *hotPath != "" {
		fatalIf(hotspot.WriteProfiles(*hotPath, hotProfiles))
		fmt.Fprintf(os.Stderr, "wrote %s (%d hot-line profiles)\n", *hotPath, len(hotProfiles))
	}
	if sink != nil {
		f, err := os.Create(*tracePath)
		fatalIf(err)
		fatalIf(sink.WriteChrome(f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s (%d timelines, %d dropped events)\n", *tracePath, sink.Len(), sink.Dropped())
	}
	fatalIf(stopProf())
	met.Finish()
}

// scaleMatrix generates the paper matrix (scale 1) or a proportionally
// shrunk stand-in for quick runs.
func scaleMatrix(name string, scale float64) *sparse.CSR[float32] {
	fmt.Fprintf(os.Stderr, "generating %s (scale %.2f)...\n", name, scale)
	if scale >= 1 {
		if name == "s3dkt3m2" {
			return sparse.S3DKT3M2Like[float32](1)
		}
		return sparse.DebrLike[float32](1)
	}
	if name == "s3dkt3m2" {
		rows := int(90449 * scale)
		return sparse.Banded[float32](rows, rows, 21, 600, 1)
	}
	rows := int(1048576 * scale)
	return sparse.Banded[float32](rows, rows, 4, int(500000*scale), 1)
}

func emit(res *bench.Result, outdir, csvName string) {
	res.WriteTable(os.Stdout)
	fmt.Println()
	if outdir == "" {
		return
	}
	fatalIf(os.MkdirAll(outdir, 0o755))
	path := filepath.Join(outdir, csvName)
	f, err := os.Create(path)
	fatalIf(err)
	fatalIf(res.WriteCSV(f))
	fatalIf(f.Close())
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprayall:", err)
		os.Exit(1)
	}
}

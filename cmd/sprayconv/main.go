// Command sprayconv reproduces the 1-D convolution back-propagation
// experiment of the SPRAY paper (§VI-A): Figure 11 (speedup over
// sequential per strategy and thread count), Figure 12 (best absolute
// time per implementation) and Figure 13 (block-size sweep).
//
// Usage:
//
//	sprayconv -figure 11 -n 10000000 -max-threads 56
//	sprayconv -figure 13 -n 1000000 -csv fig13.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spray"
	"spray/internal/bench"
	"spray/internal/cliutil"
	"spray/internal/experiments"
	"spray/internal/telemetry"
)

func main() {
	var (
		figure     = flag.Int("figure", 11, "figure to reproduce: 11, 12 or 13")
		n          = flag.Int("n", 10_000_000, "array length (paper: 1e7 float32)")
		maxThreads = flag.Int("max-threads", 0, "largest thread count in the sweep (0 = paper's 1..56)")
		threads    = flag.String("threads", "", "explicit comma-separated thread counts (overrides -max-threads)")
		strategies = flag.String("strategies", "", "comma-separated strategy list (default: paper's set)")
		blocks     = flag.String("blocks", "", "figure 13 block sizes (default 16..16384)")
		repeats    = flag.Int("repeats", 5, "samples per configuration")
		minTime    = flag.Duration("min-time", 200*time.Millisecond, "minimum time per sample")
		csvPath    = flag.String("csv", "", "also write results as CSV to this path")
		metrics    = flag.Bool("instrument", false, "attach telemetry to every run: print a region report (counters + latency percentiles) per measured point to stderr")
		tracePath  = flag.String("trace", "", "record span timelines and write them as Chrome trace-event JSON to this path (chrome://tracing, ui.perfetto.dev)")
		met        cliutil.Metrics
	)
	met.AddFlags(flag.CommandLine)
	flag.Parse()

	serving, err := met.Start()
	fatalIf(err)
	if serving {
		*metrics = true
	}

	cfg := experiments.DefaultConvConfig(*n, *maxThreads)
	cfg.Runner = bench.Runner{Repeats: *repeats, MinTime: *minTime}
	cfg.Instrument = *metrics
	if *metrics {
		cfg.OnReport = func(label string, rep spray.RegionReport) {
			fmt.Fprintf(os.Stderr, "-- %s --\n%s\n", label, rep)
		}
	}
	var sink *telemetry.TraceSink
	if *tracePath != "" {
		sink = telemetry.NewTraceSink(0)
		cfg.Trace = sink
	}
	if *threads != "" {
		ths, err := cliutil.ParseInts(*threads)
		fatalIf(err)
		cfg.Threads = ths
	}
	if *strategies != "" {
		sts, err := spray.ParseStrategies(*strategies)
		fatalIf(err)
		cfg.Strategies = sts
	}

	var res *bench.Result
	switch *figure {
	case 11:
		res = experiments.Fig11(cfg)
	case 12:
		res = experiments.Fig12(cfg)
	case 13:
		f13 := experiments.DefaultFig13Config(*n, *maxThreads)
		f13.ConvConfig = cfg
		if *blocks != "" {
			bs, err := cliutil.ParseInts(*blocks)
			fatalIf(err)
			f13.BlockSizes = bs
		} else {
			f13.BlockSizes = []int{16, 64, 256, 1024, 4096, 16384}
		}
		res = experiments.Fig13(f13)
	default:
		fatalIf(fmt.Errorf("unknown figure %d (want 11, 12 or 13)", *figure))
	}
	res.WriteTable(os.Stdout)
	writeCSV(res, *csvPath)
	if sink != nil {
		f, err := os.Create(*tracePath)
		fatalIf(err)
		fatalIf(sink.WriteChrome(f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s (%d timelines", *tracePath, sink.Len())
		if d := sink.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, ", %d dropped events", d)
		}
		fmt.Fprintln(os.Stderr, ")")
	}
	met.Finish()
}

func writeCSV(res *bench.Result, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fatalIf(err)
	fatalIf(res.WriteCSV(f))
	fatalIf(f.Close())
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprayconv:", err)
		os.Exit(1)
	}
}

// Command spraygen generates the synthetic sparse matrices used by the
// transpose-matrix-vector experiment and exports them as Matrix Market
// files, so runs can be repeated on identical inputs or compared against
// the real s3dkt3m2/debr files.
//
// Usage:
//
//	spraygen -kind s3dkt3m2 -o s3dkt3m2-like.mtx
//	spraygen -kind banded -rows 10000 -per-row 9 -half-band 50 -o band.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"spray/internal/sparse"
)

func main() {
	var (
		kind     = flag.String("kind", "s3dkt3m2", "matrix kind: s3dkt3m2, debr, banded, random, graph")
		rows     = flag.Int("rows", 10000, "rows (banded/random/graph)")
		cols     = flag.Int("cols", 0, "cols (0 = square)")
		perRow   = flag.Int("per-row", 9, "entries per row (banded) / average degree (graph)")
		halfBand = flag.Int("half-band", 100, "band half-width (banded)")
		nnz      = flag.Int("nnz", 100000, "nonzeros (random)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output MatrixMarket path (default stdout)")
	)
	flag.Parse()
	if *cols == 0 {
		*cols = *rows
	}

	var a *sparse.CSR[float32]
	switch *kind {
	case "s3dkt3m2":
		a = sparse.S3DKT3M2Like[float32](*seed)
	case "debr":
		a = sparse.DebrLike[float32](*seed)
	case "banded":
		a = sparse.Banded[float32](*rows, *cols, *perRow, *halfBand, *seed)
	case "random":
		a = sparse.Random[float32](*rows, *cols, *nnz, *seed)
	case "graph":
		a = sparse.Graph[float32](*rows, *perRow, *seed)
	default:
		fatalIf(fmt.Errorf("unknown kind %q", *kind))
	}
	fmt.Fprintf(os.Stderr, "generated %dx%d matrix, %d nonzeros, bandwidth %d\n",
		a.Rows, a.Cols, a.NNZ(), a.Bandwidth())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		w = f
	}
	fatalIf(sparse.WriteMatrixMarket(w, a))
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spraygen:", err)
		os.Exit(1)
	}
}

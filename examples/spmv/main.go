// SpMV: the paper's §VI-B workload as a library user would write it — a
// transpose-matrix-vector product y = Aᵀx on a CSR matrix, where the
// scattered updates y[col[k]] += v[k]*x[i] are parallelized with a SPRAY
// reducer, compared against the MKL-style baselines.
//
// Run: go run ./examples/spmv
package main

import (
	"fmt"
	"math"
	"time"

	"spray"
	"spray/internal/mkl"
	"spray/internal/par"
	"spray/internal/sparse"
)

func main() {
	const threads = 4
	fmt.Println("generating a banded test matrix (20000^2, ~9 nnz/row)...")
	a := sparse.Banded[float32](20000, 20000, 9, 200, 1)

	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = float32(i%7) * 0.25
	}
	want := make([]float32, a.Cols)
	t0 := time.Now()
	a.TMulVecSeq(x, want)
	fmt.Printf("%-22s %10v\n", "sequential", time.Since(t0))

	team := spray.NewTeam(threads)
	defer team.Close()

	for _, st := range []spray.Strategy{
		spray.Atomic(), spray.BlockLock(1024), spray.BlockCAS(1024), spray.Keeper(), spray.Dense(),
	} {
		y := make([]float32, a.Cols)
		t0 := time.Now()
		r := sparse.TMulVec(team, st, a, x, y)
		el := time.Since(t0)
		fmt.Printf("%-22s %10v   mem %9d B   maxdiff %.2g\n", r.Name(), el, r.PeakBytes(), maxDiff(y, want))
	}

	// MKL-substitute baselines (see internal/mkl for the substitution).
	pteam := par.NewTeam(threads)
	defer pteam.Close()
	y := make([]float32, a.Cols)
	t0 = time.Now()
	legacyBytes := mkl.LegacyTMulVec(pteam, a, x, y)
	fmt.Printf("%-22s %10v   mem %9d B   maxdiff %.2g\n", "mkl-legacy", time.Since(t0), legacyBytes, maxDiff(y, want))

	h := mkl.NewHandle(a)
	h.SetHint(mkl.Hint{Transpose: true, Calls: 1000})
	t0 = time.Now()
	h.Optimize()
	inspection := time.Since(t0)
	y = make([]float32, a.Cols)
	t0 = time.Now()
	h.ExecuteTMulVec(pteam, x, y)
	fmt.Printf("%-22s %10v   mem %9d B   maxdiff %.2g   (+%v one-time inspection)\n",
		"mkl-ie-hint", time.Since(t0), h.ExtraBytes(), maxDiff(y, want), inspection)
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

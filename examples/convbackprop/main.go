// Convolution back-propagation: the paper's §VI-A workload end to end —
// differentiate a 1-D stencil (the reverse-mode sweep scatters into a
// neighborhood of each index, Figure 9) and use the gradient for a few
// steps of gradient descent on the stencil weights, with the scatter
// parallelized by SPRAY.
//
// Run: go run ./examples/convbackprop
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"spray"
	"spray/internal/conv"
)

const (
	n       = 2_000_000
	threads = 4
	steps   = 5
)

func main() {
	rng := rand.New(rand.NewSource(3))
	in := make([]float32, n)
	for i := range in {
		in[i] = rng.Float32()*2 - 1
	}
	// Ground truth: a smoothing kernel the model should recover.
	target := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	wantOut := make([]float32, n)
	target.Forward(in, wantOut)

	team := spray.NewTeam(threads)
	defer team.Close()
	strategy := spray.BlockCAS(4096)

	model := conv.Weights3[float32]{WL: 0.1, WC: 0.8, WR: 0.1}
	out := make([]float32, n)
	seed := make([]float32, n)
	grad := make([]float32, n)

	fmt.Printf("learning a 3-point kernel by gradient descent (%d elements, %d goroutines, %s)\n",
		n, threads, strategy)
	for step := 0; step < steps; step++ {
		start := time.Now()
		model.Forward(in, out)
		// Loss = 0.5*Σ(out-want)²; seed = dLoss/dout.
		var loss float64
		for i := range out {
			d := out[i] - wantOut[i]
			seed[i] = d
			loss += 0.5 * float64(d) * float64(d)
		}
		// Input gradient via the parallel SPRAY scatter (Figure 9).
		clear(grad)
		model.Backprop(team, strategy, seed, grad)
		// Weight gradients (scalar reductions).
		var gl, gc, gr float64
		for i := 1; i < n-1; i++ {
			gl += float64(seed[i]) * float64(in[i-1])
			gc += float64(seed[i]) * float64(in[i])
			gr += float64(seed[i]) * float64(in[i+1])
		}
		lr := 1.0 / float64(n)
		model.WL -= float32(lr * gl)
		model.WC -= float32(lr * gc)
		model.WR -= float32(lr * gr)
		fmt.Printf("  step %d: loss %.4e  weights (%.3f %.3f %.3f)  [%v]\n",
			step, loss, model.WL, model.WC, model.WR, time.Since(start))
	}
	errW := math.Abs(float64(model.WL-target.WL)) +
		math.Abs(float64(model.WC-target.WC)) +
		math.Abs(float64(model.WR-target.WR))
	fmt.Printf("final weight error: %.3f (target %.2f %.2f %.2f)\n", errW, target.WL, target.WC, target.WR)
}

// PageRank: the graph workload the paper names as the real-world face of
// sparse transpose-matrix-vector products (§VI-B cites the GAP benchmark
// suite's CSR-based PageRank). Each iteration pushes rank along out-edges
// — rank_new[dst] += rank[src]/outdeg(src) — a data-dependent scatter
// that SPRAY parallelizes with any strategy.
//
// Run: go run ./examples/pagerank
package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spray"
	"spray/internal/sparse"
)

const (
	nodes   = 200_000
	damping = 0.85
	iters   = 20
	threads = 4
)

func main() {
	fmt.Printf("building a random power-law-ish graph with %d nodes...\n", nodes)
	g := sparse.Graph[float64](nodes, 8, 99)
	fmt.Printf("%d edges\n", g.NNZ())

	// Out-degree-normalized push weights: w[k] = 1/outdeg(src).
	norm := make([]float64, nodes)
	for u := 0; u < nodes; u++ {
		deg := g.RowPtr[u+1] - g.RowPtr[u]
		if deg > 0 {
			norm[u] = 1 / float64(deg)
		}
	}

	team := spray.NewTeam(threads)
	defer team.Close()

	run := func(st spray.Strategy) ([]float64, time.Duration) {
		rank := make([]float64, nodes)
		for i := range rank {
			rank[i] = 1.0 / nodes
		}
		next := make([]float64, nodes)
		r := spray.New(st, next, team.Size())
		start := time.Now()
		for it := 0; it < iters; it++ {
			base := (1 - damping) / nodes
			for i := range next {
				next[i] = base
			}
			spray.RunReduction(team, r, 0, nodes, spray.Static(),
				func(acc spray.Accessor[float64], from, to int) {
					// Each node's out-edge list g.Col[k0:k1] is a ready-made
					// Scatter index batch; the per-thread scratch holds the
					// replicated push value.
					bacc := spray.Bulk(acc)
					var vals []float64
					for u := from; u < to; u++ {
						push := damping * rank[u] * norm[u]
						k0, k1 := g.RowPtr[u], g.RowPtr[u+1]
						n := int(k1 - k0)
						if n == 0 {
							continue
						}
						if cap(vals) < n {
							vals = make([]float64, n)
						}
						vals = vals[:n]
						for j := range vals {
							vals[j] = push
						}
						bacc.Scatter(g.Col[k0:k1], vals)
					}
				})
			rank, next = next, rank
			// Rebind the reducer to the new target buffer.
			r = spray.New(st, next, team.Size())
		}
		return rank, time.Since(start)
	}

	ref, seqTime := run(spray.Atomic())
	fmt.Printf("%-18s %v\n", "atomic", seqTime)
	for _, st := range []spray.Strategy{spray.BlockCAS(4096), spray.Keeper(), spray.Dense()} {
		rank, el := run(st)
		var maxd float64
		for i := range rank {
			maxd = math.Max(maxd, math.Abs(rank[i]-ref[i]))
		}
		fmt.Printf("%-18s %v   maxdiff vs atomic %.2g\n", st, el, maxd)
	}

	// Show the top-ranked nodes (hubs from the generator).
	type nr struct {
		node int
		r    float64
	}
	top := make([]nr, nodes)
	for i, v := range ref {
		top[i] = nr{i, v}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top 5 nodes by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  node %6d  rank %.3e\n", t.node, t.r)
	}
	var sum float64
	for _, v := range ref {
		sum += v
	}
	fmt.Printf("rank mass: %.6f (1.0 minus dangling-node leakage)\n", sum)
}

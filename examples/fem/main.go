// FEM: parallel finite-element assembly — the overlapping-contribution
// workload of the paper's Figure 1 — followed by a conjugate-gradient
// solve of the Poisson problem −Δu = f on a cube with zero Dirichlet
// boundary values.
//
// The assembly scatters each hexahedral element's 8×8 local stiffness
// into the shared CSR value array and its load into the shared
// right-hand side; both reductions run through a SPRAY strategy that one
// line selects. The CG iteration itself uses only race-free gathers
// (matrix-vector products), showing where reductions are and are not
// needed in a real pipeline.
//
// Run: go run ./examples/fem
package main

import (
	"fmt"
	"math"
	"time"

	"spray"
	"spray/internal/fem"
	"spray/internal/mesh"
)

const (
	edge    = 16
	threads = 4
	source  = 1.0
)

func main() {
	m := mesh.NewHex(edge, 1.0)
	fmt.Printf("mesh: %d elements, %d nodes\n", m.NumElem, m.NumNode)

	start := time.Now()
	p := fem.NewProblem(m)
	fmt.Printf("symbolic assembly: %v (%d nonzeros)\n", time.Since(start), p.NNZ())

	team := spray.NewTeam(threads)
	defer team.Close()

	// Numeric assembly under several strategies: same matrix, one-line
	// switch.
	var ref []float64
	for _, st := range []spray.Strategy{spray.BlockCAS(1024), spray.Atomic(), spray.Keeper()} {
		start = time.Now()
		r := p.Assemble(team, st)
		el := time.Since(start)
		status := "ok"
		if ref == nil {
			ref = append([]float64(nil), p.Pattern.Val...)
		} else {
			for i := range ref {
				if math.Abs(ref[i]-p.Pattern.Val[i]) > 1e-9 {
					status = fmt.Sprintf("MISMATCH at %d", i)
					break
				}
			}
		}
		fmt.Printf("assemble %-16s %10v   mem %8d B   %s\n", st, el, r.PeakBytes(), status)
	}

	// Load vector via a SPRAY reduction as well.
	rhs := make([]float64, m.NumNode)
	p.AssembleLoad(team, spray.Keeper(), source, rhs)

	// Zero Dirichlet boundary: pin every node on the cube surface.
	boundary := make([]bool, m.NumNode)
	en := m.EdgeNodes
	for k := 0; k < en; k++ {
		for j := 0; j < en; j++ {
			for i := 0; i < en; i++ {
				if i == 0 || j == 0 || k == 0 || i == en-1 || j == en-1 || k == en-1 {
					boundary[k*en*en+j*en+i] = true
				}
			}
		}
	}
	for n := range rhs {
		if boundary[n] {
			rhs[n] = 0
		}
	}

	// apply computes y = K·x restricted to interior nodes.
	apply := func(x, y []float64) {
		p.Pattern.MulVec(x, y)
		for n := range y {
			if boundary[n] {
				y[n] = 0
			}
		}
	}

	// Conjugate gradients.
	u := make([]float64, m.NumNode)
	r := append([]float64(nil), rhs...)
	d := append([]float64(nil), rhs...)
	q := make([]float64, m.NumNode)
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	rr := dot(r, r)
	res0 := math.Sqrt(rr)
	start = time.Now()
	iters := 0
	for ; iters < 500 && math.Sqrt(rr) > 1e-8*res0; iters++ {
		apply(d, q)
		alpha := rr / dot(d, q)
		for i := range u {
			u[i] += alpha * d[i]
			r[i] -= alpha * q[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range d {
			d[i] = r[i] + beta*d[i]
		}
	}
	fmt.Printf("CG: %d iterations, relative residual %.2e, %v\n",
		iters, math.Sqrt(rr)/res0, time.Since(start))

	// Physics check: the solution peaks at the cube center, is positive
	// inside and zero on the boundary.
	center := (en / 2) * (en*en + en + 1)
	peak, peakAt := 0.0, -1
	for n, v := range u {
		if v > peak {
			peak, peakAt = v, n
		}
	}
	fmt.Printf("u(center) = %.6f, max u = %.6f at node %d (center node %d)\n",
		u[center], peak, peakAt, center)
	// Reference: max of −Δu = 1 on unit cube with zero BC is ≈ 0.056.
	if math.Abs(peak-0.056) < 0.01 {
		fmt.Println("matches the analytic Poisson peak (~0.056) — solve verified")
	} else {
		fmt.Println("WARNING: peak far from the analytic value 0.056")
	}
}

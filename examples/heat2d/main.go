// Heat2D: adjoint sensitivity analysis of a 2-D diffusion solve, using
// the multi-dimensional extension (spray.Reducer2D) the paper lists as
// future work.
//
// A linear 5-point diffusion stencil is stepped K times from an initial
// temperature field; the objective is the final temperature at a probe
// point. Reverse-mode differentiation of each step is the transposed
// stencil — a 2-D scatter parallelized by SPRAY — and because the
// operator is linear, K adjoint sweeps of the probe indicator give the
// exact gradient of the objective with respect to the *entire* initial
// condition in one backward pass. The program verifies the gradient
// against a finite-difference directional derivative.
//
// Run: go run ./examples/heat2d
package main

import (
	"fmt"
	"math/rand"
	"time"

	"spray"
	"spray/internal/conv"
)

const (
	rows, cols = 400, 400
	steps      = 50
	alpha      = 0.1 // diffusion number (stable: <= 0.25)
	threads    = 4
)

// diffusion is the explicit 5-point scheme u' = u + alpha*laplacian(u).
var diffusion = conv.Stencil2D[float64]{Taps: [][]float64{
	{0, alpha, 0},
	{alpha, 1 - 4*alpha, alpha},
	{0, alpha, 0},
}}

// forward advances the field n steps (interior only; boundaries held).
func forward(u []float64, n int) []float64 {
	cur := append([]float64(nil), u...)
	next := make([]float64, len(u))
	for s := 0; s < n; s++ {
		copy(next, cur) // keep boundary values
		diffusion.Forward(cur, next, rows, cols)
		cur, next = next, cur
	}
	return cur
}

func main() {
	team := spray.NewTeam(threads)
	defer team.Close()
	strategy := spray.BlockCAS(4096)

	// Initial condition: a hot square off-center.
	u0 := make([]float64, rows*cols)
	for i := 150; i < 200; i++ {
		for j := 100; j < 150; j++ {
			u0[i*cols+j] = 100
		}
	}
	probe := 202*cols + 125 // two cells below the hot square's edge

	start := time.Now()
	uT := forward(u0, steps)
	fwdTime := time.Since(start)
	fmt.Printf("forward %d steps on %dx%d grid: %v (probe temperature %.4f)\n",
		steps, rows, cols, fwdTime, uT[probe])

	// Adjoint: seed the probe, scatter backwards through each step with
	// a 2-D SPRAY reduction. grad = (Sᵀ)^steps e_probe.
	grad := make([]float64, rows*cols)
	grad[probe] = 1
	start = time.Now()
	next := make([]float64, rows*cols)
	for s := 0; s < steps; s++ {
		clear(next)
		r := diffusion.Backprop(team, strategy, grad, next, rows, cols)
		grad, next = next, grad
		_ = r
	}
	adjTime := time.Since(start)
	fmt.Printf("adjoint %d steps (%s): %v\n", steps, strategy, adjTime)

	// Verify: <grad, delta> must equal the directional derivative of the
	// probe objective along a random perturbation (exactly, up to float
	// error, since the operator is linear).
	rng := rand.New(rand.NewSource(1))
	delta := make([]float64, rows*cols)
	for i := range delta {
		delta[i] = rng.Float64() - 0.5
	}
	var dot float64
	for i := range grad {
		dot += grad[i] * delta[i]
	}
	pert := make([]float64, rows*cols)
	for i := range pert {
		pert[i] = u0[i] + delta[i]
	}
	dirDeriv := forward(pert, steps)[probe] - uT[probe]
	fmt.Printf("adjoint <grad,delta> = %.10f\n", dot)
	fmt.Printf("finite difference    = %.10f\n", dirDeriv)
	rel := (dot - dirDeriv) / dirDeriv
	fmt.Printf("relative error %.2e — adjoint gradient %s\n", rel, verdict(rel))
}

func verdict(rel float64) string {
	if rel < 1e-8 && rel > -1e-8 {
		return "verified"
	}
	return "MISMATCH"
}

// Histogram: the paper's Figure 5 pattern — reduction locations that
// depend on input data (out[col[i]] += fn(in[i])) — on a workload where
// the *input distribution* decides which strategy wins, the paper's
// motivation for making strategies swappable.
//
// Two distributions are binned into a weighted histogram:
//   - "uniform": keys spread across all bins — little contention, atomics
//     are fine and use no memory;
//   - "skewed": 90% of keys hit 1% of bins — contended cache lines, so
//     privatizing strategies (blocks) pull ahead.
//
// Run: go run ./examples/histogram
package main

import (
	"fmt"
	"math/rand"
	"time"

	"spray"
)

const (
	nSamples = 4_000_000
	nBins    = 1 << 16
	threads  = 4
)

func makeKeys(skewed bool, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int32, nSamples)
	for i := range keys {
		if skewed && rng.Intn(10) != 0 {
			keys[i] = int32(rng.Intn(nBins / 100)) // hot 1% of bins
		} else {
			keys[i] = int32(rng.Intn(nBins))
		}
	}
	return keys
}

func main() {
	team := spray.NewTeam(threads)
	defer team.Close()

	strategies := []spray.Strategy{
		spray.Atomic(),
		spray.BlockCAS(1024),
		spray.Keeper(),
		spray.Dense(),
	}

	for _, dist := range []struct {
		name   string
		skewed bool
	}{{"uniform", false}, {"skewed", true}} {
		keys := makeKeys(dist.skewed, 7)
		fmt.Printf("\n%s key distribution (%d samples into %d bins, %d goroutines):\n",
			dist.name, nSamples, nBins, threads)

		// Sequential reference.
		want := make([]float64, nBins)
		t0 := time.Now()
		for _, k := range keys {
			want[k] += 1
		}
		seq := time.Since(t0)
		fmt.Printf("  %-16s %10v\n", "sequential", seq)

		// Scatter batches share one constant weight buffer: the key slice
		// itself is the index batch, cut into tiles.
		const tile = 4096
		ones := make([]float64, tile)
		for i := range ones {
			ones[i] = 1
		}

		for _, st := range strategies {
			hist := make([]float64, nBins)
			t0 := time.Now()
			r := spray.ReduceFor(team, st, hist, 0, len(keys), spray.Static(),
				func(acc spray.Accessor[float64], from, to int) {
					bacc := spray.Bulk(acc)
					for i := from; i < to; i += tile {
						m := min(tile, to-i)
						bacc.Scatter(keys[i:i+m], ones[:m])
					}
				})
			el := time.Since(t0)
			ok := "ok"
			for b := range hist {
				if hist[b] != want[b] {
					ok = fmt.Sprintf("WRONG at bin %d", b)
					break
				}
			}
			fmt.Printf("  %-16s %10v   mem %8d B   %s\n", r.Name(), el, r.PeakBytes(), ok)
		}
	}
	fmt.Println("\nSwap the winner in with one line — the loop body never changes.")
}

// Quickstart: the paper's Figure 6/7 usage pattern in Go.
//
// A sparse reduction — many goroutines executing out[i] += v where each
// touches only part of out — is wrapped in a SPRAY reducer so the
// strategy (privatization, atomics, blocks, keeper, ...) becomes a
// one-line choice. Run it, then change one line (the strategy) and run
// again:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -strategy atomic
//	go run ./examples/quickstart -strategy keeper
//	go run ./examples/quickstart -strategy block-cas-1024 -instrument
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"spray"
)

func fn0(v float64) float64 { return 2 * v }
func fn1(v float64) float64 { return 3 * v }

func main() {
	strategyName := flag.String("strategy", "block-cas-1024", "reduction strategy (see spray.AllStrategies)")
	n := flag.Int("n", 1_000_000, "array size")
	threads := flag.Int("threads", 4, "goroutines")
	instrument := flag.Bool("instrument", false, "attach telemetry and print the region report")
	flag.Parse()

	// The one line that selects the implementation — everything below
	// is strategy-independent (the paper's drop-in-replacement claim).
	strategy, err := spray.ParseStrategy(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	in := make([]float64, *n)
	for i := range in {
		in[i] = float64(i % 10)
	}
	out := make([]float64, *n+1)

	team := spray.NewTeam(*threads)
	defer team.Close()

	r := spray.New(strategy, out, *threads)

	// Telemetry is opt-in: with -instrument the reducer counts its
	// strategy events and the team times its regions; without it the run
	// pays nothing.
	var ins *spray.Instrumentation
	if *instrument {
		ins = spray.Instrument(team, r)
		defer ins.Detach()
	}

	// The paper's Figure 2 loop: two scattered updates per iteration
	// create loop-carried dependencies that forbid naive parallelism.
	// RunReduction makes it safe under any strategy.
	spray.RunReduction(team, r, 1, *n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := from; i < to; i++ {
				acc.Add(i-1, fn0(in[i]))
				acc.Add(i+1, fn1(in[i]))
			}
		})

	// Verify against the sequential loop.
	want := make([]float64, *n+1)
	for i := 1; i < *n; i++ {
		want[i-1] += fn0(in[i])
		want[i+1] += fn1(in[i])
	}
	for i := range want {
		if out[i] != want[i] {
			fmt.Fprintf(os.Stderr, "MISMATCH at %d: %v != %v\n", i, out[i], want[i])
			os.Exit(1)
		}
	}
	fmt.Printf("strategy %-18s threads %d  n %d  -> correct; peak strategy memory %d bytes\n",
		r.Name(), *threads, *n, r.PeakBytes())
	if ins != nil {
		fmt.Print(ins.Report())
	}
}

package spray

import (
	"fmt"

	"spray/internal/par"
)

// Multi-dimensional support — the paper's §II limitation ("so far, SPRAY
// supports only one-dimensional arrays") and §IX outlook. A Reducer2D
// wraps a row-major rows×cols array and exposes 2-D indexing over any 1-D
// strategy; correctness follows directly from the 1-D reducer contract
// because the index mapping is a bijection.

// Accessor2D is the per-goroutine handle of a 2-D reduction.
type Accessor2D[T Value] struct {
	acc  BulkAccessor[T]
	cols int
}

// Add accumulates v into position (i, j).
func (a Accessor2D[T]) Add(i, j int, v T) { a.acc.Add(i*a.cols+j, v) }

// AddN accumulates a contiguous run within row i starting at column j:
// out[i][j+m] += vals[m]. The run must not cross the row boundary (that
// would silently wrap into the next row); it maps to a single 1-D AddN,
// so the underlying strategy's bulk fast path applies.
func (a Accessor2D[T]) AddN(i, j int, vals []T) { a.acc.AddN(i*a.cols+j, vals) }

// Done marks the end of this goroutine's updates for the region.
func (a Accessor2D[T]) Done() { a.acc.Done() }

// Reducer2D wraps a row-major matrix with a reduction strategy.
type Reducer2D[T Value] struct {
	r          Reducer[T]
	rows, cols int
}

// New2D constructs a 2-D reducer over the row-major matrix out (length
// rows*cols) for a team of the given size.
func New2D[T Value](st Strategy, out []T, rows, cols, threads int) Reducer2D[T] {
	if rows < 0 || cols < 0 || len(out) != rows*cols {
		panic(fmt.Sprintf("spray: New2D with %d elements for %dx%d", len(out), rows, cols))
	}
	return Reducer2D[T]{r: New(st, out, threads), rows: rows, cols: cols}
}

// Private returns the 2-D accessor for thread tid.
func (r Reducer2D[T]) Private(tid int) Accessor2D[T] {
	return Accessor2D[T]{acc: Bulk(r.r.Private(tid)), cols: r.cols}
}

// Finalize runs the underlying strategy's fix-up step serially.
func (r Reducer2D[T]) Finalize() { r.r.Finalize() }

// FinalizeWith runs the fix-up step using the team where possible.
func (r Reducer2D[T]) FinalizeWith(t *Team) { r.r.FinalizeWith(t) }

// Bytes reports the strategy's current extra memory.
func (r Reducer2D[T]) Bytes() int64 { return r.r.Bytes() }

// PeakBytes reports the strategy's extra-memory high-water mark.
func (r Reducer2D[T]) PeakBytes() int64 { return r.r.PeakBytes() }

// Name identifies the underlying strategy.
func (r Reducer2D[T]) Name() string { return r.r.Name() }

// Rows returns the wrapped matrix's row count.
func (r Reducer2D[T]) Rows() int { return r.rows }

// Cols returns the wrapped matrix's column count.
func (r Reducer2D[T]) Cols() int { return r.cols }

// ReduceFor2D runs one parallel region over the row range [rowLo, rowHi)
// of a rows×cols matrix: each team member receives a 2-D accessor and a
// chunk of rows. The matrix must have been wrapped with New2D using
// threads == t.Size().
func ReduceFor2D[T Value](t *Team, st Strategy, out []T, rows, cols, rowLo, rowHi int, s Schedule,
	body func(acc Accessor2D[T], fromRow, toRow int)) Reducer2D[T] {
	r := New2D(st, out, rows, cols, t.Size())
	RunReduction2D(t, r, rowLo, rowHi, s, body)
	return r
}

// RunReduction2D is the reusable-reducer form of ReduceFor2D.
func RunReduction2D[T Value](t *Team, r Reducer2D[T], rowLo, rowHi int, s Schedule,
	body func(acc Accessor2D[T], fromRow, toRow int)) {
	if r.r.Threads() != t.Size() {
		panic("spray: 2-D reducer thread count does not match team size")
	}
	c := par.NewChunker(s, rowLo, rowHi, t.Size())
	t.Run(func(tid int) {
		acc := r.Private(tid)
		c.For(tid, func(from, to int) { body(acc, from, to) })
		acc.Done()
	})
	r.FinalizeWith(t)
}

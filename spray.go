// Package spray is a Go reproduction of the SPRAY library from
// "Spray: Sparse Reductions of Arrays in OpenMP" (Hückelheim & Doerfert,
// 2021): interchangeable reducer objects for concurrent sparse reductions
// into arrays.
//
// A reduction here means many goroutines collaboratively performing
// "out[i] += v" where each goroutine touches only part of out. SPRAY
// separates the intent (safely accumulate) from the implementation
// (privatize, use atomics, claim blocks, queue with owners, ...) behind
// one minimal interface, so the strategy can be swapped with a one-line
// change:
//
//	team := spray.NewTeam(8)
//	defer team.Close()
//	spray.ReduceFor(team, spray.BlockCAS(1024), out, 1, n, spray.Static(),
//		func(acc spray.Accessor[float64], from, to int) {
//			for i := from; i < to; i++ {
//				acc.Add(i-1, fn0(in[i]))
//				acc.Add(i+1, fn1(in[i]))
//			}
//		})
//
// Replace BlockCAS(1024) with Atomic(), Keeper(), Dense(), ... and nothing
// else changes; every strategy guarantees all contributions are visible in
// out when ReduceFor returns. For repeated regions over the same array
// (time loops), construct a Reducer once with New and drive it with
// RunReduction to reuse its internal allocations.
package spray

import (
	"runtime"

	"spray/internal/core"
	"spray/internal/num"
	"spray/internal/par"
)

// Value is the element type constraint for reducers: any floating-point
// array element type.
type Value = num.Float

// Accessor is the per-goroutine handle used inside a parallel region in
// place of the original array; Add is the equivalent of the paper's
// overloaded "+=" on a reducer object. An Accessor must only be used by
// the goroutine it was issued to.
type Accessor[T Value] interface {
	// Add accumulates v into position i of the wrapped array.
	Add(i int, v T)
	// Done marks the end of this goroutine's updates for the region.
	// RunReduction and ReduceFor call it for you.
	Done()
}

// Reducer wraps a target array with a reduction strategy. Private hands
// out per-thread Accessors; after Finalize returns, every contribution
// made through any Accessor is visible in the wrapped array and the
// Reducer is ready for the next region.
type Reducer[T Value] interface {
	// Private returns the Accessor for thread tid in [0, Threads()).
	Private(tid int) Accessor[T]
	// Finalize runs the strategy's fix-up/combine step serially.
	Finalize()
	// FinalizeWith runs the fix-up step using the team when the
	// strategy can parallelize it, falling back to Finalize otherwise.
	FinalizeWith(t *Team)
	// Bytes reports the strategy's current extra memory in bytes.
	Bytes() int64
	// PeakBytes reports the high-water mark of extra memory.
	PeakBytes() int64
	// Name identifies the strategy, e.g. "block-cas-1024".
	Name() string
	// Threads returns the team size the Reducer was built for.
	Threads() int
}

// Team re-exports the goroutine team of the parallel runtime; it plays the
// role of an OpenMP thread team. Create with NewTeam, reuse across
// regions, Close when done.
type Team = par.Team

// Schedule re-exports the loop schedules of the parallel runtime.
type Schedule = par.Schedule

// NewTeam creates a team with n members (n >= 1).
func NewTeam(n int) *Team { return par.NewTeam(n) }

// DefaultTeam creates a team sized to GOMAXPROCS.
func DefaultTeam() *Team { return par.NewTeam(runtime.GOMAXPROCS(0)) }

// Static returns the default OpenMP schedule (one contiguous chunk per
// thread) used in all of the paper's experiments.
func Static() Schedule { return par.Static() }

// StaticChunk returns a round-robin static schedule with fixed chunks.
func StaticChunk(c int) Schedule { return par.StaticChunk(c) }

// Dynamic returns a first-come-first-served schedule with the given chunk
// size (<= 0 selects the OpenMP default of 1).
func Dynamic(c int) Schedule { return par.Dynamic(c) }

// Guided returns a shrinking-chunk schedule with the given minimum chunk.
func Guided(c int) Schedule { return par.Guided(c) }

// ParallelFor executes [lo, hi) on the team under the schedule, invoking
// body once per assigned chunk — a plain parallel loop with no reduction.
func ParallelFor(t *Team, lo, hi int, s Schedule, body func(tid, from, to int)) {
	par.ParallelFor(t, lo, hi, s, body)
}

// adapter lifts a core reducer into the public interface. The only reason
// it exists is Go's nominal matching of method signatures across packages;
// it adds one interface conversion per thread per region.
type adapter[T Value] struct{ r core.Reducer[T] }

func (a adapter[T]) Private(tid int) Accessor[T] { return a.r.Private(tid) }
func (a adapter[T]) Finalize()                   { a.r.Finalize() }
func (a adapter[T]) Bytes() int64                { return a.r.Bytes() }
func (a adapter[T]) PeakBytes() int64            { return a.r.PeakBytes() }
func (a adapter[T]) Name() string                { return a.r.Name() }
func (a adapter[T]) Threads() int                { return a.r.Threads() }

func (a adapter[T]) FinalizeWith(t *Team) {
	if pf, ok := a.r.(core.ParallelFinalizer); ok {
		pf.FinalizeWith(t)
		return
	}
	a.r.Finalize()
}

// New constructs a Reducer applying strategy st to out for a team of the
// given size. The constructor itself is cheap; strategy-specific memory is
// allocated lazily per thread (the paper's init semantics).
func New[T Value](st Strategy, out []T, threads int) Reducer[T] {
	var r core.Reducer[T]
	switch st.kind {
	case kindBuiltin:
		r = core.NewBuiltin(out, threads)
	case kindDense:
		r = core.NewDense(out, threads)
	case kindAtomic:
		r = core.NewAtomic(out, threads)
	case kindMap:
		r = core.NewMap(out, threads)
	case kindBTree:
		r = core.NewBTree(out, threads, st.param)
	case kindBlockPrivate:
		r = core.NewBlock(out, threads, st.param, core.BlockPrivate)
	case kindBlockLock:
		r = core.NewBlock(out, threads, st.param, core.BlockLock)
	case kindBlockCAS:
		r = core.NewBlock(out, threads, st.param, core.BlockCAS)
	case kindKeeper:
		r = core.NewKeeper(out, threads)
	case kindOrdered:
		r = core.NewOrdered(out, threads)
	case kindAuto:
		r = core.NewAdaptive(out, threads, st.param)
	case kindCompensated:
		r = core.NewCompensated(out, threads)
	default:
		panic("spray: unknown strategy " + st.String())
	}
	return adapter[T]{r: r}
}

// RunReduction executes one parallel region over [lo, hi): each team
// member receives its Accessor, processes its chunks through body, and the
// reducer is finalized with the team. The Reducer must have been built
// with threads == t.Size().
func RunReduction[T Value](t *Team, r Reducer[T], lo, hi int, s Schedule, body func(acc Accessor[T], from, to int)) {
	if r.Threads() != t.Size() {
		panic("spray: reducer thread count does not match team size")
	}
	c := par.NewChunker(s, lo, hi, t.Size())
	t.Run(func(tid int) {
		acc := r.Private(tid)
		c.For(tid, func(from, to int) { body(acc, from, to) })
		acc.Done()
	})
	r.FinalizeWith(t)
}

// ReduceFor is the one-shot convenience driver: build a Reducer for st,
// run the region, finalize, and return the Reducer (for its memory
// statistics). Equivalent to the paper's wrap-and-annotate usage pattern.
func ReduceFor[T Value](t *Team, st Strategy, out []T, lo, hi int, s Schedule, body func(acc Accessor[T], from, to int)) Reducer[T] {
	r := New(st, out, t.Size())
	RunReduction(t, r, lo, hi, s, body)
	return r
}

// ReduceForEach is the per-index form of ReduceFor, closest to the
// paper's source listings; prefer the chunked form for tight inner
// loops.
func ReduceForEach[T Value](t *Team, st Strategy, out []T, lo, hi int, s Schedule, body func(acc Accessor[T], i int)) Reducer[T] {
	return ReduceFor(t, st, out, lo, hi, s, func(acc Accessor[T], from, to int) {
		for i := from; i < to; i++ {
			body(acc, i)
		}
	})
}

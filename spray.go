// Package spray is a Go reproduction of the SPRAY library from
// "Spray: Sparse Reductions of Arrays in OpenMP" (Hückelheim & Doerfert,
// 2021): interchangeable reducer objects for concurrent sparse reductions
// into arrays.
//
// A reduction here means many goroutines collaboratively performing
// "out[i] += v" where each goroutine touches only part of out. SPRAY
// separates the intent (safely accumulate) from the implementation
// (privatize, use atomics, claim blocks, queue with owners, ...) behind
// one minimal interface, so the strategy can be swapped with a one-line
// change:
//
//	team := spray.NewTeam(8)
//	defer team.Close()
//	spray.ReduceFor(team, spray.BlockCAS(1024), out, 1, n, spray.Static(),
//		func(acc spray.Accessor[float64], from, to int) {
//			for i := from; i < to; i++ {
//				acc.Add(i-1, fn0(in[i]))
//				acc.Add(i+1, fn1(in[i]))
//			}
//		})
//
// Replace BlockCAS(1024) with Atomic(), Keeper(), Dense(), ... and nothing
// else changes; every strategy guarantees all contributions are visible in
// out when ReduceFor returns. For repeated regions over the same array
// (time loops), construct a Reducer once with New and drive it with
// RunReduction to reuse its internal allocations.
package spray

import (
	"runtime"

	"spray/internal/core"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/plan"
	"spray/internal/scatter"
)

// Value is the element type constraint for reducers: any floating-point
// array element type.
type Value = num.Float

// Accessor is the per-goroutine handle used inside a parallel region in
// place of the original array; Add is the equivalent of the paper's
// overloaded "+=" on a reducer object. An Accessor must only be used by
// the goroutine it was issued to.
//
// It is a generic alias for the core accessor interface, so reducers
// constructed by New hand their concrete accessors straight to the body
// with no wrapping layer in between. The methods are:
//
//	Add(i int, v T)  // accumulate v into position i
//	Done()           // end of this goroutine's updates for the region
//
// RunReduction and ReduceFor call Done for you.
type Accessor[T Value] = core.Private[T]

// BulkAccessor extends Accessor with the batched update entry points:
//
//	AddN(base int, vals []T)        // out[base+j] += vals[j]
//	Scatter(idx []int32, vals []T)  // out[idx[j]] += vals[j]
//
// Both are exactly equivalent to the element-wise Add loop in ascending
// batch order (bitwise, including compensated-summation order), but pay
// one dynamic dispatch per batch instead of one per element and let each
// strategy exploit the batch structure (a block reducer resolves the
// target block once per run, the keeper partitions a scatter by owner
// with whole-slice appends, ...). Obtain one with Bulk.
type BulkAccessor[T Value] = core.BulkPrivate[T]

// Bulk upgrades an Accessor to its bulk interface. Every strategy built
// by New implements the bulk methods natively, so this is a single type
// assertion; third-party accessors that only implement Add are wrapped
// in an element-wise shim. Call it once per chunk, outside the inner
// loop.
func Bulk[T Value](acc Accessor[T]) BulkAccessor[T] { return core.AsBulk(acc) }

// Reducer wraps a target array with a reduction strategy. Private hands
// out per-thread Accessors; after Finalize returns, every contribution
// made through any Accessor is visible in the wrapped array and the
// Reducer is ready for the next region.
//
// It is a generic alias for the core reducer interface; New returns the
// concrete strategy behind this interface directly, with no adapter
// layer. The methods are:
//
//	Private(tid int) Accessor[T]  // per-thread accessor, tid in [0, Threads())
//	Finalize()                    // serial fix-up/combine step
//	FinalizeWith(t *Team)         // fix-up using the team where the strategy
//	                              // can parallelize it (else same as Finalize)
//	Bytes() int64                 // current extra memory in bytes
//	PeakBytes() int64             // high-water mark of extra memory
//	Name() string                 // strategy name, e.g. "block-cas-1024"
//	Threads() int                 // team size the Reducer was built for
type Reducer[T Value] = core.Reducer[T]

// Team re-exports the goroutine team of the parallel runtime; it plays the
// role of an OpenMP thread team. Create with NewTeam, reuse across
// regions, Close when done.
type Team = par.Team

// Schedule re-exports the loop schedules of the parallel runtime.
type Schedule = par.Schedule

// NewTeam creates a team with n members (n >= 1).
func NewTeam(n int) *Team { return par.NewTeam(n) }

// DefaultTeam creates a team sized to GOMAXPROCS.
func DefaultTeam() *Team { return par.NewTeam(runtime.GOMAXPROCS(0)) }

// Static returns the default OpenMP schedule (one contiguous chunk per
// thread) used in all of the paper's experiments.
func Static() Schedule { return par.Static() }

// StaticChunk returns a round-robin static schedule with fixed chunks.
func StaticChunk(c int) Schedule { return par.StaticChunk(c) }

// Dynamic returns a first-come-first-served schedule with the given chunk
// size (<= 0 selects the OpenMP default of 1).
func Dynamic(c int) Schedule { return par.Dynamic(c) }

// Guided returns a shrinking-chunk schedule with the given minimum chunk.
func Guided(c int) Schedule { return par.Guided(c) }

// Steal returns the work-stealing schedule: members start on their
// static slices (preserving keeper/tiered ownership locality) and steal
// chunks from the nearest busy member when they run dry, with adaptive
// grain sizing. grain <= 0 selects an automatic minimum grain.
func Steal(grain int) Schedule { return par.Steal(grain) }

// ParseSchedule parses a schedule from its string form — "static",
// "static:64", "dynamic:8", "guided", "steal:4096", ... — for CLI flags
// and config files.
func ParseSchedule(s string) (Schedule, error) { return par.ParseSchedule(s) }

// ParallelFor executes [lo, hi) on the team under the schedule, invoking
// body once per assigned chunk — a plain parallel loop with no reduction.
func ParallelFor(t *Team, lo, hi int, s Schedule, body func(tid, from, to int)) {
	par.ParallelFor(t, lo, hi, s, body)
}

// New constructs a Reducer applying strategy st to out for a team of the
// given size. The constructor itself is cheap; strategy-specific memory is
// allocated lazily per thread (the paper's init semantics). The returned
// interface is backed by the concrete strategy type directly — there is
// no adapter layer between the public API and the implementation.
func New[T Value](st Strategy, out []T, threads int) Reducer[T] {
	r := newInner(st, out, threads)
	if st.tiered {
		// The hot-set cache sits directly on the base strategy: staged
		// layers above it (bins, plans) then see the temperature split
		// through the cache's BinFlusher/BlockSize forwarding.
		r = core.NewTiered(r, out, core.TieredConfig{})
	}
	if st.binned {
		r = core.NewBinned(r, out, scatter.Config{})
	}
	if st.planned {
		// The plan wrapper goes outermost so record mode captures the
		// stream exactly as the inner stack would consume it. A
		// compensated core keeps Kahan accuracy in execute mode.
		return plan.NewPlanned(r, out, plan.Config{Kahan: st.kind == kindCompensated})
	}
	return r
}

func newInner[T Value](st Strategy, out []T, threads int) Reducer[T] {
	switch st.kind {
	case kindBuiltin:
		return core.NewBuiltin(out, threads)
	case kindDense:
		return core.NewDense(out, threads)
	case kindAtomic:
		return core.NewAtomic(out, threads)
	case kindMap:
		return core.NewMap(out, threads)
	case kindBTree:
		return core.NewBTree(out, threads, st.param)
	case kindBlockPrivate:
		return core.NewBlock(out, threads, st.param, core.BlockPrivate)
	case kindBlockLock:
		return core.NewBlock(out, threads, st.param, core.BlockLock)
	case kindBlockCAS:
		return core.NewBlock(out, threads, st.param, core.BlockCAS)
	case kindKeeper:
		return core.NewKeeper(out, threads)
	case kindOrdered:
		return core.NewOrdered(out, threads)
	case kindAuto:
		return core.NewAdaptive(out, threads, st.param)
	case kindCompensated:
		return core.NewCompensated(out, threads)
	default:
		panic("spray: unknown strategy " + st.String())
	}
}

// RunReduction executes one parallel region over [lo, hi): each team
// member receives its Accessor, processes its chunks through body, and the
// reducer is finalized with the team. The Reducer must have been built
// with threads == t.Size().
func RunReduction[T Value](t *Team, r Reducer[T], lo, hi int, s Schedule, body func(acc Accessor[T], from, to int)) {
	if r.Threads() != t.Size() {
		panic("spray: reducer thread count does not match team size")
	}
	c := par.NewChunker(s, lo, hi, t.Size())
	c.SetTracer(t.Tracer())
	c.SetRecorder(t.Recorder())
	if d, ok := r.(core.MidRegionDrainer); ok {
		// Cooperative mid-region drain: publication on, and each member
		// applies its inbound work at its chunk boundaries instead of
		// deferring everything to the finalize step.
		d.EnableMidDrain(true)
		c.SetChunkDone(d.DrainMid)
	}
	t.Run(func(tid int) {
		acc := r.Private(tid)
		c.For(tid, func(from, to int) { body(acc, from, to) })
		acc.Done()
	})
	r.FinalizeWith(t)
}

// ReduceFor is the one-shot convenience driver: build a Reducer for st,
// run the region, finalize, and return the Reducer (for its memory
// statistics). Equivalent to the paper's wrap-and-annotate usage pattern.
func ReduceFor[T Value](t *Team, st Strategy, out []T, lo, hi int, s Schedule, body func(acc Accessor[T], from, to int)) Reducer[T] {
	r := New(st, out, t.Size())
	RunReduction(t, r, lo, hi, s, body)
	return r
}

// ReduceForEach is the per-index form of ReduceFor, closest to the
// paper's source listings; prefer the chunked form for tight inner
// loops.
func ReduceForEach[T Value](t *Team, st Strategy, out []T, lo, hi int, s Schedule, body func(acc Accessor[T], i int)) Reducer[T] {
	return ReduceFor(t, st, out, lo, hi, s, func(acc Accessor[T], from, to int) {
		for i := from; i < to; i++ {
			body(acc, i)
		}
	})
}

package spray

import (
	"strings"
	"testing"
)

// TestWrapperNestingRoundTrip drives every valid wrapper nesting over
// every base strategy through parse -> print -> parse and requires a
// fixed point: the printed form re-parses to an identical Strategy value
// and prints identically again (the canonical plan+ > binned+ > hot+ >
// base order).
func TestWrapperNestingRoundTrip(t *testing.T) {
	wrap := func(prefix string) []string {
		var out []string
		for _, base := range AllStrategies() {
			out = append(out, prefix+base.String())
		}
		return out
	}
	var names []string
	for _, prefix := range []string{
		"", "hot+", "binned+", "plan+",
		"binned+hot+", "plan+hot+", "plan+binned+", "plan+binned+hot+",
	} {
		names = append(names, wrap(prefix)...)
	}
	for _, name := range names {
		st, err := ParseStrategy(name)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
			continue
		}
		printed := st.String()
		if printed != name {
			t.Errorf("ParseStrategy(%q).String() = %q — printing must preserve the canonical spelling", name, printed)
			continue
		}
		again, err := ParseStrategy(printed)
		if err != nil {
			t.Errorf("re-parse of %q: %v", printed, err)
			continue
		}
		if again != st {
			t.Errorf("round trip %q: %v != %v", name, again, st)
		}
	}
}

// TestWrapperSettersMatchParsedForm checks the Go constructor spelling
// and the string spelling of each nesting build identical values.
func TestWrapperSettersMatchParsedForm(t *testing.T) {
	cases := []struct {
		name string
		st   Strategy
	}{
		{"hot+atomic", Tiered(Atomic())},
		{"hot+keeper", Tiered(Keeper())},
		{"binned+hot+atomic", Binned(Tiered(Atomic()))},
		{"plan+hot+compensated", Planned(Tiered(Compensated()))},
		{"plan+binned+hot+block-cas-1024", Planned(Binned(Tiered(BlockCAS(0))))},
	}
	for _, c := range cases {
		parsed, err := ParseStrategy(c.name)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", c.name, err)
			continue
		}
		if parsed != c.st {
			t.Errorf("%q: parsed %v != constructed %v", c.name, parsed, c.st)
		}
		if got := c.st.String(); got != c.name {
			t.Errorf("constructed %v prints %q, want %q", c.st, got, c.name)
		}
	}
}

// TestParseStrategyRejectsInvalidNestings requires every non-canonical
// or doubled wrapper order to fail with an error that names the problem
// (not a silent reassociation into the canonical order, which would make
// the string mean something the user did not write).
func TestParseStrategyRejectsInvalidNestings(t *testing.T) {
	cases := []struct {
		name    string
		errWant string // substring the error must carry
	}{
		{"hot+hot+atomic", "stacks the hot wrapper twice"},
		{"binned+binned+atomic", "stacks the binned wrapper twice"},
		{"plan+plan+atomic", "stacks the plan wrapper twice"},
		{"hot+binned+atomic", "nests a wrapper inside hot+"},
		{"hot+plan+atomic", "nests a wrapper inside hot+"},
		{"hot+binned+hot+atomic", "nests a wrapper inside hot+"},
		{"binned+plan+atomic", "plan wrapper must be outermost"},
		{"binned+hot+binned+atomic", "nests a wrapper inside hot+"},
		{"plan+hot+binned+atomic", "nests a wrapper inside hot+"},
		{"plan+binned+plan+atomic", "plan wrapper must be outermost"},
		{"hot+", "unknown strategy"},
		{"hot+nonsense", "unknown strategy"},
	}
	for _, c := range cases {
		st, err := ParseStrategy(c.name)
		if err == nil {
			t.Errorf("ParseStrategy(%q) accepted as %v, want rejection", c.name, st)
			continue
		}
		if !strings.Contains(err.Error(), c.errWant) {
			t.Errorf("ParseStrategy(%q) error %q does not mention %q", c.name, err, c.errWant)
		}
	}
}

// TestParseStrategiesListWithWrappers checks the comma-list entry point
// used by the CLIs handles wrapped names and propagates nesting errors.
func TestParseStrategiesListWithWrappers(t *testing.T) {
	sts, err := ParseStrategies("atomic, hot+atomic, binned+hot+keeper")
	if err != nil {
		t.Fatalf("ParseStrategies: %v", err)
	}
	want := []Strategy{Atomic(), Tiered(Atomic()), Binned(Tiered(Keeper()))}
	if len(sts) != len(want) {
		t.Fatalf("got %d strategies, want %d", len(sts), len(want))
	}
	for i := range want {
		if sts[i] != want[i] {
			t.Errorf("entry %d: %v, want %v", i, sts[i], want[i])
		}
	}
	if _, err := ParseStrategies("atomic, hot+binned+atomic"); err == nil {
		t.Error("invalid nesting inside a list was accepted")
	}
}

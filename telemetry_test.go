package spray_test

import (
	"strings"
	"testing"

	"spray"
	"spray/internal/conv"
)

func TestInstrumentReportsRegionMetrics(t *testing.T) {
	const n, threads = 1 << 14, 2
	seed := convSeed(n)
	out := make([]float32, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Dense(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	w := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	const regions = 3
	for i := 0; i < regions; i++ {
		w.RunBackprop(team, r, seed)
	}
	rep := in.Report()
	// RunBackprop runs one update region; dense FinalizeWith adds a merge
	// region per call.
	if rep.Regions < regions {
		t.Errorf("regions = %d, want >= %d", rep.Regions, regions)
	}
	if rep.Strategy != "dense" || rep.Threads != threads {
		t.Errorf("identity %q/%d", rep.Strategy, rep.Threads)
	}
	if rep.Wall <= 0 {
		t.Errorf("wall = %v", rep.Wall)
	}
	if len(rep.Busy) != threads {
		t.Fatalf("busy slots = %d", len(rep.Busy))
	}
	for tid, b := range rep.Busy {
		if b <= 0 {
			t.Errorf("member %d busy = %v", tid, b)
		}
	}
	if li := rep.LoadImbalance(); li < 1.0 {
		t.Errorf("load imbalance %v < 1", li)
	}
	cm := rep.CounterMap()
	// The backprop drives tiled AddN: three taps over n-2 interior points
	// per region.
	wantElems := uint64(regions * 3 * (n - 2))
	if cm["bulk-elems"] != wantElems {
		t.Errorf("bulk-elems = %d, want %d", cm["bulk-elems"], wantElems)
	}
	if cm["addn-runs"] == 0 {
		t.Error("no AddN runs counted")
	}
	if rep.PeakBytes != int64(threads*n*4) {
		t.Errorf("peak bytes %d, want %d", rep.PeakBytes, threads*n*4)
	}

	s := rep.String()
	for _, want := range []string{"dense", "regions", "wall", "bulk-elems", "peak-bytes"} {
		if !strings.Contains(s, want) {
			t.Errorf("report table missing %q:\n%s", want, s)
		}
	}

	in.Reset()
	rep = in.Report()
	if rep.Regions != 0 || rep.Counters.Total() != 0 {
		t.Errorf("reset left regions=%d counters=%v", rep.Regions, rep.Counters.Map())
	}

	// PerThread must expose one snapshot per member.
	w.RunBackprop(team, r, seed)
	per := in.PerThread()
	if len(per) != threads {
		t.Fatalf("per-thread snapshots: %d", len(per))
	}
	for tid, ps := range per {
		if ps.Total() == 0 {
			t.Errorf("member %d recorded nothing", tid)
		}
	}
}

// TestInstrumentBlockCASUnderContention checks the acceptance shape: on a
// workload where every member touches a shared block, block-cas must
// report claim-CAS losses.
func TestInstrumentBlockCASUnderContention(t *testing.T) {
	const n, threads = 1 << 12, 4
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.BlockCAS(64), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			acc.Add(0, 1) // everyone touches block 0: one claim, threads-1 losses
			for i := from; i < to; i++ {
				acc.Add(i, 1)
			}
		})
	cm := in.Report().CounterMap()
	if cm["cas-retries"] < threads-1 {
		t.Errorf("cas-retries = %d, want >= %d (shared block claim losses)",
			cm["cas-retries"], threads-1)
	}
	if cm["block-claims"] == 0 || cm["block-fallbacks"] == 0 {
		t.Errorf("claim/fallback counters empty: %v", cm)
	}
	if out[0] != float64(threads+1) {
		t.Errorf("out[0] = %v, want %d", out[0], threads+1)
	}
}

// TestInstrumentKeeperForeignTraffic checks the acceptance shape for the
// keeper: a cross-owner workload must report foreign enqueues, all drained
// at finalize.
func TestInstrumentKeeperForeignTraffic(t *testing.T) {
	const n, threads = 1 << 10, 4
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Keeper(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	// Every member writes the whole array: 3/4 of updates are foreign.
	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := 0; i < n; i++ {
				acc.Add(i, 1)
			}
		})
	cm := in.Report().CounterMap()
	if cm["keeper-foreign"] == 0 {
		t.Fatal("no foreign enqueues on a cross-owner workload")
	}
	if cm["keeper-drained"] != cm["keeper-foreign"] {
		t.Errorf("drained %d of %d foreign enqueues", cm["keeper-drained"], cm["keeper-foreign"])
	}
	if cm["keeper-owned"] == 0 {
		t.Error("no owned updates counted")
	}
	for i := range out {
		if out[i] != threads {
			t.Fatalf("out[%d] = %v, want %d", i, out[i], threads)
		}
	}
}

func TestInstrumentDetachStopsCounting(t *testing.T) {
	const n, threads = 1 << 10, 2
	out := make([]float32, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Atomic(), out, threads)
	in := spray.Instrument(team, r)
	runOnce := func() {
		spray.RunReduction(team, r, 0, n, spray.Static(),
			func(acc spray.Accessor[float32], from, to int) {
				for i := from; i < to; i++ {
					acc.Add(i, 1)
				}
			})
	}
	runOnce()
	if in.Report().Counters.Total() == 0 {
		t.Fatal("attached instrumentation recorded nothing")
	}
	in.Detach()
	if team.Timing() != nil {
		t.Error("Detach left the timing attached")
	}
	before := in.Report().Counters.Total()
	runOnce()
	if got := in.Report().Counters.Total(); got != before {
		t.Errorf("detached reducer still counting: %d -> %d", before, got)
	}
}

func TestInstrumentCheckedReducerForwards(t *testing.T) {
	const n, threads = 256, 2
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.Checked(spray.New(spray.Dense(), out, threads), n)
	in := spray.Instrument(team, r)
	defer in.Detach()
	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := from; i < to; i++ {
				acc.Add(i, 1)
			}
		})
	if got := in.Report().CounterMap()["updates"]; got != n {
		t.Errorf("updates through Checked = %d, want %d", got, n)
	}
	if !strings.HasPrefix(in.Report().Strategy, "checked(") {
		t.Errorf("strategy %q", in.Report().Strategy)
	}
}

// TestInstrumentReusesExistingTiming: two reducers instrumented on one
// team share the team's timing accumulator instead of fighting over it.
func TestInstrumentReusesExistingTiming(t *testing.T) {
	const n, threads = 128, 2
	team := spray.NewTeam(threads)
	defer team.Close()
	r1 := spray.New(spray.Dense(), make([]float64, n), threads)
	r2 := spray.New(spray.Atomic(), make([]float64, n), threads)
	in1 := spray.Instrument(team, r1)
	in2 := spray.Instrument(team, r2)
	tm := team.Timing()
	if tm == nil {
		t.Fatal("no timing attached")
	}
	in2.Detach() // must not strip the timing in1 owns
	if team.Timing() != tm {
		t.Error("second Detach removed the shared timing")
	}
	in1.Detach()
	if team.Timing() != nil {
		t.Error("owner Detach left the timing")
	}
}

// BenchmarkTelemetryOverheadConv reports the conv backprop workload with
// telemetry off and on — `make overhead-smoke` tracks the "off" flavor
// against BenchmarkBulkConv numbers.
func BenchmarkTelemetryOverheadConv(b *testing.B) {
	const n, threads = 1 << 20, 2
	seed := convSeed(n)
	out := make([]float32, n)
	w := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	b.Run("off", func(b *testing.B) {
		team := spray.NewTeam(threads)
		defer team.Close()
		r := spray.New(spray.BlockCAS(1024), out, threads)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunBackprop(team, r, seed)
		}
		b.SetBytes(int64(n * 4))
	})
	b.Run("on", func(b *testing.B) {
		team := spray.NewTeam(threads)
		defer team.Close()
		r := spray.New(spray.BlockCAS(1024), out, threads)
		in := spray.Instrument(team, r)
		defer in.Detach()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunBackprop(team, r, seed)
		}
		b.SetBytes(int64(n * 4))
	})
}

package spray

import "spray/internal/par"

// Scalar reductions — single reduction location, so none of the sparse
// machinery applies; these are the OpenMP "reduction(+|min|max: x)"
// idioms, provided so applications built on spray's Team do not need a
// second runtime for their scalar sums and extrema.

// Sum computes Σ f(i) for i in [lo, hi) on the team. Per-thread partials
// are combined in ascending thread order, so the result is deterministic
// for a fixed team size.
func Sum(t *Team, lo, hi int, f func(i int) float64) float64 {
	return par.SumFloat64(t, lo, hi, f)
}

// Min computes the minimum of f(i) for i in [lo, hi) on the team; init is
// returned for an empty range (pass +Inf for the usual semantics).
func Min(t *Team, lo, hi int, init float64, f func(i int) float64) float64 {
	return par.MinFloat64(t, lo, hi, init, f)
}

// Max computes the maximum of f(i) for i in [lo, hi) on the team; init is
// returned for an empty range (pass -Inf for the usual semantics).
func Max(t *Team, lo, hi int, init float64, f func(i int) float64) float64 {
	return par.MaxFloat64(t, lo, hi, init, f)
}

package spray_test

// One testing.B benchmark family per figure of the paper's evaluation,
// at sizes that let `go test -bench=.` finish on a laptop. The cmd/
// harnesses (sprayconv, spraytmv, spraylulesh, sprayall) run the same
// experiments at paper scale and produce the EXPERIMENTS.md tables.
//
//	Figure 11/12: BenchmarkFig11Conv        (absolute times per strategy x threads;
//	                                         Fig. 12 is the best-per-strategy view)
//	Figure 13:    BenchmarkFig13BlockSizes  (block-size sweep)
//	Figure 14:    BenchmarkFig14S3DKT3M2    (banded-matrix transpose SpMV + MKL baselines)
//	Figure 15:    BenchmarkFig15Debr        (broad-band matrix transpose SpMV)
//	Figure 16:    BenchmarkFig16Lulesh      (mini-LULESH force schemes)

import (
	"fmt"
	"math/rand"
	"testing"

	"spray"
	"spray/internal/conv"
	"spray/internal/fem"
	"spray/internal/lulesh"
	"spray/internal/mesh"
	"spray/internal/mkl"
	"spray/internal/par"
	"spray/internal/sparse"
	"spray/internal/telemetry"
)

var benchThreads = []int{1, 2, 4}

func convSeed(n int) []float32 {
	rng := rand.New(rand.NewSource(42))
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()
	}
	return s
}

var benchWeights = conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}

func BenchmarkFig11Conv(b *testing.B) {
	const n = 1 << 20
	seed := convSeed(n)
	out := make([]float32, n)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchWeights.BackpropSeq(seed, out)
		}
		b.SetBytes(int64(n * 4))
	})
	strategies := []spray.Strategy{
		spray.Builtin(), spray.Dense(), spray.Atomic(),
		spray.BlockLock(1024), spray.BlockCAS(1024), spray.Keeper(),
	}
	for _, st := range strategies {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, out, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchWeights.RunBackprop(team, r, seed)
				}
				b.SetBytes(int64(n * 4))
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

func BenchmarkFig13BlockSizes(b *testing.B) {
	const n = 1 << 20
	const threads = 4
	seed := convSeed(n)
	out := make([]float32, n)
	var strategies []spray.Strategy
	for _, bs := range []int{16, 256, 1024, 16384} {
		strategies = append(strategies,
			spray.BlockPrivate(bs), spray.BlockLock(bs), spray.BlockCAS(bs))
	}
	strategies = append(strategies, spray.Map(), spray.BTree(0), spray.Keeper())
	for _, st := range strategies {
		b.Run(st.String(), func(b *testing.B) {
			team := spray.NewTeam(threads)
			defer team.Close()
			r := spray.New(st, out, threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchWeights.RunBackprop(team, r, seed)
			}
			b.SetBytes(int64(n * 4))
			b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
		})
	}
}

// benchTMV runs the Figure 14/15 benchmark body on the given matrix.
func benchTMV(b *testing.B, a *sparse.CSR[float32]) {
	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = 1
	}
	y := make([]float32, a.Cols)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.TMulVecSeq(x, y)
		}
	})
	strategies := []spray.Strategy{
		spray.Builtin(), spray.Dense(), spray.Atomic(),
		spray.BlockLock(1024), spray.BlockCAS(1024), spray.Keeper(),
	}
	for _, st := range strategies {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, y, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.RunTMulVec(team, r, a, x)
				}
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
	for _, th := range benchThreads {
		b.Run(fmt.Sprintf("mkl-legacy/threads=%d", th), func(b *testing.B) {
			team := par.NewTeam(th)
			defer team.Close()
			for i := 0; i < b.N; i++ {
				mkl.LegacyTMulVec(team, a, x, y)
			}
		})
		b.Run(fmt.Sprintf("mkl-ie/threads=%d", th), func(b *testing.B) {
			team := par.NewTeam(th)
			defer team.Close()
			h := mkl.NewHandle(a)
			h.Optimize()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ExecuteTMulVec(team, x, y)
			}
		})
		b.Run(fmt.Sprintf("mkl-ie-hint/threads=%d", th), func(b *testing.B) {
			team := par.NewTeam(th)
			defer team.Close()
			h := mkl.NewHandle(a)
			h.SetHint(mkl.Hint{Transpose: true})
			h.Optimize() // inspection excluded, as in the paper
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ExecuteTMulVec(team, x, y)
			}
			b.ReportMetric(float64(h.ExtraBytes()), "strategy-bytes")
		})
	}
}

func BenchmarkFig14S3DKT3M2(b *testing.B) {
	// Proportionally shrunk s3dkt3m2-like banded matrix (same per-row
	// density and band character; pass -paper to cmd/sprayall for full
	// scale).
	a := sparse.Banded[float32](9045, 9045, 21, 600, 1)
	benchTMV(b, a)
}

func BenchmarkFig15Debr(b *testing.B) {
	// Shrunk debr-like broad-band matrix.
	a := sparse.Banded[float32](104858, 104858, 4, 50000, 1)
	benchTMV(b, a)
}

func BenchmarkFig16Lulesh(b *testing.B) {
	const edge, cycles = 10, 10
	params := lulesh.Defaults()
	params.MaxCycles = cycles

	schemes := map[string]func() lulesh.ForceScheme{
		"original":        lulesh.Original,
		"omp-builtin":     func() lulesh.ForceScheme { return lulesh.Spray(spray.Builtin()) },
		"dense":           func() lulesh.ForceScheme { return lulesh.Spray(spray.Dense()) },
		"atomic":          func() lulesh.ForceScheme { return lulesh.Spray(spray.Atomic()) },
		"block-lock-1024": func() lulesh.ForceScheme { return lulesh.Spray(spray.BlockLock(1024)) },
		"block-cas-1024":  func() lulesh.ForceScheme { return lulesh.Spray(spray.BlockCAS(1024)) },
		"keeper":          func() lulesh.ForceScheme { return lulesh.Spray(spray.Keeper()) },
	}
	for name, mk := range schemes {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", name, th), func(b *testing.B) {
				team := par.NewTeam(th)
				defer team.Close()
				fs := mk()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d := lulesh.New(edge, params)
					if _, err := d.Run(team, fs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(fs.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

// BenchmarkAblationSchedules quantifies the paper's §IV remark that SPRAY
// works with any schedule but the schedule affects performance (small
// chunks hurt locality): the same block-CAS reduction under different
// schedules and chunk sizes.
func BenchmarkAblationSchedules(b *testing.B) {
	const n = 1 << 20
	const threads = 4
	seed := convSeed(n)
	out := make([]float32, n)
	schedules := map[string]spray.Schedule{
		"static":            spray.Static(),
		"static-chunk-8":    spray.StaticChunk(8),
		"static-chunk-4096": spray.StaticChunk(4096),
		"dynamic-1":         spray.Dynamic(1),
		"dynamic-1024":      spray.Dynamic(1024),
		"guided":            spray.Guided(64),
	}
	for name, sched := range schedules {
		b.Run(name, func(b *testing.B) {
			team := spray.NewTeam(threads)
			defer team.Close()
			r := spray.New(spray.BlockCAS(1024), out, threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spray.RunReduction(team, r, 1, n-1, sched,
					func(acc spray.Accessor[float32], from, to int) {
						for j := from; j < to; j++ {
							s := seed[j]
							acc.Add(j-1, 0.25*s)
							acc.Add(j, 0.5*s)
							acc.Add(j+1, 0.25*s)
						}
					})
			}
			b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
		})
	}
}

// BenchmarkAblationFinalize quantifies the design choice DESIGN.md calls
// out for the dense strategies: combining private copies serially (the
// compiler-modeled Builtin) vs. with the team (Dense.FinalizeWith).
func BenchmarkAblationFinalize(b *testing.B) {
	const n = 1 << 20
	const threads = 4
	out := make([]float64, n)
	for name, st := range map[string]spray.Strategy{
		"serial-combine(builtin)": spray.Builtin(),
		"team-combine(dense)":     spray.Dense(),
	} {
		b.Run(name, func(b *testing.B) {
			team := spray.NewTeam(threads)
			defer team.Close()
			r := spray.New(st, out, threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spray.RunReduction(team, r, 0, n, spray.Static(),
					func(acc spray.Accessor[float64], from, to int) {
						for j := from; j < to; j++ {
							acc.Add(j, 1)
						}
					})
			}
		})
	}
}

// BenchmarkAblationAddDispatch quantifies the cost of the Accessor
// abstraction itself (the analogue of the paper's observation that SPRAY
// atomics are 5-10% slower than raw OpenMP atomics when the compiler
// cannot eliminate the abstraction): raw slice writes vs dense-reducer
// Adds on one thread.
func BenchmarkAblationAddDispatch(b *testing.B) {
	const n = 1 << 16
	out := make([]float64, n)
	b.Run("raw-slice-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out[i&(n-1)] += 1
		}
	})
	b.Run("dense-accessor-add", func(b *testing.B) {
		r := spray.New(spray.Dense(), out, 1)
		acc := r.Private(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc.Add(i&(n-1), 1)
		}
		acc.Done()
		r.Finalize()
	})
	b.Run("atomic-accessor-add", func(b *testing.B) {
		r := spray.New(spray.Atomic(), out, 1)
		acc := r.Private(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc.Add(i&(n-1), 1)
		}
		acc.Done()
		r.Finalize()
	})
}

// bulkBenchStrategies are the strategies whose AddN/Scatter overrides
// have a structural shortcut worth measuring against the per-element
// loop (atomic rides along as the no-memory reference).
var bulkBenchStrategies = []spray.Strategy{
	spray.Dense(), spray.Atomic(), spray.BlockCAS(1024), spray.Keeper(),
}

// BenchmarkBulkConv compares the element-wise Add loop against tiled
// AddN batches on the conv back-propagation workload. cmd/spraybulk runs
// the same comparison at larger scale and emits BENCH_bulk.json.
func BenchmarkBulkConv(b *testing.B) {
	const n = 1 << 20
	seed := convSeed(n)
	out := make([]float32, n)
	for _, st := range bulkBenchStrategies {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/each/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, out, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchWeights.RunBackpropEach(team, r, seed)
				}
				b.SetBytes(int64(n * 4))
			})
			b.Run(fmt.Sprintf("%s/bulk/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, out, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchWeights.RunBackprop(team, r, seed)
				}
				b.SetBytes(int64(n * 4))
			})
		}
	}
}

// BenchmarkBulkTMV compares one Add per nonzero against one Scatter per
// CSR row on the transpose-matrix-vector workload.
func BenchmarkBulkTMV(b *testing.B) {
	a := sparse.Graph[float32](1<<17, 8, 99)
	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = 1
	}
	y := make([]float32, a.Cols)
	for _, st := range bulkBenchStrategies {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/each/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, y, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.RunTMulVecEach(team, r, a, x)
				}
			})
			b.Run(fmt.Sprintf("%s/bulk/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, y, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.RunTMulVec(team, r, a, x)
				}
			})
		}
	}
}

// scatterBenchStrategies are the strategies the write-combining wrapper
// can help: every flushed bin saves CAS traffic (atomic), block claims
// (block-cas), queue appends (keeper) or buys exact hotness counts
// (auto).
var scatterBenchStrategies = []spray.Strategy{
	spray.Atomic(), spray.BlockCAS(1024), spray.Keeper(), spray.Auto(1024),
}

// BenchmarkScatterBinnedConv compares the unbinned Scatter path (the
// PR 1 bulk fast path) against the binned write-combining wrapper on the
// duplicate-heavy conv adjoint stream: interleaved (i-1, i, i+1) triples,
// three contributions per output index per tile, which the binned engine
// coalesces to one before touching the strategy. cmd/spraybulk
// -workload scatter runs the same comparison at larger scale and emits
// BENCH_scatter.json.
func BenchmarkScatterBinnedConv(b *testing.B) {
	const n = 1 << 20
	seed := convSeed(n)
	out := make([]float32, n)
	for _, st := range scatterBenchStrategies {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/unbinned/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, out, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchWeights.RunBackpropScatter(team, r, seed)
				}
				b.SetBytes(int64(n * 4))
			})
			b.Run(fmt.Sprintf("%s/binned/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(spray.Binned(st), out, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchWeights.RunBackpropScatter(team, r, seed)
				}
				b.SetBytes(int64(n * 4))
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

// BenchmarkScatterBinnedTMV runs the binned-vs-unbinned comparison on a
// banded transpose-matrix-vector product: consecutive rows scatter into
// overlapping column windows, so bins are revisited across rows and
// cross-row duplicates coalesce. The chunked schedule exercises the
// keeper's cooperative mid-region mailbox drain.
func BenchmarkScatterBinnedTMV(b *testing.B) {
	a := sparse.Banded[float32](1<<17, 1<<17, 16, 96, 7)
	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = 1
	}
	y := make([]float32, a.Cols)
	sched := spray.StaticChunk(256)
	for _, st := range scatterBenchStrategies {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/unbinned/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, y, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.RunTMulVecSched(team, r, a, x, sched)
				}
			})
			b.Run(fmt.Sprintf("%s/binned/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(spray.Binned(st), y, th)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.RunTMulVecSched(team, r, a, x, sched)
				}
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

// BenchmarkTieredZipf measures the hot/cold tiered wrapper on a
// Zipfian-skewed scatter stream: a few hundred hot lines carry ~99% of
// the updates, so hot+atomic should replace the atomic CAS per hot
// update with a plain replica-cache add while the cold tail stays on
// atomics. One untimed warmup region lets online promotion fill the
// cache before measurement. cmd/spraybulk -workload tiered runs the
// same comparison at larger scale and emits results/BENCH_tiered.json.
func BenchmarkTieredZipf(b *testing.B) {
	const n, tiles, batch = 1 << 20, 256, 1024
	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.6, 1, n-1)
	idx := make([][]int32, tiles)
	vals := make([][]float32, tiles)
	for t := range idx {
		idx[t] = make([]int32, batch)
		vals[t] = make([]float32, batch)
		for j := range idx[t] {
			idx[t][j] = int32(z.Uint64())
			vals[t][j] = rng.Float32()
		}
	}
	out := make([]float32, n)
	run := func(team *spray.Team, r spray.Reducer[float32]) {
		spray.RunReduction(team, r, 0, tiles, spray.StaticChunk(16),
			func(acc spray.Accessor[float32], from, to int) {
				bk := spray.Bulk(acc)
				for t := from; t < to; t++ {
					bk.Scatter(idx[t], vals[t])
				}
			})
	}
	for _, st := range []spray.Strategy{spray.Atomic(), spray.Tiered(spray.Atomic()), spray.Keeper()} {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				r := spray.New(st, out, th)
				run(team, r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(team, r)
				}
				b.SetBytes(int64(tiles * batch * 4))
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

// planBenchIters are the amortization points: 1 shows the plan's
// record+compile overhead in full, 8 is where the executor should
// already win, 32 approaches the steady-state executor speed.
var planBenchIters = []int{1, 8, 32}

// reportPlanCounters runs one untimed instrumented solve and exports the
// plan lifecycle as benchmark metrics: hit/miss counts and the median
// compile latency, so the amortization story is visible next to ns/op.
func reportPlanCounters(b *testing.B, team *spray.Team, st spray.Strategy, y []float32, a *sparse.CSR[float32], x []float32, iters int) {
	b.StopTimer()
	r := spray.New(st, y, team.Size())
	in := spray.Instrument(team, r)
	defer in.Detach()
	sparse.RunTMulVecIters(team, r, a, x, iters)
	rep := in.Report()
	b.ReportMetric(float64(rep.Counters.Get(telemetry.PlanHits)), "plan-hits")
	b.ReportMetric(float64(rep.Counters.Get(telemetry.PlanMisses)), "plan-misses")
	if h := rep.Latencies[telemetry.PlanCompile]; h.Count > 0 {
		b.ReportMetric(float64(h.P50().Nanoseconds()), "plan-compile-p50-ns")
	}
}

// BenchmarkPlanTMV measures the plan-compiled wrapper's amortization
// curve on the s3dkt3m2-shaped banded transpose product. One benchmark
// op is a cold-start solve — fresh strategy state, then iters
// applications — so ns/op divided by iters falls as the record+compile
// cost spreads across the solve. mkl-ie is the inspector/executor
// comparator with its (transpose-building) inspection inside the
// timing. cmd/spraybulk -workload plan runs the same sweep at larger
// scale and emits BENCH_plan.json.
func BenchmarkPlanTMV(b *testing.B) {
	a := sparse.Banded[float32](9045, 9045, 21, 600, 1)
	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = 1
	}
	y := make([]float32, a.Cols)
	const threads = 4
	strategies := []spray.Strategy{
		spray.Atomic(), spray.Binned(spray.Atomic()), spray.BlockCAS(1024),
		spray.Keeper(), spray.Planned(spray.Atomic()), spray.Planned(spray.Keeper()),
	}
	for _, st := range strategies {
		for _, iters := range planBenchIters {
			b.Run(fmt.Sprintf("%s/iters=%d", st, iters), func(b *testing.B) {
				team := spray.NewTeam(threads)
				defer team.Close()
				var r spray.Reducer[float32]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r = spray.New(st, y, threads)
					sparse.RunTMulVecIters(team, r, a, x, iters)
				}
				b.StopTimer()
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
				if st.String() == "plan+atomic" || st.String() == "plan+keeper" {
					reportPlanCounters(b, team, st, y, a, x, iters)
				}
			})
		}
	}
	for _, iters := range planBenchIters {
		b.Run(fmt.Sprintf("mkl-ie/iters=%d", iters), func(b *testing.B) {
			team := par.NewTeam(threads)
			defer team.Close()
			for i := 0; i < b.N; i++ {
				h := mkl.NewHandle(a)
				h.SetHint(mkl.Hint{Transpose: true, Calls: iters})
				h.Optimize() // inspection inside the timing: the cost being amortized
				for k := 0; k < iters; k++ {
					h.ExecuteTMulVec(team, x, y)
				}
			}
		})
	}
}

// BenchmarkPlanConv runs the amortization comparison on the conv
// back-propagation workload, whose fixed tile pattern (three AddN runs
// per tile) the plan executor turns into straight owned-range adds.
func BenchmarkPlanConv(b *testing.B) {
	const n = 1 << 20
	const threads = 4
	seed := convSeed(n)
	out := make([]float32, n)
	for _, st := range []spray.Strategy{
		spray.Atomic(), spray.Keeper(), spray.Planned(spray.Atomic()), spray.Planned(spray.Keeper()),
	} {
		for _, iters := range planBenchIters {
			b.Run(fmt.Sprintf("%s/iters=%d", st, iters), func(b *testing.B) {
				team := spray.NewTeam(threads)
				defer team.Close()
				var r spray.Reducer[float32]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r = spray.New(st, out, threads)
					benchWeights.RunBackpropIters(team, r, seed, iters)
				}
				b.StopTimer()
				b.SetBytes(int64(n*4) * int64(iters))
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

// BenchmarkFemAssembly measures the FEM matrix-assembly workload (the
// paper's Figure 1 pattern) under the competitive strategies — an
// extension workload, not a paper figure.
func BenchmarkFemAssembly(b *testing.B) {
	m := mesh.NewHex(12, 1)
	p := fem.NewProblem(m)
	for _, st := range []spray.Strategy{
		spray.Atomic(), spray.BlockCAS(1024), spray.Keeper(), spray.Dense(), spray.Auto(1024),
	} {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", st, th), func(b *testing.B) {
				team := spray.NewTeam(th)
				defer team.Close()
				b.ResetTimer()
				var r spray.Reducer[float64]
				for i := 0; i < b.N; i++ {
					r = p.Assemble(team, st)
				}
				b.ReportMetric(float64(r.PeakBytes()), "strategy-bytes")
			})
		}
	}
}

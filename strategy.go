package spray

import (
	"fmt"
	"strconv"
	"strings"
)

type kind int

const (
	kindInvalid kind = iota
	kindBuiltin
	kindDense
	kindAtomic
	kindMap
	kindBTree
	kindBlockPrivate
	kindBlockLock
	kindBlockCAS
	kindKeeper
	kindOrdered
	kindAuto
	kindCompensated
)

// DefaultBlockSize is used by the block strategies when no explicit size
// is given; 1024 sits in the wide plateau of good sizes found in the
// paper's Figure 13 sweep.
const DefaultBlockSize = 1024

// Strategy names a reduction scheme plus its parameters. Strategies are
// plain values: comparable, printable, parseable — so applications can
// select the scheme from configuration, the paper's performance
// portability argument.
type Strategy struct {
	kind    kind
	param   int // block size for block-*, node degree for btree
	tiered  bool
	binned  bool
	planned bool
}

// Builtin selects the model of the compiler-provided OpenMP reduction
// clause (full privatization with a serialized end-of-region combine).
func Builtin() Strategy { return Strategy{kind: kindBuiltin} }

// Dense selects the SPRAY DenseReduction (full privatization, parallel
// combine).
func Dense() Strategy { return Strategy{kind: kindDense} }

// Atomic selects the SPRAY AtomicReduction (CAS updates in place, zero
// memory overhead).
func Atomic() Strategy { return Strategy{kind: kindAtomic} }

// Map selects the hash-map-backed SPRAY MapReduction.
func Map() Strategy { return Strategy{kind: kindMap} }

// BTree selects the B-tree-backed SPRAY MapReduction; degree <= 0 uses the
// tree's default node degree.
func BTree(degree int) Strategy { return Strategy{kind: kindBTree, param: degree} }

// BlockPrivate selects the block-private BlockReduction with the given
// power-of-two block size (<= 0 selects DefaultBlockSize).
func BlockPrivate(blockSize int) Strategy {
	return Strategy{kind: kindBlockPrivate, param: defaultBlock(blockSize)}
}

// BlockLock selects the lock-claiming BlockReduction.
func BlockLock(blockSize int) Strategy {
	return Strategy{kind: kindBlockLock, param: defaultBlock(blockSize)}
}

// BlockCAS selects the CAS-claiming BlockReduction.
func BlockCAS(blockSize int) Strategy {
	return Strategy{kind: kindBlockCAS, param: defaultBlock(blockSize)}
}

// Keeper selects the KeeperReduction (static ownership plus update-request
// queues).
func Keeper() Strategy { return Strategy{kind: kindKeeper} }

// Ordered selects the deterministic update-log strategy (an extension
// beyond the paper): bitwise-reproducible results under deterministic
// schedules, at memory cost proportional to the number of updates.
func Ordered() Strategy { return Strategy{kind: kindOrdered} }

// Auto selects the adaptive strategy (an extension implementing the
// paper's outlook of a generic reducer): atomic updates that privatize
// individual blocks once they prove hot. blockSize <= 0 selects
// DefaultBlockSize.
func Auto(blockSize int) Strategy {
	return Strategy{kind: kindAuto, param: defaultBlock(blockSize)}
}

// Compensated selects the Kahan-compensated dense strategy (an extension
// realizing the paper's "more accurate summation" templating point):
// per-thread partials carry correction terms, at twice Dense's memory.
func Compensated() Strategy { return Strategy{kind: kindCompensated} }

// Binned wraps any strategy with the software write-combining engine:
// Scatter batches are staged into per-thread destination-block bins,
// duplicate indices are coalesced, and whole bins flush through the
// strategy at once. Add and AddN bypass the engine. Prints and parses as
// "binned+<inner>", e.g. "binned+atomic". Worth it for duplicate-heavy
// or block-revisiting scatter streams; a stream of unique near-sorted
// indices only pays the staging copy. Note that coalescing pre-sums
// same-index contributions in arrival order, so results can differ in
// the last bits from the element-wise order (exact for integer-valued
// data); Ordered's bitwise-reproducibility guarantee does not survive
// the wrapper.
func Binned(inner Strategy) Strategy {
	inner.binned = true
	return inner
}

// Planned wraps any strategy with the plan-compiled inspector–executor:
// the first region records the per-thread update stream through the
// inner strategy, then compiles it into thread-owned segments plus
// cross-thread exchange lists; subsequent identical regions bypass the
// inner strategy entirely and run race-free owned loops with a
// deterministic exchange merge at finalize. A region that deviates from
// the recorded pattern (unseen index, reshaped batch, missing thread) is
// completed correctly, invalidates the plan, and triggers a re-record;
// repeated invalidation degrades to a permanent passthrough. Prints and
// parses as "plan+<inner>", e.g. "plan+atomic" or "plan+binned+keeper".
// Worth it for iterative workloads (tMV time loops, FEM assembly, conv
// backprop) that replay one index pattern many times — the inspection
// cost amortizes like MKL's inspector/executor; a pattern that changes
// every region only pays recording overhead.
func Planned(inner Strategy) Strategy {
	inner.planned = true
	return inner
}

// Tiered wraps any base strategy with per-thread hot-set replica caches:
// the cache lines a thread collides on most accumulate in private
// direct-mapped storage (no synchronization), everything else falls
// through to the inner strategy. The hot set is seeded from a previous
// region's contention profile (SeedFromProfile/SeedHotLines) and adapts
// online — cold-miss tracking promotes lines at chunk boundaries, with
// displaced partials flushed through the inner strategy so correctness
// never depends on the cache. Prints and parses as "hot+<inner>", e.g.
// "hot+atomic". Worth it when contention is concentrated on a hot set
// too large to ignore but far smaller than the array (Zipfian/skewed
// access); a uniform access pattern only pays the tag lookup. Nesting:
// hot+ applies directly to a base strategy — "binned+hot+atomic" and
// "plan+hot+atomic" are valid, "hot+binned+..." and "hot+plan+..." are
// not (the cache belongs below the staging layers, next to the
// strategy). Like binned+, the wrapper pre-sums same-line contributions
// in arrival order, so results can differ in the last bits from the
// element-wise order (exact for integer-valued data).
func Tiered(inner Strategy) Strategy {
	inner.tiered = true
	return inner
}

func defaultBlock(b int) int {
	if b <= 0 {
		return DefaultBlockSize
	}
	return b
}

// String renders the strategy in the paper's naming convention, e.g.
// "block-cas-1024" or "binned+atomic".
func (s Strategy) String() string {
	if s.planned {
		base := s
		base.planned = false
		return "plan+" + base.String()
	}
	if s.binned {
		base := s
		base.binned = false
		return "binned+" + base.String()
	}
	if s.tiered {
		base := s
		base.tiered = false
		return "hot+" + base.String()
	}
	switch s.kind {
	case kindBuiltin:
		return "omp-builtin"
	case kindDense:
		return "dense"
	case kindAtomic:
		return "atomic"
	case kindMap:
		return "map"
	case kindBTree:
		if s.param > 0 {
			return fmt.Sprintf("btree-%d", s.param)
		}
		return "btree"
	case kindBlockPrivate:
		return fmt.Sprintf("block-private-%d", s.param)
	case kindBlockLock:
		return fmt.Sprintf("block-lock-%d", s.param)
	case kindBlockCAS:
		return fmt.Sprintf("block-cas-%d", s.param)
	case kindKeeper:
		return "keeper"
	case kindOrdered:
		return "ordered"
	case kindAuto:
		return fmt.Sprintf("auto-%d", s.param)
	case kindCompensated:
		return "compensated"
	default:
		return "invalid"
	}
}

// ParseStrategy parses the String form back into a Strategy. Block sizes
// and B-tree degrees are optional suffixes: "block-cas" means
// "block-cas-1024", "btree" uses the default degree.
//
// Wrapper prefixes nest in one canonical order — plan+ outermost, then
// binned+, then hot+, then the base strategy — mirroring the runtime
// layering (the plan records through the bins, the bins flush through
// the hot cache, the cache falls through to the strategy). Any other
// order, and any doubled wrapper, is rejected with an error rather than
// silently reassociated.
func ParseStrategy(s string) (Strategy, error) {
	if rest, ok := strings.CutPrefix(s, "plan+"); ok {
		inner, err := ParseStrategy(rest)
		if err != nil {
			return Strategy{}, err
		}
		if inner.planned {
			return Strategy{}, fmt.Errorf("spray: strategy %q stacks the plan wrapper twice", s)
		}
		return Planned(inner), nil
	}
	if rest, ok := strings.CutPrefix(s, "binned+"); ok {
		inner, err := ParseStrategy(rest)
		if err != nil {
			return Strategy{}, err
		}
		if inner.planned {
			return Strategy{}, fmt.Errorf("spray: strategy %q nests plan+ inside binned+ — the plan wrapper must be outermost (write %q)", s, "plan+binned+...")
		}
		if inner.binned {
			return Strategy{}, fmt.Errorf("spray: strategy %q stacks the binned wrapper twice", s)
		}
		return Binned(inner), nil
	}
	if rest, ok := strings.CutPrefix(s, "hot+"); ok {
		inner, err := ParseStrategy(rest)
		if err != nil {
			return Strategy{}, err
		}
		if inner.planned || inner.binned {
			return Strategy{}, fmt.Errorf("spray: strategy %q nests a wrapper inside hot+ — the hot-set cache wraps the base strategy directly (write %q or %q)", s, "binned+hot+...", "plan+hot+...")
		}
		if inner.tiered {
			return Strategy{}, fmt.Errorf("spray: strategy %q stacks the hot wrapper twice", s)
		}
		return Tiered(inner), nil
	}
	switch s {
	case "omp-builtin", "builtin", "omp":
		return Builtin(), nil
	case "dense":
		return Dense(), nil
	case "atomic":
		return Atomic(), nil
	case "map":
		return Map(), nil
	case "keeper":
		return Keeper(), nil
	case "ordered":
		return Ordered(), nil
	case "auto":
		return Auto(0), nil
	case "compensated":
		return Compensated(), nil
	case "btree":
		return BTree(0), nil
	case "block-private":
		return BlockPrivate(0), nil
	case "block-lock":
		return BlockLock(0), nil
	case "block-cas":
		return BlockCAS(0), nil
	}
	for prefix, mk := range map[string]func(int) Strategy{
		"btree-":         BTree,
		"block-private-": BlockPrivate,
		"block-lock-":    BlockLock,
		"block-cas-":     BlockCAS,
		"auto-":          Auto,
	} {
		if rest, ok := strings.CutPrefix(s, prefix); ok {
			n, err := strconv.Atoi(rest)
			if err != nil || n <= 0 {
				return Strategy{}, fmt.Errorf("spray: bad parameter in strategy %q", s)
			}
			return mk(n), nil
		}
	}
	return Strategy{}, fmt.Errorf("spray: unknown strategy %q", s)
}

// ParseStrategies parses a comma-separated list of strategy names.
func ParseStrategies(list string) ([]Strategy, error) {
	var out []Strategy
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		st, err := ParseStrategy(name)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// AllStrategies returns one instance of every strategy (block strategies
// at DefaultBlockSize), in the order the paper's figures list them.
func AllStrategies() []Strategy {
	return []Strategy{
		Builtin(),
		Dense(),
		Atomic(),
		Map(),
		BTree(0),
		BlockPrivate(0),
		BlockLock(0),
		BlockCAS(0),
		Keeper(),
		Ordered(),
		Auto(0),
		Compensated(),
	}
}

// CompetitiveStrategies returns the subset the paper keeps in its results
// discussion after dropping the non-competitive map-based reducers.
func CompetitiveStrategies() []Strategy {
	return []Strategy{
		Builtin(),
		Dense(),
		Atomic(),
		BlockLock(0),
		BlockCAS(0),
		Keeper(),
	}
}

package spray_test

import (
	"testing"

	"spray"
	"spray/internal/conv"
)

// TestInstrumentationHotspotEndToEnd drives the public profiler API the
// way an operator would: instrument a keeper, enable the contention
// profiler, run a cross-owner reduction, and read the profile back.
func TestInstrumentationHotspotEndToEnd(t *testing.T) {
	const n, threads = 1 << 12, 4
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Keeper(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	if in.Hotspot() != nil || in.HotspotProfile() != nil {
		t.Fatal("profiler present before EnableHotspot")
	}
	prof := in.EnableHotspot(n, spray.HotspotOptions{SamplePeriod: 1})
	if prof == nil {
		t.Fatal("EnableHotspot returned nil")
	}
	if again := in.EnableHotspot(n, spray.HotspotOptions{}); again != prof {
		t.Fatal("EnableHotspot is not idempotent")
	}
	if in.Hotspot() != prof {
		t.Fatal("Hotspot() does not return the enabled profiler")
	}

	// Every member writes the whole array: 3/4 of updates are foreign.
	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := 0; i < n; i++ {
				acc.Add(i, 1)
			}
		})

	p := in.HotspotProfile()
	if p == nil {
		t.Fatal("no profile after an enabled run")
	}
	if p.Strategy != "keeper" || p.N != n || p.Threads != threads {
		t.Fatalf("profile identity %q/%d/%d", p.Strategy, p.N, p.Threads)
	}
	cm := in.Report().CounterMap()
	if p.Updates != cm["updates"]+cm["bulk-elems"] {
		t.Errorf("profile updates = %d, want telemetry updates+bulk-elems = %d",
			p.Updates, cm["updates"]+cm["bulk-elems"])
	}
	if p.Updates == 0 {
		t.Error("profile has no update denominator")
	}
	// Exact sampling: the profiler's foreign total must match the
	// telemetry counter bump-for-bump.
	if got := p.Totals["keeper-foreign"]; got != cm["keeper-foreign"] {
		t.Errorf("profiled foreign events = %d, telemetry counted %d", got, cm["keeper-foreign"])
	}
	if cls, _ := p.DominantClass(); cls != "keeper-foreign" {
		t.Errorf("dominant class %q, want keeper-foreign", cls)
	}
	if len(p.TopLines(8)) == 0 {
		t.Error("no hot lines on a cross-owner workload")
	}
	for i := range out {
		if out[i] != threads {
			t.Fatalf("out[%d] = %v, want %d (profiling changed the result)", i, out[i], threads)
		}
	}

	// Reset must clear the sketches along with the counters.
	in.Reset()
	if p := in.HotspotProfile(); p.TotalConflicts() != 0 || p.Updates != 0 {
		t.Errorf("reset left conflicts=%d updates=%d", p.TotalConflicts(), p.Updates)
	}
}

// BenchmarkHotspotOverheadConv measures the conv back-propagation with
// telemetry alone against telemetry plus the contention profiler at the
// default 1-in-64 sampling — the end-to-end cost the overhead-smoke
// budget bounds microscopically in internal/core.
func BenchmarkHotspotOverheadConv(b *testing.B) {
	const n, threads = 1 << 20, 2
	seed := convSeed(n)
	out := make([]float32, n)
	w := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	b.Run("telemetry", func(b *testing.B) {
		team := spray.NewTeam(threads)
		defer team.Close()
		r := spray.New(spray.Keeper(), out, threads)
		in := spray.Instrument(team, r)
		defer in.Detach()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunBackprop(team, r, seed)
		}
		b.SetBytes(int64(n * 4))
	})
	b.Run("telemetry+hotspot", func(b *testing.B) {
		team := spray.NewTeam(threads)
		defer team.Close()
		r := spray.New(spray.Keeper(), out, threads)
		in := spray.Instrument(team, r)
		defer in.Detach()
		in.EnableHotspot(n, spray.HotspotOptions{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunBackprop(team, r, seed)
		}
		b.SetBytes(int64(n * 4))
	})
}

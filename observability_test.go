package spray_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"spray"
	"spray/internal/conv"
	"spray/internal/obs"
	"spray/internal/telemetry"
)

// TestServeMetricsPrometheusRoundTrip is the satellite acceptance: bind
// an ephemeral port, and the returned address must round-trip to a
// successful, format-valid /metrics scrape carrying the instrumented
// reducer's series; the legacy expvar endpoint must ride along.
func TestServeMetricsPrometheusRoundTrip(t *testing.T) {
	srv, err := spray.ServeMetrics("localhost:0")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer srv.Close()

	const n, threads = 1 << 14, 2
	out := make([]float32, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Dense(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()
	in.Publish()
	w := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	w.RunBackprop(team, r, convSeed(n))

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	scrape, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("/metrics failed Prometheus validation: %v", err)
	}
	if v, ok := scrape.Value("spray_events_total", "strategy=dense", "kind=bulk_elems"); !ok || v == 0 {
		t.Errorf("dense bulk_elems series = %v, %v (want nonzero)", v, ok)
	}
	if v, ok := scrape.Value("spray_regions_total", "strategy=dense"); !ok || v < 1 {
		t.Errorf("dense regions = %v, %v", v, ok)
	}

	vresp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatalf("expvar scrape: %v", err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", vresp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar payload: %v", err)
	}
	if _, ok := vars["spray"]; !ok {
		t.Error("/debug/vars missing the published spray export")
	}
}

// TestFlightRecorderDumpOnWorkerPanic is the tentpole acceptance: after a
// forced worker panic, the flight dump must contain the panic event and
// the panicking region's last telemetry snapshot (strategy identified,
// counters nonzero).
func TestFlightRecorderDumpOnWorkerPanic(t *testing.T) {
	d := spray.EnableFlightRecorder(spray.DiagnosticsOptions{PollInterval: -1})
	defer spray.DisableFlightRecorder()

	const n, threads = 1 << 12, 2
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Atomic(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	// A healthy region first, so the crash snapshot has counters to show.
	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := from; i < to; i++ {
				acc.Add(i, 1)
			}
		})

	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("panicking region did not panic")
			}
			if _, ok := rec.(*spray.WorkerPanic); !ok {
				t.Fatalf("recovered %T, want *spray.WorkerPanic", rec)
			}
		}()
		spray.RunReduction(team, r, 0, n, spray.Static(),
			func(acc spray.Accessor[float64], from, to int) {
				panic("forced crash for the flight recorder")
			})
	}()

	evs := spray.Events()
	foundPanic := false
	for _, ev := range evs {
		if ev.Source == "panic" && strings.Contains(ev.Message, "forced crash") {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Fatalf("no panic event recorded: %+v", evs)
	}

	var buf bytes.Buffer
	if err := d.Flight.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Entries []struct {
			Kind    string `json:"kind"`
			Samples []struct {
				Strategy string            `json:"strategy"`
				Counters map[string]uint64 `json:"counters"`
			} `json:"samples"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("flight dump not valid JSON: %v", err)
	}
	var panicEntry, snapWithCounters bool
	for _, e := range dump.Entries {
		if e.Kind == "panic" {
			panicEntry = true
		}
		for _, s := range e.Samples {
			if s.Strategy == "atomic" && s.Counters["updates"] > 0 {
				snapWithCounters = true
			}
		}
	}
	if !panicEntry {
		t.Error("flight dump has no panic entry")
	}
	if !snapWithCounters {
		t.Errorf("flight dump lacks the panicking region's snapshot:\n%s", buf.String())
	}
}

// TestCASStormRaisesAnomalyEvent is the anomaly-pillar acceptance: calm
// contention-free regions build the baseline, then a duplicate-heavy
// storm on the atomic strategy must raise an event naming cas-retries and
// suggesting the write-combining remediation.
func TestCASStormRaisesAnomalyEvent(t *testing.T) {
	d := spray.EnableFlightRecorder(spray.DiagnosticsOptions{
		PollInterval:      -1, // tests tick manually
		AnomalySigma:      4,
		AnomalyMinSamples: 4,
		AnomalyCooldown:   time.Millisecond,
	})
	defer spray.DisableFlightRecorder()

	const n, threads = 1 << 12, 4
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Atomic(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	// Calm phase: disjoint indices, zero contention; every region delivers
	// exactly n updates so the detector's shape key stays fixed.
	calm := func(acc spray.Accessor[float64], from, to int) {
		for i := from; i < to; i++ {
			acc.Add(i, 1)
		}
	}
	for round := 0; round < 8; round++ {
		spray.RunReduction(team, r, 0, n, spray.Static(), calm)
		d.Poll()
	}
	// Real wall timings jitter, so a wall-per-region event can legitimately
	// fire here on a noisy machine; only a contention anomaly would be a bug.
	for _, ev := range spray.Events() {
		if ev.Counter == "cas-retries" {
			t.Fatalf("calm phase emitted a CAS anomaly: %+v", ev)
		}
	}
	before := in.Report().CounterMap()["cas-retries"]

	// The storm: same update count, but every thread hammers index 0.
	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := from; i < to; i++ {
				acc.Add(0, 1)
			}
		})
	retries := in.Report().CounterMap()["cas-retries"] - before
	if retries < uint64(n)/25 { // < 4% retry rate cannot clear a 4σ/0.01-floor bar
		// A single-P scheduler rarely interleaves the CAS loops, so no
		// retries materialize from real threads. Fall back to replaying the
		// storm through the provider registry — the same end-to-end path
		// (EnableFlightRecorder options → Poll → Events), deterministic on
		// any machine.
		t.Logf("only %d real retries (GOMAXPROCS=%d); injecting storm via a synthetic provider",
			retries, runtime.GOMAXPROCS(0))
		in.Detach()
		spray.DisableFlightRecorder()
		d = spray.EnableFlightRecorder(spray.DiagnosticsOptions{
			PollInterval:      -1,
			AnomalySigma:      4,
			AnomalyMinSamples: 4,
			AnomalyCooldown:   time.Millisecond,
		})
		cum := obs.Sample{Strategy: "atomic", Threads: threads}
		id := obs.RegisterProvider(func() obs.Sample { return cum })
		defer obs.UnregisterProvider(id)
		advance := func(stormRetries uint64) {
			cum.Regions++
			cum.Wall += time.Millisecond
			cum.Counters[telemetry.Updates] += n
			cum.Counters[telemetry.CASRetries] += stormRetries
			d.Poll()
		}
		for i := 0; i < 8; i++ {
			advance(8) // calm: ~0.2% retry rate
		}
		advance(n / 2) // duplicate-heavy storm: 50% retry rate
		retries = n / 2
	} else {
		d.Poll()
	}

	var storm *spray.DiagEvent
	for _, ev := range spray.Events() {
		if ev.Source == "anomaly" && ev.Counter == "cas-retries" {
			ev := ev
			storm = &ev
			break
		}
	}
	if storm == nil {
		t.Fatalf("no cas-retries anomaly after the storm; events: %+v, retries=%d",
			spray.Events(), retries)
	}
	if storm.Strategy != "atomic" || storm.Metric != "cas-retry-rate" {
		t.Errorf("event identity %q/%q", storm.Strategy, storm.Metric)
	}
	if !strings.Contains(storm.Message, "cas-retries") || !strings.Contains(storm.Suggestion, "binned") {
		t.Errorf("event text lacks attribution/remediation: %q / %q", storm.Message, storm.Suggestion)
	}
	// The event must also have landed in the flight recorder's context.
	if et := d.Events.Seq(); et == 0 {
		t.Error("event ring sequence still zero")
	}
}

// TestObsOffStateIsAbsent pins the off state the overhead guard relies
// on: without EnableFlightRecorder there is no global diagnostics object
// and an uninstrumented run registers no providers — the reduction hot
// path cannot be observed, so it cannot be slowed.
func TestObsOffStateIsAbsent(t *testing.T) {
	spray.DisableFlightRecorder()
	if spray.Events() != nil {
		t.Error("Events() non-nil with diagnostics off")
	}
	const n, threads = 1 << 12, 2
	out := make([]float32, n)
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Dense(), out, threads)
	w := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	w.RunBackprop(team, r, convSeed(n)) // uninstrumented: nothing registers
	if got := obs.Samples(); len(got) != 0 {
		t.Errorf("uninstrumented run registered %d providers", len(got))
	}
}

// BenchmarkObsOffOverheadConv extends the telemetry overhead guard to the
// diagnostics layer: the "off" flavor runs with the flight recorder and
// anomaly detector absent (the default), the "enabled" flavor with the
// full diagnostics polling at 10 ms. `make overhead-smoke` tracks the off
// flavor against BenchmarkTelemetryOverheadConv/off — they must be the
// same number, because the obs off state is the absence of providers.
func BenchmarkObsOffOverheadConv(b *testing.B) {
	const n, threads = 1 << 20, 2
	seed := convSeed(n)
	out := make([]float32, n)
	w := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	b.Run("off", func(b *testing.B) {
		spray.DisableFlightRecorder()
		team := spray.NewTeam(threads)
		defer team.Close()
		r := spray.New(spray.BlockCAS(1024), out, threads)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunBackprop(team, r, seed)
		}
		b.SetBytes(int64(n * 4))
	})
	b.Run("enabled", func(b *testing.B) {
		spray.EnableFlightRecorder(spray.DiagnosticsOptions{PollInterval: 10 * time.Millisecond})
		defer spray.DisableFlightRecorder()
		team := spray.NewTeam(threads)
		defer team.Close()
		r := spray.New(spray.BlockCAS(1024), out, threads)
		in := spray.Instrument(team, r)
		defer in.Detach()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RunBackprop(team, r, seed)
		}
		b.SetBytes(int64(n * 4))
	})
}

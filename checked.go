package spray

import (
	"fmt"
	"sync/atomic"

	"spray/internal/core"
	"spray/internal/telemetry"
)

// Checked wraps a Reducer with contract validation for debugging: Add
// indices must be in range, each thread's Accessor must be requested at
// most once per region, and Add after Done panics. The wrapper costs one
// extra bounds check and one flag load per Add; use it while developing a
// parallel loop, then drop the wrapper (the underlying strategies do not
// pay for validation in production, matching the paper's thin-wrapper
// design).
func Checked[T Value](r Reducer[T], length int) Reducer[T] {
	if length < 0 {
		panic("spray: Checked with negative length")
	}
	return &checkedReducer[T]{inner: r, length: length, issued: make([]atomic.Bool, r.Threads())}
}

type checkedReducer[T Value] struct {
	inner  Reducer[T]
	length int
	issued []atomic.Bool
}

type checkedAccessor[T Value] struct {
	inner  BulkAccessor[T]
	parent *checkedReducer[T]
	tid    int
	done   bool
}

func (c *checkedReducer[T]) Private(tid int) Accessor[T] {
	if tid < 0 || tid >= len(c.issued) {
		panic(fmt.Sprintf("spray: Private(%d) outside team of %d", tid, len(c.issued)))
	}
	if !c.issued[tid].CompareAndSwap(false, true) {
		panic(fmt.Sprintf("spray: Private(%d) requested twice in one region", tid))
	}
	return &checkedAccessor[T]{inner: Bulk(c.inner.Private(tid)), parent: c, tid: tid}
}

func (a *checkedAccessor[T]) Add(i int, v T) {
	if a.done {
		panic(fmt.Sprintf("spray: Add on thread %d after Done", a.tid))
	}
	if i < 0 || i >= a.parent.length {
		panic(fmt.Sprintf("spray: Add(%d) outside array of length %d (thread %d)", i, a.parent.length, a.tid))
	}
	a.inner.Add(i, v)
}

// AddN validates the whole run up front, then forwards it to the inner
// accessor's bulk path.
func (a *checkedAccessor[T]) AddN(base int, vals []T) {
	if a.done {
		panic(fmt.Sprintf("spray: AddN on thread %d after Done", a.tid))
	}
	if base < 0 || base+len(vals) > a.parent.length {
		panic(fmt.Sprintf("spray: AddN(%d, len %d) outside array of length %d (thread %d)",
			base, len(vals), a.parent.length, a.tid))
	}
	a.inner.AddN(base, vals)
}

// Scatter validates batch shape and every index, then forwards the batch
// to the inner accessor's bulk path.
func (a *checkedAccessor[T]) Scatter(idx []int32, vals []T) {
	if a.done {
		panic(fmt.Sprintf("spray: Scatter on thread %d after Done", a.tid))
	}
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("spray: Scatter with %d indices but %d values (thread %d)", len(idx), len(vals), a.tid))
	}
	for _, i := range idx {
		if i < 0 || int(i) >= a.parent.length {
			panic(fmt.Sprintf("spray: Scatter index %d outside array of length %d (thread %d)", i, a.parent.length, a.tid))
		}
	}
	a.inner.Scatter(idx, vals)
}

func (a *checkedAccessor[T]) Done() {
	if a.done {
		panic(fmt.Sprintf("spray: Done called twice on thread %d", a.tid))
	}
	a.done = true
	a.inner.Done()
}

func (c *checkedReducer[T]) reset() {
	for i := range c.issued {
		c.issued[i].Store(false)
	}
}

func (c *checkedReducer[T]) Finalize() {
	c.inner.Finalize()
	c.reset()
}

func (c *checkedReducer[T]) FinalizeWith(t *Team) {
	c.inner.FinalizeWith(t)
	c.reset()
}

// Instrument forwards the telemetry recorder to the wrapped reducer, so a
// Checked reducer stays observable.
func (c *checkedReducer[T]) Instrument(rec *telemetry.Recorder) {
	if in, ok := c.inner.(core.Instrumentable); ok {
		in.Instrument(rec)
	}
}

func (c *checkedReducer[T]) Bytes() int64     { return c.inner.Bytes() }
func (c *checkedReducer[T]) PeakBytes() int64 { return c.inner.PeakBytes() }
func (c *checkedReducer[T]) Name() string     { return "checked(" + c.inner.Name() + ")" }
func (c *checkedReducer[T]) Threads() int     { return c.inner.Threads() }

package spray

import (
	"fmt"
	"sync/atomic"
)

// Checked wraps a Reducer with contract validation for debugging: Add
// indices must be in range, each thread's Accessor must be requested at
// most once per region, and Add after Done panics. The wrapper costs one
// extra bounds check and one flag load per Add; use it while developing a
// parallel loop, then drop the wrapper (the underlying strategies do not
// pay for validation in production, matching the paper's thin-wrapper
// design).
func Checked[T Value](r Reducer[T], length int) Reducer[T] {
	if length < 0 {
		panic("spray: Checked with negative length")
	}
	return &checkedReducer[T]{inner: r, length: length, issued: make([]atomic.Bool, r.Threads())}
}

type checkedReducer[T Value] struct {
	inner  Reducer[T]
	length int
	issued []atomic.Bool
}

type checkedAccessor[T Value] struct {
	inner  Accessor[T]
	parent *checkedReducer[T]
	tid    int
	done   bool
}

func (c *checkedReducer[T]) Private(tid int) Accessor[T] {
	if tid < 0 || tid >= len(c.issued) {
		panic(fmt.Sprintf("spray: Private(%d) outside team of %d", tid, len(c.issued)))
	}
	if !c.issued[tid].CompareAndSwap(false, true) {
		panic(fmt.Sprintf("spray: Private(%d) requested twice in one region", tid))
	}
	return &checkedAccessor[T]{inner: c.inner.Private(tid), parent: c, tid: tid}
}

func (a *checkedAccessor[T]) Add(i int, v T) {
	if a.done {
		panic(fmt.Sprintf("spray: Add on thread %d after Done", a.tid))
	}
	if i < 0 || i >= a.parent.length {
		panic(fmt.Sprintf("spray: Add(%d) outside array of length %d (thread %d)", i, a.parent.length, a.tid))
	}
	a.inner.Add(i, v)
}

func (a *checkedAccessor[T]) Done() {
	if a.done {
		panic(fmt.Sprintf("spray: Done called twice on thread %d", a.tid))
	}
	a.done = true
	a.inner.Done()
}

func (c *checkedReducer[T]) reset() {
	for i := range c.issued {
		c.issued[i].Store(false)
	}
}

func (c *checkedReducer[T]) Finalize() {
	c.inner.Finalize()
	c.reset()
}

func (c *checkedReducer[T]) FinalizeWith(t *Team) {
	c.inner.FinalizeWith(t)
	c.reset()
}

func (c *checkedReducer[T]) Bytes() int64     { return c.inner.Bytes() }
func (c *checkedReducer[T]) PeakBytes() int64 { return c.inner.PeakBytes() }
func (c *checkedReducer[T]) Name() string     { return "checked(" + c.inner.Name() + ")" }
func (c *checkedReducer[T]) Threads() int     { return c.inner.Threads() }

module spray

go 1.24

module spray

go 1.22

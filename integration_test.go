package spray_test

// End-to-end checks of the command-line harnesses: build each binary
// once and run it with a minimal configuration, asserting on the output
// structure. Skipped under -short (they shell out to the go tool).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every cmd/ binary into a temp dir once per test run.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building cmds: %v\n%s", err, out)
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCommandsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped under -short")
	}
	bins := buildCmds(t)
	tmp := t.TempDir()

	t.Run("sprayconv", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "sprayconv"),
			"-figure", "11", "-n", "20000", "-threads", "1,2",
			"-strategies", "atomic,keeper", "-repeats", "1", "-min-time", "5ms",
			"-csv", filepath.Join(tmp, "f11.csv"))
		for _, want := range []string{"Figure 11", "atomic", "keeper", "sequential baseline"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
		csv, err := os.ReadFile(filepath.Join(tmp, "f11.csv"))
		if err != nil || !strings.HasPrefix(string(csv), "series,x,mean_s") {
			t.Errorf("csv missing or malformed: %v", err)
		}
	})

	t.Run("sprayconv-fig13", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "sprayconv"),
			"-figure", "13", "-n", "20000", "-threads", "2",
			"-blocks", "64,256", "-repeats", "1", "-min-time", "5ms")
		for _, want := range []string{"Figure 13", "block-cas-64", "block-private-256"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q", want)
			}
		}
	})

	t.Run("spraygen-and-spraytmv-file", func(t *testing.T) {
		mtx := filepath.Join(tmp, "m.mtx")
		run(t, filepath.Join(bins, "spraygen"),
			"-kind", "banded", "-rows", "3000", "-per-row", "5", "-half-band", "30", "-o", mtx)
		out := run(t, filepath.Join(bins, "spraytmv"),
			"-matrix", mtx, "-threads", "1,2", "-strategies", "atomic,block-cas-256",
			"-repeats", "1", "-min-time", "5ms")
		for _, want := range []string{"transpose-matrix-vector", "mkl-legacy", "mkl-ie-hint", "block-cas-256"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("spraylulesh", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "spraylulesh"),
			"-edge", "5", "-cycles", "3", "-threads", "1,2",
			"-schemes", "original,atomic", "-repeats", "1")
		for _, want := range []string{"Figure 16", "lulesh-original", "spray-atomic"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("spraylulesh-verify", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "spraylulesh"),
			"-verify", "block-cas-256", "-edge", "6", "-cycles", "5",
			"-max-threads", "2", "-regions", "3", "-cost", "2")
		for _, want := range []string{"Run completed", "MaxAbsDiff", "spray-block-cas-256"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("sprayadvise", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "sprayadvise"),
			"-workload", "conv", "-n", "50000", "-threads", "4")
		for _, want := range []string{"recommendation", "keeper", "ownership match"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("spraycmp", func(t *testing.T) {
		csvA := filepath.Join(tmp, "a.csv")
		csvB := filepath.Join(tmp, "b.csv")
		for _, path := range []string{csvA, csvB} {
			run(t, filepath.Join(bins, "sprayconv"),
				"-figure", "11", "-n", "10000", "-threads", "1",
				"-strategies", "atomic", "-repeats", "1", "-min-time", "2ms",
				"-csv", path)
		}
		out := run(t, filepath.Join(bins, "spraycmp"), csvA, csvB)
		for _, want := range []string{"comparing", "atomic", "delta"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("bad-flags-fail", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(bins, "sprayconv"), "-figure", "99")
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("unknown figure accepted:\n%s", out)
		}
		cmd = exec.Command(filepath.Join(bins, "spraytmv"), "-matrix", "/does/not/exist.mtx")
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("missing matrix file accepted:\n%s", out)
		}
	})
}

package num

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicAdd64Concurrent(t *testing.T) {
	var x float64
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				AtomicAdd64(&x, 1)
			}
		}()
	}
	wg.Wait()
	if x != workers*each {
		t.Fatalf("lost updates: got %v, want %v", x, workers*each)
	}
}

func TestAtomicAdd32Concurrent(t *testing.T) {
	var x float32
	const workers, each = 8, 1000 // keep the total exactly representable
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				AtomicAdd32(&x, 1)
			}
		}()
	}
	wg.Wait()
	if x != workers*each {
		t.Fatalf("lost updates: got %v, want %v", x, workers*each)
	}
}

func TestAtomicAddGenericDispatch(t *testing.T) {
	f64 := make([]float64, 3)
	AtomicAdd(f64, 1, 2.5)
	AtomicAdd(f64, 1, 0.5)
	if f64[1] != 3 {
		t.Errorf("float64 slice add: got %v, want 3", f64[1])
	}
	f32 := make([]float32, 3)
	AtomicAdd(f32, 2, 1.25)
	AtomicAdd(f32, 2, 1.25)
	if f32[2] != 2.5 {
		t.Errorf("float32 slice add: got %v, want 2.5", f32[2])
	}
	if got := AtomicLoad(f64, 1); got != 3 {
		t.Errorf("AtomicLoad float64: got %v", got)
	}
	if got := AtomicLoad(f32, 2); got != 2.5 {
		t.Errorf("AtomicLoad float32: got %v", got)
	}
}

func TestAtomicAddNegativeAndFractional(t *testing.T) {
	f := quick.Check(func(vals []float64) bool {
		var want float64
		var x float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			want += v
			AtomicAdd64(&x, v)
		}
		return x == want // single goroutine: order identical, must be exact
	}, nil)
	if f != nil {
		t.Fatal(f)
	}
}

func TestKahanBeatsNaive(t *testing.T) {
	// Sum 1 + n tiny values that individually vanish against 1.0.
	const n = 1_000_000
	tiny := 1e-16
	var naive float64 = 1
	var k Kahan
	k.Add(1)
	for i := 0; i < n; i++ {
		naive += tiny
		k.Add(tiny)
	}
	want := 1 + float64(n)*tiny
	if math.Abs(k.Sum-want) >= math.Abs(naive-want) {
		t.Errorf("kahan %v not closer to %v than naive %v", k.Sum, want, naive)
	}
	if !RelClose(k.Sum, want, 1e-12) {
		t.Errorf("kahan sum %v too far from %v", k.Sum, want)
	}
}

func TestRelClose(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-3, false},
		{0, 1e-15, 1e-12, true},    // absolute fallback near zero
		{1e9, 1e9 + 1, 1e-6, true}, // relative at scale
		{math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := RelClose(c.a, c.b, c.tol); got != c.want {
			t.Errorf("RelClose(%v,%v,%v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2.5, 2}
	if got := MaxAbsDiff(a, b); got != 1 {
		t.Errorf("MaxAbsDiff = %v, want 1", got)
	}
	if got := MaxAbsDiff(a, a); got != 0 {
		t.Errorf("MaxAbsDiff self = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxAbsDiff length mismatch did not panic")
		}
	}()
	MaxAbsDiff(a, b[:2])
}

// Package num provides the numeric foundation shared by every reducer:
// the floating-point type constraint, atomic compare-and-swap updates on
// float words (the way compilers lower "#pragma omp atomic update" on
// systems without native floating-point fetch-and-add), and accuracy
// helpers used by the test suite.
package num

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Float is the element type constraint for all reducers. The paper's C++
// implementation is templated over arbitrary types with compound
// assignment; the Go port supports the two floating-point widths the
// evaluation uses. Named float types are accepted via ~.
type Float interface {
	~float32 | ~float64
}

// AtomicAdd64 adds v to *p atomically using a CAS loop over the bit
// pattern. This mirrors the compare-and-swap lowering of an OpenMP atomic
// update on a double.
func AtomicAdd64(p *float64, v float64) {
	u := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(u)
		new := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(u, old, new) {
			return
		}
	}
}

// AtomicAdd32 adds v to *p atomically using a CAS loop over the bit
// pattern, the float32 analogue of AtomicAdd64.
func AtomicAdd32(p *float32, v float32) {
	u := (*uint32)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint32(u)
		new := math.Float32bits(math.Float32frombits(old) + v)
		if atomic.CompareAndSwapUint32(u, old, new) {
			return
		}
	}
}

// AtomicAdd adds v to slice element s[i] atomically. It dispatches on the
// element width at compile time (the size switch is resolved per
// instantiation), so the generic wrapper costs one comparison.
func AtomicAdd[T Float](s []T, i int, v T) {
	switch unsafe.Sizeof(v) {
	case 8:
		AtomicAdd64((*float64)(unsafe.Pointer(&s[i])), float64(v))
	default:
		AtomicAdd32((*float32)(unsafe.Pointer(&s[i])), float32(v))
	}
}

// AtomicLoad returns s[i] with an atomic load of its bit pattern.
func AtomicLoad[T Float](s []T, i int) T {
	if unsafe.Sizeof(s[i]) == 8 {
		u := (*uint64)(unsafe.Pointer(&s[i]))
		return T(math.Float64frombits(atomic.LoadUint64(u)))
	}
	u := (*uint32)(unsafe.Pointer(&s[i]))
	return T(math.Float32frombits(atomic.LoadUint32(u)))
}

// Kahan is a compensated accumulator. The test suite uses it to build
// high-accuracy reference sums against which reducer results are compared
// with a relative tolerance.
type Kahan struct {
	Sum float64
	c   float64
}

// Add folds v into the compensated sum.
func (k *Kahan) Add(v float64) {
	y := v - k.c
	t := k.Sum + y
	k.c = (t - k.Sum) - y
	k.Sum = t
}

// RelClose reports whether a and b agree within relative tolerance tol
// (absolute tolerance tol for values near zero). Reductions reorder
// floating-point additions, so exact equality is the wrong test.
func RelClose(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// MaxAbsDiff returns the largest elementwise |a[i]-b[i]|. Panics if the
// slices differ in length.
func MaxAbsDiff[T Float](a, b []T) float64 {
	if len(a) != len(b) {
		panic("num: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AtomicAdd64Retries is AtomicAdd64 with telemetry: it reports how many
// CAS attempts lost to a concurrent writer before one succeeded (0 under
// no contention). Kept separate from AtomicAdd so the uninstrumented hot
// path carries no counter bookkeeping.
func AtomicAdd64Retries(p *float64, v float64) int {
	u := (*uint64)(unsafe.Pointer(p))
	retries := 0
	for {
		old := atomic.LoadUint64(u)
		new := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(u, old, new) {
			return retries
		}
		retries++
	}
}

// AtomicAdd32Retries is the float32 analogue of AtomicAdd64Retries.
func AtomicAdd32Retries(p *float32, v float32) int {
	u := (*uint32)(unsafe.Pointer(p))
	retries := 0
	for {
		old := atomic.LoadUint32(u)
		new := math.Float32bits(math.Float32frombits(old) + v)
		if atomic.CompareAndSwapUint32(u, old, new) {
			return retries
		}
		retries++
	}
}

// AtomicAddRetries adds v to s[i] atomically and returns the number of
// failed CAS attempts — the instrumented sibling of AtomicAdd.
func AtomicAddRetries[T Float](s []T, i int, v T) int {
	switch unsafe.Sizeof(v) {
	case 8:
		return AtomicAdd64Retries((*float64)(unsafe.Pointer(&s[i])), float64(v))
	default:
		return AtomicAdd32Retries((*float32)(unsafe.Pointer(&s[i])), float32(v))
	}
}

package lulesh

import (
	"math"
	"testing"

	"spray/internal/par"
)

// gradDomain builds a fresh domain with a prescribed velocity field and
// unit vnew, ready for the gradient pass.
func gradDomain(edge int, vel func(x, y, z float64) (vx, vy, vz float64)) *Domain {
	d := New(edge, Defaults())
	for n := 0; n < d.Mesh.NumNode; n++ {
		d.XD[n], d.YD[n], d.ZD[n] = vel(d.X[n], d.Y[n], d.Z[n])
	}
	for e := range d.vnew {
		d.vnew[e] = 1
	}
	return d
}

func TestMonotonicQGradientsUniformTranslation(t *testing.T) {
	d := gradDomain(3, func(x, y, z float64) (float64, float64, float64) { return 3, -1, 2 })
	team := par.NewTeam(2)
	defer team.Close()
	d.calcMonotonicQGradients(team)
	for e := 0; e < d.Mesh.NumElem; e++ {
		if math.Abs(d.delvXi[e])+math.Abs(d.delvEta[e])+math.Abs(d.delvZeta[e]) > 1e-12 {
			t.Fatalf("elem %d: translation produced gradients %v %v %v",
				e, d.delvXi[e], d.delvEta[e], d.delvZeta[e])
		}
	}
}

func TestMonotonicQGradientsUniformCompression(t *testing.T) {
	// v = −c·r on a mesh with element spacing h: the directional
	// velocity gradients are −c and the position gradients equal h, so
	// their product (the velocity jump across the element) is −c·h.
	const edge, c = 4, 2.5
	d := gradDomain(edge, func(x, y, z float64) (float64, float64, float64) {
		return -c * x, -c * y, -c * z
	})
	h := d.Params.SideLen / edge
	team := par.NewTeam(2)
	defer team.Close()
	d.calcMonotonicQGradients(team)
	for e := 0; e < d.Mesh.NumElem; e++ {
		for name, got := range map[string]float64{
			"delx_xi": d.delxXi[e], "delx_eta": d.delxEta[e], "delx_zeta": d.delxZeta[e],
		} {
			if math.Abs(got-h) > 1e-9 {
				t.Fatalf("elem %d %s = %v, want %v", e, name, got, h)
			}
		}
		for name, got := range map[string]float64{
			"delv_xi": d.delvXi[e], "delv_eta": d.delvEta[e], "delv_zeta": d.delvZeta[e],
		} {
			if math.Abs(got-(-c)) > 1e-9 {
				t.Fatalf("elem %d %s = %v, want %v", e, name, got, -c)
			}
		}
	}
}

func TestMonotonicQZeroForSmoothCompression(t *testing.T) {
	// The limiter's purpose: a smooth (here uniform) compression field
	// must produce no artificial viscosity away from free boundaries.
	const edge = 5
	d := gradDomain(edge, func(x, y, z float64) (float64, float64, float64) {
		return -x, -y, -z
	})
	for e := range d.VDOV {
		d.VDOV[e] = -3 // compressing everywhere
	}
	team := par.NewTeam(2)
	defer team.Close()
	d.calcMonotonicQGradients(team)
	d.calcMonotonicQRegion(team)
	// Interior element: fully limited → zero q.
	elem := func(i, j, k int) int { return k*edge*edge + j*edge + i }
	for _, e := range []int{elem(1, 1, 1), elem(2, 2, 2), elem(1, 2, 3)} {
		if d.QL[e] != 0 || d.QQ[e] != 0 {
			t.Errorf("interior elem %d: ql=%v qq=%v, want 0", e, d.QL[e], d.QQ[e])
		}
	}
	// A −x symmetry-plane element mirrors its own gradient: still 0.
	if e := elem(0, 2, 2); d.QL[e] != 0 || d.QQ[e] != 0 {
		t.Errorf("symm elem: ql=%v qq=%v", d.QL[e], d.QQ[e])
	}
	// A +x free-boundary element sees delvp = 0 → limiter opens → q > 0.
	if e := elem(edge-1, 2, 2); d.QL[e] <= 0 {
		t.Errorf("free-boundary elem: ql=%v, want > 0", d.QL[e])
	}
}

func TestMonotonicQZeroUnderExpansion(t *testing.T) {
	const edge = 3
	d := gradDomain(edge, func(x, y, z float64) (float64, float64, float64) {
		return x, y, z // expanding
	})
	for e := range d.VDOV {
		d.VDOV[e] = 3
	}
	team := par.NewTeam(1)
	defer team.Close()
	d.calcMonotonicQGradients(team)
	d.calcMonotonicQRegion(team)
	for e := 0; e < d.Mesh.NumElem; e++ {
		if d.QL[e] != 0 || d.QQ[e] != 0 {
			t.Fatalf("expansion produced q at %d: %v/%v", e, d.QL[e], d.QQ[e])
		}
	}
}

func TestMonotonicQPositiveAtShock(t *testing.T) {
	// A velocity discontinuity (one compressing slab) must generate
	// viscosity in the compressing elements.
	const edge = 6
	d := gradDomain(edge, func(x, y, z float64) (float64, float64, float64) {
		if x < d_halfway {
			return 5, 0, 0 // rushing toward the static half
		}
		return 0, 0, 0
	})
	team := par.NewTeam(2)
	defer team.Close()
	d.calcMonotonicQGradients(team)
	for e := range d.VDOV {
		d.VDOV[e] = d.delvXi[e] // compression where xi gradient negative
	}
	d.calcMonotonicQRegion(team)
	var positive int
	for e := 0; e < d.Mesh.NumElem; e++ {
		if d.QL[e] > 0 || d.QQ[e] > 0 {
			positive++
		}
		if d.QL[e] < 0 || d.QQ[e] < 0 {
			t.Fatalf("negative viscosity at %d: %v/%v", e, d.QL[e], d.QQ[e])
		}
	}
	if positive == 0 {
		t.Error("no viscosity generated at the shock")
	}
}

const d_halfway = 1.125 / 2

func TestCalcPressureGammaLaw(t *testing.T) {
	// p = (2/3)·e/v for the gamma-law material.
	p, bvc, pbvc := calcPressure(3.0, 1.0/0.5-1, 1e-7, 0) // v = 0.5
	if math.Abs(p-4.0) > 1e-12 {
		t.Errorf("p=%v, want 4", p)
	}
	if math.Abs(bvc-4.0/3.0) > 1e-12 || pbvc != 2.0/3.0 {
		t.Errorf("bvc=%v pbvc=%v", bvc, pbvc)
	}
	// Cutoff.
	if p, _, _ := calcPressure(1e-9, 0, 1e-7, 0); p != 0 {
		t.Errorf("cutoff failed: %v", p)
	}
	// Floor.
	if p, _, _ := calcPressure(-5, 0, 1e-7, 0); p != 0 {
		t.Errorf("pmin floor failed: %v", p)
	}
	if p, _, _ := calcPressure(-5, 0, 1e-7, -1); p != -1 {
		t.Errorf("negative pmin floor: %v", p)
	}
}

func TestEOSIdleElementStaysIdle(t *testing.T) {
	// An element with no volume change, no q and no energy must stay
	// exactly at rest through the EOS.
	d := New(3, Defaults())
	d.E[0] = 0 // remove the blast for this test
	for e := range d.vnew {
		d.vnew[e] = 1
	}
	team := par.NewTeam(1)
	defer team.Close()
	if err := d.applyMaterialProperties(team); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < d.Mesh.NumElem; e++ {
		if d.E[e] != 0 || d.P[e] != 0 || d.Q[e] != 0 || d.V[e] != 1 {
			t.Fatalf("idle elem %d changed: e=%v p=%v q=%v v=%v", e, d.E[e], d.P[e], d.Q[e], d.V[e])
		}
	}
}

func TestEOSCompressionHeats(t *testing.T) {
	// Compressing an energized element must raise pressure and energy
	// (adiabatic compression does positive work on the material).
	d := New(2, Defaults())
	e := 0
	d.E[e] = 10
	d.P[e] = 2.0 / 3.0 * 10
	for i := range d.vnew {
		d.vnew[i] = 1
	}
	d.vnew[e] = 0.9
	d.Delv[e] = -0.1
	team := par.NewTeam(1)
	defer team.Close()
	if err := d.applyMaterialProperties(team); err != nil {
		t.Fatal(err)
	}
	if d.E[e] <= 10 {
		t.Errorf("compression did not heat: e=%v", d.E[e])
	}
	if d.P[e] <= 2.0/3.0*10 {
		t.Errorf("compression did not pressurize: p=%v", d.P[e])
	}
	if d.V[e] != 0.9 {
		t.Errorf("volume not updated: %v", d.V[e])
	}
	if d.SS[e] <= 0 {
		t.Errorf("sound speed %v", d.SS[e])
	}
}

func TestQStopAborts(t *testing.T) {
	p := Defaults()
	p.QStop = 1e-20 // any viscosity triggers the abort
	d := New(4, p)
	team := par.NewTeam(1)
	defer team.Close()
	var err error
	for c := 0; c < 20 && err == nil; c++ {
		err = d.Step(team, Original())
	}
	if err == nil {
		t.Error("QStop never triggered")
	}
}

func TestRegionsPartitionElements(t *testing.T) {
	p := Defaults()
	p.NumRegions = 7
	p.RegionCost = 4
	d := New(6, p)
	sizes := d.RegionSizes()
	if len(sizes) != 7 {
		t.Fatalf("regions %d", len(sizes))
	}
	total := 0
	seen := make([]bool, d.Mesh.NumElem)
	for _, list := range d.regions {
		for _, e := range list {
			if seen[e] {
				t.Fatalf("element %d in two regions", e)
			}
			seen[e] = true
			total++
		}
	}
	if total != d.Mesh.NumElem {
		t.Fatalf("regions cover %d of %d elements", total, d.Mesh.NumElem)
	}
	// Cost model: every 5th region expensive.
	for r, rep := range d.regionRep {
		want := 1
		if r%5 == 0 {
			want = 4
		}
		if rep != want {
			t.Errorf("region %d rep=%d, want %d", r, rep, want)
		}
	}
}

func TestRegionsDoNotChangePhysics(t *testing.T) {
	// The region cost model adds pure re-computation: results must be
	// bit-identical to the single-material run.
	const edge, cycles = 6, 25
	run := func(regions, cost int) *Domain {
		p := Defaults()
		p.MaxCycles = cycles
		p.NumRegions = regions
		p.RegionCost = cost
		d := New(edge, p)
		team := par.NewTeam(3)
		defer team.Close()
		if _, err := d.Run(team, Original()); err != nil {
			t.Fatal(err)
		}
		return d
	}
	ref := run(1, 1)
	multi := run(8, 5)
	for e := range ref.E {
		if ref.E[e] != multi.E[e] || ref.P[e] != multi.P[e] || ref.V[e] != multi.V[e] {
			t.Fatalf("element %d state differs: e %v/%v p %v/%v", e,
				ref.E[e], multi.E[e], ref.P[e], multi.P[e])
		}
	}
	if ref.TotalEnergy() != multi.TotalEnergy() {
		t.Errorf("energies differ: %v vs %v", ref.TotalEnergy(), multi.TotalEnergy())
	}
}

func TestSingleRegionHasNoIndirection(t *testing.T) {
	d := New(3, Defaults())
	if d.RegionSizes() != nil {
		t.Errorf("single material built regions: %v", d.RegionSizes())
	}
}

package lulesh

import (
	"math"
	"strings"
	"testing"

	"spray"
	"spray/internal/par"
)

func smallParams(cycles int) Params {
	p := Defaults()
	p.MaxCycles = cycles
	return p
}

func TestSedovInitialization(t *testing.T) {
	d := New(5, Defaults())
	// Total nodal mass must equal total element mass (cube volume).
	var nodal, elem float64
	for _, m := range d.NodalMass {
		nodal += m
	}
	for _, m := range d.ElemMass {
		elem += m
	}
	want := math.Pow(d.Params.SideLen, 3) * d.Params.RefDens
	if math.Abs(nodal-want) > 1e-9 || math.Abs(elem-want) > 1e-9 {
		t.Errorf("mass: nodal %v elem %v want %v", nodal, elem, want)
	}
	// All energy in element 0.
	if d.E[0] <= 0 {
		t.Error("no blast energy deposited")
	}
	for e := 1; e < d.Mesh.NumElem; e++ {
		if d.E[e] != 0 {
			t.Fatalf("energy in element %d", e)
		}
	}
	if d.Dt <= 0 {
		t.Errorf("initial dt %v", d.Dt)
	}
	if err := d.CheckFinite(); err != nil {
		t.Error(err)
	}
}

func TestRunStableAndPhysical(t *testing.T) {
	d := New(8, smallParams(60))
	team := par.NewTeam(2)
	defer team.Close()
	e0 := d.TotalEnergy()
	cycles, err := d.Run(team, Original())
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 60 {
		t.Fatalf("ran %d cycles", cycles)
	}
	if err := d.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	// The blast must have done work: kinetic energy appears, internal
	// energy drops, total (internal + kinetic) is roughly conserved.
	ke := d.KineticEnergy()
	ie := d.TotalEnergy()
	if ke <= 0 {
		t.Error("no kinetic energy after blast")
	}
	if ie >= e0 {
		t.Errorf("internal energy did not decrease: %v -> %v", e0, ie)
	}
	// Hourglass damping and shock capture are dissipative, so total
	// energy drifts down slowly (measured ~9% over 100 cycles on coarse
	// meshes, first-cycle transient included). Divergence or gain would
	// indicate a bug.
	total := ie + ke
	if total > e0*1.001 {
		t.Errorf("energy increased: initial %v, final %v", e0, total)
	}
	if math.Abs(total-e0)/e0 > 0.15 {
		t.Errorf("energy drifted >15%%: initial %v, final %v", e0, total)
	}
	// The shock must move outward: origin-adjacent nodes have velocity.
	if d.Time <= 0 {
		t.Error("time did not advance")
	}
}

func TestSymmetryBoundaryHolds(t *testing.T) {
	d := New(6, smallParams(40))
	team := par.NewTeam(3)
	defer team.Close()
	if _, err := d.Run(team, Spray(spray.Atomic())); err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Mesh.SymmX {
		if d.XD[n] != 0 || d.X[n] != 0 {
			t.Fatalf("node %d left the x=0 plane: x=%v xd=%v", n, d.X[n], d.XD[n])
		}
	}
	for _, n := range d.Mesh.SymmZ {
		if d.ZD[n] != 0 || d.Z[n] != 0 {
			t.Fatalf("node %d left the z=0 plane: z=%v zd=%v", n, d.Z[n], d.ZD[n])
		}
	}
}

// TestSchemesAgree is the reproduction of the paper's correctness claim
// on LULESH: the original 8-copy scheme and every SPRAY reducer must
// produce the same simulation (up to floating-point reassociation).
func TestSchemesAgree(t *testing.T) {
	const edge, cycles = 6, 30
	ref := New(edge, smallParams(cycles))
	refTeam := par.NewTeam(1)
	if _, err := ref.Run(refTeam, Original()); err != nil {
		t.Fatal(err)
	}
	refTeam.Close()

	schemes := []ForceScheme{
		Original(),
		Spray(spray.Builtin()),
		Spray(spray.Dense()),
		Spray(spray.Atomic()),
		Spray(spray.Map()),
		Spray(spray.BTree(0)),
		Spray(spray.BlockPrivate(256)),
		Spray(spray.BlockLock(256)),
		Spray(spray.BlockCAS(256)),
		Spray(spray.Keeper()),
	}
	for _, fs := range schemes {
		for _, threads := range []int{1, 4} {
			d := New(edge, smallParams(cycles))
			team := par.NewTeam(threads)
			if _, err := d.Run(team, fs); err != nil {
				t.Fatalf("%s threads=%d: %v", fs.Name(), threads, err)
			}
			team.Close()
			// Compare energies and a position probe with a tolerance
			// that admits reassociated float sums but nothing else.
			if !close(d.TotalEnergy(), ref.TotalEnergy(), 1e-6) {
				t.Errorf("%s threads=%d: internal energy %v vs %v",
					fs.Name(), threads, d.TotalEnergy(), ref.TotalEnergy())
			}
			if !close(d.KineticEnergy(), ref.KineticEnergy(), 1e-6) {
				t.Errorf("%s threads=%d: kinetic energy %v vs %v",
					fs.Name(), threads, d.KineticEnergy(), ref.KineticEnergy())
			}
			maxDX := 0.0
			for n := range d.X {
				if dx := math.Abs(d.X[n] - ref.X[n]); dx > maxDX {
					maxDX = dx
				}
			}
			if maxDX > 1e-8*d.Params.SideLen {
				t.Errorf("%s threads=%d: positions diverged by %v", fs.Name(), threads, maxDX)
			}
		}
	}
}

func close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

func TestOriginalSchemeMemoryIs8Copies(t *testing.T) {
	d := New(5, smallParams(2))
	team := par.NewTeam(2)
	defer team.Close()
	fs := Original()
	if _, err := d.Run(team, fs); err != nil {
		t.Fatal(err)
	}
	want := int64(3 * 8 * d.Mesh.NumElem * 8)
	if fs.PeakBytes() != want {
		t.Errorf("original peak=%d, want %d", fs.PeakBytes(), want)
	}
}

func TestSprayMemoryBelowOriginalForSparseSchemes(t *testing.T) {
	const edge, cycles = 6, 5
	run := func(fs ForceScheme) int64 {
		d := New(edge, smallParams(cycles))
		team := par.NewTeam(4)
		defer team.Close()
		if _, err := d.Run(team, fs); err != nil {
			t.Fatal(err)
		}
		return fs.PeakBytes()
	}
	orig := run(Original())
	for _, st := range []spray.Strategy{spray.Atomic(), spray.BlockCAS(1024), spray.BlockLock(1024), spray.Keeper()} {
		if got := run(Spray(st)); got >= orig {
			t.Errorf("%s peak %d not below original %d", st, got, orig)
		}
	}
	// Dense with 4 threads privatizes 3 arrays x 4 threads: well above
	// the original's 8x replication on this mesh (nodes ≈ elems).
	if got := run(Spray(spray.Dense())); got <= orig/2 {
		t.Errorf("dense peak %d suspiciously small vs original %d", got, orig)
	}
}

func TestShockFrontMovesOutward(t *testing.T) {
	d := New(10, smallParams(80))
	team := par.NewTeam(2)
	defer team.Close()
	if _, err := d.Run(team, Spray(spray.BlockCAS(512))); err != nil {
		t.Fatal(err)
	}
	// Pressure near the origin must exceed pressure at the far corner,
	// and some elements beyond the origin cell must have been heated.
	if d.P[0] <= 0 {
		t.Errorf("origin pressure %v", d.P[0])
	}
	far := d.Mesh.NumElem - 1
	if d.P[far] >= d.P[0] {
		t.Errorf("far-corner pressure %v >= origin %v", d.P[far], d.P[0])
	}
	heated := 0
	for e := 1; e < d.Mesh.NumElem; e++ {
		if d.E[e] > 0 {
			heated++
		}
	}
	if heated == 0 {
		t.Error("shock did not propagate to any neighboring element")
	}
}

func TestStepErrorOnInvertedElement(t *testing.T) {
	d := New(3, smallParams(5))
	team := par.NewTeam(1)
	defer team.Close()
	// Sabotage: collapse one element by moving a node inside out.
	n := d.Mesh.ElemNodes(0)[6]
	d.X[n] = -10
	if err := d.Step(team, Original()); err == nil {
		t.Error("no error for inverted element")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		d := New(5, smallParams(20))
		team := par.NewTeam(3)
		defer team.Close()
		if _, err := d.Run(team, Original()); err != nil {
			t.Fatal(err)
		}
		return d.TotalEnergy()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("original scheme nondeterministic: %v vs %v", a, b)
	}
}

func TestStopTimeRespected(t *testing.T) {
	p := smallParams(100000)
	p.StopTime = 1e-6
	d := New(4, p)
	team := par.NewTeam(1)
	defer team.Close()
	if _, err := d.Run(team, Original()); err != nil {
		t.Fatal(err)
	}
	if d.Time < p.StopTime || d.Time > p.StopTime*1.0001 {
		t.Errorf("final time %v, want %v", d.Time, p.StopTime)
	}
}

func TestSummarize(t *testing.T) {
	const edge, cycles = 6, 20
	p := smallParams(cycles)
	d := New(edge, p)
	team := par.NewTeam(2)
	defer team.Close()
	if _, err := d.Run(team, Original()); err != nil {
		t.Fatal(err)
	}
	s := d.Summarize()
	if s.Edge != edge || s.Cycles != cycles {
		t.Errorf("shape %d/%d", s.Edge, s.Cycles)
	}
	if s.OriginEnergy <= 0 || s.TotalEnergy <= 0 || s.Kinetic <= 0 {
		t.Errorf("energies %v %v %v", s.OriginEnergy, s.TotalEnergy, s.Kinetic)
	}
	// Sedov symmetry: plane-0 diffs are float noise only.
	if s.MaxAbsDiff > 1e-8*s.OriginEnergy {
		t.Errorf("MaxAbsDiff %v too large", s.MaxAbsDiff)
	}
	if s.MaxRelDiff > 1e-8 {
		t.Errorf("MaxRelDiff %v too large", s.MaxRelDiff)
	}
	var buf strings.Builder
	s.Write(&buf)
	for _, want := range []string{"Run completed", "MaxAbsDiff", "origin energy"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

package lulesh

// The artificial-viscosity and equation-of-state stage, ported from
// LULESH 2.0: monotonic Q gradients (CalcMonotonicQGradientsForElems),
// the neighbor-limited Q region pass (CalcMonotonicQRegionForElems), and
// the three-pass energy/pressure update (CalcEnergyForElems /
// CalcPressureForElems / CalcSoundSpeedForElems) for the gamma-law
// material. All loops are elementwise with neighbor *gathers* — race-free
// DOALL parallelism, which is why the paper's reduction machinery is only
// needed in the force kernels.

import (
	"fmt"
	"math"
	"sync/atomic"

	"spray/internal/mesh"
	"spray/internal/par"
)

const ptiny = 1e-36

// calcMonotonicQGradients computes the velocity and position gradients in
// the three logical mesh directions for every element.
func (d *Domain) calcMonotonicQGradients(t *par.Team) {
	m := d.Mesh
	par.ParallelFor(t, 0, m.NumElem, par.Static(), func(tid, from, to int) {
		for i := from; i < to; i++ {
			nl := m.ElemNodes(i)
			var x, y, z, xv, yv, zv [8]float64
			for c, n := range nl {
				x[c], y[c], z[c] = d.X[n], d.Y[n], d.Z[n]
				xv[c], yv[c], zv[c] = d.XD[n], d.YD[n], d.ZD[n]
			}
			vol := d.VolO[i] * d.vnew[i]
			norm := 1.0 / (vol + ptiny)

			dxj := -0.25 * ((x[0] + x[1] + x[5] + x[4]) - (x[3] + x[2] + x[6] + x[7]))
			dyj := -0.25 * ((y[0] + y[1] + y[5] + y[4]) - (y[3] + y[2] + y[6] + y[7]))
			dzj := -0.25 * ((z[0] + z[1] + z[5] + z[4]) - (z[3] + z[2] + z[6] + z[7]))

			dxi := 0.25 * ((x[1] + x[2] + x[6] + x[5]) - (x[0] + x[3] + x[7] + x[4]))
			dyi := 0.25 * ((y[1] + y[2] + y[6] + y[5]) - (y[0] + y[3] + y[7] + y[4]))
			dzi := 0.25 * ((z[1] + z[2] + z[6] + z[5]) - (z[0] + z[3] + z[7] + z[4]))

			dxk := 0.25 * ((x[4] + x[5] + x[6] + x[7]) - (x[0] + x[1] + x[2] + x[3]))
			dyk := 0.25 * ((y[4] + y[5] + y[6] + y[7]) - (y[0] + y[1] + y[2] + y[3]))
			dzk := 0.25 * ((z[4] + z[5] + z[6] + z[7]) - (z[0] + z[1] + z[2] + z[3]))

			// zeta direction: i cross j.
			ax := dyi*dzj - dzi*dyj
			ay := dzi*dxj - dxi*dzj
			az := dxi*dyj - dyi*dxj
			d.delxZeta[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+ptiny)
			ax *= norm
			ay *= norm
			az *= norm
			dxv := 0.25 * ((xv[4] + xv[5] + xv[6] + xv[7]) - (xv[0] + xv[1] + xv[2] + xv[3]))
			dyv := 0.25 * ((yv[4] + yv[5] + yv[6] + yv[7]) - (yv[0] + yv[1] + yv[2] + yv[3]))
			dzv := 0.25 * ((zv[4] + zv[5] + zv[6] + zv[7]) - (zv[0] + zv[1] + zv[2] + zv[3]))
			d.delvZeta[i] = ax*dxv + ay*dyv + az*dzv

			// xi direction: j cross k.
			ax = dyj*dzk - dzj*dyk
			ay = dzj*dxk - dxj*dzk
			az = dxj*dyk - dyj*dxk
			d.delxXi[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+ptiny)
			ax *= norm
			ay *= norm
			az *= norm
			dxv = 0.25 * ((xv[1] + xv[2] + xv[6] + xv[5]) - (xv[0] + xv[3] + xv[7] + xv[4]))
			dyv = 0.25 * ((yv[1] + yv[2] + yv[6] + yv[5]) - (yv[0] + yv[3] + yv[7] + yv[4]))
			dzv = 0.25 * ((zv[1] + zv[2] + zv[6] + zv[5]) - (zv[0] + zv[3] + zv[7] + zv[4]))
			d.delvXi[i] = ax*dxv + ay*dyv + az*dzv

			// eta direction: k cross i.
			ax = dyk*dzi - dzk*dyi
			ay = dzk*dxi - dxk*dzi
			az = dxk*dyi - dyk*dxi
			d.delxEta[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+ptiny)
			ax *= norm
			ay *= norm
			az *= norm
			dxv = -0.25 * ((xv[0] + xv[1] + xv[5] + xv[4]) - (xv[3] + xv[2] + xv[6] + xv[7]))
			dyv = -0.25 * ((yv[0] + yv[1] + yv[5] + yv[4]) - (yv[3] + yv[2] + yv[6] + yv[7]))
			dzv = -0.25 * ((zv[0] + zv[1] + zv[5] + zv[4]) - (zv[3] + zv[2] + zv[6] + zv[7]))
			d.delvEta[i] = ax*dxv + ay*dyv + az*dzv
		}
	})
}

// limit computes one direction's limiter value phi from the element's
// gradient and the (BC-resolved) neighbor gradients.
func limit(delv, delvm, delvp, limiterMult, maxSlope float64) float64 {
	norm := 1.0 / (delv + ptiny)
	delvm *= norm
	delvp *= norm
	phi := 0.5 * (delvm + delvp)
	delvm *= limiterMult
	delvp *= limiterMult
	if delvm < phi {
		phi = delvm
	}
	if delvp < phi {
		phi = delvp
	}
	if phi < 0 {
		phi = 0
	}
	if phi > maxSlope {
		phi = maxSlope
	}
	return phi
}

// resolve returns the neighbor gradient for one face given its boundary
// bits: interior → neighbor value, symmetry → mirror (own value), free →
// zero.
func resolve(grad []float64, own int, neighbor int32, bc, symmBit, freeBit int32) float64 {
	switch {
	case bc&symmBit != 0:
		return grad[own]
	case bc&freeBit != 0:
		return 0
	default:
		return grad[neighbor]
	}
}

// calcMonotonicQRegion applies the monotonic limiter and computes the
// linear and quadratic viscosity terms qq/ql per element.
func (d *Domain) calcMonotonicQRegion(t *par.Team) {
	p := d.Params
	nb := d.neighbors
	par.ParallelFor(t, 0, d.Mesh.NumElem, par.Static(), func(tid, from, to int) {
		for i := from; i < to; i++ {
			bc := nb.BC[i]

			delvmXi := resolve(d.delvXi, i, nb.XiM[i], bc, mesh.XiMSymm, mesh.XiMFree)
			delvpXi := resolve(d.delvXi, i, nb.XiP[i], bc, mesh.XiPSymm, mesh.XiPFree)
			phixi := limit(d.delvXi[i], delvmXi, delvpXi, p.MonoqLimiter, p.MonoqMaxSlope)

			delvmEta := resolve(d.delvEta, i, nb.EtaM[i], bc, mesh.EtaMSymm, mesh.EtaMFree)
			delvpEta := resolve(d.delvEta, i, nb.EtaP[i], bc, mesh.EtaPSymm, mesh.EtaPFree)
			phieta := limit(d.delvEta[i], delvmEta, delvpEta, p.MonoqLimiter, p.MonoqMaxSlope)

			delvmZeta := resolve(d.delvZeta, i, nb.ZetaM[i], bc, mesh.ZetaMSymm, mesh.ZetaMFree)
			delvpZeta := resolve(d.delvZeta, i, nb.ZetaP[i], bc, mesh.ZetaPSymm, mesh.ZetaPFree)
			phizeta := limit(d.delvZeta[i], delvmZeta, delvpZeta, p.MonoqLimiter, p.MonoqMaxSlope)

			var qlin, qquad float64
			if d.VDOV[i] <= 0 {
				delvxxi := d.delvXi[i] * d.delxXi[i]
				delvxeta := d.delvEta[i] * d.delxEta[i]
				delvxzeta := d.delvZeta[i] * d.delxZeta[i]
				if delvxxi > 0 {
					delvxxi = 0
				}
				if delvxeta > 0 {
					delvxeta = 0
				}
				if delvxzeta > 0 {
					delvxzeta = 0
				}
				rho := d.ElemMass[i] / (d.VolO[i] * d.vnew[i])
				qlin = -p.QLCMonoq * rho *
					(delvxxi*(1-phixi) + delvxeta*(1-phieta) + delvxzeta*(1-phizeta))
				qquad = p.QQCMonoq * rho *
					(delvxxi*delvxxi*(1-phixi*phixi) +
						delvxeta*delvxeta*(1-phieta*phieta) +
						delvxzeta*delvxzeta*(1-phizeta*phizeta))
			}
			d.QQ[i] = qquad
			d.QL[i] = qlin
		}
	})
}

// calcPressure is LULESH CalcPressureForElems for one element of the
// gamma-law material: p = (2/3)·e·(compression+1), with cutoffs.
func calcPressure(eNew, compression, pcut, pmin float64) (pNew, bvc, pbvc float64) {
	const c1s = 2.0 / 3.0
	bvc = c1s * (compression + 1)
	pbvc = c1s
	pNew = bvc * eNew
	if math.Abs(pNew) < pcut {
		pNew = 0
	}
	if pNew < pmin {
		pNew = pmin
	}
	return pNew, bvc, pbvc
}

// soundSpeedSquared is the shared ssc expression of CalcEnergyForElems
// and CalcSoundSpeedForElems, with LULESH's tiny-value clamping already
// applied (returns the clamped ssc, not its square root).
func soundSpeedSquared(pbvc, eNew, v, bvc, pNew, rho0 float64) float64 {
	ssc := (pbvc*eNew + v*v*bvc*pNew) / rho0
	if ssc <= 1.111111e-36 {
		return 0.3333333e-18
	}
	return math.Sqrt(ssc)
}

// evalEOSElem runs the three-pass energy/pressure update
// (CalcEnergyForElems) plus final Q and sound speed for one element,
// repeating the computation reps times the way LULESH's EvalEOSForElems
// re-evaluates expensive regions (the extra passes read the same inputs
// and recompute into locals, so results are independent of reps). State
// is committed once at the end. Returns false if the viscosity exceeded
// QStop.
func (d *Domain) evalEOSElem(i, reps int) bool {
	p := d.Params
	vnewc := d.vnew[i]
	eOld, delvc := d.E[i], d.Delv[i]
	pOld, qOld := d.P[i], d.Q[i]
	qqOld, qlOld := d.QQ[i], d.QL[i]

	compression := 1.0/vnewc - 1.0
	vchalf := vnewc - delvc*0.5
	compHalfStep := 1.0/vchalf - 1.0

	var eNew, pNew, qNew, ssNew float64
	for rep := 0; rep < reps; rep++ {
		// Pass 1: half-step pressure.
		eNew = eOld - 0.5*delvc*(pOld+qOld)
		if eNew < p.EMin {
			eNew = p.EMin
		}
		pHalfStep, bvc, pbvc := calcPressure(eNew, compHalfStep, p.PCut, p.PMin)
		vhalf := 1.0 / (1.0 + compHalfStep)

		qNew = 0
		if delvc <= 0 {
			ssc := soundSpeedSquared(pbvc, eNew, vhalf, bvc, pHalfStep, p.RefDens)
			qNew = ssc*qlOld + qqOld
		}
		eNew += 0.5 * delvc * (3.0*(pOld+qOld) - 4.0*(pHalfStep+qNew))

		if math.Abs(eNew) < p.ECut {
			eNew = 0
		}
		if eNew < p.EMin {
			eNew = p.EMin
		}

		// Pass 2: full-step pressure, corrector on the energy.
		pNew, bvc, pbvc = calcPressure(eNew, compression, p.PCut, p.PMin)
		var qTilde float64
		if delvc <= 0 {
			ssc := soundSpeedSquared(pbvc, eNew, vnewc, bvc, pNew, p.RefDens)
			qTilde = ssc*qlOld + qqOld
		}
		eNew -= (7.0*(pOld+qOld) - 8.0*(pHalfStep+qNew) + (pNew + qTilde)) * delvc / 6.0
		if math.Abs(eNew) < p.ECut {
			eNew = 0
		}
		if eNew < p.EMin {
			eNew = p.EMin
		}

		// Pass 3: final pressure, Q and sound speed.
		pNew, bvc, pbvc = calcPressure(eNew, compression, p.PCut, p.PMin)
		if delvc <= 0 {
			ssc := soundSpeedSquared(pbvc, eNew, vnewc, bvc, pNew, p.RefDens)
			qNew = ssc*qlOld + qqOld
			if math.Abs(qNew) < p.QCut {
				qNew = 0
			}
		}
		ssNew = soundSpeedSquared(pbvc, eNew, vnewc, bvc, pNew, p.RefDens)
	}

	d.E[i] = eNew
	d.P[i] = pNew
	d.Q[i] = qNew
	d.SS[i] = ssNew

	// UpdateVolumes.
	v := vnewc
	if math.Abs(v-1.0) < p.VCut {
		v = 1.0
	}
	d.V[i] = v

	return qNew <= p.QStop
}

// applyMaterialProperties runs the EOS region by region — serial across
// regions, parallel within each, with the region's cost repetition —
// mirroring LULESH EvalEOSForElems. It returns an error when the
// artificial viscosity exceeds the QStop threshold (LULESH's QStopped
// abort).
func (d *Domain) applyMaterialProperties(t *par.Team) error {
	var qStopped atomic.Int64
	qStopped.Store(-1)
	if len(d.regions) == 0 {
		// Single-material fast path: no region indirection.
		par.ParallelFor(t, 0, d.Mesh.NumElem, par.Static(), func(tid, from, to int) {
			for i := from; i < to; i++ {
				if !d.evalEOSElem(i, 1) {
					qStopped.CompareAndSwap(-1, int64(i))
				}
			}
		})
	} else {
		for r, list := range d.regions {
			reps := d.regionRep[r]
			par.ParallelFor(t, 0, len(list), par.Static(), func(tid, from, to int) {
				for k := from; k < to; k++ {
					i := int(list[k])
					if !d.evalEOSElem(i, reps) {
						qStopped.CompareAndSwap(-1, int64(i))
					}
				}
			})
		}
	}
	if i := qStopped.Load(); i >= 0 {
		return fmt.Errorf("lulesh: artificial viscosity %v exceeded QStop in element %d at cycle %d",
			d.Q[i], i, d.Cycle)
	}
	return nil
}

package lulesh

import (
	"math"
	"math/rand"
	"testing"
)

// unitCube returns the corner coordinates of the axis-aligned unit cube
// in LULESH corner order.
func unitCube() (x, y, z [8]float64) {
	x = [8]float64{0, 1, 1, 0, 0, 1, 1, 0}
	y = [8]float64{0, 0, 1, 1, 0, 0, 1, 1}
	z = [8]float64{0, 0, 0, 0, 1, 1, 1, 1}
	return
}

// perturb jiggles cube corners to make a general (still convex-ish) hex.
func perturb(rng *rand.Rand, amp float64) (x, y, z [8]float64) {
	x, y, z = unitCube()
	for i := 0; i < 8; i++ {
		x[i] += amp * (rng.Float64() - 0.5)
		y[i] += amp * (rng.Float64() - 0.5)
		z[i] += amp * (rng.Float64() - 0.5)
	}
	return
}

func TestCalcElemVolumeUnitCube(t *testing.T) {
	x, y, z := unitCube()
	if v := calcElemVolume(&x, &y, &z); math.Abs(v-1) > 1e-12 {
		t.Errorf("unit cube volume = %v", v)
	}
}

func TestCalcElemVolumeScaledBox(t *testing.T) {
	x, y, z := unitCube()
	for i := range x {
		x[i] *= 2
		y[i] *= 3
		z[i] *= 0.5
	}
	if v := calcElemVolume(&x, &y, &z); math.Abs(v-3) > 1e-12 {
		t.Errorf("2x3x0.5 box volume = %v, want 3", v)
	}
}

func TestCalcElemVolumeTranslationRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y, z := perturb(rng, 0.3)
	v0 := calcElemVolume(&x, &y, &z)
	// Translate.
	var xt, yt, zt [8]float64
	for i := 0; i < 8; i++ {
		xt[i], yt[i], zt[i] = x[i]+5, y[i]-3, z[i]+11
	}
	if v := calcElemVolume(&xt, &yt, &zt); math.Abs(v-v0) > 1e-10 {
		t.Errorf("translation changed volume: %v vs %v", v, v0)
	}
	// Rotate 90° about z: (x,y) -> (-y,x).
	for i := 0; i < 8; i++ {
		xt[i], yt[i], zt[i] = -y[i], x[i], z[i]
	}
	if v := calcElemVolume(&xt, &yt, &zt); math.Abs(v-v0) > 1e-10 {
		t.Errorf("rotation changed volume: %v vs %v", v, v0)
	}
}

func TestShapeFunctionDerivativeVolumeMatchesExactOnParallelepipeds(t *testing.T) {
	// For affine elements (parallelepipeds) the Jacobian volume equals
	// the exact volume.
	x, y, z := unitCube()
	// Shear: x += 0.3*y, y += 0.1*z (volume preserved = 1).
	for i := 0; i < 8; i++ {
		x[i] += 0.3 * y[i]
		y[i] += 0.1 * z[i]
	}
	var b [3][8]float64
	vJ := calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
	vE := calcElemVolume(&x, &y, &z)
	if math.Abs(vJ-vE) > 1e-12 || math.Abs(vE-1) > 1e-12 {
		t.Errorf("jacobian %v vs exact %v (want 1)", vJ, vE)
	}
}

func TestBMatrixIsVolumeGradientForAffine(t *testing.T) {
	// On affine elements, b[0][i] = ∂V/∂x_i exactly; check against
	// central finite differences of calcElemVolume.
	rng := rand.New(rand.NewSource(2))
	x, y, z := perturb(rng, 0) // exact cube: affine
	var b [3][8]float64
	calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
	const h = 1e-6
	for i := 0; i < 8; i++ {
		for dim := 0; dim < 3; dim++ {
			coords := [3]*[8]float64{&x, &y, &z}[dim]
			orig := coords[i]
			coords[i] = orig + h
			vp := calcElemVolume(&x, &y, &z)
			coords[i] = orig - h
			vm := calcElemVolume(&x, &y, &z)
			coords[i] = orig
			fd := (vp - vm) / (2 * h)
			if math.Abs(b[dim][i]-fd) > 1e-6 {
				t.Errorf("b[%d][%d]=%v, FD=%v", dim, i, b[dim][i], fd)
			}
		}
	}
}

func TestVolumeDerivativeMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		x, y, z := perturb(rng, 0.25)
		var dvdx, dvdy, dvdz [8]float64
		calcElemVolumeDerivative(&x, &y, &z, &dvdx, &dvdy, &dvdz)
		const h = 1e-6
		for i := 0; i < 8; i++ {
			check := func(coords *[8]float64, analytic float64, dim string) {
				orig := coords[i]
				coords[i] = orig + h
				vp := calcElemVolume(&x, &y, &z)
				coords[i] = orig - h
				vm := calcElemVolume(&x, &y, &z)
				coords[i] = orig
				fd := (vp - vm) / (2 * h)
				if math.Abs(analytic-fd) > 1e-5 {
					t.Fatalf("trial %d corner %d d%s: analytic %v, FD %v", trial, i, dim, analytic, fd)
				}
			}
			check(&x, dvdx[i], "x")
			check(&y, dvdy[i], "y")
			check(&z, dvdz[i], "z")
		}
	}
}

func TestStressForcesBalanceAndPressureDirection(t *testing.T) {
	// Uniform pressure on a cube: corner forces must sum to zero (no net
	// force) and push corners outward for positive pressure with the
	// -sig convention sig = -p.
	x, y, z := unitCube()
	var b [3][8]float64
	calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
	p := 2.0
	sig := -p
	var fx, fy, fz [8]float64
	sumElemStressesToNodeForces(&b, sig, sig, sig, &fx, &fy, &fz)
	var sx, sy, sz float64
	for i := 0; i < 8; i++ {
		sx += fx[i]
		sy += fy[i]
		sz += fz[i]
	}
	if math.Abs(sx)+math.Abs(sy)+math.Abs(sz) > 1e-12 {
		t.Errorf("net force nonzero: %v %v %v", sx, sy, sz)
	}
	// Corner 0 is at the origin: outward means negative x,y,z forces.
	if fx[0] >= 0 || fy[0] >= 0 || fz[0] >= 0 {
		t.Errorf("pressure not pushing corner 0 outward: %v %v %v", fx[0], fy[0], fz[0])
	}
	// Corner 6 is at (1,1,1): outward means positive forces.
	if fx[6] <= 0 || fy[6] <= 0 || fz[6] <= 0 {
		t.Errorf("pressure not pushing corner 6 outward: %v %v %v", fx[6], fy[6], fz[6])
	}
}

func TestHourglassForceZeroForRigidAndLinearMotion(t *testing.T) {
	// Hourglass forces must vanish for rigid translation and for linear
	// velocity fields (the modes hourgam is orthogonalized against).
	x, y, z := unitCube()
	var dvdx, dvdy, dvdz [8]float64
	calcElemVolumeDerivative(&x, &y, &z, &dvdx, &dvdy, &dvdz)
	vol := calcElemVolume(&x, &y, &z)
	var hourgam [8][4]float64
	volinv := 1.0 / vol
	for i := 0; i < 4; i++ {
		var hmx, hmy, hmz float64
		for j := 0; j < 8; j++ {
			hmx += x[j] * hourglassGamma[i][j]
			hmy += y[j] * hourglassGamma[i][j]
			hmz += z[j] * hourglassGamma[i][j]
		}
		for j := 0; j < 8; j++ {
			hourgam[j][i] = hourglassGamma[i][j] - volinv*(dvdx[j]*hmx+dvdy[j]*hmy+dvdz[j]*hmz)
		}
	}
	for name, vel := range map[string]func(i int) (float64, float64, float64){
		"translation": func(i int) (float64, float64, float64) { return 1, -2, 3 },
		"linear":      func(i int) (float64, float64, float64) { return 2*x[i] - y[i], z[i], x[i] + y[i] + z[i] },
	} {
		var xd, yd, zd, fx, fy, fz [8]float64
		for i := 0; i < 8; i++ {
			xd[i], yd[i], zd[i] = vel(i)
		}
		calcElemHourglassForce(&xd, &yd, &zd, &hourgam, -1.0, &fx, &fy, &fz)
		for i := 0; i < 8; i++ {
			if math.Abs(fx[i])+math.Abs(fy[i])+math.Abs(fz[i]) > 1e-10 {
				t.Errorf("%s: hourglass force at corner %d: %v %v %v", name, i, fx[i], fy[i], fz[i])
			}
		}
	}
}

func TestHourglassForceResistsHourglassMode(t *testing.T) {
	// A pure hourglass velocity mode must be damped (negative power) by
	// the hourglass force with a negative coefficient.
	x, y, z := unitCube()
	var dvdx, dvdy, dvdz [8]float64
	calcElemVolumeDerivative(&x, &y, &z, &dvdx, &dvdy, &dvdz)
	vol := calcElemVolume(&x, &y, &z)
	var hourgam [8][4]float64
	for i := 0; i < 4; i++ {
		var hmx, hmy, hmz float64
		for j := 0; j < 8; j++ {
			hmx += x[j] * hourglassGamma[i][j]
			hmy += y[j] * hourglassGamma[i][j]
			hmz += z[j] * hourglassGamma[i][j]
		}
		for j := 0; j < 8; j++ {
			hourgam[j][i] = hourglassGamma[i][j] - (dvdx[j]*hmx+dvdy[j]*hmy+dvdz[j]*hmz)/vol
		}
	}
	var xd, yd, zd, fx, fy, fz [8]float64
	for i := 0; i < 8; i++ {
		xd[i] = hourglassGamma[0][i] // pure mode-0 hourglassing in x
	}
	calcElemHourglassForce(&xd, &yd, &zd, &hourgam, -0.5, &fx, &fy, &fz)
	var power float64
	for i := 0; i < 8; i++ {
		power += fx[i]*xd[i] + fy[i]*yd[i] + fz[i]*zd[i]
	}
	if power >= 0 {
		t.Errorf("hourglass force adds energy: power %v", power)
	}
}

func TestCharacteristicLengthCube(t *testing.T) {
	x, y, z := unitCube()
	v := calcElemVolume(&x, &y, &z)
	// areaFace returns 16A² for a square face of area A, so the unit
	// cube gives 4V/sqrt(16) = 1 — the element edge length.
	got := calcElemCharacteristicLength(&x, &y, &z, v)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("characteristic length of unit cube = %v", got)
	}
	// Scaling the cube by s scales the length by s.
	for i := range x {
		x[i] *= 0.5
		y[i] *= 0.5
		z[i] *= 0.5
	}
	v = calcElemVolume(&x, &y, &z)
	if got2 := calcElemCharacteristicLength(&x, &y, &z, v); math.Abs(got2-got*0.5) > 1e-12 {
		t.Errorf("characteristic length does not scale linearly: %v vs %v", got2, got*0.5)
	}
}

package lulesh

import (
	"fmt"
	"math"
	"sync/atomic"

	"spray/internal/par"
)

// dvovMax is LULESH's maximum allowed relative volume change per step,
// the hydro time constraint.
const dvovMax = 0.1

// Step advances the simulation by one Lagrange leapfrog cycle — the
// LULESH 2.0 loop structure: time increment, nodal phase (forces →
// acceleration → velocity → position), element phase (kinematics → q →
// EOS → volume update), and the time constraints for the next cycle.
func (d *Domain) Step(t *par.Team, fs ForceScheme) error {
	d.timeIncrement()
	if err := d.lagrangeNodal(t, fs); err != nil {
		return err
	}
	if err := d.lagrangeElements(t); err != nil {
		return err
	}
	d.calcTimeConstraints(t)
	d.Time += d.Dt
	d.Cycle++
	return nil
}

// Run advances until StopTime or MaxCycles, whichever comes first, and
// returns the number of cycles executed.
func (d *Domain) Run(t *par.Team, fs ForceScheme) (int, error) {
	start := d.Cycle
	for d.Time < d.Params.StopTime && d.Cycle-start < d.Params.MaxCycles {
		if err := d.Step(t, fs); err != nil {
			return d.Cycle - start, err
		}
	}
	return d.Cycle - start, nil
}

func (d *Domain) timeIncrement() {
	target := math.Inf(1)
	if d.dtCourant > 0 {
		target = d.dtCourant / 2
	}
	if d.dtHydro > 0 && d.dtHydro*2/3 < target {
		target = d.dtHydro * 2 / 3
	}
	newdt := d.Dt
	if target < newdt {
		newdt = target
	} else if target > newdt*d.Params.DtMult {
		newdt = d.Dt * d.Params.DtMult
	} else {
		newdt = target
	}
	// Do not step past the stop time.
	if remaining := d.Params.StopTime - d.Time; newdt > remaining && remaining > 0 {
		newdt = remaining
	}
	d.Dt = newdt
}

func (d *Domain) lagrangeNodal(t *par.Team, fs ForceScheme) error {
	if err := d.calcForceForNodes(t, fs); err != nil {
		return err
	}

	// CalcAccelerationForNodes.
	par.ParallelFor(t, 0, d.Mesh.NumNode, par.Static(), func(tid, from, to int) {
		for n := from; n < to; n++ {
			d.XDD[n] = d.FX[n] / d.NodalMass[n]
			d.YDD[n] = d.FY[n] / d.NodalMass[n]
			d.ZDD[n] = d.FZ[n] / d.NodalMass[n]
		}
	})

	// ApplyAccelerationBoundaryConditionsForNodes: symmetry planes.
	for _, n := range d.Mesh.SymmX {
		d.XDD[n] = 0
	}
	for _, n := range d.Mesh.SymmY {
		d.YDD[n] = 0
	}
	for _, n := range d.Mesh.SymmZ {
		d.ZDD[n] = 0
	}

	// CalcVelocityForNodes + CalcPositionForNodes.
	dt, ucut := d.Dt, d.Params.UCut
	par.ParallelFor(t, 0, d.Mesh.NumNode, par.Static(), func(tid, from, to int) {
		for n := from; n < to; n++ {
			xd := d.XD[n] + d.XDD[n]*dt
			yd := d.YD[n] + d.YDD[n]*dt
			zd := d.ZD[n] + d.ZDD[n]*dt
			if math.Abs(xd) < ucut {
				xd = 0
			}
			if math.Abs(yd) < ucut {
				yd = 0
			}
			if math.Abs(zd) < ucut {
				zd = 0
			}
			d.XD[n], d.YD[n], d.ZD[n] = xd, yd, zd
			d.X[n] += xd * dt
			d.Y[n] += yd * dt
			d.Z[n] += zd * dt
		}
	})
	return nil
}

func (d *Domain) lagrangeElements(t *par.Team) error {
	var badElem atomic.Int64
	badElem.Store(-1)

	// CalcKinematicsForElems: new volumes from end-of-step positions,
	// velocity gradient at half-step positions — the LULESH scheme.
	dt := d.Dt
	par.ParallelFor(t, 0, d.Mesh.NumElem, par.Static(), func(tid, from, to int) {
		var x, y, z, xd, yd, zd [8]float64
		var b [3][8]float64
		for e := from; e < to; e++ {
			d.collectCoords(e, &x, &y, &z)
			vol := calcElemVolume(&x, &y, &z)
			vnew := vol / d.VolO[e]
			if vnew <= 0 {
				badElem.CompareAndSwap(-1, int64(e))
				vnew = d.V[e] // keep state sane; the error aborts the step
			}
			d.vnew[e] = vnew
			d.Delv[e] = vnew - d.V[e]
			d.Arealg[e] = calcElemCharacteristicLength(&x, &y, &z, vol)

			// Shift corners back half a step and take the trace of the
			// velocity gradient there (LULESH CalcKinematicsForElems).
			d.collectVelocities(e, &xd, &yd, &zd)
			for c := 0; c < 8; c++ {
				x[c] -= 0.5 * dt * xd[c]
				y[c] -= 0.5 * dt * yd[c]
				z[c] -= 0.5 * dt * zd[c]
			}
			detJ := calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
			dxx, dyy, dzz := calcElemVelocityGradient(&xd, &yd, &zd, &b, detJ)
			d.VDOV[e] = dxx + dyy + dzz
		}
	})
	if e := badElem.Load(); e >= 0 {
		return fmt.Errorf("lulesh: element %d inverted (non-positive volume) at cycle %d", e, d.Cycle)
	}

	// CalcQForElems: monotonic Q gradients, then the neighbor-limited
	// region pass; CalcEnergyForElems/UpdateVolumes in
	// applyMaterialProperties — all straight LULESH ports (qeos.go).
	d.calcMonotonicQGradients(t)
	d.calcMonotonicQRegion(t)
	return d.applyMaterialProperties(t)
}

// calcTimeConstraints computes the Courant and hydro constraints for the
// next cycle with per-thread partial minima — a scalar reduction, which
// OpenMP and Go handle fine without SPRAY (SPRAY targets array
// reductions).
func (d *Domain) calcTimeConstraints(t *par.Team) {
	type constraints struct{ courant, hydro float64 }
	inf := constraints{math.Inf(1), math.Inf(1)}
	qqc2 := 64.0 * d.Params.QQC * d.Params.QQC
	c := par.ScalarReduce(t, 0, d.Mesh.NumElem, par.Static(), inf,
		func(acc constraints, from, to int) constraints {
			for e := from; e < to; e++ {
				vdov := d.VDOV[e]
				if vdov == 0 {
					continue
				}
				dtf := d.SS[e] * d.SS[e]
				if vdov < 0 {
					dtf += qqc2 * d.Arealg[e] * d.Arealg[e] * vdov * vdov
				}
				dtf = d.Arealg[e] / math.Sqrt(dtf)
				if dtf < acc.courant {
					acc.courant = dtf
				}
				if dth := dvovMax / (math.Abs(vdov) + 1e-20); dth < acc.hydro {
					acc.hydro = dth
				}
			}
			return acc
		},
		func(a, b constraints) constraints {
			return constraints{math.Min(a.courant, b.courant), math.Min(a.hydro, b.hydro)}
		})
	if !math.IsInf(c.courant, 1) {
		d.dtCourant = c.courant * d.Params.CFL * 2 // halved again in timeIncrement
	}
	if !math.IsInf(c.hydro, 1) {
		d.dtHydro = c.hydro
	}
}

// Package lulesh is a Go mini-port of the LULESH 2.0 shock-hydrodynamics
// proxy application (Karlin et al.), built as the third evaluation
// substrate of the SPRAY paper (§VI-C). It implements the Sedov blast
// problem on the hexahedral mesh from internal/mesh with the real LULESH
// element kernels: mean-quadrature stress integration and
// Flanagan–Belytschko hourglass control (whose scatter of corner forces
// to shared nodes is exactly the sparse reduction the paper studies),
// velocity-gradient kinematics, the monotonic limited artificial
// viscosity, and the three-pass gamma-law energy/pressure update. The
// main simplifications vs. LULESH 2.0 are single-material/single-region
// state (no region cost model) and no MPI decomposition.
//
// The per-element geometry operators live in internal/hexelem (shared
// with the FEM assembly substrate); this file binds them under the
// LULESH routine names used throughout the package.
package lulesh

import "spray/internal/hexelem"

// calcElemShapeFunctionDerivatives is LULESH CalcElemShapeFunctionDerivatives.
func calcElemShapeFunctionDerivatives(x, y, z *[8]float64, b *[3][8]float64) float64 {
	return hexelem.ShapeFunctionDerivatives(x, y, z, b)
}

// sumElemStressesToNodeForces is LULESH SumElemStressesToNodeForces.
func sumElemStressesToNodeForces(b *[3][8]float64, sigxx, sigyy, sigzz float64, fx, fy, fz *[8]float64) {
	hexelem.SumStressesToNodeForces(b, sigxx, sigyy, sigzz, fx, fy, fz)
}

// calcElemVolume is LULESH CalcElemVolume.
func calcElemVolume(x, y, z *[8]float64) float64 { return hexelem.Volume(x, y, z) }

// calcElemVolumeDerivative is LULESH CalcElemVolumeDerivative.
func calcElemVolumeDerivative(x, y, z *[8]float64, dvdx, dvdy, dvdz *[8]float64) {
	hexelem.VolumeDerivative(x, y, z, dvdx, dvdy, dvdz)
}

// hourglassGamma holds the four Flanagan–Belytschko hourglass base vectors.
var hourglassGamma = hexelem.HourglassGamma

// calcElemHourglassForce is LULESH CalcElemFBHourglassForce.
func calcElemHourglassForce(xd, yd, zd *[8]float64, hourgam *[8][4]float64, coefficient float64,
	hgfx, hgfy, hgfz *[8]float64) {
	hexelem.HourglassForce(xd, yd, zd, hourgam, coefficient, hgfx, hgfy, hgfz)
}

// calcElemCharacteristicLength is LULESH CalcElemCharacteristicLength.
func calcElemCharacteristicLength(x, y, z *[8]float64, volume float64) float64 {
	return hexelem.CharacteristicLength(x, y, z, volume)
}

// calcElemVelocityGradient is LULESH CalcElemVelocityGradient (principal
// strains only).
func calcElemVelocityGradient(xd, yd, zd *[8]float64, b *[3][8]float64, detJ float64) (dxx, dyy, dzz float64) {
	return hexelem.VelocityGradient(xd, yd, zd, b, detJ)
}

package lulesh

import (
	"math"
	"testing"

	"spray"
	"spray/internal/par"
)

func TestVelocityGradientUniformExpansion(t *testing.T) {
	// v = c·r gives a velocity-gradient trace of exactly 3c.
	x, y, z := unitCube()
	var b [3][8]float64
	detJ := calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
	const c = 0.7
	var xd, yd, zd [8]float64
	for i := 0; i < 8; i++ {
		xd[i] = c * x[i]
		yd[i] = c * y[i]
		zd[i] = c * z[i]
	}
	dxx, dyy, dzz := calcElemVelocityGradient(&xd, &yd, &zd, &b, detJ)
	for name, got := range map[string]float64{"dxx": dxx, "dyy": dyy, "dzz": dzz} {
		if math.Abs(got-c) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, c)
		}
	}
}

func TestVelocityGradientRigidMotionTraceFree(t *testing.T) {
	x, y, z := unitCube()
	var b [3][8]float64
	detJ := calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
	// Rigid translation plus rigid rotation about z: v = (−ω y, ω x, 0).
	const omega = 2.5
	var xd, yd, zd [8]float64
	for i := 0; i < 8; i++ {
		xd[i] = 1.0 - omega*y[i]
		yd[i] = -3.0 + omega*x[i]
		zd[i] = 0.5
	}
	dxx, dyy, dzz := calcElemVelocityGradient(&xd, &yd, &zd, &b, detJ)
	if tr := dxx + dyy + dzz; math.Abs(tr) > 1e-12 {
		t.Errorf("rigid motion has nonzero volume strain rate %v", tr)
	}
}

func TestVelocityGradientAnisotropicStretch(t *testing.T) {
	// v = (a·x, b·y, c·z): principal strains are exactly (a, b, c).
	x, y, z := unitCube()
	var bm [3][8]float64
	detJ := calcElemShapeFunctionDerivatives(&x, &y, &z, &bm)
	a, bb, c := 0.2, -0.5, 1.25
	var xd, yd, zd [8]float64
	for i := 0; i < 8; i++ {
		xd[i] = a * x[i]
		yd[i] = bb * y[i]
		zd[i] = c * z[i]
	}
	dxx, dyy, dzz := calcElemVelocityGradient(&xd, &yd, &zd, &bm, detJ)
	if math.Abs(dxx-a) > 1e-12 || math.Abs(dyy-bb) > 1e-12 || math.Abs(dzz-c) > 1e-12 {
		t.Errorf("strains (%v,%v,%v), want (%v,%v,%v)", dxx, dyy, dzz, a, bb, c)
	}
}

// TestSedovOctantSymmetry: the Sedov blast with symmetry planes is
// invariant under permuting the coordinate axes, so after many cycles the
// element energy field must still be symmetric under (i,j,k) -> (j,i,k)
// etc. This is a strong integration check of the force scatter, the
// boundary conditions and the EOS together.
func TestSedovOctantSymmetry(t *testing.T) {
	const edge, cycles = 8, 40
	p := Defaults()
	p.MaxCycles = cycles
	d := New(edge, p)
	team := par.NewTeam(3)
	defer team.Close()
	if _, err := d.Run(team, Spray(spray.BlockCAS(256))); err != nil {
		t.Fatal(err)
	}
	elem := func(i, j, k int) int { return k*edge*edge + j*edge + i }
	for k := 0; k < edge; k++ {
		for j := 0; j < edge; j++ {
			for i := j; i < edge; i++ {
				a := d.E[elem(i, j, k)]
				b := d.E[elem(j, i, k)]
				if !close(a, b, 1e-9) && math.Abs(a-b) > 1e-9 {
					t.Fatalf("xy symmetry broken at (%d,%d,%d): %v vs %v", i, j, k, a, b)
				}
				c := d.E[elem(k, j, i)]
				_ = c
			}
		}
	}
	// Full axis-permutation check on a probe set.
	for _, idx := range [][3]int{{1, 2, 3}, {0, 4, 2}, {5, 1, 0}} {
		i, j, k := idx[0], idx[1], idx[2]
		perms := [][3]int{{i, j, k}, {j, k, i}, {k, i, j}, {j, i, k}, {i, k, j}, {k, j, i}}
		ref := d.E[elem(perms[0][0], perms[0][1], perms[0][2])]
		for _, pm := range perms[1:] {
			got := d.E[elem(pm[0], pm[1], pm[2])]
			if !close(ref, got, 1e-9) && math.Abs(ref-got) > 1e-9 {
				t.Fatalf("permutation symmetry broken at %v vs %v: %v vs %v", idx, pm, ref, got)
			}
		}
	}
}

// TestVDOVConsistentWithVolumeChange: the velocity-gradient trace must
// agree with the volume-difference rate to first order in dt during a
// real run.
func TestVDOVConsistentWithVolumeChange(t *testing.T) {
	const edge = 6
	p := Defaults()
	p.MaxCycles = 25
	d := New(edge, p)
	team := par.NewTeam(2)
	defer team.Close()
	for c := 0; c < 25; c++ {
		if err := d.Step(team, Original()); err != nil {
			t.Fatal(err)
		}
	}
	// Compare on moderately deforming elements: near-static ones are
	// noise, and right at the shock front the two first-order-in-dt
	// estimates legitimately differ by O(dt²) terms.
	checked := 0
	for e := 0; e < d.Mesh.NumElem; e++ {
		if math.Abs(d.Delv[e]) < 1e-8 || math.Abs(d.Delv[e])/d.V[e] > 0.005 {
			continue
		}
		vhalf := d.vnew[e] - d.Delv[e]/2
		rate := d.Delv[e] / (d.Dt * vhalf)
		if !close(rate, d.VDOV[e], 0.15) {
			t.Errorf("elem %d: volume rate %v vs velocity-gradient vdov %v", e, rate, d.VDOV[e])
		}
		checked++
	}
	if checked == 0 {
		t.Error("no active elements to check")
	}
}

package lulesh

import (
	"fmt"
	"math"
	"sync/atomic"

	"spray"
	"spray/internal/mesh"
	"spray/internal/par"
)

// elemForceFunc computes the eight corner forces of element e.
type elemForceFunc func(e int, fx, fy, fz *[8]float64)

// ForceScheme abstracts how per-element corner forces are accumulated
// into the shared nodal force arrays — the exact spot where the paper
// replaces LULESH's domain-specific parallelization with SPRAY reducers.
type ForceScheme interface {
	// Name identifies the scheme in benchmark output.
	Name() string
	// PeakBytes reports the scheme's extra-memory high-water mark.
	PeakBytes() int64
	// scatter runs calc over all elements on the team and deposits the
	// corner forces into d.FX/FY/FZ.
	scatter(d *Domain, t *par.Team, calc elemForceFunc)
}

// originalScheme is LULESH 2.0's own OpenMP parallelization: corner
// forces are written race-free into per-element-corner arrays (an 8×
// replication of the nodal force array, as the paper describes), then a
// second sweep over the mesh gathers each node's corners through the
// inverse connectivity. No synchronization, but 8× memory and an extra
// full-mesh pass.
type originalScheme struct {
	fxElem, fyElem, fzElem []float64
	peak                   int64
}

// Original returns LULESH's domain-specific force accumulation scheme.
func Original() ForceScheme { return &originalScheme{} }

func (s *originalScheme) Name() string { return "lulesh-original" }

func (s *originalScheme) PeakBytes() int64 { return s.peak }

func (s *originalScheme) scatter(d *Domain, t *par.Team, calc elemForceFunc) {
	corners := mesh.CornersPerElem * d.Mesh.NumElem
	if len(s.fxElem) != corners {
		s.fxElem = make([]float64, corners)
		s.fyElem = make([]float64, corners)
		s.fzElem = make([]float64, corners)
		if b := int64(3 * corners * 8); b > s.peak {
			s.peak = b
		}
	}
	// Sweep 1: per-element corner forces, disjoint writes.
	par.ParallelFor(t, 0, d.Mesh.NumElem, par.Static(), func(tid, from, to int) {
		var fx, fy, fz [8]float64
		for e := from; e < to; e++ {
			calc(e, &fx, &fy, &fz)
			base := mesh.CornersPerElem * e
			for c := 0; c < 8; c++ {
				s.fxElem[base+c] = fx[c]
				s.fyElem[base+c] = fy[c]
				s.fzElem[base+c] = fz[c]
			}
		}
	})
	// Sweep 2: gather each node's corners; each node is written by
	// exactly one thread, so no races.
	m := d.Mesh
	par.ParallelFor(t, 0, m.NumNode, par.Static(), func(tid, from, to int) {
		for n := from; n < to; n++ {
			var sx, sy, sz float64
			for k := m.NodeElemStart[n]; k < m.NodeElemStart[n+1]; k++ {
				c := m.NodeElemCornerList[k]
				sx += s.fxElem[c]
				sy += s.fyElem[c]
				sz += s.fzElem[c]
			}
			d.FX[n] += sx
			d.FY[n] += sy
			d.FZ[n] += sz
		}
	})
}

// sprayScheme accumulates corner forces directly through three SPRAY
// reducers wrapping FX, FY, FZ — the paper's modification: the 8-copy
// machinery and the gather sweep disappear, and the reduction strategy
// becomes a one-line choice.
type sprayScheme struct {
	st         spray.Strategy
	sched      spray.Schedule
	rx, ry, rz spray.Reducer[float64]
	bound      *Domain
	threads    int
}

// Spray returns a force scheme that accumulates through the given SPRAY
// strategy on the static loop schedule.
func Spray(st spray.Strategy) ForceScheme { return SpraySched(st, spray.Static()) }

// SpraySched is Spray with the element-loop schedule exposed. Element
// force costs vary with mesh distortion, so the scatter loop is the
// imbalance-sensitive leg of schedule comparisons.
func SpraySched(st spray.Strategy, sched spray.Schedule) ForceScheme {
	return &sprayScheme{st: st, sched: sched}
}

func (s *sprayScheme) Name() string { return "spray-" + s.st.String() }

func (s *sprayScheme) PeakBytes() int64 {
	if s.rx == nil {
		return 0
	}
	return s.rx.PeakBytes() + s.ry.PeakBytes() + s.rz.PeakBytes()
}

func (s *sprayScheme) scatter(d *Domain, t *par.Team, calc elemForceFunc) {
	if s.bound != d || s.threads != t.Size() {
		s.rx = spray.New(s.st, d.FX, t.Size())
		s.ry = spray.New(s.st, d.FY, t.Size())
		s.rz = spray.New(s.st, d.FZ, t.Size())
		s.bound = d
		s.threads = t.Size()
	}
	m := d.Mesh
	c := par.NewChunker(s.sched, 0, m.NumElem, t.Size())
	t.Run(func(tid int) {
		ax := s.rx.Private(tid)
		ay := s.ry.Private(tid)
		az := s.rz.Private(tid)
		bx, by, bz := spray.Bulk(ax), spray.Bulk(ay), spray.Bulk(az)
		c.For(tid, func(from, to int) {
			var fx, fy, fz [8]float64
			for e := from; e < to; e++ {
				calc(e, &fx, &fy, &fz)
				// The element's connectivity list is the index batch: one
				// Scatter per axis deposits all eight corner forces.
				nl := m.ElemNodes(e)
				bx.Scatter(nl, fx[:])
				by.Scatter(nl, fy[:])
				bz.Scatter(nl, fz[:])
			}
		})
		ax.Done()
		ay.Done()
		az.Done()
	})
	s.rx.FinalizeWith(t)
	s.ry.FinalizeWith(t)
	s.rz.FinalizeWith(t)
}

// calcForceForNodes zeroes the nodal force arrays and accumulates the
// volume forces: stress integration plus hourglass control — LULESH
// CalcForceForNodes/CalcVolumeForceForElems with the paper's scheme
// abstraction in place of the hand-rolled corner machinery.
func (d *Domain) calcForceForNodes(t *par.Team, fs ForceScheme) error {
	par.ParallelFor(t, 0, d.Mesh.NumNode, par.Static(), func(tid, from, to int) {
		for n := from; n < to; n++ {
			d.FX[n] = 0
			d.FY[n] = 0
			d.FZ[n] = 0
		}
	})

	// InitStressTermsForElems: pressure + viscosity as diagonal stress.
	par.ParallelFor(t, 0, d.Mesh.NumElem, par.Static(), func(tid, from, to int) {
		for e := from; e < to; e++ {
			s := -d.P[e] - d.Q[e]
			d.sigxx[e] = s
			d.sigyy[e] = s
			d.sigzz[e] = s
		}
	})

	// IntegrateStressForElems.
	var badElem atomic.Int64
	badElem.Store(-1)
	fs.scatter(d, t, func(e int, fx, fy, fz *[8]float64) {
		var x, y, z [8]float64
		var b [3][8]float64
		d.collectCoords(e, &x, &y, &z)
		determ := calcElemShapeFunctionDerivatives(&x, &y, &z, &b)
		if determ <= 0 {
			badElem.CompareAndSwap(-1, int64(e))
		}
		sumElemStressesToNodeForces(&b, d.sigxx[e], d.sigyy[e], d.sigzz[e], fx, fy, fz)
	})
	if e := badElem.Load(); e >= 0 {
		return fmt.Errorf("lulesh: negative Jacobian volume in element %d at cycle %d", e, d.Cycle)
	}

	// CalcFBHourglassForceForElems.
	if d.Params.HGCoef > 0 {
		hg := d.Params.HGCoef
		fs.scatter(d, t, func(e int, fx, fy, fz *[8]float64) {
			var x, y, z, xd, yd, zd [8]float64
			var dvdx, dvdy, dvdz [8]float64
			d.collectCoords(e, &x, &y, &z)
			d.collectVelocities(e, &xd, &yd, &zd)
			calcElemVolumeDerivative(&x, &y, &z, &dvdx, &dvdy, &dvdz)
			determ := d.VolO[e] * d.V[e]
			volinv := 1.0 / determ
			var hourgam [8][4]float64
			for i := 0; i < 4; i++ {
				var hmx, hmy, hmz float64
				for j := 0; j < 8; j++ {
					hmx += x[j] * hourglassGamma[i][j]
					hmy += y[j] * hourglassGamma[i][j]
					hmz += z[j] * hourglassGamma[i][j]
				}
				for j := 0; j < 8; j++ {
					hourgam[j][i] = hourglassGamma[i][j] -
						volinv*(dvdx[j]*hmx+dvdy[j]*hmy+dvdz[j]*hmz)
				}
			}
			coefficient := -hg * 0.01 * d.SS[e] * d.ElemMass[e] / math.Cbrt(determ)
			calcElemHourglassForce(&xd, &yd, &zd, &hourgam, coefficient, fx, fy, fz)
		})
	}
	return nil
}

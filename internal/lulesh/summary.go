package lulesh

import (
	"fmt"
	"io"
	"math"
)

// Summary captures the run diagnostics LULESH's VerifyAndWriteFinalOutput
// prints: problem size, cycle count, final origin energy and the maximum
// absolute differences between the element energy field and its images
// under coordinate-axis swaps (which must be ~0 for the symmetric Sedov
// problem — LULESH prints these as MaxAbsDiff/TotalAbsDiff/MaxRelDiff).
type Summary struct {
	Edge         int
	Cycles       int
	FinalTime    float64
	FinalDt      float64
	OriginEnergy float64
	TotalEnergy  float64
	Kinetic      float64
	MaxAbsDiff   float64
	TotalAbsDiff float64
	MaxRelDiff   float64
}

// Summarize computes the end-of-run diagnostics.
func (d *Domain) Summarize() Summary {
	s := Summary{
		Edge:         d.Mesh.EdgeElems,
		Cycles:       d.Cycle,
		FinalTime:    d.Time,
		FinalDt:      d.Dt,
		OriginEnergy: d.E[0],
		TotalEnergy:  d.TotalEnergy(),
		Kinetic:      d.KineticEnergy(),
	}
	// Symmetry differences across the j/k axes of the first i-plane,
	// following LULESH's check.
	ee := d.Mesh.EdgeElems
	for j := 0; j < ee; j++ {
		for k := j + 1; k < ee; k++ {
			a := d.E[j*ee+k]
			b := d.E[k*ee+j]
			diff := math.Abs(a - b)
			s.TotalAbsDiff += diff
			if diff > s.MaxAbsDiff {
				s.MaxAbsDiff = diff
			}
			if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
				if rel := diff / m; rel > s.MaxRelDiff {
					s.MaxRelDiff = rel
				}
			}
		}
	}
	return s
}

// Write prints the summary in the spirit of LULESH's final output block.
func (s Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "Run completed:\n")
	fmt.Fprintf(w, "   Problem size        =  %d\n", s.Edge)
	fmt.Fprintf(w, "   Iteration count     =  %d\n", s.Cycles)
	fmt.Fprintf(w, "   Final simulated time=  %.6e\n", s.FinalTime)
	fmt.Fprintf(w, "   Final dt            =  %.6e\n", s.FinalDt)
	fmt.Fprintf(w, "   Final origin energy =  %.6e\n", s.OriginEnergy)
	fmt.Fprintf(w, "   Total internal      =  %.6e\n", s.TotalEnergy)
	fmt.Fprintf(w, "   Total kinetic       =  %.6e\n", s.Kinetic)
	fmt.Fprintf(w, "   Testing plane 0 of energy array:\n")
	fmt.Fprintf(w, "   MaxAbsDiff   = %.6e\n", s.MaxAbsDiff)
	fmt.Fprintf(w, "   TotalAbsDiff = %.6e\n", s.TotalAbsDiff)
	fmt.Fprintf(w, "   MaxRelDiff   = %.6e\n", s.MaxRelDiff)
}

package lulesh

import (
	"fmt"
	"math"

	"spray/internal/mesh"
)

// Params collects the numerical controls of the simulation; Defaults
// mirrors the LULESH 2.0 constants where the mini-port uses them.
type Params struct {
	StopTime      float64 // simulated end time
	MaxCycles     int     // iteration cap (the paper runs 100 iterations)
	HGCoef        float64 // hourglass damping coefficient (LULESH: 3.0)
	CFL           float64 // Courant factor for the time step
	DtMult        float64 // max growth factor of dt per cycle
	UCut          float64 // velocity snap-to-zero cutoff
	PCut          float64 // pressure cutoff
	ECut          float64 // energy cutoff
	QCut          float64 // artificial-viscosity cutoff
	VCut          float64 // relative-volume snap-to-one cutoff
	EMin          float64 // energy floor
	PMin          float64 // pressure floor
	QStop         float64 // artificial-viscosity abort threshold
	RefDens       float64 // reference density
	QQC           float64 // quadratic q coefficient in the Courant condition
	QLCMonoq      float64 // linear coefficient of the monotonic Q
	QQCMonoq      float64 // quadratic coefficient of the monotonic Q
	MonoqLimiter  float64 // monotonic limiter multiplier
	MonoqMaxSlope float64 // monotonic limiter slope cap
	NumRegions    int     // material regions (LULESH 2.0 -r); <= 1 disables region indirection
	RegionCost    int     // EOS repetition for every 5th region (LULESH 2.0 -c load imbalance)
	InitDt        float64 // first time step (scaled by mesh spacing)
	SideLen       float64 // physical cube side length (LULESH: 1.125)
	E0            float64 // Sedov energy deposited in the origin element
}

// Defaults returns the LULESH 2.0-flavored parameter set used by the
// paper's experiment.
func Defaults() Params {
	return Params{
		StopTime:      1e-2,
		MaxCycles:     100,
		HGCoef:        3.0,
		CFL:           0.45,
		DtMult:        1.1,
		UCut:          1e-7,
		PCut:          1e-7,
		ECut:          1e-7,
		QCut:          1e-7,
		VCut:          1e-10,
		EMin:          -1e15,
		PMin:          0,
		QStop:         1e12,
		RefDens:       1.0,
		QQC:           2.0,
		QLCMonoq:      0.5,
		QQCMonoq:      2.0 / 3.0,
		MonoqLimiter:  2.0,
		MonoqMaxSlope: 1.0,
		NumRegions:    1,
		RegionCost:    1,
		InitDt:        0, // derived from the mesh in New
		SideLen:       1.125,
		E0:            3.948746e+7,
	}
}

// Domain is the complete simulation state: node-centered kinematics and
// forces plus element-centered thermodynamics, mirroring the LULESH
// Domain class.
type Domain struct {
	Mesh   *mesh.Hex
	Params Params

	// Node-centered.
	X, Y, Z       []float64 // positions
	XD, YD, ZD    []float64 // velocities
	XDD, YDD, ZDD []float64 // accelerations
	FX, FY, FZ    []float64 // force accumulators — the SPRAY targets
	NodalMass     []float64

	// Element-centered.
	E, P, Q  []float64 // energy, pressure, artificial viscosity
	V        []float64 // relative volume (current/reference)
	VolO     []float64 // reference volume
	Delv     []float64 // volume change over the last step
	VDOV     []float64 // volume strain rate
	Arealg   []float64 // characteristic length
	SS       []float64 // sound speed
	ElemMass []float64

	// Artificial-viscosity state.
	QQ, QL []float64 // quadratic and linear monotonic-Q terms

	// Scratch, reused across cycles.
	vnew                      []float64
	sigxx, sigyy, sigzz       []float64
	delvXi, delvEta, delvZeta []float64
	delxXi, delxEta, delxZeta []float64
	neighbors                 *mesh.Neighbors

	// Material regions (LULESH 2.0): element lists per region and the
	// EOS cost repetition per region. Empty regions slice = single
	// material, no indirection.
	regions   [][]int32
	regionRep []int

	Time, Dt float64
	Cycle    int

	// Time constraints carried between cycles (0 = unconstrained yet).
	dtCourant, dtHydro float64
}

// New builds the Sedov-problem domain on an edgeElems³ mesh, matching the
// LULESH 2.0 initialization: unit relative volumes, masses from element
// volumes, all energy deposited in the origin element, and symmetry
// boundary conditions on the three coordinate planes.
func New(edgeElems int, p Params) *Domain {
	m := mesh.NewHex(edgeElems, p.SideLen)
	d := &Domain{
		Mesh:   m,
		Params: p,

		X: append([]float64(nil), m.X...),
		Y: append([]float64(nil), m.Y...),
		Z: append([]float64(nil), m.Z...),

		XD: make([]float64, m.NumNode), YD: make([]float64, m.NumNode), ZD: make([]float64, m.NumNode),
		XDD: make([]float64, m.NumNode), YDD: make([]float64, m.NumNode), ZDD: make([]float64, m.NumNode),
		FX: make([]float64, m.NumNode), FY: make([]float64, m.NumNode), FZ: make([]float64, m.NumNode),
		NodalMass: make([]float64, m.NumNode),

		E: make([]float64, m.NumElem), P: make([]float64, m.NumElem), Q: make([]float64, m.NumElem),
		V: make([]float64, m.NumElem), VolO: make([]float64, m.NumElem),
		Delv: make([]float64, m.NumElem), VDOV: make([]float64, m.NumElem),
		Arealg: make([]float64, m.NumElem), SS: make([]float64, m.NumElem),
		ElemMass: make([]float64, m.NumElem),

		QQ: make([]float64, m.NumElem), QL: make([]float64, m.NumElem),

		vnew:  make([]float64, m.NumElem),
		sigxx: make([]float64, m.NumElem), sigyy: make([]float64, m.NumElem), sigzz: make([]float64, m.NumElem),
		delvXi: make([]float64, m.NumElem), delvEta: make([]float64, m.NumElem), delvZeta: make([]float64, m.NumElem),
		delxXi: make([]float64, m.NumElem), delxEta: make([]float64, m.NumElem), delxZeta: make([]float64, m.NumElem),
		neighbors: m.BuildNeighbors(),
	}

	var x, y, z [8]float64
	for e := 0; e < m.NumElem; e++ {
		d.collectCoords(e, &x, &y, &z)
		vol := calcElemVolume(&x, &y, &z)
		d.VolO[e] = vol
		d.V[e] = 1.0
		d.ElemMass[e] = vol * p.RefDens
		for _, n := range m.ElemNodes(e) {
			d.NodalMass[n] += vol * p.RefDens / 8.0
		}
		d.Arealg[e] = calcElemCharacteristicLength(&x, &y, &z, vol)
	}

	// Sedov point blast: all energy in the element at the origin. The
	// density E0 is calibrated for a 30³ mesh and scales with (edge/30)³
	// so the *total* deposited energy E0·V₀ is resolution-independent,
	// LULESH 2.0's convention (theirs calibrates at 45³).
	h := p.SideLen / float64(edgeElems)
	d.E[0] = p.E0 * math.Pow(float64(edgeElems)/30.0, 3)

	if p.NumRegions > 1 {
		d.buildRegions(p.NumRegions, p.RegionCost)
	}

	if p.InitDt > 0 {
		d.Dt = p.InitDt
	} else {
		// LULESH seeds dt as 0.5·∛V₀/√(2·e₀); an extra 1/8 keeps the
		// first cycle well under the Courant limit the constraint pass
		// will compute, avoiding a large dissipative first step.
		d.Dt = 0.5 * h / math.Sqrt(2*d.E[0]) / 8
	}
	return d
}

// buildRegions assigns elements to regions with a deterministic
// hash-spread (LULESH uses a seeded random walk; any roughly even spread
// exercises the same indirection) and sets the cost repetition: every
// fifth region is "expensive" and re-evaluates its EOS cost times,
// LULESH 2.0's load-imbalance model.
func (d *Domain) buildRegions(numRegions, cost int) {
	if cost < 1 {
		cost = 1
	}
	d.regions = make([][]int32, numRegions)
	d.regionRep = make([]int, numRegions)
	for r := range d.regionRep {
		if r%5 == 0 {
			d.regionRep[r] = cost
		} else {
			d.regionRep[r] = 1
		}
	}
	for e := 0; e < d.Mesh.NumElem; e++ {
		r := (e*2654435761 + 0x9e3779b9) % numRegions // Knuth-hash spread
		if r < 0 {
			r += numRegions
		}
		d.regions[r] = append(d.regions[r], int32(e))
	}
}

// RegionSizes returns the element count of each region (nil for the
// single-material configuration).
func (d *Domain) RegionSizes() []int {
	if len(d.regions) == 0 {
		return nil
	}
	out := make([]int, len(d.regions))
	for r, list := range d.regions {
		out[r] = len(list)
	}
	return out
}

func (d *Domain) collectCoords(e int, x, y, z *[8]float64) {
	nl := d.Mesh.ElemNodes(e)
	for c, n := range nl {
		x[c] = d.X[n]
		y[c] = d.Y[n]
		z[c] = d.Z[n]
	}
}

func (d *Domain) collectVelocities(e int, xd, yd, zd *[8]float64) {
	nl := d.Mesh.ElemNodes(e)
	for c, n := range nl {
		xd[c] = d.XD[n]
		yd[c] = d.YD[n]
		zd[c] = d.ZD[n]
	}
}

// TotalEnergy returns the domain's total internal energy weighted by
// reference volume — the conserved-ish diagnostic the tests compare
// across force schemes.
func (d *Domain) TotalEnergy() float64 {
	var sum float64
	for e := range d.E {
		sum += d.E[e] * d.VolO[e]
	}
	return sum
}

// KineticEnergy returns the nodal kinetic energy.
func (d *Domain) KineticEnergy() float64 {
	var sum float64
	for n := range d.XD {
		v2 := d.XD[n]*d.XD[n] + d.YD[n]*d.YD[n] + d.ZD[n]*d.ZD[n]
		sum += 0.5 * d.NodalMass[n] * v2
	}
	return sum
}

// CheckFinite validates that the state has not diverged; returns the
// first offending field.
func (d *Domain) CheckFinite() error {
	for name, s := range map[string][]float64{
		"x": d.X, "xd": d.XD, "e": d.E, "p": d.P, "v": d.V,
	} {
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lulesh: %s[%d] = %v at cycle %d", name, i, v, d.Cycle)
			}
		}
	}
	for e, v := range d.V {
		if v <= 0 {
			return fmt.Errorf("lulesh: non-positive relative volume %v in element %d at cycle %d", v, e, d.Cycle)
		}
	}
	return nil
}

package plan

import (
	"math"
	"math/rand"
	"testing"

	"spray/internal/core"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// bulkOp is one recorded submission in a test stream: an element-wise Add
// (add set), a contiguous AddN run (idx nil), or a gathered Scatter.
type bulkOp struct {
	add  bool
	base int
	idx  []int32
	vals []float64
}

// genStream builds one per-thread op stream mixing all three submission
// shapes. Values are small integers so float accumulation is exact and
// any reordering bug shows up as a bitwise difference.
func genStream(seed int64, threads, n, opsPer int) [][]bulkOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([][]bulkOp, threads)
	for t := range ops {
		for o := 0; o < opsPer; o++ {
			switch rng.Intn(3) {
			case 0: // element-wise
				ops[t] = append(ops[t], bulkOp{
					add:  true,
					base: rng.Intn(n),
					vals: []float64{float64(rng.Intn(9) - 4)},
				})
			case 1: // contiguous run
				m := 1 + rng.Intn(64)
				base := rng.Intn(n - m + 1)
				vals := make([]float64, m)
				for j := range vals {
					vals[j] = float64(rng.Intn(9) - 4)
				}
				ops[t] = append(ops[t], bulkOp{base: base, vals: vals})
			default: // gathered batch
				m := 1 + rng.Intn(48)
				idx := make([]int32, m)
				vals := make([]float64, m)
				for j := range idx {
					idx[j] = int32(rng.Intn(n))
					vals[j] = float64(rng.Intn(9) - 4)
				}
				ops[t] = append(ops[t], bulkOp{idx: idx, vals: vals})
			}
		}
	}
	return ops
}

// accumulate applies one thread-stream element-wise into want — the
// sequential reference.
func accumulate(want []float64, ops [][]bulkOp) {
	for t := range ops {
		for _, op := range ops[t] {
			switch {
			case op.add:
				want[op.base] += op.vals[0]
			case op.idx == nil:
				for j, v := range op.vals {
					want[op.base+j] += v
				}
			default:
				for j, i := range op.idx {
					want[int(i)] += op.vals[j]
				}
			}
		}
	}
}

// runRegion drives one parallel region of the given streams through r.
func runRegion(team *par.Team, r core.Reducer[float64], ops [][]bulkOp) {
	team.Run(func(tid int) {
		acc := r.Private(tid)
		bacc := core.AsBulk(acc)
		for _, op := range ops[tid] {
			switch {
			case op.add:
				bacc.Add(op.base, op.vals[0])
			case op.idx == nil:
				bacc.AddN(op.base, op.vals)
			default:
				bacc.Scatter(op.idx, op.vals)
			}
		}
		acc.Done()
	})
	r.FinalizeWith(team)
}

// TestPlannedLifecycle walks the record→compile→execute path: the first
// region is a miss that compiles, every subsequent identical region is a
// hit, and each region's result matches the sequential reference exactly.
func TestPlannedLifecycle(t *testing.T) {
	const n, regions = 4096, 6
	for _, threads := range []int{1, 3, 4} {
		ops := genStream(17, threads, n, 24)
		out := make([]float64, n)
		want := make([]float64, n)
		r := NewPlanned(core.NewAtomic(out, threads), out, Config{})
		team := par.NewTeam(threads)
		for reg := 0; reg < regions; reg++ {
			runRegion(team, r, ops)
			accumulate(want, ops)
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Fatalf("threads=%d region=%d: diff %v (mode %s)", threads, reg, d, r.Stats().Mode)
			}
			s := r.Stats()
			if reg == 0 {
				if s.Mode != "execute" || s.Misses != 1 || s.Compiles != 1 {
					t.Fatalf("threads=%d after record region: %+v", threads, s)
				}
			} else if s.Hits != reg {
				t.Fatalf("threads=%d region=%d: hits=%d, want %d", threads, reg, s.Hits, reg)
			}
		}
		s := r.Stats()
		if s.Invalidations != 0 {
			t.Errorf("threads=%d: %d invalidations on identical regions", threads, s.Invalidations)
		}
		if threads > 1 && s.Foreign == 0 {
			t.Errorf("threads=%d: plan routed no foreign elements; streams should cross ownership ranges", threads)
		}
		if s.Epoch == 0 {
			t.Errorf("threads=%d: plan epoch not stamped from the team", threads)
		}
		team.Close()
	}
}

// TestPlannedEquivalenceInnerStrategies checks the wrapper against each
// inner strategy run bare on the same stream: with exact integer values
// the results must be bitwise identical, for multiple regions.
func TestPlannedEquivalenceInnerStrategies(t *testing.T) {
	const n, threads, regions = 3000, 4, 4
	ops := genStream(71, threads, n, 30)
	inners := map[string]func(out []float64) core.Reducer[float64]{
		"atomic":      func(out []float64) core.Reducer[float64] { return core.NewAtomic(out, threads) },
		"dense":       func(out []float64) core.Reducer[float64] { return core.NewDense(out, threads) },
		"block-cas":   func(out []float64) core.Reducer[float64] { return core.NewBlock(out, threads, 256, core.BlockCAS) },
		"keeper":      func(out []float64) core.Reducer[float64] { return core.NewKeeper(out, threads) },
		"compensated": func(out []float64) core.Reducer[float64] { return core.NewCompensated(out, threads) },
	}
	for name, mk := range inners {
		outBare := make([]float64, n)
		outPlan := make([]float64, n)
		teamA := par.NewTeam(threads)
		teamB := par.NewTeam(threads)
		bare := mk(outBare)
		planned := NewPlanned(mk(outPlan), outPlan, Config{Kahan: name == "compensated"})
		for reg := 0; reg < regions; reg++ {
			runRegion(teamA, bare, ops)
			runRegion(teamB, planned, ops)
			for i := range outBare {
				if math.Float64bits(outBare[i]) != math.Float64bits(outPlan[i]) {
					t.Fatalf("plan+%s region %d: out[%d] bare=%x plan=%x", name, reg, i,
						math.Float64bits(outBare[i]), math.Float64bits(outPlan[i]))
				}
			}
		}
		if s := planned.Stats(); s.Hits != regions-1 {
			t.Errorf("plan+%s: hits=%d, want %d", name, s.Hits, regions-1)
		}
		teamA.Close()
		teamB.Close()
	}
}

// TestPlannedDeterminism runs the same random-float stream through two
// independent planned reducers (and through serial vs team finalize) and
// demands bitwise-identical results: the executor's canonical order —
// owned in place, then exchange lists in ascending source tid and
// program order — must not depend on scheduling.
func TestPlannedDeterminism(t *testing.T) {
	const n, threads, regions = 2048, 4, 3
	ops := genStream(29, threads, n, 24)
	rng := rand.New(rand.NewSource(5))
	for t2 := range ops {
		for o := range ops[t2] {
			for j := range ops[t2][o].vals {
				ops[t2][o].vals[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(9)-4))
			}
		}
	}

	// Dense inner: its record region is deterministic too (fixed-order
	// finalize merge), so whole-array bitwise comparison is meaningful.
	run := func(serial bool) []float64 {
		out := make([]float64, n)
		r := NewPlanned(core.NewDense(out, threads), out, Config{})
		team := par.NewTeam(threads)
		defer team.Close()
		for reg := 0; reg < regions; reg++ {
			team.Run(func(tid int) {
				acc := r.Private(tid)
				bacc := core.AsBulk(acc)
				for _, op := range ops[tid] {
					switch {
					case op.add:
						bacc.Add(op.base, op.vals[0])
					case op.idx == nil:
						bacc.AddN(op.base, op.vals)
					default:
						bacc.Scatter(op.idx, op.vals)
					}
				}
				acc.Done()
			})
			if serial {
				r.Finalize()
			} else {
				r.FinalizeWith(team)
			}
		}
		return out
	}

	a1, a2, aSerial := run(false), run(false), run(true)
	for i := range a1 {
		if math.Float64bits(a1[i]) != math.Float64bits(a2[i]) {
			t.Fatalf("execute regions not run-to-run deterministic at out[%d]: %x vs %x",
				i, math.Float64bits(a1[i]), math.Float64bits(a2[i]))
		}
		if math.Float64bits(a1[i]) != math.Float64bits(aSerial[i]) {
			t.Fatalf("serial and team finalize diverge at out[%d]: %x vs %x",
				i, math.Float64bits(a1[i]), math.Float64bits(aSerial[i]))
		}
	}
}

// TestPlannedInvalidationRecovers deviates mid-plan and checks the full
// recovery arc: the deviating region is still exactly correct, the plan
// is dropped, the next region re-records the new pattern, and the one
// after executes it.
func TestPlannedInvalidationRecovers(t *testing.T) {
	const n, threads = 2048, 3
	ops := genStream(83, threads, n, 20)
	out := make([]float64, n)
	want := make([]float64, n)
	r := NewPlanned(core.NewAtomic(out, threads), out, Config{})
	team := par.NewTeam(threads)
	defer team.Close()

	check := func(stage string) {
		t.Helper()
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("%s: diff %v", stage, d)
		}
	}

	runRegion(team, r, ops)
	accumulate(want, ops)
	check("record")
	runRegion(team, r, ops)
	accumulate(want, ops)
	check("execute")

	// Mutate thread 1 mid-stream: change a scatter index (or run base) in
	// its middle op, leaving a verified prefix in the exchange buffer.
	mut := make([][]bulkOp, threads)
	copy(mut, ops)
	mut[1] = append([]bulkOp(nil), ops[1]...)
	mo := mut[1][len(mut[1])/2]
	switch {
	case mo.add:
		mo.base = (mo.base + 1) % n
	case mo.idx == nil:
		mo.base = (mo.base + 1) % (n - len(mo.vals))
	default:
		mo.idx = append([]int32(nil), mo.idx...)
		mo.idx[len(mo.idx)/2] = (mo.idx[len(mo.idx)/2] + 1) % int32(n)
	}
	mut[1][len(mut[1])/2] = mo

	runRegion(team, r, mut)
	accumulate(want, mut)
	check("deviating region")
	s := r.Stats()
	if s.Invalidations != 1 || s.Mode != "record" {
		t.Fatalf("after deviation: %+v", s)
	}

	runRegion(team, r, mut) // re-record the new pattern
	accumulate(want, mut)
	check("re-record")
	runRegion(team, r, mut) // and execute it
	accumulate(want, mut)
	check("re-execute")
	s = r.Stats()
	if s.Compiles != 2 || s.Hits != 2 {
		t.Fatalf("after recovery: %+v", s)
	}
}

// TestPlannedMissingThread checks the participation rule: a recorded
// thread sitting a region out (or sending a short stream) invalidates
// the plan but never corrupts the result.
func TestPlannedMissingThread(t *testing.T) {
	const n, threads = 1024, 3
	ops := genStream(91, threads, n, 12)
	out := make([]float64, n)
	want := make([]float64, n)
	r := NewPlanned(core.NewAtomic(out, threads), out, Config{})
	team := par.NewTeam(threads)
	defer team.Close()

	runRegion(team, r, ops)
	accumulate(want, ops)

	// Thread 1 skips the region entirely.
	team.Run(func(tid int) {
		if tid == 1 {
			return
		}
		acc := r.Private(tid)
		bacc := core.AsBulk(acc)
		for _, op := range ops[tid] {
			switch {
			case op.add:
				bacc.Add(op.base, op.vals[0])
			case op.idx == nil:
				bacc.AddN(op.base, op.vals)
			default:
				bacc.Scatter(op.idx, op.vals)
			}
		}
		acc.Done()
	})
	r.FinalizeWith(team)
	accumulate(want, [][]bulkOp{ops[0], nil, ops[2]})
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("absent-thread region: diff %v", d)
	}
	if s := r.Stats(); s.Invalidations != 1 || s.Mode != "record" {
		t.Fatalf("after absent thread: %+v", s)
	}

	// Short stream: thread 1 participates but sends only half its ops.
	runRegion(team, r, ops) // re-record
	accumulate(want, ops)
	short := make([][]bulkOp, threads)
	copy(short, ops)
	short[1] = ops[1][:len(ops[1])/2]
	runRegion(team, r, short)
	accumulate(want, short)
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("short-stream region: diff %v", d)
	}
	if s := r.Stats(); s.Invalidations != 2 {
		t.Fatalf("after short stream: %+v", s)
	}
}

// TestPlannedPassthroughDegrade drives consecutive invalidations past
// the limit and checks the wrapper settles into passthrough — still
// correct, no further compiles.
func TestPlannedPassthroughDegrade(t *testing.T) {
	const n, threads = 512, 2
	out := make([]float64, n)
	want := make([]float64, n)
	r := NewPlanned(core.NewAtomic(out, threads), out, Config{MaxInvalidations: 2})
	team := par.NewTeam(threads)
	defer team.Close()

	// Every region uses a fresh stream, so every executor region deviates.
	for seed := int64(0); seed < 8; seed++ {
		ops := genStream(100+seed, threads, n, 10)
		runRegion(team, r, ops)
		accumulate(want, ops)
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("seed %d: diff %v (mode %s)", seed, d, r.Stats().Mode)
		}
	}
	s := r.Stats()
	if s.Mode != "passthrough" {
		t.Fatalf("pattern-unstable workload did not degrade: %+v", s)
	}
	if s.Invalidations != 2 {
		t.Errorf("invalidations=%d, want 2 (the configured limit)", s.Invalidations)
	}
	compiles := s.Compiles
	ops := genStream(200, threads, n, 10)
	runRegion(team, r, ops)
	accumulate(want, ops)
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("passthrough region: diff %v", d)
	}
	if s = r.Stats(); s.Compiles != compiles {
		t.Errorf("passthrough mode still compiling: %+v", s)
	}
}

// TestPlannedHitResetsInvalidationStreak: an executed hit between two
// deviations must reset the consecutive-invalidation counter, so an
// occasionally-changing pattern keeps replanning instead of degrading.
func TestPlannedHitResetsInvalidationStreak(t *testing.T) {
	const n, threads = 512, 2
	out := make([]float64, n)
	want := make([]float64, n)
	r := NewPlanned(core.NewAtomic(out, threads), out, Config{MaxInvalidations: 2})
	team := par.NewTeam(threads)
	defer team.Close()

	run := func(ops [][]bulkOp) {
		runRegion(team, r, ops)
		accumulate(want, ops)
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("diff %v (mode %s)", d, r.Stats().Mode)
		}
	}
	// pattern A: record, hit, then deviate; repeat with fresh patterns —
	// each cycle scores a hit before its deviation, so the streak resets.
	for seed := int64(0); seed < 3; seed++ {
		a := genStream(300+2*seed, threads, n, 10)
		b := genStream(301+2*seed, threads, n, 10)
		run(a) // record A
		run(a) // hit
		run(b) // deviate (invalidation #seed+1)
	}
	s := r.Stats()
	if s.Mode == "passthrough" {
		t.Fatalf("streak with interleaved hits degraded to passthrough: %+v", s)
	}
	if s.Invalidations != 3 || s.Hits != 3 {
		t.Errorf("stats: %+v, want 3 invalidations / 3 hits", s)
	}
}

// TestPlannedTelemetry checks the plan counters and compile histogram
// land in the recorder, and memory accounting reports a live footprint.
func TestPlannedTelemetry(t *testing.T) {
	const n, threads, regions = 2048, 2, 4
	ops := genStream(55, threads, n, 16)
	out := make([]float64, n)
	r := NewPlanned(core.NewAtomic(out, threads), out, Config{})
	rec := telemetry.NewRecorder(r.Name(), threads)
	r.Instrument(rec)
	team := par.NewTeam(threads)
	defer team.Close()
	for reg := 0; reg < regions; reg++ {
		runRegion(team, r, ops)
	}
	snap := rec.Snapshot()
	if got := snap.Get(telemetry.PlanMisses); got != 1 {
		t.Errorf("plan-misses = %d, want 1", got)
	}
	if got := snap.Get(telemetry.PlanHits); got != regions-1 {
		t.Errorf("plan-hits = %d, want %d", got, regions-1)
	}
	if got := snap.Get(telemetry.PlanInvalidations); got != 0 {
		t.Errorf("plan-invalidations = %d, want 0", got)
	}
	if h := rec.Hist(telemetry.PlanCompile); h.Count != 1 {
		t.Errorf("plan-compile-latency count = %d, want 1 (every compile observed)", h.Count)
	}
	// Executor regions must keep reporting traffic despite the bypass.
	if got := snap.Get(telemetry.BulkElems); got == 0 {
		t.Error("bulk-elems = 0; executor accessors stopped counting")
	}
	if r.Bytes() == 0 {
		t.Error("Bytes = 0 with a live plan; tapes and plan arrays are not accounted")
	}
	if r.Name() != "plan+atomic" {
		t.Errorf("Name = %q", r.Name())
	}

	// Detached: executor regions must keep working with nil shards.
	r.Instrument(nil)
	runRegion(team, r, ops)
	if got := rec.Snapshot().Get(telemetry.PlanHits); got != regions-1 {
		t.Errorf("detached region still bumped plan-hits: %d", got)
	}
}

// TestPlannedBytesSteadyState: executing the same plan repeatedly must
// not grow the footprint (capacity-retention rule).
func TestPlannedBytesSteadyState(t *testing.T) {
	const n, threads = 2048, 3
	ops := genStream(63, threads, n, 16)
	out := make([]float64, n)
	r := NewPlanned(core.NewAtomic(out, threads), out, Config{})
	team := par.NewTeam(threads)
	defer team.Close()
	runRegion(team, r, ops)
	runRegion(team, r, ops)
	b1, p1 := r.Bytes(), r.PeakBytes()
	if b1 == 0 {
		t.Fatal("no footprint after compile")
	}
	for reg := 0; reg < 4; reg++ {
		runRegion(team, r, ops)
	}
	if r.Bytes() != b1 || r.PeakBytes() != p1 {
		t.Errorf("steady-state execute grew memory: bytes %d -> %d, peak %d -> %d",
			b1, r.Bytes(), p1, r.PeakBytes())
	}
}

// FuzzPlannedStream drives fuzzer-invented two-thread streams through
// record, execute, and a mutated (mid-stream invalidating) region, and
// cross-checks every region against the sequential reference.
func FuzzPlannedStream(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 250, 7}, []byte{9, 9, 9})
	f.Add([]byte{0}, []byte{255, 254, 253, 252})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		const n = 256
		mkOps := func(raw []byte) []bulkOp {
			var ops []bulkOp
			for p := 0; p+1 < len(raw); p += 2 {
				i, v := int(raw[p]), float64(int(raw[p+1])%7-3)
				switch raw[p] % 3 {
				case 0:
					ops = append(ops, bulkOp{add: true, base: i, vals: []float64{v}})
				case 1:
					m := 1 + int(raw[p+1])%8
					if i+m > n {
						i = n - m
					}
					vals := make([]float64, m)
					for j := range vals {
						vals[j] = v
					}
					ops = append(ops, bulkOp{base: i, vals: vals})
				default:
					ops = append(ops, bulkOp{idx: []int32{int32(i), int32((i * 7) % n)}, vals: []float64{v, v + 1}})
				}
			}
			return ops
		}
		ops := [][]bulkOp{mkOps(rawA), mkOps(rawB)}
		out := make([]float64, n)
		want := make([]float64, n)
		r := NewPlanned(core.NewAtomic(out, 2), out, Config{})
		team := par.NewTeam(2)
		defer team.Close()

		for reg := 0; reg < 2; reg++ {
			runRegion(team, r, ops)
			accumulate(want, ops)
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("region %d: out[%d] = %v, want %v", reg, i, out[i], want[i])
				}
			}
		}
		// Mutated region: append one op to thread 0 — a mid-stream
		// deviation after a fully verified prefix.
		mut := [][]bulkOp{
			append(append([]bulkOp(nil), ops[0]...), bulkOp{add: true, base: 3, vals: []float64{2}}),
			ops[1],
		}
		runRegion(team, r, mut)
		accumulate(want, mut)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("mutated region: out[%d] = %v, want %v", i, out[i], want[i])
			}
		}
	})
}

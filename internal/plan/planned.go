package plan

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"
	"unsafe"

	"spray/internal/core"
	"spray/internal/hotspot"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// rmode is the wrapper's lifecycle state; transitions happen only at
// finalize, between regions.
type rmode uint8

const (
	modeRecord rmode = iota
	modeExecute
	modePassthrough
)

func (m rmode) String() string {
	switch m {
	case modeRecord:
		return "record"
	case modeExecute:
		return "execute"
	default:
		return "passthrough"
	}
}

// DefaultMaxInvalidations is how many consecutive executor regions may
// deviate from their freshly recorded pattern before the wrapper stops
// re-recording and degrades to a permanent passthrough.
const DefaultMaxInvalidations = 4

// Config tunes the plan-compiled wrapper.
type Config struct {
	// Kahan selects the compensated executor: owned applies and the
	// exchange merge run Kahan updates against a full-length compensation
	// array, preserving the inner compensated strategy's accuracy
	// characteristics in execute mode.
	Kahan bool
	// MaxInvalidations overrides DefaultMaxInvalidations (<= 0 keeps the
	// default).
	MaxInvalidations int
}

// Planned wraps any reducer with the record→compile→execute lifecycle
// described in the package comment. In record and passthrough modes every
// call forwards to the inner strategy; in execute mode the inner strategy
// is bypassed and regions run race-free against the compiled plan.
type Planned[T num.Float] struct {
	inner    core.Reducer[T]
	out      []T
	threads  int
	kahan    bool
	maxInval int

	mode  rmode
	tapes []tape
	prog  *program
	comp  []T // Kahan compensation, len(out), execute mode only

	recPrivs  []recPrivate[T]
	execPrivs []execPrivate[T]
	active    []bool // Private(tid) called this region

	// invalid is set by any executor accessor that deviates from its
	// tape; finalize reads it once per region.
	invalid atomic.Bool
	consec  int // consecutive invalidated regions

	hits, misses, invals, compiles int

	drainer  core.MidRegionDrainer
	midDrain bool

	mem     memtrack.Counter
	memHeld int64
	tel     *telemetry.Recorder
}

// NewPlanned wraps inner, which must reduce into out. The wrapper starts
// in record mode; the first finalize compiles the plan and subsequent
// regions execute it until the pattern deviates.
func NewPlanned[T num.Float](inner core.Reducer[T], out []T, cfg Config) *Planned[T] {
	if out == nil {
		panic("plan: planned reducer needs a non-nil target array")
	}
	if len(out) > math.MaxInt32 {
		panic(fmt.Sprintf("plan: array length %d exceeds the plan's int32 index range", len(out)))
	}
	threads := inner.Threads()
	r := &Planned[T]{
		inner:     inner,
		out:       out,
		threads:   threads,
		kahan:     cfg.Kahan,
		maxInval:  cfg.MaxInvalidations,
		tapes:     make([]tape, threads),
		recPrivs:  make([]recPrivate[T], threads),
		execPrivs: make([]execPrivate[T], threads),
		active:    make([]bool, threads),
	}
	if r.maxInval <= 0 {
		r.maxInval = DefaultMaxInvalidations
	}
	r.drainer, _ = inner.(core.MidRegionDrainer)
	return r
}

// recPrivate is the record-mode accessor: forward to the inner strategy,
// append to the tape. The inner accessor keeps its own telemetry, so the
// recorder adds no counters of its own.
type recPrivate[T num.Float] struct {
	inner core.BulkPrivate[T]
	tp    *tape
}

func (p *recPrivate[T]) Add(i int, v T) {
	p.tp.recAdd(i)
	p.inner.Add(i, v)
}

func (p *recPrivate[T]) AddN(base int, vals []T) {
	p.tp.recAddN(base, len(vals))
	p.inner.AddN(base, vals)
}

func (p *recPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tp.recScatter(idx)
	p.inner.Scatter(idx, vals)
}

func (p *recPrivate[T]) Done() { p.inner.Done() }

// execPrivate is the execute-mode accessor: verify each op against the
// tape, apply owned elements in place, buffer foreign values. After a
// deviation it captures the remainder of the stream in an overflow tape
// for the finalize replay.
type execPrivate[T num.Float] struct {
	tp      *tape
	own     []T // out[lo:hi]
	comp    []T // compensation for [lo, hi), Kahan mode only
	ex      []T // exchange buffer, len == len(prog.fgn[tid])
	lo      int
	cur     int // next exchange slot
	opPos   int // next op to verify
	seqOff  int // progress inside the current opSeq op
	failed  bool
	kahan   bool
	epoch   int64 // plan epoch handed to the worker (prog.epoch)
	invalid *atomic.Bool
	ovIdx   []int32 // overflow capture after deviation
	ovVals  []T
	tel     *telemetry.Shard
}

func (p *execPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	if !p.failed && p.opPos < len(p.tp.ops) {
		o := &p.tp.ops[p.opPos]
		if o.kind == opSeq && p.tp.idx[o.off+int64(p.seqOff)] == int32(i) {
			if p.seqOff++; p.seqOff == int(o.n) {
				p.opPos++
				p.seqOff = 0
			}
			p.apply1(int32(i), v)
			return
		}
	}
	p.deviate()
	p.ovIdx = append(p.ovIdx, int32(i))
	p.ovVals = append(p.ovVals, v)
}

func (p *execPrivate[T]) apply1(i int32, v T) {
	if k := int(i) - p.lo; uint(k) < uint(len(p.own)) {
		if p.kahan {
			y := v - p.comp[k]
			t := p.own[k] + y
			p.comp[k] = (t - p.own[k]) - y
			p.own[k] = t
		} else {
			p.own[k] += v
		}
	} else {
		p.ex[p.cur] = v
		p.cur++
	}
}

func (p *execPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	if len(vals) == 0 {
		return
	}
	if !p.failed && p.opPos < len(p.tp.ops) && p.seqOff == 0 {
		o := &p.tp.ops[p.opPos]
		if o.kind == opAddN && int(o.base) == base && int(o.n) == len(vals) {
			p.opPos++
			p.applyRun(base, vals)
			return
		}
	}
	p.deviate()
	for j, v := range vals {
		p.ovIdx = append(p.ovIdx, int32(base+j))
		p.ovVals = append(p.ovVals, v)
	}
}

// applyRun splits a verified contiguous run against the ownership
// interval: foreign head, owned middle, foreign tail — three contiguous
// loops, no per-element tests.
func (p *execPrivate[T]) applyRun(base int, vals []T) {
	lo := p.lo
	hi := lo + len(p.own)
	end := base + len(vals)
	if hs := min(end, lo); hs > base {
		p.cur += copy(p.ex[p.cur:], vals[:hs-base])
	}
	if ms, me := max(base, lo), min(end, hi); me > ms {
		if p.kahan {
			kahanSlices(p.own[ms-lo:me-lo], p.comp[ms-lo:me-lo], vals[ms-base:me-base])
		} else {
			addSlices(p.own[ms-lo:me-lo], vals[ms-base:me-base])
		}
	}
	if ts := max(base, hi); ts < end {
		p.cur += copy(p.ex[p.cur:], vals[ts-base:])
	}
}

func (p *execPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	if len(idx) == 0 {
		return
	}
	if !p.failed && p.opPos < len(p.tp.ops) && p.seqOff == 0 {
		o := &p.tp.ops[p.opPos]
		if o.kind == opScatter && int(o.n) == len(idx) &&
			slices.Equal(idx, p.tp.idx[o.off:o.off+int64(o.n)]) {
			p.opPos++
			if p.kahan {
				p.cur = scatterOwnedKahan(p.own, p.comp, p.lo, idx, vals, p.ex, p.cur)
			} else {
				p.cur = scatterOwned(p.own, p.lo, idx, vals, p.ex, p.cur)
			}
			return
		}
	}
	p.deviate()
	p.ovIdx = append(p.ovIdx, idx...)
	p.ovVals = append(p.ovVals, vals...)
}

// Done flags a short stream (fewer ops than recorded) as a deviation;
// the plan's exchange slots for the missing ops were never filled.
func (p *execPrivate[T]) Done() {
	if !p.failed && (p.opPos != len(p.tp.ops) || p.seqOff != 0) {
		p.deviate()
	}
}

func (p *execPrivate[T]) deviate() {
	if p.failed {
		return
	}
	p.failed = true
	p.invalid.Store(true)
}

// Private returns the accessor matching the current mode. In execute
// mode the inner strategy's Private is not called at all — a planned
// dense reducer allocates no private copies while the plan holds.
func (r *Planned[T]) Private(tid int) core.Private[T] {
	r.active[tid] = true
	switch r.mode {
	case modeRecord:
		p := &r.recPrivs[tid]
		p.inner = core.AsBulk(r.inner.Private(tid))
		p.tp = &r.tapes[tid]
		return p
	case modeExecute:
		p := &r.execPrivs[tid]
		lo, hi := r.prog.ownRange(tid)
		p.tp = &r.tapes[tid]
		p.own = r.out[lo:hi:hi]
		p.lo = lo
		p.kahan = r.kahan
		p.epoch = r.prog.epoch
		p.invalid = &r.invalid
		if need := len(r.prog.fgn[tid]); cap(p.ex) < need {
			p.ex = make([]T, need)
		} else {
			p.ex = p.ex[:need]
		}
		if r.kahan {
			p.comp = r.comp[lo:hi:hi]
			clear(p.comp)
		}
		p.tel = r.tel.Shard(tid)
		return p
	default:
		return r.inner.Private(tid)
	}
}

// Finalize completes the region serially; see finalize.
func (r *Planned[T]) Finalize() { r.finalize(nil) }

// FinalizeWith completes the region using the team: record/passthrough
// forward to the inner strategy's parallel finalize, execute runs the
// exchange merge owner-parallel (each owner writes only its range).
func (r *Planned[T]) FinalizeWith(t *par.Team) { r.finalize(t) }

func (r *Planned[T]) finalize(t *par.Team) {
	switch r.mode {
	case modeRecord:
		r.innerFinalize(t)
		r.misses++
		r.tel.Shard(0).Inc(telemetry.PlanMisses)
		r.compile(t)
	case modeExecute:
		r.finalizeExec(t)
	default:
		r.innerFinalize(t)
		r.misses++
		r.tel.Shard(0).Inc(telemetry.PlanMisses)
	}
	clear(r.active)
}

func (r *Planned[T]) innerFinalize(t *par.Team) {
	if t != nil {
		r.inner.FinalizeWith(t)
	} else {
		r.inner.Finalize()
	}
}

// compile builds the execution plan from the tapes just recorded. The
// compile latency histogram observes every compile (compilation is rare;
// no decimation), behind the same nil-shard gate as the counters.
func (r *Planned[T]) compile(t *par.Team) {
	sh := r.tel.Shard(0)
	var start time.Time
	if sh != nil {
		start = time.Now()
	}
	p := compileProgram(r.tapes, len(r.out), r.threads)
	if sh != nil {
		sh.Observe(telemetry.PlanCompile, time.Since(start))
	}
	if p == nil {
		// Pattern not plannable (exchange slot overflow): stop paying the
		// recording overhead too.
		r.mode = modePassthrough
		return
	}
	r.compiles++
	if t != nil {
		p.epoch = t.Regions()
	}
	r.prog = p
	if r.kahan && r.comp == nil {
		var zero T
		r.comp = make([]T, len(r.out))
		r.mem.Alloc(memtrack.SliceBytes(len(r.out), unsafe.Sizeof(zero)))
	}
	r.mode = modeExecute
	r.account()
}

// finalizeExec completes an executor region: the valid path merges the
// exchange lists deterministically (ascending source tid, program order
// within each source); the invalid path merges what still verified, then
// serially replays every deviator's buffered prefix and overflow so each
// contribution is applied exactly once, and drops back to record mode.
func (r *Planned[T]) finalizeExec(t *par.Team) {
	valid := !r.invalid.Load()
	if valid {
		for tid := range r.tapes {
			if len(r.tapes[tid].ops) > 0 && !r.active[tid] {
				// A recorded thread sat the region out: its planned
				// contributions never arrived, so the stream changed.
				valid = false
				break
			}
		}
	}
	if valid {
		if t != nil {
			t.Run(func(o int) { r.mergeOwner(o, false) })
		} else {
			for o := 0; o < r.threads; o++ {
				r.mergeOwner(o, false)
			}
		}
		r.hits++
		r.consec = 0
		r.tel.Shard(0).Inc(telemetry.PlanHits)
		r.resetExecRegion()
		return
	}

	if t != nil {
		t.Run(func(o int) { r.mergeOwner(o, true) })
	} else {
		for o := 0; o < r.threads; o++ {
			r.mergeOwner(o, true)
		}
	}
	for tid := range r.execPrivs {
		p := &r.execPrivs[tid]
		if !r.active[tid] || !p.failed {
			continue
		}
		// The verified prefix filled exchange slots 0..cur-1, whose
		// destinations the plan knows; the overflow tape holds everything
		// after the deviation. Plain adds: determinism (and Kahan order)
		// is waived for the one invalid region.
		fgn := r.prog.fgn[tid]
		for k := 0; k < p.cur; k++ {
			r.out[fgn[k]] += p.ex[k]
		}
		for k, d := range p.ovIdx {
			r.out[d] += p.ovVals[k]
		}
	}
	r.invals++
	r.consec++
	r.tel.Shard(0).Inc(telemetry.PlanInvalidations)
	r.resetExecRegion()
	r.invalid.Store(false)
	r.prog = nil
	for tid := range r.tapes {
		r.tapes[tid].reset()
	}
	if r.consec >= r.maxInval {
		r.mode = modePassthrough
	} else {
		r.mode = modeRecord
	}
	r.account()
}

// mergeOwner applies every exchange list targeting owner o's range.
// With skipFailed set (invalid regions) sources that deviated or sat out
// are skipped — their contributions go through the serial replay instead.
func (r *Planned[T]) mergeOwner(o int, skipFailed bool) {
	prog := r.prog
	hot := r.tel.Shard(o).Hot()
	for t := 0; t < r.threads; t++ {
		if skipFailed && (!r.active[t] || r.execPrivs[t].failed) {
			continue
		}
		idx := prog.exIdx[o][t]
		if len(idx) == 0 {
			continue
		}
		if t != o {
			// Every exchange entry is an index the plan routed across
			// threads — the compiled analogue of a keeper foreign
			// submission. mergeOwner runs on owner o's goroutine, so o's
			// shard is the single writer here.
			hot.RecordBatch(hotspot.PlanExchange, idx)
		}
		pos := prog.exPos[o][t]
		ex := r.execPrivs[t].ex
		if r.kahan {
			mergeExchangeKahan(r.out, r.comp, idx, pos, ex)
		} else {
			mergeExchange(r.out, idx, pos, ex)
		}
	}
}

func (r *Planned[T]) resetExecRegion() {
	for tid := range r.execPrivs {
		p := &r.execPrivs[tid]
		p.cur = 0
		p.opPos = 0
		p.seqOff = 0
		p.failed = false
		p.ovIdx = p.ovIdx[:0]
		p.ovVals = p.ovVals[:0]
	}
}

// account recharges the wrapper's retained footprint: tapes, compiled
// plan arrays, and the exchange buffers the plan will require. Exchange
// buffers are charged at their planned size when the plan is compiled
// (allocation happens lazily per thread in Private).
func (r *Planned[T]) account() {
	var zero T
	held := tapeBytes(r.tapes)
	if p := r.prog; p != nil {
		held += p.bytes
		for t := range p.fgn {
			held += memtrack.SliceBytes(len(p.fgn[t]), unsafe.Sizeof(zero))
		}
	}
	for tid := range r.execPrivs {
		p := &r.execPrivs[tid]
		held += 4*int64(cap(p.ovIdx)) + memtrack.SliceBytes(cap(p.ovVals), unsafe.Sizeof(zero))
	}
	r.mem.Free(r.memHeld)
	r.mem.Alloc(held)
	r.memHeld = held
}

// EnableMidDrain forwards to the inner strategy's drain machinery in the
// modes that run it; in execute mode the inner strategy is bypassed and
// there is nothing to drain, so publication is switched off.
func (r *Planned[T]) EnableMidDrain(on bool) {
	if r.drainer == nil {
		return
	}
	r.drainer.EnableMidDrain(on && r.mode != modeExecute)
	r.midDrain = on
}

// DrainMid forwards the chunk-boundary hook in record and passthrough
// modes. Executor threads have no inbound work to apply mid-region
// (foreign traffic is buffered locally until the finalize merge), so the
// hook is a no-op while a plan holds.
func (r *Planned[T]) DrainMid(tid int) {
	if !r.midDrain || r.mode == modeExecute {
		return
	}
	r.drainer.DrainMid(tid)
}

// Instrument attaches (nil: detaches) the recorder to the wrapper and
// the inner reducer, like the binned wrapper: plan counters (plan-hits,
// plan-misses, plan-invalidations, plan-compile-latency) appear next to
// the inner strategy's own in one report.
func (r *Planned[T]) Instrument(rec *telemetry.Recorder) {
	r.tel = rec
	if in, ok := r.inner.(core.Instrumentable); ok {
		in.Instrument(rec)
	}
}

// Bytes reports the inner strategy's memory plus the retained plan
// footprint (tapes, compiled arrays, exchange buffers, compensation).
func (r *Planned[T]) Bytes() int64     { return r.inner.Bytes() + r.mem.Bytes() }
func (r *Planned[T]) PeakBytes() int64 { return r.inner.PeakBytes() + r.mem.Peak() }
func (r *Planned[T]) Name() string     { return "plan+" + r.inner.Name() }
func (r *Planned[T]) Threads() int     { return r.threads }

// Inner exposes the wrapped reducer (observability for tests and the
// experiment harness).
func (r *Planned[T]) Inner() core.Reducer[T] { return r.inner }

// Stats is a point-in-time view of the wrapper lifecycle, for tests and
// the experiment harness. The telemetry counters carry the same numbers
// when a recorder is attached; Stats works without one.
type Stats struct {
	Mode          string // "record", "execute", "passthrough"
	Epoch         int64  // team region epoch of the live plan (0 without a team)
	Compiles      int
	Hits          int
	Misses        int
	Invalidations int
	Owned         int64 // planned elements applied in place per region
	Foreign       int64 // planned elements routed through exchange buffers
}

// Stats reports the wrapper lifecycle counters. Call between regions.
func (r *Planned[T]) Stats() Stats {
	s := Stats{
		Mode:          r.mode.String(),
		Compiles:      r.compiles,
		Hits:          r.hits,
		Misses:        r.misses,
		Invalidations: r.invals,
	}
	if p := r.prog; p != nil {
		s.Epoch = p.epoch
		s.Owned = p.owned
		s.Foreign = p.foreign
	}
	return s
}

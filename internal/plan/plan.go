// Package plan implements the inspector–executor complement to the SPRAY
// strategies: a plan-compiled reducer that records one parallel region's
// per-thread update stream, compiles it into a race-free execution plan,
// and replays every subsequent identical region without paying the inner
// strategy's conflict resolution (atomics, claims, queues, binning) again.
//
// The model is MKL's sparse inspector/executor, the paper's strongest
// repeated-reduction comparator: iterative workloads (tMV time loops, FEM
// assembly, convolution backprop) replay an identical index pattern every
// iteration, so conflict structure can be discovered once and amortized.
//
// Lifecycle:
//
//   - record: the wrapper forwards every Add/AddN/Scatter to the inner
//     strategy (which produces the region's result as usual) while a
//     per-thread tape captures the op stream — the same hook shape as the
//     advisor's Tape, but keeping op boundaries and program order, not
//     just touch counts.
//   - compile: at the record region's finalize, destinations are
//     partitioned into keeper-style static ownership ranges. Each
//     thread's stream is classified once: owned elements need no plan
//     (the executor applies them in place), foreign elements are assigned
//     a flat slot in the thread's exchange buffer, and per-owner exchange
//     lists (destination + slot) are laid out so the merge is a gather.
//   - execute: the inner strategy is bypassed entirely. Each thread
//     verifies its incoming ops against the tape (O(1) per AddN run, one
//     slice compare per Scatter batch), applies owned elements directly
//     to the target — single writer per ownership range, no
//     synchronization — and copies foreign values into its exchange
//     buffer in program order. Finalize merges the exchange lists per
//     owner: for owner o, source threads are walked in ascending tid and
//     each source's contributions in program order, so the result is
//     deterministic across runs of the same plan.
//   - invalidate: any deviation (unseen index, reshaped batch, missing
//     or extra ops, a recorded thread absent from the region) flips the
//     region to invalid. The deviating thread captures its remaining
//     stream in an overflow tape; finalize merges the threads that still
//     verified, serially replays the deviators' buffered prefix and
//     overflow (exactly-once, determinism waived for that one region),
//     and drops back to record mode. Repeated invalidation degrades to a
//     permanent passthrough so a pattern-unstable workload pays only the
//     forwarding overhead.
//
// This file holds the tape (record side) and the compiled program
// (inspect side); exec.go holds the executor hot loops and planned.go the
// reducer wrapper.
package plan

import "math"

// opKind discriminates the three record shapes. Element-wise Adds are
// coalesced into one opSeq run per uninterrupted sequence; AddN keeps
// only (base, n) since the destinations are implied; Scatter keeps the
// gathered index batch verbatim.
type opKind uint8

const (
	opSeq     opKind = iota // consecutive element-wise Adds; indices in tape.idx
	opAddN                  // contiguous run: destinations base..base+n-1
	opScatter               // gathered batch; indices in tape.idx
)

// op is one recorded bulk submission. off indexes tape.idx for the kinds
// that store destinations explicitly (opSeq, opScatter); opAddN encodes
// its destinations as base/n alone, which is what makes executor
// verification of contiguous runs O(1).
type op struct {
	off  int64
	base int32
	n    int32
	kind opKind
}

// tape is one thread's recorded update stream: the op sequence plus the
// flat destination array backing seq and scatter ops. Capacity is
// retained across re-records (capacity-retention rule).
type tape struct {
	ops   []op
	idx   []int32
	elems int64
}

func (tp *tape) reset() {
	tp.ops = tp.ops[:0]
	tp.idx = tp.idx[:0]
	tp.elems = 0
}

// recAdd records one element-wise update, extending the current opSeq run
// when the previous call was also an Add (its destinations are then
// guaranteed to sit at the tail of tp.idx).
func (tp *tape) recAdd(i int) {
	if k := len(tp.ops) - 1; k >= 0 && tp.ops[k].kind == opSeq {
		tp.ops[k].n++
	} else {
		tp.ops = append(tp.ops, op{kind: opSeq, off: int64(len(tp.idx)), n: 1})
	}
	tp.idx = append(tp.idx, int32(i))
	tp.elems++
}

// recAddN records a contiguous run. Adjacent runs are deliberately not
// coalesced: the executor verifies call-by-call, so the tape must mirror
// the workload's submission boundaries exactly.
func (tp *tape) recAddN(base, n int) {
	if n == 0 {
		return
	}
	tp.ops = append(tp.ops, op{kind: opAddN, base: int32(base), n: int32(n)})
	tp.elems += int64(n)
}

// recScatter records a gathered batch verbatim.
func (tp *tape) recScatter(idx []int32) {
	if len(idx) == 0 {
		return
	}
	tp.ops = append(tp.ops, op{kind: opScatter, off: int64(len(tp.idx)), n: int32(len(idx))})
	tp.idx = append(tp.idx, idx...)
	tp.elems += int64(len(idx))
}

// program is one compiled execution plan. Ownership is the keeper's
// static partition: chunk = ceil(n/threads), owner(i) = i/chunk, thread t
// owns [lo(t), hi(t)). Per source thread t, fgn[t] lists the destinations
// of t's foreign elements in program order — slot k of t's exchange
// buffer belongs to destination fgn[t][k]. Per owner o and source t,
// exIdx[o][t]/exPos[o][t] are the same elements regrouped for the merge:
// out[exIdx[o][t][k]] += exchange(t)[exPos[o][t][k]].
type program struct {
	n       int
	threads int
	chunk   int
	epoch   int64 // team region epoch the plan was compiled at

	fgn   [][]int32   // [src] foreign destinations, program order
	exIdx [][][]int32 // [owner][src] destinations
	exPos [][][]int32 // [owner][src] exchange slots

	owned   int64 // elements the executor applies in place
	foreign int64 // elements routed through exchange buffers
	bytes   int64 // compiled footprint (plan arrays only)
}

// ownRange returns thread tid's static ownership interval [lo, hi).
func (p *program) ownRange(tid int) (lo, hi int) {
	lo = tid * p.chunk
	if lo > p.n {
		lo = p.n
	}
	hi = lo + p.chunk
	if hi > p.n {
		hi = p.n
	}
	return lo, hi
}

// compileProgram builds the execution plan from the recorded tapes.
// Returns nil when the pattern cannot be planned (a thread's foreign
// element count overflows the int32 slot range) — the caller then
// degrades to passthrough.
func compileProgram(tapes []tape, n, threads int) *program {
	chunk := (n + threads - 1) / threads
	if chunk < 1 {
		chunk = 1
	}
	p := &program{
		n:       n,
		threads: threads,
		chunk:   chunk,
		fgn:     make([][]int32, threads),
		exIdx:   make([][][]int32, threads),
		exPos:   make([][][]int32, threads),
	}
	for o := 0; o < threads; o++ {
		p.exIdx[o] = make([][]int32, threads)
		p.exPos[o] = make([][]int32, threads)
	}
	for t := range tapes {
		tp := &tapes[t]
		slot := 0
		route := func(i int32) bool {
			ow := int(i) / chunk
			if ow == t {
				return true
			}
			if slot > math.MaxInt32 {
				return false
			}
			p.fgn[t] = append(p.fgn[t], i)
			p.exIdx[ow][t] = append(p.exIdx[ow][t], i)
			p.exPos[ow][t] = append(p.exPos[ow][t], int32(slot))
			slot++
			return true
		}
		for k := range tp.ops {
			o := &tp.ops[k]
			switch o.kind {
			case opAddN:
				// Walk the run by owner segment; only foreign segments
				// consume exchange slots, still in ascending (= program)
				// order.
				base, end := int(o.base), int(o.base)+int(o.n)
				for s := base; s < end; {
					ow := s / chunk
					segEnd := min(end, (ow+1)*chunk)
					if ow != t {
						for i := s; i < segEnd; i++ {
							if !route(int32(i)) {
								return nil
							}
						}
					}
					s = segEnd
				}
			default: // opSeq, opScatter: explicit destinations
				for _, i := range tp.idx[o.off : o.off+int64(o.n)] {
					if !route(i) {
						return nil
					}
				}
			}
		}
		p.foreign += int64(slot)
		p.owned += tp.elems - int64(slot)
	}
	for t := 0; t < threads; t++ {
		p.bytes += 4 * int64(len(p.fgn[t]))
		for o := 0; o < threads; o++ {
			p.bytes += 8 * int64(len(p.exIdx[o][t]))
		}
	}
	return p
}

// tapeBytes reports the retained recording footprint, for the wrapper's
// memory accounting.
func tapeBytes(tapes []tape) int64 {
	var b int64
	for t := range tapes {
		b += 24*int64(cap(tapes[t].ops)) + 4*int64(cap(tapes[t].idx))
	}
	return b
}

package plan

import "spray/internal/num"

// Executor hot loops. These run once per verified op in execute mode and
// are written so the compiler's prove pass eliminates bounds checks in
// the inner loops: contiguous paths pin the slice lengths with an
// explicit length guard plus a prologue re-slice (the guard dominates
// the re-slice, so prove discharges its IsSliceInBounds too), and the
// owned-range test doubles as the bounds proof (k := i-lo;
// uint(k) < uint(len(own)) is both "i is owned" and "own[k] is in
// range" in a single compare). The only checks left in this file are
// the irreducible data-dependent gathers (ex[cur], out[d], ex[pos[k]]);
// `make bce-audit` asserts no slice-prologue check ever creeps back in.

// addSlices is the owned segment of a verified AddN run: dst[j] += src[j].
func addSlices[T num.Float](dst, src []T) {
	if len(src) < len(dst) {
		panic("plan: addSlices source shorter than destination")
	}
	src = src[:len(dst)]
	for j := range dst {
		dst[j] += src[j]
	}
}

// kahanSlices is the compensated variant of addSlices, bit-identical to
// the compensated strategy's per-element update order.
func kahanSlices[T num.Float](sum, comp, src []T) {
	if len(comp) < len(sum) || len(src) < len(sum) {
		panic("plan: kahanSlices operand shorter than sum")
	}
	comp = comp[:len(sum)]
	src = src[:len(sum)]
	for j := range sum {
		v := src[j]
		y := v - comp[j]
		t := sum[j] + y
		comp[j] = (t - sum[j]) - y
		sum[j] = t
	}
}

// scatterOwned applies a verified Scatter batch: owned elements (own is
// out[lo:hi]) accumulate in place, foreign values land in the next
// exchange slots. Returns the advanced slot cursor. The batch content
// was verified against the tape, so the foreign elements fill exactly
// the slots the compiled plan assigned to this op.
func scatterOwned[T num.Float](own []T, lo int, idx []int32, vals []T, ex []T, cur int) int {
	if len(vals) < len(idx) {
		panic("plan: scatterOwned fewer values than indices")
	}
	vals = vals[:len(idx)]
	for j, i := range idx {
		v := vals[j]
		if k := int(i) - lo; uint(k) < uint(len(own)) {
			own[k] += v
		} else {
			ex[cur] = v
			cur++
		}
	}
	return cur
}

// scatterOwnedKahan is the compensated variant of scatterOwned; comp is
// the owner-range compensation slice aligned with own.
func scatterOwnedKahan[T num.Float](own, comp []T, lo int, idx []int32, vals []T, ex []T, cur int) int {
	if len(comp) < len(own) || len(vals) < len(idx) {
		panic("plan: scatterOwnedKahan operand length mismatch")
	}
	comp = comp[:len(own)]
	vals = vals[:len(idx)]
	for j, i := range idx {
		v := vals[j]
		if k := int(i) - lo; uint(k) < uint(len(own)) {
			y := v - comp[k]
			t := own[k] + y
			comp[k] = (t - own[k]) - y
			own[k] = t
		} else {
			ex[cur] = v
			cur++
		}
	}
	return cur
}

// mergeExchange applies one (owner, source) exchange list at finalize:
// out[idx[k]] += ex[pos[k]]. Both gathers are data-dependent; the loop
// itself is branch-free.
func mergeExchange[T num.Float](out []T, idx, pos []int32, ex []T) {
	if len(pos) < len(idx) {
		panic("plan: mergeExchange fewer slots than destinations")
	}
	pos = pos[:len(idx)]
	for k, d := range idx {
		out[d] += ex[pos[k]]
	}
}

// mergeExchangeKahan is the compensated variant of mergeExchange; comp
// is the full-length compensation array (indexed by destination).
func mergeExchangeKahan[T num.Float](out, comp []T, idx, pos []int32, ex []T) {
	if len(pos) < len(idx) {
		panic("plan: mergeExchangeKahan fewer slots than destinations")
	}
	pos = pos[:len(idx)]
	for k, d := range idx {
		v := ex[pos[k]]
		y := v - comp[d]
		t := out[d] + y
		comp[d] = (t - out[d]) - y
		out[d] = t
	}
}

package mkl

import (
	"math/rand"
	"testing"

	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/sparse"
)

func setup(seed int64, rows, cols, nnz int) (*sparse.CSR[float64], []float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := sparse.Random[float64](rows, cols, nnz, seed)
	x := make([]float64, rows)
	for i := range x {
		x[i] = float64(rng.Intn(7) - 3)
	}
	want := make([]float64, cols)
	a.TMulVecSeq(x, want)
	return a, x, want
}

func TestLegacyMatchesReference(t *testing.T) {
	a, x, want := setup(1, 120, 90, 900)
	for _, threads := range []int{1, 2, 3, 5, 8} {
		team := par.NewTeam(threads)
		y := make([]float64, a.Cols)
		extra := LegacyTMulVec(team, a, x, y)
		team.Close()
		if d := num.MaxAbsDiff(y, want); d > 1e-9 {
			t.Errorf("threads=%d: diff %v", threads, d)
		}
		if wantB := int64(threads * a.Cols * 8); extra != wantB {
			t.Errorf("threads=%d: extra=%d, want %d", threads, extra, wantB)
		}
	}
}

func TestIEWithoutHintsMatchesReference(t *testing.T) {
	a, x, want := setup(2, 150, 110, 1200)
	for _, threads := range []int{1, 2, 4, 7} {
		team := par.NewTeam(threads)
		h := NewHandle(a)
		h.Optimize() // no hints: cheap inspection
		if h.ExtraBytes() != 0 {
			t.Errorf("unhinted inspection allocated %d bytes", h.ExtraBytes())
		}
		y := make([]float64, a.Cols)
		extra := h.ExecuteTMulVec(team, x, y)
		team.Close()
		if d := num.MaxAbsDiff(y, want); d > 1e-9 {
			t.Errorf("threads=%d: diff %v", threads, d)
		}
		if extra <= 0 {
			t.Errorf("threads=%d: unhinted executor reported no per-call memory", threads)
		}
	}
}

func TestIEWithHintsMatchesReference(t *testing.T) {
	a, x, want := setup(3, 140, 100, 1000)
	team := par.NewTeam(4)
	defer team.Close()
	h := NewHandle(a)
	h.SetHint(Hint{Transpose: true, Calls: 100})
	h.Optimize()
	if !h.Optimized() {
		t.Error("Optimized() false after Optimize")
	}
	if h.ExtraBytes() <= 0 {
		t.Error("hinted inspection reported no memory")
	}
	// Roughly a full matrix copy: within 2x of the original's footprint.
	if h.ExtraBytes() > 2*a.Bytes() {
		t.Errorf("inspection memory %d implausibly large vs matrix %d", h.ExtraBytes(), a.Bytes())
	}
	y := make([]float64, a.Cols)
	if extra := h.ExecuteTMulVec(team, x, y); extra != 0 {
		t.Errorf("hinted executor reported per-call memory %d", extra)
	}
	if d := num.MaxAbsDiff(y, want); d > 1e-12 {
		t.Errorf("diff %v", d)
	}
}

func TestIEExecuteRepeatedAccumulates(t *testing.T) {
	a, x, want1 := setup(4, 80, 70, 500)
	want := make([]float64, a.Cols)
	for i := range want {
		want[i] = 3 * want1[i]
	}
	team := par.NewTeam(3)
	defer team.Close()
	h := NewHandle(a)
	h.SetHint(Hint{Transpose: true})
	h.Optimize()
	y := make([]float64, a.Cols)
	for r := 0; r < 3; r++ {
		h.ExecuteTMulVec(team, x, y)
	}
	if d := num.MaxAbsDiff(y, want); d > 1e-12 {
		t.Errorf("repeated execute diff %v", d)
	}
}

func TestTreeCombineOddTeamSizes(t *testing.T) {
	// The pairwise combine must be correct for non-power-of-two teams.
	a, x, want := setup(5, 60, 50, 400)
	for _, threads := range []int{3, 5, 6, 7} {
		team := par.NewTeam(threads)
		h := NewHandle(a)
		y := make([]float64, a.Cols)
		h.ExecuteTMulVec(team, x, y) // un-optimized path also exercises tree combine
		team.Close()
		if d := num.MaxAbsDiff(y, want); d > 1e-9 {
			t.Errorf("threads=%d: diff %v", threads, d)
		}
	}
}

func TestDimensionPanics(t *testing.T) {
	a := sparse.Random[float64](10, 12, 40, 1)
	team := par.NewTeam(2)
	defer team.Close()
	for name, fn := range map[string]func(){
		"legacy": func() { LegacyTMulVec(team, a, make([]float64, 10), make([]float64, 10)) },
		"ie":     func() { NewHandle(a).ExecuteTMulVec(team, make([]float64, 12), make([]float64, 12)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFloat32Paths(t *testing.T) {
	a := sparse.Random[float32](50, 40, 300, 9)
	rng := rand.New(rand.NewSource(9))
	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = float32(rng.Intn(5))
	}
	want := make([]float32, a.Cols)
	a.TMulVecSeq(x, want)
	team := par.NewTeam(3)
	defer team.Close()

	y1 := make([]float32, a.Cols)
	LegacyTMulVec(team, a, x, y1)
	h := NewHandle(a)
	h.SetHint(Hint{Transpose: true})
	h.Optimize()
	y2 := make([]float32, a.Cols)
	h.ExecuteTMulVec(team, x, y2)
	if d := num.MaxAbsDiff(y1, want); d > 1e-3 {
		t.Errorf("legacy float32 diff %v", d)
	}
	if d := num.MaxAbsDiff(y2, want); d > 1e-3 {
		t.Errorf("ie float32 diff %v", d)
	}
}

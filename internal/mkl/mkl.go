// Package mkl reimplements, in behavior, the two Intel MKL sparse BLAS
// entry points the paper compares against for the CSR transpose-matrix-
// vector product. MKL is closed source and x86-only, so per the
// substitution rule these are vendor-style Go implementations that
// reproduce the performance *characteristics* the paper reports rather
// than Intel's exact code:
//
//   - Legacy (mkl_cspblas_scsrgemv): a one-call routine that privatizes
//     the result vector per thread and combines serially. Reasonable at
//     low thread counts, poor scaling (the paper measures its best time
//     at 4 threads), dense-reduction-like memory growth.
//
//   - Inspector/Executor (mkl_sparse_s_mv): a handle-based API. Without
//     operation hints the executor uses a lighter scheme (privatized
//     results with a tree combine) that peaks at moderate thread counts.
//     With hints plus Optimize, the inspection step transposes the matrix
//     so the executor becomes a race-free row-parallel gather — the
//     fastest multiply in the paper, but only competitive because the
//     inspection cost is excluded from the timing, and at the price of a
//     memory footprint far above any reduction scheme (a full extra copy
//     of the matrix).
package mkl

import (
	"fmt"

	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/sparse"
)

// LegacyTMulVec computes y += Aᵀ·x in the style of the legacy
// mkl_cspblas_scsrgemv path: each thread accumulates into a private full
// copy of y, and the copies are folded in serially at the end.
// The returned count is the scheme's extra memory in bytes.
func LegacyTMulVec[T num.Float](team *par.Team, a *sparse.CSR[T], x, y []T) int64 {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("mkl: dimension mismatch %dx%d with x[%d] y[%d]", a.Rows, a.Cols, len(x), len(y)))
	}
	n := team.Size()
	partial := make([][]T, n)
	team.Run(func(tid int) {
		p := make([]T, len(y))
		partial[tid] = p
		from, to := par.StaticRange(0, a.Rows, tid, n)
		for i := from; i < to; i++ {
			xi := x[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				p[a.Col[k]] += a.Val[k] * xi
			}
		}
	})
	// Serial combine: the legacy routine's scaling bottleneck.
	for _, p := range partial {
		for j, v := range p {
			y[j] += v
		}
	}
	var zero T
	return int64(n) * int64(len(y)) * int64(sizeOf(zero))
}

func sizeOf[T num.Float](v T) int {
	if _, ok := any(v).(float32); ok {
		return 4
	}
	return 8
}

// Hint mirrors the MKL mkl_sparse_set_mv_hint operation descriptor: the
// caller declares the operation it will perform repeatedly so Optimize
// can specialize the internal representation.
type Hint struct {
	Transpose bool
	Calls     int
}

// Handle is the inspector/executor state, the analogue of
// sparse_matrix_t. Create, optionally SetHint, Optimize, then Execute any
// number of times, mirroring the MKL call sequence.
type Handle[T num.Float] struct {
	a         *sparse.CSR[T]
	hint      *Hint
	optimized bool
	at        *sparse.CSR[T] // transpose built by hinted Optimize
	extra     int64          // inspection memory in bytes
}

// NewHandle wraps an existing CSR matrix without copying it.
func NewHandle[T num.Float](a *sparse.CSR[T]) *Handle[T] {
	return &Handle[T]{a: a}
}

// SetHint records the expected operation, enabling the aggressive
// inspection path in Optimize.
func (h *Handle[T]) SetHint(hint Hint) { h.hint = &hint }

// Optimize runs the inspection step. With a transpose hint it builds Aᵀ —
// expensive in time and memory, which is exactly the trade the paper
// charges against "MKL I/E with hints". Without hints it is cheap and the
// executor keeps using the original representation.
func (h *Handle[T]) Optimize() {
	h.optimized = true
	if h.hint != nil && h.hint.Transpose {
		h.at = h.a.Transpose()
		h.extra = h.at.Bytes()
	}
}

// ExtraBytes reports the memory the inspection step added.
func (h *Handle[T]) ExtraBytes() int64 { return h.extra }

// Optimized reports whether Optimize has run.
func (h *Handle[T]) Optimized() bool { return h.optimized }

// ExecuteTMulVec computes y += Aᵀ·x with the executor. The path depends
// on the inspection state:
//
//   - hinted + optimized: row-parallel gather over the prebuilt Aᵀ; no
//     reduction, no extra memory beyond the inspection copy.
//   - otherwise: privatized partial results with a pairwise tree combine,
//     better than the legacy serial combine but still allocating
//     thread-proportional memory. The per-call extra bytes are returned.
func (h *Handle[T]) ExecuteTMulVec(team *par.Team, x, y []T) int64 {
	if len(x) != h.a.Rows || len(y) != h.a.Cols {
		panic(fmt.Sprintf("mkl: dimension mismatch %dx%d with x[%d] y[%d]", h.a.Rows, h.a.Cols, len(x), len(y)))
	}
	if h.at != nil {
		at := h.at
		par.ParallelFor(team, 0, at.Rows, par.Static(), func(tid, from, to int) {
			for j := from; j < to; j++ {
				var sum T
				for k := at.RowPtr[j]; k < at.RowPtr[j+1]; k++ {
					sum += at.Val[k] * x[at.Col[k]]
				}
				y[j] += sum
			}
		})
		return 0
	}
	return h.treeCombineTMulVec(team, x, y)
}

// treeCombineTMulVec is the un-hinted executor: private partials merged
// pairwise in log2(threads) parallel rounds.
func (h *Handle[T]) treeCombineTMulVec(team *par.Team, x, y []T) int64 {
	n := team.Size()
	a := h.a
	partial := make([][]T, n)
	team.Run(func(tid int) {
		p := make([]T, len(y))
		partial[tid] = p
		from, to := par.StaticRange(0, a.Rows, tid, n)
		for i := from; i < to; i++ {
			xi := x[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				p[a.Col[k]] += a.Val[k] * xi
			}
		}
	})
	for stride := 1; stride < n; stride *= 2 {
		stride := stride
		team.Run(func(tid int) {
			dst := tid * 2 * stride
			src := dst + stride
			if tid >= (n+2*stride-1)/(2*stride) || src >= n {
				return
			}
			pd, ps := partial[dst], partial[src]
			for j, v := range ps {
				pd[j] += v
			}
		})
	}
	for j, v := range partial[0] {
		y[j] += v
	}
	var zero T
	return int64(n) * int64(len(y)) * int64(sizeOf(zero))
}

package fem

import (
	"math"
	"testing"

	"spray"
	"spray/internal/mesh"
	"spray/internal/num"
)

func TestPatternShape(t *testing.T) {
	m := mesh.NewHex(3, 1)
	p := NewProblem(m)
	if p.Pattern.Rows != m.NumNode || p.Pattern.Cols != m.NumNode {
		t.Fatalf("pattern %dx%d", p.Pattern.Rows, p.Pattern.Cols)
	}
	if err := p.Pattern.Validate(); err != nil {
		t.Fatal(err)
	}
	// The center node of a 2-elems-per-axis neighborhood couples to its
	// full 27-node stencil; a corner node of the cube couples to 8.
	deg := func(n int) int { return int(p.Pattern.RowPtr[n+1] - p.Pattern.RowPtr[n]) }
	if d := deg(0); d != 8 {
		t.Errorf("corner degree %d, want 8", d)
	}
	en := m.EdgeNodes
	center := (en*en + en + 1) * 1 // node (1,1,1)
	if d := deg(center); d != 27 {
		t.Errorf("interior degree %d, want 27", d)
	}
}

func TestAssembleMatchesSequentialAllStrategies(t *testing.T) {
	m := mesh.NewHex(4, 1.3)
	p := NewProblem(m)
	p.AssembleSeq()
	want := append([]float64(nil), p.Pattern.Val...)
	for _, st := range []spray.Strategy{
		spray.Atomic(), spray.BlockCAS(256), spray.Keeper(), spray.Dense(),
		spray.Map(), spray.Ordered(), spray.Auto(256), spray.Builtin(),
	} {
		for _, threads := range []int{1, 4} {
			team := spray.NewTeam(threads)
			r := p.Assemble(team, st)
			team.Close()
			if d := num.MaxAbsDiff(p.Pattern.Val, want); d > 1e-12 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
			if r == nil {
				t.Errorf("%s: nil reducer", st)
			}
		}
	}
}

func TestStiffnessMatrixProperties(t *testing.T) {
	m := mesh.NewHex(4, 1)
	p := NewProblem(m)
	team := spray.NewTeam(3)
	defer team.Close()
	p.Assemble(team, spray.BlockCAS(512))

	// Symmetry: K[i][j] == K[j][i] via K·x vs Kᵀ·x on a probe vector.
	x := make([]float64, m.NumNode)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	kx := make([]float64, m.NumNode)
	p.Pattern.MulVec(x, kx)
	ktx := make([]float64, m.NumNode)
	p.Pattern.TMulVecSeq(x, ktx)
	if d := num.MaxAbsDiff(kx, ktx); d > 1e-9 {
		t.Errorf("stiffness not symmetric: %v", d)
	}

	// Null space: K·1 = 0 (constants have zero Dirichlet energy).
	for i, v := range p.RowSums() {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("row sum %d = %v", i, v)
		}
	}

	// Positive semidefiniteness probe: xᵀKx >= 0 for a few vectors.
	for seed := 0; seed < 3; seed++ {
		for i := range x {
			x[i] = math.Cos(float64(seed*7+i) * 0.73)
		}
		p.Pattern.MulVec(x, kx)
		var quad float64
		for i := range x {
			quad += x[i] * kx[i]
		}
		if quad < -1e-9 {
			t.Errorf("seed %d: negative energy %v", seed, quad)
		}
	}

	// Diagonal dominance of sign: diagonal entries positive.
	for i := 0; i < m.NumNode; i++ {
		for k := p.Pattern.RowPtr[i]; k < p.Pattern.RowPtr[i+1]; k++ {
			if int(p.Pattern.Col[k]) == i && p.Pattern.Val[k] <= 0 {
				t.Fatalf("diagonal %d = %v", i, p.Pattern.Val[k])
			}
		}
	}
}

func TestAssembleLoadConservesSource(t *testing.T) {
	m := mesh.NewHex(5, 2.0)
	p := NewProblem(m)
	team := spray.NewTeam(4)
	defer team.Close()
	const f = 3.5
	rhs := make([]float64, m.NumNode)
	r := p.AssembleLoad(team, spray.Keeper(), f, rhs)
	var sum float64
	for _, v := range rhs {
		sum += v
	}
	want := f * 8.0 // f times the domain volume (side 2)
	if !num.RelClose(sum, want, 1e-12) {
		t.Errorf("total load %v, want %v", sum, want)
	}
	if r.PeakBytes() < 0 {
		t.Errorf("negative memory")
	}
	// Wrong-size rhs panics.
	defer func() {
		if recover() == nil {
			t.Error("short rhs did not panic")
		}
	}()
	p.AssembleLoad(team, spray.Atomic(), 1, make([]float64, 3))
}

func TestAssembleWithAccumulates(t *testing.T) {
	m := mesh.NewHex(3, 1)
	p := NewProblem(m)
	team := spray.NewTeam(2)
	defer team.Close()
	p.AssembleSeq()
	want := append([]float64(nil), p.Pattern.Val...)
	for i := range want {
		want[i] *= 2
	}
	clear(p.Pattern.Val)
	r := spray.New(spray.BlockLock(128), p.Pattern.Val, team.Size())
	p.AssembleWith(team, r)
	p.AssembleWith(team, r) // second pass accumulates
	if d := num.MaxAbsDiff(p.Pattern.Val, want); d > 1e-12 {
		t.Errorf("double assembly diff %v", d)
	}
}

func TestAssembleItersPlanMatchesSequential(t *testing.T) {
	// The multi-pass helper through a plan-compiled reducer: pass 1
	// records the element scatter map, later passes run the compiled
	// executor. All passes must accumulate exactly like repeated
	// sequential assembly.
	const passes = 3
	m := mesh.NewHex(3, 1)
	p := NewProblem(m)
	team := spray.NewTeam(3)
	defer team.Close()
	p.AssembleSeq()
	want := append([]float64(nil), p.Pattern.Val...)
	for i := range want {
		want[i] *= passes
	}
	clear(p.Pattern.Val)
	r := spray.New(spray.Planned(spray.Keeper()), p.Pattern.Val, team.Size())
	p.AssembleIters(team, r, passes)
	if d := num.MaxAbsDiff(p.Pattern.Val, want); d > 1e-12 {
		t.Errorf("planned %d-pass assembly diff %v", passes, d)
	}
}

func TestScatterOverlapIsReal(t *testing.T) {
	// Neighboring elements must write to shared CSR positions —
	// otherwise this test case would not exercise reductions at all.
	m := mesh.NewHex(2, 1)
	p := NewProblem(m)
	seen := map[int32]bool{}
	shared := 0
	for _, pos := range p.scatter {
		if seen[pos] {
			shared++
		}
		seen[pos] = true
	}
	if shared == 0 {
		t.Fatal("no shared scatter positions between elements")
	}
}

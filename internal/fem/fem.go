// Package fem implements parallel finite-element matrix and vector
// assembly over the hexahedral mesh substrate — the workload the paper's
// Figure 1 depicts: every element adds its local contributions into
// global arrays whose entries are shared with neighboring elements, so
// concurrent assembly is a sparse reduction with heavy overlap. The
// package assembles the standard trilinear-hex stiffness matrix of the
// Poisson operator (−Δu) in CSR form and load vectors, with the scatter
// into the CSR value array and the right-hand side running through any
// SPRAY strategy.
package fem

import (
	"fmt"
	"math"

	"spray"
	"spray/internal/hexelem"
	"spray/internal/mesh"
	"spray/internal/par"
	"spray/internal/sparse"
)

// Problem holds the symbolic structure of the assembled system: the mesh,
// the CSR sparsity pattern of the node-to-node graph, and the per-element
// scatter map from local (corner, corner) pairs to CSR value positions.
type Problem struct {
	Mesh *mesh.Hex
	// Pattern is the CSR skeleton: RowPtr/Col fixed, Val is the
	// assembly target.
	Pattern *sparse.CSR[float64]
	// scatter[8*8*e + 8*a + b] is the position in Pattern.Val receiving
	// element e's local contribution K[a][b]. Positions are int32 so each
	// element's 64 entries form a ready-made Scatter index batch; the
	// constructor rejects patterns with more than MaxInt32 entries.
	scatter []int32
}

// NewProblem performs the symbolic phase: build the sparsity pattern of
// the node connectivity graph and precompute every element's scatter
// positions. This mirrors real FEM codes, where the symbolic assembly is
// done once and the numeric assembly — the SPRAY-parallelized part — runs
// every nonlinear iteration or time step.
func NewProblem(m *mesh.Hex) *Problem {
	coo := sparse.NewCOO[float64](m.NumNode, m.NumNode)
	for e := 0; e < m.NumElem; e++ {
		nl := m.ElemNodes(e)
		for _, a := range nl {
			for _, b := range nl {
				coo.Add(int(a), int(b), 0)
			}
		}
	}
	pattern := sparse.FromCOO(coo)
	if nnz := pattern.NNZ(); nnz > math.MaxInt32 {
		panic(fmt.Sprintf("fem: pattern has %d entries, exceeding the int32 scatter-map range", nnz))
	}

	p := &Problem{Mesh: m, Pattern: pattern}
	p.scatter = make([]int32, 64*m.NumElem)
	for e := 0; e < m.NumElem; e++ {
		nl := m.ElemNodes(e)
		for a := 0; a < 8; a++ {
			row := int(nl[a])
			for b := 0; b < 8; b++ {
				pos := p.find(row, nl[b])
				p.scatter[64*e+8*a+b] = int32(pos)
			}
		}
	}
	return p
}

// find locates column col within row's CSR segment by binary search.
func (p *Problem) find(row int, col int32) int64 {
	lo, hi := p.Pattern.RowPtr[row], p.Pattern.RowPtr[row+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Pattern.Col[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= p.Pattern.RowPtr[row+1] || p.Pattern.Col[lo] != col {
		panic(fmt.Sprintf("fem: entry (%d,%d) missing from pattern", row, col))
	}
	return lo
}

// NNZ returns the number of stored matrix entries.
func (p *Problem) NNZ() int { return p.Pattern.NNZ() }

// elemStiffness computes the 8×8 local stiffness matrix of the Poisson
// operator on element e using one-point (mean) quadrature with the
// element's B matrix: K[a][b] = (∇φa · ∇φb) · V ≈ (bᵃ · bᵇ)/V at the
// element center. Exact for rectangular elements up to the hourglass
// space; standard mean-quadrature FEM. The matrix is written row-major
// into k (k[8a+b] = K[a][b]) so it doubles as the value batch of the
// element's single Scatter.
func (p *Problem) elemStiffness(e int, x, y, z *[8]float64, k *[64]float64) {
	var b [3][8]float64
	vol := hexelem.ShapeFunctionDerivatives(x, y, z, &b)
	inv := 1.0 / vol
	for a := 0; a < 8; a++ {
		for c := a; c < 8; c++ {
			v := (b[0][a]*b[0][c] + b[1][a]*b[1][c] + b[2][a]*b[2][c]) * inv
			k[8*a+c] = v
			k[8*c+a] = v
		}
	}
}

// Assemble numerically assembles the global stiffness matrix into
// Pattern.Val (which is zeroed first) using the given SPRAY strategy for
// the concurrent scatter. It returns the reducer for memory statistics.
func (p *Problem) Assemble(team *spray.Team, st spray.Strategy) spray.Reducer[float64] {
	clear(p.Pattern.Val)
	r := spray.New(st, p.Pattern.Val, team.Size())
	p.AssembleWith(team, r)
	return r
}

// AssembleWith is the reusable-reducer form of Assemble for repeated
// assembly (it does not zero Val; contributions accumulate, the FEM
// convention for multi-pass assembly).
func (p *Problem) AssembleWith(team *spray.Team, r spray.Reducer[float64]) {
	m := p.Mesh
	c := par.NewChunker(par.Static(), 0, m.NumElem, team.Size())
	team.Run(func(tid int) {
		acc := r.Private(tid)
		bacc := spray.Bulk(acc)
		var x, y, z [8]float64
		var k [64]float64
		c.For(tid, func(from, to int) {
			for e := from; e < to; e++ {
				m.CollectCoords(e, &x, &y, &z)
				p.elemStiffness(e, &x, &y, &z, &k)
				// The precomputed scatter map is the index batch; the
				// flat local matrix is the value batch.
				bacc.Scatter(p.scatter[64*e:64*e+64], k[:])
			}
		})
		acc.Done()
	})
	r.FinalizeWith(team)
}

// AssembleIters runs iters numeric assembly passes through one Reducer —
// the nonlinear-iteration / time-stepping shape where the mesh (and so
// every pass's element scatter pattern) is fixed while coefficients
// change. Contributions accumulate across passes, the multi-pass FEM
// convention AssembleWith documents. With a plan-compiled reducer the
// first pass records the element scatter map's conflict structure and
// the remaining passes assemble race-free.
func (p *Problem) AssembleIters(team *spray.Team, r spray.Reducer[float64], iters int) {
	for it := 0; it < iters; it++ {
		p.AssembleWith(team, r)
	}
}

// AssembleSeq is the sequential reference assembly.
func (p *Problem) AssembleSeq() {
	clear(p.Pattern.Val)
	m := p.Mesh
	var x, y, z [8]float64
	var k [64]float64
	for e := 0; e < m.NumElem; e++ {
		m.CollectCoords(e, &x, &y, &z)
		p.elemStiffness(e, &x, &y, &z, &k)
		base := 64 * e
		for j, v := range k {
			p.Pattern.Val[p.scatter[base+j]] += v
		}
	}
}

// AssembleLoad assembles the load vector for a constant source f over the
// domain (each element spreads f·V/8 to its corners) with the given
// strategy — the vector-valued sibling of the matrix assembly.
func (p *Problem) AssembleLoad(team *spray.Team, st spray.Strategy, f float64, rhs []float64) spray.Reducer[float64] {
	if len(rhs) != p.Mesh.NumNode {
		panic(fmt.Sprintf("fem: rhs length %d for %d nodes", len(rhs), p.Mesh.NumNode))
	}
	m := p.Mesh
	r := spray.New(st, rhs, team.Size())
	c := par.NewChunker(par.Static(), 0, m.NumElem, team.Size())
	team.Run(func(tid int) {
		acc := r.Private(tid)
		bacc := spray.Bulk(acc)
		var x, y, z [8]float64
		var b [3][8]float64
		var vals [8]float64
		c.For(tid, func(from, to int) {
			for e := from; e < to; e++ {
				m.CollectCoords(e, &x, &y, &z)
				vol := hexelem.ShapeFunctionDerivatives(&x, &y, &z, &b)
				contrib := f * vol / 8
				for j := range vals {
					vals[j] = contrib
				}
				// The connectivity list is the index batch: one Scatter
				// spreads the element's load to its 8 corners.
				bacc.Scatter(m.ElemNodes(e), vals[:])
			}
		})
		acc.Done()
	})
	r.FinalizeWith(team)
	return r
}

// RowSums returns K·1 — zero (up to roundoff) for every interior row of a
// pure stiffness matrix, since constants are in the operator's null
// space. Used by tests and as a cheap assembly sanity check.
func (p *Problem) RowSums() []float64 {
	ones := make([]float64, p.Mesh.NumNode)
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, p.Mesh.NumNode)
	p.Pattern.MulVec(ones, out)
	return out
}

package par

import (
	"sync/atomic"
	"time"
)

// Timing accumulates region lifecycle times for one team: wall time per
// Team.Run, per-member busy time inside the region body, and time spent
// waiting at team barriers. It is the timing half of the telemetry layer
// (counter shards live with the reducers in internal/core); attach it
// with Team.SetTiming and read it with Snapshot.
//
// All slots are atomic so a snapshot may be taken while a region runs
// (live metrics export); the per-member busy slots are written once per
// region by their owning member, so the accumulation itself is
// contention-free.
type Timing struct {
	regions atomic.Int64
	wallNS  atomic.Int64
	barrNS  atomic.Int64
	busyNS  []atomic.Int64
}

// NewTiming creates a timing accumulator for a team of the given size.
func NewTiming(threads int) *Timing {
	if threads < 1 {
		panic("par: timing needs a positive thread count")
	}
	return &Timing{busyNS: make([]atomic.Int64, threads)}
}

// Threads returns the team size the accumulator was built for.
func (tm *Timing) Threads() int { return len(tm.busyNS) }

// Snapshot returns the accumulated stats since creation or the last
// Reset.
func (tm *Timing) Snapshot() RegionStats {
	if tm == nil {
		return RegionStats{}
	}
	s := RegionStats{
		Regions:     int(tm.regions.Load()),
		Wall:        time.Duration(tm.wallNS.Load()),
		BarrierWait: time.Duration(tm.barrNS.Load()),
		Busy:        make([]time.Duration, len(tm.busyNS)),
	}
	for i := range tm.busyNS {
		s.Busy[i] = time.Duration(tm.busyNS[i].Load())
	}
	return s
}

// Reset zeroes the accumulator.
func (tm *Timing) Reset() {
	if tm == nil {
		return
	}
	tm.regions.Store(0)
	tm.wallNS.Store(0)
	tm.barrNS.Store(0)
	for i := range tm.busyNS {
		tm.busyNS[i].Store(0)
	}
}

// RegionStats is one timing snapshot: totals accumulated over Regions
// parallel regions.
type RegionStats struct {
	Regions     int             // regions executed
	Wall        time.Duration   // summed Team.Run wall time
	BarrierWait time.Duration   // summed time inside Team.Barrier, all members
	Busy        []time.Duration // per-member time inside region bodies
}

// MaxBusy returns the largest per-member busy time.
func (s RegionStats) MaxBusy() time.Duration {
	var m time.Duration
	for _, b := range s.Busy {
		if b > m {
			m = b
		}
	}
	return m
}

// MeanBusy returns the mean per-member busy time.
func (s RegionStats) MeanBusy() time.Duration {
	if len(s.Busy) == 0 {
		return 0
	}
	var t time.Duration
	for _, b := range s.Busy {
		t += b
	}
	return t / time.Duration(len(s.Busy))
}

// LoadImbalance returns max busy over mean busy — 1.0 is a perfectly
// balanced team, 2.0 means the slowest member worked twice the average.
// Returns 0 when nothing was recorded.
func (s RegionStats) LoadImbalance() float64 {
	mean := s.MeanBusy()
	if mean <= 0 {
		return 0
	}
	return float64(s.MaxBusy()) / float64(mean)
}

package par

import (
	"sync/atomic"
	"testing"
)

// Microbenchmark for the Chunker false-sharing fix: before the padding,
// the dynamic schedule's shared claim cursor lived on the same cache
// line as the read-only lo/hi/chunk fields, so every member's atomic
// claim invalidated the line every other member must read to test its
// chunk against the loop bound. sharedCursor preserves that old layout
// as the baseline; paddedCursor mirrors the Chunker's current layout.
// Run both to see the before/after:
//
//	go test -run '^$' -bench BenchmarkChunkerCursor ./internal/par

// sharedCursor is the pre-fix layout: cursor and bounds on one line.
type sharedCursor struct {
	lo, hi int64
	next   atomic.Int64
}

func (c *sharedCursor) reset()         { c.next.Store(c.lo) }
func (c *sharedCursor) hiBound() int64 { return c.hi }
func (c *sharedCursor) claim(ch int64) (int64, bool) {
	start := c.next.Add(ch) - ch
	return start, start < c.hi
}

// paddedCursor is the fixed layout: the cursor owns its cache line.
type paddedCursor struct {
	lo, hi int64
	_      [64]byte
	next   atomic.Int64
	_      [56]byte
}

func (c *paddedCursor) reset()         { c.next.Store(c.lo) }
func (c *paddedCursor) hiBound() int64 { return c.hi }
func (c *paddedCursor) claim(ch int64) (int64, bool) {
	start := c.next.Add(ch) - ch
	return start, start < c.hi
}

type claimCursor interface {
	reset()
	hiBound() int64
	claim(ch int64) (int64, bool)
}

// benchCursor drains a dynamic-style claim loop (chunk 8 over 1<<14
// iterations) on a team of n, counting one loop drain per op. The loop
// body replicates what Chunker.For's dynamic path does per chunk: one
// atomic claim plus bound reads from the same struct.
func benchCursor(b *testing.B, n int, c claimCursor) {
	team := NewTeam(n)
	defer team.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.reset()
		team.Run(func(tid int) {
			var sink int64
			for {
				start, ok := c.claim(8)
				if !ok {
					break
				}
				end := start + 8
				if hi := c.hiBound(); end > hi {
					end = hi
				}
				sink += end - start
			}
			_ = sink
		})
	}
}

func BenchmarkChunkerCursorShared4(b *testing.B) {
	benchCursor(b, 4, &sharedCursor{lo: 0, hi: 1 << 14})
}

func BenchmarkChunkerCursorPadded4(b *testing.B) {
	benchCursor(b, 4, &paddedCursor{lo: 0, hi: 1 << 14})
}

// BenchmarkStealSchedule exercises the steal runtime end to end on a
// balanced empty-body loop — the pure hand-out overhead comparison
// against the shared-cursor schedules at the same team size.
func benchSchedule(b *testing.B, s Schedule) {
	team := NewTeam(4)
	defer team.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sink atomic.Int64
		ParallelFor(team, 0, 1<<14, s, func(tid, from, to int) {
			sink.Add(int64(to - from))
		})
	}
}

func BenchmarkScheduleDynamic4(b *testing.B) { benchSchedule(b, Dynamic(8)) }
func BenchmarkScheduleGuided4(b *testing.B)  { benchSchedule(b, Guided(8)) }
func BenchmarkScheduleSteal4(b *testing.B)   { benchSchedule(b, Steal(8)) }
func BenchmarkScheduleStatic4(b *testing.B)  { benchSchedule(b, Static()) }

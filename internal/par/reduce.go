package par

// Scalar reductions — sums, minima, maxima over an index range — need
// none of SPRAY's machinery (there is a single reduction location), only
// per-thread partials and a combine. These helpers give the repository's
// substrates (LULESH's time constraints, diagnostics) the OpenMP
// "reduction(min:...)" idiom.

// ScalarReduce runs body over chunks of [lo, hi) on the team, threading a
// per-member accumulator seeded by init, and combines the per-member
// results left to right (member 0 first, so the combine order is
// deterministic for deterministic schedules).
func ScalarReduce[V any](t *Team, lo, hi int, s Schedule, init V,
	body func(acc V, from, to int) V, combine func(a, b V) V) V {
	n := t.Size()
	partial := make([]V, n)
	c := NewChunker(s, lo, hi, n)
	c.SetRecorder(t.Recorder())
	t.Run(func(tid int) {
		acc := init
		c.For(tid, func(from, to int) {
			acc = body(acc, from, to)
		})
		partial[tid] = acc
	})
	out := init
	for _, p := range partial {
		out = combine(out, p)
	}
	return out
}

// SumFloat64 computes Σ f(i) for i in [lo, hi) in parallel.
func SumFloat64(t *Team, lo, hi int, f func(i int) float64) float64 {
	return ScalarReduce(t, lo, hi, Static(), 0.0,
		func(acc float64, from, to int) float64 {
			for i := from; i < to; i++ {
				acc += f(i)
			}
			return acc
		},
		func(a, b float64) float64 { return a + b })
}

// MinFloat64 computes min f(i) for i in [lo, hi) in parallel; the empty
// range returns +Inf semantics via the given init.
func MinFloat64(t *Team, lo, hi int, init float64, f func(i int) float64) float64 {
	return ScalarReduce(t, lo, hi, Static(), init,
		func(acc float64, from, to int) float64 {
			for i := from; i < to; i++ {
				if v := f(i); v < acc {
					acc = v
				}
			}
			return acc
		},
		func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		})
}

// MaxFloat64 computes max f(i) for i in [lo, hi) in parallel.
func MaxFloat64(t *Team, lo, hi int, init float64, f func(i int) float64) float64 {
	return ScalarReduce(t, lo, hi, Static(), init,
		func(acc float64, from, to int) float64 {
			for i := from; i < to; i++ {
				if v := f(i); v > acc {
					acc = v
				}
			}
			return acc
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
}

package par

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"spray/internal/telemetry"
)

// This file implements the steal schedule's runtime on top of the chunk
// deques in deque.go.
//
// Partitioning starts exactly where the static schedule starts: each
// member's deque is seeded with its contiguous StaticRange slice, cut
// into seed chunks and pushed far-end-first so LIFO pops walk the slice
// in ascending order. A member that has work therefore touches the same
// indices, in the same order, as it would under schedule(static) — which
// is what keeps keeper/tiered ownership locality intact when the load is
// balanced and stealing never triggers. Only when a member runs dry does
// it become a thief: it probes victims nearest-first by team-ring
// distance (left/right order per distance decided by a per-member
// xorshift, so colliding thieves spread out) and takes the victim's
// oldest chunk — the far end of the victim's slice, the point farthest
// from where the victim is currently working.
//
// The grain controller adapts chunk sizes in both directions. A stolen
// chunk bigger than 2x the grain is split: far halves go back on the
// thief's own deque (stealable by others, popped next by the thief),
// halving until the in-hand piece is at most 2x grain. On the owner's
// pop path, when the deque's steal counter has not moved since the last
// pop (nobody is eating the far end), up to stealCoalesceMax adjacent
// seed chunks are merged into one body call, restoring static-schedule
// chunk sizes on uncontended regions.
//
// Termination: a member exits once its own deque is empty and a full
// scan finds every deque seeded and empty. This is safe because a chunk
// is owned by exactly one member from the moment it leaves a deque (pop
// and steal both transfer ownership through a winning top/bottom CAS)
// and every member drains its own deque — including far halves it
// pushed while splitting — before it starts scanning. Work can never
// "appear" after a clean scan except in the hands of a member that is
// still running and will execute it.
//
// Every counter below goes through the nil-safe telemetry shard, so an
// uninstrumented loop pays one predictable branch per event.

const (
	// stealSeedChunks is the target number of seed chunks per member:
	// enough granularity for thieves to take meaningful work without a
	// claim per chunk, few enough that seeding stays O(32) pushes.
	stealSeedChunks = 32
	// stealSplitFactor: stolen chunks larger than this multiple of the
	// grain are split before executing.
	stealSplitFactor = 2
	// stealCoalesceMax bounds how many adjacent chunks the owner merges
	// into one body call when the steal rate is zero.
	stealCoalesceMax = 4
	// stealMaxRange is the largest iteration range the packed int32
	// chunk representation supports.
	stealMaxRange = 1 << 31
)

// stealer coordinates one loop instance under the steal schedule. It is
// created by NewChunker and driven by Chunker.For; all members of the
// team must call For exactly once (the same contract as the dynamic and
// guided schedules).
type stealer struct {
	lo, hi    int
	grain     int // minimum chunk size; splits never go below this
	seedChunk int // chunk size the deques are seeded with
	deques    []deque
	seeded    []atomic.Bool
}

func newStealer(lo, hi, teamSize, grain int) *stealer {
	n := hi - lo
	if n >= stealMaxRange {
		panic(fmt.Sprintf("par: steal schedule supports ranges up to %d iterations, got %d", stealMaxRange-1, n))
	}
	if grain <= 0 {
		// Auto grain: a member's slice splits into at most ~128 grains,
		// so the controller has room to split stolen chunks a few times
		// below the seed size before hitting the floor.
		grain = n / (teamSize * 4 * stealSeedChunks)
		if grain < 1 {
			grain = 1
		}
	}
	slice := (n + teamSize - 1) / teamSize
	seedChunk := (slice + stealSeedChunks - 1) / stealSeedChunks
	if seedChunk < grain {
		seedChunk = grain
	}
	if seedChunk < 1 {
		seedChunk = 1
	}
	return &stealer{
		lo: lo, hi: hi,
		grain:     grain,
		seedChunk: seedChunk,
		deques:    make([]deque, teamSize),
		seeded:    make([]atomic.Bool, teamSize),
	}
}

// seed fills member tid's deque with its static slice, far end first.
// ceil(slice/seedChunk) <= stealSeedChunks by construction, so the
// pushes always fit in the empty ring.
func (s *stealer) seed(tid int) {
	from, to := StaticRange(s.lo, s.hi, tid, len(s.deques))
	if to <= from {
		// Surplus member (more members than iterations): nothing to seed.
		s.seeded[tid].Store(true)
		return
	}
	d := &s.deques[tid]
	for k := (to - from - 1) / s.seedChunk; k >= 0; k-- {
		cf := from + k*s.seedChunk
		ct := cf + s.seedChunk
		if ct > to {
			ct = to
		}
		d.push(chunk{from: int32(cf - s.lo), to: int32(ct - s.lo)})
	}
	s.seeded[tid].Store(true)
}

// run is member tid's whole loop: drain own deque, then steal, until the
// region is globally drained.
func (s *stealer) run(tid int, shard *telemetry.Shard, body func(from, to int)) {
	d := &s.deques[tid]
	s.seed(tid)
	// Per-member xorshift for the left/right tie-break; seeded off the
	// tid so members de-correlate without shared state.
	rng := uint64(tid)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for {
		if c, ok := d.pop(); ok {
			c = s.coalesce(d, c, shard)
			body(s.lo+int(c.from), s.lo+int(c.to))
			shard.Inc(telemetry.ChunksExecuted)
			continue
		}
		c, ok := s.trySteal(tid, &rng, shard)
		if !ok {
			if s.drained() {
				return
			}
			runtime.Gosched()
			continue
		}
		// Split oversized loot: far halves go back on our (empty) deque —
		// visible to other thieves — and we keep the near half.
		for c.size() > stealSplitFactor*s.grain {
			mid := c.from + int32(c.size()/2)
			if !d.push(chunk{from: mid, to: c.to}) {
				break
			}
			c.to = mid
			shard.Inc(telemetry.GrainSplits)
		}
		body(s.lo+int(c.from), s.lo+int(c.to))
		shard.Inc(telemetry.ChunksExecuted)
	}
}

// coalesce merges adjacent chunks into one body call while nobody is
// stealing from this deque. The merge stops at the first gap (a stolen
// or split boundary) and never exceeds stealCoalesceMax chunks.
func (s *stealer) coalesce(d *deque, c chunk, shard *telemetry.Shard) chunk {
	if st := d.stolen.Load(); st != d.mark {
		// Thieves are active: leave the remaining chunks small so the far
		// end stays worth taking.
		d.mark = st
		return c
	}
	for k := 1; k < stealCoalesceMax; k++ {
		nc, ok := d.pop()
		if !ok {
			break
		}
		if nc.from != c.to {
			// Not contiguous; put it back. The push cannot fail: only the
			// owner pushes, and the pop above freed a slot.
			d.push(nc)
			break
		}
		c.to = nc.to
		shard.Inc(telemetry.GrainCoalesces)
	}
	return c
}

// trySteal probes victims nearest-first by ring distance, flipping the
// left/right order per distance with the member's xorshift state.
func (s *stealer) trySteal(tid int, rng *uint64, shard *telemetry.Shard) (chunk, bool) {
	n := len(s.deques)
	for dist := 1; dist <= n/2; dist++ {
		a := tid + dist
		if a >= n {
			a -= n
		}
		b := tid - dist
		if b < 0 {
			b += n
		}
		*rng ^= *rng << 13
		*rng ^= *rng >> 7
		*rng ^= *rng << 17
		if *rng&1 == 1 {
			a, b = b, a
		}
		if c, ok := s.stealFrom(a, shard); ok {
			return c, true
		}
		if b != a {
			if c, ok := s.stealFrom(b, shard); ok {
				return c, true
			}
		}
	}
	return chunk{}, false
}

func (s *stealer) stealFrom(victim int, shard *telemetry.Shard) (chunk, bool) {
	if !s.seeded[victim].Load() {
		return chunk{}, false
	}
	d := &s.deques[victim]
	if c, ok := d.steal(); ok {
		d.stolen.Add(1)
		shard.Inc(telemetry.Steals)
		shard.Add(telemetry.StealIters, c.size())
		return c, true
	}
	shard.Inc(telemetry.StealFails)
	return chunk{}, false
}

// drained reports whether every deque has been seeded and is empty. See
// the package comment above for why this is a safe exit condition.
func (s *stealer) drained() bool {
	for i := range s.deques {
		if !s.seeded[i].Load() {
			return false
		}
		if s.deques[i].size() > 0 {
			return false
		}
	}
	return true
}

package par

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the OpenMP loop schedules the runtime implements.
type Kind int

const (
	// KindStatic divides the iteration space into one contiguous chunk
	// per member — the OpenMP default ("schedule(static)") and the
	// schedule used throughout the paper's experiments.
	KindStatic Kind = iota
	// KindStaticChunk deals chunks of a fixed size round-robin to
	// members ("schedule(static, c)").
	KindStaticChunk
	// KindDynamic hands out chunks first-come-first-served from a
	// shared counter ("schedule(dynamic, c)").
	KindDynamic
	// KindGuided hands out shrinking chunks proportional to the
	// remaining work ("schedule(guided, c)").
	KindGuided
	// KindSteal runs the work-stealing runtime (stealer.go): members are
	// seeded with their static slices on per-member lock-free chunk
	// deques, pop locally LIFO, and steal FIFO from the nearest victim
	// when dry, with adaptive grain splitting/coalescing. The OpenMP
	// analogue is "schedule(runtime)" bound to a tasking-style
	// work-stealing loop scheduler.
	KindSteal
)

func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindStaticChunk:
		return "static-chunk"
	case KindDynamic:
		return "dynamic"
	case KindGuided:
		return "guided"
	case KindSteal:
		return "steal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Schedule selects how ParallelFor partitions iterations among members.
type Schedule struct {
	Kind  Kind
	Chunk int
}

// Static returns the default OpenMP schedule: one contiguous chunk per
// member.
func Static() Schedule { return Schedule{Kind: KindStatic} }

// StaticChunk returns a round-robin static schedule with the given chunk
// size (must be positive).
func StaticChunk(c int) Schedule { return Schedule{Kind: KindStaticChunk, Chunk: c} }

// Dynamic returns a dynamic schedule; chunk <= 0 means the OpenMP default
// chunk of 1.
func Dynamic(c int) Schedule {
	if c <= 0 {
		c = 1
	}
	return Schedule{Kind: KindDynamic, Chunk: c}
}

// Guided returns a guided schedule; chunk <= 0 means a minimum chunk of 1.
func Guided(c int) Schedule {
	if c <= 0 {
		c = 1
	}
	return Schedule{Kind: KindGuided, Chunk: c}
}

// Steal returns the work-stealing schedule; grain is the minimum chunk
// size the adaptive grain controller splits down to. grain <= 0 selects
// an automatic grain sized off the loop range and team size.
func Steal(grain int) Schedule {
	if grain < 0 {
		grain = 0
	}
	return Schedule{Kind: KindSteal, Chunk: grain}
}

func (s Schedule) String() string {
	if s.Chunk > 0 {
		return fmt.Sprintf("%s(%d)", s.Kind, s.Chunk)
	}
	return s.Kind.String()
}

// validate panics on malformed schedules so misuse fails loudly at the
// call site rather than silently skipping iterations.
func (s Schedule) validate() {
	if s.Kind == KindStaticChunk && s.Chunk < 1 {
		panic("par: static-chunk schedule requires a positive chunk size")
	}
	if (s.Kind == KindDynamic || s.Kind == KindGuided) && s.Chunk < 1 {
		panic("par: dynamic/guided schedule requires a positive chunk size")
	}
	if s.Kind == KindSteal && s.Chunk < 0 {
		panic("par: steal schedule grain must be >= 0 (0 = automatic)")
	}
}

// ParseSchedule parses the string forms of a schedule: a kind name
// ("static", "static-chunk", "dynamic", "guided", "steal") optionally
// followed by a chunk/grain as ":<n>" or "(<n>)" — the latter matching
// Schedule.String output. "static:<n>" with n > 0 selects the
// round-robin static-chunk schedule, mirroring OpenMP's
// "schedule(static, n)".
func ParseSchedule(text string) (Schedule, error) {
	name, chunkStr := text, ""
	if i := strings.IndexByte(text, ':'); i >= 0 {
		name, chunkStr = text[:i], text[i+1:]
	} else if i := strings.IndexByte(text, '('); i >= 0 && strings.HasSuffix(text, ")") {
		name, chunkStr = text[:i], text[i+1:len(text)-1]
	}
	chunk := 0
	if chunkStr != "" {
		c, err := strconv.Atoi(strings.TrimSpace(chunkStr))
		if err != nil || c < 1 {
			return Schedule{}, fmt.Errorf("par: bad chunk %q in schedule %q (want a positive integer)", chunkStr, text)
		}
		chunk = c
	}
	switch strings.TrimSpace(name) {
	case "static":
		if chunk > 0 {
			return StaticChunk(chunk), nil
		}
		return Static(), nil
	case "static-chunk":
		if chunk < 1 {
			return Schedule{}, fmt.Errorf("par: schedule %q requires a chunk size (e.g. \"static-chunk:64\")", text)
		}
		return StaticChunk(chunk), nil
	case "dynamic":
		return Dynamic(chunk), nil
	case "guided":
		return Guided(chunk), nil
	case "steal":
		return Steal(chunk), nil
	}
	return Schedule{}, fmt.Errorf("par: unknown schedule %q (want static, static-chunk, dynamic, guided or steal, optionally with \":<chunk>\")", text)
}

// ParallelFor executes the half-open iteration range [lo, hi) on the team
// using the given schedule. body is invoked with the member id and a
// sub-range [from, to) and must process exactly those iterations; the
// chunked form keeps inner loops free of per-iteration dispatch. It is the
// analogue of "#pragma omp parallel for schedule(...)".
func ParallelFor(t *Team, lo, hi int, s Schedule, body func(tid, from, to int)) {
	if hi <= lo {
		return
	}
	c := NewChunker(s, lo, hi, t.size)
	c.SetTracer(t.Tracer())
	c.SetRecorder(t.Recorder())
	t.Run(func(tid int) {
		c.For(tid, func(from, to int) { body(tid, from, to) })
	})
}

// ParallelForEach is the per-index convenience form of ParallelFor.
func ParallelForEach(t *Team, lo, hi int, s Schedule, body func(tid, i int)) {
	ParallelFor(t, lo, hi, s, func(tid, from, to int) {
		for i := from; i < to; i++ {
			body(tid, i)
		}
	})
}

// StaticRange returns the contiguous sub-range [from, to) of [lo, hi)
// assigned to member tid of n under the default static schedule. Remainder
// iterations are distributed one-per-member to the lowest tids, matching
// common OpenMP runtimes.
func StaticRange(lo, hi, tid, n int) (from, to int) {
	total := hi - lo
	if total <= 0 {
		return lo, lo
	}
	q, r := total/n, total%n
	from = lo + tid*q + min(tid, r)
	to = from + q
	if tid < r {
		to++
	}
	return from, to
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package par

import (
	"sync/atomic"

	"spray/internal/telemetry"
)

// Chunker hands out the chunks of one loop instance according to a
// schedule. It exists so callers that need per-thread prologue/epilogue
// work around the chunk loop (reduction init/combine) can drive the chunk
// iteration themselves from inside Team.Run. ParallelFor is implemented on
// top of it. A Chunker is valid for a single loop execution.
type Chunker struct {
	s         Schedule
	lo, hi    int
	n         int
	tracer    *telemetry.Tracer   // nil = chunk spans off
	rec       *telemetry.Recorder // nil = runtime counters off
	chunkDone func(tid int)       // nil = no chunk-boundary hook
	st        *stealer            // steal-schedule runtime; nil otherwise

	// The shared claim cursor sits on its own cache line: dynamic and
	// guided hammer it with atomic read-modify-writes from every member,
	// and without the padding those writes would keep invalidating the
	// line carrying the read-only bounds/schedule fields that every chunk
	// hand-out loads (see BenchmarkChunkerCursor* for the before/after).
	_    [64]byte
	next atomic.Int64 // shared cursor for dynamic/guided
	_    [56]byte
}

// NewChunker prepares chunk hand-out for the range [lo, hi) on a team of
// teamSize members under schedule s.
func NewChunker(s Schedule, lo, hi, teamSize int) *Chunker {
	s.validate()
	c := &Chunker{s: s, lo: lo, hi: hi, n: teamSize}
	c.next.Store(int64(lo))
	if s.Kind == KindSteal && hi > lo {
		c.st = newStealer(lo, hi, teamSize, s.Chunk)
	}
	return c
}

// SetTracer attaches a span tracer: every chunk handed out by For is
// bracketed as a chunk span (args: from, to) on the receiving member's
// timeline. Attach before the loop starts.
func (c *Chunker) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

// SetRecorder attaches a telemetry recorder for the runtime's own
// counters — the steal schedule's steals, failed probes, stolen
// iterations, grain splits/coalesces and per-member chunk counts. A nil
// recorder (the default) keeps the hand-out paths on the nil-shard fast
// path. Attach before the loop starts.
func (c *Chunker) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

// SetChunkDone attaches a chunk-boundary hook: after each chunk body
// returns, fn(tid) runs on the member's own goroutine, before the next
// chunk is requested. Reducers use it for cooperative mid-region work —
// the keeper drains its inbound mailbox here — so the hook should be
// cheap when there is nothing to do. Attach before the loop starts.
func (c *Chunker) SetChunkDone(fn func(tid int)) { c.chunkDone = fn }

// For invokes body for every chunk assigned to member tid, in hand-out
// order. All members of the team must call For exactly once for dynamic
// and guided schedules to distribute the full range.
func (c *Chunker) For(tid int, body func(from, to int)) {
	if c.hi <= c.lo {
		return
	}
	if tr := c.tracer; tr != nil {
		inner := body
		body = func(from, to int) {
			tr.Begin(tid, telemetry.SpanChunk, int64(from), int64(to))
			inner(from, to)
			tr.End(tid, telemetry.SpanChunk)
		}
	}
	if done := c.chunkDone; done != nil {
		inner := body
		body = func(from, to int) {
			inner(from, to)
			done(tid)
		}
	}
	switch c.s.Kind {
	case KindSteal:
		c.st.run(tid, c.rec.Shard(tid), body)
	case KindStatic:
		from, to := StaticRange(c.lo, c.hi, tid, c.n)
		if from < to {
			body(from, to)
		}
	case KindStaticChunk:
		ch := c.s.Chunk
		for start := c.lo + tid*ch; start < c.hi; start += c.n * ch {
			end := start + ch
			if end > c.hi {
				end = c.hi
			}
			body(start, end)
		}
	case KindDynamic:
		ch := int64(c.s.Chunk)
		for {
			start := c.next.Add(ch) - ch
			if start >= int64(c.hi) {
				return
			}
			end := start + ch
			if end > int64(c.hi) {
				end = int64(c.hi)
			}
			body(int(start), int(end))
		}
	case KindGuided:
		minChunk := int64(c.s.Chunk)
		size := int64(c.n)
		for {
			start := c.next.Load()
			if start >= int64(c.hi) {
				return
			}
			remaining := int64(c.hi) - start
			ch := remaining / size
			if ch < minChunk {
				ch = minChunk
			}
			if !c.next.CompareAndSwap(start, start+ch) {
				continue
			}
			end := start + ch
			if end > int64(c.hi) {
				end = int64(c.hi)
			}
			body(int(start), int(end))
		}
	}
}

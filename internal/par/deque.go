package par

import "sync/atomic"

// This file implements the per-member chunk deque of the steal schedule:
// a fixed-capacity, lock-free work-stealing deque in the Chase-Lev style.
// The owning member pushes and pops at the bottom (LIFO, plain atomic
// loads on the common path — no CAS unless it races a thief for the last
// element) and thieves take from the top (FIFO, one CAS per steal). The
// element type is a packed iteration chunk, so the whole structure is a
// flat ring of uint64s with no indirection and no allocation after
// construction.
//
// Why the classic algorithm is safe here without explicit fences: Go's
// sync/atomic operations are sequentially consistent, which is the
// memory model the original Chase-Lev proof assumes. The fixed capacity
// replaces the paper's growable buffer: pushBottom reports failure when
// the ring is full and the caller executes the chunk directly instead of
// deferring it. Slot reuse cannot hand a thief a stale chunk — a push
// only overwrites a slot at least dequeCap positions past top, and a
// thief that read the slot under an older top value always fails its
// top CAS (top is monotonically increasing).

// dequeCap is the fixed ring capacity in chunks. Seeding pushes at most
// stealSeedChunks entries and the split path at most log2(range) more
// onto an otherwise-empty deque, so the ring never fills in practice;
// the bound exists to keep the structure allocation-free after setup.
const dequeCap = 256

// chunk is a half-open iteration sub-range stored as offsets relative to
// the loop's lo bound (the stealer guards the range against int32
// overflow at construction).
type chunk struct{ from, to int32 }

func (c chunk) size() int { return int(c.to - c.from) }

func packChunk(c chunk) uint64 {
	return uint64(uint32(c.from))<<32 | uint64(uint32(c.to))
}

func unpackChunk(v uint64) chunk {
	return chunk{from: int32(uint32(v >> 32)), to: int32(uint32(v))}
}

// deque is one member's chunk ring. bottom and top each sit on their own
// cache line: the owner hammers bottom, thieves hammer top, and sharing
// a line between them would put every local pop on the coherence bus.
type deque struct {
	_      [64]byte
	bottom atomic.Int64 // next free slot; owner push/pop end
	_      [56]byte
	top    atomic.Int64 // oldest live slot; thief end
	_      [56]byte
	// stolen counts successful steals from this deque. The owner samples
	// it on the pop path to decide whether coalescing chunks is safe
	// (nobody is eating from the far end) — see stealer.coalesce.
	stolen atomic.Int64
	// mark is the owner's last observed stolen value; owner-only, so a
	// plain field is fine (it shares the line with stolen, which thieves
	// write rarely — once per successful steal).
	mark int64
	_    [40]byte
	buf  [dequeCap]atomic.Uint64
}

// push appends a chunk at the bottom. Returns false when the ring is
// full; the caller must then consume the chunk itself. Owner-only.
func (d *deque) push(c chunk) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= dequeCap {
		return false
	}
	d.buf[b&(dequeCap-1)].Store(packChunk(c))
	d.bottom.Store(b + 1)
	return true
}

// pop removes the most recently pushed chunk (LIFO). The only CAS is the
// last-element race against a concurrent thief. Owner-only.
func (d *deque) pop() (chunk, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return chunk{}, false
	}
	c := unpackChunk(d.buf[b&(dequeCap-1)].Load())
	if t == b {
		// Last element: whoever wins the top CAS owns it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return chunk{}, false
		}
		return c, true
	}
	return c, true
}

// steal removes the oldest chunk (FIFO) on behalf of another member.
// Returns false when the deque looks empty or the top CAS loses to a
// competing thief (or the owner's last-element pop). Thread-safe.
func (d *deque) steal() (chunk, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return chunk{}, false
	}
	c := unpackChunk(d.buf[t&(dequeCap-1)].Load())
	if !d.top.CompareAndSwap(t, t+1) {
		return chunk{}, false
	}
	return c, true
}

// size returns a racy estimate of the live chunk count (exact when the
// deque is quiescent — the termination scan's case).
func (d *deque) size() int64 {
	s := d.bottom.Load() - d.top.Load()
	if s < 0 {
		return 0
	}
	return s
}

package par

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumFloat64(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	got := SumFloat64(team, 1, 101, func(i int) float64 { return float64(i) })
	if got != 5050 {
		t.Errorf("sum=%v", got)
	}
	if got := SumFloat64(team, 5, 5, func(int) float64 { return 1 }); got != 0 {
		t.Errorf("empty sum=%v", got)
	}
}

func TestMinMaxFloat64(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	vals := []float64{5, -2, 9, 3.5, -2.5, 8}
	mn := MinFloat64(team, 0, len(vals), math.Inf(1), func(i int) float64 { return vals[i] })
	mx := MaxFloat64(team, 0, len(vals), math.Inf(-1), func(i int) float64 { return vals[i] })
	if mn != -2.5 || mx != 9 {
		t.Errorf("min/max = %v/%v", mn, mx)
	}
	// Empty ranges keep the init.
	if got := MinFloat64(team, 3, 3, 42, func(int) float64 { return 0 }); got != 42 {
		t.Errorf("empty min=%v", got)
	}
}

func TestScalarReduceDeterministicCombineOrder(t *testing.T) {
	// Combining strings exposes the order: member 0's chunk first.
	team := NewTeam(4)
	defer team.Close()
	got := ScalarReduce(team, 0, 8, Static(), "",
		func(acc string, from, to int) string {
			for i := from; i < to; i++ {
				acc += string(rune('a' + i))
			}
			return acc
		},
		func(a, b string) string { return a + b })
	if got != "abcdefgh" {
		t.Errorf("combined %q", got)
	}
}

func TestScalarReduceProperty(t *testing.T) {
	team := NewTeam(5)
	defer team.Close()
	f := func(vals []int16) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := ScalarReduce(team, 0, len(vals), Dynamic(3), int64(0),
			func(acc int64, from, to int) int64 {
				for i := from; i < to; i++ {
					acc += int64(vals[i])
				}
				return acc
			},
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

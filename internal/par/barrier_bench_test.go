package par

import (
	"sync"
	"testing"
)

// condBarrier is the previous all-under-mutex Barrier implementation,
// kept verbatim as the baseline for the spin-then-park comparison:
//
//	go test ./internal/par -run '^$' -bench 'Barrier|RegionJoin'
type condBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newCondBarrier(n int) *condBarrier {
	b := &condBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *condBarrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// hammerBarrier measures rounds per second with n goroutines crossing the
// barrier back to back — the pure synchronization cost with no loop work
// in between, the worst case for a parking design.
func hammerBarrier(b *testing.B, n int, wait func()) {
	var wg sync.WaitGroup
	wg.Add(n)
	for g := 0; g < n; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				wait()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkBarrierSpinPark4(b *testing.B) {
	bar := NewBarrier(4)
	hammerBarrier(b, 4, bar.Wait)
}

func BenchmarkBarrierCondBased4(b *testing.B) {
	bar := newCondBarrier(4)
	hammerBarrier(b, 4, bar.Wait)
}

func BenchmarkBarrierSpinPark8(b *testing.B) {
	bar := NewBarrier(8)
	hammerBarrier(b, 8, bar.Wait)
}

func BenchmarkBarrierCondBased8(b *testing.B) {
	bar := newCondBarrier(8)
	hammerBarrier(b, 8, bar.Wait)
}

// BenchmarkRegionJoin measures the full cost of an empty parallel region
// — dispatch plus join — which is the latency every RunReduction pays on
// top of its loop body and fix-up.
func BenchmarkRegionJoin(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName(n), func(b *testing.B) {
			team := NewTeam(n)
			defer team.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				team.Run(func(int) {})
			}
		})
	}
}

// BenchmarkRegionBarrier measures a region whose body crosses the team
// barrier twice, the shape of phased kernels like the LULESH time step.
func BenchmarkRegionBarrier(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName(n), func(b *testing.B) {
			team := NewTeam(n)
			defer team.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				team.Run(func(int) {
					team.Barrier()
					team.Barrier()
				})
			}
		})
	}
}

func benchName(n int) string {
	return "threads-" + string(rune('0'+n))
}

package par

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestTeamRunExecutesEveryMemberOnce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		team := NewTeam(n)
		counts := make([]atomic.Int32, n)
		for rep := 0; rep < 3; rep++ { // reuse across regions
			team.Run(func(tid int) { counts[tid].Add(1) })
		}
		for tid := range counts {
			if got := counts[tid].Load(); got != 3 {
				t.Errorf("n=%d tid=%d ran %d times, want 3", n, tid, got)
			}
		}
		team.Close()
	}
}

func TestTeamSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0)
}

func TestRunAfterClosePanics(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	team.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Run after Close did not panic")
		}
	}()
	team.Run(func(int) {})
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 4
	team := NewTeam(n)
	defer team.Close()
	var before, after atomic.Int32
	team.Run(func(tid int) {
		before.Add(1)
		team.Barrier()
		// Every member must observe all n pre-barrier increments.
		if got := before.Load(); got != n {
			t.Errorf("tid %d saw %d pre-barrier arrivals, want %d", tid, got, n)
		}
		after.Add(1)
	})
	if after.Load() != n {
		t.Errorf("after=%d", after.Load())
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	const n, phases = 3, 5
	team := NewTeam(n)
	defer team.Close()
	var phase atomic.Int32
	team.Run(func(tid int) {
		for p := 0; p < phases; p++ {
			if tid == 0 {
				phase.Store(int32(p))
			}
			team.Barrier()
			if got := phase.Load(); got != int32(p) {
				t.Errorf("tid %d phase %d read %d", tid, p, got)
			}
			team.Barrier()
		}
	})
}

// coverage runs ParallelFor and checks every index in [lo,hi) is visited
// exactly once.
func coverage(t *testing.T, team *Team, lo, hi int, s Schedule) {
	t.Helper()
	n := hi - lo
	visits := make([]atomic.Int32, n)
	ParallelFor(team, lo, hi, s, func(tid, from, to int) {
		if from < lo || to > hi || from > to {
			t.Errorf("%v: chunk [%d,%d) outside [%d,%d)", s, from, to, lo, hi)
		}
		for i := from; i < to; i++ {
			visits[i-lo].Add(1)
		}
	})
	for i := range visits {
		if got := visits[i].Load(); got != 1 {
			t.Fatalf("%v: index %d visited %d times", s, lo+i, got)
		}
	}
}

func TestParallelForCoverageAllSchedules(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	scheds := []Schedule{
		Static(), StaticChunk(1), StaticChunk(3), StaticChunk(100),
		Dynamic(0), Dynamic(1), Dynamic(7), Guided(0), Guided(4),
	}
	ranges := [][2]int{{0, 0}, {0, 1}, {0, 4}, {0, 5}, {3, 103}, {-10, 10}, {0, 1000}}
	for _, s := range scheds {
		for _, r := range ranges {
			coverage(t, team, r[0], r[1], s)
		}
	}
}

func TestParallelForCoverageProperty(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	f := func(loRaw, spanRaw uint16, kindRaw, chunkRaw uint8) bool {
		lo := int(loRaw) % 500
		hi := lo + int(spanRaw)%700
		var s Schedule
		switch kindRaw % 4 {
		case 0:
			s = Static()
		case 1:
			s = StaticChunk(int(chunkRaw)%64 + 1)
		case 2:
			s = Dynamic(int(chunkRaw) % 64)
		default:
			s = Guided(int(chunkRaw) % 64)
		}
		n := hi - lo
		visits := make([]atomic.Int32, n)
		ParallelFor(team, lo, hi, s, func(tid, from, to int) {
			for i := from; i < to; i++ {
				visits[i-lo].Add(1)
			}
		})
		for i := range visits {
			if visits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForEach(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var sum atomic.Int64
	ParallelForEach(team, 1, 101, Dynamic(5), func(tid, i int) {
		sum.Add(int64(i))
	})
	if sum.Load() != 5050 {
		t.Errorf("sum=%d, want 5050", sum.Load())
	}
}

func TestStaticRangePartition(t *testing.T) {
	f := func(loRaw int16, spanRaw uint16, nRaw uint8) bool {
		lo := int(loRaw)
		hi := lo + int(spanRaw)
		n := int(nRaw)%16 + 1
		prev := lo
		for tid := 0; tid < n; tid++ {
			from, to := StaticRange(lo, hi, tid, n)
			if from != prev || to < from {
				return false
			}
			prev = to
		}
		return prev == hi || hi <= lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticRangeBalance(t *testing.T) {
	// Chunk sizes must differ by at most one.
	for _, tc := range []struct{ lo, hi, n int }{{0, 100, 7}, {5, 6, 4}, {0, 3, 8}} {
		minSz, maxSz := 1<<30, -1
		for tid := 0; tid < tc.n; tid++ {
			from, to := StaticRange(tc.lo, tc.hi, tid, tc.n)
			sz := to - from
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("%+v: chunk sizes range %d..%d", tc, minSz, maxSz)
		}
	}
}

func TestStaticRangeEmpty(t *testing.T) {
	from, to := StaticRange(5, 5, 0, 4)
	if from != to {
		t.Errorf("empty range: [%d,%d)", from, to)
	}
	from, to = StaticRange(5, 3, 2, 4)
	if from != to {
		t.Errorf("inverted range: [%d,%d)", from, to)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	// With a single member, guided chunks must be non-increasing down to
	// the minimum chunk.
	c := NewChunker(Guided(2), 0, 1000, 1)
	last := 1 << 30
	c.For(0, func(from, to int) {
		sz := to - from
		if sz > last {
			t.Errorf("guided chunk grew: %d after %d", sz, last)
		}
		if sz < 2 && to != 1000 {
			t.Errorf("guided chunk %d below minimum", sz)
		}
		last = sz
	})
}

func TestDynamicMoreThreadsThanWork(t *testing.T) {
	team := NewTeam(8)
	defer team.Close()
	coverage(t, team, 0, 3, Dynamic(1))
}

func TestScheduleValidate(t *testing.T) {
	for _, s := range []Schedule{
		{Kind: KindStaticChunk, Chunk: 0},
		{Kind: KindDynamic, Chunk: 0},
		{Kind: KindGuided, Chunk: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("schedule %+v did not panic", s)
				}
			}()
			NewChunker(s, 0, 10, 2)
		}()
	}
}

func TestScheduleString(t *testing.T) {
	cases := map[string]Schedule{
		"static":          Static(),
		"static-chunk(8)": StaticChunk(8),
		"dynamic(1)":      Dynamic(0),
		"guided(4)":       Guided(4),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String()=%q, want %q", got, want)
		}
	}
}

func TestDefaultTeam(t *testing.T) {
	team := Default()
	defer team.Close()
	if team.Size() < 1 {
		t.Errorf("default team size %d", team.Size())
	}
}

func TestTeamRunConcurrencyIsReal(t *testing.T) {
	// All members must be in flight simultaneously: rendezvous via
	// WaitGroup would deadlock under sequential execution of members.
	const n = 4
	team := NewTeam(n)
	defer team.Close()
	var wg sync.WaitGroup
	wg.Add(n)
	team.Run(func(tid int) {
		wg.Done()
		wg.Wait() // returns only once every member arrived
	})
}

func TestWorkerPanicPropagatesAndTeamSurvives(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	caught := func() (r any) {
		defer func() { r = recover() }()
		team.Run(func(tid int) {
			if tid == 2 {
				panic("boom from worker")
			}
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok {
		t.Fatalf("caught %T %v, want *WorkerPanic", caught, caught)
	}
	if wp.Tid != 2 || wp.Value != "boom from worker" {
		t.Fatalf("caught tid=%d value=%v", wp.Tid, wp.Value)
	}
	// The team must remain usable after the panic.
	var ran atomic.Int32
	team.Run(func(tid int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Errorf("after panic: %d members ran", ran.Load())
	}
}

func TestMasterPanicStillJoinsWorkers(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	var workersDone atomic.Int32
	caught := func() (r any) {
		defer func() { r = recover() }()
		team.Run(func(tid int) {
			if tid == 0 {
				panic("master boom")
			}
			workersDone.Add(1)
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok || wp.Tid != 0 || wp.Value != "master boom" {
		t.Fatalf("caught %#v", caught)
	}
	if workersDone.Load() != 2 {
		t.Errorf("workers done: %d", workersDone.Load())
	}
	team.Run(func(int) {}) // still usable
}

func TestPanicValuePreserved(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	type custom struct{ code int }
	caught := func() (r any) {
		defer func() { r = recover() }()
		team.Run(func(tid int) {
			if tid == 1 {
				panic(custom{42})
			}
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok {
		t.Fatalf("caught %T, want *WorkerPanic", caught)
	}
	if c, ok := wp.Value.(custom); !ok || c.code != 42 {
		t.Errorf("wrapped value %#v", wp.Value)
	}
}

// explodeInWorker panics from a named helper so the stack-preservation
// test can look for this frame in the captured trace.
func explodeInWorker() { panic("kept stack") }

func TestWorkerPanicPreservesOriginalStack(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	caught := func() (r any) {
		defer func() { r = recover() }()
		team.Run(func(tid int) {
			if tid == 1 {
				explodeInWorker()
			}
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok {
		t.Fatalf("caught %T, want *WorkerPanic", caught)
	}
	// The captured stack must show the frame that actually panicked, not
	// just the join site in Run.
	if !strings.Contains(string(wp.Stack), "explodeInWorker") {
		t.Errorf("stack does not name the panicking frame:\n%s", wp.Stack)
	}
	if !strings.Contains(wp.Error(), "explodeInWorker") {
		t.Errorf("Error() omits the original stack: %q", wp.Error())
	}
	if !strings.Contains(wp.Error(), "team member 1") {
		t.Errorf("Error() omits the member id: %q", wp.Error())
	}
}

func TestWorkerPanicUnwrap(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	sentinel := errors.New("sentinel failure")
	caught := func() (r any) {
		defer func() { r = recover() }()
		team.Run(func(tid int) {
			if tid == 1 {
				panic(sentinel)
			}
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok {
		t.Fatalf("caught %T, want *WorkerPanic", caught)
	}
	if !errors.Is(wp, sentinel) {
		t.Errorf("errors.Is does not reach the original error")
	}
}

func TestTimingAccumulatesRegions(t *testing.T) {
	const n = 4
	team := NewTeam(n)
	defer team.Close()
	tm := NewTiming(n)
	team.SetTiming(tm)
	const regions = 3
	for r := 0; r < regions; r++ {
		team.Run(func(tid int) {
			time.Sleep(time.Millisecond)
			team.Barrier()
		})
	}
	s := tm.Snapshot()
	if s.Regions != regions {
		t.Fatalf("regions = %d, want %d", s.Regions, regions)
	}
	if s.Wall < regions*time.Millisecond {
		t.Errorf("wall %v below the slept floor", s.Wall)
	}
	if len(s.Busy) != n {
		t.Fatalf("busy has %d slots, want %d", len(s.Busy), n)
	}
	for tid, b := range s.Busy {
		if b < regions*time.Millisecond {
			t.Errorf("member %d busy %v below the slept floor", tid, b)
		}
	}
	if s.MaxBusy() < s.MeanBusy() {
		t.Errorf("max busy %v < mean %v", s.MaxBusy(), s.MeanBusy())
	}
	if li := s.LoadImbalance(); li < 1.0 {
		t.Errorf("load imbalance %v < 1", li)
	}
	tm.Reset()
	if s := tm.Snapshot(); s.Regions != 0 || s.Wall != 0 || s.MaxBusy() != 0 {
		t.Errorf("reset left %+v", s)
	} else if s.LoadImbalance() != 0 {
		t.Errorf("empty snapshot imbalance %v, want 0", s.LoadImbalance())
	}
	team.SetTiming(nil)
	team.Run(func(int) {}) // timing off again: must not accumulate
	if got := tm.Snapshot().Regions; got != 0 {
		t.Errorf("detached timing recorded %d regions", got)
	}
}

func TestTimingSizeMismatchPanics(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	defer func() {
		if recover() == nil {
			t.Error("mismatched SetTiming did not panic")
		}
	}()
	team.SetTiming(NewTiming(3))
}

// Package par is the shared-memory parallel substrate of this repository:
// a small OpenMP-like runtime on top of goroutines. It provides a
// persistent thread team (so repeated parallel regions, as in the LULESH
// time loop, do not pay goroutine creation each iteration), OpenMP-style
// loop schedules (static, static-chunked, dynamic, guided), and a reusable
// barrier. The SPRAY paper's reducers are defined relative to exactly this
// execution model: a region is executed by a fixed team, each member has a
// stable integer id, and the reduction merge happens when the region ends.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spray/internal/telemetry"
)

// Team is a fixed-size group of workers that execute parallel regions
// together. A Team is created once and reused across regions; members are
// identified by a thread id (tid) in [0, Size()). The calling goroutine
// acts as member 0, mirroring the OpenMP master thread.
type Team struct {
	size    int
	jobs    []chan func(tid int)
	done    sync.WaitGroup
	barrier *Barrier
	closed  bool
	timing  *Timing             // nil = lifecycle timing off (the default)
	tracer  *telemetry.Tracer   // nil = span tracing off (the default)
	rec     *telemetry.Recorder // nil = runtime counters off (the default)
	regions int64               // regions dispatched; numbers trace spans

	panicMu  sync.Mutex
	panicVal any // first panic raised by a worker during the current region
}

// WorkerPanic wraps a panic raised inside a parallel region so the
// re-raise on the caller preserves where the panic actually happened: the
// member's tid, the original panic value, and the goroutine stack captured
// at recover time (re-panicking alone would report the join site only).
type WorkerPanic struct {
	Tid   int    // team member that panicked (0 = the master/caller)
	Value any    // the original panic value
	Stack []byte // debug.Stack() of the panicking goroutine
}

// Error formats the panic with its original stack trace; WorkerPanic
// satisfies error so recovered values can flow through error channels.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: panic in team member %d: %v\n\noriginal goroutine stack:\n%s",
		p.Tid, p.Value, p.Stack)
}

func (p *WorkerPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// wrapPanic captures the current goroutine's stack around a recovered
// panic value. Must be called from inside the deferred recover, while the
// panicking frames are still on the stack. Already-wrapped values (nested
// teams) pass through untouched.
func wrapPanic(tid int, val any) any {
	if wp, ok := val.(*WorkerPanic); ok {
		return wp
	}
	return &WorkerPanic{Tid: tid, Value: val, Stack: debug.Stack()}
}

// panicHook is the process-wide panic observer: when set, Run invokes it
// with the wrapped *WorkerPanic after the region has joined and before
// the panic is re-raised on the caller. The flight recorder hooks in
// here to capture the dying region's final telemetry snapshot while the
// recorders are still attached. The hook runs on the master goroutine of
// the panicking team and must not itself panic; it sits entirely on the
// panic path, so the non-panicking region lifecycle pays nothing for it.
var panicHook atomic.Pointer[func(*WorkerPanic)]

// SetPanicHook installs (or, with nil, removes) the process-wide worker
// panic observer. Safe to call concurrently with running regions; at
// most one hook is active at a time.
func SetPanicHook(fn func(*WorkerPanic)) {
	if fn == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&fn)
}

// notifyPanic runs the panic hook, if any, for a wrapped panic value.
func notifyPanic(val any) {
	wp, ok := val.(*WorkerPanic)
	if !ok {
		return
	}
	if fn := panicHook.Load(); fn != nil {
		(*fn)(wp)
	}
}

// NewTeam creates a team of n members. n must be positive; n == 1 yields a
// degenerate team that runs regions on the caller without synchronization.
func NewTeam(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("par: team size must be >= 1, got %d", n))
	}
	t := &Team{size: n, barrier: NewBarrier(n)}
	t.jobs = make([]chan func(int), n)
	for tid := 1; tid < n; tid++ {
		ch := make(chan func(int))
		t.jobs[tid] = ch
		go func(tid int, ch chan func(int)) {
			// Label the worker for pprof so CPU/goroutine profiles
			// attribute region work to a stable team member id.
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("par-worker", strconv.Itoa(tid))))
			for fn := range ch {
				t.runMember(tid, fn)
			}
		}(tid, ch)
	}
	return t
}

// Default returns a team sized to the machine: GOMAXPROCS members.
func Default() *Team { return NewTeam(runtime.GOMAXPROCS(0)) }

// Size returns the number of team members.
func (t *Team) Size() int { return t.size }

// Regions returns the number of parallel regions dispatched on this team
// so far — a monotonically increasing region epoch. Regions are counted
// whether or not instrumentation is attached, so the value is a stable
// clock: the plan-compiled reducer stamps its compiled plan with the
// epoch of the record region, letting diagnostics correlate a plan with
// the region that produced it. Read it between regions (the counter is
// bumped at dispatch, unsynchronized with the members).
func (t *Team) Regions() int64 { return t.regions }

// SetTiming attaches (or, with nil, detaches) a region-lifecycle timing
// accumulator. tm must have been built for this team's size. Not safe to
// call while a region is running.
func (t *Team) SetTiming(tm *Timing) {
	if tm != nil && tm.Threads() != t.size {
		panic(fmt.Sprintf("par: timing built for %d threads attached to a team of %d", tm.Threads(), t.size))
	}
	t.timing = tm
}

// Timing returns the attached timing accumulator, or nil when lifecycle
// timing is off.
func (t *Team) Timing() *Timing { return t.timing }

// SetTracer attaches (or, with nil, detaches) a span-timeline tracer:
// subsequent regions record per-member region spans, BarrierTid records
// barrier waits, and drivers with access to the team (chunkers, fix-ups)
// add chunk/finalize/drain spans. tr must have at least as many rings as
// the team has members. Not safe to call while a region is running.
func (t *Team) SetTracer(tr *telemetry.Tracer) {
	if tr != nil && tr.Threads() < t.size {
		panic(fmt.Sprintf("par: tracer built for %d threads attached to a team of %d", tr.Threads(), t.size))
	}
	t.tracer = tr
}

// Tracer returns the attached span tracer, or nil when tracing is off.
func (t *Team) Tracer() *telemetry.Tracer { return t.tracer }

// SetRecorder attaches (or, with nil, detaches) a telemetry recorder for
// the loop runtime's own counters: chunkers built against this team
// (ParallelFor, ScalarReduce, the reduction drivers) report steal-
// schedule activity — steals, failed probes, stolen iterations, grain
// splits/coalesces, per-member chunks — into its per-thread shards. rec
// must have at least as many shards as the team has members. Not safe to
// call while a region is running.
func (t *Team) SetRecorder(rec *telemetry.Recorder) {
	if rec != nil && rec.Threads() < t.size {
		panic(fmt.Sprintf("par: recorder built for %d threads attached to a team of %d", rec.Threads(), t.size))
	}
	t.rec = rec
}

// Recorder returns the attached runtime-counter recorder, or nil when
// runtime counters are off.
func (t *Team) Recorder() *telemetry.Recorder { return t.rec }

// Run executes fn once per team member, concurrently, and returns when all
// members have finished — the analogue of an OpenMP parallel region. The
// caller runs as tid 0. Run must not be called from inside a region on the
// same team (regions do not nest; create an inner Team for nesting).
//
// A panic in any member is caught, the region is still joined (so the
// team stays usable), and the first panic is re-raised on the caller as a
// *WorkerPanic carrying the member's tid, the original value, and the
// goroutine stack captured where the panic happened. A member that panics
// before reaching a Barrier that other members wait on deadlocks the
// region — the same hazard an aborting OpenMP thread poses.
//
// When a Timing is attached (SetTiming) the region's wall time and each
// member's busy time are accumulated; when Go execution tracing is active
// the region becomes a trace task with one trace region per member, so
// `go tool trace` shows the team's fork/join structure directly.
func (t *Team) Run(fn func(tid int)) {
	if t.closed {
		panic("par: Run on closed team")
	}
	tm, tr := t.timing, t.tracer
	run := fn
	var task *trace.Task
	t.regions++
	if traced := trace.IsEnabled(); tm != nil || tr != nil || traced {
		var ctx context.Context = context.Background()
		if traced {
			ctx, task = trace.NewTask(ctx, "par.Run")
		}
		run = instrumentRegion(ctx, fn, tm, tr, t.regions, traced)
	}
	var start time.Time
	if tm != nil {
		start = time.Now()
	}
	t.done.Add(t.size - 1)
	for tid := 1; tid < t.size; tid++ {
		t.jobs[tid] <- run
	}
	var masterPanic any
	func() {
		defer func() {
			if r := recover(); r != nil {
				masterPanic = wrapPanic(0, r)
			}
		}()
		run(0)
	}()
	t.done.Wait()
	t.panicMu.Lock()
	workerPanic := t.panicVal
	t.panicVal = nil
	t.panicMu.Unlock()
	if tm != nil {
		tm.regions.Add(1)
		tm.wallNS.Add(int64(time.Since(start)))
	}
	if task != nil {
		task.End()
	}
	if masterPanic != nil {
		notifyPanic(masterPanic)
		panic(masterPanic)
	}
	if workerPanic != nil {
		notifyPanic(workerPanic)
		panic(workerPanic)
	}
}

// instrumentRegion wraps a region body with per-member busy timing,
// span-timeline region events, and execution-trace regions. The wrapper
// is only built when telemetry or tracing is on — the default Run path
// dispatches fn untouched.
func instrumentRegion(ctx context.Context, fn func(int), tm *Timing, tr *telemetry.Tracer, region int64, traced bool) func(int) {
	return func(tid int) {
		if traced {
			defer trace.StartRegion(ctx, "par.member").End()
		}
		if tr != nil {
			tr.Begin(tid, telemetry.SpanRegion, region, 0)
			defer tr.End(tid, telemetry.SpanRegion)
		}
		if tm != nil {
			start := time.Now()
			defer func() { tm.busyNS[tid].Add(int64(time.Since(start))) }()
		}
		fn(tid)
	}
}

// runMember executes one region on a worker, converting panics into a
// recorded value (with the worker's stack attached) so Run can re-raise
// them after the join.
func (t *Team) runMember(tid int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			wrapped := wrapPanic(tid, r)
			t.panicMu.Lock()
			if t.panicVal == nil {
				t.panicVal = wrapped
			}
			t.panicMu.Unlock()
		}
		t.done.Done()
	}()
	fn(tid)
}

// Barrier blocks until every team member currently inside a region has
// called it, the analogue of "#pragma omp barrier". It is only meaningful
// when called by all members from within Run. With a Timing attached, the
// time every member spends waiting here is accumulated as BarrierWait.
func (t *Team) Barrier() {
	if tm := t.timing; tm != nil {
		start := time.Now()
		t.barrier.Wait()
		tm.barrNS.Add(int64(time.Since(start)))
		return
	}
	t.barrier.Wait()
}

// BarrierTid is Barrier for callers that know their member id: with a
// tracer attached the wait additionally appears as a barrier span on
// member tid's timeline. Without a tracer it is exactly Barrier.
func (t *Team) BarrierTid(tid int) {
	tr := t.tracer
	if tr == nil {
		t.Barrier()
		return
	}
	tr.Begin(tid, telemetry.SpanBarrier, 0, 0)
	t.Barrier()
	tr.End(tid, telemetry.SpanBarrier)
}

// Close shuts down the worker goroutines. The team must not be used after
// Close. Closing is idempotent.
func (t *Team) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for tid := 1; tid < t.size; tid++ {
		close(t.jobs[tid])
	}
}

// barrierSpin bounds the busy-wait phase of Barrier.Wait before a waiter
// parks on the condition variable. Region joins are typically separated
// by microseconds of loop work, so the closing arrival is usually within
// this window and waiters never pay the mutex/futex round trip.
const barrierSpin = 256

// Barrier is a reusable cyclic barrier for n participants. Arrival is a
// single atomic increment and the wait is spin-then-park: a waiter first
// spins reading the generation counter (yielding to the scheduler
// periodically) and only falls back to parking on a condition variable
// when the other participants take long to arrive. Compared to the
// classic all-under-mutex design this keeps the common fast path — all
// participants arriving nearly together — entirely lock-free.
type Barrier struct {
	n     int
	count atomic.Int32  // arrivals in the current generation
	gen   atomic.Uint64 // generation number; waiters watch it change
	mu    sync.Mutex    // guards parking only
	cond  *sync.Cond
}

// NewBarrier creates a barrier for n participants; n must be positive.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("par: barrier size must be >= 1, got %d", n))
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n participants have called Wait for the current
// generation, then releases them all and resets for the next generation.
//
// The closing participant resets the arrival count before advancing the
// generation; that is safe because every other participant is still
// watching the old generation value and cannot re-enter Wait (and touch
// the count) until the generation changes. The generation is advanced
// under the parking mutex so a waiter that re-checks it under the same
// mutex before parking can never miss the broadcast.
func (b *Barrier) Wait() {
	gen := b.gen.Load()
	if int(b.count.Add(1)) == b.n {
		b.count.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for i := 0; i < barrierSpin; i++ {
		if b.gen.Load() != gen {
			return
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Package par is the shared-memory parallel substrate of this repository:
// a small OpenMP-like runtime on top of goroutines. It provides a
// persistent thread team (so repeated parallel regions, as in the LULESH
// time loop, do not pay goroutine creation each iteration), OpenMP-style
// loop schedules (static, static-chunked, dynamic, guided), and a reusable
// barrier. The SPRAY paper's reducers are defined relative to exactly this
// execution model: a region is executed by a fixed team, each member has a
// stable integer id, and the reduction merge happens when the region ends.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Team is a fixed-size group of workers that execute parallel regions
// together. A Team is created once and reused across regions; members are
// identified by a thread id (tid) in [0, Size()). The calling goroutine
// acts as member 0, mirroring the OpenMP master thread.
type Team struct {
	size    int
	jobs    []chan func(tid int)
	done    sync.WaitGroup
	barrier *Barrier
	closed  bool

	panicMu  sync.Mutex
	panicVal any // first panic raised by a worker during the current region
}

// NewTeam creates a team of n members. n must be positive; n == 1 yields a
// degenerate team that runs regions on the caller without synchronization.
func NewTeam(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("par: team size must be >= 1, got %d", n))
	}
	t := &Team{size: n, barrier: NewBarrier(n)}
	t.jobs = make([]chan func(int), n)
	for tid := 1; tid < n; tid++ {
		ch := make(chan func(int))
		t.jobs[tid] = ch
		go func(tid int, ch chan func(int)) {
			for fn := range ch {
				t.runMember(tid, fn)
			}
		}(tid, ch)
	}
	return t
}

// Default returns a team sized to the machine: GOMAXPROCS members.
func Default() *Team { return NewTeam(runtime.GOMAXPROCS(0)) }

// Size returns the number of team members.
func (t *Team) Size() int { return t.size }

// Run executes fn once per team member, concurrently, and returns when all
// members have finished — the analogue of an OpenMP parallel region. The
// caller runs as tid 0. Run must not be called from inside a region on the
// same team (regions do not nest; create an inner Team for nesting).
//
// A panic in any member is caught, the region is still joined (so the
// team stays usable), and the first panic value is re-raised on the
// caller. The original worker stack trace is lost in the re-raise, as
// with errgroup-style designs. A member that panics before reaching a
// Barrier that other members wait on deadlocks the region — the same
// hazard an aborting OpenMP thread poses.
func (t *Team) Run(fn func(tid int)) {
	if t.closed {
		panic("par: Run on closed team")
	}
	t.done.Add(t.size - 1)
	for tid := 1; tid < t.size; tid++ {
		t.jobs[tid] <- fn
	}
	var masterPanic any
	func() {
		defer func() { masterPanic = recover() }()
		fn(0)
	}()
	t.done.Wait()
	t.panicMu.Lock()
	workerPanic := t.panicVal
	t.panicVal = nil
	t.panicMu.Unlock()
	if masterPanic != nil {
		panic(masterPanic)
	}
	if workerPanic != nil {
		panic(workerPanic)
	}
}

// runMember executes one region on a worker, converting panics into a
// recorded value so Run can re-raise them after the join.
func (t *Team) runMember(tid int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			t.panicMu.Lock()
			if t.panicVal == nil {
				t.panicVal = r
			}
			t.panicMu.Unlock()
		}
		t.done.Done()
	}()
	fn(tid)
}

// Barrier blocks until every team member currently inside a region has
// called it, the analogue of "#pragma omp barrier". It is only meaningful
// when called by all members from within Run.
func (t *Team) Barrier() { t.barrier.Wait() }

// Close shuts down the worker goroutines. The team must not be used after
// Close. Closing is idempotent.
func (t *Team) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for tid := 1; tid < t.size; tid++ {
		close(t.jobs[tid])
	}
}

// barrierSpin bounds the busy-wait phase of Barrier.Wait before a waiter
// parks on the condition variable. Region joins are typically separated
// by microseconds of loop work, so the closing arrival is usually within
// this window and waiters never pay the mutex/futex round trip.
const barrierSpin = 256

// Barrier is a reusable cyclic barrier for n participants. Arrival is a
// single atomic increment and the wait is spin-then-park: a waiter first
// spins reading the generation counter (yielding to the scheduler
// periodically) and only falls back to parking on a condition variable
// when the other participants take long to arrive. Compared to the
// classic all-under-mutex design this keeps the common fast path — all
// participants arriving nearly together — entirely lock-free.
type Barrier struct {
	n     int
	count atomic.Int32  // arrivals in the current generation
	gen   atomic.Uint64 // generation number; waiters watch it change
	mu    sync.Mutex    // guards parking only
	cond  *sync.Cond
}

// NewBarrier creates a barrier for n participants; n must be positive.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("par: barrier size must be >= 1, got %d", n))
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n participants have called Wait for the current
// generation, then releases them all and resets for the next generation.
//
// The closing participant resets the arrival count before advancing the
// generation; that is safe because every other participant is still
// watching the old generation value and cannot re-enter Wait (and touch
// the count) until the generation changes. The generation is advanced
// under the parking mutex so a waiter that re-checks it under the same
// mutex before parking can never miss the broadcast.
func (b *Barrier) Wait() {
	gen := b.gen.Load()
	if int(b.count.Add(1)) == b.n {
		b.count.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for i := 0; i < barrierSpin; i++ {
		if b.gen.Load() != gen {
			return
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

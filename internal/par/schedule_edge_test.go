package par

import (
	"sync/atomic"
	"testing"
)

// allSchedules enumerates one representative of every schedule kind plus
// chunked variants at the given chunk size.
func allSchedules(chunk int) []Schedule {
	return []Schedule{
		Static(),
		StaticChunk(chunk),
		Dynamic(chunk),
		Guided(chunk),
		Steal(0),
		Steal(chunk),
	}
}

// chunkCoverage drives a Chunker directly (one For call per member, from
// the test goroutine for determinism of the static kinds, concurrently
// via the team for the shared-cursor kinds) and asserts every index in
// [lo, hi) is visited exactly once and no chunk is empty or out of range.
func chunkCoverage(t *testing.T, team *Team, lo, hi int, s Schedule) {
	t.Helper()
	n := hi - lo
	var visits []atomic.Int32
	if n > 0 {
		visits = make([]atomic.Int32, n)
	}
	var chunks atomic.Int32
	c := NewChunker(s, lo, hi, team.Size())
	team.Run(func(tid int) {
		c.For(tid, func(from, to int) {
			chunks.Add(1)
			if from >= to {
				t.Errorf("%v [%d,%d): empty chunk [%d,%d)", s, lo, hi, from, to)
			}
			if from < lo || to > hi {
				t.Errorf("%v [%d,%d): chunk [%d,%d) out of range", s, lo, hi, from, to)
			}
			for i := from; i < to; i++ {
				visits[i-lo].Add(1)
			}
		})
	})
	for i := range visits {
		if got := visits[i].Load(); got != 1 {
			t.Errorf("%v [%d,%d): index %d visited %d times", s, lo, hi, lo+i, got)
		}
	}
	if n <= 0 && chunks.Load() != 0 {
		t.Errorf("%v [%d,%d): %d chunks for empty range", s, lo, hi, chunks.Load())
	}
}

// TestScheduleEmptyRange pins hi <= lo for every schedule: no chunk may
// be handed out, including for inverted ranges.
func TestScheduleEmptyRange(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	for _, chunk := range []int{1, 8} {
		for _, s := range allSchedules(chunk) {
			for _, r := range [][2]int{{0, 0}, {17, 17}, {10, 3}, {-5, -5}, {5, -5}} {
				chunkCoverage(t, team, r[0], r[1], s)
			}
		}
	}
}

// TestScheduleSingleElement pins the one-iteration loop: exactly one
// member receives exactly one chunk of size one.
func TestScheduleSingleElement(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	for _, chunk := range []int{1, 8} {
		for _, s := range allSchedules(chunk) {
			for _, lo := range []int{0, -3, 41} {
				chunkCoverage(t, team, lo, lo+1, s)
			}
		}
	}
}

// TestScheduleChunkLargerThanRange pins chunk sizes exceeding the whole
// iteration range: the first taker gets the clamped range, everyone else
// gets nothing, nothing is visited twice.
func TestScheduleChunkLargerThanRange(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	for _, s := range []Schedule{StaticChunk(100), Dynamic(100), Guided(100), Steal(100)} {
		for _, r := range [][2]int{{0, 5}, {-7, 0}, {3, 4}} {
			chunkCoverage(t, team, r[0], r[1], s)
		}
	}
}

// TestGuidedMinimumChunk pins the guided schedule's floor: every chunk
// except possibly the last has at least the configured minimum size, and
// the floor kicks in exactly when remaining/teamSize drops below it.
func TestGuidedMinimumChunk(t *testing.T) {
	const lo, hi, minChunk = 0, 500, 16
	team := NewTeam(4)
	defer team.Close()
	var small atomic.Int32
	visits := make([]atomic.Int32, hi-lo)
	c := NewChunker(Guided(minChunk), lo, hi, team.Size())
	team.Run(func(tid int) {
		c.For(tid, func(from, to int) {
			if to-from < minChunk {
				if to != hi {
					t.Errorf("guided chunk [%d,%d) below minimum %d before the tail", from, to, minChunk)
				}
				small.Add(1)
			}
			for i := from; i < to; i++ {
				visits[i-lo].Add(1)
			}
		})
	})
	if small.Load() > 1 {
		t.Errorf("guided handed out %d sub-minimum chunks, want at most the final one", small.Load())
	}
	for i := range visits {
		if visits[i].Load() != 1 {
			t.Fatalf("guided: index %d visited %d times", lo+i, visits[i].Load())
		}
	}
}

// TestScheduleMoreMembersThanIterations pins teams larger than the loop:
// surplus members must pass through For without receiving work.
func TestScheduleMoreMembersThanIterations(t *testing.T) {
	team := NewTeam(8)
	defer team.Close()
	for _, s := range allSchedules(2) {
		chunkCoverage(t, team, 0, 3, s)
	}
}

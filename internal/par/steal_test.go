package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"spray/internal/telemetry"
)

// TestStealForcedStealing pins the redistribution path: member 0 stalls
// inside its first chunk, so the other members must drain member 0's
// seeded slice by stealing. Coverage must stay exact (every index once)
// and, with a recorder attached, the steal counters must show actual
// steals of member 0's iterations.
func TestStealForcedStealing(t *testing.T) {
	const lo, hi = 0, 10_000
	team := NewTeam(4)
	defer team.Close()
	rec := telemetry.NewRecorder("steal-test", team.Size())
	visits := make([]atomic.Int32, hi-lo)
	var stalled atomic.Bool
	c := NewChunker(Steal(64), lo, hi, team.Size())
	c.SetRecorder(rec)
	team.Run(func(tid int) {
		c.For(tid, func(from, to int) {
			if tid == 0 && !stalled.Swap(true) {
				// Stall long enough that the rest of the team drains
				// everything else and has to come take our slice.
				time.Sleep(20 * time.Millisecond)
			}
			for i := from; i < to; i++ {
				visits[i-lo].Add(1)
			}
		})
	})
	for i := range visits {
		if got := visits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times under forced stealing", lo+i, got)
		}
	}
	snap := rec.Snapshot()
	if snap.Get(telemetry.Steals) == 0 {
		t.Fatalf("stalled member forced no steals; counters: %v", snap)
	}
	if snap.Get(telemetry.StealIters) == 0 {
		t.Fatalf("steals recorded but no stolen iterations; counters: %v", snap)
	}
	if snap.Get(telemetry.ChunksExecuted) == 0 {
		t.Fatalf("no chunks recorded; counters: %v", snap)
	}
	// Per-member chunk counts must sum to the total.
	per := rec.PerThread()
	var sum uint64
	for _, s := range per {
		sum += s.Get(telemetry.ChunksExecuted)
	}
	if sum != snap.Get(telemetry.ChunksExecuted) {
		t.Fatalf("per-member chunks sum %d != total %d", sum, snap.Get(telemetry.ChunksExecuted))
	}
}

// TestStealRandomVictimStress is the -race stress: repeated loops on a
// wide team with randomized per-chunk delays, so victim order, steal
// interleavings and the last-element pop/steal race all get exercised
// under the race detector.
func TestStealRandomVictimStress(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	team := NewTeam(8)
	defer team.Close()
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < iters; it++ {
		lo := rng.Intn(100) - 50
		n := 1 + rng.Intn(5000)
		grain := rng.Intn(64) // 0 = auto
		var total atomic.Int64
		c := NewChunker(Steal(grain), lo, lo+n, team.Size())
		team.Run(func(tid int) {
			c.For(tid, func(from, to int) {
				if (from+tid)%7 == 0 {
					time.Sleep(time.Duration(from%3) * time.Microsecond)
				}
				total.Add(int64(to - from))
			})
		})
		if got := total.Load(); got != int64(n) {
			t.Fatalf("iter %d: covered %d of %d iterations", it, got, n)
		}
	}
}

// TestStealGrainSplitAndCoalesce pins the adaptive grain controller from
// both sides: a stalled-straggler run must split stolen oversized chunks
// (far halves pushed back), and an uncontended single-member run must
// coalesce adjacent seed chunks into fewer, larger body calls.
func TestStealGrainSplitAndCoalesce(t *testing.T) {
	// Split side: 2 members, member 0 stalls, member 1 steals member 0's
	// large seed chunks (seeded at slice/32 >> grain 8) and must split.
	team := NewTeam(2)
	defer team.Close()
	rec := telemetry.NewRecorder("steal-split", team.Size())
	c := NewChunker(Steal(8), 0, 100_000, team.Size())
	c.SetRecorder(rec)
	var stalled atomic.Bool
	team.Run(func(tid int) {
		c.For(tid, func(from, to int) {
			if tid == 0 && !stalled.Swap(true) {
				time.Sleep(20 * time.Millisecond)
			}
		})
	})
	snap := rec.Snapshot()
	if snap.Get(telemetry.Steals) == 0 {
		t.Fatalf("no steals under a stalled straggler; counters: %v", snap)
	}
	if snap.Get(telemetry.GrainSplits) == 0 {
		t.Fatalf("oversized stolen chunks were never split; counters: %v", snap)
	}

	// Coalesce side: a single-member team never steals, so every pop may
	// merge up to stealCoalesceMax seed chunks.
	solo := NewTeam(1)
	defer solo.Close()
	srec := telemetry.NewRecorder("steal-coalesce", 1)
	sc := NewChunker(Steal(0), 0, 100_000, 1)
	sc.SetRecorder(srec)
	solo.Run(func(tid int) { sc.For(tid, func(from, to int) {}) })
	ssnap := srec.Snapshot()
	if ssnap.Get(telemetry.GrainCoalesces) == 0 {
		t.Fatalf("uncontended run never coalesced; counters: %v", ssnap)
	}
	if got, want := ssnap.Get(telemetry.ChunksExecuted), uint64(stealSeedChunks); got >= want {
		t.Fatalf("coalescing should cut chunk count below %d seeds, executed %d", want, got)
	}
}

// TestStealChunkDoneAndTracer pins that the steal path goes through the
// same chunk wrappers as every other schedule: the chunk-done hook fires
// once per executed chunk, on the executing member's goroutine.
func TestStealChunkDoneAndTracer(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	rec := telemetry.NewRecorder("steal-hook", team.Size())
	var hooks atomic.Int64
	c := NewChunker(Steal(16), 0, 10_000, team.Size())
	c.SetRecorder(rec)
	c.SetChunkDone(func(tid int) { hooks.Add(1) })
	team.Run(func(tid int) { c.For(tid, func(from, to int) {}) })
	chunks := rec.Snapshot().Get(telemetry.ChunksExecuted)
	if hooks.Load() != int64(chunks) {
		t.Fatalf("chunk-done fired %d times for %d chunks", hooks.Load(), chunks)
	}
	if chunks == 0 {
		t.Fatal("no chunks executed")
	}
}

// TestStealOffPathNoAlloc pins the telemetry-off steady state: with no
// recorder attached, driving a whole steal loop allocates nothing beyond
// the Chunker construction itself (deques included, one allocation
// set per loop — same class as every schedule's Chunker). The For calls
// themselves must be allocation-free.
func TestStealOffPathNoAlloc(t *testing.T) {
	const runs = 32
	chunkers := make([]*Chunker, runs+1)
	for i := range chunkers {
		chunkers[i] = NewChunker(Steal(32), 0, 4096, 1)
	}
	var idx int
	sink := 0
	allocs := testing.AllocsPerRun(runs, func() {
		c := chunkers[idx]
		idx++
		c.For(0, func(from, to int) { sink += to - from })
	})
	if allocs != 0 {
		t.Fatalf("steal For allocated %.1f times per loop with telemetry off, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("loop body never ran")
	}
}

// TestDequeLastElementRace hammers the single-element pop/steal race:
// exactly one of owner and thief may win each element.
func TestDequeLastElementRace(t *testing.T) {
	iters := 20_000
	if testing.Short() {
		iters = 2_000
	}
	var d deque
	for i := 0; i < iters; i++ {
		d.push(chunk{from: int32(i), to: int32(i + 1)})
		got := make(chan chunk, 2)
		go func() {
			if c, ok := d.steal(); ok {
				got <- c
			} else {
				got <- chunk{from: -1, to: -1}
			}
		}()
		var wins int
		if c, ok := d.pop(); ok {
			wins++
			if c.from != int32(i) {
				t.Fatalf("pop returned %v, want from=%d", c, i)
			}
		}
		c := <-got
		if c.from >= 0 {
			wins++
			if c.from != int32(i) {
				t.Fatalf("steal returned %v, want from=%d", c, i)
			}
		}
		if wins != 1 {
			t.Fatalf("element %d claimed %d times", i, wins)
		}
	}
}

// TestDequeFullRing pins the fixed-capacity contract: push reports
// failure at dequeCap and the ring drains FIFO-from-top/LIFO-from-bottom
// without loss.
func TestDequeFullRing(t *testing.T) {
	var d deque
	for i := 0; i < dequeCap; i++ {
		if !d.push(chunk{from: int32(i), to: int32(i + 1)}) {
			t.Fatalf("push %d failed below capacity %d", i, dequeCap)
		}
	}
	if d.push(chunk{from: 0, to: 1}) {
		t.Fatal("push succeeded on a full ring")
	}
	// Steal half from the top (oldest first), pop the rest (newest first).
	for i := 0; i < dequeCap/2; i++ {
		c, ok := d.steal()
		if !ok || c.from != int32(i) {
			t.Fatalf("steal %d: got %v ok=%v", i, c, ok)
		}
	}
	for i := dequeCap - 1; i >= dequeCap/2; i-- {
		c, ok := d.pop()
		if !ok || c.from != int32(i) {
			t.Fatalf("pop: got %v ok=%v, want from=%d", c, ok, i)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop succeeded on a drained ring")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal succeeded on a drained ring")
	}
}

// TestParseSchedule pins the string forms the CLIs accept, including the
// round-trip of Schedule.String.
func TestParseSchedule(t *testing.T) {
	good := []struct {
		in   string
		want Schedule
	}{
		{"static", Static()},
		{"static:64", StaticChunk(64)},
		{"static-chunk:8", StaticChunk(8)},
		{"static-chunk(8)", StaticChunk(8)},
		{"dynamic", Dynamic(0)},
		{"dynamic:16", Dynamic(16)},
		{"guided", Guided(0)},
		{"guided(4)", Guided(4)},
		{"steal", Steal(0)},
		{"steal:4096", Steal(4096)},
	}
	for _, tc := range good {
		got, err := ParseSchedule(tc.in)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSchedule(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, s := range []Schedule{Static(), StaticChunk(32), Dynamic(8), Guided(8), Steal(0), Steal(128)} {
		got, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("round-trip %v: %v", s, err)
		}
		if got != s {
			t.Fatalf("round-trip %v parsed as %v", s, got)
		}
	}
	for _, bad := range []string{"", "fifo", "dynamic:x", "steal:-4", "static-chunk", "guided:0"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

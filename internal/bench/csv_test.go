package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := &Result{Title: "t", XLabel: "threads"}
	orig.AddPoint("a", Point{X: 1, Time: mkSummary(0.5), Bytes: 100})
	orig.AddPoint("a", Point{X: 2, Time: mkSummary(0.25), Bytes: 200})
	orig.AddPoint("b", Point{X: 1, Time: mkSummary(1.5)})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 {
		t.Fatalf("series %d", len(got.Series))
	}
	for si, s := range orig.Series {
		for pi, p := range s.Points {
			g := got.Series[si].Points[pi]
			if g.X != p.X || g.Time.Mean != p.Time.Mean || g.Bytes != p.Bytes {
				t.Errorf("series %s point %d: %+v vs %+v", s.Name, pi, g, p)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "foo,bar\n",
		"wrong cols":  "series,x,mean_s,min_s,max_s,stddev_s,bytes\na,1,2\n",
		"bad number":  "series,x,mean_s,min_s,max_s,stddev_s,bytes\na,x,1,1,1,0,0\n",
		"bad bytes":   "series,x,mean_s,min_s,max_s,stddev_s,bytes\na,1,1,1,1,0,zz\n",
		"bad quoting": "series,x,mean_s,min_s,max_s,stddev_s,bytes\n\"a,1,1,1,1,0,0\n",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestCompare(t *testing.T) {
	oldRes := &Result{}
	oldRes.AddPoint("a", Point{X: 1, Time: mkSummary(1.0), Bytes: 100})
	oldRes.AddPoint("a", Point{X: 2, Time: mkSummary(2.0), Bytes: 100})
	oldRes.AddPoint("gone", Point{X: 1, Time: mkSummary(3.0)})
	newRes := &Result{}
	newRes.AddPoint("a", Point{X: 1, Time: mkSummary(0.5), Bytes: 50})
	newRes.AddPoint("a", Point{X: 2, Time: mkSummary(3.0), Bytes: 100})
	newRes.AddPoint("fresh", Point{X: 1, Time: mkSummary(1.0)})

	rows := Compare(oldRes, newRes)
	if len(rows) != 4 {
		t.Fatalf("rows %d: %+v", len(rows), rows)
	}
	if rows[0].TimeDelta != -0.5 {
		t.Errorf("a/1 delta %v, want -0.5", rows[0].TimeDelta)
	}
	if rows[1].TimeDelta != 0.5 {
		t.Errorf("a/2 delta %v, want +0.5", rows[1].TimeDelta)
	}
	if !rows[2].OnlyInOld || rows[2].Series != "gone" {
		t.Errorf("row 2: %+v", rows[2])
	}
	if !rows[3].OnlyInNew || rows[3].Series != "fresh" {
		t.Errorf("row 3: %+v", rows[3])
	}

	var buf bytes.Buffer
	WriteComparison(&buf, rows)
	out := buf.String()
	for _, want := range []string{"-50.0%", "+50.0%", "removed", "added", "series"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}

func TestCompareZeroOldMean(t *testing.T) {
	oldRes := &Result{}
	oldRes.AddPoint("z", Point{X: 1, Time: mkSummary(0)})
	newRes := &Result{}
	newRes.AddPoint("z", Point{X: 1, Time: mkSummary(1)})
	rows := Compare(oldRes, newRes)
	if rows[0].TimeDelta != 0 {
		t.Errorf("delta for zero baseline: %v", rows[0].TimeDelta)
	}
}

package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DiffOptions tunes the regression decision of Compare.
type DiffOptions struct {
	// Sigma scales the noise band: a point regresses only when the mean
	// moved by more than Sigma combined standard deviations. Defaults to
	// DefaultSigma when zero.
	Sigma float64
	// MinRel is the floor of the noise band as a fraction of the old
	// mean, so points whose repeats happened to have near-zero spread do
	// not flag sub-percent jitter. Defaults to DefaultMinRel when zero.
	MinRel float64
}

// DefaultSigma and DefaultMinRel are the gate defaults: three combined
// standard deviations, never tighter than 5% of the old mean.
const (
	DefaultSigma  = 3.0
	DefaultMinRel = 0.05
)

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Sigma <= 0 {
		o.Sigma = DefaultSigma
	}
	if o.MinRel <= 0 {
		o.MinRel = DefaultMinRel
	}
	return o
}

// PointDiff is the comparison of one (figure, series, x) point across
// two benchmark files.
type PointDiff struct {
	Result string  // result title the point belongs to
	Series string  // series name
	X      float64 // sweep position (thread count, block size, ...)

	OldMean, NewMean     float64 // seconds per op
	OldStddev, NewStddev float64

	// Delta is the relative mean change (new-old)/old; positive is
	// slower. Threshold is the absolute change (seconds) the noise model
	// requires before the point counts as moved.
	Delta     float64
	Threshold float64

	Regression  bool // slower beyond the noise threshold
	Improvement bool // faster beyond the noise threshold
}

// Diff is the full comparison of two benchmark files.
type Diff struct {
	Points []PointDiff
	// OnlyOld and OnlyNew list point keys present in exactly one file
	// (renamed series, changed sweeps). They never gate, but the table
	// surfaces them so a silently vanished point cannot masquerade as a
	// fixed regression.
	OnlyOld []string
	OnlyNew []string
}

// Regressions counts the points that got slower beyond the noise band.
func (d *Diff) Regressions() int {
	n := 0
	for _, p := range d.Points {
		if p.Regression {
			n++
		}
	}
	return n
}

// Improvements counts the points that got faster beyond the noise band.
func (d *Diff) Improvements() int {
	n := 0
	for _, p := range d.Points {
		if p.Improvement {
			n++
		}
	}
	return n
}

type pointKey struct {
	result, series string
	x              float64
}

func (k pointKey) String() string {
	return fmt.Sprintf("%s / %s @ %s", k.result, k.series, trimFloat(k.x))
}

func indexPoints(f *File) (map[pointKey]Point, []pointKey) {
	idx := make(map[pointKey]Point)
	var order []pointKey
	for _, res := range f.Results {
		for _, s := range res.Series {
			for _, p := range s.Points {
				k := pointKey{result: res.Title, series: s.Name, x: p.X}
				if _, dup := idx[k]; !dup {
					order = append(order, k)
				}
				idx[k] = p
			}
		}
	}
	return idx, order
}

// DiffFiles matches the points of two benchmark files by (result title,
// series name, x) and classifies each shared point as unchanged, regressed
// or improved under the noise model
//
//	|newMean - oldMean| > max(Sigma*sqrt(oldStddev² + newStddev²), MinRel*oldMean)
//
// It refuses to compare files with different schema versions or host
// metadata — cross-host deltas measure the machines, not the code.
func DiffFiles(old, new *File, opts DiffOptions) (*Diff, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline v%d vs candidate v%d", old.Schema, new.Schema)
	}
	if old.Legacy() {
		return nil, fmt.Errorf("bench: baseline predates host metadata (schema %d); re-record it", old.Schema)
	}
	if err := old.Host.Compatible(new.Host); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	oldIdx, oldOrder := indexPoints(old)
	newIdx, newOrder := indexPoints(new)

	d := &Diff{}
	for _, k := range oldOrder {
		op := oldIdx[k]
		np, ok := newIdx[k]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, k.String())
			continue
		}
		noise := opts.Sigma * math.Sqrt(op.Time.Stddev*op.Time.Stddev+np.Time.Stddev*np.Time.Stddev)
		if floor := opts.MinRel * op.Time.Mean; noise < floor {
			noise = floor
		}
		pd := PointDiff{
			Result:    k.result,
			Series:    k.series,
			X:         k.x,
			OldMean:   op.Time.Mean,
			NewMean:   np.Time.Mean,
			OldStddev: op.Time.Stddev,
			NewStddev: np.Time.Stddev,
			Threshold: noise,
		}
		if op.Time.Mean > 0 {
			pd.Delta = (np.Time.Mean - op.Time.Mean) / op.Time.Mean
		}
		switch {
		case np.Time.Mean-op.Time.Mean > noise:
			pd.Regression = true
		case op.Time.Mean-np.Time.Mean > noise:
			pd.Improvement = true
		}
		d.Points = append(d.Points, pd)
	}
	for _, k := range newOrder {
		if _, ok := oldIdx[k]; !ok {
			d.OnlyNew = append(d.OnlyNew, k.String())
		}
	}
	sort.SliceStable(d.Points, func(i, j int) bool { return d.Points[i].Delta > d.Points[j].Delta })
	return d, nil
}

// WriteTable renders the diff as aligned text: one row per shared point,
// sorted worst delta first, with the regressed and improved points
// flagged, followed by the unmatched point keys.
func (d *Diff) WriteTable(w io.Writer) {
	rows := [][]string{{"", "result / series @ x", "old", "new", "delta", "noise"}}
	for _, p := range d.Points {
		flag := ""
		switch {
		case p.Regression:
			flag = "REGRESSED"
		case p.Improvement:
			flag = "improved"
		}
		key := pointKey{result: p.Result, series: p.Series, x: p.X}
		rows = append(rows, []string{
			flag,
			key.String(),
			fmtSeconds(p.OldMean),
			fmtSeconds(p.NewMean),
			fmt.Sprintf("%+.1f%%", p.Delta*100),
			fmtSeconds(p.Threshold),
		})
	}
	writeAligned(w, rows)
	for _, k := range d.OnlyOld {
		fmt.Fprintf(w, "only in baseline:  %s\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(w, "only in candidate: %s\n", k)
	}
	fmt.Fprintf(w, "%d point(s): %d regressed, %d improved\n",
		len(d.Points), d.Regressions(), d.Improvements())
}

package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spray/internal/stats"
)

func TestThreadCounts(t *testing.T) {
	if got := ThreadCounts(0); len(got) != 7 || got[6] != 56 {
		t.Errorf("full sweep = %v", got)
	}
	if got := ThreadCounts(8); len(got) != 4 || got[3] != 8 {
		t.Errorf("max 8 = %v", got)
	}
	// A max that is not in the canonical list is appended.
	got := ThreadCounts(6)
	if got[len(got)-1] != 6 {
		t.Errorf("max 6 = %v", got)
	}
	if got := ThreadCounts(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("max 1 = %v", got)
	}
}

func TestAutoBenchCalibratesAndReports(t *testing.T) {
	r := Runner{Repeats: 3, MinTime: 20 * time.Millisecond}
	calls := 0
	perOp := r.AutoBench(func(iters int) {
		calls++
		time.Sleep(time.Duration(iters) * time.Millisecond)
	})
	if calls < 4 { // calibration doublings + 3 samples
		t.Errorf("only %d calls", calls)
	}
	// Per-op time should be near 1ms.
	if perOp.Mean < 0.5e-3 || perOp.Mean > 5e-3 {
		t.Errorf("per-op mean %v, want ~1ms", perOp.Mean)
	}
	if perOp.N != 3 {
		t.Errorf("samples %d", perOp.N)
	}
}

func TestMeasure(t *testing.T) {
	r := Runner{Repeats: 4}
	s := r.Measure(func() { time.Sleep(2 * time.Millisecond) })
	if s.N != 4 {
		t.Errorf("N=%d", s.N)
	}
	if s.Mean < 1e-3 {
		t.Errorf("mean %v too small", s.Mean)
	}
	// Zero repeats still measures once.
	if s := (Runner{}).Measure(func() {}); s.N != 1 {
		t.Errorf("zero-repeats N=%d", s.N)
	}
}

func TestAddPointGroupsBySeries(t *testing.T) {
	r := &Result{}
	r.AddPoint("a", Point{X: 1})
	r.AddPoint("b", Point{X: 1})
	r.AddPoint("a", Point{X: 2})
	if len(r.Series) != 2 {
		t.Fatalf("series count %d", len(r.Series))
	}
	if len(r.Series[0].Points) != 2 || r.Series[0].Name != "a" {
		t.Errorf("series a: %+v", r.Series[0])
	}
}

func TestWriteTableContainsSeriesAndSpeedup(t *testing.T) {
	r := &Result{Title: "demo", XLabel: "threads", Baseline: 1.0}
	r.AddPoint("fast", Point{X: 1, Time: mkSummary(0.5), Bytes: 1 << 20})
	r.AddPoint("fast", Point{X: 2, Time: mkSummary(0.25), Bytes: 2 << 20})
	r.AddPoint("slow", Point{X: 1, Time: mkSummary(2.0)})
	var buf bytes.Buffer
	r.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "threads", "fast", "slow", "2.00x", "0.50x", "1.00MiB", "baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The slow series has no x=2 point: the cell must show "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent point:\n%s", out)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	r := &Result{Title: "demo", XLabel: "x"}
	r.AddPoint("s1", Point{X: 4, Time: mkSummary(0.125), Bytes: 77})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[0] != "series,x,mean_s,min_s,max_s,stddev_s,bytes" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "s1,4,0.125,") || !strings.HasSuffix(lines[1], ",77") {
		t.Errorf("row %q", lines[1])
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:        "0B",
		512:      "512B",
		2048:     "2.00KiB",
		3 << 20:  "3.00MiB",
		5 << 30:  "5.00GiB",
		-1 << 20: "-1.00MiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d)=%q, want %q", in, got, want)
		}
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5e-9:   "5.0ns",
		2.5e-6: "2.50us",
		1e-3:   "1.000ms",
		1.5:    "1.500s",
	}
	for in, want := range cases {
		if got := fmtSeconds(in); got != want {
			t.Errorf("fmtSeconds(%v)=%q, want %q", in, got, want)
		}
	}
}

func mkSummary(mean float64) stats.Summary {
	return stats.Summary{N: 1, Mean: mean, Min: mean, Max: mean, Median: mean}
}

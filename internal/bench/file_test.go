package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"spray/internal/stats"
)

func sampleResults() []*Result {
	r := &Result{Title: "fig11-conv", XLabel: "threads"}
	r.AddPoint("atomic", Point{X: 1, Time: stats.Summary{N: 5, Mean: 0.010, Min: 0.009, Max: 0.011, Median: 0.010, Stddev: 0.0004}})
	r.AddPoint("atomic", Point{X: 2, Time: stats.Summary{N: 5, Mean: 0.006, Min: 0.005, Max: 0.007, Median: 0.006, Stddev: 0.0003}})
	r.AddPoint("keeper", Point{X: 2, Time: stats.Summary{N: 5, Mean: 0.004, Min: 0.004, Max: 0.005, Median: 0.004, Stddev: 0.0002}})
	return []*Result{r}
}

func TestWriteReadRoundTrip(t *testing.T) {
	results := sampleResults()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if f.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", f.Schema, SchemaVersion)
	}
	if f.Legacy() {
		t.Error("fresh file reads as legacy")
	}
	if f.Host != CurrentHost() {
		t.Errorf("host = %+v, want %+v", f.Host, CurrentHost())
	}
	if !reflect.DeepEqual(f.Results, results) {
		t.Errorf("results did not round-trip:\n got %+v\nwant %+v", f.Results, results)
	}
}

func TestReadLegacyBareArray(t *testing.T) {
	results := sampleResults()
	data, err := json.Marshal(results) // pre-envelope writers emitted this
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read legacy: %v", err)
	}
	if f.Schema != 1 || !f.Legacy() {
		t.Errorf("legacy file schema = %d, Legacy = %v", f.Schema, f.Legacy())
	}
	if f.Host != (HostInfo{}) {
		t.Errorf("legacy file has host metadata %+v", f.Host)
	}
	if !reflect.DeepEqual(f.Results, results) {
		t.Error("legacy results did not parse")
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "   \n\t",
		"no schema":     `{"Results":[]}`,
		"future schema": `{"Schema":99,"Results":[]}`,
		"garbage":       `not json`,
		"bad legacy":    `[{"Title":1}]`,
		"negative":      `{"Schema":-3}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s input accepted", name)
		}
	}
}

func TestHostCompatible(t *testing.T) {
	h := CurrentHost()
	if err := h.Compatible(h); err != nil {
		t.Errorf("host incompatible with itself: %v", err)
	}
	other := h
	other.NumCPU++
	err := h.Compatible(other)
	if err == nil {
		t.Fatal("different core counts compatible")
	}
	if !strings.Contains(err.Error(), "host mismatch") {
		t.Errorf("error %q", err)
	}
	if s := h.String(); !strings.Contains(s, h.GOARCH) || !strings.Contains(s, "cpu=") {
		t.Errorf("host string %q", s)
	}
}

// Package bench provides the measurement harness shared by the figure-
// reproduction commands: auto-calibrated repeated timing (in the spirit
// of the Google benchmark library the paper uses), thread-count sweeps,
// and table/CSV rendering of result series.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"spray/internal/stats"
)

// Runner controls measurement: every sample runs the workload enough
// times to exceed MinTime (calibrated once), and Repeats samples are
// collected — the paper repeats runs at least 10 times and reports means.
type Runner struct {
	Repeats int
	MinTime time.Duration
}

// DefaultRunner mirrors the paper's methodology at laptop scale.
func DefaultRunner() Runner { return Runner{Repeats: 5, MinTime: 200 * time.Millisecond} }

// Measure times one invocation of f per sample, Repeats times. Use for
// workloads that are already seconds-scale (LULESH runs).
func (r Runner) Measure(f func()) stats.Summary {
	reps := r.Repeats
	if reps < 1 {
		reps = 1
	}
	samples := make([]time.Duration, reps)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = time.Since(start)
	}
	return stats.OfDurations(samples)
}

// AutoBench calibrates an iteration count so one sample lasts at least
// MinTime, then reports per-iteration seconds over Repeats samples.
// f must run its workload exactly iters times.
func (r Runner) AutoBench(f func(iters int)) stats.Summary {
	minTime := r.MinTime
	if minTime <= 0 {
		minTime = 100 * time.Millisecond
	}
	iters := 1
	for {
		start := time.Now()
		f(iters)
		if el := time.Since(start); el >= minTime || iters >= 1<<30 {
			break
		}
		iters *= 2
	}
	reps := r.Repeats
	if reps < 1 {
		reps = 1
	}
	samples := make([]float64, reps)
	for i := range samples {
		start := time.Now()
		f(iters)
		samples[i] = time.Since(start).Seconds() / float64(iters)
	}
	return stats.Of(samples)
}

// ThreadCounts returns the sweep used throughout the paper's figures —
// 1, 2, 4, 8, 16, 28, 56 — truncated at max (0 keeps the full list).
// On hardware with fewer cores the sweep still runs; oversubscribed
// points measure scheduling and strategy overhead rather than speedup.
func ThreadCounts(max int) []int {
	all := []int{1, 2, 4, 8, 16, 28, 56}
	if max <= 0 {
		return all
	}
	var out []int
	for _, n := range all {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Point is one measured configuration of a series.
type Point struct {
	X     float64 // thread count, block size, ...
	Time  stats.Summary
	Bytes int64 // strategy memory overhead
	// Counters carries the non-zero telemetry counters accumulated while
	// the point was measured (nil when the run was not instrumented).
	// They appear in the JSON output only; the text table and CSV keep
	// their layout.
	Counters map[string]uint64 `json:",omitempty"`
}

// Series is one line of a figure: a named strategy across the sweep.
type Series struct {
	Name   string
	Points []Point
}

// Result is one reproduced figure: several series over a common x-axis
// plus free-form notes (e.g. sequential baseline, substitutions).
type Result struct {
	Title    string
	XLabel   string
	Baseline float64 // sequential reference seconds per op (0 = none)
	Series   []Series
	Notes    []string
}

// AddPoint appends a measurement to the named series, creating it on
// first use.
func (r *Result) AddPoint(series string, p Point) {
	for i := range r.Series {
		if r.Series[i].Name == series {
			r.Series[i].Points = append(r.Series[i].Points, p)
			return
		}
	}
	r.Series = append(r.Series, Series{Name: series, Points: []Point{p}})
}

// WriteTable renders the result as aligned text: one row per x value,
// one time column (and one memory column when any point reports bytes)
// per series. Speedup over the baseline is shown when a baseline exists.
func (r *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	if r.Baseline > 0 {
		fmt.Fprintf(w, "sequential baseline: %s per op\n", fmtSeconds(r.Baseline))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	xs := r.xValues()
	hasMem := r.hasMemory()

	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
		if r.Baseline > 0 {
			header = append(header, "spdup")
		}
		if hasMem {
			header = append(header, "mem")
		}
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range r.Series {
			p, ok := s.point(x)
			if !ok {
				row = append(row, "-")
				if r.Baseline > 0 {
					row = append(row, "-")
				}
				if hasMem {
					row = append(row, "-")
				}
				continue
			}
			row = append(row, fmtSeconds(p.Time.Mean))
			if r.Baseline > 0 {
				row = append(row, fmt.Sprintf("%.2fx", stats.Speedup(r.Baseline, p.Time.Mean)))
			}
			if hasMem {
				row = append(row, FormatBytes(p.Bytes))
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
}

// WriteCSV renders the result as CSV with columns
// series,x,mean_s,min_s,max_s,stddev_s,bytes.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,x,mean_s,min_s,max_s,stddev_s,bytes"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g,%d\n",
				s.Name, p.X, p.Time.Mean, p.Time.Min, p.Time.Max, p.Time.Stddev, p.Bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the result as indented JSON — the machine-readable
// sibling of WriteCSV, used by the CI bench smoke to emit BENCH_bulk.json.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSON writes several results as one indented JSON envelope stamped
// with the schema version and the host the numbers were measured on (see
// File), for commands that bundle multiple figures into a single output
// file consumable by benchdiff.
func WriteJSON(w io.Writer, results []*Result) error {
	return NewFile(results).Write(w)
}

func (s *Series) point(x float64) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

func (r *Result) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func (r *Result) hasMemory() bool {
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Bytes != 0 {
				return true
			}
		}
	}
	return false
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		fmt.Fprintln(w, b.String())
	}
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

// FormatSeconds renders a duration in seconds with a human unit.
func FormatSeconds(s float64) string { return fmtSeconds(s) }

func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.1fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.2fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// FormatBytes renders byte counts with binary units.
func FormatBytes(b int64) string {
	neg := ""
	if b < 0 {
		neg, b = "-", -b
	}
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%s%.2fGiB", neg, float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%s%.2fMiB", neg, float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%s%.2fKiB", neg, float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%s%dB", neg, b)
	}
}

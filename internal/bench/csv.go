package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"spray/internal/stats"
)

// ReadCSV parses a Result previously written by WriteCSV. Title, labels
// and notes are not stored in the CSV and stay empty; the caller sets
// them. Used by cmd/spraycmp to diff two harness runs.
func ReadCSV(r io.Reader) (*Result, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("bench: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty CSV")
	}
	header := rows[0]
	want := []string{"series", "x", "mean_s", "min_s", "max_s", "stddev_s", "bytes"}
	if len(header) != len(want) {
		return nil, fmt.Errorf("bench: unexpected CSV header %v", header)
	}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("bench: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	res := &Result{}
	for line, row := range rows[1:] {
		if len(row) != 7 {
			return nil, fmt.Errorf("bench: CSV line %d has %d fields", line+2, len(row))
		}
		fs := make([]float64, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseFloat(row[1+i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: CSV line %d field %q: %w", line+2, row[1+i], err)
			}
			fs[i] = v
		}
		bytes, err := strconv.ParseInt(row[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: CSV line %d bytes %q: %w", line+2, row[6], err)
		}
		res.AddPoint(row[0], Point{
			X: fs[0],
			Time: stats.Summary{
				N: 1, Mean: fs[1], Min: fs[2], Max: fs[3],
				Median: fs[1], Stddev: fs[4],
			},
			Bytes: bytes,
		})
	}
	return res, nil
}

// CompareRow is one line of a Result comparison.
type CompareRow struct {
	Series    string
	X         float64
	OldMean   float64
	NewMean   float64
	TimeDelta float64 // (new-old)/old, NaN-free: 0 when old == 0
	OldBytes  int64
	NewBytes  int64
	OnlyInOld bool
	OnlyInNew bool
}

// Compare matches the points of two results by (series, x) and returns
// rows for every configuration present in either, in old's order followed
// by new-only series.
func Compare(oldRes, newRes *Result) []CompareRow {
	type key struct {
		s string
		x float64
	}
	newPts := map[key]Point{}
	newSeen := map[key]bool{}
	for _, s := range newRes.Series {
		for _, p := range s.Points {
			newPts[key{s.Name, p.X}] = p
		}
	}
	var rows []CompareRow
	for _, s := range oldRes.Series {
		for _, p := range s.Points {
			k := key{s.Name, p.X}
			row := CompareRow{Series: s.Name, X: p.X, OldMean: p.Time.Mean, OldBytes: p.Bytes}
			if np, ok := newPts[k]; ok {
				newSeen[k] = true
				row.NewMean = np.Time.Mean
				row.NewBytes = np.Bytes
				if p.Time.Mean > 0 {
					row.TimeDelta = (np.Time.Mean - p.Time.Mean) / p.Time.Mean
				}
			} else {
				row.OnlyInOld = true
			}
			rows = append(rows, row)
		}
	}
	for _, s := range newRes.Series {
		for _, p := range s.Points {
			if !newSeen[key{s.Name, p.X}] {
				rows = append(rows, CompareRow{
					Series: s.Name, X: p.X,
					NewMean: p.Time.Mean, NewBytes: p.Bytes, OnlyInNew: true,
				})
			}
		}
	}
	return rows
}

// WriteComparison renders comparison rows as an aligned table.
func WriteComparison(w io.Writer, rows []CompareRow) {
	table := [][]string{{"series", "x", "old", "new", "delta", "old-mem", "new-mem"}}
	for _, r := range rows {
		switch {
		case r.OnlyInOld:
			table = append(table, []string{r.Series, trimFloat(r.X),
				fmtSeconds(r.OldMean), "-", "removed", FormatBytes(r.OldBytes), "-"})
		case r.OnlyInNew:
			table = append(table, []string{r.Series, trimFloat(r.X),
				"-", fmtSeconds(r.NewMean), "added", "-", FormatBytes(r.NewBytes)})
		default:
			table = append(table, []string{r.Series, trimFloat(r.X),
				fmtSeconds(r.OldMean), fmtSeconds(r.NewMean),
				fmt.Sprintf("%+.1f%%", 100*r.TimeDelta),
				FormatBytes(r.OldBytes), FormatBytes(r.NewBytes)})
		}
	}
	writeAligned(w, table)
}

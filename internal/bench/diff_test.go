package bench

import (
	"bytes"
	"strings"
	"testing"

	"spray/internal/stats"
)

// mkFile builds a schema-2 envelope with one figure whose "atomic"
// series has the given means at x = 1, 2, 4 and a uniform stddev.
func mkFile(host HostInfo, means []float64, stddev float64) *File {
	r := &Result{Title: "fig", XLabel: "threads"}
	for i, m := range means {
		r.AddPoint("atomic", Point{
			X:    float64(int(1) << i),
			Time: stats.Summary{N: 5, Mean: m, Min: m, Max: m, Median: m, Stddev: stddev},
		})
	}
	return &File{Schema: SchemaVersion, Host: host, Results: []*Result{r}}
}

func TestDiffIdenticalFilesClean(t *testing.T) {
	h := CurrentHost()
	base := mkFile(h, []float64{0.010, 0.006, 0.004}, 0.0002)
	d, err := DiffFiles(base, mkFile(h, []float64{0.010, 0.006, 0.004}, 0.0002), DiffOptions{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(d.Points) != 3 || d.Regressions() != 0 || d.Improvements() != 0 {
		t.Errorf("points=%d regressed=%d improved=%d", len(d.Points), d.Regressions(), d.Improvements())
	}
	if len(d.OnlyOld)+len(d.OnlyNew) != 0 {
		t.Errorf("unmatched points %v %v", d.OnlyOld, d.OnlyNew)
	}
}

func TestDiffFlagsRegressionBeyondNoise(t *testing.T) {
	h := CurrentHost()
	base := mkFile(h, []float64{0.010, 0.006, 0.004}, 0.0001)
	cand := mkFile(h, []float64{0.010, 0.009, 0.004}, 0.0001) // x=2 is 50% slower
	d, err := DiffFiles(base, cand, DiffOptions{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if d.Regressions() != 1 || d.Improvements() != 0 {
		t.Fatalf("regressed=%d improved=%d", d.Regressions(), d.Improvements())
	}
	// Worst delta sorts first.
	worst := d.Points[0]
	if !worst.Regression || worst.X != 2 || worst.Delta < 0.49 || worst.Delta > 0.51 {
		t.Errorf("worst point %+v", worst)
	}
	var buf bytes.Buffer
	d.WriteTable(&buf)
	if out := buf.String(); !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "1 regressed") {
		t.Errorf("table:\n%s", out)
	}
}

func TestDiffFlagsImprovement(t *testing.T) {
	h := CurrentHost()
	base := mkFile(h, []float64{0.010, 0.006, 0.004}, 0.0001)
	cand := mkFile(h, []float64{0.005, 0.006, 0.004}, 0.0001)
	d, err := DiffFiles(base, cand, DiffOptions{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if d.Regressions() != 0 || d.Improvements() != 1 {
		t.Fatalf("regressed=%d improved=%d", d.Regressions(), d.Improvements())
	}
	// Improvements sort last (most negative delta).
	if last := d.Points[len(d.Points)-1]; !last.Improvement || last.X != 1 {
		t.Errorf("last point %+v", last)
	}
}

func TestDiffNoiseBandAbsorbsJitter(t *testing.T) {
	h := CurrentHost()
	base := mkFile(h, []float64{0.0100}, 0.0005)
	// 4% slower: inside both 3*sqrt(2)*0.0005 and the 5% MinRel floor.
	cand := mkFile(h, []float64{0.0104}, 0.0005)
	d, err := DiffFiles(base, cand, DiffOptions{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if d.Regressions() != 0 {
		t.Errorf("jitter flagged as regression: %+v", d.Points)
	}
	// A tighter custom gate does flag it.
	d, err = DiffFiles(base, cand, DiffOptions{Sigma: 0.1, MinRel: 0.01})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if d.Regressions() != 1 {
		t.Errorf("tight gate missed the move: %+v", d.Points)
	}
}

func TestDiffRefusesIncomparableFiles(t *testing.T) {
	h := CurrentHost()
	base := mkFile(h, []float64{0.01}, 0.0001)
	cand := mkFile(h, []float64{0.01}, 0.0001)

	otherHost := h
	otherHost.GoVersion = "go0.0"
	if _, err := DiffFiles(base, mkFile(otherHost, []float64{0.01}, 0.0001), DiffOptions{}); err == nil {
		t.Error("cross-host diff accepted")
	}

	legacy := mkFile(h, []float64{0.01}, 0.0001)
	legacy.Schema = 1
	legacy.Host = HostInfo{}
	if _, err := DiffFiles(legacy, cand, DiffOptions{}); err == nil {
		t.Error("legacy baseline accepted")
	}
	if _, err := DiffFiles(base, legacy, DiffOptions{}); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDiffReportsUnmatchedPoints(t *testing.T) {
	h := CurrentHost()
	base := mkFile(h, []float64{0.010, 0.006}, 0.0001)
	cand := mkFile(h, []float64{0.010}, 0.0001)
	cand.Results[0].AddPoint("keeper", Point{X: 1, Time: stats.Summary{N: 5, Mean: 0.002}})
	d, err := DiffFiles(base, cand, DiffOptions{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(d.Points) != 1 {
		t.Errorf("shared points = %d, want 1", len(d.Points))
	}
	if len(d.OnlyOld) != 1 || !strings.Contains(d.OnlyOld[0], "atomic @ 2") {
		t.Errorf("OnlyOld %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || !strings.Contains(d.OnlyNew[0], "keeper") {
		t.Errorf("OnlyNew %v", d.OnlyNew)
	}
	var buf bytes.Buffer
	d.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "only in baseline") || !strings.Contains(out, "only in candidate") {
		t.Errorf("table:\n%s", out)
	}
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// SchemaVersion identifies the layout of the JSON files written by
// WriteJSON. Version 1 was a bare []*Result array with no metadata;
// version 2 wraps the results in a File envelope stamped with the schema
// number and the host the numbers were measured on, so the regression
// gate can refuse to compare runs that are not comparable.
const SchemaVersion = 2

// HostInfo records the machine configuration a benchmark file was
// produced on. Two files are only comparable when every field matches:
// a different core count, Go release or architecture shifts the numbers
// for reasons that have nothing to do with the code under test.
type HostInfo struct {
	GOOS       string
	GOARCH     string
	GoVersion  string
	NumCPU     int
	GOMAXPROCS int
}

// CurrentHost captures the running process's host configuration.
func CurrentHost() HostInfo {
	return HostInfo{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Compatible reports whether results measured on h can be meaningfully
// compared against results measured on other.
func (h HostInfo) Compatible(other HostInfo) error {
	if h == other {
		return nil
	}
	return fmt.Errorf("bench: host mismatch: %s vs %s", h, other)
}

func (h HostInfo) String() string {
	return fmt.Sprintf("%s/%s %s cpu=%d maxprocs=%d",
		h.GOOS, h.GOARCH, h.GoVersion, h.NumCPU, h.GOMAXPROCS)
}

// File is the schema-versioned envelope around a set of benchmark
// results — what WriteJSON writes and ReadJSON returns.
type File struct {
	Schema  int
	Host    HostInfo
	Results []*Result
}

// NewFile wraps results in an envelope stamped with the current schema
// version and host.
func NewFile(results []*Result) *File {
	return &File{Schema: SchemaVersion, Host: CurrentHost(), Results: results}
}

// Legacy reports whether the file predates the envelope (a bare version-1
// array carrying no host metadata).
func (f *File) Legacy() bool { return f.Schema < SchemaVersion }

// ReadJSON parses a benchmark file written by WriteJSON. Version-1 files
// (a bare JSON array of results) are still accepted and surface as a
// File with Schema 1 and zero Host, so callers can detect and refuse —
// or migrate — them explicitly.
func ReadJSON(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("bench: empty benchmark file")
	}
	if trimmed[0] == '[' { // schema 1: bare result array
		var results []*Result
		if err := json.Unmarshal(trimmed, &results); err != nil {
			return nil, fmt.Errorf("bench: parsing legacy result array: %w", err)
		}
		return &File{Schema: 1, Results: results}, nil
	}
	var f File
	if err := json.Unmarshal(trimmed, &f); err != nil {
		return nil, fmt.Errorf("bench: parsing benchmark file: %w", err)
	}
	if f.Schema < 1 {
		return nil, fmt.Errorf("bench: benchmark file has no schema version")
	}
	if f.Schema > SchemaVersion {
		return nil, fmt.Errorf("bench: benchmark file has schema %d, this binary understands up to %d", f.Schema, SchemaVersion)
	}
	return &f, nil
}

// ReadFile is ReadJSON over a path.
func ReadFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	file, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return file, nil
}

// Write writes the envelope as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

package hexelem

import (
	"math"
	"testing"
)

// The deep validation of these operators (finite-difference derivative
// checks, invariances, hourglass orthogonality) lives in
// internal/lulesh/elem_test.go, which exercises them through the LULESH
// bindings; this file covers the exported API directly.

func cube() (x, y, z [8]float64) {
	x = [8]float64{0, 1, 1, 0, 0, 1, 1, 0}
	y = [8]float64{0, 0, 1, 1, 0, 0, 1, 1}
	z = [8]float64{0, 0, 0, 0, 1, 1, 1, 1}
	return
}

func TestVolumeAndJacobianAgreeOnCube(t *testing.T) {
	x, y, z := cube()
	var b [3][8]float64
	vj := ShapeFunctionDerivatives(&x, &y, &z, &b)
	ve := Volume(&x, &y, &z)
	if math.Abs(vj-1) > 1e-12 || math.Abs(ve-1) > 1e-12 {
		t.Errorf("volumes %v %v", vj, ve)
	}
}

func TestBMatrixPartitionOfNothing(t *testing.T) {
	// Shape-function derivative weights sum to zero per dimension
	// (translating the element does not change its volume).
	x, y, z := cube()
	for i := range x {
		x[i] += 0.1 * y[i] // shear to make it non-trivial
	}
	var b [3][8]float64
	ShapeFunctionDerivatives(&x, &y, &z, &b)
	for dim := 0; dim < 3; dim++ {
		var s float64
		for i := 0; i < 8; i++ {
			s += b[dim][i]
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("dim %d weights sum to %v", dim, s)
		}
	}
}

func TestVolumeDerivativeSumZero(t *testing.T) {
	x, y, z := cube()
	var dvdx, dvdy, dvdz [8]float64
	VolumeDerivative(&x, &y, &z, &dvdx, &dvdy, &dvdz)
	var sx, sy, sz float64
	for i := 0; i < 8; i++ {
		sx += dvdx[i]
		sy += dvdy[i]
		sz += dvdz[i]
	}
	if math.Abs(sx)+math.Abs(sy)+math.Abs(sz) > 1e-12 {
		t.Errorf("derivative sums %v %v %v", sx, sy, sz)
	}
}

func TestCharacteristicLengthAndGradient(t *testing.T) {
	x, y, z := cube()
	if l := CharacteristicLength(&x, &y, &z, 1); math.Abs(l-1) > 1e-12 {
		t.Errorf("length %v", l)
	}
	var b [3][8]float64
	detJ := ShapeFunctionDerivatives(&x, &y, &z, &b)
	var xd, yd, zd [8]float64
	for i := range xd {
		xd[i] = 2 * x[i]
	}
	dxx, dyy, dzz := VelocityGradient(&xd, &yd, &zd, &b, detJ)
	if math.Abs(dxx-2) > 1e-12 || dyy != 0 || dzz != 0 {
		t.Errorf("gradient %v %v %v", dxx, dyy, dzz)
	}
}

func TestHourglassGammaOrthogonalToConstants(t *testing.T) {
	for i, g := range HourglassGamma {
		var s float64
		for _, v := range g {
			s += v
		}
		if s != 0 {
			t.Errorf("gamma[%d] sums to %v", i, s)
		}
	}
}

// Package hexelem provides the per-element geometry operators for
// trilinear hexahedra, ported from LULESH 2.0 and shared by the LULESH
// proxy application (internal/lulesh) and the FEM assembly substrate
// (internal/fem): shape-function derivatives (the mean-quadrature "B
// matrix"), exact element volume and its corner derivatives, the
// Flanagan-Belytschko hourglass operators, the element characteristic
// length and the velocity gradient. Everything is validated against
// finite differences and invariance properties in the test suites.
package hexelem

import "math"

// ShapeFunctionDerivatives computes the mean-quadrature "B
// matrix" (nodal derivative weights b[0..2][8]) and the Jacobian-based
// element volume for the hexahedron with corner coordinates x, y, z.
// Straight port of LULESH CalcElemShapeFunctionDerivatives.
func ShapeFunctionDerivatives(x, y, z *[8]float64, b *[3][8]float64) (volume float64) {
	fjxxi := .125 * ((x[6] - x[0]) + (x[5] - x[3]) - (x[7] - x[1]) - (x[4] - x[2]))
	fjxet := .125 * ((x[6] - x[0]) - (x[5] - x[3]) + (x[7] - x[1]) - (x[4] - x[2]))
	fjxze := .125 * ((x[6] - x[0]) + (x[5] - x[3]) + (x[7] - x[1]) + (x[4] - x[2]))

	fjyxi := .125 * ((y[6] - y[0]) + (y[5] - y[3]) - (y[7] - y[1]) - (y[4] - y[2]))
	fjyet := .125 * ((y[6] - y[0]) - (y[5] - y[3]) + (y[7] - y[1]) - (y[4] - y[2]))
	fjyze := .125 * ((y[6] - y[0]) + (y[5] - y[3]) + (y[7] - y[1]) + (y[4] - y[2]))

	fjzxi := .125 * ((z[6] - z[0]) + (z[5] - z[3]) - (z[7] - z[1]) - (z[4] - z[2]))
	fjzet := .125 * ((z[6] - z[0]) - (z[5] - z[3]) + (z[7] - z[1]) - (z[4] - z[2]))
	fjzze := .125 * ((z[6] - z[0]) + (z[5] - z[3]) + (z[7] - z[1]) + (z[4] - z[2]))

	// Cofactors of the Jacobian.
	cjxxi := fjyet*fjzze - fjzet*fjyze
	cjxet := -fjyxi*fjzze + fjzxi*fjyze
	cjxze := fjyxi*fjzet - fjzxi*fjyet

	cjyxi := -fjxet*fjzze + fjzet*fjxze
	cjyet := fjxxi*fjzze - fjzxi*fjxze
	cjyze := -fjxxi*fjzet + fjzxi*fjxet

	cjzxi := fjxet*fjyze - fjyet*fjxze
	cjzet := -fjxxi*fjyze + fjyxi*fjxze
	cjzze := fjxxi*fjyet - fjyxi*fjxet

	// Partials of the shape functions at the element center.
	b[0][0] = -cjxxi - cjxet - cjxze
	b[0][1] = cjxxi - cjxet - cjxze
	b[0][2] = cjxxi + cjxet - cjxze
	b[0][3] = -cjxxi + cjxet - cjxze
	b[0][4] = -b[0][2]
	b[0][5] = -b[0][3]
	b[0][6] = -b[0][0]
	b[0][7] = -b[0][1]

	b[1][0] = -cjyxi - cjyet - cjyze
	b[1][1] = cjyxi - cjyet - cjyze
	b[1][2] = cjyxi + cjyet - cjyze
	b[1][3] = -cjyxi + cjyet - cjyze
	b[1][4] = -b[1][2]
	b[1][5] = -b[1][3]
	b[1][6] = -b[1][0]
	b[1][7] = -b[1][1]

	b[2][0] = -cjzxi - cjzet - cjzze
	b[2][1] = cjzxi - cjzet - cjzze
	b[2][2] = cjzxi + cjzet - cjzze
	b[2][3] = -cjzxi + cjzet - cjzze
	b[2][4] = -b[2][2]
	b[2][5] = -b[2][3]
	b[2][6] = -b[2][0]
	b[2][7] = -b[2][1]

	return 8 * (fjxet*cjxet + fjyet*cjyet + fjzet*cjzet)
}

// SumStressesToNodeForces turns the element's (diagonal) stress into
// corner forces through the B matrix. Port of LULESH
// SumElemStressesToNodeForces.
func SumStressesToNodeForces(b *[3][8]float64, sigxx, sigyy, sigzz float64, fx, fy, fz *[8]float64) {
	for i := 0; i < 8; i++ {
		fx[i] = -sigxx * b[0][i]
		fy[i] = -sigyy * b[1][i]
		fz[i] = -sigzz * b[2][i]
	}
}

func tripleProduct(x1, y1, z1, x2, y2, z2, x3, y3, z3 float64) float64 {
	return x1*(y2*z3-z2*y3) + x2*(z1*y3-y1*z3) + x3*(y1*z2-z1*y2)
}

// Volume computes the exact volume of a trilinear hexahedron.
// Port of LULESH CalcElemVolume.
func Volume(x, y, z *[8]float64) float64 {
	dx61 := x[6] - x[1]
	dy61 := y[6] - y[1]
	dz61 := z[6] - z[1]

	dx70 := x[7] - x[0]
	dy70 := y[7] - y[0]
	dz70 := z[7] - z[0]

	dx63 := x[6] - x[3]
	dy63 := y[6] - y[3]
	dz63 := z[6] - z[3]

	dx20 := x[2] - x[0]
	dy20 := y[2] - y[0]
	dz20 := z[2] - z[0]

	dx50 := x[5] - x[0]
	dy50 := y[5] - y[0]
	dz50 := z[5] - z[0]

	dx64 := x[6] - x[4]
	dy64 := y[6] - y[4]
	dz64 := z[6] - z[4]

	dx31 := x[3] - x[1]
	dy31 := y[3] - y[1]
	dz31 := z[3] - z[1]

	dx72 := x[7] - x[2]
	dy72 := y[7] - y[2]
	dz72 := z[7] - z[2]

	dx43 := x[4] - x[3]
	dy43 := y[4] - y[3]
	dz43 := z[4] - z[3]

	dx57 := x[5] - x[7]
	dy57 := y[5] - y[7]
	dz57 := z[5] - z[7]

	dx14 := x[1] - x[4]
	dy14 := y[1] - y[4]
	dz14 := z[1] - z[4]

	dx25 := x[2] - x[5]
	dy25 := y[2] - y[5]
	dz25 := z[2] - z[5]

	volume := tripleProduct(dx31+dx72, dx63, dx20,
		dy31+dy72, dy63, dy20,
		dz31+dz72, dz63, dz20) +
		tripleProduct(dx43+dx57, dx64, dx70,
			dy43+dy57, dy64, dy70,
			dz43+dz57, dz64, dz70) +
		tripleProduct(dx14+dx25, dx61, dx50,
			dy14+dy25, dy61, dy50,
			dz14+dz25, dz61, dz50)
	return volume / 12
}

// voluDer is the LULESH VoluDer helper: the partial derivative of the hex
// volume with respect to one corner, given six neighboring corners in the
// order LULESH passes them.
func voluDer(x0, x1, x2, x3, x4, x5,
	y0, y1, y2, y3, y4, y5,
	z0, z1, z2, z3, z4, z5 float64) (dvdx, dvdy, dvdz float64) {
	dvdx = (y1+y2)*(z0+z1) - (y0+y1)*(z1+z2) +
		(y0+y4)*(z3+z4) - (y3+y4)*(z0+z4) -
		(y2+y5)*(z3+z5) + (y3+y5)*(z2+z5)
	dvdy = -(x1+x2)*(z0+z1) + (x0+x1)*(z1+z2) -
		(x0+x4)*(z3+z4) + (x3+x4)*(z0+z4) +
		(x2+x5)*(z3+z5) - (x3+x5)*(z2+z5)
	dvdz = -(y1+y2)*(x0+x1) + (y0+y1)*(x1+x2) -
		(y0+y4)*(x3+x4) + (y3+y4)*(x0+x4) +
		(y2+y5)*(x3+x5) - (y3+y5)*(x2+x5)
	return dvdx / 12, dvdy / 12, dvdz / 12
}

// VolumeDerivative computes ∂V/∂(corner coordinates) for all
// eight corners. Port of LULESH CalcElemVolumeDerivative.
func VolumeDerivative(x, y, z *[8]float64, dvdx, dvdy, dvdz *[8]float64) {
	dvdx[0], dvdy[0], dvdz[0] = voluDer(
		x[1], x[2], x[3], x[4], x[5], x[7],
		y[1], y[2], y[3], y[4], y[5], y[7],
		z[1], z[2], z[3], z[4], z[5], z[7])
	dvdx[3], dvdy[3], dvdz[3] = voluDer(
		x[0], x[1], x[2], x[7], x[4], x[6],
		y[0], y[1], y[2], y[7], y[4], y[6],
		z[0], z[1], z[2], z[7], z[4], z[6])
	dvdx[2], dvdy[2], dvdz[2] = voluDer(
		x[3], x[0], x[1], x[6], x[7], x[5],
		y[3], y[0], y[1], y[6], y[7], y[5],
		z[3], z[0], z[1], z[6], z[7], z[5])
	dvdx[1], dvdy[1], dvdz[1] = voluDer(
		x[2], x[3], x[0], x[5], x[6], x[4],
		y[2], y[3], y[0], y[5], y[6], y[4],
		z[2], z[3], z[0], z[5], z[6], z[4])
	dvdx[4], dvdy[4], dvdz[4] = voluDer(
		x[7], x[6], x[5], x[0], x[3], x[1],
		y[7], y[6], y[5], y[0], y[3], y[1],
		z[7], z[6], z[5], z[0], z[3], z[1])
	dvdx[5], dvdy[5], dvdz[5] = voluDer(
		x[4], x[7], x[6], x[1], x[0], x[2],
		y[4], y[7], y[6], y[1], y[0], y[2],
		z[4], z[7], z[6], z[1], z[0], z[2])
	dvdx[6], dvdy[6], dvdz[6] = voluDer(
		x[5], x[4], x[7], x[2], x[1], x[3],
		y[5], y[4], y[7], y[2], y[1], y[3],
		z[5], z[4], z[7], z[2], z[1], z[3])
	dvdx[7], dvdy[7], dvdz[7] = voluDer(
		x[6], x[5], x[4], x[3], x[2], x[0],
		y[6], y[5], y[4], y[3], y[2], y[0],
		z[6], z[5], z[4], z[3], z[2], z[0])
}

// VelocityGradient computes the principal (diagonal) components
// of the velocity gradient tensor at the element center from the shape
// function derivatives b and the Jacobian volume detJ. Port of LULESH
// CalcElemVelocityGradient (the shear components are unused by the
// mini-port, as LULESH's volume strain rate only needs the trace).
func VelocityGradient(xd, yd, zd *[8]float64, b *[3][8]float64, detJ float64) (dxx, dyy, dzz float64) {
	inv := 1.0 / detJ
	pfx, pfy, pfz := &b[0], &b[1], &b[2]
	dxx = inv * (pfx[0]*(xd[0]-xd[6]) + pfx[1]*(xd[1]-xd[7]) +
		pfx[2]*(xd[2]-xd[4]) + pfx[3]*(xd[3]-xd[5]))
	dyy = inv * (pfy[0]*(yd[0]-yd[6]) + pfy[1]*(yd[1]-yd[7]) +
		pfy[2]*(yd[2]-yd[4]) + pfy[3]*(yd[3]-yd[5]))
	dzz = inv * (pfz[0]*(zd[0]-zd[6]) + pfz[1]*(zd[1]-zd[7]) +
		pfz[2]*(zd[2]-zd[4]) + pfz[3]*(zd[3]-zd[5]))
	return dxx, dyy, dzz
}

// HourglassGamma holds the four Flanagan–Belytschko hourglass base
// vectors over the eight corners.
var HourglassGamma = [4][8]float64{
	{1, 1, -1, -1, -1, -1, 1, 1},
	{1, -1, -1, 1, -1, 1, 1, -1},
	{1, -1, 1, -1, 1, -1, 1, -1},
	{-1, 1, -1, 1, 1, -1, 1, -1},
}

// HourglassForce computes the Flanagan–Belytschko hourglass
// resistance corner forces for one element: hourgam are the volume-
// orthogonalized hourglass shape vectors, xd/yd/zd the corner velocities,
// coefficient the damping coefficient. Port of LULESH
// CalcElemFBHourglassForce.
func HourglassForce(xd, yd, zd *[8]float64, hourgam *[8][4]float64, coefficient float64,
	hgfx, hgfy, hgfz *[8]float64) {
	var hx, hy, hz [4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			hx[i] += hourgam[j][i] * xd[j]
			hy[i] += hourgam[j][i] * yd[j]
			hz[i] += hourgam[j][i] * zd[j]
		}
	}
	for i := 0; i < 8; i++ {
		var sx, sy, sz float64
		for j := 0; j < 4; j++ {
			sx += hourgam[i][j] * hx[j]
			sy += hourgam[i][j] * hy[j]
			sz += hourgam[i][j] * hz[j]
		}
		hgfx[i] = coefficient * sx
		hgfy[i] = coefficient * sy
		hgfz[i] = coefficient * sz
	}
}

// areaFace returns the squared-area quantity LULESH uses for the element
// characteristic length of one quadrilateral face.
func areaFace(x0, x1, x2, x3, y0, y1, y2, y3, z0, z1, z2, z3 float64) float64 {
	fx := (x2 - x0) - (x3 - x1)
	fy := (y2 - y0) - (y3 - y1)
	fz := (z2 - z0) - (z3 - z1)
	gx := (x2 - x0) + (x3 - x1)
	gy := (y2 - y0) + (y3 - y1)
	gz := (z2 - z0) + (z3 - z1)
	return (fx*fx+fy*fy+fz*fz)*(gx*gx+gy*gy+gz*gz) - math.Pow(fx*gx+fy*gy+fz*gz, 2)
}

// CharacteristicLength returns the element characteristic length
// used by the Courant condition. Port of LULESH
// CalcElemCharacteristicLength.
func CharacteristicLength(x, y, z *[8]float64, volume float64) float64 {
	var charLength float64
	faces := [6][4]int{
		{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 5, 4},
		{1, 2, 6, 5}, {2, 3, 7, 6}, {3, 0, 4, 7},
	}
	for _, f := range faces {
		a := areaFace(
			x[f[0]], x[f[1]], x[f[2]], x[f[3]],
			y[f[0]], y[f[1]], y[f[2]], y[f[3]],
			z[f[0]], z[f[1]], z[f[2]], z[f[3]])
		if a > charLength {
			charLength = a
		}
	}
	return 4 * volume / math.Sqrt(charLength)
}

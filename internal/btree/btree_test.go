package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[float64](0)
	if tr.Len() != 0 {
		t.Errorf("Len=%d", tr.Len())
	}
	if _, ok := tr.Get(5); ok {
		t.Error("Get on empty tree found a key")
	}
	tr.Each(func(int32, float64) { t.Error("Each visited on empty tree") })
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnDegreeOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1) did not panic")
		}
	}()
	New[float64](1)
}

func TestAccumulateInsertAndAdd(t *testing.T) {
	tr := New[float64](2)
	Add(tr, 7, 1.5)
	Add(tr, 7, 2.5)
	Add(tr, 3, 1)
	if tr.Len() != 2 {
		t.Errorf("Len=%d, want 2", tr.Len())
	}
	if v, ok := tr.Get(7); !ok || v != 4 {
		t.Errorf("Get(7)=%v,%v", v, ok)
	}
	if v, ok := tr.Get(3); !ok || v != 1 {
		t.Errorf("Get(3)=%v,%v", v, ok)
	}
	if _, ok := tr.Get(5); ok {
		t.Error("Get(5) found phantom key")
	}
}

// fill inserts n random keys (with duplicates) and returns the reference
// accumulation.
func fill(tr *Tree[float64], rng *rand.Rand, n, keyRange int) map[int32]float64 {
	ref := map[int32]float64{}
	for i := 0; i < n; i++ {
		k := int32(rng.Intn(keyRange))
		v := rng.Float64()*2 - 1
		Add(tr, k, v)
		ref[k] += v
	}
	return ref
}

func TestAgainstMapReference(t *testing.T) {
	for _, degree := range []int{2, 3, 8, 16, 64} {
		rng := rand.New(rand.NewSource(int64(degree)))
		tr := New[float64](degree)
		ref := fill(tr, rng, 5000, 800)
		if tr.Len() != len(ref) {
			t.Fatalf("degree %d: Len=%d, want %d", degree, tr.Len(), len(ref))
		}
		for k, want := range ref {
			if got, ok := tr.Get(k); !ok || got != want {
				t.Fatalf("degree %d: Get(%d)=%v,%v want %v", degree, k, got, ok, want)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
	}
}

func TestEachAscendingAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[float64](3)
	ref := fill(tr, rng, 3000, 500)
	var keys []int32
	sum := 0.0
	tr.Each(func(k int32, v float64) {
		keys = append(keys, k)
		sum += v
		if v != ref[k] {
			t.Errorf("Each(%d)=%v, want %v", k, v, ref[k])
		}
	})
	if len(keys) != len(ref) {
		t.Fatalf("Each visited %d keys, want %d", len(keys), len(ref))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("Each keys not ascending")
	}
}

func TestInvariantsPropertyRandomWorkloads(t *testing.T) {
	f := func(seed int64, nRaw uint16, degRaw uint8) bool {
		degree := int(degRaw)%30 + 2
		n := int(nRaw) % 2000
		rng := rand.New(rand.NewSource(seed))
		tr := New[float64](degree)
		ref := fill(tr, rng, n, 300)
		if tr.CheckInvariants() != nil || tr.Len() != len(ref) {
			return false
		}
		// spot-check a few keys
		for k := int32(0); k < 300; k += 17 {
			want, inRef := ref[k]
			got, inTree := tr.Get(k)
			if inRef != inTree || (inRef && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicInsertTriggersRightmostSplits(t *testing.T) {
	tr := New[float64](2)
	for i := int32(0); i < 1000; i++ {
		Add(tr, i, float64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	tr.Each(func(k int32, v float64) {
		if k != prev+1 || v != float64(k) {
			t.Fatalf("Each out of order at %d (prev %d, v %v)", k, prev, v)
		}
		prev = k
	})
}

func TestDescendingInsert(t *testing.T) {
	tr := New[float64](2)
	for i := int32(999); i >= 0; i-- {
		Add(tr, i, 1)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Errorf("Len=%d", tr.Len())
	}
}

func TestKeyEqualsMedianAfterSplit(t *testing.T) {
	// Regression guard for the root-split path where the searched key
	// equals the key moved up into the parent.
	tr := New[float64](2) // max 3 keys per node: splits happen early
	for _, k := range []int32{10, 20, 30, 40, 50, 20, 40, 10, 30} {
		Add(tr, k, 1)
	}
	for _, k := range []int32{10, 30} {
		if v, _ := tr.Get(k); v != 2 {
			t.Errorf("Get(%d)=%v, want 2", k, v)
		}
	}
	if v, _ := tr.Get(20); v != 2 {
		t.Errorf("Get(20)=%v, want 2", v)
	}
}

func TestResetAndBytes(t *testing.T) {
	tr := New[float64](4)
	if tr.Bytes() != 0 {
		t.Errorf("fresh tree Bytes=%d", tr.Bytes())
	}
	for i := int32(0); i < 500; i++ {
		Add(tr, i, 1)
	}
	if tr.Bytes() <= 0 {
		t.Error("Bytes did not grow")
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Bytes() != 0 {
		t.Errorf("after Reset: Len=%d Bytes=%d", tr.Len(), tr.Bytes())
	}
	Add(tr, 5, 2) // usable after reset
	if v, ok := tr.Get(5); !ok || v != 2 {
		t.Errorf("after reset Get(5)=%v,%v", v, ok)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New[float64](3)
	for _, k := range []int32{-5, 3, -100, 0, 7, -5} {
		Add(tr, k, 1)
	}
	if v, _ := tr.Get(-5); v != 2 {
		t.Errorf("Get(-5)=%v", v)
	}
	var prev int32 = -1 << 30
	tr.Each(func(k int32, _ float64) {
		if k <= prev {
			t.Errorf("order violated: %d after %d", k, prev)
		}
		prev = k
	})
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFloat32Tree(t *testing.T) {
	tr := New[float32](4)
	Add(tr, 1, 0.5)
	Add(tr, 1, 0.25)
	if v, _ := tr.Get(1); v != 0.75 {
		t.Errorf("float32 Get=%v", v)
	}
}

func BenchmarkAccumulateRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int32, 1<<14)
	for i := range keys {
		keys[i] = int32(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	tr := New[float64](16)
	for i := 0; i < b.N; i++ {
		Add(tr, keys[i&(len(keys)-1)], 1.0)
	}
}

// Package btree implements a from-scratch in-memory B-tree keyed by array
// indices, specialized for the accumulate-into-key access pattern of the
// paper's B-tree MapReduction variant: the only mutating operation is
// "add v to the value stored under key k, inserting k if absent". Keys are
// iterated in ascending order at merge time so the fix-up sweep over the
// original array is cache-friendly.
package btree

import (
	"fmt"
	"unsafe"
)

// DefaultDegree is the minimum degree (t in CLRS terms) used when 0 is
// passed to New: nodes hold between DefaultDegree-1 and 2*DefaultDegree-1
// keys. 16 keeps nodes near a cache line pair for 4-byte keys.
const DefaultDegree = 16

// Tree is a B-tree from int32 array indices to accumulated values. The
// zero value is not usable; call New.
type Tree[T any] struct {
	root   *node[T]
	degree int
	length int
	bytes  int64
}

type node[T any] struct {
	keys     []int32
	vals     []T
	children []*node[T] // nil iff leaf
}

// New creates an empty tree with the given minimum degree (>= 2); degree
// <= 0 selects DefaultDegree.
func New[T any](degree int) *Tree[T] {
	if degree <= 0 {
		degree = DefaultDegree
	}
	if degree < 2 {
		panic(fmt.Sprintf("btree: minimum degree must be >= 2, got %d", degree))
	}
	return &Tree[T]{degree: degree}
}

// Len returns the number of distinct keys stored.
func (t *Tree[T]) Len() int { return t.length }

// Bytes returns an estimate of the heap memory owned by the tree's nodes,
// used for the memory-overhead accounting of the B-tree reducer.
func (t *Tree[T]) Bytes() int64 { return t.bytes }

func (t *Tree[T]) maxKeys() int { return 2*t.degree - 1 }

func (t *Tree[T]) newNode(leaf bool) *node[T] {
	n := &node[T]{
		keys: make([]int32, 0, t.maxKeys()),
		vals: make([]T, 0, t.maxKeys()),
	}
	var v T
	t.bytes += int64(t.maxKeys()) * (4 + int64(unsafe.Sizeof(v)))
	if !leaf {
		n.children = make([]*node[T], 0, t.maxKeys()+1)
		t.bytes += int64(t.maxKeys()+1) * 8
	}
	return n
}

// search returns the position of key in n.keys, or the child index to
// descend into and found=false.
func (n *node[T]) search(key int32) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// Accumulate applies add to the value under key, inserting the zero value
// first if the key is absent. add typically performs "+=". This is the
// single operation the MapReduction reducer needs.
func (t *Tree[T]) Accumulate(key int32, add func(*T)) {
	if t.root == nil {
		t.root = t.newNode(true)
	}
	if len(t.root.keys) == t.maxKeys() {
		// Preemptive root split keeps the downward pass single-visit.
		old := t.root
		t.root = t.newNode(false)
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, add)
}

// Add is Accumulate specialized to numeric addition via the caller's
// closure-free fast path; kept as a tiny helper for tests.
func Add[T interface{ ~float32 | ~float64 }](t *Tree[T], key int32, v T) {
	t.Accumulate(key, func(p *T) { *p += v })
}

func (t *Tree[T]) insertNonFull(n *node[T], key int32, add func(*T)) {
	for {
		i, found := n.search(key)
		if found {
			add(&n.vals[i])
			return
		}
		if n.children == nil { // leaf: insert here
			n.keys = append(n.keys, 0)
			n.vals = append(n.vals, *new(T))
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			var zero T
			n.vals[i] = zero
			add(&n.vals[i])
			t.length++
			return
		}
		child := n.children[i]
		if len(child.keys) == t.maxKeys() {
			t.splitChild(n, i)
			// The median key moved up into n at position i; re-decide.
			if key == n.keys[i] {
				add(&n.vals[i])
				return
			}
			if key > n.keys[i] {
				child = n.children[i+1]
			} else {
				child = n.children[i]
			}
		}
		n = child
	}
}

// splitChild splits the full child at index i of parent p, moving the
// median key up into p.
func (t *Tree[T]) splitChild(p *node[T], i int) {
	child := p.children[i]
	mid := t.degree - 1
	right := t.newNode(child.children == nil)
	right.keys = append(right.keys, child.keys[mid+1:]...)
	right.vals = append(right.vals, child.vals[mid+1:]...)
	if child.children != nil {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	medKey, medVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	p.keys = append(p.keys, 0)
	p.vals = append(p.vals, *new(T))
	copy(p.keys[i+1:], p.keys[i:])
	copy(p.vals[i+1:], p.vals[i:])
	p.keys[i] = medKey
	p.vals[i] = medVal
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

// Get returns the value stored under key and whether it is present.
func (t *Tree[T]) Get(key int32) (T, bool) {
	n := t.root
	for n != nil {
		i, found := n.search(key)
		if found {
			return n.vals[i], true
		}
		if n.children == nil {
			break
		}
		n = n.children[i]
	}
	var zero T
	return zero, false
}

// Each visits all key/value pairs in ascending key order.
func (t *Tree[T]) Each(visit func(key int32, val T)) {
	t.root.each(visit)
}

func (n *node[T]) each(visit func(int32, T)) {
	if n == nil {
		return
	}
	for i, k := range n.keys {
		if n.children != nil {
			n.children[i].each(visit)
		}
		visit(k, n.vals[i])
	}
	if n.children != nil {
		n.children[len(n.keys)].each(visit)
	}
}

// Reset drops all entries but keeps the tree usable.
func (t *Tree[T]) Reset() {
	t.root = nil
	t.length = 0
	t.bytes = 0
}

// CheckInvariants validates the B-tree structural invariants (key order,
// node fill bounds, uniform leaf depth) and returns a descriptive error on
// the first violation. Used by the property-based tests.
func (t *Tree[T]) CheckInvariants() error {
	if t.root == nil {
		if t.length != 0 {
			return fmt.Errorf("btree: nil root but length %d", t.length)
		}
		return nil
	}
	depth := -1
	count := 0
	var walk func(n *node[T], lo, hi int64, level int, isRoot bool) error
	walk = func(n *node[T], lo, hi int64, level int, isRoot bool) error {
		if len(n.keys) > t.maxKeys() {
			return fmt.Errorf("btree: node with %d keys exceeds max %d", len(n.keys), t.maxKeys())
		}
		if !isRoot && len(n.keys) < t.degree-1 {
			return fmt.Errorf("btree: non-root node with %d keys below min %d", len(n.keys), t.degree-1)
		}
		if len(n.keys) != len(n.vals) {
			return fmt.Errorf("btree: keys/vals length mismatch %d/%d", len(n.keys), len(n.vals))
		}
		for i, k := range n.keys {
			if int64(k) <= lo || int64(k) >= hi {
				return fmt.Errorf("btree: key %d outside (%d,%d)", k, lo, hi)
			}
			if i > 0 && n.keys[i-1] >= k {
				return fmt.Errorf("btree: keys not strictly ascending: %d >= %d", n.keys[i-1], k)
			}
		}
		count += len(n.keys)
		if n.children == nil {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, level)
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
		}
		childLo := lo
		for i, c := range n.children {
			childHi := hi
			if i < len(n.keys) {
				childHi = int64(n.keys[i])
			}
			if err := walk(c, childLo, childHi, level+1, false); err != nil {
				return err
			}
			if i < len(n.keys) {
				childLo = int64(n.keys[i])
			}
		}
		return nil
	}
	if err := walk(t.root, -1<<40, 1<<40, 0, true); err != nil {
		return err
	}
	if count != t.length {
		return fmt.Errorf("btree: counted %d keys, length says %d", count, t.length)
	}
	return nil
}

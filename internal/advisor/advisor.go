// Package advisor analyzes a sparse reduction's access pattern and
// recommends a SPRAY strategy. The paper's motivation section argues that
// the best scheme "depends on the hardware, application, and input data"
// and its outlook asks for machinery that moves the choice away from the
// user; the Auto strategy adapts online, while this package is the
// offline complement: record one representative region with a Recorder,
// then read off density, conflict and locality metrics and a recommended
// strategy with a human-readable justification.
package advisor

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"spray"
)

// Recorder captures which (thread, index) updates one parallel region
// performs. It implements the spray.Accessor contract (Add/Done) so a
// workload's loop body can run against it unchanged, one Recorder per
// thread via Tape.
type Recorder struct {
	n       int
	threads int
	tapes   []tape
	block   int
	shift   uint
}

type tape struct {
	updates int
	touched map[int32]int // index -> update count
}

// NewRecorder prepares to record a region over an array of length n run
// by the given number of threads. blockSize (power of two, <= 0 for the
// spray default) sets the granularity of the block-locality metrics.
func NewRecorder(n, threads, blockSize int) *Recorder {
	if n <= 0 || threads <= 0 {
		panic(fmt.Sprintf("advisor: bad recorder shape n=%d threads=%d", n, threads))
	}
	if blockSize <= 0 {
		blockSize = spray.DefaultBlockSize
	}
	if blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("advisor: block size %d not a power of two", blockSize))
	}
	r := &Recorder{
		n:       n,
		threads: threads,
		tapes:   make([]tape, threads),
		block:   blockSize,
		shift:   uint(bits.TrailingZeros(uint(blockSize))),
	}
	for t := range r.tapes {
		r.tapes[t].touched = make(map[int32]int)
	}
	return r
}

// Tape is the per-thread recording accessor.
type Tape struct {
	t *tape
}

// Add records one update of index i (the value is irrelevant to the
// access pattern).
func (tp Tape) Add(i int, _ float64) {
	tp.t.updates++
	tp.t.touched[int32(i)]++
}

// AddN records a contiguous run of updates, the bulk analogue of Add: a
// workload driven through the bulk fast path records exactly the same
// access pattern as its element-wise form.
func (tp Tape) AddN(base int, vals []float64) {
	tp.t.updates += len(vals)
	for j := range vals {
		tp.t.touched[int32(base+j)]++
	}
}

// Scatter records a gathered batch of updates.
func (tp Tape) Scatter(idx []int32, vals []float64) {
	tp.t.updates += len(idx)
	for _, i := range idx {
		tp.t.touched[i]++
	}
}

// Done is a no-op, present to satisfy the accessor contract.
func (tp Tape) Done() {}

// Tape returns the recording accessor for thread tid.
func (r *Recorder) Tape(tid int) Tape { return Tape{t: &r.tapes[tid]} }

// Report is the analysis of one recorded region.
type Report struct {
	N       int
	Threads int
	Block   int

	Updates          int     // total updates recorded
	TouchedPerThread float64 // mean distinct indices touched per thread
	Density          float64 // mean touched fraction of the array per thread
	ReusePerIndex    float64 // mean updates per touched (thread, index) pair
	ConflictRate     float64 // fraction of touched indices written by >1 thread
	BlockOccupancy   float64 // mean touched fraction within touched blocks
	BlocksPerThread  float64 // mean touched blocks per thread
	OwnershipMatch   float64 // fraction of updates landing in the updater's static keeper range
}

// Analyze computes the pattern metrics from the recording.
func (r *Recorder) Analyze() Report {
	rep := Report{N: r.n, Threads: r.threads, Block: r.block}
	chunk := (r.n + r.threads - 1) / r.threads
	if chunk < 1 {
		chunk = 1
	}
	owners := make(map[int32]int8) // 0 unseen, 1 one thread, 2 many
	var touchedTotal, ownedUpdates int
	var occupancySum float64
	var blockCount int
	for tid := range r.tapes {
		t := &r.tapes[tid]
		rep.Updates += t.updates
		touchedTotal += len(t.touched)
		blocks := make(map[int32]int)
		for idx, cnt := range t.touched {
			if int(idx)/chunk == tid {
				ownedUpdates += cnt
			}
			blocks[idx>>r.shift]++
			switch owners[idx] {
			case 0:
				owners[idx] = 1
			case 1:
				owners[idx] = 2
			}
		}
		for b, touched := range blocks {
			size := r.block
			if base := int(b) << r.shift; base+size > r.n {
				size = r.n - base
			}
			occupancySum += float64(touched) / float64(size)
		}
		blockCount += len(blocks)
	}
	if touchedTotal > 0 {
		rep.TouchedPerThread = float64(touchedTotal) / float64(r.threads)
		rep.Density = rep.TouchedPerThread / float64(r.n)
		rep.ReusePerIndex = float64(rep.Updates) / float64(touchedTotal)
	}
	var conflicted, distinct int
	for _, o := range owners {
		distinct++
		if o > 1 {
			conflicted++
		}
	}
	if distinct > 0 {
		rep.ConflictRate = float64(conflicted) / float64(distinct)
	}
	if blockCount > 0 {
		rep.BlockOccupancy = occupancySum / float64(blockCount)
		rep.BlocksPerThread = float64(blockCount) / float64(r.threads)
	}
	if rep.Updates > 0 {
		rep.OwnershipMatch = float64(ownedUpdates) / float64(rep.Updates)
	}
	return rep
}

// Recommendation pairs a strategy with its justification.
type Recommendation struct {
	Strategy spray.Strategy
	Reason   string
}

// Recommend applies the paper's qualitative guidance (§VII: "atomics are
// useful for avoiding memory overhead and where reduction accesses are
// few and without contention. Block-based reducers perform best when
// reduction accesses have high locality... The keeper reduction excels if
// the updated indices on each thread closely match the static ownership
// structure") as explicit rules over the measured metrics.
func (rep Report) Recommend() Recommendation {
	switch {
	case rep.OwnershipMatch >= 0.9:
		return Recommendation{spray.Keeper(), fmt.Sprintf(
			"%.0f%% of updates land in the updater's own static range — the keeper ownership model fits",
			100*rep.OwnershipMatch)}
	case rep.Density >= 0.5 && rep.Threads <= 4:
		return Recommendation{spray.Dense(), fmt.Sprintf(
			"threads touch %.0f%% of the array and the team is small — full privatization is cheap and contention-free",
			100*rep.Density)}
	case rep.BlockOccupancy >= 0.25 && rep.ReusePerIndex >= 1.5:
		return Recommendation{spray.BlockCAS(rep.Block), fmt.Sprintf(
			"touched blocks are %.0f%% occupied with %.1f updates per index — lazily privatized blocks amortize well",
			100*rep.BlockOccupancy, rep.ReusePerIndex)}
	case rep.ConflictRate <= 0.05 && rep.ReusePerIndex < 1.5:
		return Recommendation{spray.Atomic(), fmt.Sprintf(
			"only %.1f%% of touched indices are shared between threads and reuse is low — atomics avoid all memory overhead",
			100*rep.ConflictRate)}
	case rep.ConflictRate > 0.5:
		return Recommendation{spray.BlockPrivate(rep.Block), fmt.Sprintf(
			"%.0f%% of touched indices are contended — private blocks avoid synchronization entirely",
			100*rep.ConflictRate)}
	default:
		return Recommendation{spray.Auto(rep.Block),
			"mixed pattern with no dominant trait — the adaptive strategy will privatize hot blocks at run time"}
	}
}

// PlanAmortizationIters is the repetition count from which wrapping the
// recommended strategy in a compiled plan pays off: the record region
// runs at inner-strategy speed and the compile costs roughly one more
// region, so with four or more identical regions the plan's race-free
// executor has amortized both (see the cmd/spraybulk plan workload).
const PlanAmortizationIters = 4

// RecommendIterative is Recommend for workloads that will replay the
// recorded region repeatedly with an identical index pattern (iterative
// solvers, time stepping, training loops; iters is the expected
// repetition count). When the repetition amortizes the one-time
// record+compile cost and threads actually share indices, the base
// recommendation is wrapped in spray.Planned; otherwise it is returned
// unchanged.
func (rep Report) RecommendIterative(iters int) Recommendation {
	base := rep.Recommend()
	if iters < PlanAmortizationIters {
		return base
	}
	if rep.ConflictRate == 0 {
		return Recommendation{base.Strategy, base.Reason +
			"; no cross-thread conflicts were recorded, so a compiled plan would only add bookkeeping"}
	}
	return Recommendation{spray.Planned(base.Strategy), fmt.Sprintf(
		"%s; the pattern repeats ~%d times, so a compiled plan amortizes one record+compile region and runs the rest race-free",
		base.Reason, iters)}
}

// String renders the report as an aligned table plus the recommendation.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "array length        %d\n", rep.N)
	fmt.Fprintf(&b, "threads             %d\n", rep.Threads)
	fmt.Fprintf(&b, "updates             %d\n", rep.Updates)
	fmt.Fprintf(&b, "touched/thread      %.1f (%.2f%% of array)\n", rep.TouchedPerThread, 100*rep.Density)
	fmt.Fprintf(&b, "reuse/index         %.2f\n", rep.ReusePerIndex)
	fmt.Fprintf(&b, "conflict rate       %.2f%%\n", 100*rep.ConflictRate)
	fmt.Fprintf(&b, "block occupancy     %.2f%% (block %d, %.1f blocks/thread)\n",
		100*rep.BlockOccupancy, rep.Block, rep.BlocksPerThread)
	fmt.Fprintf(&b, "ownership match     %.2f%%\n", 100*rep.OwnershipMatch)
	rec := rep.Recommend()
	fmt.Fprintf(&b, "recommendation      %s — %s\n", rec.Strategy, rec.Reason)
	return b.String()
}

// TopConflicts returns the k most-contended indices (touched by the most
// threads), for diagnosing hot spots.
func (r *Recorder) TopConflicts(k int) []int {
	count := map[int32]int{}
	for t := range r.tapes {
		for idx := range r.tapes[t].touched {
			count[idx]++
		}
	}
	type kv struct {
		idx int32
		n   int
	}
	all := make([]kv, 0, len(count))
	for idx, n := range count {
		if n > 1 {
			all = append(all, kv{idx, n})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].idx < all[j].idx
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = int(all[i].idx)
	}
	return out
}

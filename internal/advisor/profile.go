package advisor

import (
	"fmt"
	"sort"

	"spray"
	"spray/internal/hotspot"
)

// Profile-guided recommendation: where Recommend works from an exact
// offline tape, RecommendFromProfile works from the sampled contention
// profile a production run exports (spray.Instrumentation.EnableHotspot,
// /debug/spray/heatmap, or a file saved with -hotprofile). The profile
// is cheaper and lossier than a tape — it sees conflicts, not the full
// access pattern — so the rules here key off what the profiler actually
// measures: the conflict rate, which conflict class dominates, and how
// spatially concentrated the hot lines are.

// ProfileConcentration returns the fraction of the profile's sampled
// conflict weight captured by its top k hot lines (0 when nothing was
// sampled) — 1.0 means every observed conflict landed in k cache lines.
func ProfileConcentration(p *hotspot.Profile, k int) float64 {
	if p == nil {
		return 0
	}
	var sampled uint64
	for _, v := range p.Sampled {
		sampled += v
	}
	if sampled == 0 {
		return 0
	}
	var top uint64
	for _, l := range p.TopLines(k) {
		top += l.Count
	}
	if top > sampled {
		return 1
	}
	return float64(top) / float64(sampled)
}

// RecommendFromProfile turns a sampled contention profile into a
// strategy recommendation. The ladder mirrors the paper's guidance the
// way Recommend does, translated to profiler-visible signals:
//
//   - no conflict events at all     -> atomic (no memory overhead)
//   - keeper-foreign dominated      -> ownership fit: low foreign share
//     keeps the keeper, high foreign share escalates
//   - bin collisions dominated      -> duplicate-heavy stream: keep (or
//     add) the write-combining wrapper
//   - plan exchanges dominated      -> the pattern repeats; stay compiled
//   - retries/claims, tiny rate     -> atomic (contention negligible)
//   - conflicts but an empty sketch -> rate-based fallback: the profile
//     has no spatial signal, so "diffuse" cannot be concluded
//   - sharply concentrated hot set  -> tiered: replicate exactly the hot
//     lines per thread (hot+atomic), atomics absorb the cold tail
//   - concentrated hot lines        -> adaptive: privatize just the hot
//     blocks
//   - diffuse heavy contention      -> private blocks, no synchronization
func RecommendFromProfile(p *hotspot.Profile) Recommendation {
	if p == nil || p.TotalConflicts() == 0 {
		if p != nil && p.Updates > 0 {
			return Recommendation{spray.Atomic(), fmt.Sprintf(
				"%d updates were profiled with zero conflict events — atomics avoid all memory overhead", p.Updates)}
		}
		return Recommendation{spray.Auto(spray.DefaultBlockSize),
			"the profile recorded no updates or conflicts — no signal, the adaptive strategy stays safe"}
	}
	total := p.TotalConflicts()
	var rate float64
	if p.Updates > 0 {
		rate = float64(total) / float64(p.Updates)
	}
	cls, clsW := p.DominantClass()
	conc := ProfileConcentration(p, 16)

	// The routing classes (foreign submissions, bin coalescing, plan
	// exchanges) are handled by shape, not rate: a small foreign share is
	// evidence the keeper fits, not that contention is negligible.
	switch cls {
	case hotspot.KeeperForeign.String():
		share := rate
		if p.Updates > 0 {
			share = float64(clsW) / float64(p.Updates)
		}
		if share <= 0.1 {
			return Recommendation{spray.Keeper(), fmt.Sprintf(
				"foreign submissions are only %.1f%% of updates — the static ownership model fits, keep the keeper", 100*share)}
		}
		return Recommendation{spray.BlockCAS(spray.DefaultBlockSize), fmt.Sprintf(
			"%.0f%% of updates cross the ownership partition — block claiming follows the accesses instead of a fixed split", 100*share)}
	case hotspot.BinCollision.String():
		return Recommendation{spray.Binned(spray.Atomic()), fmt.Sprintf(
			"%d coalesced duplicates dominate the conflict profile — keep the write-combining wrapper in front of a cheap inner strategy", clsW)}
	case hotspot.PlanExchange.String():
		return Recommendation{spray.Planned(spray.Keeper()), fmt.Sprintf(
			"%d plan exchange merges dominate — the pattern repeats and the compiled route is already absorbing the conflicts", clsW)}
	}
	// CAS retries or block claim contention: rate first, then spatial
	// shape.
	if p.Updates > 0 && rate <= 0.01 {
		return Recommendation{spray.Atomic(), fmt.Sprintf(
			"conflict events are %.2f%% of updates — contention is negligible, atomics avoid all memory overhead", 100*rate)}
	}
	// All-cold sketch: conflict classes fired, but no hot-line sample
	// survived into the top-K table (heavy decimation, or a stream that
	// never revisits a line). Concentration is unmeasured here, not zero,
	// so the spatial rungs below cannot run — fall back to the rate.
	if len(p.Lines) == 0 {
		if p.Updates > 0 && rate >= 0.25 {
			return Recommendation{spray.BlockPrivate(spray.DefaultBlockSize), fmt.Sprintf(
				"conflicts are %.0f%% of updates but the sketch captured no hot lines — contention is heavy and unlocalized, private blocks avoid synchronization without needing a hot set", 100*rate)}
		}
		return Recommendation{spray.Auto(spray.DefaultBlockSize),
			"conflicts were recorded but the sketch captured no hot lines — no spatial signal, the adaptive strategy discovers hot blocks at run time"}
	}
	if conc >= 0.85 {
		return Recommendation{spray.Tiered(spray.Atomic()), fmt.Sprintf(
			"the top 16 hot lines carry %.0f%% of the sampled conflict weight — hot-set replication caches exactly those lines per thread and the cold tail stays on atomics", 100*conc)}
	}
	if conc >= 0.5 {
		return Recommendation{spray.Auto(spray.DefaultBlockSize), fmt.Sprintf(
			"the top 16 hot lines carry %.0f%% of the sampled conflict weight — the adaptive strategy privatizes just those blocks", 100*conc)}
	}
	return Recommendation{spray.BlockPrivate(spray.DefaultBlockSize), fmt.Sprintf(
		"%s conflicts are diffuse (top 16 lines hold %.0f%% of the weight) — private blocks avoid synchronization entirely", cls, 100*conc)}
}

// TopConflictLines is the exact, line-granularity counterpart of the
// profiler's Profile.TopLines: it returns the k cache lines (lineElems
// elements each) with the most updates to cross-thread-contended
// indices, sorted by that weight descending then line ascending. The
// sketch-accuracy tests compare the sampled top-K against this.
func (r *Recorder) TopConflictLines(k, lineElems int) []int {
	if lineElems <= 0 {
		lineElems = 8
	}
	owners := map[int32]int8{} // 1 = one thread, 2 = several
	for t := range r.tapes {
		for idx := range r.tapes[t].touched {
			switch owners[idx] {
			case 0:
				owners[idx] = 1
			case 1:
				owners[idx] = 2
			}
		}
	}
	weight := map[int]uint64{}
	for t := range r.tapes {
		for idx, cnt := range r.tapes[t].touched {
			if owners[idx] > 1 {
				weight[int(idx)/lineElems] += uint64(cnt)
			}
		}
	}
	type kv struct {
		line int
		w    uint64
	}
	all := make([]kv, 0, len(weight))
	for ln, w := range weight {
		all = append(all, kv{ln, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].line < all[j].line
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].line
	}
	return out
}

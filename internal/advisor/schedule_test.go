package advisor

import (
	"strings"
	"testing"
	"time"

	"spray"
)

// report builds a hand-made RegionReport with the given per-member busy
// times — the only signal RecommendSchedule reads besides the team size.
func report(threads int, busy ...time.Duration) spray.RegionReport {
	return spray.RegionReport{Threads: threads, Busy: busy}
}

// TestRecommendScheduleSingleThread pins the degenerate team: nothing to
// balance, static wins regardless of how lopsided the numbers look.
func TestRecommendScheduleSingleThread(t *testing.T) {
	rec := RecommendSchedule(report(1, 100*time.Millisecond))
	if rec.Schedule != spray.Static() {
		t.Fatalf("single thread recommended %v, want static", rec.Schedule)
	}
	if !strings.Contains(rec.Reason, "single-member") {
		t.Errorf("reason %q does not explain the single-member case", rec.Reason)
	}
}

// TestRecommendScheduleBalanced pins the uniform case: imbalance near
// 1.0 stays on static.
func TestRecommendScheduleBalanced(t *testing.T) {
	rec := RecommendSchedule(report(4,
		100*time.Millisecond, 101*time.Millisecond, 99*time.Millisecond, 100*time.Millisecond))
	if rec.Schedule != spray.Static() {
		t.Fatalf("balanced team recommended %v, want static", rec.Schedule)
	}
	if !strings.Contains(rec.Reason, "within") {
		t.Errorf("reason %q does not cite the threshold comparison", rec.Reason)
	}
}

// TestRecommendScheduleImbalanced pins the straggler case: one member at
// 2x the mean crosses ImbalanceStealThreshold and flips to steal.
func TestRecommendScheduleImbalanced(t *testing.T) {
	rep := report(4,
		400*time.Millisecond, 100*time.Millisecond, 100*time.Millisecond, 100*time.Millisecond)
	if li := rep.LoadImbalance(); li <= ImbalanceStealThreshold {
		t.Fatalf("test fixture imbalance %.2f not above threshold %.2f", li, ImbalanceStealThreshold)
	}
	rec := RecommendSchedule(rep)
	if rec.Schedule != spray.Steal(0) {
		t.Fatalf("straggler team recommended %v, want steal", rec.Schedule)
	}
	if !strings.Contains(rec.Reason, "steal") {
		t.Errorf("reason %q does not explain the steal recommendation", rec.Reason)
	}
}

// TestRecommendScheduleThresholdBoundary pins the knife edge: exactly at
// the threshold stays static (the comparison is strict), just above
// flips.
func TestRecommendScheduleThresholdBoundary(t *testing.T) {
	// Three members: one at exactly threshold x mean requires
	// max = T * (max + 2b) / 3 => max = 2bT / (3 - T). With b = 100ms
	// and T = 1.25, max = 250/1.75 ms x ... easier to construct directly:
	// busy times (5, 3, 4) have mean 4 and max 5 => imbalance 1.25 exactly.
	at := report(3, 5*time.Second, 3*time.Second, 4*time.Second)
	if li := at.LoadImbalance(); li != ImbalanceStealThreshold {
		t.Fatalf("fixture imbalance %.4f, want exactly %.2f", li, ImbalanceStealThreshold)
	}
	if rec := RecommendSchedule(at); rec.Schedule != spray.Static() {
		t.Errorf("exactly-at-threshold recommended %v, want static (strict comparison)", rec.Schedule)
	}
	above := report(3, 5100*time.Millisecond, 3*time.Second, 4*time.Second)
	if rec := RecommendSchedule(above); rec.Schedule != spray.Steal(0) {
		t.Errorf("just-above-threshold recommended %v, want steal", rec.Schedule)
	}
}

// TestRecommendScheduleNoTelemetry pins the uninstrumented report: no
// busy times means no evidence, and the recommendation must say so
// rather than invent balance.
func TestRecommendScheduleNoTelemetry(t *testing.T) {
	rec := RecommendSchedule(report(4))
	if rec.Schedule != spray.Static() {
		t.Fatalf("no-telemetry report recommended %v, want static", rec.Schedule)
	}
	if !strings.Contains(rec.Reason, "no busy-time telemetry") {
		t.Errorf("reason %q does not flag the missing telemetry", rec.Reason)
	}
}

package advisor

// Schedule advice: the strategy recommendation (advisor.go, profile.go)
// picks how updates are made safe; this file picks how the loop's
// iterations are dealt out. The two are orthogonal — any strategy runs
// on any schedule — but the telemetry needed to choose a schedule is
// different: it is the region lifecycle timing (per-member busy time)
// that exposes load imbalance, not the index-space access pattern.

import (
	"fmt"

	"spray"
)

// ImbalanceStealThreshold is the load-imbalance level (max over mean
// per-member busy time) above which the advisor recommends the
// work-stealing schedule. 1.0 is perfect balance; the default static
// schedule typically sits below 1.1 on uniform loops, so 1.25 marks
// regions where the slowest member carries at least a quarter more work
// than the average — enough that redistributing chunks pays for the
// steal runtime's bookkeeping.
const ImbalanceStealThreshold = 1.25

// ScheduleRecommendation pairs a loop schedule with the reasoning, in
// the same shape as the strategy Recommendation.
type ScheduleRecommendation struct {
	Schedule spray.Schedule
	Reason   string
}

// RecommendSchedule inspects an instrumented region's report and
// recommends a loop schedule: the work-stealing schedule when the
// per-member busy times show load imbalance beyond
// ImbalanceStealThreshold (stealing rebalances while preserving the
// static slices' ownership locality, unlike dynamic/guided which
// scramble member-to-index affinity), the static default otherwise.
func RecommendSchedule(rep spray.RegionReport) ScheduleRecommendation {
	li := rep.LoadImbalance()
	if rep.Threads <= 1 {
		return ScheduleRecommendation{
			Schedule: spray.Static(),
			Reason:   "single-member team: no balancing to do, static has zero hand-out overhead",
		}
	}
	if li > ImbalanceStealThreshold {
		return ScheduleRecommendation{
			Schedule: spray.Steal(0),
			Reason: fmt.Sprintf("load imbalance %.2f exceeds %.2f: the slowest member carries %.0f%% more than the mean; "+
				"steal keeps static ownership slices but lets dry members take chunks from the stragglers",
				li, ImbalanceStealThreshold, (li-1)*100),
		}
	}
	if li > 0 {
		return ScheduleRecommendation{
			Schedule: spray.Static(),
			Reason: fmt.Sprintf("load imbalance %.2f is within %.2f: static's zero hand-out overhead and "+
				"contiguous per-member slices win on balanced loops", li, ImbalanceStealThreshold),
		}
	}
	return ScheduleRecommendation{
		Schedule: spray.Static(),
		Reason:   "no busy-time telemetry recorded: defaulting to static; instrument the team (spray.Instrument) to measure imbalance",
	}
}

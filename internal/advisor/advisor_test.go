package advisor

import (
	"math/rand"
	"strings"
	"testing"

	"spray"
	"spray/internal/par"
)

// record simulates a region: split [0, iters) statically over threads and
// let body emit updates through the tape.
func record(n, threads, block, iters int, body func(tape Tape, tid, i int)) *Recorder {
	r := NewRecorder(n, threads, block)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, iters, tid, threads)
		tape := r.Tape(tid)
		for i := from; i < to; i++ {
			body(tape, tid, i)
		}
	}
	return r
}

func TestRecommendKeeperForOwnershipPattern(t *testing.T) {
	// Loop index maps one-to-one onto the array (the paper's conv
	// back-propagation shape).
	const n, threads = 10000, 4
	r := record(n, threads, 0, n, func(tape Tape, tid, i int) {
		tape.Add(i, 1)
		if i+1 < n {
			tape.Add(i+1, 1)
		}
	})
	rep := r.Analyze()
	rec := rep.Recommend()
	if rec.Strategy != spray.Keeper() {
		t.Errorf("recommended %v (%s), want keeper\nreport:\n%s", rec.Strategy, rec.Reason, rep)
	}
	if rep.OwnershipMatch < 0.9 {
		t.Errorf("ownership match %v", rep.OwnershipMatch)
	}
}

func TestRecommendIterativeWrapsInPlan(t *testing.T) {
	// The keeper-shaped pattern has cross-thread conflicts at the range
	// boundaries; repeated enough times, the iterative recommendation
	// wraps the base pick in a compiled plan.
	const n, threads = 10000, 4
	r := record(n, threads, 0, n, func(tape Tape, tid, i int) {
		tape.Add(i, 1)
		if i+1 < n {
			tape.Add(i+1, 1)
		}
	})
	rep := r.Analyze()
	base := rep.Recommend()
	if rec := rep.RecommendIterative(PlanAmortizationIters); rec.Strategy != spray.Planned(base.Strategy) {
		t.Errorf("iterative recommendation %v (%s), want plan+%v", rec.Strategy, rec.Reason, base.Strategy)
	}
	// Too few repetitions: the plan never amortizes, keep the base pick.
	if rec := rep.RecommendIterative(PlanAmortizationIters - 1); rec.Strategy != base.Strategy {
		t.Errorf("short-loop recommendation %v, want %v", rec.Strategy, base.Strategy)
	}
}

func TestRecommendIterativeKeepsConflictFreePatterns(t *testing.T) {
	// Perfectly partitioned updates: no thread ever touches another's
	// indices, so a plan would only add bookkeeping.
	const n, threads = 8000, 4
	r := record(n, threads, 0, n, func(tape Tape, tid, i int) {
		tape.Add(i, 1)
	})
	rep := r.Analyze()
	if rep.ConflictRate != 0 {
		t.Fatalf("conflict rate %v, want 0", rep.ConflictRate)
	}
	rec := rep.RecommendIterative(100)
	if rec.Strategy.String() == "plan+"+rep.Recommend().Strategy.String() {
		t.Errorf("conflict-free pattern still wrapped in a plan: %v", rec.Strategy)
	}
}

func TestRecommendAtomicForScatteredAccess(t *testing.T) {
	// Each thread touches a few random locations once: low reuse, low
	// conflicts.
	const n, threads = 1 << 20, 8
	rng := rand.New(rand.NewSource(1))
	r := NewRecorder(n, threads, 0)
	for tid := 0; tid < threads; tid++ {
		tape := r.Tape(tid)
		for k := 0; k < 200; k++ {
			tape.Add(rng.Intn(n), 1)
		}
	}
	rep := r.Analyze()
	rec := rep.Recommend()
	if rec.Strategy != spray.Atomic() {
		t.Errorf("recommended %v (%s), want atomic\nreport:\n%s", rec.Strategy, rec.Reason, rep)
	}
}

func TestRecommendBlockForLocalClusters(t *testing.T) {
	// Threads hammer interleaved dense clusters far from their keeper
	// ranges: high block occupancy and reuse, ownership mismatch.
	const n, threads, block = 1 << 16, 4, 256
	r := NewRecorder(n, threads, block)
	for tid := 0; tid < threads; tid++ {
		tape := r.Tape(tid)
		// Each thread owns clusters spread across the whole array.
		for c := 0; c < 8; c++ {
			base := ((c*threads + (tid+1)%threads) * 977 * block) % (n - block)
			for rep := 0; rep < 3; rep++ {
				for j := 0; j < block; j++ {
					tape.Add(base+j, 1)
				}
			}
		}
	}
	rep := r.Analyze()
	rec := rep.Recommend()
	if rec.Strategy != spray.BlockCAS(block) {
		t.Errorf("recommended %v (%s), want block-cas-%d\nreport:\n%s", rec.Strategy, rec.Reason, block, rep)
	}
	if rep.BlockOccupancy < 0.9 {
		t.Errorf("occupancy %v", rep.BlockOccupancy)
	}
}

func TestRecommendDenseForSmallTeamsDenseAccess(t *testing.T) {
	const n, threads = 4096, 2
	r := record(n, threads, 0, n, func(tape Tape, tid, i int) {
		// Everyone touches everything (transposed access).
		for k := 0; k < 4; k++ {
			tape.Add((i*4+k*1031)%n, 1)
		}
	})
	rep := r.Analyze()
	if rep.Density < 0.5 {
		t.Skipf("pattern not dense enough: %v", rep.Density)
	}
	rec := rep.Recommend()
	if rec.Strategy != spray.Dense() {
		t.Errorf("recommended %v (%s), want dense\nreport:\n%s", rec.Strategy, rec.Reason, rep)
	}
}

func TestRecommendBlockPrivateForContention(t *testing.T) {
	// All threads hammer the same small hot region repeatedly.
	const n, threads = 1 << 16, 8
	r := NewRecorder(n, threads, 0)
	for tid := 0; tid < threads; tid++ {
		tape := r.Tape(tid)
		for rep := 0; rep < 4; rep++ {
			for j := 0; j < 512; j++ {
				tape.Add(j, 1)
			}
		}
	}
	rep := r.Analyze()
	if rep.ConflictRate != 1 {
		t.Errorf("conflict rate %v, want 1", rep.ConflictRate)
	}
	rec := rep.Recommend()
	// High occupancy + reuse hits the block rule first; either block
	// flavor is a correct call for this pattern.
	if rec.Strategy != spray.BlockCAS(rep.Block) && rec.Strategy != spray.BlockPrivate(rep.Block) {
		t.Errorf("recommended %v (%s), want a block strategy\nreport:\n%s", rec.Strategy, rec.Reason, rep)
	}
}

func TestMetricsExactOnHandPattern(t *testing.T) {
	// 2 threads over 8 elements, block 4.
	r := NewRecorder(8, 2, 4)
	t0 := r.Tape(0)
	t0.Add(0, 1)
	t0.Add(0, 1) // reuse
	t0.Add(5, 1) // foreign (owner 1), conflict with thread 1
	t1 := r.Tape(1)
	t1.Add(5, 1)
	t1.Add(6, 1)
	rep := r.Analyze()
	if rep.Updates != 5 {
		t.Errorf("updates %d", rep.Updates)
	}
	if rep.TouchedPerThread != 2 { // (2 + 2) / 2
		t.Errorf("touched/thread %v", rep.TouchedPerThread)
	}
	if rep.ReusePerIndex != 1.25 { // 5 updates / 4 (thread,index) pairs
		t.Errorf("reuse %v", rep.ReusePerIndex)
	}
	if rep.ConflictRate != 1.0/3.0 { // of {0,5,6}, only 5 is shared
		t.Errorf("conflict %v", rep.ConflictRate)
	}
	// Ownership: thread 0 owns 0..3, thread 1 owns 4..7. Owned updates:
	// t0's two Adds of 0, t1's 5 and 6 → 4 of 5.
	if rep.OwnershipMatch != 0.8 {
		t.Errorf("ownership %v", rep.OwnershipMatch)
	}
	// Blocks touched: t0 {0,1}, t1 {1} → occupancy (1/4 + 1/4 + 2/4)/3.
	if d := rep.BlockOccupancy - (0.25+0.25+0.5)/3; d > 1e-12 || d < -1e-12 {
		t.Errorf("occupancy %v", rep.BlockOccupancy)
	}
}

func TestTopConflicts(t *testing.T) {
	r := NewRecorder(100, 3, 0)
	for tid := 0; tid < 3; tid++ {
		tape := r.Tape(tid)
		tape.Add(7, 1) // all three threads
		if tid < 2 {
			tape.Add(9, 1) // two threads
		}
		tape.Add(tid*10, 1) // private
	}
	top := r.TopConflicts(5)
	if len(top) != 2 || top[0] != 7 || top[1] != 9 {
		t.Errorf("top conflicts %v", top)
	}
}

func TestReportStringContainsRecommendation(t *testing.T) {
	r := record(1000, 2, 0, 1000, func(tape Tape, tid, i int) { tape.Add(i, 1) })
	s := r.Analyze().String()
	for _, want := range []string{"recommendation", "keeper", "ownership match"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRecorderValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero n":       func() { NewRecorder(0, 1, 0) },
		"zero threads": func() { NewRecorder(10, 0, 0) },
		"bad block":    func() { NewRecorder(10, 1, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBulkRecordingMatchesElementWise(t *testing.T) {
	// The same workload expressed through Add, AddN and Scatter must
	// analyze identically: the tape's bulk entry points exist so bulk-path
	// loop bodies can be recorded unchanged.
	const n, threads, iters = 4096, 4, 1024
	elem := NewRecorder(n, threads, 0)
	bulk := NewRecorder(n, threads, 0)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(0, iters, tid, threads)
		et, bt := elem.Tape(tid), bulk.Tape(tid)
		for i := from; i < to; i++ {
			base := (i * 3) % (n - 8)
			vals := []float64{1, 2, 3, 4}
			for j, v := range vals {
				et.Add(base+j, v)
			}
			bt.AddN(base, vals)
			idx := []int32{int32(i % n), int32((i * 7) % n)}
			for j, ix := range idx {
				et.Add(int(ix), vals[j])
			}
			bt.Scatter(idx, vals[:len(idx)])
		}
		et.Done()
		bt.Done()
	}
	er, br := elem.Analyze(), bulk.Analyze()
	if er != br {
		t.Errorf("bulk recording diverges from element-wise:\nelem: %+v\nbulk: %+v", er, br)
	}
	if er.Updates != iters*6 {
		t.Errorf("updates = %d, want %d", er.Updates, iters*6)
	}
	if eRec, bRec := er.Recommend(), br.Recommend(); eRec != bRec {
		t.Errorf("recommendations diverge: %v vs %v", eRec, bRec)
	}
}

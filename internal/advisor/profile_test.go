package advisor

import (
	"strings"
	"testing"

	"spray"
	"spray/internal/hotspot"
	"spray/internal/par"
)

// The sketch-vs-exact accuracy tests: run a real keeper reduction with
// the contention profiler sampling every call, then replay the identical
// access pattern through the advisor's exact tapes and check that the
// sampled top-K hot lines recover the exactly-computed conflicted lines
// (the ISSUE acceptance bar is >= 80% overlap at K=16). The keeper makes
// the comparison deterministic: its foreign submissions are exactly the
// updates that cross the static ownership partition, and in both
// workloads below the cross-partition updates are the cross-thread
// conflicted updates.

const accuracyK = 16

// overlapFraction returns |sampled ∩ exact| / |exact|.
func overlapFraction(sampled []hotspot.LineStat, exact []int) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := map[int]bool{}
	for _, l := range sampled {
		in[l.Line] = true
	}
	hit := 0
	for _, ln := range exact {
		if in[ln] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// runKeeperProfiled drives body through a real keeper reduction over
// [lo, hi) with every profiler call sampled, and returns the profile.
func runKeeperProfiled(t *testing.T, n, threads, lo, hi int, body func(acc spray.Accessor[float64], i int)) *hotspot.Profile {
	t.Helper()
	out := make([]float64, n)
	team := spray.NewTeam(threads)
	r := spray.New(spray.Keeper(), out, threads)
	in := spray.Instrument(team, r)
	defer in.Detach()
	in.EnableHotspot(n, spray.HotspotOptions{SamplePeriod: 1, TopK: 64})
	spray.RunReduction(team, r, lo, hi, spray.Static(), func(acc spray.Accessor[float64], from, to int) {
		for i := from; i < to; i++ {
			body(acc, i)
		}
	})
	prof := in.HotspotProfile()
	if prof == nil {
		t.Fatal("no hotspot profile")
	}
	return prof
}

// replayExact records the same loop over the same static partition into
// advisor tapes and returns the exact top-K conflicted lines.
func replayExact(n, threads, lo, hi, lineElems int, body func(tape Tape, i int)) []int {
	rec := NewRecorder(n, threads, 0)
	for tid := 0; tid < threads; tid++ {
		from, to := par.StaticRange(lo, hi, tid, threads)
		tape := rec.Tape(tid)
		for i := from; i < to; i++ {
			body(tape, i)
		}
	}
	return rec.TopConflictLines(accuracyK, lineElems)
}

func TestHotspotAccuracyConvBackprop(t *testing.T) {
	// The paper's conv back-propagation shape: iteration i taps i-1, i,
	// i+1, so conflicts concentrate on the chunk-boundary cache lines.
	const n, threads = 1 << 14, 8
	prof := runKeeperProfiled(t, n, threads, 1, n-1, func(acc spray.Accessor[float64], i int) {
		acc.Add(i-1, 1)
		acc.Add(i, 1)
		acc.Add(i+1, 1)
	})
	if prof.Totals["keeper-foreign"] == 0 {
		t.Fatal("keeper recorded no foreign submissions — nothing to compare")
	}
	exact := replayExact(n, threads, 1, n-1, prof.LineElems, func(tape Tape, i int) {
		tape.Add(i-1, 1)
		tape.Add(i, 1)
		tape.Add(i+1, 1)
	})
	if len(exact) == 0 {
		t.Fatal("exact replay found no conflicted lines")
	}
	if ov := overlapFraction(prof.TopLines(accuracyK), exact); ov < 0.8 {
		t.Fatalf("conv overlap = %.2f, want >= 0.8 (sampled %+v, exact %v)",
			ov, prof.TopLines(accuracyK), exact)
	}
}

func TestHotspotAccuracyBandedTMV(t *testing.T) {
	// Banded transposed matrix-vector: row i scatters into the column
	// band [i-bw, i+bw], so each static row-boundary smears conflicts
	// over a 2*bw-element region.
	const n, threads, bw = 1 << 14, 8, 4
	band := func(i int) (int, int) {
		lo, hi := i-bw, i+bw+1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	prof := runKeeperProfiled(t, n, threads, 0, n, func(acc spray.Accessor[float64], i int) {
		lo, hi := band(i)
		for j := lo; j < hi; j++ {
			acc.Add(j, 1)
		}
	})
	if prof.Totals["keeper-foreign"] == 0 {
		t.Fatal("keeper recorded no foreign submissions — nothing to compare")
	}
	exact := replayExact(n, threads, 0, n, prof.LineElems, func(tape Tape, i int) {
		lo, hi := band(i)
		for j := lo; j < hi; j++ {
			tape.Add(j, 1)
		}
	})
	if len(exact) == 0 {
		t.Fatal("exact replay found no conflicted lines")
	}
	if ov := overlapFraction(prof.TopLines(accuracyK), exact); ov < 0.8 {
		t.Fatalf("tmv overlap = %.2f, want >= 0.8 (sampled %+v, exact %v)",
			ov, prof.TopLines(accuracyK), exact)
	}
}

func TestTopConflictLinesExact(t *testing.T) {
	// Hand pattern: threads 0 and 1 both hit indices 8 and 9 (line 1),
	// thread 0 alone hammers index 100 (line 12) — uncontended, so the
	// heavy line must NOT appear.
	rec := NewRecorder(1024, 2, 0)
	t0, t1 := rec.Tape(0), rec.Tape(1)
	for i := 0; i < 50; i++ {
		t0.Add(100, 1)
	}
	t0.Add(8, 1)
	t0.Add(9, 1)
	t1.Add(8, 1)
	t1.Add(9, 1)
	t0.Add(16, 1) // line 2, contended once
	t1.Add(16, 1)
	got := rec.TopConflictLines(4, 8)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("TopConflictLines = %v, want [1 2]", got)
	}
}

func TestRecommendFromProfileLadder(t *testing.T) {
	base := func() *hotspot.Profile {
		return &hotspot.Profile{
			SchemaVersion: hotspot.ProfileSchemaVersion,
			Strategy:      "keeper", N: 1 << 20, Threads: 8,
			LineElems: 8, NumLines: 1 << 17, HeatBuckets: 64,
			Updates: 1 << 20,
			Totals:  map[string]uint64{}, Sampled: map[string]uint64{},
		}
	}
	cases := []struct {
		name  string
		prof  *hotspot.Profile
		want  spray.Strategy
		wordy string
	}{
		{"nil profile", nil, spray.Auto(spray.DefaultBlockSize), "no signal"},
		{"no conflicts", base(), spray.Atomic(), "zero conflict"},
		{"negligible rate", func() *hotspot.Profile {
			p := base()
			p.Totals["cas-retry"] = 100 // 0.01% of updates
			return p
		}(), spray.Atomic(), "negligible"},
		{"keeper fits", func() *hotspot.Profile {
			p := base()
			p.Totals["keeper-foreign"] = p.Updates / 50 // 2% foreign
			return p
		}(), spray.Keeper(), "ownership"},
		{"ownership mismatch", func() *hotspot.Profile {
			p := base()
			p.Totals["keeper-foreign"] = p.Updates / 2 // 50% foreign
			return p
		}(), spray.BlockCAS(spray.DefaultBlockSize), "ownership"},
		{"duplicate heavy", func() *hotspot.Profile {
			p := base()
			p.Totals["bin-collision"] = p.Updates / 4
			return p
		}(), spray.Binned(spray.Atomic()), "write-combining"},
		{"compiled exchange", func() *hotspot.Profile {
			p := base()
			p.Totals["plan-exchange"] = p.Updates / 4
			return p
		}(), spray.Planned(spray.Keeper()), "compiled"},
		{"sharply concentrated retries", func() *hotspot.Profile {
			p := base()
			p.Totals["cas-retry"] = p.Updates / 4
			p.Sampled["cas-retry"] = 1000
			p.Lines = []hotspot.LineStat{{Line: 7, Index: 56, Count: 900}}
			return p
		}(), spray.Tiered(spray.Atomic()), "hot-set replication"},
		{"moderately concentrated retries", func() *hotspot.Profile {
			p := base()
			p.Totals["cas-retry"] = p.Updates / 4
			p.Sampled["cas-retry"] = 1000
			p.Lines = []hotspot.LineStat{{Line: 7, Index: 56, Count: 600}}
			return p
		}(), spray.Auto(spray.DefaultBlockSize), "hot lines"},
		{"all-cold sketch, heavy rate", func() *hotspot.Profile {
			p := base()
			p.Totals["cas-retry"] = p.Updates / 2 // 50%, but no hot lines
			p.Sampled["cas-retry"] = 1000
			return p
		}(), spray.BlockPrivate(spray.DefaultBlockSize), "no hot lines"},
		{"all-cold sketch, moderate rate", func() *hotspot.Profile {
			p := base()
			p.Totals["cas-retry"] = p.Updates / 10 // 10%, but no hot lines
			return p
		}(), spray.Auto(spray.DefaultBlockSize), "no spatial signal"},
		{"diffuse retries", func() *hotspot.Profile {
			p := base()
			p.Totals["cas-retry"] = p.Updates / 4
			p.Sampled["cas-retry"] = 100000
			for ln := 0; ln < 32; ln++ {
				p.Lines = append(p.Lines, hotspot.LineStat{Line: ln, Index: ln * 8, Count: 100})
			}
			return p
		}(), spray.BlockPrivate(spray.DefaultBlockSize), "diffuse"},
	}
	for _, tc := range cases {
		rec := RecommendFromProfile(tc.prof)
		if rec.Strategy != tc.want {
			t.Errorf("%s: recommended %v (%s), want %v", tc.name, rec.Strategy, rec.Reason, tc.want)
		}
		if !strings.Contains(rec.Reason, tc.wordy) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, rec.Reason, tc.wordy)
		}
	}
}

func TestProfileConcentration(t *testing.T) {
	p := &hotspot.Profile{
		Sampled: map[string]uint64{"cas-retry": 1000},
		Lines: []hotspot.LineStat{
			{Line: 1, Count: 600},
			{Line: 2, Count: 300},
			{Line: 3, Count: 50},
		},
	}
	if c := ProfileConcentration(p, 2); c < 0.89 || c > 0.91 {
		t.Fatalf("concentration = %v, want 0.9", c)
	}
	if c := ProfileConcentration(nil, 2); c != 0 {
		t.Fatalf("nil concentration = %v", c)
	}
	if c := ProfileConcentration(&hotspot.Profile{}, 2); c != 0 {
		t.Fatalf("empty concentration = %v", c)
	}
}

func TestRecommendFromProfileEndToEnd(t *testing.T) {
	// A real keeper run with few foreign updates must come back as
	// "keep the keeper".
	const n, threads = 1 << 14, 8
	prof := runKeeperProfiled(t, n, threads, 1, n-1, func(acc spray.Accessor[float64], i int) {
		acc.Add(i-1, 1)
		acc.Add(i, 1)
		acc.Add(i+1, 1)
	})
	rec := RecommendFromProfile(prof)
	if rec.Strategy != spray.Keeper() {
		t.Fatalf("recommended %v (%s), want keeper", rec.Strategy, rec.Reason)
	}
}

package experiments

import (
	"fmt"

	"spray"
	"spray/internal/bench"
	"spray/internal/mkl"
	"spray/internal/par"
	"spray/internal/sparse"
)

// TMVConfig parameterizes the CSR transpose-matrix-vector experiment
// (§VI-B / Figures 14 and 15).
type TMVConfig struct {
	Name       string
	Matrix     *sparse.CSR[float32]
	Threads    []int
	Strategies []spray.Strategy
	Runner     bench.Runner
	WithMKL    bool

	// Schedule selects the loop schedule the row sweep runs under (zero
	// value: static). The MKL baselines ignore it — they own their loops.
	Schedule spray.Schedule
}

// DefaultTMVStrategies is the strategy set the figures plot.
func DefaultTMVStrategies() []spray.Strategy {
	return []spray.Strategy{
		spray.Builtin(),
		spray.Dense(),
		spray.Atomic(),
		spray.BlockLock(1024),
		spray.BlockCAS(1024),
		spray.Keeper(),
	}
}

// TMVSequentialBaseline measures the sequential Figure 10 scatter loop.
func TMVSequentialBaseline(cfg TMVConfig) float64 {
	a := cfg.Matrix
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)
	return cfg.Runner.AutoBench(func(iters int) {
		for i := 0; i < iters; i++ {
			a.TMulVecSeq(x, y)
		}
	}).Mean
}

func vecOnes(n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

// TMV reproduces one of Figures 14/15 (left: run time vs threads; the
// Bytes column of each point is the right panel's memory overhead):
// SPRAY strategies against the MKL-substitute legacy and
// inspector/executor baselines on the given matrix.
func TMV(cfg TMVConfig) *bench.Result {
	a := cfg.Matrix
	res := &bench.Result{
		Title:    fmt.Sprintf("Figure 14/15: transpose-matrix-vector on %s (%dx%d, %d nnz)", cfg.Name, a.Rows, a.Cols, a.NNZ()),
		XLabel:   "threads",
		Baseline: TMVSequentialBaseline(cfg),
		Notes: []string{
			"MKL closed-source baselines substituted with vendor-style Go implementations (DESIGN.md)",
			"MKL-IE-hint excludes inspection time from the measurement, as in the paper",
		},
	}
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)

	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			r := spray.New(st, y, th)
			summary := cfg.Runner.AutoBench(func(iters int) {
				for i := 0; i < iters; i++ {
					sparse.RunTMulVecSched(team, r, a, x, cfg.Schedule)
				}
			})
			res.AddPoint(st.String(), bench.Point{X: float64(th), Time: summary, Bytes: r.PeakBytes()})
			team.Close()
		}
	}

	if cfg.WithMKL {
		for _, th := range cfg.Threads {
			team := par.NewTeam(th)

			var legacyBytes int64
			legacy := cfg.Runner.AutoBench(func(iters int) {
				for i := 0; i < iters; i++ {
					legacyBytes = mkl.LegacyTMulVec(team, a, x, y)
				}
			})
			res.AddPoint("mkl-legacy", bench.Point{X: float64(th), Time: legacy, Bytes: legacyBytes})

			h := mkl.NewHandle(a)
			h.Optimize()
			var ieBytes int64
			ie := cfg.Runner.AutoBench(func(iters int) {
				for i := 0; i < iters; i++ {
					ieBytes = h.ExecuteTMulVec(team, x, y)
				}
			})
			res.AddPoint("mkl-ie", bench.Point{X: float64(th), Time: ie, Bytes: ieBytes})

			hh := mkl.NewHandle(a)
			hh.SetHint(mkl.Hint{Transpose: true, Calls: 1 << 20})
			hh.Optimize() // inspection excluded from timing, as in the paper
			hint := cfg.Runner.AutoBench(func(iters int) {
				for i := 0; i < iters; i++ {
					hh.ExecuteTMulVec(team, x, y)
				}
			})
			res.AddPoint("mkl-ie-hint", bench.Point{X: float64(th), Time: hint, Bytes: hh.ExtraBytes()})

			team.Close()
		}
	}
	return res
}

package experiments

import (
	"fmt"

	"spray"
	"spray/internal/bench"
	"spray/internal/conv"
	"spray/internal/lulesh"
	"spray/internal/par"
	"spray/internal/sparse"
)

// The schedule comparison: the same reduction workload driven under each
// loop schedule, with the workloads chosen so the legs bracket the
// design space. Two legs are deliberately imbalanced — a synthetic
// front-loaded band (the worst case for guided, whose largest chunk
// lands exactly on the heavy region) and a transpose-matrix-vector
// product whose leading rows are much denser than the rest — one leg is
// a real application (mini-LULESH force accumulation), and one leg is
// deliberately uniform (conv back-propagation) where static's zero
// hand-out overhead is the bar a work-stealing runtime must not fall
// under. Series are named by schedule, so diffing runs compares
// schedules point-by-point per leg.
//
// On machines where the team is time-sliced over fewer cores than
// members (CI containers), wall time cannot show the balance win —
// the OS overlaps the straggler with everyone else — so what these legs
// measure there is the hand-out overhead ranking: steal's local deque
// pops against dynamic's contended claim cursor and static/guided's
// near-free arithmetic. The balance win needs real parallelism; see
// EXPERIMENTS.md.

// ImbalanceConfig parameterizes the schedule-comparison legs.
type ImbalanceConfig struct {
	N       int // synthetic/conv iteration count; tmv scales off it
	Edge    int // mini-LULESH mesh edge (elements per side)
	Cycles  int // mini-LULESH time-step count
	Threads []int
	// Schedules are the compared series, one per schedule string form.
	Schedules []spray.Schedule
	// Strategy is the reduction strategy every leg accumulates through
	// (the comparison varies the schedule, not the strategy).
	Strategy spray.Strategy
	Runner   bench.Runner

	// Telemetry instruments every measured point; OnReport (when set)
	// receives the per-point RegionReport labeled
	// "<leg>/<schedule> t=<threads>".
	Telemetry bool
	OnReport  func(label string, rep spray.RegionReport)
}

// DefaultImbalanceConfig compares the four schedule kinds on the keeper
// strategy, with a mini mesh sized for CI gates rather than paper runs.
func DefaultImbalanceConfig(n, maxThreads int) ImbalanceConfig {
	return ImbalanceConfig{
		N:       n,
		Edge:    10,
		Cycles:  4,
		Threads: bench.ThreadCounts(maxThreads),
		Schedules: []spray.Schedule{
			spray.Static(), spray.Dynamic(0), spray.Guided(0), spray.Steal(0),
		},
		Strategy: spray.Keeper(),
		Runner:   bench.DefaultRunner(),
	}
}

// imbalancePoint measures one (schedule, threads) point, attaching the
// telemetry counters accumulated during the timed window when asked.
func imbalancePoint(cfg ImbalanceConfig, in *spray.Instrumentation, th int, label string, run func(iters int)) bench.Point {
	if in != nil {
		in.Reset()
	}
	p := bench.Point{X: float64(th), Time: cfg.Runner.AutoBench(run)}
	if in != nil {
		rep := in.Report()
		p.Counters = rep.CounterMap()
		if cfg.OnReport != nil {
			cfg.OnReport(fmt.Sprintf("%s t=%d", label, th), rep)
		}
	}
	return p
}

// imbalanceHeavyFrac is the leading fraction of the synthetic iteration
// space that carries the extra per-iteration work.
const imbalanceHeavyFrac = 8

// imbalanceHeavyWork is the extra flop count a heavy iteration runs; the
// recurrence is sequential on purpose so the compiler cannot collapse
// it, making a heavy iteration ~an order of magnitude costlier.
const imbalanceHeavyWork = 48

// heavyCost is the skewed per-iteration kernel: index-determined, so
// every schedule computes bitwise-identical values in any order.
func heavyCost(i, heavy int, v float64) float64 {
	if i >= heavy {
		return v
	}
	s := v
	for k := 0; k < imbalanceHeavyWork; k++ {
		s = s*0.999 + v
	}
	return s
}

// ImbalanceSkew is the synthetic front-loaded leg: iterations below
// N/imbalanceHeavyFrac cost ~10x the rest, all of them landing in the
// first static slice and in guided's first (largest) chunk. A balancing
// schedule redistributes the band; static and guided serialize it on one
// member.
func ImbalanceSkew(cfg ImbalanceConfig) *bench.Result {
	n := cfg.N
	heavy := n / imbalanceHeavyFrac
	res := &bench.Result{
		Title:  fmt.Sprintf("Schedule comparison: front-loaded skew (N=%d, heavy first %d)", n, heavy),
		XLabel: "threads",
		Notes: []string{
			fmt.Sprintf("iterations below %d run %dx the arithmetic of the rest", heavy, imbalanceHeavyWork),
			"strategy fixed at " + cfg.Strategy.String() + "; series vary the loop schedule only",
		},
	}
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i%7) + 1
	}
	out := make([]float64, n)
	for _, sched := range cfg.Schedules {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			r := spray.New(cfg.Strategy, out, th)
			var ins *spray.Instrumentation
			if cfg.Telemetry {
				ins = spray.Instrument(team, r)
			}
			p := imbalancePoint(cfg, ins, th, "skew/"+sched.String(), func(iters int) {
				for it := 0; it < iters; it++ {
					spray.RunReduction(team, r, 0, n, sched,
						func(acc spray.Accessor[float64], from, to int) {
							for i := from; i < to; i++ {
								acc.Add(i, heavyCost(i, heavy, in[i]))
							}
						})
				}
			})
			p.Bytes = r.PeakBytes()
			res.AddPoint(sched.String(), p)
			if ins != nil {
				ins.Detach()
			}
			team.Close()
		}
	}
	return res
}

// skewedBanded builds a banded matrix whose first rows/imbalanceHeavyFrac
// rows carry heavyPerRow entries and the rest avgPerRow — the sparse
// analogue of the front-loaded synthetic: row cost (and so chunk cost)
// is concentrated at the start of the iteration space.
func skewedBanded(rows, avgPerRow, heavyPerRow, halfBand int, seed int64) *sparse.CSR[float32] {
	dense := sparse.Banded[float32](rows/imbalanceHeavyFrac, rows, heavyPerRow, halfBand, seed)
	rest := sparse.Banded[float32](rows-rows/imbalanceHeavyFrac, rows, avgPerRow, halfBand, seed+1)
	// Stack the dense block on top of the sparse remainder. The dense
	// block's band hugs its own (top) diagonal; the remainder's band is
	// shifted so its diagonal continues where the block ends.
	nr := dense.Rows + rest.Rows
	out := &sparse.CSR[float32]{
		Rows:   nr,
		Cols:   rows,
		RowPtr: make([]int64, nr+1),
		Col:    append(append([]int32{}, dense.Col...), rest.Col...),
		Val:    append(append([]float32{}, dense.Val...), rest.Val...),
	}
	copy(out.RowPtr, dense.RowPtr)
	base := dense.RowPtr[dense.Rows]
	for i := 1; i <= rest.Rows; i++ {
		out.RowPtr[dense.Rows+i] = base + rest.RowPtr[i]
	}
	return out
}

// ImbalanceTMV is the sparse leg: a transpose-matrix-vector product over
// a banded matrix whose leading rows are ~8x denser than the rest, so
// per-row work is front-loaded exactly like the synthetic leg but with
// real scatter traffic (and keeper ownership) attached.
func ImbalanceTMV(cfg ImbalanceConfig) *bench.Result {
	rows := cfg.N / 8
	if rows < 1024 {
		rows = 1024
	}
	a := skewedBanded(rows, 4, 32, 200, 7)
	res := &bench.Result{
		Title:  fmt.Sprintf("Schedule comparison: skewed banded TMV (%dx%d, %d nnz)", a.Rows, a.Cols, a.NNZ()),
		XLabel: "threads",
		Notes: []string{
			fmt.Sprintf("first %d rows are ~8x denser than the remaining %d", a.Rows/imbalanceHeavyFrac, a.Rows-a.Rows/imbalanceHeavyFrac),
			"strategy fixed at " + cfg.Strategy.String() + "; series vary the loop schedule only",
		},
	}
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)
	for _, sched := range cfg.Schedules {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			r := spray.New(cfg.Strategy, y, th)
			var ins *spray.Instrumentation
			if cfg.Telemetry {
				ins = spray.Instrument(team, r)
			}
			p := imbalancePoint(cfg, ins, th, "tmv/"+sched.String(), func(iters int) {
				for it := 0; it < iters; it++ {
					sparse.RunTMulVecSched(team, r, a, x, sched)
				}
			})
			p.Bytes = r.PeakBytes()
			res.AddPoint(sched.String(), p)
			if ins != nil {
				ins.Detach()
			}
			team.Close()
		}
	}
	return res
}

// ImbalanceLulesh is the application leg: mini-LULESH force
// accumulation through lulesh.SpraySched, where per-element cost varies
// with mesh distortion as the shock propagates.
func ImbalanceLulesh(cfg ImbalanceConfig) (*bench.Result, error) {
	res := &bench.Result{
		Title:  fmt.Sprintf("Schedule comparison: LULESH %d^3, %d cycles", cfg.Edge, cfg.Cycles),
		XLabel: "threads",
		Notes: []string{
			"time is the full application run (lulesh.Run)",
			"strategy fixed at " + cfg.Strategy.String() + "; series vary the element-loop schedule only",
		},
	}
	params := lulesh.Defaults()
	params.MaxCycles = cfg.Cycles
	params.StopTime = 1e9
	for _, sched := range cfg.Schedules {
		for _, th := range cfg.Threads {
			fs := lulesh.SpraySched(cfg.Strategy, sched)
			team := par.NewTeam(th)
			var runErr error
			summary := cfg.Runner.Measure(func() {
				d := lulesh.New(cfg.Edge, params)
				if _, err := d.Run(team, fs); err != nil && runErr == nil {
					runErr = err
				}
			})
			team.Close()
			if runErr != nil {
				return nil, fmt.Errorf("schedule %s threads %d: %w", sched, th, runErr)
			}
			res.AddPoint(sched.String(), bench.Point{X: float64(th), Time: summary, Bytes: fs.PeakBytes()})
		}
	}
	return res, nil
}

// ImbalanceConv is the uniform control leg: every conv back-propagation
// iteration costs the same, so a balancing schedule has nothing to
// rebalance and the comparison isolates pure hand-out overhead — the
// leg where steal must stay within noise of static to be a safe default
// recommendation.
func ImbalanceConv(cfg ImbalanceConfig) *bench.Result {
	res := &bench.Result{
		Title:    fmt.Sprintf("Schedule comparison: uniform conv back-propagation (N=%d)", cfg.N),
		XLabel:   "threads",
		Baseline: ConvSequentialBaseline(ConvConfig{N: cfg.N, Runner: cfg.Runner}),
		Notes: []string{
			"uniform per-iteration cost: the balanced control, schedules differ only in hand-out overhead",
			"strategy fixed at " + cfg.Strategy.String() + "; series vary the loop schedule only",
		},
	}
	seed := convData(cfg.N)
	out := make([]float32, cfg.N)
	cw := conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}
	for _, sched := range cfg.Schedules {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			r := spray.New(cfg.Strategy, out, th)
			var ins *spray.Instrumentation
			if cfg.Telemetry {
				ins = spray.Instrument(team, r)
			}
			p := imbalancePoint(cfg, ins, th, "conv/"+sched.String(), func(iters int) {
				for it := 0; it < iters; it++ {
					cw.RunBackpropSched(team, r, seed, sched)
				}
			})
			p.Bytes = r.PeakBytes()
			res.AddPoint(sched.String(), p)
			if ins != nil {
				ins.Detach()
			}
			team.Close()
		}
	}
	return res
}

package experiments

import (
	"fmt"

	"spray"
	"spray/internal/bench"
	"spray/internal/mkl"
	"spray/internal/par"
	"spray/internal/sparse"
	"spray/internal/stats"
)

// PlanConfig parameterizes the plan-amortization experiment: repeated
// y += Aᵀ·x applications through one reducer, swept over the number of
// applications per solve. Every solve starts from cold strategy state,
// so a plan-compiled wrapper pays its record region and compile inside
// the measurement — the curve shows where that one-time cost divides
// away, the inspector/executor trade MKL's hinted Optimize makes.
type PlanConfig struct {
	Rows       int   // banded matrix dimension (s3dkt3m2-shaped band profile)
	Threads    int   // fixed team size for the iteration sweep
	Iterations []int // x-axis: applications per cold-start solve
	Strategies []spray.Strategy
	Runner     bench.Runner
	WithMKL    bool

	// Telemetry adds one untimed instrumented solve per (strategy,
	// iterations) point after the timed window: its counters — for plan
	// strategies one miss, iterations-1 hits, and a compile-latency
	// sample — ride along in the JSON output, and OnReport (when set)
	// receives the full region report. The instrumented solve stays
	// outside the timing so counter overhead never contaminates the curve.
	Telemetry bool
	OnReport  func(label string, rep spray.RegionReport)

	// HotProfile, when set, attaches the index-space contention profiler
	// to the untimed instrumented solve (implying one even when Telemetry
	// is off) and delivers its sampled profile per (strategy, iterations)
	// point, labeled "<strategy> iters=<K>". Hotspot tunes the sampling;
	// the zero value uses the profiler defaults.
	HotProfile func(label string, p *spray.HotspotProfile)
	Hotspot    spray.HotspotOptions
}

// DefaultPlanConfig pits the plan wrapper against the strategies it
// bypasses: the no-memory atomic reference, the paper's block and keeper
// schemes, and the write-combining binned wrapper.
func DefaultPlanConfig(rows, threads int) PlanConfig {
	return PlanConfig{
		Rows:       rows,
		Threads:    threads,
		Iterations: []int{1, 2, 4, 8, 16, 32},
		Strategies: []spray.Strategy{
			spray.Atomic(),
			spray.BlockCAS(1024),
			spray.Keeper(),
			spray.Binned(spray.Atomic()),
			spray.Planned(spray.Atomic()),
			spray.Planned(spray.Keeper()),
		},
		Runner:  bench.DefaultRunner(),
		WithMKL: true,
	}
}

// perApply rescales a solve-level summary to seconds per application so
// points at different iteration counts share one axis.
func perApply(s stats.Summary, iters int) stats.Summary {
	f := 1 / float64(iters)
	s.Mean *= f
	s.Min *= f
	s.Max *= f
	s.Median *= f
	s.Stddev *= f
	return s
}

// PlanTMV measures the amortization curve of plan-compiled reduction on
// the banded s3dkt3m2-shaped transpose-matrix-vector product. One
// workload unit is a cold-start solve: fresh strategy state, then the
// product applied K times through it. Reported times are per
// application, so a flat line means no setup cost and a falling line is
// setup cost amortizing across the solve.
func PlanTMV(cfg PlanConfig) *bench.Result {
	a := sparse.Banded[float32](cfg.Rows, cfg.Rows, 21, 600, 1)
	res := &bench.Result{
		Title: fmt.Sprintf("Plan amortization: transpose-matrix-vector on banded %dx%d (%d nnz), t=%d",
			a.Rows, a.Cols, a.NNZ(), cfg.Threads),
		XLabel:   "iterations",
		Baseline: TMVSequentialBaseline(TMVConfig{Matrix: a, Runner: cfg.Runner}),
		Notes: []string{
			"times are per application; every solve starts cold, so plan record+compile and MKL-IE inspection are inside the measurement",
			"mkl-ie includes the hinted inspection (transpose build), unlike fig14's mkl-ie-hint which excludes it",
		},
	}
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)
	th := cfg.Threads

	for _, st := range cfg.Strategies {
		team := spray.NewTeam(th)
		for _, iters := range cfg.Iterations {
			var r spray.Reducer[float32]
			summary := cfg.Runner.AutoBench(func(n int) {
				for s := 0; s < n; s++ {
					r = spray.New(st, y, th)
					sparse.RunTMulVecIters(team, r, a, x, iters)
				}
			})
			p := bench.Point{X: float64(iters), Time: perApply(summary, iters), Bytes: r.PeakBytes()}
			if cfg.Telemetry || cfg.HotProfile != nil {
				ri := spray.New(st, y, th)
				in := spray.Instrument(team, ri)
				if cfg.HotProfile != nil {
					in.EnableHotspot(a.Cols, cfg.Hotspot)
				}
				sparse.RunTMulVecIters(team, ri, a, x, iters)
				rep := in.Report()
				p.Counters = rep.CounterMap()
				if cfg.OnReport != nil {
					cfg.OnReport(fmt.Sprintf("%s iters=%d", st, iters), rep)
				}
				if cfg.HotProfile != nil {
					cfg.HotProfile(fmt.Sprintf("%s iters=%d", st, iters), in.HotspotProfile())
				}
				in.Detach()
			}
			res.AddPoint(st.String(), p)
		}
		team.Close()
	}

	if cfg.WithMKL {
		team := par.NewTeam(th)
		for _, iters := range cfg.Iterations {
			var extra int64
			summary := cfg.Runner.AutoBench(func(n int) {
				for s := 0; s < n; s++ {
					h := mkl.NewHandle(a)
					h.SetHint(mkl.Hint{Transpose: true, Calls: iters})
					h.Optimize() // inspection inside the timing: the cost being amortized
					for k := 0; k < iters; k++ {
						h.ExecuteTMulVec(team, x, y)
					}
					extra = h.ExtraBytes()
				}
			})
			res.AddPoint("mkl-ie", bench.Point{X: float64(iters), Time: perApply(summary, iters), Bytes: extra})
		}
		team.Close()
	}
	return res
}

package experiments

import (
	"strings"
	"testing"
	"time"

	"spray"
	"spray/internal/bench"
	"spray/internal/sparse"
)

func quickRunner() bench.Runner {
	return bench.Runner{Repeats: 1, MinTime: time.Millisecond}
}

func quickConvConfig() ConvConfig {
	cfg := DefaultConvConfig(10_000, 2)
	cfg.Runner = quickRunner()
	cfg.Strategies = []spray.Strategy{spray.Atomic(), spray.Keeper()}
	return cfg
}

func TestFig11ProducesAllSeries(t *testing.T) {
	cfg := quickConvConfig()
	res := Fig11(cfg)
	if res.Baseline <= 0 {
		t.Error("no sequential baseline")
	}
	if len(res.Series) != len(cfg.Strategies) {
		t.Fatalf("series %d, want %d", len(res.Series), len(cfg.Strategies))
	}
	for _, s := range res.Series {
		if len(s.Points) != len(cfg.Threads) {
			t.Errorf("series %s has %d points, want %d", s.Name, len(s.Points), len(cfg.Threads))
		}
		for _, p := range s.Points {
			if p.Time.Mean <= 0 {
				t.Errorf("series %s x=%v: non-positive time", s.Name, p.X)
			}
		}
	}
}

func TestScatterExperimentSeries(t *testing.T) {
	cfg := DefaultScatterConfig(4_000, 2)
	cfg.Runner = quickRunner()
	cfg.Strategies = []spray.Strategy{spray.Atomic(), spray.Keeper()}
	cfg.Telemetry = true
	for name, res := range map[string]*bench.Result{
		"conv": ScatterConv(cfg),
		"tmv":  ScatterTMV(cfg),
	} {
		if res.Baseline <= 0 {
			t.Errorf("%s: no sequential baseline", name)
		}
		if want := 2 * len(cfg.Strategies); len(res.Series) != want {
			t.Fatalf("%s: series %d, want %d", name, len(res.Series), want)
		}
		for _, s := range res.Series {
			if len(s.Points) != len(cfg.Threads) {
				t.Errorf("%s/%s: %d points, want %d", name, s.Name, len(s.Points), len(cfg.Threads))
			}
			for _, p := range s.Points {
				if p.Time.Mean <= 0 {
					t.Errorf("%s/%s x=%v: non-positive time", name, s.Name, p.X)
				}
				if strings.HasSuffix(s.Name, "/binned") && p.Counters["bin-flushes"] == 0 {
					t.Errorf("%s/%s x=%v: binned run recorded no bin flushes", name, s.Name, p.X)
				}
			}
		}
	}
}

func TestTieredExperimentSeries(t *testing.T) {
	cfg := DefaultTieredConfig(4_000, 2)
	cfg.Runner = quickRunner()
	cfg.Strategies = []spray.Strategy{spray.Atomic(), spray.Tiered(spray.Atomic())}
	cfg.Telemetry = true
	for name, res := range map[string]*bench.Result{
		"conv": TieredConv(cfg),
		"tmv":  TieredTMV(cfg),
	} {
		if res.Baseline <= 0 {
			t.Errorf("%s: no sequential baseline", name)
		}
		if len(res.Series) != len(cfg.Strategies) {
			t.Fatalf("%s: series %d, want %d", name, len(res.Series), len(cfg.Strategies))
		}
		for _, s := range res.Series {
			if len(s.Points) != len(cfg.Threads) {
				t.Errorf("%s/%s: %d points, want %d", name, s.Name, len(s.Points), len(cfg.Threads))
			}
			for _, p := range s.Points {
				if p.Time.Mean <= 0 {
					t.Errorf("%s/%s x=%v: non-positive time", name, s.Name, p.X)
				}
				if strings.HasPrefix(s.Name, "hot+") && p.Counters["tiered-hot-hits"] == 0 {
					t.Errorf("%s/%s x=%v: tiered run absorbed no hot hits", name, s.Name, p.X)
				}
			}
		}
	}
}

func TestFig12PicksBestPerStrategy(t *testing.T) {
	cfg := quickConvConfig()
	res := Fig12(cfg)
	if len(res.Series) != len(cfg.Strategies) {
		t.Fatalf("series %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 1 {
			t.Errorf("series %s has %d points, want 1", s.Name, len(s.Points))
		}
		if !strings.Contains(s.Name, "@") || !strings.Contains(s.Name, "T") {
			t.Errorf("series name %q missing best-thread annotation", s.Name)
		}
	}
}

func TestFig13SweepsBlockSizes(t *testing.T) {
	cfg := DefaultFig13Config(10_000, 1)
	cfg.Runner = quickRunner()
	cfg.BlockSizes = []int{64, 1024}
	res := Fig13(cfg)
	wantSeries := 3 + 2*3 // map, btree, keeper + 2 sizes x 3 block modes
	if len(res.Series) != wantSeries {
		t.Fatalf("series %d, want %d", len(res.Series), wantSeries)
	}
	names := map[string]bool{}
	for _, s := range res.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"map", "btree", "keeper", "block-cas-64", "block-private-1024"} {
		if !names[want] {
			t.Errorf("missing series %q in %v", want, names)
		}
	}
}

func TestTMVIncludesMKLBaselines(t *testing.T) {
	a := sparse.Banded[float32](2000, 2000, 9, 40, 1)
	cfg := TMVConfig{
		Name:       "test",
		Matrix:     a,
		Threads:    []int{1, 2},
		Strategies: []spray.Strategy{spray.Atomic()},
		Runner:     quickRunner(),
		WithMKL:    true,
	}
	res := TMV(cfg)
	names := map[string]int{}
	for _, s := range res.Series {
		names[s.Name] = len(s.Points)
	}
	for _, want := range []string{"atomic", "mkl-legacy", "mkl-ie", "mkl-ie-hint"} {
		if names[want] != 2 {
			t.Errorf("series %q has %d points, want 2 (all: %v)", want, names[want], names)
		}
	}
	// The hinted inspector must report matrix-copy-scale memory, far
	// above every SPRAY point on this small matrix.
	for _, s := range res.Series {
		if s.Name != "mkl-ie-hint" {
			continue
		}
		for _, p := range s.Points {
			if p.Bytes < a.Bytes()/2 {
				t.Errorf("mkl-ie-hint bytes %d below half the matrix (%d)", p.Bytes, a.Bytes())
			}
		}
	}
}

func TestTMVWithoutMKL(t *testing.T) {
	a := sparse.Banded[float32](1000, 1000, 5, 20, 1)
	res := TMV(TMVConfig{
		Name: "t", Matrix: a, Threads: []int{1},
		Strategies: []spray.Strategy{spray.Keeper()},
		Runner:     quickRunner(),
	})
	if len(res.Series) != 1 {
		t.Errorf("series: %d", len(res.Series))
	}
}

func TestLuleshExperiment(t *testing.T) {
	cfg := LuleshConfig{
		Edge: 4, Cycles: 3,
		Threads: []int{1, 2},
		Schemes: []string{"original", "block-cas-256"},
		Repeats: 1,
	}
	res, err := Lulesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %s points %d", s.Name, len(s.Points))
		}
	}
	// The original scheme must report its 8-copy memory.
	for _, s := range res.Series {
		if s.Name == "lulesh-original" && s.Points[0].Bytes == 0 {
			t.Error("original scheme reported zero memory")
		}
	}
}

func TestLuleshBadSchemeName(t *testing.T) {
	_, err := Lulesh(LuleshConfig{
		Edge: 3, Cycles: 1, Threads: []int{1},
		Schemes: []string{"no-such-strategy"}, Repeats: 1,
	})
	if err == nil {
		t.Error("bad scheme name accepted")
	}
}

func TestPlanTMVExperiment(t *testing.T) {
	cfg := DefaultPlanConfig(3000, 2)
	cfg.Runner = quickRunner()
	cfg.Iterations = []int{1, 4}
	cfg.Strategies = []spray.Strategy{spray.Atomic(), spray.Planned(spray.Atomic())}
	cfg.Telemetry = true
	res := PlanTMV(cfg)
	if res.Baseline <= 0 {
		t.Error("no sequential baseline")
	}
	names := map[string]int{}
	for _, s := range res.Series {
		names[s.Name] = len(s.Points)
	}
	for _, want := range []string{"atomic", "plan+atomic", "mkl-ie"} {
		if names[want] != len(cfg.Iterations) {
			t.Errorf("series %q has %d points, want %d (all: %v)", want, names[want], len(cfg.Iterations), names)
		}
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Time.Mean <= 0 {
				t.Errorf("%s x=%v: non-positive per-apply time", s.Name, p.X)
			}
			if s.Name != "plan+atomic" {
				continue
			}
			// The instrumented solve must show the lifecycle: one record
			// miss, hits for every later application of the solve.
			if p.Counters["plan-misses"] != 1 {
				t.Errorf("plan+atomic x=%v: plan-misses = %d, want 1", p.X, p.Counters["plan-misses"])
			}
			if want := uint64(p.X) - 1; p.Counters["plan-hits"] != want {
				t.Errorf("plan+atomic x=%v: plan-hits = %d, want %d", p.X, p.Counters["plan-hits"], want)
			}
		}
	}
}

func TestConvSequentialBaselinePositive(t *testing.T) {
	cfg := quickConvConfig()
	if b := ConvSequentialBaseline(cfg); b <= 0 {
		t.Errorf("baseline %v", b)
	}
}

func TestExtensionsExperiment(t *testing.T) {
	cfg := quickConvConfig()
	res := Extensions(cfg)
	names := map[string]bool{}
	for _, s := range res.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"ordered", "auto-1024", "compensated", "dense", "atomic"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
	// Ordered must report the largest memory (log of every update).
	var orderedBytes, blockBytes int64
	for _, s := range res.Series {
		for _, p := range s.Points {
			switch s.Name {
			case "ordered":
				if p.Bytes > orderedBytes {
					orderedBytes = p.Bytes
				}
			case "block-cas-1024":
				if p.Bytes > blockBytes {
					blockBytes = p.Bytes
				}
			}
		}
	}
	if orderedBytes <= blockBytes {
		t.Errorf("ordered bytes %d not above block %d", orderedBytes, blockBytes)
	}
}

// TestHotspotProfileHook checks that the experiment drivers deliver one
// contention profile per measured configuration when HotProfile is set
// (implying instrumentation), with the keeper's cross-boundary traffic
// visible in the conv profiles.
func TestHotspotProfileHook(t *testing.T) {
	cfg := quickConvConfig()
	var labels []string
	profiles := map[string]*spray.HotspotProfile{}
	cfg.HotProfile = func(label string, p *spray.HotspotProfile) {
		labels = append(labels, label)
		profiles[label] = p
	}
	cfg.Hotspot = spray.HotspotOptions{SamplePeriod: 1}
	Fig11(cfg)
	if want := len(cfg.Strategies) * len(cfg.Threads); len(labels) != want {
		t.Fatalf("profiles delivered = %d (%v), want %d", len(labels), labels, want)
	}
	p := profiles["keeper t=2"]
	if p == nil {
		t.Fatalf("no keeper t=2 profile in %v", labels)
	}
	if p.Strategy != "keeper" || p.Threads != 2 {
		t.Errorf("profile identity %q/%d", p.Strategy, p.Threads)
	}
	if p.Updates == 0 {
		t.Error("profile has no update denominator")
	}
	if p.Totals["keeper-foreign"] == 0 {
		t.Error("keeper t=2 conv profile saw no cross-boundary traffic")
	}
	if one := profiles["keeper t=1"]; one == nil || one.TotalConflicts() != 0 {
		t.Errorf("keeper t=1 should profile zero conflicts, got %+v", one)
	}

	// The bulk driver delivers under the same labels.
	bcfg := DefaultBulkConfig(10_000, 2)
	bcfg.Runner = quickRunner()
	bcfg.Strategies = []spray.Strategy{spray.Keeper()}
	seen := 0
	bcfg.HotProfile = func(label string, p *spray.HotspotProfile) {
		seen++
		if p == nil {
			t.Errorf("nil profile for %s", label)
		}
	}
	bcfg.Hotspot = spray.HotspotOptions{SamplePeriod: 1}
	BulkConv(bcfg)
	if want := len(bcfg.Strategies) * len(bcfg.Threads); seen != want {
		t.Fatalf("bulk profiles delivered = %d, want %d", seen, want)
	}
}

package experiments

import (
	"fmt"

	"spray"
	"spray/internal/bench"
	"spray/internal/sparse"
)

// DefaultScatterConfig selects the strategies where write-combining has
// something to combine into: atomic (one CAS pass per warm bin instead of
// per element), block-cas (one claim per flushed bin), keeper (bulk
// ownership runs plus the mid-region mailbox drain) and auto (exact
// per-block hotness counts from whole-bin flushes).
func DefaultScatterConfig(n, maxThreads int) BulkConfig {
	return BulkConfig{
		N:       n,
		Threads: bench.ThreadCounts(maxThreads),
		Strategies: []spray.Strategy{
			spray.Atomic(),
			spray.BlockCAS(1024),
			spray.Keeper(),
			spray.Auto(1024),
		},
		Runner: bench.DefaultRunner(),
	}
}

// scatterPair measures one (strategy, threads) point twice — the plain
// reducer and its spray.Binned wrapper over the same run body — and adds
// both series points.
func scatterPair(cfg BulkConfig, res *bench.Result, st spray.Strategy, th int, out []float32, run func(r spray.Reducer[float32], team *spray.Team)) {
	for _, v := range []struct {
		suffix string
		st     spray.Strategy
	}{
		{"/unbinned", st},
		{"/binned", spray.Binned(st)},
	} {
		team := spray.NewTeam(th)
		if cfg.Trace != nil {
			team.SetTracer(cfg.Trace.New(fmt.Sprintf("scatter/%s%s t=%d", st, v.suffix, th), th))
		}
		r := spray.New(v.st, out, th)
		var in *spray.Instrumentation
		if cfg.Telemetry || cfg.HotProfile != nil {
			in = spray.Instrument(team, r)
			if cfg.HotProfile != nil {
				in.EnableHotspot(len(out), cfg.Hotspot)
			}
		}
		p := bulkPoint(cfg, in, th, st.String()+v.suffix, func(iters int) {
			for i := 0; i < iters; i++ {
				run(r, team)
			}
		})
		p.Bytes = r.PeakBytes()
		res.AddPoint(st.String()+v.suffix, p)
		if in != nil {
			if cfg.HotProfile != nil {
				cfg.HotProfile(fmt.Sprintf("%s%s t=%d", st, v.suffix, th), in.HotspotProfile())
			}
			in.Detach()
		}
		team.Close()
	}
}

// ScatterConv compares the unbinned scatter path against the binned
// write-combining path on the duplicate-heavy conv adjoint stream: each
// tile emits interleaved (i-1, i, i+1) triples, so every output index
// arrives three times per tile and the binned engine coalesces 3 -> 1
// before touching the strategy.
func ScatterConv(cfg BulkConfig) *bench.Result {
	res := &bench.Result{
		Title:    fmt.Sprintf("Write-combining scatter: conv interleaved-tap adjoint, unbinned vs binned (N=%d)", cfg.N),
		XLabel:   "threads",
		Baseline: ConvSequentialBaseline(ConvConfig{N: cfg.N, Runner: cfg.Runner}),
		Notes: []string{
			"<strategy>/unbinned: Scatter straight into the strategy; <strategy>/binned: staged through per-block bins with duplicate coalescing",
			"stream has 3 contributions per output index per tile (taps of i-1, i, i+1)",
		},
	}
	seed := convData(cfg.N)
	out := make([]float32, cfg.N)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			scatterPair(cfg, res, st, th, out, func(r spray.Reducer[float32], team *spray.Team) {
				convWeights.RunBackpropScatter(team, r, seed)
			})
		}
	}
	return res
}

// ScatterTMV runs the same comparison on the banded transpose-matrix-
// vector product: consecutive rows scatter into overlapping column
// windows, so bins are revisited across rows and cross-row duplicates
// coalesce. The chunked schedule gives the keeper's mid-region drain
// chunk boundaries to run at.
func ScatterTMV(cfg BulkConfig) *bench.Result {
	a := sparse.Banded[float32](cfg.N, cfg.N, 16, 96, 7)
	res := &bench.Result{
		Title:    fmt.Sprintf("Write-combining scatter: banded transpose-matrix-vector, unbinned vs binned (%dx%d, %d nnz)", a.Rows, a.Cols, a.NNZ()),
		XLabel:   "threads",
		Baseline: TMVSequentialBaseline(TMVConfig{Matrix: a, Runner: cfg.Runner}),
		Notes: []string{
			"<strategy>/unbinned: one Scatter per CSR row; <strategy>/binned: rows staged through per-block bins, duplicates across rows coalesced",
			"StaticChunk(256) schedule: keeper applies inbound mailbox parcels at chunk boundaries",
		},
	}
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)
	sched := spray.StaticChunk(256)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			scatterPair(cfg, res, st, th, y, func(r spray.Reducer[float32], team *spray.Team) {
				sparse.RunTMulVecSched(team, r, a, x, sched)
			})
		}
	}
	return res
}

// Package experiments implements the paper's evaluation section: one
// driver per figure, shared between the cmd/ tools and the benchmark
// suite. Every driver returns a bench.Result holding the same series the
// corresponding figure plots.
package experiments

import (
	"fmt"
	"math/rand"

	"spray"
	"spray/internal/bench"
	"spray/internal/conv"
	"spray/internal/telemetry"
)

// ConvConfig parameterizes the 1-D convolution back-propagation
// experiment (§VI-A / Figures 11–13). The paper uses 10⁷ single-precision
// elements.
type ConvConfig struct {
	N          int
	Threads    []int
	Strategies []spray.Strategy
	Runner     bench.Runner

	// Schedule selects the loop schedule the back-propagation sweep runs
	// under (zero value: static, the paper's setup). Schedule sweeps use
	// this to rerun the figure per schedule without recompiling.
	Schedule spray.Schedule

	// Instrument attaches telemetry to every (strategy, threads) run:
	// each measured point carries the strategy counters accumulated while
	// it was timed, and OnReport (when set) receives the full
	// RegionReport, labeled "<strategy> t=<threads>".
	Instrument bool
	OnReport   func(label string, rep spray.RegionReport)

	// Trace, when set, records a span timeline for every (strategy,
	// threads) run into the sink: each configuration becomes one trace
	// process named "<strategy> t=<threads>" with one timeline row per
	// team member. Write the collected timelines with Trace.WriteChrome.
	Trace *telemetry.TraceSink

	// HotProfile, when set, attaches the index-space contention profiler
	// (implying Instrument) and delivers one sampled profile per
	// (strategy, threads) run, labeled "<strategy> t=<threads>", covering
	// the measured window. Hotspot tunes the sampling; the zero value
	// uses the profiler defaults.
	HotProfile func(label string, p *spray.HotspotProfile)
	Hotspot    spray.HotspotOptions
}

// DefaultConvConfig returns the paper's setup scaled by size (pass the
// paper's 10⁷ or something smaller for quick runs).
func DefaultConvConfig(n, maxThreads int) ConvConfig {
	return ConvConfig{
		N:       n,
		Threads: bench.ThreadCounts(maxThreads),
		Strategies: []spray.Strategy{
			spray.Builtin(),
			spray.Dense(),
			spray.Atomic(),
			spray.BlockLock(1024),
			spray.BlockCAS(1024),
			spray.Keeper(),
		},
		Runner: bench.DefaultRunner(),
	}
}

// convData builds a deterministic seed vector.
func convData(n int) []float32 {
	rng := rand.New(rand.NewSource(42))
	seed := make([]float32, n)
	for i := range seed {
		seed[i] = rng.Float32()
	}
	return seed
}

// convWeights is the fixed 3-point kernel.
var convWeights = conv.Weights3[float32]{WL: 0.25, WC: 0.5, WR: 0.25}

// ConvSequentialBaseline measures the sequential Figure 9 sweep.
func ConvSequentialBaseline(cfg ConvConfig) float64 {
	seed := convData(cfg.N)
	out := make([]float32, cfg.N)
	return cfg.Runner.AutoBench(func(iters int) {
		for i := 0; i < iters; i++ {
			convWeights.BackpropSeq(seed, out)
		}
	}).Mean
}

// Fig11 reproduces Figure 11: speedup of OpenMP-style and SPRAY
// reductions over the sequential back-propagation across thread counts.
// (The paper's three-compiler dimension collapses to the single Go
// toolchain; see DESIGN.md.)
func Fig11(cfg ConvConfig) *bench.Result {
	res := &bench.Result{
		Title:    "Figure 11: conv back-propagation speedup over sequential",
		XLabel:   "threads",
		Baseline: ConvSequentialBaseline(cfg),
		Notes: []string{
			"paper sweeps icc/gcc/clang; Go has a single toolchain",
			fmt.Sprintf("N=%d float32 elements", cfg.N),
		},
	}
	seed := convData(cfg.N)
	out := make([]float32, cfg.N)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			if cfg.Trace != nil {
				team.SetTracer(cfg.Trace.New(fmt.Sprintf("%s t=%d", st, th), th))
			}
			r := spray.New(st, out, th)
			var in *spray.Instrumentation
			if cfg.Instrument || cfg.HotProfile != nil {
				in = spray.Instrument(team, r)
				if cfg.HotProfile != nil {
					in.EnableHotspot(cfg.N, cfg.Hotspot)
				}
			}
			summary := cfg.Runner.AutoBench(func(iters int) {
				for i := 0; i < iters; i++ {
					convWeights.RunBackpropSched(team, r, seed, cfg.Schedule)
				}
			})
			p := bench.Point{X: float64(th), Time: summary, Bytes: r.PeakBytes()}
			if in != nil {
				rep := in.Report()
				p.Counters = rep.CounterMap()
				if cfg.OnReport != nil {
					cfg.OnReport(fmt.Sprintf("%s t=%d", st, th), rep)
				}
				if cfg.HotProfile != nil {
					cfg.HotProfile(fmt.Sprintf("%s t=%d", st, th), in.HotspotProfile())
				}
				in.Detach()
			}
			res.AddPoint(st.String(), p)
			team.Close()
		}
	}
	return res
}

// Fig12 reproduces Figure 12: best absolute run time per reduction
// implementation across all tested thread counts.
func Fig12(cfg ConvConfig) *bench.Result {
	full := Fig11(cfg)
	res := &bench.Result{
		Title:    "Figure 12: conv back-propagation best absolute time per implementation",
		XLabel:   "impl#",
		Baseline: full.Baseline,
		Notes: []string{
			"paper compares compilers x optimization levels; reproduced as best-per-strategy",
		},
	}
	for i, s := range full.Series {
		best := s.Points[0]
		for _, p := range s.Points[1:] {
			if p.Time.Mean < best.Time.Mean {
				best = p
			}
		}
		res.AddPoint(fmt.Sprintf("%s@%dT", s.Name, int(best.X)), bench.Point{X: float64(i + 1), Time: best.Time, Bytes: best.Bytes})
	}
	return res
}

// Fig13Config extends the conv experiment with the block-size sweep of
// Figure 13.
type Fig13Config struct {
	ConvConfig
	BlockSizes []int
}

// DefaultFig13Config uses the paper's block-size range 16..16384.
func DefaultFig13Config(n, maxThreads int) Fig13Config {
	cfg := DefaultConvConfig(n, maxThreads)
	cfg.Strategies = nil // replaced by the sweep below
	return Fig13Config{
		ConvConfig: cfg,
		BlockSizes: []int{16, 64, 256, 1024, 4096, 16384},
	}
}

// Fig13 reproduces Figure 13: scalability of SPRAY backends and block
// sizes over the sequential back-propagation.
func Fig13(cfg Fig13Config) *bench.Result {
	strategies := []spray.Strategy{spray.Map(), spray.BTree(0), spray.Keeper()}
	for _, bs := range cfg.BlockSizes {
		strategies = append(strategies,
			spray.BlockPrivate(bs), spray.BlockLock(bs), spray.BlockCAS(bs))
	}
	c := cfg.ConvConfig
	c.Strategies = strategies
	full := Fig11(c)
	full.Title = "Figure 13: SPRAY backends and block-size sweep (conv back-propagation)"
	return full
}

package experiments

import (
	"fmt"

	"spray"
	"spray/internal/bench"
	"spray/internal/lulesh"
	"spray/internal/par"
)

// LuleshConfig parameterizes the shock-hydrodynamics experiment (§VI-C /
// Figure 16). The paper runs a 90³ mesh for 100 iterations; the default
// here is smaller so the sweep finishes on a laptop — pass Edge=90 to
// match the paper exactly.
type LuleshConfig struct {
	Edge    int
	Cycles  int
	Threads []int
	Schemes []string // force-scheme names: "original" or spray strategy names
	Repeats int
}

// DefaultLuleshConfig returns the Figure 16 sweep.
func DefaultLuleshConfig(edge, cycles, maxThreads int) LuleshConfig {
	return LuleshConfig{
		Edge:    edge,
		Cycles:  cycles,
		Threads: bench.ThreadCounts(maxThreads),
		Schemes: []string{
			"original", "omp-builtin", "dense", "atomic",
			"block-lock-1024", "block-cas-1024", "keeper",
		},
		Repeats: 3,
	}
}

// luleshScheme resolves a scheme name.
func luleshScheme(name string) (lulesh.ForceScheme, error) {
	if name == "original" {
		return lulesh.Original(), nil
	}
	st, err := spray.ParseStrategy(name)
	if err != nil {
		return nil, err
	}
	return lulesh.Spray(st), nil
}

// Lulesh reproduces Figure 16: whole-application run time (left) and
// force-accumulation memory overhead (right, the Bytes column) for the
// original LULESH scheme and the SPRAY reducers across thread counts.
func Lulesh(cfg LuleshConfig) (*bench.Result, error) {
	res := &bench.Result{
		Title:  fmt.Sprintf("Figure 16: LULESH %d^3, %d cycles", cfg.Edge, cfg.Cycles),
		XLabel: "threads",
		Notes: []string{
			"time is the full application run, as printed by LULESH (paper §VI-C)",
			"memory is the force-accumulation scheme's peak overhead",
		},
	}
	params := lulesh.Defaults()
	params.MaxCycles = cfg.Cycles
	params.StopTime = 1e9 // cycle-bound, like the paper's fixed iteration count

	runner := bench.Runner{Repeats: cfg.Repeats}
	for _, name := range cfg.Schemes {
		for _, th := range cfg.Threads {
			fs, err := luleshScheme(name)
			if err != nil {
				return nil, err
			}
			team := par.NewTeam(th)
			var runErr error
			summary := runner.Measure(func() {
				d := lulesh.New(cfg.Edge, params)
				if _, err := d.Run(team, fs); err != nil && runErr == nil {
					runErr = err
				}
			})
			team.Close()
			if runErr != nil {
				return nil, fmt.Errorf("scheme %s threads %d: %w", name, th, runErr)
			}
			res.AddPoint(fs.Name(), bench.Point{X: float64(th), Time: summary, Bytes: fs.PeakBytes()})
		}
	}
	return res, nil
}

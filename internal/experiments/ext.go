package experiments

import (
	"spray"
	"spray/internal/bench"
)

// Extensions reproduces no paper figure: it measures the beyond-paper
// strategies (ordered, auto, compensated) against the relevant baselines
// on the convolution back-propagation kernel, so EXPERIMENTS.md can
// report their overheads with the same methodology as the paper figures.
func Extensions(cfg ConvConfig) *bench.Result {
	c := cfg
	c.Strategies = []spray.Strategy{
		spray.Dense(),       // baseline for compensated (same structure)
		spray.Compensated(), // + Kahan correction, 2x memory
		spray.Atomic(),      // baseline for auto's scattered regime
		spray.Auto(1024),    // adaptive escalation
		spray.BlockCAS(1024),
		spray.Ordered(), // determinism at update-log memory cost
		spray.Keeper(),
	}
	res := Fig11(c)
	res.Title = "Extensions: ordered/auto/compensated vs. baselines (conv back-propagation)"
	res.Notes = append(res.Notes,
		"ordered buys bitwise determinism with memory proportional to the update count",
		"auto starts atomic and privatizes hot blocks; this kernel's reuse drives it to block behavior",
		"compensated doubles dense's memory for compensated summation")
	return res
}

package experiments

import (
	"testing"

	"spray"
	"spray/internal/bench"
	"spray/internal/num"
	"spray/internal/sparse"
)

func quickImbalanceConfig() ImbalanceConfig {
	cfg := DefaultImbalanceConfig(20_000, 2)
	cfg.Runner = quickRunner()
	cfg.Edge = 6
	cfg.Cycles = 2
	return cfg
}

// checkScheduleSeries asserts one series per configured schedule, one
// point per thread count, positive times throughout.
func checkScheduleSeries(t *testing.T, name string, cfg ImbalanceConfig, res *bench.Result) {
	t.Helper()
	if len(res.Series) != len(cfg.Schedules) {
		t.Fatalf("%s: series %d, want %d", name, len(res.Series), len(cfg.Schedules))
	}
	for i, s := range res.Series {
		if want := cfg.Schedules[i].String(); s.Name != want {
			t.Errorf("%s: series %d named %q, want schedule %q", name, i, s.Name, want)
		}
		if len(s.Points) != len(cfg.Threads) {
			t.Errorf("%s: series %s has %d points, want %d", name, s.Name, len(s.Points), len(cfg.Threads))
		}
		for _, p := range s.Points {
			if p.Time.Mean <= 0 {
				t.Errorf("%s: series %s x=%v: non-positive time", name, s.Name, p.X)
			}
		}
	}
}

func TestImbalanceSkewSeries(t *testing.T) {
	cfg := quickImbalanceConfig()
	cfg.Telemetry = true
	var sawSteal bool
	cfg.OnReport = func(label string, rep spray.RegionReport) {
		if rep.Counters.Get(0) >= 0 { // any report proves the plumbing
			sawSteal = true
		}
	}
	checkScheduleSeries(t, "skew", cfg, ImbalanceSkew(cfg))
	if !sawSteal {
		t.Error("telemetry enabled but no reports delivered")
	}
}

func TestImbalanceTMVSeries(t *testing.T) {
	cfg := quickImbalanceConfig()
	checkScheduleSeries(t, "tmv", cfg, ImbalanceTMV(cfg))
}

func TestImbalanceConvSeries(t *testing.T) {
	cfg := quickImbalanceConfig()
	res := ImbalanceConv(cfg)
	if res.Baseline <= 0 {
		t.Error("conv leg has no sequential baseline")
	}
	checkScheduleSeries(t, "conv", cfg, res)
}

func TestImbalanceLuleshSeries(t *testing.T) {
	cfg := quickImbalanceConfig()
	res, err := ImbalanceLulesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkScheduleSeries(t, "lulesh", cfg, res)
}

// TestSkewedBandedShape pins the generator the TMV leg relies on: the
// leading block really is denser, rows are sorted CSR with in-range
// columns, and the transpose product matches a dense reference.
func TestSkewedBandedShape(t *testing.T) {
	const rows = 2048
	a := skewedBanded(rows, 4, 32, 100, 3)
	if a.Rows != rows || a.Cols != rows {
		t.Fatalf("shape %dx%d, want %dx%d", a.Rows, a.Cols, rows, rows)
	}
	block := rows / imbalanceHeavyFrac
	var heavyNNZ, restNNZ int64
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if i < block {
			heavyNNZ += hi - lo
		} else {
			restNNZ += hi - lo
		}
		for k := lo; k < hi; k++ {
			if c := a.Col[k]; c < 0 || int(c) >= a.Cols {
				t.Fatalf("row %d: column %d out of range", i, c)
			}
		}
	}
	heavyPerRow := float64(heavyNNZ) / float64(block)
	restPerRow := float64(restNNZ) / float64(a.Rows-block)
	if heavyPerRow < 4*restPerRow {
		t.Errorf("heavy rows %.1f nnz, rest %.1f nnz: skew below 4x", heavyPerRow, restPerRow)
	}

	// Transpose product against a dense reference.
	x := vecOnes(a.Rows)
	want := make([]float32, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			want[a.Col[k]] += a.Val[k] * x[i]
		}
	}
	y := make([]float32, a.Cols)
	team := spray.NewTeam(2)
	defer team.Close()
	r := spray.New(spray.Keeper(), y, 2)
	sparse.RunTMulVecSched(team, r, a, x, spray.Steal(0))
	if d := num.MaxAbsDiff(y, want); d > 1e-3 {
		t.Errorf("skewed banded TMV diverges from dense reference: %v", d)
	}
}

package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"spray/internal/telemetry"
)

// TestFig11TraceSinkCapturesEveryPoint checks the experiment drivers'
// trace plumbing: with a sink configured, every (strategy, thread-count)
// point of the sweep gets its own tracer/timeline, and the combined
// export is loadable Chrome trace-event JSON.
func TestFig11TraceSinkCapturesEveryPoint(t *testing.T) {
	cfg := quickConvConfig()
	cfg.Trace = telemetry.NewTraceSink(256)
	Fig11(cfg)

	want := len(cfg.Strategies) * len(cfg.Threads)
	if cfg.Trace.Len() != want {
		t.Fatalf("sink holds %d tracers, want %d (one per sweep point)", cfg.Trace.Len(), want)
	}

	var buf bytes.Buffer
	if err := cfg.Trace.WriteChrome(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("combined trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	procNames := 0
	spans := 0
	for _, e := range trace.TraceEvents {
		pids[e.Pid] = true
		switch {
		case e.Name == "process_name":
			procNames++
		case e.Ph == "B":
			spans++
		}
	}
	if len(pids) != want || procNames != want {
		t.Errorf("%d pids and %d process_name events, want %d of each", len(pids), procNames, want)
	}
	if spans == 0 {
		t.Error("no span events captured from the sweep")
	}
}

package experiments

import (
	"fmt"

	"spray"
	"spray/internal/bench"
	"spray/internal/sparse"
	"spray/internal/telemetry"
)

// BulkConfig parameterizes the bulk-update comparison: every strategy is
// driven twice over the same workload — once through the element-wise
// Add loop and once through the AddN/Scatter batch path — so the two
// series isolate per-call dispatch and bounds-check overhead.
type BulkConfig struct {
	N          int // conv array length / tmv node count
	Threads    []int
	Strategies []spray.Strategy
	Runner     bench.Runner

	// Telemetry instruments every (strategy, threads) run: each measured
	// point carries the strategy counters accumulated while it was timed,
	// and OnReport (when set) receives the full RegionReport per series
	// point, labeled "<strategy>/<each|bulk> t=<threads>".
	Telemetry bool
	OnReport  func(label string, rep spray.RegionReport)

	// Trace, when set, records a span timeline per (strategy, threads)
	// configuration into the sink (both the each and bulk passes land in
	// the same process, named "<workload>/<strategy> t=<threads>").
	Trace *telemetry.TraceSink

	// HotProfile, when set, attaches the index-space contention profiler
	// (implying Telemetry) and delivers one sampled profile per
	// (strategy, threads) configuration, labeled "<strategy> t=<threads>".
	// Each point resets the counters and sketches, so the profile covers
	// the last measured window (the bulk pass). Hotspot tunes the
	// sampling; the zero value uses the profiler defaults.
	HotProfile func(label string, p *spray.HotspotProfile)
	Hotspot    spray.HotspotOptions
}

// DefaultBulkConfig selects the strategies where the batch path has a
// structural shortcut (dense/block: contiguous runs; keeper: ownership
// runs; atomic as the no-memory reference point).
func DefaultBulkConfig(n, maxThreads int) BulkConfig {
	return BulkConfig{
		N:       n,
		Threads: bench.ThreadCounts(maxThreads),
		Strategies: []spray.Strategy{
			spray.Dense(),
			spray.Atomic(),
			spray.BlockCAS(1024),
			spray.Keeper(),
		},
		Runner: bench.DefaultRunner(),
	}
}

// bulkPoint measures one series point, capturing the telemetry counters
// accumulated during the timed window when the run is instrumented.
func bulkPoint(cfg BulkConfig, in *spray.Instrumentation, th int, label string, run func(iters int)) bench.Point {
	if in != nil {
		in.Reset()
	}
	p := bench.Point{X: float64(th), Time: cfg.Runner.AutoBench(run)}
	if in != nil {
		rep := in.Report()
		p.Counters = rep.CounterMap()
		if cfg.OnReport != nil {
			cfg.OnReport(fmt.Sprintf("%s t=%d", label, th), rep)
		}
	}
	return p
}

// BulkConv compares element-wise against bulk accumulation on the conv
// back-propagation workload (contiguous AddN runs).
func BulkConv(cfg BulkConfig) *bench.Result {
	res := &bench.Result{
		Title:    fmt.Sprintf("Bulk fast path: conv back-propagation, each vs bulk (N=%d)", cfg.N),
		XLabel:   "threads",
		Baseline: ConvSequentialBaseline(ConvConfig{N: cfg.N, Runner: cfg.Runner}),
		Notes: []string{
			"<strategy>/each: one Add per tap; <strategy>/bulk: tiled AddN batches",
		},
	}
	seed := convData(cfg.N)
	out := make([]float32, cfg.N)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			if cfg.Trace != nil {
				team.SetTracer(cfg.Trace.New(fmt.Sprintf("conv/%s t=%d", st, th), th))
			}
			r := spray.New(st, out, th)
			var in *spray.Instrumentation
			if cfg.Telemetry || cfg.HotProfile != nil {
				in = spray.Instrument(team, r)
				if cfg.HotProfile != nil {
					in.EnableHotspot(cfg.N, cfg.Hotspot)
				}
			}
			each := bulkPoint(cfg, in, th, st.String()+"/each", func(iters int) {
				for i := 0; i < iters; i++ {
					convWeights.RunBackpropEach(team, r, seed)
				}
			})
			each.Bytes = r.PeakBytes()
			res.AddPoint(st.String()+"/each", each)
			bulk := bulkPoint(cfg, in, th, st.String()+"/bulk", func(iters int) {
				for i := 0; i < iters; i++ {
					convWeights.RunBackprop(team, r, seed)
				}
			})
			bulk.Bytes = r.PeakBytes()
			res.AddPoint(st.String()+"/bulk", bulk)
			if in != nil {
				if cfg.HotProfile != nil {
					cfg.HotProfile(fmt.Sprintf("%s t=%d", st, th), in.HotspotProfile())
				}
				in.Detach()
			}
			team.Close()
		}
	}
	return res
}

// BulkTMV compares element-wise against bulk accumulation on the CSR
// transpose-matrix-vector workload (data-dependent Scatter batches over
// each row's column list).
func BulkTMV(cfg BulkConfig) *bench.Result {
	a := sparse.Graph[float32](cfg.N, 8, 99)
	res := &bench.Result{
		Title:    fmt.Sprintf("Bulk fast path: transpose-matrix-vector, each vs bulk (%dx%d, %d nnz)", a.Rows, a.Cols, a.NNZ()),
		XLabel:   "threads",
		Baseline: TMVSequentialBaseline(TMVConfig{Matrix: a, Runner: cfg.Runner}),
		Notes: []string{
			"<strategy>/each: one Add per nonzero; <strategy>/bulk: one Scatter per row",
		},
	}
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			if cfg.Trace != nil {
				team.SetTracer(cfg.Trace.New(fmt.Sprintf("tmv/%s t=%d", st, th), th))
			}
			r := spray.New(st, y, th)
			var in *spray.Instrumentation
			if cfg.Telemetry || cfg.HotProfile != nil {
				in = spray.Instrument(team, r)
				if cfg.HotProfile != nil {
					in.EnableHotspot(a.Cols, cfg.Hotspot)
				}
			}
			each := bulkPoint(cfg, in, th, st.String()+"/each", func(iters int) {
				for i := 0; i < iters; i++ {
					sparse.RunTMulVecEach(team, r, a, x)
				}
			})
			each.Bytes = r.PeakBytes()
			res.AddPoint(st.String()+"/each", each)
			bulk := bulkPoint(cfg, in, th, st.String()+"/bulk", func(iters int) {
				for i := 0; i < iters; i++ {
					sparse.RunTMulVec(team, r, a, x)
				}
			})
			bulk.Bytes = r.PeakBytes()
			res.AddPoint(st.String()+"/bulk", bulk)
			if in != nil {
				if cfg.HotProfile != nil {
					cfg.HotProfile(fmt.Sprintf("%s t=%d", st, th), in.HotspotProfile())
				}
				in.Detach()
			}
			team.Close()
		}
	}
	return res
}

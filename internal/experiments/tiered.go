package experiments

import (
	"fmt"
	"math/rand"

	"spray"
	"spray/internal/bench"
	"spray/internal/sparse"
)

// DefaultTieredConfig selects the hot/cold comparison set: the tiered
// reducer against the two strategies it interpolates between (atomic —
// zero memory, CAS on every collision; keeper — static ownership with
// mailbox queues) and the adaptive block privatizer, its closest
// relative in spirit (auto privatizes whole hot blocks, hot+ caches
// individual hot lines with a fixed footprint).
func DefaultTieredConfig(n, maxThreads int) BulkConfig {
	return BulkConfig{
		N:       n,
		Threads: bench.ThreadCounts(maxThreads),
		Strategies: []spray.Strategy{
			spray.Atomic(),
			spray.Tiered(spray.Atomic()),
			spray.Keeper(),
			spray.Auto(1024),
		},
		Runner: bench.DefaultRunner(),
	}
}

// zipfStream is a pre-generated skewed scatter workload: tiles of
// Zipfian-distributed indices into [0, n), the access shape of conv
// backprop through an embedding/attention layer — a few hundred hot rows
// absorb most of the gradient traffic while a long tail stays cold.
type zipfStream struct {
	n    int
	idx  [][]int32
	vals [][]float32
}

func newZipfStream(n, tiles, batch int, s float64, seed int64) *zipfStream {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	st := &zipfStream{n: n, idx: make([][]int32, tiles), vals: make([][]float32, tiles)}
	for t := range st.idx {
		st.idx[t] = make([]int32, batch)
		st.vals[t] = make([]float32, batch)
		for j := range st.idx[t] {
			st.idx[t][j] = int32(z.Uint64())
			st.vals[t][j] = rng.Float32()
		}
	}
	return st
}

// run drives one region: tiles are distributed with a chunked schedule
// so the tiered reducer's chunk-boundary promotion hook fires, and each
// tile lands as one Scatter batch.
func (st *zipfStream) run(team *spray.Team, r spray.Reducer[float32]) {
	spray.RunReduction(team, r, 0, len(st.idx), spray.StaticChunk(16),
		func(acc spray.Accessor[float32], from, to int) {
			b := spray.Bulk(acc)
			for t := from; t < to; t++ {
				b.Scatter(st.idx[t], st.vals[t])
			}
		})
}

// seqBaseline is the scalar reference applying the same stream.
func (st *zipfStream) seqBaseline(r bench.Runner) float64 {
	out := make([]float32, st.n)
	return r.AutoBench(func(iters int) {
		for i := 0; i < iters; i++ {
			for t := range st.idx {
				for j, ix := range st.idx[t] {
					out[ix] += st.vals[t][j]
				}
			}
		}
	}).Mean
}

// warmSeedFromProfile performs the profile-guided half of the tiered
// promotion policy: one untimed region with the contention profiler
// attached, then the profile's top lines seeded into the reducer's
// tiered layer. A no-op (beyond the warmup run) for strategies without
// one — every strategy gets the same warmup so the comparison stays
// fair, and the online promotion path still adapts on top.
func warmSeedFromProfile(team *spray.Team, r spray.Reducer[float32], n int, run func()) {
	in := spray.Instrument(team, r)
	in.EnableHotspot(n, spray.HotspotOptions{SamplePeriod: 4})
	run()
	spray.SeedFromProfile(r, in.HotspotProfile(), 128)
	in.Detach()
}

// TieredConv measures the hot/cold split on the skewed conv gradient
// stream: Zipfian scatter tiles where a small hot set carries most of
// the traffic. The tiered reducer should absorb the hot set into its
// replica caches (plain adds) and pay the inner strategy only for the
// cold tail; atomic pays CAS for every hot-line collision and keeper
// routes the hot traffic through its owner's mailbox.
func TieredConv(cfg BulkConfig) *bench.Result {
	const tiles, batch, zipfS = 512, 1024, 1.6
	stream := newZipfStream(cfg.N, tiles, batch, zipfS, 7)
	res := &bench.Result{
		Title:    fmt.Sprintf("Tiered hot/cold: Zipfian conv gradient scatter (N=%d, s=%.1f, %d tiles x %d)", cfg.N, zipfS, tiles, batch),
		XLabel:   "threads",
		Baseline: stream.seqBaseline(cfg.Runner),
		Notes: []string{
			"Zipfian (s=1.6) scatter tiles: a few hundred hot lines carry most updates, long cold tail",
			"hot+<inner>: per-thread replica caches absorb the hot set, inner strategy takes the cold tail",
			"each point runs one profile-guided warmup region (SeedFromProfile) before timing; online promotion stays on",
			"StaticChunk(16) schedule: tiered rebalances at chunk boundaries",
		},
	}
	out := make([]float32, cfg.N)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			if cfg.Trace != nil {
				team.SetTracer(cfg.Trace.New(fmt.Sprintf("tiered-conv/%s t=%d", st, th), th))
			}
			r := spray.New(st, out, th)
			warmSeedFromProfile(team, r, cfg.N, func() { stream.run(team, r) })
			var in *spray.Instrumentation
			if cfg.Telemetry || cfg.HotProfile != nil {
				in = spray.Instrument(team, r)
				if cfg.HotProfile != nil {
					in.EnableHotspot(cfg.N, cfg.Hotspot)
				}
			}
			p := bulkPoint(cfg, in, th, st.String(), func(iters int) {
				for i := 0; i < iters; i++ {
					stream.run(team, r)
				}
			})
			p.Bytes = r.PeakBytes()
			res.AddPoint(st.String(), p)
			if in != nil {
				if cfg.HotProfile != nil {
					cfg.HotProfile(fmt.Sprintf("tiered-conv/%s t=%d", st, th), in.HotspotProfile())
				}
				in.Detach()
			}
			team.Close()
		}
	}
	return res
}

// TieredTMV runs the comparison on the banded transpose-matrix-vector
// product: row i scatters into the column band around i, so the hot set
// is each thread's sliding working window plus the chunk-boundary
// overlap — a moving target that exercises the online
// promotion/eviction path rather than a fixed seeded set.
func TieredTMV(cfg BulkConfig) *bench.Result {
	a := sparse.Banded[float32](cfg.N, cfg.N, 16, 96, 7)
	res := &bench.Result{
		Title:    fmt.Sprintf("Tiered hot/cold: banded transpose-matrix-vector (%dx%d, %d nnz)", a.Rows, a.Cols, a.NNZ()),
		XLabel:   "threads",
		Baseline: TMVSequentialBaseline(TMVConfig{Matrix: a, Runner: cfg.Runner}),
		Notes: []string{
			"band half-width 96: each thread's hot set is its sliding output window; eviction flushes retire lines as the window moves",
			"StaticChunk(256) schedule: tiered rebalances (and keeper drains) at chunk boundaries",
		},
	}
	x := vecOnes(a.Rows)
	y := make([]float32, a.Cols)
	sched := spray.StaticChunk(256)
	for _, st := range cfg.Strategies {
		for _, th := range cfg.Threads {
			team := spray.NewTeam(th)
			if cfg.Trace != nil {
				team.SetTracer(cfg.Trace.New(fmt.Sprintf("tiered-tmv/%s t=%d", st, th), th))
			}
			r := spray.New(st, y, th)
			warmSeedFromProfile(team, r, a.Cols, func() { sparse.RunTMulVecSched(team, r, a, x, sched) })
			var in *spray.Instrumentation
			if cfg.Telemetry || cfg.HotProfile != nil {
				in = spray.Instrument(team, r)
				if cfg.HotProfile != nil {
					in.EnableHotspot(a.Cols, cfg.Hotspot)
				}
			}
			p := bulkPoint(cfg, in, th, st.String(), func(iters int) {
				for i := 0; i < iters; i++ {
					sparse.RunTMulVecSched(team, r, a, x, sched)
				}
			})
			p.Bytes = r.PeakBytes()
			res.AddPoint(st.String(), p)
			if in != nil {
				if cfg.HotProfile != nil {
					cfg.HotProfile(fmt.Sprintf("tiered-tmv/%s t=%d", st, th), in.HotspotProfile())
				}
				in.Detach()
			}
			team.Close()
		}
	}
	return res
}

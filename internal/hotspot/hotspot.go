// Package hotspot is the index-space contention profiler: an
// always-cheap, sampling-based attribution of conflict events (CAS
// retries, block claim contention, keeper foreign submissions, bin
// flush collisions, plan exchange merges) to cache-line-granularity
// regions of the output array.
//
// The aggregate counters of internal/telemetry answer "how much
// contention"; this package answers "where". Each thread records into
// its own Shard — a small count-min sketch over cache-line numbers, an
// exact-ish top-K candidate table, and a fixed number of spatial heat
// buckets — so the hot path takes no locks and allocates nothing.
// Recording is decimated: only every SamplePeriod-th recording call
// pays the sketch update, and a sampled call records its full batch
// weight, which keeps the per-line expectation unbiased at total/period
// regardless of how updates are batched.
//
// Gating follows the telemetry convention exactly: a nil *Shard (or nil
// *Profiler) is the off state, every method is nil-safe, and strategies
// cache the shard pointer next to their telemetry shard so the disabled
// path costs one predictable not-taken branch.
//
// Error bounds: with depth d and width w, a count-min estimate
// overshoots a line's true sampled weight by at most S/w per row with
// probability 1/2 per row (S = total sampled weight in the shard), so
// P[err > e*S] <= (1/(e*w))^d by the usual Markov argument; at the
// defaults (d=4, w=1024) the estimate for any line is within ~0.4% of
// the shard's total weight with probability 1-2^-4 per query. The
// top-K table stores exact per-line counts for the K currently-tracked
// candidates; admission is driven by the sketch estimate, so a line
// whose true weight exceeds the current minimum tracked count by the
// sketch error is always admitted eventually.
package hotspot

import (
	"math/bits"
	"sync/atomic"
)

// Class labels the kind of conflict event being attributed to a line.
type Class uint8

const (
	// CASRetry: an atomic (or adaptive-in-atomic-regime) update had to
	// retry its compare-and-swap; weight = number of retries.
	CASRetry Class = iota
	// BlockContention: a block claim was lost to another thread or the
	// claim fell back to the spill buffer; recorded at the block base.
	BlockContention
	// KeeperForeign: an update was submitted to a foreign owner's
	// queue; weight = number of foreign elements.
	KeeperForeign
	// BinCollision: the write-combining engine coalesced a duplicate
	// index inside a bin (a same-line collision by construction).
	BinCollision
	// PlanExchange: a compiled plan merged an exchange-list entry, i.e.
	// an index owned by another thread at execute time.
	PlanExchange
	// TieredCold: an update fell through a tiered wrapper's hot-set
	// replica cache to the inner strategy. The tiered reducer's online
	// promotion policy reads this class back out of its own shards, so
	// the lines that miss most become the next promotion candidates.
	TieredCold

	// NumClasses is the number of conflict classes.
	NumClasses = 6
)

var classNames = [NumClasses]string{
	"cas-retry", "block-contention", "keeper-foreign", "bin-collision", "plan-exchange",
	"tiered-cold",
}

// String returns the stable kebab-case name used in exports.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// Defaults for Options fields left zero.
const (
	DefaultSketchDepth  = 4
	DefaultSketchWidth  = 1024
	DefaultTopK         = 32
	DefaultHeatBuckets  = 64
	DefaultSamplePeriod = 64
)

// Options configures a Profiler. The zero value selects the defaults,
// which fit each shard in ~40 KiB and keep the sampled hot path at a
// handful of multiplies.
type Options struct {
	// LineElems is the number of array elements per cache line
	// (64/sizeof(elem): 8 for float64, 16 for float32). Callers that
	// know the element type should set it; 0 defaults to 8.
	LineElems int
	// SketchDepth is the number of count-min rows (default 4).
	SketchDepth int
	// SketchWidth is the number of counters per row, rounded up to a
	// power of two (default 1024).
	SketchWidth int
	// TopK is the size of the exact hot-line candidate table per shard
	// (default 32).
	TopK int
	// HeatBuckets is the number of equal-width spatial buckets over the
	// line space (default 64) — the heatmap resolution.
	HeatBuckets int
	// SamplePeriod decimates recording calls: only every period-th call
	// per (shard, class) updates the sketch, recording its full batch
	// weight. 1 records every call exactly (default 64).
	SamplePeriod int
}

func (o *Options) fill() {
	if o.LineElems <= 0 {
		o.LineElems = 8
	}
	if o.SketchDepth <= 0 {
		o.SketchDepth = DefaultSketchDepth
	}
	if o.SketchWidth <= 0 {
		o.SketchWidth = DefaultSketchWidth
	}
	if o.SketchWidth&(o.SketchWidth-1) != 0 {
		o.SketchWidth = 1 << bits.Len(uint(o.SketchWidth))
	}
	if o.TopK <= 0 {
		o.TopK = DefaultTopK
	}
	if o.HeatBuckets <= 0 {
		o.HeatBuckets = DefaultHeatBuckets
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = DefaultSamplePeriod
	}
}

// seeds are odd multipliers for the per-row multiplicative hashes
// (high-bit extraction of line*seed, Knuth-style). Fixed, so profiles
// from different shards and processes are comparable.
var seeds = [8]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
	0xa0761d6478bd642f, 0xe7037ed1a0b428db, 0x8ebc6af09c88c6e3, 0x589965cc75374cc3,
}

// Profiler owns the per-thread shards for one instrumented reducer.
// Construct with New, hand Shard(tid) to each thread (via
// telemetry.Recorder.AttachHotspot), and call Snapshot to aggregate.
type Profiler struct {
	strategy string
	n        int // output array length in elements
	threads  int
	opts     Options
	shift    uint // index >> shift = line number
	numLines int
	shards   []Shard
}

// New builds a Profiler for an output array of n elements reduced by
// the named strategy on the given team size. Options zero values select
// the defaults.
func New(strategy string, n, threads int, opts Options) *Profiler {
	opts.fill()
	if n < 1 {
		n = 1
	}
	if threads < 1 {
		threads = 1
	}
	p := &Profiler{
		strategy: strategy,
		n:        n,
		threads:  threads,
		opts:     opts,
		shift:    uint(bits.Len(uint(opts.LineElems) - 1)),
	}
	p.numLines = (n + (1 << p.shift) - 1) >> p.shift
	logW := uint(bits.Len(uint(opts.SketchWidth)) - 1)
	p.shards = make([]Shard, threads)
	for t := range p.shards {
		s := &p.shards[t]
		s.logW = logW
		s.depth = opts.SketchDepth
		s.period = uint32(opts.SamplePeriod)
		s.numLines = p.numLines
		s.nBuckets = opts.HeatBuckets
		s.shift = p.shift
		s.cells = make([]atomic.Uint64, opts.SketchDepth*opts.SketchWidth)
		s.top = make([]atomic.Uint64, opts.TopK)
		s.heat = make([]atomic.Uint64, opts.HeatBuckets)
	}
	return p
}

// Shard returns thread tid's shard, or nil when the profiler itself is
// nil or tid is out of range — the usual nil-gated accessor.
func (p *Profiler) Shard(tid int) *Shard {
	if p == nil || tid < 0 || tid >= len(p.shards) {
		return nil
	}
	return &p.shards[tid]
}

// Strategy returns the strategy name the profiler was built for.
func (p *Profiler) Strategy() string { return p.strategy }

// Reset clears all shards (between measurement windows).
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for t := range p.shards {
		s := &p.shards[t]
		for i := range s.cells {
			s.cells[i].Store(0)
		}
		for i := range s.top {
			s.top[i].Store(0)
		}
		for i := range s.heat {
			s.heat[i].Store(0)
		}
		for c := range s.events {
			s.events[c].Store(0)
			s.sampled[c].Store(0)
		}
		s.topMin = 0
		// tick and topMin are plain single-writer fields; Reset runs
		// between measurement windows (no concurrent recording), same as
		// the telemetry recorder's contract.
	}
}

// Shard is one thread's recording surface. All methods are nil-safe
// (nil = profiling off) and must be called only by the owning thread;
// the aggregation side reads the atomic cells concurrently.
type Shard struct {
	logW     uint
	depth    int
	period   uint32
	shift    uint
	numLines int
	nBuckets int

	// tick is the per-class decimation counter — single-writer, plain
	// field (the owning thread is the only mutator).
	tick [NumClasses]uint32

	// events counts every recording call's weight per class (cheap: one
	// atomic add, no sketch work). sampled counts only the weight that
	// made it into the sketch, i.e. the heatmap denominator.
	events  [NumClasses]atomic.Uint64
	sampled [NumClasses]atomic.Uint64

	cells []atomic.Uint64 // depth rows x width cells, row-major
	top   []atomic.Uint64 // packed line<<32 | count candidates
	heat  []atomic.Uint64 // spatial buckets over line space

	// topMin caches the smallest count currently in the top table
	// (single-writer, possibly stale-low after an update-in-place of the
	// minimum slot — stale-low only costs an extra scan, never a skip
	// that matters; see offer).
	topMin uint64

	// Trailing pad so adjacent shards in the Profiler's slice do not
	// share a cache line through their per-call event counters.
	_ [64]byte
}

// Record attributes one conflict event of class c at element index i.
func (s *Shard) Record(c Class, i int) { s.RecordW(c, i, 1) }

// RecordW attributes w conflict events of class c at element index i.
func (s *Shard) RecordW(c Class, i int, w uint64) {
	if s == nil || w == 0 {
		return
	}
	s.events[c].Add(w)
	if s.tickOne(c) {
		s.bump(c, uint64(i)>>s.shift, w)
	}
}

// RecordRun attributes one event per element of the contiguous run
// [base, base+n) — e.g. a keeper AddN foreign segment. The run counts
// as a single recording call for decimation; when sampled, its weight
// is spread over the lines it covers.
func (s *Shard) RecordRun(c Class, base, n int) {
	if s == nil || n <= 0 {
		return
	}
	s.events[c].Add(uint64(n))
	if !s.tickOne(c) {
		return
	}
	first := uint64(base) >> s.shift
	last := uint64(base+n-1) >> s.shift
	lineElems := uint64(1) << s.shift
	for ln := first; ln <= last; ln++ {
		lo := ln << s.shift
		hi := lo + lineElems
		if lo < uint64(base) {
			lo = uint64(base)
		}
		if hi > uint64(base+n) {
			hi = uint64(base + n)
		}
		s.bump(c, ln, hi-lo)
	}
}

// RecordBatch attributes one event per index in idx — e.g. a scattered
// foreign submission or a plan exchange list. One recording call for
// decimation; when sampled, every index lands in the sketch.
func (s *Shard) RecordBatch(c Class, idx []int32) {
	if s == nil || len(idx) == 0 {
		return
	}
	s.events[c].Add(uint64(len(idx)))
	if !s.tickOne(c) {
		return
	}
	for _, i := range idx {
		s.bump(c, uint64(uint32(i))>>s.shift, 1)
	}
}

// tickOne advances the class's decimation counter and reports whether
// this call is the sampled one.
func (s *Shard) tickOne(c Class) bool {
	t := s.tick[c] + 1
	if t >= s.period {
		s.tick[c] = 0
		return true
	}
	s.tick[c] = t
	return false
}

// bump adds weight w for line ln: count-min rows, heat bucket, and the
// top-K candidate table.
func (s *Shard) bump(c Class, ln, w uint64) {
	s.sampled[c].Add(w)
	width := uint64(1) << s.logW
	est := ^uint64(0)
	for r := 0; r < s.depth; r++ {
		h := (ln * seeds[r]) >> (64 - s.logW)
		v := s.cells[uint64(r)*width+h].Add(w)
		if v < est {
			est = v
		}
	}
	if int(ln) < s.numLines && s.nBuckets > 0 {
		b := int(ln) * s.nBuckets / s.numLines
		s.heat[b].Add(w)
	}
	s.offer(ln, est)
}

// offer maintains the top-K candidate table: packed entries hold
// line<<32 | count, where count is the sketch estimate at the line's
// last update (saturated to 32 bits). Single-writer, so a plain
// read-modify-Store per slot is tear-free for concurrent readers.
func (s *Shard) offer(ln, est uint64) {
	if est > 0xffffffff {
		est = 0xffffffff
	}
	// Fast path on the cached table minimum. A line's sketch estimate
	// only grows, so est <= topMin implies: if the line is tracked, its
	// stored count already equals est (no update needed); if it is not,
	// est > minCount can't hold (no admission). The skip is exact — the
	// slot scan below is paid only by estimates that can change the
	// table.
	if est <= s.topMin {
		return
	}
	minSlot, minCount, second := -1, ^uint64(0), ^uint64(0)
	for k := range s.top {
		e := s.top[k].Load()
		if e>>32 == ln {
			// topMin may now be stale-low (if this was the min slot);
			// that only re-enables scans, never skips a real update.
			s.top[k].Store(ln<<32 | est)
			return
		}
		cnt := e & 0xffffffff
		if cnt < minCount {
			minCount, second, minSlot = cnt, minCount, k
		} else if cnt < second {
			second = cnt
		}
	}
	if est > minCount {
		s.top[minSlot].Store(ln<<32 | est)
		if est < second {
			s.topMin = est
		} else {
			s.topMin = second
		}
	}
}

// LineCount is one (line, sampled weight) pair from a shard's candidate
// table — the stable unit of the promotion query API.
type LineCount struct {
	// Line is the cache-line number (element index >> log2(LineElems)).
	Line int
	// Count is the line's sampled conflict weight at its last table
	// update. Multiply by the profiler's SamplePeriod (and any caller-side
	// decimation) for an unbiased estimate of the true event count.
	Count uint64
}

// TopCandidates copies the shard's current top-K candidate table into
// dst, sorted by Count descending then Line ascending, and returns the
// number of entries written (bounded by len(dst) and the table size).
// It allocates nothing, so a thread may poll its own shard from a hot
// loop's rebalance points; nil shards report zero candidates.
func (s *Shard) TopCandidates(dst []LineCount) int {
	if s == nil || len(dst) == 0 {
		return 0
	}
	n := 0
	for k := range s.top {
		e := s.top[k].Load()
		if e == 0 {
			continue
		}
		c := LineCount{Line: int(e >> 32), Count: e & 0xffffffff}
		// Insertion sort into dst: the table is at most a few dozen
		// entries, and dst is usually the same size, so this stays cheap
		// and allocation-free.
		i := n
		if i == len(dst) {
			i--
			last := dst[i]
			if c.Count < last.Count || (c.Count == last.Count && c.Line >= last.Line) {
				continue
			}
		} else {
			n++
		}
		for i > 0 {
			p := dst[i-1]
			if p.Count > c.Count || (p.Count == c.Count && p.Line < c.Line) {
				break
			}
			dst[i] = p
			i--
		}
		dst[i] = c
	}
	return n
}

// Estimate returns the count-min estimate of line ln's sampled weight in
// this shard — an upper bound on the true per-shard sampled weight, and
// the incumbent-heat side of the tiered promotion hysteresis. Nil-safe.
func (s *Shard) Estimate(ln int) uint64 {
	if s == nil || ln < 0 {
		return 0
	}
	return s.estimate(uint64(ln))
}

package hotspot

import (
	"path/filepath"
	"sync"
	"testing"
)

// exact builds a profiler that samples every call, so counts are exact.
func exact(strategy string, n, threads int) *Profiler {
	return New(strategy, n, threads, Options{SamplePeriod: 1})
}

func TestHotspotNilSafety(t *testing.T) {
	var p *Profiler
	if p.Shard(0) != nil {
		t.Fatal("nil profiler Shard should be nil")
	}
	p.Reset()
	if p.Snapshot() != nil {
		t.Fatal("nil profiler Snapshot should be nil")
	}
	var s *Shard
	s.Record(CASRetry, 3)
	s.RecordW(KeeperForeign, 3, 7)
	s.RecordRun(KeeperForeign, 0, 100)
	s.RecordBatch(PlanExchange, []int32{1, 2, 3})
	var prof *Profile
	if prof.TotalConflicts() != 0 {
		t.Fatal("nil profile TotalConflicts should be 0")
	}
	if got := prof.TopLines(4); got != nil {
		t.Fatal("nil profile TopLines should be nil")
	}
	if name, w := prof.DominantClass(); name != "" || w != 0 {
		t.Fatal("nil profile DominantClass should be empty")
	}
	if err := prof.Merge(&Profile{}); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestHotspotShardBounds(t *testing.T) {
	p := exact("atomic", 1024, 2)
	if p.Shard(-1) != nil || p.Shard(2) != nil {
		t.Fatal("out-of-range tid should yield nil shard")
	}
	if p.Shard(0) == nil || p.Shard(1) == nil {
		t.Fatal("in-range tid should yield a shard")
	}
	if p.Strategy() != "atomic" {
		t.Fatalf("strategy = %q", p.Strategy())
	}
}

func TestHotspotExactCounts(t *testing.T) {
	// LineElems defaults to 8: index 40 is line 5, index 47 too.
	p := exact("keeper", 640, 1)
	s := p.Shard(0)
	for i := 0; i < 10; i++ {
		s.Record(KeeperForeign, 40) // line 5
	}
	s.RecordW(CASRetry, 47, 3) // line 5
	s.Record(CASRetry, 8)      // line 1

	prof := p.Snapshot()
	if prof.Totals["keeper-foreign"] != 10 || prof.Totals["cas-retry"] != 4 {
		t.Fatalf("totals = %v", prof.Totals)
	}
	if prof.TotalConflicts() != 14 {
		t.Fatalf("TotalConflicts = %d", prof.TotalConflicts())
	}
	if name, w := prof.DominantClass(); name != "keeper-foreign" || w != 10 {
		t.Fatalf("DominantClass = %s/%d", name, w)
	}
	if len(prof.Lines) == 0 || prof.Lines[0].Line != 5 || prof.Lines[0].Count != 13 {
		t.Fatalf("top line = %+v", prof.Lines)
	}
	if prof.Lines[0].Index != 40 {
		t.Fatalf("top line index = %d, want 40", prof.Lines[0].Index)
	}
	var bucketSum uint64
	for _, b := range prof.Buckets {
		bucketSum += b
	}
	if bucketSum != 14 {
		t.Fatalf("bucket sum = %d, want 14", bucketSum)
	}
}

func TestHotspotRecordRunSpreadsWeight(t *testing.T) {
	p := exact("keeper", 1024, 1)
	s := p.Shard(0)
	// [6, 26): 2 elems in line 0, 8 in line 1, 8 in line 2, 2 in line 3.
	s.RecordRun(KeeperForeign, 6, 20)
	prof := p.Snapshot()
	if prof.Totals["keeper-foreign"] != 20 {
		t.Fatalf("total = %v", prof.Totals)
	}
	want := map[int]uint64{0: 2, 1: 8, 2: 8, 3: 2}
	got := map[int]uint64{}
	for _, l := range prof.Lines {
		got[l.Line] = l.Count
	}
	for ln, w := range want {
		if got[ln] != w {
			t.Fatalf("line %d weight = %d, want %d (all: %v)", ln, got[ln], w, got)
		}
	}
}

func TestHotspotRecordBatch(t *testing.T) {
	p := exact("planned+keeper", 1024, 1)
	s := p.Shard(0)
	s.RecordBatch(PlanExchange, []int32{0, 1, 7, 8, 64})
	prof := p.Snapshot()
	if prof.Totals["plan-exchange"] != 5 {
		t.Fatalf("total = %v", prof.Totals)
	}
	got := map[int]uint64{}
	for _, l := range prof.Lines {
		got[l.Line] = l.Count
	}
	if got[0] != 3 || got[1] != 1 || got[8] != 1 {
		t.Fatalf("line weights = %v", got)
	}
}

func TestHotspotDecimation(t *testing.T) {
	p := New("atomic", 1024, 1, Options{SamplePeriod: 4})
	s := p.Shard(0)
	for i := 0; i < 400; i++ {
		s.Record(CASRetry, 8)
	}
	prof := p.Snapshot()
	if prof.Totals["cas-retry"] != 400 {
		t.Fatalf("exact total = %v, decimation must not drop events", prof.Totals)
	}
	// Every 4th call is sampled: exactly 100 reach the sketch.
	if prof.Sampled["cas-retry"] != 100 {
		t.Fatalf("sampled = %v, want 100", prof.Sampled)
	}
}

func TestHotspotTopKAdmitsHeavyLine(t *testing.T) {
	// More distinct lines than TopK; a heavy hitter recorded after the
	// table fills must displace a light entry.
	p := New("atomic", 64*1024, 1, Options{SamplePeriod: 1, TopK: 8})
	s := p.Shard(0)
	for ln := 0; ln < 32; ln++ {
		s.Record(CASRetry, ln*8) // one event per line fills the table
	}
	for i := 0; i < 100; i++ {
		s.Record(CASRetry, 40*8) // line 40 becomes the heavy hitter
	}
	prof := p.Snapshot()
	if len(prof.Lines) == 0 || prof.Lines[0].Line != 40 {
		t.Fatalf("heavy line not admitted: %+v", prof.Lines)
	}
	if prof.Lines[0].Count < 100 {
		t.Fatalf("heavy line count = %d, want >= 100", prof.Lines[0].Count)
	}
	if len(prof.Lines) > 8 {
		t.Fatalf("profile keeps %d lines, TopK is 8", len(prof.Lines))
	}
}

func TestHotspotReset(t *testing.T) {
	p := exact("atomic", 1024, 2)
	p.Shard(0).Record(CASRetry, 0)
	p.Shard(1).RecordW(BinCollision, 64, 5)
	p.Reset()
	prof := p.Snapshot()
	if prof.TotalConflicts() != 0 || len(prof.Lines) != 0 {
		t.Fatalf("after reset: conflicts=%d lines=%v", prof.TotalConflicts(), prof.Lines)
	}
	for _, b := range prof.Buckets {
		if b != 0 {
			t.Fatal("heat buckets not cleared")
		}
	}
}

func TestHotspotMergeAndGeometry(t *testing.T) {
	a := exact("keeper", 1024, 1)
	a.Shard(0).RecordW(KeeperForeign, 0, 4)
	b := exact("keeper", 1024, 1)
	b.Shard(0).RecordW(KeeperForeign, 0, 6)
	b.Shard(0).Record(CASRetry, 512)

	pa, pb := a.Snapshot(), b.Snapshot()
	pa.Updates, pb.Updates = 100, 200
	if err := pa.Merge(pb); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if pa.Totals["keeper-foreign"] != 10 || pa.Totals["cas-retry"] != 1 {
		t.Fatalf("merged totals = %v", pa.Totals)
	}
	if pa.Updates != 300 {
		t.Fatalf("merged updates = %d", pa.Updates)
	}
	if pa.Lines[0].Line != 0 || pa.Lines[0].Count != 10 {
		t.Fatalf("merged lines = %+v", pa.Lines)
	}

	other := exact("keeper", 2048, 1).Snapshot()
	if err := pa.Merge(other); err == nil {
		t.Fatal("merging mismatched geometry should fail")
	}
}

func TestHotspotProfileJSONRoundTrip(t *testing.T) {
	p := exact("binned+atomic", 1024, 2)
	p.Shard(0).RecordW(BinCollision, 24, 9)
	p.Shard(1).Record(CASRetry, 800)
	prof := p.Snapshot()
	prof.Updates = 1 << 20

	dir := t.TempDir()
	single := filepath.Join(dir, "single.json")
	if err := prof.WriteFile(single); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Strategy != "binned+atomic" || got[0].Updates != prof.Updates {
		t.Fatalf("round trip: %+v", got)
	}
	if got[0].TotalConflicts() != prof.TotalConflicts() {
		t.Fatalf("conflicts %d != %d", got[0].TotalConflicts(), prof.TotalConflicts())
	}

	multi := filepath.Join(dir, "multi.json")
	if err := WriteProfiles(multi, []*Profile{prof, prof}); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadProfiles(multi); err != nil || len(got) != 2 {
		t.Fatalf("array round trip: %v %d", err, len(got))
	}

	bad := filepath.Join(dir, "bad.json")
	stale := *prof
	stale.SchemaVersion = ProfileSchemaVersion + 1
	if err := stale.WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfiles(bad); err == nil {
		t.Fatal("schema mismatch should be rejected")
	}
}

func TestHotspotConcurrentRecordSnapshot(t *testing.T) {
	const threads = 4
	p := New("atomic", 8192, threads, Options{SamplePeriod: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := p.Shard(tid)
			for i := 0; i < 20000; i++ {
				s.Record(CASRetry, (tid*31+i*7)%8192)
				if i%64 == 0 {
					s.RecordRun(KeeperForeign, i%4096, 32)
				}
			}
		}(tid)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	prof := p.Snapshot()
	if prof.Totals["cas-retry"] != threads*20000 {
		t.Fatalf("cas-retry total = %d, want %d", prof.Totals["cas-retry"], threads*20000)
	}
}

func TestHotspotSketchAccuracyZipf(t *testing.T) {
	// Deterministic skewed workload: line ln gets weight ~ 1/(ln+1)
	// scaled. The sketch top-K must recover the true heaviest lines.
	p := New("atomic", 64*1024, 1, Options{SamplePeriod: 1, TopK: 16})
	s := p.Shard(0)
	const lines = 512
	for ln := 0; ln < lines; ln++ {
		w := 2000 / (ln + 1)
		for i := 0; i < w; i++ {
			s.Record(CASRetry, ln*8)
		}
	}
	prof := p.Snapshot()
	top := prof.TopLines(8)
	if len(top) != 8 {
		t.Fatalf("top = %d lines", len(top))
	}
	hit := 0
	for _, l := range top {
		if l.Line < 8 {
			hit++
		}
	}
	if hit < 7 {
		t.Fatalf("sketch top-8 recovered only %d of the 8 true heaviest lines: %+v", hit, top)
	}
}

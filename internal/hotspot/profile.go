package hotspot

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// ProfileSchemaVersion stamps serialized profiles so future layout
// changes stay detectable.
const ProfileSchemaVersion = 1

// LineStat is one hot cache line in a Profile.
type LineStat struct {
	// Line is the cache-line number (index >> log2(LineElems)).
	Line int `json:"line"`
	// Index is the first element index covered by the line.
	Index int `json:"index"`
	// Count is the line's sampled conflict weight (sum of the per-shard
	// count-min estimates). Multiply by SamplePeriod for an unbiased
	// estimate of the true event count.
	Count uint64 `json:"count"`
}

// Profile is the serializable aggregate of a Profiler: per-class event
// totals, the global top-K hot lines, and the spatial heat buckets.
// It is what the flight recorder snapshots, /debug/spray/heatmap
// serves, and sprayadvise -profile consumes.
type Profile struct {
	SchemaVersion int    `json:"schema_version"`
	Strategy      string `json:"strategy"`
	N             int    `json:"n"`
	Threads       int    `json:"threads"`
	LineElems     int    `json:"line_elems"`
	NumLines      int    `json:"num_lines"`
	SketchDepth   int    `json:"sketch_depth"`
	SketchWidth   int    `json:"sketch_width"`
	SamplePeriod  int    `json:"sample_period"`
	HeatBuckets   int    `json:"heat_buckets"`

	// Updates is the total number of reduction updates observed by the
	// surrounding telemetry window, when known — the denominator for
	// conflict rates. 0 when unknown.
	Updates uint64 `json:"updates,omitempty"`

	// Totals holds exact per-class event weights (counted on every
	// recording call); Sampled holds the decimated weight that reached
	// the sketch (the denominator for Lines and Buckets).
	Totals  map[string]uint64 `json:"totals"`
	Sampled map[string]uint64 `json:"sampled"`

	// Lines is the merged top-K hot-line table, sorted by Count
	// descending then Line ascending.
	Lines []LineStat `json:"lines"`

	// Buckets is the spatial heatmap: HeatBuckets equal-width buckets
	// over the line space, in sampled weight units.
	Buckets []uint64 `json:"buckets"`
}

// estimate queries one shard's count-min sketch for a line's sampled
// weight (an upper bound on the true per-shard sampled weight).
func (s *Shard) estimate(ln uint64) uint64 {
	width := uint64(1) << s.logW
	est := ^uint64(0)
	for r := 0; r < s.depth; r++ {
		h := (ln * seeds[r]) >> (64 - s.logW)
		if v := s.cells[uint64(r)*width+h].Load(); v < est {
			est = v
		}
	}
	return est
}

// Snapshot aggregates all shards into a Profile. Safe to call while
// threads are still recording (atomic reads; the result is a consistent
// enough view for monitoring).
func (p *Profiler) Snapshot() *Profile {
	if p == nil {
		return nil
	}
	prof := &Profile{
		SchemaVersion: ProfileSchemaVersion,
		Strategy:      p.strategy,
		N:             p.n,
		Threads:       p.threads,
		LineElems:     p.opts.LineElems,
		NumLines:      p.numLines,
		SketchDepth:   p.opts.SketchDepth,
		SketchWidth:   p.opts.SketchWidth,
		SamplePeriod:  p.opts.SamplePeriod,
		HeatBuckets:   p.opts.HeatBuckets,
		Totals:        make(map[string]uint64, NumClasses),
		Sampled:       make(map[string]uint64, NumClasses),
		Buckets:       make([]uint64, p.opts.HeatBuckets),
	}
	for c := Class(0); c < NumClasses; c++ {
		var tot, smp uint64
		for t := range p.shards {
			tot += p.shards[t].events[c].Load()
			smp += p.shards[t].sampled[c].Load()
		}
		if tot > 0 {
			prof.Totals[c.String()] = tot
		}
		if smp > 0 {
			prof.Sampled[c.String()] = smp
		}
	}
	candidates := make(map[uint64]struct{})
	for t := range p.shards {
		s := &p.shards[t]
		for k := range s.top {
			if e := s.top[k].Load(); e != 0 {
				candidates[e>>32] = struct{}{}
			}
		}
		for b := range s.heat {
			prof.Buckets[b] += s.heat[b].Load()
		}
	}
	prof.Lines = make([]LineStat, 0, len(candidates))
	for ln := range candidates {
		var cnt uint64
		for t := range p.shards {
			cnt += p.shards[t].estimate(ln)
		}
		if cnt == 0 {
			continue
		}
		prof.Lines = append(prof.Lines, LineStat{
			Line:  int(ln),
			Index: int(ln) * p.opts.LineElems,
			Count: cnt,
		})
	}
	sortLines(prof.Lines)
	if len(prof.Lines) > p.opts.TopK {
		prof.Lines = prof.Lines[:p.opts.TopK]
	}
	return prof
}

func sortLines(ls []LineStat) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Count != ls[j].Count {
			return ls[i].Count > ls[j].Count
		}
		return ls[i].Line < ls[j].Line
	})
}

// PromotionSet returns the line numbers of the profile's top k hot
// lines, hottest first — the stable profile-guided seeding input for the
// tiered reducer's replica cache. Lines with the same count come out in
// ascending line order, so the set is deterministic for a given profile.
func (p *Profile) PromotionSet(k int) []int {
	ls := p.TopLines(k)
	if len(ls) == 0 {
		return nil
	}
	lines := make([]int, len(ls))
	for i := range ls {
		lines[i] = ls[i].Line
	}
	return lines
}

// TopLines returns the first k hot lines (fewer when the profile has
// fewer).
func (p *Profile) TopLines(k int) []LineStat {
	if p == nil || k <= 0 {
		return nil
	}
	if k > len(p.Lines) {
		k = len(p.Lines)
	}
	return p.Lines[:k]
}

// TotalConflicts sums the per-class exact event totals.
func (p *Profile) TotalConflicts() uint64 {
	if p == nil {
		return 0
	}
	var t uint64
	for _, v := range p.Totals {
		t += v
	}
	return t
}

// DominantClass returns the conflict class with the largest exact total
// and its weight ("" when the profile saw no conflicts).
func (p *Profile) DominantClass() (string, uint64) {
	if p == nil {
		return "", 0
	}
	name, best := "", uint64(0)
	for c := Class(0); c < NumClasses; c++ {
		if v := p.Totals[c.String()]; v > best {
			name, best = c.String(), v
		}
	}
	return name, best
}

// Merge folds other into p (same strategy restarted, or several
// providers of one strategy): totals and buckets add, hot lines merge
// by line number. Geometry must agree; mismatched profiles are left
// unmerged and reported.
func (p *Profile) Merge(other *Profile) error {
	if p == nil || other == nil {
		return nil
	}
	if p.N != other.N || p.LineElems != other.LineElems || p.HeatBuckets != other.HeatBuckets {
		return fmt.Errorf("hotspot: cannot merge profiles with different geometry (n %d vs %d, line_elems %d vs %d, heat_buckets %d vs %d)",
			p.N, other.N, p.LineElems, other.LineElems, p.HeatBuckets, other.HeatBuckets)
	}
	for k, v := range other.Totals {
		p.Totals[k] += v
	}
	for k, v := range other.Sampled {
		p.Sampled[k] += v
	}
	p.Updates += other.Updates
	for b := range other.Buckets {
		p.Buckets[b] += other.Buckets[b]
	}
	byLine := make(map[int]int, len(p.Lines))
	for i := range p.Lines {
		byLine[p.Lines[i].Line] = i
	}
	for _, l := range other.Lines {
		if i, ok := byLine[l.Line]; ok {
			p.Lines[i].Count += l.Count
		} else {
			p.Lines = append(p.Lines, l)
		}
	}
	sortLines(p.Lines)
	return nil
}

// WriteFile serializes the profile as indented JSON.
func (p *Profile) WriteFile(path string) error {
	return writeJSONFile(path, p)
}

// WriteProfiles serializes a set of profiles (one per strategy) as a
// JSON array — the format of the CLIs' -hotprofile output.
func WriteProfiles(path string, profiles []*Profile) error {
	return writeJSONFile(path, profiles)
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadProfiles loads profiles from a file written by WriteFile (single
// object) or WriteProfiles (array); both shapes are accepted.
func ReadProfiles(path string) ([]*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ps []*Profile
	if err := json.Unmarshal(b, &ps); err != nil {
		var p Profile
		if err2 := json.Unmarshal(b, &p); err2 != nil {
			return nil, fmt.Errorf("hotspot: %s is neither a profile nor a profile array: %w", path, err)
		}
		ps = []*Profile{&p}
	}
	for _, p := range ps {
		if p == nil {
			return nil, errors.New("hotspot: null profile entry in " + path)
		}
		if p.SchemaVersion != ProfileSchemaVersion {
			return nil, fmt.Errorf("hotspot: %s has schema version %d, want %d", path, p.SchemaVersion, ProfileSchemaVersion)
		}
		if p.Totals == nil {
			p.Totals = map[string]uint64{}
		}
		if p.Sampled == nil {
			p.Sampled = map[string]uint64{}
		}
	}
	return ps, nil
}

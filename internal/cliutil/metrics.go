package cliutil

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spray"
	"spray/internal/telemetry"
)

// Metrics is the shared -metrics-http/-linger wiring of the cmd/
// harnesses: when an address is given, Start publishes the expvar
// export, enables the full production diagnostics (flight recorder,
// anomaly detector, worker-panic hook, SIGQUIT dump) and serves the
// diagnostics mux — /metrics Prometheus exposition, /debug/vars expvar,
// /debug/spray/flight and /debug/spray/events — on it. Finish optionally
// keeps the server up after the run so monitors can scrape the final
// state, then closes it.
//
//	var met cliutil.Metrics
//	met.AddFlags(flag.CommandLine)
//	flag.Parse()
//	serving, err := met.Start()
//	// ... workload ...
//	met.Finish()
type Metrics struct {
	Addr   string
	Linger time.Duration

	srv *spray.MetricsServer
}

// AddFlags registers -metrics-http and -linger on fs.
func (m *Metrics) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&m.Addr, "metrics-http", "",
		"serve live diagnostics on this address while running: /metrics (Prometheus), /debug/vars (expvar), flight recorder and anomaly events; implies telemetry instrumentation")
	fs.DurationVar(&m.Linger, "linger", 0,
		"with -metrics-http, keep serving this long after the run so monitors can scrape the final state (negative: until killed)")
}

// Start brings the diagnostics up; serving is false when no address was
// given. The bound address is announced on stderr (the obs smoke test
// parses that line to find an ephemeral :0 port).
func (m *Metrics) Start() (serving bool, err error) {
	if m.Addr == "" {
		return false, nil
	}
	telemetry.Publish("spray")
	spray.EnableFlightRecorder(spray.DiagnosticsOptions{
		PollInterval:  250 * time.Millisecond,
		DumpOnSIGQUIT: true,
	})
	srv, err := spray.ServeMetrics(m.Addr)
	if err != nil {
		return false, err
	}
	m.srv = srv
	fmt.Fprintf(os.Stderr, "telemetry: live metrics on http://%s/metrics (expvar on /debug/vars)\n", srv.Addr())
	return true, nil
}

// Finish lingers if requested, then shuts the metrics server down. Safe
// to call when Start did not serve.
func (m *Metrics) Finish() {
	if m.srv == nil {
		return
	}
	switch {
	case m.Linger < 0:
		fmt.Fprintln(os.Stderr, "telemetry: run complete; serving metrics until killed")
		select {}
	case m.Linger > 0:
		fmt.Fprintf(os.Stderr, "telemetry: run complete; serving metrics for %v\n", m.Linger)
		time.Sleep(m.Linger)
	}
	m.srv.Close()
	m.srv = nil
}

// Package cliutil holds the small flag-parsing and profiling helpers
// shared by the cmd/ harnesses.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"spray"
)

// ParseInts parses a comma-separated list of positive integers
// ("1,2, 4").
func ParseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cliutil: bad positive integer %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty integer list")
	}
	return out, nil
}

// ParseSchedules parses a comma-separated list of loop schedules in
// their spray.ParseSchedule string forms ("static, dynamic:8, steal").
func ParseSchedules(list string) ([]spray.Schedule, error) {
	var out []spray.Schedule
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := spray.ParseSchedule(f)
		if err != nil {
			return nil, fmt.Errorf("cliutil: %w", err)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty schedule list")
	}
	return out, nil
}

// Profiling is the pair of pprof output paths every cmd/ harness
// accepts. Register the flags with AddFlags before flag.Parse, then
// bracket main's work between Start and the returned stop function:
//
//	var prof cliutil.Profiling
//	prof.AddFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	// ... workload ...
//	stop() // before os.Exit; also safe under defer
type Profiling struct {
	CPUPath string
	MemPath string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on fs.
func (p *Profiling) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUPath, "cpuprofile", "", "write a pprof CPU profile of the run to this path")
	fs.StringVar(&p.MemPath, "memprofile", "", "write a pprof heap profile (allocs included) to this path at exit")
}

// Start begins CPU profiling if -cpuprofile was given and returns the
// stop function that finishes both profiles. The stop function is always
// non-nil and idempotent, so it is safe to both defer it and call it
// explicitly before an early os.Exit.
func (p *Profiling) Start() (stop func() error, err error) {
	if p.CPUPath != "" {
		f, err := os.Create(p.CPUPath)
		if err != nil {
			return func() error { return nil }, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() error { return nil }, fmt.Errorf("cliutil: start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if p.cpuFile != nil {
			pprof.StopCPUProfile()
			if err := p.cpuFile.Close(); err != nil {
				return err
			}
			p.cpuFile = nil
		}
		if p.MemPath != "" {
			f, err := os.Create(p.MemPath)
			if err != nil {
				return err
			}
			// An up-to-date heap profile needs the world stopped at a GC;
			// the allocs profile type keeps cumulative allocation visible
			// alongside live bytes.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("cliutil: write heap profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}

// ParseNames splits a comma-separated list of non-empty names.
func ParseNames(list string) []string {
	var out []string
	for _, f := range strings.Split(list, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Package cliutil holds the small flag-parsing helpers shared by the
// cmd/ harnesses.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated list of positive integers
// ("1,2, 4").
func ParseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cliutil: bad positive integer %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty integer list")
	}
	return out, nil
}

// ParseNames splits a comma-separated list of non-empty names.
func ParseNames(list string) []string {
	var out []string
	for _, f := range strings.Split(list, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

package cliutil

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1,2, 4 ,,56")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 4, 56}) {
		t.Errorf("got %v", got)
	}
	for _, bad := range []string{"", ",,", "1,x", "0", "-3", "1,2,-1"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) succeeded", bad)
		}
	}
}

func TestParseNames(t *testing.T) {
	got := ParseNames(" a, b,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("got %v", got)
	}
	if got := ParseNames(" , "); got != nil {
		t.Errorf("empty list: %v", got)
	}
}

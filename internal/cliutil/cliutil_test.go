package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1,2, 4 ,,56")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 4, 56}) {
		t.Errorf("got %v", got)
	}
	for _, bad := range []string{"", ",,", "1,x", "0", "-3", "1,2,-1"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) succeeded", bad)
		}
	}
}

func TestProfilingWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	var p Profiling
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.AddFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfilingNoFlagsIsNoop(t *testing.T) {
	var p Profiling
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestParseNames(t *testing.T) {
	got := ParseNames(" a, b,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("got %v", got)
	}
	if got := ParseNames(" , "); got != nil {
		t.Errorf("empty list: %v", got)
	}
}

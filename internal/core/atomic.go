package core

import (
	"time"

	"spray/internal/hotspot"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Atomic is the SPRAY AtomicReduction: every Add updates the original
// storage location with an atomic compare-and-swap loop over the float's
// bit pattern — the lowering of "#pragma omp atomic update" on hardware
// without native floating-point fetch-and-add. There is no privatized
// memory, no init work and no fix-up; the cost is a per-update latency tax
// and potential contention on shared cache lines.
type Atomic[T num.Float] struct {
	out     []T
	privs   []atomicPrivate[T]
	threads int
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. Instrumented
// accessors switch to the retry-counting CAS variants so contention shows
// up as the cas-retries counter, and 1-in-N updates are additionally timed
// into the cas-latency histogram.
func (a *Atomic[T]) Instrument(rec *telemetry.Recorder) { a.tel = rec }

// casTimed performs one CAS accumulation with the clock running and
// feeds the elapsed time into the shard's cas-latency histogram. Only
// called from instrumented paths on sampled events.
func casTimed[T num.Float](sh *telemetry.Shard, out []T, i int, v T) (retries int) {
	start := time.Now()
	retries = num.AtomicAddRetries(out, i, v)
	sh.Observe(telemetry.CASLatency, time.Since(start))
	return retries
}

// NewAtomic wraps out for a team of the given size.
func NewAtomic[T num.Float](out []T, threads int) *Atomic[T] {
	validate(out, threads)
	return &Atomic[T]{out: out, privs: make([]atomicPrivate[T], threads), threads: threads}
}

type atomicPrivate[T num.Float] struct {
	out []T
	tel *telemetry.Shard
	hot *hotspot.Shard
}

func (p *atomicPrivate[T]) Add(i int, v T) {
	if p.tel == nil {
		num.AtomicAdd(p.out, i, v)
		return
	}
	p.tel.Inc(telemetry.Updates)
	var retries int
	if p.tel.Sample(telemetry.CASLatency) {
		retries = casTimed(p.tel, p.out, i, v)
	} else {
		retries = num.AtomicAddRetries(p.out, i, v)
	}
	p.tel.Add(telemetry.CASRetries, retries)
	if retries > 0 {
		p.hot.RecordW(hotspot.CASRetry, i, uint64(retries))
	}
}

// AddN keeps per-element CAS (two threads may still race on the same
// location through overlapping runs) but hoists the slice bounds check
// out of the loop.
func (p *atomicPrivate[T]) AddN(base int, vals []T) {
	dst := p.out[base : base+len(vals)]
	if p.tel == nil {
		for j, v := range vals {
			num.AtomicAdd(dst, j, v)
		}
		return
	}
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	retries, j0 := 0, 0
	if len(vals) > 0 && p.tel.Sample(telemetry.CASLatency) {
		retries += casTimed(p.tel, dst, 0, vals[0])
		j0 = 1
		if retries > 0 {
			p.hot.RecordW(hotspot.CASRetry, base, uint64(retries))
		}
	}
	for j := j0; j < len(vals); j++ {
		r := num.AtomicAddRetries(dst, j, vals[j])
		retries += r
		if r > 0 {
			p.hot.RecordW(hotspot.CASRetry, base+j, uint64(r))
		}
	}
	p.tel.Add(telemetry.CASRetries, retries)
}

// Scatter applies a gathered batch with per-element CAS.
func (p *atomicPrivate[T]) Scatter(idx []int32, vals []T) {
	out := p.out
	if p.tel == nil {
		for j, i := range idx {
			num.AtomicAdd(out, int(i), vals[j])
		}
		return
	}
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	retries, j0 := 0, 0
	if len(idx) > 0 && p.tel.Sample(telemetry.CASLatency) {
		retries += casTimed(p.tel, out, int(idx[0]), vals[0])
		j0 = 1
		if retries > 0 {
			p.hot.RecordW(hotspot.CASRetry, int(idx[0]), uint64(retries))
		}
	}
	for j := j0; j < len(idx); j++ {
		r := num.AtomicAddRetries(out, int(idx[j]), vals[j])
		retries += r
		if r > 0 {
			p.hot.RecordW(hotspot.CASRetry, int(idx[j]), uint64(r))
		}
	}
	p.tel.Add(telemetry.CASRetries, retries)
}

// FlushBin applies one write-combined bin. The indices are unique and
// confined to [base, end), so the CAS pass walks one warm cache region of
// the shared array with no same-location retries from this thread —
// the binned Scatter path's replacement for per-arrival CAS traffic.
func (p *atomicPrivate[T]) FlushBin(base, end int, idx []int32, vals []T) {
	out := p.out
	if p.tel == nil {
		for j, i := range idx {
			num.AtomicAdd(out, int(i), vals[j])
		}
		return
	}
	retries, j0 := 0, 0
	if len(idx) > 0 && p.tel.Sample(telemetry.CASLatency) {
		retries += casTimed(p.tel, out, int(idx[0]), vals[0])
		j0 = 1
		if retries > 0 {
			p.hot.RecordW(hotspot.CASRetry, int(idx[0]), uint64(retries))
		}
	}
	for j := j0; j < len(idx); j++ {
		r := num.AtomicAddRetries(out, int(idx[j]), vals[j])
		retries += r
		if r > 0 {
			p.hot.RecordW(hotspot.CASRetry, int(idx[j]), uint64(r))
		}
	}
	p.tel.Add(telemetry.CASRetries, retries)
}

func (p *atomicPrivate[T]) Done() {}

// Private returns an accessor that updates the shared array directly.
func (a *Atomic[T]) Private(tid int) Private[T] {
	sh := a.tel.Shard(tid)
	a.privs[tid] = atomicPrivate[T]{out: a.out, tel: sh, hot: sh.Hot()}
	return &a.privs[tid]
}

// Finalize is a no-op: all updates landed in the original array already.
func (a *Atomic[T]) Finalize() {}

// FinalizeWith is a no-op like Finalize; the team is not needed.
func (a *Atomic[T]) FinalizeWith(*par.Team) {}

func (a *Atomic[T]) Bytes() int64     { return 0 }
func (a *Atomic[T]) PeakBytes() int64 { return 0 }
func (a *Atomic[T]) Name() string     { return "atomic" }
func (a *Atomic[T]) Threads() int     { return a.threads }

package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
)

// BlockMode selects among the three BlockReduction flavors in the paper.
type BlockMode int

const (
	// BlockPrivate privatizes blocks on demand for every thread: the
	// first touch of a block allocates a zeroed private copy of that
	// block only. Summation order matches the dense strategy; the only
	// difference is that untouched blocks are never materialized.
	BlockPrivate BlockMode = iota
	// BlockLock lets the first thread to touch a block claim ownership
	// of the block *inside the original array* under a lock (the
	// OpenMP-locks variant in the paper); later threads touching the
	// same block fall back to private copies.
	BlockLock
	// BlockCAS is BlockLock with lock-free claiming via a single
	// compare-and-swap on the block's owner word.
	BlockCAS
)

func (m BlockMode) String() string {
	switch m {
	case BlockPrivate:
		return "block-private"
	case BlockLock:
		return "block-lock"
	case BlockCAS:
		return "block-cas"
	default:
		return fmt.Sprintf("BlockMode(%d)", int(m))
	}
}

const freeOwner = int32(-1)

// Block is the SPRAY BlockReduction: the array is divided into
// statically sized blocks that are privatized (or claimed) individually on
// demand. Private (the paper's `init`) allocates only the per-thread
// block-pointer table; block storage appears lazily on first touch.
// Finalize merges fallback blocks elementwise and releases ownership.
//
// The block size is the hyperparameter the paper sweeps in Figure 13: it
// trades the number of block allocations against wasted work on unused
// elements inside touched blocks. Block sizes must be powers of two so the
// per-update block lookup is a shift and the intra-block offset a mask.
type Block[T num.Float] struct {
	out     []T
	threads int
	bsize   int
	shift   uint
	mask    int
	nblocks int
	mode    BlockMode

	owner []atomic.Int32 // lock & CAS modes: owning tid per block, -1 free
	locks []sync.Mutex   // lock mode only
	privs []blockPrivate[T]
	mem   memtrack.Counter
}

// NewBlock wraps out for a team of the given size. blockSize must be a
// positive power of two.
func NewBlock[T num.Float](out []T, threads, blockSize int, mode BlockMode) *Block[T] {
	validate(out, threads)
	if blockSize < 1 || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("core: block size must be a positive power of two, got %d", blockSize))
	}
	b := &Block[T]{
		out:     out,
		threads: threads,
		bsize:   blockSize,
		shift:   uint(bits.TrailingZeros(uint(blockSize))),
		mask:    blockSize - 1,
		nblocks: (len(out) + blockSize - 1) / blockSize,
		mode:    mode,
		privs:   make([]blockPrivate[T], threads),
	}
	if mode == BlockLock || mode == BlockCAS {
		b.owner = make([]atomic.Int32, b.nblocks)
		for i := range b.owner {
			b.owner[i].Store(freeOwner)
		}
		if mode == BlockLock {
			b.locks = make([]sync.Mutex, b.nblocks)
		}
	}
	return b
}

// privBlock records one privatized fallback block for the fix-up merge.
type privBlock[T num.Float] struct {
	block int
	buf   []T
}

type blockPrivate[T num.Float] struct {
	parent *Block[T]
	tid    int32
	view   [][]T // per block: nil until touched, then direct or private storage
	fallbk []privBlock[T]
}

// Add accumulates into the block view, resolving the block on first touch.
func (p *blockPrivate[T]) Add(i int, v T) {
	b := i >> p.parent.shift
	view := p.view[b]
	if view == nil {
		view = p.acquire(int(b))
	}
	view[i&p.parent.mask] += v
}

// acquire resolves storage for block b: claim it in the original array
// when the mode allows and the block is unowned, otherwise allocate a
// zeroed private copy.
func (p *blockPrivate[T]) acquire(b int) []T {
	parent := p.parent
	base := b << parent.shift
	end := base + parent.bsize
	if end > len(parent.out) {
		end = len(parent.out)
	}
	var view []T
	switch parent.mode {
	case BlockCAS:
		if parent.owner[b].CompareAndSwap(freeOwner, p.tid) {
			view = parent.out[base:end]
		}
	case BlockLock:
		parent.locks[b].Lock()
		if parent.owner[b].Load() == freeOwner {
			parent.owner[b].Store(p.tid)
			view = parent.out[base:end]
		}
		parent.locks[b].Unlock()
	}
	if view == nil { // BlockPrivate mode, or the block is owned elsewhere
		var zero T
		view = make([]T, end-base)
		parent.mem.Alloc(memtrack.SliceBytes(len(view), unsafe.Sizeof(zero)))
		p.fallbk = append(p.fallbk, privBlock[T]{block: b, buf: view})
	}
	p.view[b] = view
	return view
}

func (p *blockPrivate[T]) Done() {}

// Private allocates the thread's block-pointer table — the only init-time
// cost of the block strategies.
func (bl *Block[T]) Private(tid int) Private[T] {
	p := &bl.privs[tid]
	if p.view == nil {
		p.view = make([][]T, bl.nblocks)
		bl.mem.Alloc(memtrack.SliceBytes(bl.nblocks, unsafe.Sizeof([]T(nil))))
	} else {
		clear(p.view)
	}
	p.parent = bl
	p.tid = int32(tid)
	p.fallbk = p.fallbk[:0]
	return p
}

// Finalize merges all privatized fallback blocks into the original array
// and releases block ownership for the next region. Directly owned blocks
// already hold their contributions.
func (bl *Block[T]) Finalize() {
	var zero T
	for t := range bl.privs {
		p := &bl.privs[t]
		for _, fb := range p.fallbk {
			base := fb.block << bl.shift
			for j, v := range fb.buf {
				bl.out[base+j] += v
			}
			bl.mem.Free(memtrack.SliceBytes(len(fb.buf), unsafe.Sizeof(zero)))
		}
		p.fallbk = p.fallbk[:0]
	}
	for i := range bl.owner {
		bl.owner[i].Store(freeOwner)
	}
}

func (bl *Block[T]) Bytes() int64     { return bl.mem.Bytes() }
func (bl *Block[T]) PeakBytes() int64 { return bl.mem.Peak() }
func (bl *Block[T]) Name() string     { return fmt.Sprintf("%s-%d", bl.mode, bl.bsize) }
func (bl *Block[T]) Threads() int     { return bl.threads }

// BlockSize returns the configured block size (exported for the Figure 13
// sweep harness).
func (bl *Block[T]) BlockSize() int { return bl.bsize }

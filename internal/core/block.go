package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"spray/internal/hotspot"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// BlockMode selects among the three BlockReduction flavors in the paper.
type BlockMode int

const (
	// BlockPrivate privatizes blocks on demand for every thread: the
	// first touch of a block allocates a zeroed private copy of that
	// block only. Summation order matches the dense strategy; the only
	// difference is that untouched blocks are never materialized.
	BlockPrivate BlockMode = iota
	// BlockLock lets the first thread to touch a block claim ownership
	// of the block *inside the original array* under a lock (the
	// OpenMP-locks variant in the paper); later threads touching the
	// same block fall back to private copies.
	BlockLock
	// BlockCAS is BlockLock with lock-free claiming via a single
	// compare-and-swap on the block's owner word.
	BlockCAS
)

func (m BlockMode) String() string {
	switch m {
	case BlockPrivate:
		return "block-private"
	case BlockLock:
		return "block-lock"
	case BlockCAS:
		return "block-cas"
	default:
		return fmt.Sprintf("BlockMode(%d)", int(m))
	}
}

const freeOwner = int32(-1)

// Block is the SPRAY BlockReduction: the array is divided into
// statically sized blocks that are privatized (or claimed) individually on
// demand. Private (the paper's `init`) allocates only the per-thread
// block-pointer table; block storage appears lazily on first touch.
// Finalize merges fallback blocks elementwise and releases ownership.
//
// Fallback blocks freed by the fix-up are kept on a per-thread free list
// and reused by later regions (re-zeroed), so a time loop driving the
// same reducer performs zero steady-state block allocations. Pooled
// blocks stay charged to Bytes until the reducer is garbage.
//
// The block size is the hyperparameter the paper sweeps in Figure 13: it
// trades the number of block allocations against wasted work on unused
// elements inside touched blocks. Block sizes must be powers of two so the
// per-update block lookup is a shift and the intra-block offset a mask.
type Block[T num.Float] struct {
	out     []T
	threads int
	bsize   int
	shift   uint
	mask    int
	nblocks int
	mode    BlockMode

	owner []atomic.Int32 // lock & CAS modes: owning tid per block, -1 free
	locks []sync.Mutex   // lock mode only
	privs []blockPrivate[T]
	mem   memtrack.Counter
	tel   *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. Instrumented
// accessors additionally count block claims, claim-CAS losses, fallback
// privatizations and pool reuses in acquire, and time every block
// resolution into the claim-latency histogram.
func (bl *Block[T]) Instrument(rec *telemetry.Recorder) { bl.tel = rec }

// NewBlock wraps out for a team of the given size. blockSize must be a
// positive power of two.
func NewBlock[T num.Float](out []T, threads, blockSize int, mode BlockMode) *Block[T] {
	validate(out, threads)
	validateIndex32(len(out))
	if blockSize < 1 || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("core: block size must be a positive power of two, got %d", blockSize))
	}
	b := &Block[T]{
		out:     out,
		threads: threads,
		bsize:   blockSize,
		shift:   uint(bits.TrailingZeros(uint(blockSize))),
		mask:    blockSize - 1,
		nblocks: (len(out) + blockSize - 1) / blockSize,
		mode:    mode,
		privs:   make([]blockPrivate[T], threads),
	}
	if mode == BlockLock || mode == BlockCAS {
		b.owner = make([]atomic.Int32, b.nblocks)
		for i := range b.owner {
			b.owner[i].Store(freeOwner)
		}
		if mode == BlockLock {
			b.locks = make([]sync.Mutex, b.nblocks)
		}
	}
	return b
}

// privBlock records one privatized fallback block for the fix-up merge.
type privBlock[T num.Float] struct {
	block int
	buf   []T
}

type blockPrivate[T num.Float] struct {
	parent *Block[T]
	tid    int32
	view   [][]T // per block: nil until touched, then direct or private storage
	fallbk []privBlock[T]
	pool   [][]T // full-size fallback buffers recycled from earlier regions
	tel    *telemetry.Shard
	hot    *hotspot.Shard
}

// Add accumulates into the block view, resolving the block on first touch.
func (p *blockPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	b := i >> p.parent.shift
	view := p.view[b]
	if view == nil {
		view = p.acquire(int(b))
	}
	view[i&p.parent.mask] += v
}

// AddN accumulates a contiguous run, resolving each spanned block once
// and applying the per-block segment as a plain loop — the per-element
// shift/mask/nil-check of Add is paid once per block instead of once per
// element.
func (p *blockPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	bsize, mask, shift := p.parent.bsize, p.parent.mask, p.parent.shift
	for len(vals) > 0 {
		b := base >> shift
		off := base & mask
		n := bsize - off
		if n > len(vals) {
			n = len(vals)
		}
		view := p.view[b]
		if view == nil {
			view = p.acquire(b)
		}
		addInto(view[off:off+n], vals)
		base += n
		vals = vals[n:]
	}
}

// Scatter accumulates a gathered batch, caching the resolved block view
// across consecutive indices that land in the same block (the common case
// for sorted or clustered index streams).
func (p *blockPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	mask, shift := p.parent.mask, p.parent.shift
	lastB := -1
	var view []T
	for j, i := range idx {
		b := int(i) >> shift
		if b != lastB {
			view = p.view[b]
			if view == nil {
				view = p.acquire(b)
			}
			lastB = b
		}
		view[int(i)&mask] += vals[j]
	}
}

// acquire resolves storage for block b: claim it in the original array
// when the mode allows and the block is unowned, otherwise reuse a pooled
// fallback buffer (or allocate one on first use). Instrumented accessors
// time every resolution into the claim-latency histogram (acquisition
// happens at most once per block per thread per region, so no sampling
// decimation is needed).
func (p *blockPrivate[T]) acquire(b int) []T {
	if p.tel != nil {
		start := time.Now()
		view := p.resolve(b)
		p.tel.Observe(telemetry.ClaimLatency, time.Since(start))
		return view
	}
	return p.resolve(b)
}

func (p *blockPrivate[T]) resolve(b int) []T {
	parent := p.parent
	base := b << parent.shift
	end := base + parent.bsize
	if end > len(parent.out) {
		end = len(parent.out)
	}
	var view []T
	switch parent.mode {
	case BlockCAS:
		if parent.owner[b].CompareAndSwap(freeOwner, p.tid) {
			view = parent.out[base:end]
			p.tel.Inc(telemetry.BlockClaims)
		} else {
			p.tel.Inc(telemetry.CASRetries) // lost the claim race (or late arrival)
		}
	case BlockLock:
		parent.locks[b].Lock()
		if parent.owner[b].Load() == freeOwner {
			parent.owner[b].Store(p.tid)
			view = parent.out[base:end]
			p.tel.Inc(telemetry.BlockClaims)
		}
		parent.locks[b].Unlock()
	}
	if view == nil { // BlockPrivate mode, or the block is owned elsewhere
		p.tel.Inc(telemetry.BlockFallbacks)
		if parent.mode != BlockPrivate {
			// Contended claim (lost CAS race or lock found an owner):
			// attribute one contention event to the block's base line.
			p.hot.Record(hotspot.BlockContention, base)
		}
		need := end - base
		if n := len(p.pool); n > 0 {
			view = p.pool[n-1][:need] // pooled buffers have cap >= bsize
			p.pool = p.pool[:n-1]
			clear(view)
			p.tel.Inc(telemetry.PoolReuses)
		} else {
			var zero T
			view = make([]T, need)
			p.parent.mem.Alloc(memtrack.SliceBytes(need, unsafe.Sizeof(zero)))
		}
		p.fallbk = append(p.fallbk, privBlock[T]{block: b, buf: view})
	}
	p.view[b] = view
	return view
}

// FlushBin applies one write-combined bin. With the bin block aligned to
// the strategy block (BinBlockSize), the whole bin lands in one block:
// the view is resolved exactly once — one claim or one fallback lookup
// per flush instead of a nil-check per element — and a full-size view
// runs the masked kernel with no per-element bounds check. Misaligned
// bins degrade gracefully to the Scatter-style per-run resolution.
func (p *blockPrivate[T]) FlushBin(base, end int, idx []int32, vals []T) {
	if len(idx) == 0 {
		return
	}
	mask, shift := p.parent.mask, p.parent.shift
	if b := base >> shift; (end-1)>>shift == b {
		view := p.view[b]
		if view == nil {
			view = p.acquire(b)
		}
		if len(view) == p.parent.bsize {
			maskedScatterAdd(view, idx, vals)
			return
		}
		for j, i := range idx { // partial tail block
			view[int(i)&mask] += vals[j]
		}
		return
	}
	lastB := -1
	var view []T
	for j, i := range idx {
		b := int(i) >> shift
		if b != lastB {
			view = p.view[b]
			if view == nil {
				view = p.acquire(b)
			}
			lastB = b
		}
		view[int(i)&mask] += vals[j]
	}
}

func (p *blockPrivate[T]) Done() {}

// Private allocates the thread's block-pointer table — the only init-time
// cost of the block strategies.
func (bl *Block[T]) Private(tid int) Private[T] {
	p := &bl.privs[tid]
	if p.view == nil {
		p.view = make([][]T, bl.nblocks)
		bl.mem.Alloc(memtrack.SliceBytes(bl.nblocks, unsafe.Sizeof([]T(nil))))
	} else {
		clear(p.view)
	}
	p.parent = bl
	p.tid = int32(tid)
	p.tel = bl.tel.Shard(tid)
	p.hot = p.tel.Hot()
	p.fallbk = p.fallbk[:0]
	return p
}

// Finalize merges all privatized fallback blocks into the original array
// and releases block ownership for the next region. Directly owned blocks
// already hold their contributions.
func (bl *Block[T]) Finalize() {
	for t := range bl.privs {
		p := &bl.privs[t]
		for _, fb := range p.fallbk {
			base := fb.block << bl.shift
			addInto(bl.out[base:base+len(fb.buf)], fb.buf)
		}
		bl.recycle(p)
	}
	bl.resetOwners()
}

// FinalizeWith merges the fallback blocks with the team: member m merges
// every fallback block whose block index hashes to m, so two threads'
// private copies of the same block are combined by one member and output
// ranges stay disjoint — the same pattern Keeper.FinalizeWith uses for
// its owner ranges.
func (bl *Block[T]) FinalizeWith(t *par.Team) {
	size := t.Size()
	if size == 1 {
		bl.Finalize()
		return
	}
	tr := t.Tracer()
	t.Run(func(tid int) {
		if tr != nil {
			tr.Begin(tid, telemetry.SpanFinalize, 0, 0)
			defer tr.End(tid, telemetry.SpanFinalize)
		}
		for p := range bl.privs {
			for _, fb := range bl.privs[p].fallbk {
				if fb.block%size != tid {
					continue
				}
				base := fb.block << bl.shift
				addInto(bl.out[base:base+len(fb.buf)], fb.buf)
			}
		}
	})
	for t := range bl.privs {
		bl.recycle(&bl.privs[t])
	}
	bl.resetOwners()
}

// recycle returns p's merged fallback buffers to its free list. Only
// full-size blocks are pooled (the array's partial tail block, if any, is
// freed) so every pooled buffer fits any future block.
func (bl *Block[T]) recycle(p *blockPrivate[T]) {
	var zero T
	for _, fb := range p.fallbk {
		if cap(fb.buf) >= bl.bsize {
			p.pool = append(p.pool, fb.buf)
		} else {
			bl.mem.Free(memtrack.SliceBytes(len(fb.buf), unsafe.Sizeof(zero)))
		}
	}
	p.fallbk = p.fallbk[:0]
}

func (bl *Block[T]) resetOwners() {
	for i := range bl.owner {
		bl.owner[i].Store(freeOwner)
	}
}

func (bl *Block[T]) Bytes() int64     { return bl.mem.Bytes() }
func (bl *Block[T]) PeakBytes() int64 { return bl.mem.Peak() }
func (bl *Block[T]) Name() string     { return fmt.Sprintf("%s-%d", bl.mode, bl.bsize) }
func (bl *Block[T]) Threads() int     { return bl.threads }

// BlockSize returns the configured block size (exported for the Figure 13
// sweep harness).
func (bl *Block[T]) BlockSize() int { return bl.bsize }

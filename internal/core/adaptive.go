package core

import (
	"fmt"
	"math/bits"
	"unsafe"

	"spray/internal/hotspot"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// adaptiveThresholdShift sets the escalation threshold relative to the
// block size: a thread privatizes a block after touching it more than
// blockSize >> adaptiveThresholdShift times. At shift 2, a block that has
// absorbed a quarter of its size in atomic updates is considered hot —
// frequent enough that privatized accumulation amortizes the allocation
// and the merge-back.
const adaptiveThresholdShift = 2

// Adaptive is the "generic reducer object" the paper's outlook asks for:
// a strategy that relieves the user of choosing. It starts in the
// zero-memory atomic regime and privatizes individual blocks per thread
// once they prove hot, converging toward block-private behavior exactly
// where the access pattern warrants it:
//
//   - scattered, low-reuse updates (the atomic sweet spot) never escalate
//     and pay no memory;
//   - dense or clustered updates (the block sweet spot) quickly move into
//     private blocks and stop touching shared cache lines.
//
// Correctness is unconditional because both regimes accumulate: early
// updates of a block land in the shared array atomically, later ones in
// the private copy, and Finalize folds the copies back.
type Adaptive[T num.Float] struct {
	out     []T
	threads int
	bsize   int
	shift   uint
	mask    int
	nblocks int
	privs   []adaptivePrivate[T]
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. Instrumented
// accessors count atomic-regime CAS retries and regime escalations, so the
// counters show where the strategy converged (escalations vs cas-retries
// mirrors the hot/cold split of the access pattern).
func (a *Adaptive[T]) Instrument(rec *telemetry.Recorder) { a.tel = rec }

// NewAdaptive wraps out for a team of the given size. blockSize must be a
// positive power of two.
func NewAdaptive[T num.Float](out []T, threads, blockSize int) *Adaptive[T] {
	validate(out, threads)
	if blockSize < 1 || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("core: adaptive block size must be a positive power of two, got %d", blockSize))
	}
	a := &Adaptive[T]{
		out:     out,
		threads: threads,
		bsize:   blockSize,
		shift:   uint(bits.TrailingZeros(uint(blockSize))),
		mask:    blockSize - 1,
		nblocks: (len(out) + blockSize - 1) / blockSize,
		privs:   make([]adaptivePrivate[T], threads),
	}
	return a
}

type adaptivePrivate[T num.Float] struct {
	parent *Adaptive[T]
	touch  []uint32 // per block: atomic-update count until escalation
	view   [][]T    // per block: nil = atomic regime, else private copy
	owned  []privBlock[T]
	tel    *telemetry.Shard
	hot    *hotspot.Shard
}

// Add updates through the current regime of the target block, escalating
// to a private copy when the block crosses the hotness threshold.
func (p *adaptivePrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	b := i >> p.parent.shift
	if view := p.view[b]; view != nil {
		view[i&p.parent.mask] += v
		return
	}
	if p.tel == nil {
		num.AtomicAdd(p.parent.out, i, v)
	} else {
		r := num.AtomicAddRetries(p.parent.out, i, v)
		p.tel.Add(telemetry.CASRetries, r)
		if r > 0 {
			p.hot.RecordW(hotspot.CASRetry, i, uint64(r))
		}
	}
	p.touch[b]++
	if int(p.touch[b]) > p.parent.bsize>>adaptiveThresholdShift {
		p.escalate(int(b))
	}
}

// AddN accumulates a contiguous run block by block: escalated blocks take
// a plain loop over the private copy (block resolved once per run),
// atomic-regime blocks that stay safely below the hotness threshold pay
// per-element CAS with the touch counter bumped once for the whole
// segment. A segment that would cross the threshold mid-way degrades to
// per-element Add so escalation fires at exactly the same element as in
// the element-wise path — keeping bulk bitwise-equivalent to Add.
func (p *adaptivePrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	parent := p.parent
	bsize, mask, shift := parent.bsize, parent.mask, parent.shift
	thresh := uint32(bsize >> adaptiveThresholdShift)
	for len(vals) > 0 {
		b := base >> shift
		off := base & mask
		n := bsize - off
		if n > len(vals) {
			n = len(vals)
		}
		if view := p.view[b]; view != nil {
			dst := view[off : off+n]
			for j, v := range vals[:n] {
				dst[j] += v
			}
		} else if p.touch[b]+uint32(n) <= thresh {
			out := parent.out[base : base+n]
			if p.tel == nil {
				for j, v := range vals[:n] {
					num.AtomicAdd(out, j, v)
				}
			} else {
				retries := 0
				for j, v := range vals[:n] {
					r := num.AtomicAddRetries(out, j, v)
					retries += r
					if r > 0 {
						p.hot.RecordW(hotspot.CASRetry, base+j, uint64(r))
					}
				}
				p.tel.Add(telemetry.CASRetries, retries)
			}
			p.touch[b] += uint32(n)
		} else {
			for j, v := range vals[:n] {
				p.Add(base+j, v)
			}
		}
		base += n
		vals = vals[n:]
	}
}

// Scatter accumulates a gathered batch; each element goes through the
// regular regime dispatch so escalation behaves exactly as with Add.
// (Instrumented, the delegated elements also count as updates — the
// counters expose that this bulk path degrades to element-wise work.)
func (p *adaptivePrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	for j, i := range idx {
		p.Add(int(i), vals[j])
	}
}

// FlushBin applies one write-combined bin with the AddN regime logic:
// each maximal same-block run (the whole bin when the bin block is
// aligned via BlockSize) takes the escalated view as a plain loop, or the
// atomic regime with the touch counter bumped once for the run — giving
// the hotness estimate an accurate per-block count of *distinct* touched
// locations instead of raw arrival traffic inflated by duplicates. Runs
// that would cross the threshold mid-way degrade to per-element Add so
// escalation fires at the same element as the element-wise path.
func (p *adaptivePrivate[T]) FlushBin(base, end int, idx []int32, vals []T) {
	parent := p.parent
	mask, shift := parent.mask, parent.shift
	thresh := uint32(parent.bsize >> adaptiveThresholdShift)
	for j := 0; j < len(idx); {
		b := int(idx[j]) >> shift
		k := j + 1
		for k < len(idx) && int(idx[k])>>shift == b {
			k++
		}
		n := k - j
		if view := p.view[b]; view != nil {
			for m := j; m < k; m++ {
				view[int(idx[m])&mask] += vals[m]
			}
		} else if p.touch[b]+uint32(n) <= thresh {
			out := parent.out
			if p.tel == nil {
				for m := j; m < k; m++ {
					num.AtomicAdd(out, int(idx[m]), vals[m])
				}
			} else {
				retries := 0
				for m := j; m < k; m++ {
					r := num.AtomicAddRetries(out, int(idx[m]), vals[m])
					retries += r
					if r > 0 {
						p.hot.RecordW(hotspot.CASRetry, int(idx[m]), uint64(r))
					}
				}
				p.tel.Add(telemetry.CASRetries, retries)
			}
			p.touch[b] += uint32(n)
		} else {
			for m := j; m < k; m++ {
				p.Add(int(idx[m]), vals[m])
			}
		}
		j = k
	}
}

// escalate privatizes block b for this thread.
func (p *adaptivePrivate[T]) escalate(b int) {
	p.tel.Inc(telemetry.Escalations)
	parent := p.parent
	base := b << parent.shift
	end := base + parent.bsize
	if end > len(parent.out) {
		end = len(parent.out)
	}
	var zero T
	buf := make([]T, end-base)
	parent.mem.Alloc(memtrack.SliceBytes(len(buf), unsafe.Sizeof(zero)))
	p.owned = append(p.owned, privBlock[T]{block: b, buf: buf})
	p.view[b] = buf
}

func (p *adaptivePrivate[T]) Done() {}

// Private returns the accessor for thread tid, allocating (or resetting)
// its per-block bookkeeping tables.
func (a *Adaptive[T]) Private(tid int) Private[T] {
	p := &a.privs[tid]
	p.parent = a
	p.tel = a.tel.Shard(tid)
	p.hot = p.tel.Hot()
	if p.touch == nil {
		p.touch = make([]uint32, a.nblocks)
		p.view = make([][]T, a.nblocks)
		a.mem.Alloc(memtrack.SliceBytes(a.nblocks, 4) +
			memtrack.SliceBytes(a.nblocks, unsafe.Sizeof([]T(nil))))
	} else {
		clear(p.touch)
		clear(p.view)
	}
	p.owned = p.owned[:0]
	return p
}

// FinalizeWith delegates to the serial Finalize: escalated blocks are
// typically few (that is the point of the strategy), so the merge is not
// worth a parallel region.
func (a *Adaptive[T]) FinalizeWith(*par.Team) { a.Finalize() }

// Finalize folds every escalated private block back into the array.
func (a *Adaptive[T]) Finalize() {
	var zero T
	for t := range a.privs {
		p := &a.privs[t]
		for _, pb := range p.owned {
			base := pb.block << a.shift
			for j, v := range pb.buf {
				a.out[base+j] += v
			}
			a.mem.Free(memtrack.SliceBytes(len(pb.buf), unsafe.Sizeof(zero)))
		}
		p.owned = p.owned[:0]
	}
}

// EscalatedBlocks reports how many (thread, block) pairs left the atomic
// regime in the last region — observability for tests and tuning.
func (a *Adaptive[T]) EscalatedBlocks() int {
	n := 0
	for t := range a.privs {
		for _, v := range a.privs[t].view {
			if v != nil {
				n++
			}
		}
	}
	return n
}

// BlockSize returns the configured block size (the binned wrapper aligns
// its write-combining bins with it, like Block.BlockSize).
func (a *Adaptive[T]) BlockSize() int { return a.bsize }

func (a *Adaptive[T]) Bytes() int64     { return a.mem.Bytes() }
func (a *Adaptive[T]) PeakBytes() int64 { return a.mem.Peak() }
func (a *Adaptive[T]) Name() string     { return fmt.Sprintf("auto-%d", a.bsize) }
func (a *Adaptive[T]) Threads() int     { return a.threads }

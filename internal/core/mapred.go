package core

import (
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// mapEntryOverhead estimates the per-entry heap cost of a Go map beyond
// key and value: bucket tophash bytes, padding and amortized overflow
// pointers. It is an estimate (Go's map layout is unspecified) used only
// for the memory-overhead reporting; the paper's RSS-based measurement has
// larger error bars than this approximation.
const mapEntryOverhead = 10

// MapRed is the SPRAY MapReduction backed by the native hash map: each
// thread accumulates its updates in a private map from array index to
// partial value, so memory is allocated only for locations actually
// touched. Absence of a key doubles as the "not yet initialized" marker,
// so no up-front zeroing is needed. At Finalize the maps are folded into
// the original array. The paper finds map-backed reducers correct but not
// competitive; the benchmarks here confirm that shape.
type MapRed[T num.Float] struct {
	out     []T
	maps    []map[int32]T
	privs   []mapPrivate[T]
	threads int
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. The entries
// counter records how many distinct keys each thread held at Done.
func (m *MapRed[T]) Instrument(rec *telemetry.Recorder) { m.tel = rec }

// NewMap wraps out for a team of the given size. Arrays longer than
// MaxInt32 are rejected: map keys are int32.
func NewMap[T num.Float](out []T, threads int) *MapRed[T] {
	validate(out, threads)
	validateIndex32(len(out))
	return &MapRed[T]{
		out:     out,
		maps:    make([]map[int32]T, threads),
		privs:   make([]mapPrivate[T], threads),
		threads: threads,
	}
}

type mapPrivate[T num.Float] struct {
	parent *MapRed[T]
	m      map[int32]T
	tel    *telemetry.Shard
}

func (p *mapPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	p.m[int32(i)] += v
}

// AddN accumulates a contiguous run; the per-element hash probe remains,
// but the interface dispatch is paid once per run.
func (p *mapPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	m := p.m
	for j, v := range vals {
		m[int32(base+j)] += v
	}
}

// Scatter accumulates a gathered batch; keys are already int32.
func (p *mapPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	m := p.m
	for j, i := range idx {
		m[i] += vals[j]
	}
}

// Done charges the entries accumulated this region to the memory counter.
func (p *mapPrivate[T]) Done() {
	p.tel.Add(telemetry.Entries, len(p.m))
	var zero T
	per := int64(4 + unsafe.Sizeof(zero) + mapEntryOverhead)
	p.parent.mem.Alloc(int64(len(p.m)) * per)
}

// Private returns the thread's private map accessor, creating the map on
// first use and reusing (after clearing) on later regions.
func (m *MapRed[T]) Private(tid int) Private[T] {
	if m.maps[tid] == nil {
		m.maps[tid] = make(map[int32]T)
	}
	m.privs[tid] = mapPrivate[T]{parent: m, m: m.maps[tid], tel: m.tel.Shard(tid)}
	return &m.privs[tid]
}

// FinalizeWith delegates to the serial Finalize; map iteration order is
// nondeterministic, so splitting the fold across a team buys nothing the
// paper's results would keep.
func (m *MapRed[T]) FinalizeWith(*par.Team) { m.Finalize() }

// Finalize folds every private map into the target and clears the maps.
func (m *MapRed[T]) Finalize() {
	for _, pm := range m.maps {
		for k, v := range pm {
			m.out[k] += v
		}
		clear(pm)
	}
	m.mem.Free(m.mem.Bytes())
}

func (m *MapRed[T]) Bytes() int64     { return m.mem.Bytes() }
func (m *MapRed[T]) PeakBytes() int64 { return m.mem.Peak() }
func (m *MapRed[T]) Name() string     { return "map" }
func (m *MapRed[T]) Threads() int     { return m.threads }

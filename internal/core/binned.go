package core

import (
	"time"

	"spray/internal/hotspot"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/scatter"
	"spray/internal/telemetry"
)

// Binned wraps any reducer with the software write-combining engine
// (internal/scatter): each thread's Scatter batches are staged into
// per-destination-block bins, duplicate indices are coalesced, and whole
// bins are flushed at once through the strategy's BinFlusher fast path
// (or its plain Scatter when the strategy has none). Contiguous AddN runs
// and element-wise Adds bypass the engine — they already have perfect
// locality and cannot contain the duplicates binning exists to merge.
//
// The wrapper pays off when the scatter stream is duplicate-heavy or
// revisits blocks while they are still binned: the atomic strategy then
// issues one CAS per distinct location per flush instead of per arrival,
// the block strategies resolve the block view once per flush, and the
// keeper classifies a whole bin against one ownership range. A stream of
// unique, near-sorted indices gains nothing and pays the staging copy —
// see the DESIGN notes on when binning loses.
//
// Engine storage is pooled per thread and retained across regions
// (capacity-retention rule); it is charged to Bytes/PeakBytes on top of
// the inner strategy's accounting.
type Binned[T num.Float] struct {
	inner Reducer[T]
	n     int
	cfg   scatter.Config
	privs []binnedPrivate[T]
	// drainer is the inner reducer's mid-region drain hook, when it has
	// one; midDrain mirrors its enablement so DrainMid can no-op fast.
	drainer  MidRegionDrainer
	midDrain bool
	mem      memtrack.Counter
	tel      *telemetry.Recorder
}

// NewBinned wraps inner, which must reduce into out, with a per-thread
// write-combining engine. A zero cfg selects the engine defaults, except
// that the bin block size aligns with the inner strategy's own block size
// (Block, Adaptive) when it exposes one — so a flushed bin never
// straddles a strategy block.
func NewBinned[T num.Float](inner Reducer[T], out []T, cfg scatter.Config) *Binned[T] {
	validate(out, inner.Threads())
	validateIndex32(len(out))
	if cfg.BlockSize == 0 {
		if bs, ok := inner.(interface{ BlockSize() int }); ok {
			if s := bs.BlockSize(); s > 0 && s&(s-1) == 0 {
				cfg.BlockSize = s
			}
		}
	}
	b := &Binned[T]{
		inner: inner,
		n:     len(out),
		cfg:   cfg,
		privs: make([]binnedPrivate[T], inner.Threads()),
	}
	b.drainer, _ = inner.(MidRegionDrainer)
	return b
}

type binnedPrivate[T num.Float] struct {
	inner BulkPrivate[T]
	sink  BinFlusher[T] // nil: flush through inner.Scatter
	eng   *scatter.Binner[T]
	tel   *telemetry.Shard
	hot   *hotspot.Shard
	// hotHook is the engine's coalesce observer, allocated once on the
	// first profiled region and reused (it reads p.hot per call), so
	// steady-state regions stay allocation-free.
	hotHook func(int32)
}

// Add bypasses the engine: a single element gains nothing from staging.
func (p *binnedPrivate[T]) Add(i int, v T) { p.inner.Add(i, v) }

// AddN bypasses the engine: a contiguous run has no duplicate indices and
// already walks the destination in order.
func (p *binnedPrivate[T]) AddN(base int, vals []T) { p.inner.AddN(base, vals) }

// Scatter stages the batch into the write-combining bins; the engine
// flushes full bins through flushBin as it goes.
func (p *binnedPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	p.eng.Scatter(idx, vals)
}

// flushBin is the engine's sink: count the flush, sample its latency
// 1-in-N, and hand the bin to the strategy. The strategy's own counters
// (CAS retries, block claims, keeper owned/foreign) fire inside.
func (p *binnedPrivate[T]) flushBin(base, end int, idx []int32, vals []T) {
	if p.tel == nil {
		p.dispatch(base, end, idx, vals)
		return
	}
	p.tel.Inc(telemetry.BinFlushes)
	if p.tel.Sample(telemetry.FlushLatency) {
		start := time.Now()
		p.dispatch(base, end, idx, vals)
		p.tel.Observe(telemetry.FlushLatency, time.Since(start))
		return
	}
	p.dispatch(base, end, idx, vals)
}

func (p *binnedPrivate[T]) dispatch(base, end int, idx []int32, vals []T) {
	if p.sink != nil {
		p.sink.FlushBin(base, end, idx, vals)
		return
	}
	p.inner.Scatter(idx, vals)
}

// Done flushes the remaining bins, banks the coalescing count, and
// forwards to the inner accessor.
func (p *binnedPrivate[T]) Done() {
	p.eng.Flush()
	p.tel.Add(telemetry.ScatterCoalesced, int(p.eng.TakeCoalesced()))
	p.inner.Done()
}

// Private returns the binned accessor for tid, wrapping the inner
// strategy's accessor. The engine (and its pooled bin storage) persists
// across regions; only the inner accessor and telemetry shard refresh.
func (b *Binned[T]) Private(tid int) Private[T] {
	p := &b.privs[tid]
	ip := AsBulk(b.inner.Private(tid))
	p.inner = ip
	p.sink, _ = ip.(BinFlusher[T])
	p.tel = b.tel.Shard(tid)
	p.hot = p.tel.Hot()
	if p.eng == nil {
		cfg := b.cfg
		cfg.OnAlloc = func(n int64) { b.mem.Alloc(n) }
		p.eng = scatter.New(p.flushBin, b.n, cfg)
	}
	if p.hot != nil && p.hotHook == nil {
		p.hotHook = func(i int32) { p.hot.Record(hotspot.BinCollision, int(i)) }
	}
	if p.hot != nil {
		p.eng.SetOnCoalesce(p.hotHook)
	} else {
		p.eng.SetOnCoalesce(nil)
	}
	return p
}

// EnableMidDrain forwards to the inner reducer's drain machinery when it
// has one; a binned wrapper over a drain-less strategy stays a no-op.
func (b *Binned[T]) EnableMidDrain(on bool) {
	if b.drainer == nil {
		return
	}
	b.drainer.EnableMidDrain(on)
	b.midDrain = on
}

// DrainMid flushes tid's staged bins (so its recent foreign traffic
// reaches the inner queues and mailboxes) and then runs the inner drain.
// Must run on tid's goroutine, like the engine itself.
func (b *Binned[T]) DrainMid(tid int) {
	if !b.midDrain {
		return
	}
	if p := &b.privs[tid]; p.eng != nil {
		p.eng.Flush()
	}
	b.drainer.DrainMid(tid)
}

// Finalize forwards to the inner strategy (accessors have flushed their
// engines in Done, per the region contract).
func (b *Binned[T]) Finalize() { b.inner.Finalize() }

// FinalizeWith forwards to the inner strategy.
func (b *Binned[T]) FinalizeWith(t *par.Team) { b.inner.FinalizeWith(t) }

// Instrument attaches (nil: detaches) the recorder to the wrapper and the
// inner reducer: both draw shards from the same recorder, so the region
// report shows staging counters (scatter-runs, bin-flushes,
// scatter-coalesced, flush-latency) next to the strategy's own.
func (b *Binned[T]) Instrument(rec *telemetry.Recorder) {
	b.tel = rec
	if in, ok := b.inner.(Instrumentable); ok {
		in.Instrument(rec)
	}
}

// Bytes reports the inner strategy's memory plus the retained engine
// footprint (bins tables, slot tables, entry arrays).
func (b *Binned[T]) Bytes() int64     { return b.inner.Bytes() + b.mem.Bytes() }
func (b *Binned[T]) PeakBytes() int64 { return b.inner.PeakBytes() + b.mem.Peak() }
func (b *Binned[T]) Name() string     { return "binned+" + b.inner.Name() }
func (b *Binned[T]) Threads() int     { return b.inner.Threads() }

// Inner exposes the wrapped reducer (observability for tests and the
// experiment harness).
func (b *Binned[T]) Inner() Reducer[T] { return b.inner }

package core

import (
	"fmt"

	"spray/internal/btree"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// BTreeRed is the SPRAY MapReduction variant backed by the from-scratch
// B-tree in internal/btree. Compared with the hash-map variant, keys come
// back sorted at merge time, so the fix-up sweep walks the original array
// in ascending order — the property that made the paper's B-tree variant
// outperform std::map. Still not competitive with block reducers.
type BTreeRed[T num.Float] struct {
	out     []T
	trees   []*btree.Tree[T]
	privs   []btreePrivate[T]
	threads int
	degree  int
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. The entries
// counter records how many distinct keys each thread's tree held at Done.
func (b *BTreeRed[T]) Instrument(rec *telemetry.Recorder) { b.tel = rec }

// NewBTree wraps out for a team of the given size; degree <= 0 selects the
// B-tree's default node degree. Arrays longer than MaxInt32 are rejected:
// tree keys are int32.
func NewBTree[T num.Float](out []T, threads, degree int) *BTreeRed[T] {
	validate(out, threads)
	validateIndex32(len(out))
	return &BTreeRed[T]{
		out:     out,
		trees:   make([]*btree.Tree[T], threads),
		privs:   make([]btreePrivate[T], threads),
		threads: threads,
		degree:  degree,
	}
}

type btreePrivate[T num.Float] struct {
	parent *BTreeRed[T]
	tree   *btree.Tree[T]
	tel    *telemetry.Shard
}

func (p *btreePrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	p.tree.Accumulate(int32(i), func(slot *T) { *slot += v })
}

// AddN accumulates a contiguous run; each element still costs a tree
// descent, but the batch pays one interface dispatch.
func (p *btreePrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	for j := range vals {
		v := vals[j]
		p.tree.Accumulate(int32(base+j), func(slot *T) { *slot += v })
	}
}

// Scatter accumulates a gathered batch.
func (p *btreePrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	for j, i := range idx {
		v := vals[j]
		p.tree.Accumulate(i, func(slot *T) { *slot += v })
	}
}

// Done charges the tree nodes grown this region to the memory counter.
func (p *btreePrivate[T]) Done() {
	p.tel.Add(telemetry.Entries, p.tree.Len())
	p.parent.mem.Alloc(p.tree.Bytes())
}

// Private returns the thread's private tree accessor.
func (b *BTreeRed[T]) Private(tid int) Private[T] {
	if b.trees[tid] == nil {
		b.trees[tid] = btree.New[T](b.degree)
	}
	b.privs[tid] = btreePrivate[T]{parent: b, tree: b.trees[tid], tel: b.tel.Shard(tid)}
	return &b.privs[tid]
}

// FinalizeWith delegates to the serial Finalize: the ascending-order
// sweep per tree is the strategy's defining property and is kept intact.
func (b *BTreeRed[T]) FinalizeWith(*par.Team) { b.Finalize() }

// Finalize folds every private tree into the target in ascending index
// order and resets the trees.
func (b *BTreeRed[T]) Finalize() {
	for _, tr := range b.trees {
		if tr == nil {
			continue
		}
		tr.Each(func(k int32, v T) { b.out[k] += v })
		tr.Reset()
	}
	b.mem.Free(b.mem.Bytes())
}

func (b *BTreeRed[T]) Bytes() int64     { return b.mem.Bytes() }
func (b *BTreeRed[T]) PeakBytes() int64 { return b.mem.Peak() }
func (b *BTreeRed[T]) Name() string {
	if b.degree > 0 {
		return fmt.Sprintf("btree-%d", b.degree)
	}
	return "btree"
}
func (b *BTreeRed[T]) Threads() int { return b.threads }

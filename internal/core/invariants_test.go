package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spray/internal/num"
	"spray/internal/par"
)

// Cross-strategy differential property tests: beyond matching the
// sequential reference, strategies must agree with each other bit-for-bit
// on order-insensitive inputs, keep their memory accounting consistent
// (never negative, peak >= live), and survive pathological shapes
// (single-element arrays, empty iteration ranges, all-threads-one-index).

func TestMemoryAccountingInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint16, thRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		threads := int(thRaw)%6 + 1
		iters := n / 2
		ups := genUpdates(seed, iters+1, n, 2)
		for name, mk := range strategies(n) {
			team := par.NewTeam(threads)
			out := make([]float64, n)
			r := mk(out, threads)
			runReduction(t, team, r, iters+1, ups)
			team.Close()
			if r.Bytes() < 0 || r.PeakBytes() < 0 {
				t.Logf("%s: negative accounting %d/%d", name, r.Bytes(), r.PeakBytes())
				return false
			}
			if r.Bytes() > r.PeakBytes() {
				t.Logf("%s: live %d above peak %d", name, r.Bytes(), r.PeakBytes())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleElementArrayAllStrategies(t *testing.T) {
	const threads = 4
	for name, mk := range strategies(1) {
		team := par.NewTeam(threads)
		out := make([]float64, 1)
		r := mk(out, threads)
		team.Run(func(tid int) {
			acc := r.Private(tid)
			for i := 0; i < 100; i++ {
				acc.Add(0, 1)
			}
			acc.Done()
		})
		r.Finalize()
		team.Close()
		if out[0] != 100*threads {
			t.Errorf("%s: out[0]=%v, want %d", name, out[0], 100*threads)
		}
	}
}

func TestNoUpdatesIsIdentity(t *testing.T) {
	const n, threads = 257, 3
	for name, mk := range strategies(n) {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)
		}
		r := mk(out, threads)
		team.Run(func(tid int) {
			r.Private(tid).Done() // no Adds at all
		})
		r.Finalize()
		team.Close()
		for i, v := range out {
			if v != float64(i) {
				t.Fatalf("%s: out[%d] changed to %v", name, i, v)
			}
		}
		if r.Bytes() < 0 {
			t.Errorf("%s: bytes %d", name, r.Bytes())
		}
	}
}

func TestAllThreadsHammerOneIndex(t *testing.T) {
	const n, threads, each = 64, 6, 5000
	for name, mk := range strategies(n) {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		r := mk(out, threads)
		team.Run(func(tid int) {
			acc := r.Private(tid)
			for i := 0; i < each; i++ {
				acc.Add(n/2, 1)
			}
			acc.Done()
		})
		r.Finalize()
		team.Close()
		if out[n/2] != threads*each {
			t.Errorf("%s: contended index %v, want %d", name, out[n/2], threads*each)
		}
	}
}

func TestStrategiesAgreePairwiseOnExactValues(t *testing.T) {
	// With integer-valued updates every strategy must produce the exact
	// same array, not merely close to the reference.
	const n, iters, threads = 777, 300, 5
	ups := genUpdates(99, iters, n, 3)
	var first []float64
	var firstName string
	for name, mk := range strategies(n) {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		r := mk(out, threads)
		runReduction(t, team, r, iters, ups)
		team.Close()
		if first == nil {
			first = out
			firstName = name
			continue
		}
		if d := num.MaxAbsDiff(out, first); d != 0 {
			t.Errorf("%s vs %s: diff %v", name, firstName, d)
		}
	}
}

func TestPrivateAfterFinalizeStartsClean(t *testing.T) {
	// Strategy state must not leak contributions across Finalize.
	const n = 128
	rng := rand.New(rand.NewSource(5))
	for name, mk := range strategies(n) {
		out := make([]float64, n)
		r := mk(out, 1)
		acc := r.Private(0)
		total := 0.0
		for i := 0; i < 50; i++ {
			v := float64(rng.Intn(9))
			acc.Add(i%n, v)
			total += v
		}
		acc.Done()
		r.Finalize()
		// Second, empty region: nothing more may arrive.
		r.Private(0).Done()
		r.Finalize()
		var sum float64
		for _, v := range out {
			sum += v
		}
		if sum != total {
			t.Errorf("%s: sum %v after empty region, want %v", name, sum, total)
		}
	}
}

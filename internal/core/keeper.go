package core

import (
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
)

// Keeper is the SPRAY KeeperReduction: ownership of the reduction
// locations is distributed statically across threads in contiguous ranges.
// A thread updates locations it owns non-atomically in the original
// storage; updates to foreign locations become "update requests" enqueued
// with the owner (index + value pairs). At Finalize all requests are
// applied — concurrently when a team is supplied, since each owner's range
// is disjoint. The strategy excels when the indices a thread updates
// mostly coincide with its static ownership range (e.g. the near one-to-one
// loop-counter-to-location mapping of the convolution back-propagation).
type Keeper[T num.Float] struct {
	out     []T
	threads int
	chunk   int // ceil(len(out)/threads); owner(i) = i/chunk
	privs   []keeperPrivate[T]
	mem     memtrack.Counter
}

// NewKeeper wraps out for a team of the given size.
func NewKeeper[T num.Float](out []T, threads int) *Keeper[T] {
	validate(out, threads)
	chunk := (len(out) + threads - 1) / threads
	if chunk < 1 {
		chunk = 1
	}
	k := &Keeper[T]{out: out, threads: threads, chunk: chunk}
	k.privs = make([]keeperPrivate[T], threads)
	for t := range k.privs {
		k.privs[t] = keeperPrivate[T]{
			parent: k,
			out:    out,
			chunk:  chunk,
			tid:    t,
			qIdx:   make([][]int32, threads),
			qVal:   make([][]T, threads),
		}
	}
	return k
}

// Owner returns the thread that owns location i.
func (k *Keeper[T]) Owner(i int) int { return i / k.chunk }

type keeperPrivate[T num.Float] struct {
	parent *Keeper[T]
	out    []T // cached from parent for the hot path
	chunk  int
	tid    int
	qIdx   [][]int32 // per destination owner
	qVal   [][]T
}

// Add writes owned locations directly and enqueues an update request with
// the owner otherwise.
func (p *keeperPrivate[T]) Add(i int, v T) {
	o := i / p.chunk
	if o == p.tid {
		p.out[i] += v
		return
	}
	p.qIdx[o] = append(p.qIdx[o], int32(i))
	p.qVal[o] = append(p.qVal[o], v)
}

// Done charges the queued requests to the memory counter.
func (p *keeperPrivate[T]) Done() {
	var zero T
	per := int64(4 + unsafe.Sizeof(zero))
	var n int64
	for o := range p.qIdx {
		n += int64(len(p.qIdx[o]))
	}
	p.parent.mem.Alloc(n * per)
}

// Private returns the accessor for thread tid; queues retained from a
// previous region are reused (emptied, capacity kept).
func (k *Keeper[T]) Private(tid int) Private[T] {
	p := &k.privs[tid]
	for o := range p.qIdx {
		p.qIdx[o] = p.qIdx[o][:0]
		p.qVal[o] = p.qVal[o][:0]
	}
	return p
}

// Finalize applies every queued update request serially.
func (k *Keeper[T]) Finalize() {
	for o := 0; o < k.threads; o++ {
		k.applyOwner(o)
	}
	k.mem.Free(k.mem.Bytes())
}

// FinalizeWith applies the update requests with the team, one owner range
// per member at a time. Owner ranges are disjoint, so no synchronization
// is needed beyond the region join.
func (k *Keeper[T]) FinalizeWith(t *par.Team) {
	t.Run(func(tid int) {
		for o := tid; o < k.threads; o += t.Size() {
			k.applyOwner(o)
		}
	})
	k.mem.Free(k.mem.Bytes())
}

// applyOwner applies all requests destined for owner o's range.
func (k *Keeper[T]) applyOwner(o int) {
	for t := range k.privs {
		p := &k.privs[t]
		idx, val := p.qIdx[o], p.qVal[o]
		for j, i := range idx {
			k.out[i] += val[j]
		}
		p.qIdx[o] = idx[:0]
		p.qVal[o] = val[:0]
	}
}

func (k *Keeper[T]) Bytes() int64     { return k.mem.Bytes() }
func (k *Keeper[T]) PeakBytes() int64 { return k.mem.Peak() }
func (k *Keeper[T]) Name() string     { return "keeper" }
func (k *Keeper[T]) Threads() int     { return k.threads }

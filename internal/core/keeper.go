package core

import (
	"sync/atomic"
	"time"
	"unsafe"

	"spray/internal/hotspot"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// keeperMailboxFlush is the foreign-queue length at which a thread stops
// letting the queue grow and publishes its contents to the owner's
// mailbox instead. 1024 entries (12 KiB of float64 requests) is large
// enough to amortize the publish CAS and the owner's drain dispatch, and
// small enough that peak queue memory stays bounded by
// threads² × keeperMailboxFlush entries instead of the full region's
// foreign traffic.
const keeperMailboxFlush = 1024

// parcel is one published batch of foreign update requests: a
// singly-linked node in both the owner's inbound mailbox and the
// producer's recycling stack. The producer stamps `at` with the oldest
// pending dwell timestamp so the drain can turn it into a keeper-dwell
// sample, and `from` with its tid so the consumed parcel finds its way
// back to the producer's pool.
type parcel[T num.Float] struct {
	next *parcel[T]
	from int32
	at   time.Time
	idx  []int32
	vals []T
}

// mailbox is one owner's inbound parcel stack: a Treiber push (producers,
// any thread) against a Swap(nil) take-all (the owner). Padded so two
// owners' heads never share a cache line.
type mailbox[T num.Float] struct {
	head atomic.Pointer[parcel[T]]
	_    [56]byte
}

// Keeper is the SPRAY KeeperReduction: ownership of the reduction
// locations is distributed statically across threads in contiguous ranges.
// A thread updates locations it owns non-atomically in the original
// storage; updates to foreign locations become "update requests" enqueued
// with the owner (index + value pairs). At Finalize all requests are
// applied — concurrently when a team is supplied, since each owner's range
// is disjoint. The strategy excels when the indices a thread updates
// mostly coincide with its static ownership range (e.g. the near one-to-one
// loop-counter-to-location mapping of the convolution back-propagation).
//
// Memory accounting is capacity-based: queue storage grows in Add (and
// the bulk paths) and is retained across regions for reuse, so Bytes
// reports the capacity the reducer actually holds — including after
// Finalize — and PeakBytes no longer under-reports once queues persist
// past their first region.
type Keeper[T num.Float] struct {
	out     []T
	threads int
	chunk   int // ceil(len(out)/threads); owner(i) = i/chunk
	privs   []keeperPrivate[T]
	mail    []mailbox[T] // per owner: inbound parcels for the mid-region drain
	// midDrain gates mailbox publication. The run harness sets it (between
	// regions) when it wires DrainMid to the chunk-boundary hook; with it
	// off, foreign queues grow until Finalize exactly as before.
	midDrain bool
	mem      memtrack.Counter
	tel      *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. Instrumented
// accessors split updates into keeper-owned (direct writes into the static
// ownership range) and keeper-foreign (enqueued update requests); the
// fix-up counts drained requests against the destination owner's shard.
// The first foreign enqueue per (thread, owner) pair per region is
// additionally timestamped and its queue dwell time — enqueue to drain —
// lands in the keeper-dwell histogram.
func (k *Keeper[T]) Instrument(rec *telemetry.Recorder) { k.tel = rec }

// NewKeeper wraps out for a team of the given size. Arrays longer than
// MaxInt32 are rejected: the update-request queues store int32 indices.
func NewKeeper[T num.Float](out []T, threads int) *Keeper[T] {
	validate(out, threads)
	validateIndex32(len(out))
	chunk := (len(out) + threads - 1) / threads
	if chunk < 1 {
		chunk = 1
	}
	k := &Keeper[T]{out: out, threads: threads, chunk: chunk}
	k.mail = make([]mailbox[T], threads)
	k.privs = make([]keeperPrivate[T], threads)
	for t := range k.privs {
		k.privs[t] = keeperPrivate[T]{
			parent: k,
			out:    out,
			chunk:  chunk,
			tid:    t,
			qIdx:   make([][]int32, threads),
			qVal:   make([][]T, threads),
		}
	}
	return k
}

// Owner returns the thread that owns location i.
func (k *Keeper[T]) Owner(i int) int { return i / k.chunk }

type keeperPrivate[T num.Float] struct {
	parent *Keeper[T]
	out    []T // cached from parent for the hot path
	chunk  int
	tid    int
	qIdx   [][]int32 // per destination owner
	qVal   [][]T
	// charged is the queue capacity in bytes this private has reported
	// to the parent counter; growth is charged as it happens.
	charged int64
	tel     *telemetry.Shard
	hot     *hotspot.Shard
	// dwellAt stamps, per destination owner, the first foreign enqueue
	// of the current region; the drain turns the stamps into
	// keeper-dwell samples. Allocated only while instrumented, so the
	// uninstrumented foreign path pays one nil check.
	dwellAt []time.Time
	// returns receives parcels the owners have finished applying (Treiber
	// push by any consumer); free is the local pool they drain into. All
	// parcel capacity is retained and stays charged to the parent counter.
	returns atomic.Pointer[parcel[T]]
	free    []*parcel[T]
}

// stampDwell records the enqueue time of the first foreign request to
// owner o in this region.
func (p *keeperPrivate[T]) stampDwell(o int) {
	if p.dwellAt != nil && p.dwellAt[o].IsZero() {
		p.dwellAt[o] = time.Now()
	}
}

// Add writes owned locations directly and enqueues an update request with
// the owner otherwise.
func (p *keeperPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	o := i / p.chunk
	if o == p.tid {
		p.tel.Inc(telemetry.KeeperOwned)
		p.out[i] += v
		return
	}
	p.tel.Inc(telemetry.KeeperForeign)
	p.hot.Record(hotspot.KeeperForeign, i)
	p.stampDwell(o)
	qi, qv := p.qIdx[o], p.qVal[o]
	ci, cv := cap(qi), cap(qv)
	qi = append(qi, int32(i))
	qv = append(qv, v)
	if cap(qi) != ci || cap(qv) != cv {
		p.grew(cap(qi)-ci, cap(qv)-cv)
	}
	p.qIdx[o], p.qVal[o] = qi, qv
	p.maybePublish(o)
}

// AddN splits a contiguous run at the static ownership boundaries: the
// thread's own segment is applied as one plain loop, and each foreign
// segment is appended to the owner's queue in bulk.
func (p *keeperPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	for len(vals) > 0 {
		o := base / p.chunk
		n := (o+1)*p.chunk - base
		if n > len(vals) {
			n = len(vals)
		}
		if o == p.tid {
			p.tel.Add(telemetry.KeeperOwned, n)
			addInto(p.out[base:base+n], vals)
		} else {
			p.tel.Add(telemetry.KeeperForeign, n)
			p.hot.RecordRun(hotspot.KeeperForeign, base, n)
			p.stampDwell(o)
			qi, qv := p.qIdx[o], p.qVal[o]
			ci, cv := cap(qi), cap(qv)
			for j := 0; j < n; j++ {
				qi = append(qi, int32(base+j))
			}
			qv = append(qv, vals[:n]...)
			if cap(qi) != ci || cap(qv) != cv {
				p.grew(cap(qi)-ci, cap(qv)-cv)
			}
			p.qIdx[o], p.qVal[o] = qi, qv
			p.maybePublish(o)
		}
		base += n
		vals = vals[n:]
	}
}

// Scatter partitions a gathered batch by owner in one pass: maximal runs
// of consecutive entries with the same owner are applied directly (own
// range) or appended to the owner's queue as whole sub-slices.
func (p *keeperPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	p.scatterOwners(idx, vals)
}

// scatterOwners is the owner-partitioning core of Scatter, shared with
// the straddling-bin fallback of FlushBin.
func (p *keeperPrivate[T]) scatterOwners(idx []int32, vals []T) {
	chunk, tid := p.chunk, p.tid
	for j := 0; j < len(idx); {
		o := int(idx[j]) / chunk
		k := j + 1
		for k < len(idx) && int(idx[k])/chunk == o {
			k++
		}
		if o == tid {
			p.tel.Add(telemetry.KeeperOwned, k-j)
			out := p.out
			for m := j; m < k; m++ {
				out[idx[m]] += vals[m]
			}
		} else {
			p.tel.Add(telemetry.KeeperForeign, k-j)
			p.enqueue(o, idx[j:k], vals[j:k])
		}
		j = k
	}
}

// FlushBin applies one write-combined bin. The bin's destination block
// lies inside a single ownership range whenever the block is not larger
// than the ownership chunk and does not straddle a chunk boundary — then
// the whole bin classifies with one division: a direct plain loop when
// this thread owns the block, one bulk enqueue to the owner otherwise.
// Straddling bins fall back to the owner-partitioning scatter core.
func (p *keeperPrivate[T]) FlushBin(base, end int, idx []int32, vals []T) {
	if o := base / p.chunk; o == (end-1)/p.chunk {
		if o == p.tid {
			p.tel.Add(telemetry.KeeperOwned, len(idx))
			// The engine hands bins aligned to its power-of-two block, so
			// a power-of-two-long window [base, end) has base a multiple
			// of its length and the masked kernel applies (tail windows
			// with other lengths fall back to the per-element loop).
			if own := p.out[base:end]; len(own) > 0 && len(own)&(len(own)-1) == 0 {
				maskedScatterAdd(own, idx, vals)
			} else {
				out := p.out
				for j, i := range idx {
					out[i] += vals[j]
				}
			}
		} else {
			p.tel.Add(telemetry.KeeperForeign, len(idx))
			p.enqueue(o, idx, vals)
		}
		return
	}
	p.scatterOwners(idx, vals)
}

// enqueue appends a foreign batch to owner o's queue (the slices are
// copied; callers may reuse them) and publishes the queue to the owner's
// mailbox once it passes the publication threshold.
func (p *keeperPrivate[T]) enqueue(o int, idx []int32, vals []T) {
	p.hot.RecordBatch(hotspot.KeeperForeign, idx)
	p.stampDwell(o)
	qi, qv := p.qIdx[o], p.qVal[o]
	ci, cv := cap(qi), cap(qv)
	qi = append(qi, idx...)
	qv = append(qv, vals...)
	if cap(qi) != ci || cap(qv) != cv {
		p.grew(cap(qi)-ci, cap(qv)-cv)
	}
	p.qIdx[o], p.qVal[o] = qi, qv
	p.maybePublish(o)
}

// maybePublish moves owner o's queue contents into a mailbox parcel when
// mid-region draining is enabled and the queue has reached the
// publication threshold.
func (p *keeperPrivate[T]) maybePublish(o int) {
	if p.parent.midDrain && len(p.qIdx[o]) >= keeperMailboxFlush {
		p.publish(o)
	}
}

// publish copies owner o's pending requests into a recycled (or fresh)
// parcel, pushes it onto o's mailbox, and truncates the queue in place —
// queue capacity is untouched, so the Done reconciliation stays exact.
// Parcel capacity is charged to the parent counter when it grows and is
// retained forever through the returns/free recycling loop (the same
// capacity-retention rule the queues follow). The pending dwell stamp,
// if any, travels with the parcel so the drain observes enqueue-to-apply
// time; the next enqueue to o re-stamps.
func (p *keeperPrivate[T]) publish(o int) {
	par := p.takeParcel()
	ci, cv := cap(par.idx), cap(par.vals)
	par.idx = append(par.idx[:0], p.qIdx[o]...)
	par.vals = append(par.vals[:0], p.qVal[o]...)
	if cap(par.idx) != ci || cap(par.vals) != cv {
		var zero T
		p.parent.mem.Alloc(int64(cap(par.idx)-ci)*4 +
			int64(cap(par.vals)-cv)*int64(unsafe.Sizeof(zero)))
	}
	par.from = int32(p.tid)
	par.at = time.Time{}
	if p.dwellAt != nil {
		par.at = p.dwellAt[o]
		p.dwellAt[o] = time.Time{}
	}
	p.qIdx[o] = p.qIdx[o][:0]
	p.qVal[o] = p.qVal[o][:0]
	mb := &p.parent.mail[o]
	for {
		old := mb.head.Load()
		par.next = old
		if mb.head.CompareAndSwap(old, par) {
			return
		}
	}
}

// takeParcel returns an empty parcel: from the local pool, else from the
// parcels owners have pushed back on the returns stack, else fresh.
func (p *keeperPrivate[T]) takeParcel() *parcel[T] {
	if n := len(p.free); n > 0 {
		par := p.free[n-1]
		p.free = p.free[:n-1]
		return par
	}
	if head := p.returns.Swap(nil); head != nil {
		for par := head; par != nil; par = par.next {
			p.free = append(p.free, par)
		}
		n := len(p.free)
		par := p.free[n-1]
		p.free = p.free[:n-1]
		return par
	}
	return &parcel[T]{}
}

// grew charges a queue capacity increase (in elements) to the parent
// counter the moment the backing arrays are reallocated.
func (p *keeperPrivate[T]) grew(dIdx, dVal int) {
	var zero T
	d := int64(dIdx)*4 + int64(dVal)*int64(unsafe.Sizeof(zero))
	p.charged += d
	p.parent.mem.Alloc(d)
}

// Done reconciles the charged bytes with the exact queue capacity held.
func (p *keeperPrivate[T]) Done() {
	var zero T
	var capBytes int64
	for o := range p.qIdx {
		capBytes += int64(cap(p.qIdx[o]))*4 + int64(cap(p.qVal[o]))*int64(unsafe.Sizeof(zero))
	}
	if d := capBytes - p.charged; d > 0 {
		p.parent.mem.Alloc(d)
	} else if d < 0 {
		p.parent.mem.Free(-d)
	}
	p.charged = capBytes
}

// Private returns the accessor for thread tid; queues retained from a
// previous region are reused (emptied, capacity kept and still charged).
func (k *Keeper[T]) Private(tid int) Private[T] {
	p := &k.privs[tid]
	p.tel = k.tel.Shard(tid)
	p.hot = p.tel.Hot()
	if p.tel != nil {
		if p.dwellAt == nil {
			p.dwellAt = make([]time.Time, k.threads)
		} else {
			clear(p.dwellAt)
		}
	} else {
		p.dwellAt = nil
	}
	for o := range p.qIdx {
		p.qIdx[o] = p.qIdx[o][:0]
		p.qVal[o] = p.qVal[o][:0]
	}
	return p
}

// EnableMidDrain switches mid-region mailbox publication on or off (off
// by default). The run harness enables it when it wires DrainMid to the
// chunk-boundary hook; with it off, foreign queues simply grow until
// Finalize. Must not be called while a region is running.
func (k *Keeper[T]) EnableMidDrain(on bool) { k.midDrain = on }

// DrainMid applies every parcel published to tid's mailbox. It must run
// on tid's own goroutine (the chunker's chunk-boundary hook does): the
// parcels target tid's ownership range, which only tid writes, so the
// applies are single-writer and need no further synchronization.
func (k *Keeper[T]) DrainMid(tid int) {
	if n := k.drainMail(tid); n > 0 {
		k.privs[tid].tel.Inc(telemetry.KeeperMidDrains)
	}
}

// drainMail takes owner o's whole mailbox in one swap and applies each
// parcel, pushing consumed parcels back to their producers' returns
// stacks for reuse. Returns the number of requests applied. Parcels come
// off the Treiber stack newest-first; application order of foreign
// batches was never part of the keeper's determinism contract (producer
// timing decides it), so no re-sort is paid here.
func (k *Keeper[T]) drainMail(o int) int {
	head := k.mail[o].head.Swap(nil)
	if head == nil {
		return 0
	}
	sh := k.tel.Shard(o)
	out := k.out
	drained := 0
	for par := head; par != nil; {
		next := par.next
		if !par.at.IsZero() {
			sh.Observe(telemetry.KeeperDwell, time.Since(par.at))
			par.at = time.Time{}
		}
		for j, i := range par.idx {
			out[i] += par.vals[j]
		}
		drained += len(par.idx)
		par.idx = par.idx[:0]
		par.vals = par.vals[:0]
		ret := &k.privs[par.from].returns
		for {
			old := ret.Load()
			par.next = old
			if ret.CompareAndSwap(old, par) {
				break
			}
		}
		par = next
	}
	sh.Add(telemetry.KeeperDrained, drained)
	return drained
}

// Finalize applies every queued update request serially. Queue capacity
// is retained (and stays charged to Bytes) for the next region.
func (k *Keeper[T]) Finalize() {
	for o := 0; o < k.threads; o++ {
		k.applyOwner(o)
	}
}

// FinalizeWith applies the update requests with the team, one owner range
// per member at a time. Owner ranges are disjoint, so no synchronization
// is needed beyond the region join. With a tracer attached each owner
// drain appears as a drain span (arg0 = owner) on the draining member's
// timeline.
func (k *Keeper[T]) FinalizeWith(t *par.Team) {
	tr := t.Tracer()
	t.Run(func(tid int) {
		for o := tid; o < k.threads; o += t.Size() {
			tr.Begin(tid, telemetry.SpanDrain, int64(o), 0)
			k.applyOwner(o)
			tr.End(tid, telemetry.SpanDrain)
		}
	})
}

// applyOwner applies all requests destined for owner o's range. Drained
// requests are counted against the owner's shard (each owner is processed
// by exactly one member in FinalizeWith, so the writes stay single-writer),
// and dwell stamps from the region turn into keeper-dwell samples.
func (k *Keeper[T]) applyOwner(o int) {
	k.drainMail(o) // parcels published after the last mid-region drain
	sh := k.tel.Shard(o)
	for t := range k.privs {
		p := &k.privs[t]
		if p.dwellAt != nil {
			if at := p.dwellAt[o]; !at.IsZero() {
				sh.Observe(telemetry.KeeperDwell, time.Since(at))
				p.dwellAt[o] = time.Time{}
			}
		}
		idx, val := p.qIdx[o], p.qVal[o]
		sh.Add(telemetry.KeeperDrained, len(idx))
		for j, i := range idx {
			k.out[i] += val[j]
		}
		p.qIdx[o] = idx[:0]
		p.qVal[o] = val[:0]
	}
}

func (k *Keeper[T]) Bytes() int64     { return k.mem.Bytes() }
func (k *Keeper[T]) PeakBytes() int64 { return k.mem.Peak() }
func (k *Keeper[T]) Name() string     { return "keeper" }
func (k *Keeper[T]) Threads() int     { return k.threads }

package core

import (
	"time"
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Keeper is the SPRAY KeeperReduction: ownership of the reduction
// locations is distributed statically across threads in contiguous ranges.
// A thread updates locations it owns non-atomically in the original
// storage; updates to foreign locations become "update requests" enqueued
// with the owner (index + value pairs). At Finalize all requests are
// applied — concurrently when a team is supplied, since each owner's range
// is disjoint. The strategy excels when the indices a thread updates
// mostly coincide with its static ownership range (e.g. the near one-to-one
// loop-counter-to-location mapping of the convolution back-propagation).
//
// Memory accounting is capacity-based: queue storage grows in Add (and
// the bulk paths) and is retained across regions for reuse, so Bytes
// reports the capacity the reducer actually holds — including after
// Finalize — and PeakBytes no longer under-reports once queues persist
// past their first region.
type Keeper[T num.Float] struct {
	out     []T
	threads int
	chunk   int // ceil(len(out)/threads); owner(i) = i/chunk
	privs   []keeperPrivate[T]
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. Instrumented
// accessors split updates into keeper-owned (direct writes into the static
// ownership range) and keeper-foreign (enqueued update requests); the
// fix-up counts drained requests against the destination owner's shard.
// The first foreign enqueue per (thread, owner) pair per region is
// additionally timestamped and its queue dwell time — enqueue to drain —
// lands in the keeper-dwell histogram.
func (k *Keeper[T]) Instrument(rec *telemetry.Recorder) { k.tel = rec }

// NewKeeper wraps out for a team of the given size. Arrays longer than
// MaxInt32 are rejected: the update-request queues store int32 indices.
func NewKeeper[T num.Float](out []T, threads int) *Keeper[T] {
	validate(out, threads)
	validateIndex32(len(out))
	chunk := (len(out) + threads - 1) / threads
	if chunk < 1 {
		chunk = 1
	}
	k := &Keeper[T]{out: out, threads: threads, chunk: chunk}
	k.privs = make([]keeperPrivate[T], threads)
	for t := range k.privs {
		k.privs[t] = keeperPrivate[T]{
			parent: k,
			out:    out,
			chunk:  chunk,
			tid:    t,
			qIdx:   make([][]int32, threads),
			qVal:   make([][]T, threads),
		}
	}
	return k
}

// Owner returns the thread that owns location i.
func (k *Keeper[T]) Owner(i int) int { return i / k.chunk }

type keeperPrivate[T num.Float] struct {
	parent *Keeper[T]
	out    []T // cached from parent for the hot path
	chunk  int
	tid    int
	qIdx   [][]int32 // per destination owner
	qVal   [][]T
	// charged is the queue capacity in bytes this private has reported
	// to the parent counter; growth is charged as it happens.
	charged int64
	tel     *telemetry.Shard
	// dwellAt stamps, per destination owner, the first foreign enqueue
	// of the current region; the drain turns the stamps into
	// keeper-dwell samples. Allocated only while instrumented, so the
	// uninstrumented foreign path pays one nil check.
	dwellAt []time.Time
}

// stampDwell records the enqueue time of the first foreign request to
// owner o in this region.
func (p *keeperPrivate[T]) stampDwell(o int) {
	if p.dwellAt != nil && p.dwellAt[o].IsZero() {
		p.dwellAt[o] = time.Now()
	}
}

// Add writes owned locations directly and enqueues an update request with
// the owner otherwise.
func (p *keeperPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	o := i / p.chunk
	if o == p.tid {
		p.tel.Inc(telemetry.KeeperOwned)
		p.out[i] += v
		return
	}
	p.tel.Inc(telemetry.KeeperForeign)
	p.stampDwell(o)
	qi, qv := p.qIdx[o], p.qVal[o]
	ci, cv := cap(qi), cap(qv)
	qi = append(qi, int32(i))
	qv = append(qv, v)
	if cap(qi) != ci || cap(qv) != cv {
		p.grew(cap(qi)-ci, cap(qv)-cv)
	}
	p.qIdx[o], p.qVal[o] = qi, qv
}

// AddN splits a contiguous run at the static ownership boundaries: the
// thread's own segment is applied as one plain loop, and each foreign
// segment is appended to the owner's queue in bulk.
func (p *keeperPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	for len(vals) > 0 {
		o := base / p.chunk
		n := (o+1)*p.chunk - base
		if n > len(vals) {
			n = len(vals)
		}
		if o == p.tid {
			p.tel.Add(telemetry.KeeperOwned, n)
			dst := p.out[base : base+n]
			for j, v := range vals[:n] {
				dst[j] += v
			}
		} else {
			p.tel.Add(telemetry.KeeperForeign, n)
			p.stampDwell(o)
			qi, qv := p.qIdx[o], p.qVal[o]
			ci, cv := cap(qi), cap(qv)
			for j := 0; j < n; j++ {
				qi = append(qi, int32(base+j))
			}
			qv = append(qv, vals[:n]...)
			if cap(qi) != ci || cap(qv) != cv {
				p.grew(cap(qi)-ci, cap(qv)-cv)
			}
			p.qIdx[o], p.qVal[o] = qi, qv
		}
		base += n
		vals = vals[n:]
	}
}

// Scatter partitions a gathered batch by owner in one pass: maximal runs
// of consecutive entries with the same owner are applied directly (own
// range) or appended to the owner's queue as whole sub-slices.
func (p *keeperPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	chunk, tid := p.chunk, p.tid
	for j := 0; j < len(idx); {
		o := int(idx[j]) / chunk
		k := j + 1
		for k < len(idx) && int(idx[k])/chunk == o {
			k++
		}
		if o == tid {
			p.tel.Add(telemetry.KeeperOwned, k-j)
			out := p.out
			for m := j; m < k; m++ {
				out[idx[m]] += vals[m]
			}
		} else {
			p.tel.Add(telemetry.KeeperForeign, k-j)
			p.stampDwell(o)
			qi, qv := p.qIdx[o], p.qVal[o]
			ci, cv := cap(qi), cap(qv)
			qi = append(qi, idx[j:k]...)
			qv = append(qv, vals[j:k]...)
			if cap(qi) != ci || cap(qv) != cv {
				p.grew(cap(qi)-ci, cap(qv)-cv)
			}
			p.qIdx[o], p.qVal[o] = qi, qv
		}
		j = k
	}
}

// grew charges a queue capacity increase (in elements) to the parent
// counter the moment the backing arrays are reallocated.
func (p *keeperPrivate[T]) grew(dIdx, dVal int) {
	var zero T
	d := int64(dIdx)*4 + int64(dVal)*int64(unsafe.Sizeof(zero))
	p.charged += d
	p.parent.mem.Alloc(d)
}

// Done reconciles the charged bytes with the exact queue capacity held.
func (p *keeperPrivate[T]) Done() {
	var zero T
	var capBytes int64
	for o := range p.qIdx {
		capBytes += int64(cap(p.qIdx[o]))*4 + int64(cap(p.qVal[o]))*int64(unsafe.Sizeof(zero))
	}
	if d := capBytes - p.charged; d > 0 {
		p.parent.mem.Alloc(d)
	} else if d < 0 {
		p.parent.mem.Free(-d)
	}
	p.charged = capBytes
}

// Private returns the accessor for thread tid; queues retained from a
// previous region are reused (emptied, capacity kept and still charged).
func (k *Keeper[T]) Private(tid int) Private[T] {
	p := &k.privs[tid]
	p.tel = k.tel.Shard(tid)
	if p.tel != nil {
		if p.dwellAt == nil {
			p.dwellAt = make([]time.Time, k.threads)
		} else {
			clear(p.dwellAt)
		}
	} else {
		p.dwellAt = nil
	}
	for o := range p.qIdx {
		p.qIdx[o] = p.qIdx[o][:0]
		p.qVal[o] = p.qVal[o][:0]
	}
	return p
}

// Finalize applies every queued update request serially. Queue capacity
// is retained (and stays charged to Bytes) for the next region.
func (k *Keeper[T]) Finalize() {
	for o := 0; o < k.threads; o++ {
		k.applyOwner(o)
	}
}

// FinalizeWith applies the update requests with the team, one owner range
// per member at a time. Owner ranges are disjoint, so no synchronization
// is needed beyond the region join. With a tracer attached each owner
// drain appears as a drain span (arg0 = owner) on the draining member's
// timeline.
func (k *Keeper[T]) FinalizeWith(t *par.Team) {
	tr := t.Tracer()
	t.Run(func(tid int) {
		for o := tid; o < k.threads; o += t.Size() {
			tr.Begin(tid, telemetry.SpanDrain, int64(o), 0)
			k.applyOwner(o)
			tr.End(tid, telemetry.SpanDrain)
		}
	})
}

// applyOwner applies all requests destined for owner o's range. Drained
// requests are counted against the owner's shard (each owner is processed
// by exactly one member in FinalizeWith, so the writes stay single-writer),
// and dwell stamps from the region turn into keeper-dwell samples.
func (k *Keeper[T]) applyOwner(o int) {
	sh := k.tel.Shard(o)
	for t := range k.privs {
		p := &k.privs[t]
		if p.dwellAt != nil {
			if at := p.dwellAt[o]; !at.IsZero() {
				sh.Observe(telemetry.KeeperDwell, time.Since(at))
				p.dwellAt[o] = time.Time{}
			}
		}
		idx, val := p.qIdx[o], p.qVal[o]
		sh.Add(telemetry.KeeperDrained, len(idx))
		for j, i := range idx {
			k.out[i] += val[j]
		}
		p.qIdx[o] = idx[:0]
		p.qVal[o] = val[:0]
	}
}

func (k *Keeper[T]) Bytes() int64     { return k.mem.Bytes() }
func (k *Keeper[T]) PeakBytes() int64 { return k.mem.Peak() }
func (k *Keeper[T]) Name() string     { return "keeper" }
func (k *Keeper[T]) Threads() int     { return k.threads }

package core

import (
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Dense is the SPRAY DenseReduction: every thread receives a full private
// copy of the array, allocated on the heap in Private (the paper's `init`),
// and all copies are combined elementwise in Finalize (the `reduce`).
// Memory grows as threads × array size; for sparse access patterns most of
// that allocation, zeroing and merging is wasted work — which is precisely
// the pathology the paper measures.
//
// Private copies are retained across regions (re-zeroed on reuse), so a
// time loop driving the same reducer performs zero steady-state
// allocations; call Release to return the memory between loops.
type Dense[T num.Float] struct {
	out     []T
	bufs    [][]T
	active  []bool // whether tid's copy was issued this region
	privs   []densePrivate[T]
	threads int
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder; shards are
// handed to accessors in Private.
func (d *Dense[T]) Instrument(rec *telemetry.Recorder) { d.tel = rec }

// NewDense wraps out for a team of the given size.
func NewDense[T num.Float](out []T, threads int) *Dense[T] {
	validate(out, threads)
	return &Dense[T]{
		out:     out,
		bufs:    make([][]T, threads),
		active:  make([]bool, threads),
		privs:   make([]densePrivate[T], threads),
		threads: threads,
	}
}

type densePrivate[T num.Float] struct {
	buf []T
	tel *telemetry.Shard
}

func (p *densePrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	p.buf[i] += v
}

// AddN accumulates a contiguous run into the private copy — a plain
// vectorizable loop with the bounds check hoisted out.
func (p *densePrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	addInto(p.buf[base:base+len(vals)], vals)
}

// Scatter accumulates a gathered batch into the private copy.
func (p *densePrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	buf := p.buf
	for j, i := range idx {
		buf[i] += vals[j]
	}
}

func (p *densePrivate[T]) Done() {}

// Private allocates (or re-zeroes, when the reducer is reused across
// regions) the thread's full copy.
func (d *Dense[T]) Private(tid int) Private[T] {
	var zero T
	if d.bufs[tid] == nil {
		d.bufs[tid] = make([]T, len(d.out))
		d.mem.Alloc(memtrack.SliceBytes(len(d.out), unsafe.Sizeof(zero)))
	} else {
		clear(d.bufs[tid])
	}
	d.active[tid] = true
	d.privs[tid] = densePrivate[T]{buf: d.bufs[tid], tel: d.tel.Shard(tid)}
	return &d.privs[tid]
}

// Finalize combines the private copies issued this region into the target
// serially. Copies are kept (still charged to Bytes) for reuse by the
// next region; Release frees them.
func (d *Dense[T]) Finalize() {
	for tid, buf := range d.bufs {
		if !d.active[tid] {
			continue
		}
		addInto(d.out, buf)
		d.active[tid] = false
	}
}

// FinalizeWith combines the private copies with the team: each member
// merges every copy over a disjoint segment of the array, the tree-free
// analogue of a parallel OpenMP reduction combine. Copies are retained
// exactly as in Finalize.
func (d *Dense[T]) FinalizeWith(t *par.Team) {
	t.Run(func(tid int) {
		from, to := par.StaticRange(0, len(d.out), tid, t.Size())
		for src, buf := range d.bufs {
			if !d.active[src] {
				continue
			}
			addInto(d.out[from:to], buf[from:to])
		}
	})
	for tid := range d.active {
		d.active[tid] = false
	}
}

// Release frees the retained private copies. Call it when the reducer
// will not run another region soon and the memory should go back.
func (d *Dense[T]) Release() {
	var zero T
	for tid := range d.bufs {
		if d.bufs[tid] == nil {
			continue
		}
		d.mem.Free(memtrack.SliceBytes(len(d.out), unsafe.Sizeof(zero)))
		d.bufs[tid] = nil
		d.active[tid] = false
	}
}

func (d *Dense[T]) Bytes() int64     { return d.mem.Bytes() }
func (d *Dense[T]) PeakBytes() int64 { return d.mem.Peak() }
func (d *Dense[T]) Name() string     { return "dense" }
func (d *Dense[T]) Threads() int     { return d.threads }

package core

import (
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
)

// Dense is the SPRAY DenseReduction: every thread receives a full private
// copy of the array, allocated on the heap in Private (the paper's `init`),
// and all copies are combined elementwise in Finalize (the `reduce`).
// Memory grows as threads × array size; for sparse access patterns most of
// that allocation, zeroing and merging is wasted work — which is precisely
// the pathology the paper measures.
type Dense[T num.Float] struct {
	out     []T
	bufs    [][]T
	privs   []densePrivate[T]
	threads int
	mem     memtrack.Counter
}

// NewDense wraps out for a team of the given size.
func NewDense[T num.Float](out []T, threads int) *Dense[T] {
	validate(out, threads)
	return &Dense[T]{
		out:     out,
		bufs:    make([][]T, threads),
		privs:   make([]densePrivate[T], threads),
		threads: threads,
	}
}

type densePrivate[T num.Float] struct{ buf []T }

func (p *densePrivate[T]) Add(i int, v T) { p.buf[i] += v }
func (p *densePrivate[T]) Done()          {}

// Private allocates (or re-zeroes, when the reducer is reused across
// regions) the thread's full copy.
func (d *Dense[T]) Private(tid int) Private[T] {
	var zero T
	if d.bufs[tid] == nil {
		d.bufs[tid] = make([]T, len(d.out))
		d.mem.Alloc(memtrack.SliceBytes(len(d.out), unsafe.Sizeof(zero)))
	} else {
		clear(d.bufs[tid])
	}
	d.privs[tid] = densePrivate[T]{buf: d.bufs[tid]}
	return &d.privs[tid]
}

// Finalize combines all private copies into the target serially.
func (d *Dense[T]) Finalize() {
	for tid, buf := range d.bufs {
		if buf == nil {
			continue
		}
		for i, v := range buf {
			d.out[i] += v
		}
		d.release(tid)
	}
}

// FinalizeWith combines all private copies with the team: each member
// merges every copy over a disjoint segment of the array, the tree-free
// analogue of a parallel OpenMP reduction combine.
func (d *Dense[T]) FinalizeWith(t *par.Team) {
	t.Run(func(tid int) {
		from, to := par.StaticRange(0, len(d.out), tid, t.Size())
		for _, buf := range d.bufs {
			if buf == nil {
				continue
			}
			for i := from; i < to; i++ {
				d.out[i] += buf[i]
			}
		}
	})
	for tid := range d.bufs {
		d.release(tid)
	}
}

func (d *Dense[T]) release(tid int) {
	if d.bufs[tid] == nil {
		return
	}
	var zero T
	d.mem.Free(memtrack.SliceBytes(len(d.out), unsafe.Sizeof(zero)))
	d.bufs[tid] = nil
}

func (d *Dense[T]) Bytes() int64     { return d.mem.Bytes() }
func (d *Dense[T]) PeakBytes() int64 { return d.mem.Peak() }
func (d *Dense[T]) Name() string     { return "dense" }
func (d *Dense[T]) Threads() int     { return d.threads }

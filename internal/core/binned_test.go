package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/scatter"
	"spray/internal/telemetry"
)

// TestBinnedMatchesElementwise proves the write-combining wrapper's
// equivalence for every strategy: a binned mixed AddN/Scatter stream
// produces exactly the result of the element-wise Add stream through the
// bare strategy, at several team sizes. Integer values make float
// addition exact, so coalescing (the one reassociation binning performs)
// cannot change any bit.
func TestBinnedMatchesElementwise(t *testing.T) {
	const n, iters = 1200, 300
	ops := genBulkOps(43, iters, n)
	for name, mk := range strategies(n) {
		for _, threads := range []int{1, 3, 8} {
			outEach := make([]float64, n)
			outBinned := make([]float64, n)

			team := par.NewTeam(threads)
			runBulkReduction(t, team, mk(outEach, threads), iters, ops, false)
			team.Close()

			team = par.NewTeam(threads)
			br := NewBinned(mk(outBinned, threads), outBinned,
				scatter.Config{BlockSize: 64, BinCap: 16, MaxLive: 4})
			runBulkReduction(t, team, br, iters, ops, true)
			team.Close()

			if d := num.MaxAbsDiff(outEach, outBinned); d != 0 {
				t.Errorf("binned+%s threads=%d: diff %v", name, threads, d)
			}
		}
	}
}

// binnedCfgFor mirrors NewBinned's block-size alignment so a reference
// engine sees exactly the geometry the wrapper would use.
func binnedCfgFor(r Reducer[float64]) scatter.Config {
	cfg := scatter.Config{}
	if bs, ok := r.(interface{ BlockSize() int }); ok {
		if s := bs.BlockSize(); s > 0 && s&(s-1) == 0 {
			cfg.BlockSize = s
		}
	}
	return cfg
}

// TestBinnedBitwiseSingleThread pins down the wrapper's precise
// floating-point semantics for every strategy, including the compensated
// reducer's Kahan ordering: on one thread, the binned reducer must be
// bitwise identical to driving a bare engine of the same geometry whose
// flush sink applies entries element-wise through the strategy's Add.
// That makes the strategies' FlushBin fast paths (and the Scatter
// fallback) bitwise equivalent to the element-wise loop over the
// engine's emitted stream — the exact contract BinFlusher documents.
func TestBinnedBitwiseSingleThread(t *testing.T) {
	const n, iters = 600, 150
	rng := rand.New(rand.NewSource(11))
	ops := genBulkOps(11, iters, n)
	for oi := range ops {
		for j := range ops[oi].Vals {
			ops[oi].Vals[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		}
	}
	for name, mk := range strategies(n) {
		if strings.HasPrefix(name, "hot+") {
			// Tiered relaxation: the wrapper's FlushBin and the reference's
			// element-wise sink feed the online promotion tracker
			// differently, so the hot/cold routing (association order) only
			// matches under a fixed promotion schedule. Exactness of
			// binned+hot+ is proven by TestTieredUnderBinnedWrapper; the
			// bitwise form under a fixed schedule by
			// TestTieredBulkSeededBitwiseMatchesElementwise.
			continue
		}
		outA := make([]float64, n)
		outB := make([]float64, n)

		// A: the real wrapper.
		team := par.NewTeam(1)
		runBulkReduction(t, team, NewBinned(mk(outA, 1), outA, scatter.Config{}), iters, ops, true)
		team.Close()

		// B: reference — same engine geometry, flush sink = element-wise
		// Add into the bare strategy; AddN bypasses like the wrapper does.
		r := mk(outB, 1)
		acc := r.Private(0)
		bacc := AsBulk(acc)
		eng := scatter.New(func(base, end int, idx []int32, vals []float64) {
			for j, i := range idx {
				acc.Add(int(i), vals[j])
			}
		}, n, binnedCfgFor(r))
		for _, op := range ops {
			if op.Idx == nil {
				bacc.AddN(op.Base, op.Vals)
			} else {
				eng.Scatter(op.Idx, op.Vals)
			}
		}
		eng.Flush()
		acc.Done()
		r.Finalize()

		for i := range outA {
			if math.Float64bits(outA[i]) != math.Float64bits(outB[i]) {
				t.Errorf("binned+%s: out[%d] wrapper=%x reference=%x", name,
					i, math.Float64bits(outA[i]), math.Float64bits(outB[i]))
				break
			}
		}
	}
}

// FuzzBinnedStrategies drives fuzzer-invented index streams (duplicate
// runs, out-of-order jumps, block-boundary crossings) through binned
// wrappers over the strategies with FlushBin fast paths and cross-checks
// against the sequential reference with exact values.
func FuzzBinnedStrategies(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0, 255, 63, 64, 65, 64, 63})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 200, 200})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 256
		idx := make([]int32, len(raw))
		vals := make([]float64, len(raw))
		want := make([]float64, n)
		for p, by := range raw {
			idx[p] = int32(by)
			vals[p] = float64(p%7 - 3)
			want[by] += vals[p]
		}
		mks := map[string]func(o []float64) Reducer[float64]{
			"atomic":       func(o []float64) Reducer[float64] { return NewAtomic(o, 1) },
			"block-cas-64": func(o []float64) Reducer[float64] { return NewBlock(o, 1, 64, BlockCAS) },
			"keeper":       func(o []float64) Reducer[float64] { return NewKeeper(o, 1) },
			"auto-64":      func(o []float64) Reducer[float64] { return NewAdaptive(o, 1, 64) },
		}
		for name, mk := range mks {
			out := make([]float64, n)
			br := NewBinned(mk(out), out, scatter.Config{BlockSize: 32, BinCap: 8, MaxLive: 2})
			acc := AsBulk(br.Private(0))
			acc.Scatter(idx, vals)
			acc.Done()
			br.Finalize()
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("binned+%s: out[%d] = %v, want %v", name, i, out[i], want[i])
				}
			}
		}
	})
}

// keeperForeignStream builds a scatter batch entirely inside owner 1's
// range of a 2-thread keeper over [0, 2*chunk).
func keeperForeignStream(chunk, m int, seed int64) ([]int32, []float64) {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int32, m)
	vals := make([]float64, m)
	for j := range idx {
		idx[j] = int32(chunk + rng.Intn(chunk))
		vals[j] = float64(rng.Intn(9) - 4)
	}
	return idx, vals
}

// TestKeeperMailboxPublishAndDrain exercises the full mid-region path
// sequentially: publication at the queue threshold, the owner's mailbox
// drain between chunks, the finalize sweep of late parcels, and parcel
// recycling — with result correctness and exact capacity retention
// across regions.
func TestKeeperMailboxPublishAndDrain(t *testing.T) {
	const threads, chunk = 2, 4096
	const n = threads * chunk
	out := make([]float64, n)
	k := NewKeeper(out, threads)
	k.EnableMidDrain(true)

	idx, vals := keeperForeignStream(chunk, 3*keeperMailboxFlush, 5)
	want := make([]float64, n)
	for j, i := range idx {
		want[i] += vals[j]
	}

	region := func() {
		a0 := AsBulk(k.Private(0))
		a1 := AsBulk(k.Private(1))
		half := len(idx) / 2
		a0.Scatter(idx[:half], vals[:half]) // publishes at least one parcel
		k.DrainMid(1)                       // owner applies inbound parcels mid-region
		a0.Scatter(idx[half:], vals[half:])
		a0.Done()
		a1.Done()
		k.Finalize() // sweeps parcels published after the drain
	}

	region()
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("mid-drain region diverged: max diff %v", d)
	}
	if k.Bytes() == 0 {
		t.Fatal("Bytes = 0 after publishing parcels; parcel capacity is not accounted")
	}

	// Regression (capacity-retention rule): parcels recycled through the
	// returns stacks must keep the second region's footprint exactly flat.
	bytes1, peak1 := k.Bytes(), k.PeakBytes()
	clear(out)
	region()
	if k.Bytes() != bytes1 || k.PeakBytes() != peak1 {
		t.Errorf("steady-state region grew keeper memory: bytes %d -> %d, peak %d -> %d",
			bytes1, k.Bytes(), peak1, k.PeakBytes())
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("second region diverged: max diff %v", d)
	}
}

// TestKeeperMidDrainCutsPeakQueueBytes is the headline memory claim: with
// mid-region drains, peak queue+parcel memory is bounded by the
// publication threshold instead of the region's total foreign traffic.
func TestKeeperMidDrainCutsPeakQueueBytes(t *testing.T) {
	const threads, chunk = 2, 4096
	const n = threads * chunk
	const m = 16 * keeperMailboxFlush
	idx, vals := keeperForeignStream(chunk, m, 6)

	run := func(mid bool) int64 {
		out := make([]float64, n)
		k := NewKeeper(out, threads)
		k.EnableMidDrain(mid)
		a0 := AsBulk(k.Private(0))
		a1 := AsBulk(k.Private(1))
		const batch = 512
		for j := 0; j < m; j += batch {
			a0.Scatter(idx[j:j+batch], vals[j:j+batch])
			if mid && j%(4*batch) == 0 {
				k.DrainMid(1) // owner keeps up, parcels recycle
			}
		}
		a0.Done()
		a1.Done()
		k.Finalize()
		return k.PeakBytes()
	}

	peakOff, peakOn := run(false), run(true)
	if peakOn >= peakOff {
		t.Errorf("mid-region drain did not cut peak bytes: on=%d off=%d", peakOn, peakOff)
	}
	// The drained peak must be bounded by a few parcels plus the capped
	// queue, not by the full 16x-threshold foreign stream.
	if limit := int64(8 * keeperMailboxFlush * 12); peakOn > limit {
		t.Errorf("drained peak %d exceeds threshold-bound %d", peakOn, limit)
	}
}

// TestKeeperMidDrainTelemetry checks the new counters and the dwell
// collapse: mid-region drains must produce keeper-midregion-drains
// events and dwell samples far below the no-drain dwell (which spans the
// whole region).
func TestKeeperMidDrainTelemetry(t *testing.T) {
	const threads, chunk = 2, 4096
	const n = threads * chunk
	idx, vals := keeperForeignStream(chunk, 2*keeperMailboxFlush, 7)

	out := make([]float64, n)
	k := NewKeeper(out, threads)
	rec := telemetry.NewRecorder(k.Name(), threads)
	k.Instrument(rec)
	k.EnableMidDrain(true)

	a0 := AsBulk(k.Private(0))
	a1 := AsBulk(k.Private(1))
	a0.Scatter(idx, vals)
	k.DrainMid(1)
	a0.Done()
	a1.Done()
	k.Finalize()

	snap := rec.Snapshot()
	if got := snap.Get(telemetry.KeeperMidDrains); got == 0 {
		t.Error("keeper-midregion-drains = 0 after a mid-region drain")
	}
	if got := snap.Get(telemetry.KeeperDrained); got != uint64(len(idx)) {
		t.Errorf("keeper-drained = %d, want %d", got, len(idx))
	}
	if h := rec.Hist(telemetry.KeeperDwell); h.Count == 0 {
		t.Error("keeper-dwell histogram empty; parcels should carry dwell stamps")
	}
	// An idle DrainMid must not bump the counter.
	before := rec.Snapshot().Get(telemetry.KeeperMidDrains)
	k.DrainMid(1)
	if got := rec.Snapshot().Get(telemetry.KeeperMidDrains); got != before {
		t.Errorf("empty DrainMid bumped the counter: %d -> %d", before, got)
	}
}

// TestConcurrentMailboxDrain drives the publish/drain protocol with a
// real team under the dynamic schedule so producers publish while owners
// drain concurrently — the race-detector coverage for the lock-free
// mailbox and returns stacks (run under -race via make race-telemetry).
func TestConcurrentMailboxDrain(t *testing.T) {
	const threads = 4
	const n = 1 << 14
	const iters = 64
	rng := rand.New(rand.NewSource(8))
	batches := make([][]int32, iters)
	bvals := make([][]float64, iters)
	want := make([]float64, n)
	for it := range batches {
		m := 256 + rng.Intn(512)
		idx := make([]int32, m)
		vals := make([]float64, m)
		for j := range idx {
			idx[j] = int32(rng.Intn(n))
			vals[j] = float64(rng.Intn(9) - 4)
			want[idx[j]] += vals[j]
		}
		batches[it], bvals[it] = idx, vals
	}

	for rep := 0; rep < 3; rep++ {
		out := make([]float64, n)
		k := NewKeeper(out, threads)
		rec := telemetry.NewRecorder(k.Name(), threads)
		k.Instrument(rec)
		k.EnableMidDrain(true)

		team := par.NewTeam(threads)
		c := par.NewChunker(par.Dynamic(1), 0, iters, threads)
		c.SetChunkDone(k.DrainMid)
		team.Run(func(tid int) {
			acc := k.Private(tid)
			bacc := AsBulk(acc)
			c.For(tid, func(from, to int) {
				for it := from; it < to; it++ {
					bacc.Scatter(batches[it], bvals[it])
				}
			})
			acc.Done()
		})
		k.FinalizeWith(team)
		team.Close()

		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("rep %d: concurrent mailbox run diverged: max diff %v", rep, d)
		}
	}
}

// TestBinnedTelemetryCounters checks the wrapper's new counters: bin
// flushes fire per drained bin, coalesced duplicates are banked at Done,
// and the flush-latency histogram collects samples.
func TestBinnedTelemetryCounters(t *testing.T) {
	const n = 1 << 12
	out := make([]float64, n)
	br := NewBinned(NewAtomic(out, 1), out, scatter.Config{BlockSize: 64, BinCap: 16, MaxLive: 4})
	rec := telemetry.NewRecorder(br.Name(), 1)
	br.Instrument(rec)

	acc := AsBulk(br.Private(0))
	idx := make([]int32, 4096)
	vals := make([]float64, 4096)
	want := make([]float64, n)
	for j := range idx {
		idx[j] = int32((j % 32) + 64*(j%4)) // heavy duplication, 4 blocks
		vals[j] = 1
		want[idx[j]]++
	}
	acc.Scatter(idx, vals)
	acc.Done()
	br.Finalize()

	snap := rec.Snapshot()
	if got := snap.Get(telemetry.BinFlushes); got == 0 {
		t.Error("bin-flushes = 0 after binned scatter")
	}
	if got := snap.Get(telemetry.ScatterCoalesced); got == 0 {
		t.Error("scatter-coalesced = 0 on a duplicate-heavy stream")
	}
	if got := snap.Get(telemetry.ScatterRuns); got != 1 {
		t.Errorf("scatter-runs = %d, want 1 (one staged batch)", got)
	}
	if got := snap.Get(telemetry.BulkElems); got != uint64(len(idx)) {
		t.Errorf("bulk-elems = %d, want %d", got, len(idx))
	}
	if h := rec.Hist(telemetry.FlushLatency); h.Count == 0 {
		t.Error("flush-latency histogram empty")
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestBinnedBytesIncludesEngine checks that the wrapper charges the
// pooled engine footprint on top of the inner strategy's accounting and
// keeps it flat across regions (capacity-retention rule).
func TestBinnedBytesIncludesEngine(t *testing.T) {
	const n = 1 << 12
	out := make([]float64, n)
	br := NewBinned(NewAtomic(out, 1), out, scatter.Config{})
	if br.Bytes() != 0 {
		t.Fatalf("Bytes = %d before any region", br.Bytes())
	}
	idx := make([]int32, 512)
	vals := make([]float64, 512)
	for j := range idx {
		idx[j] = int32((j * 37) % n)
		vals[j] = 1
	}
	region := func() {
		acc := AsBulk(br.Private(0))
		acc.Scatter(idx, vals)
		acc.Done()
		br.Finalize()
	}
	region()
	if br.Bytes() == 0 {
		t.Fatal("Bytes = 0 after binned scatter; engine footprint is not accounted")
	}
	b1, p1 := br.Bytes(), br.PeakBytes()
	region()
	if br.Bytes() != b1 || br.PeakBytes() != p1 {
		t.Errorf("engine footprint grew on steady-state region: bytes %d -> %d, peak %d -> %d",
			b1, br.Bytes(), p1, br.PeakBytes())
	}
}

// TestBinnedKeeperMidDrainEndToEnd runs the full stack — binned wrapper
// over the keeper with the chunk-boundary hook — the way RunReduction
// wires it, and checks correctness plus mid-drain activity.
func TestBinnedKeeperMidDrainEndToEnd(t *testing.T) {
	const threads = 4
	const n = 1 << 14
	const iters = 48
	rng := rand.New(rand.NewSource(12))
	batches := make([][]int32, iters)
	bvals := make([][]float64, iters)
	want := make([]float64, n)
	for it := range batches {
		m := 1024
		idx := make([]int32, m)
		vals := make([]float64, m)
		for j := range idx {
			idx[j] = int32(rng.Intn(n))
			vals[j] = float64(rng.Intn(9) - 4)
			want[idx[j]] += vals[j]
		}
		batches[it], bvals[it] = idx, vals
	}

	out := make([]float64, n)
	br := NewBinned(NewKeeper(out, threads), out, scatter.Config{})
	rec := telemetry.NewRecorder(br.Name(), threads)
	br.Instrument(rec)

	var d MidRegionDrainer = br
	d.EnableMidDrain(true)
	team := par.NewTeam(threads)
	c := par.NewChunker(par.StaticChunk(2), 0, iters, threads)
	c.SetChunkDone(d.DrainMid)
	team.Run(func(tid int) {
		acc := br.Private(tid)
		bacc := AsBulk(acc)
		c.For(tid, func(from, to int) {
			for it := from; it < to; it++ {
				bacc.Scatter(batches[it], bvals[it])
			}
		})
		acc.Done()
	})
	br.FinalizeWith(team)
	team.Close()

	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("binned keeper mid-drain run diverged: max diff %v", d)
	}
	if got := rec.Snapshot().Get(telemetry.BinFlushes); got == 0 {
		t.Error("bin-flushes = 0 in the end-to-end run")
	}
}

package core

import (
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Compensated is a dense privatized reducer whose per-thread partials use
// Kahan (compensated) summation. The paper points out that SPRAY's
// templating admits "types that implement reproducible or more accurate
// summation"; this strategy realizes the accuracy half natively: each
// private slot carries a correction term, so long chains of small
// contributions do not lose low-order bits against a large partial.
// Memory is twice Dense (sum + compensation per slot); use it when the
// reduction is numerically ill-conditioned, not for speed.
type Compensated[T num.Float] struct {
	out     []T
	sums    [][]T
	comps   [][]T
	privs   []compensatedPrivate[T]
	threads int
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder.
func (c *Compensated[T]) Instrument(rec *telemetry.Recorder) { c.tel = rec }

// NewCompensated wraps out for a team of the given size.
func NewCompensated[T num.Float](out []T, threads int) *Compensated[T] {
	validate(out, threads)
	return &Compensated[T]{
		out:     out,
		sums:    make([][]T, threads),
		comps:   make([][]T, threads),
		privs:   make([]compensatedPrivate[T], threads),
		threads: threads,
	}
}

type compensatedPrivate[T num.Float] struct {
	sum, comp []T
	tel       *telemetry.Shard
}

// Add folds v into slot i with a Kahan update.
func (p *compensatedPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	y := v - p.comp[i]
	t := p.sum[i] + y
	p.comp[i] = (t - p.sum[i]) - y
	p.sum[i] = t
}

// AddN folds a contiguous run, one Kahan update per element in ascending
// batch order — bit-identical to the element-wise path, with the bounds
// checks hoisted.
func (p *compensatedPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	sum := p.sum[base : base+len(vals)]
	comp := p.comp[base : base+len(vals)]
	for j, v := range vals {
		y := v - comp[j]
		t := sum[j] + y
		comp[j] = (t - sum[j]) - y
		sum[j] = t
	}
}

// Scatter folds a gathered batch with per-element Kahan updates in batch
// order.
func (p *compensatedPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	sum, comp := p.sum, p.comp
	for j, i := range idx {
		v := vals[j]
		y := v - comp[i]
		t := sum[i] + y
		comp[i] = (t - sum[i]) - y
		sum[i] = t
	}
}

func (p *compensatedPrivate[T]) Done() {}

// Private allocates (or re-zeroes) the thread's compensated copy.
func (c *Compensated[T]) Private(tid int) Private[T] {
	var zero T
	if c.sums[tid] == nil {
		c.sums[tid] = make([]T, len(c.out))
		c.comps[tid] = make([]T, len(c.out))
		c.mem.Alloc(2 * memtrack.SliceBytes(len(c.out), unsafe.Sizeof(zero)))
	} else {
		clear(c.sums[tid])
		clear(c.comps[tid])
	}
	c.privs[tid] = compensatedPrivate[T]{sum: c.sums[tid], comp: c.comps[tid], tel: c.tel.Shard(tid)}
	return &c.privs[tid]
}

// Finalize folds each thread's compensated partial (sum minus its
// residual correction) into the target serially.
func (c *Compensated[T]) Finalize() {
	for tid := range c.sums {
		c.mergeRange(tid, 0, len(c.out))
		c.release(tid)
	}
}

// FinalizeWith folds the partials with the team over disjoint segments.
func (c *Compensated[T]) FinalizeWith(t *par.Team) {
	t.Run(func(tid int) {
		from, to := par.StaticRange(0, len(c.out), tid, t.Size())
		for src := range c.sums {
			c.mergeRange(src, from, to)
		}
	})
	for tid := range c.sums {
		c.release(tid)
	}
}

func (c *Compensated[T]) mergeRange(src, from, to int) {
	sum, comp := c.sums[src], c.comps[src]
	if sum == nil {
		return
	}
	for i := from; i < to; i++ {
		c.out[i] += sum[i] - comp[i]
	}
}

func (c *Compensated[T]) release(tid int) {
	if c.sums[tid] == nil {
		return
	}
	var zero T
	c.mem.Free(2 * memtrack.SliceBytes(len(c.out), unsafe.Sizeof(zero)))
	c.sums[tid] = nil
	c.comps[tid] = nil
}

func (c *Compensated[T]) Bytes() int64     { return c.mem.Bytes() }
func (c *Compensated[T]) PeakBytes() int64 { return c.mem.Peak() }
func (c *Compensated[T]) Name() string     { return "compensated" }
func (c *Compensated[T]) Threads() int     { return c.threads }

package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"spray/internal/num"
	"spray/internal/par"
)

// bulkOp is one batched contribution: either a contiguous run starting at
// Base (Idx nil) or a gathered batch (Idx non-nil, Base ignored).
type bulkOp struct {
	Iter int
	Base int
	Idx  []int32
	Vals []float64
}

// genBulkOps builds a deterministic stream of mixed AddN/Scatter batches:
// iters iterations, each emitting one contiguous run and one gathered
// batch into [0, n). Values are small integers so addition is exact in
// any order.
func genBulkOps(seed int64, iters, n int) []bulkOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]bulkOp, 0, 2*iters)
	for it := 0; it < iters; it++ {
		// Contiguous run of 1..40 elements; long enough to span blocks.
		l := 1 + rng.Intn(40)
		base := rng.Intn(n - l + 1)
		vals := make([]float64, l)
		for j := range vals {
			vals[j] = float64(rng.Intn(9) - 4)
		}
		ops = append(ops, bulkOp{Iter: it, Base: base, Vals: vals})
		// Gathered batch of 1..16 indices, clustered half the time.
		k := 1 + rng.Intn(16)
		idx := make([]int32, k)
		sv := make([]float64, k)
		for j := range idx {
			if j%2 == 0 {
				idx[j] = int32(rng.Intn(n))
			} else {
				idx[j] = int32(rng.Intn(1 + n/16))
			}
			sv[j] = float64(rng.Intn(9) - 4)
		}
		ops = append(ops, bulkOp{Iter: it, Idx: idx, Vals: sv})
	}
	return ops
}

// applyElementwise pushes op through acc one Add at a time, in ascending
// batch order — the reference semantics of the bulk contract.
func applyElementwise(acc Private[float64], op bulkOp) {
	if op.Idx == nil {
		for j, v := range op.Vals {
			acc.Add(op.Base+j, v)
		}
		return
	}
	for j, i := range op.Idx {
		acc.Add(int(i), op.Vals[j])
	}
}

// applyBulk pushes op through the accessor's bulk entry points.
func applyBulk(acc BulkPrivate[float64], op bulkOp) {
	if op.Idx == nil {
		acc.AddN(op.Base, op.Vals)
		return
	}
	acc.Scatter(op.Idx, op.Vals)
}

// runBulkReduction drives r over the op stream with a real team, using
// the element-wise or the bulk path per the flag.
func runBulkReduction(t *testing.T, team *par.Team, r Reducer[float64], iters int, ops []bulkOp, bulk bool) {
	t.Helper()
	byIter := make([][]bulkOp, iters)
	for _, op := range ops {
		byIter[op.Iter] = append(byIter[op.Iter], op)
	}
	team.Run(func(tid int) {
		from, to := par.StaticRange(0, iters, tid, team.Size())
		acc := r.Private(tid)
		bacc := AsBulk(acc)
		for it := from; it < to; it++ {
			for _, op := range byIter[it] {
				if bulk {
					applyBulk(bacc, op)
				} else {
					applyElementwise(acc, op)
				}
			}
		}
		acc.Done()
	})
	r.Finalize()
}

// TestBulkMatchesElementwise proves the core bulk invariant for every
// strategy: a mixed AddN/Scatter stream produces exactly the result of
// the equivalent element-wise Add stream, at several team sizes. Integer
// values make float addition exact, so == is the right comparison even
// for strategies whose merge order differs across runs.
func TestBulkMatchesElementwise(t *testing.T) {
	const n, iters = 1200, 300
	ops := genBulkOps(42, iters, n)
	for name, mk := range strategies(n) {
		for _, threads := range []int{1, 3, 8} {
			outEach := make([]float64, n)
			outBulk := make([]float64, n)

			team := par.NewTeam(threads)
			runBulkReduction(t, team, mk(outEach, threads), iters, ops, false)
			team.Close()

			team = par.NewTeam(threads)
			runBulkReduction(t, team, mk(outBulk, threads), iters, ops, true)
			team.Close()

			if d := num.MaxAbsDiff(outEach, outBulk); d != 0 {
				t.Errorf("%s threads=%d: bulk diff %v", name, threads, d)
			}
		}
	}
}

// TestBulkBitwiseSingleThread proves the stronger bitwise form of the
// contract: on one thread (deterministic order for every strategy,
// including the compensated reducer's Kahan update sequence), bulk and
// element-wise application of rounding-sensitive values agree bit for
// bit.
func TestBulkBitwiseSingleThread(t *testing.T) {
	const n, iters = 600, 150
	rng := rand.New(rand.NewSource(9))
	ops := genBulkOps(9, iters, n)
	// Replace the integer values with rounding-hostile magnitudes so any
	// reassociation inside a bulk path would flip low-order bits.
	for oi := range ops {
		for j := range ops[oi].Vals {
			ops[oi].Vals[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		}
	}
	for name, mk := range strategies(n) {
		if strings.HasPrefix(name, "hot+") {
			// The tiered wrapper's documented relaxation: bulk and
			// element-wise drives feed the online promotion tracker
			// differently, so the hot/cold routing (and hence association
			// order) only matches under a fixed promotion schedule.
			// TestTieredBulkSeededBitwiseMatchesElementwise proves the
			// bitwise form with seeding and online rebalancing disabled.
			continue
		}
		outEach := make([]float64, n)
		outBulk := make([]float64, n)

		team := par.NewTeam(1)
		runBulkReduction(t, team, mk(outEach, 1), iters, ops, false)
		team.Close()

		team = par.NewTeam(1)
		runBulkReduction(t, team, mk(outBulk, 1), iters, ops, true)
		team.Close()

		for i := range outEach {
			if math.Float64bits(outEach[i]) != math.Float64bits(outBulk[i]) {
				t.Errorf("%s: out[%d] bulk=%x each=%x", name,
					i, math.Float64bits(outBulk[i]), math.Float64bits(outEach[i]))
				break
			}
		}
	}
}

// TestBulkShimFallback checks that a third-party accessor implementing
// only Add still gets working AddN/Scatter through AsBulk.
type addOnlyPrivate struct{ out []float64 }

func (p *addOnlyPrivate) Add(i int, v float64) { p.out[i] += v }
func (p *addOnlyPrivate) Done()                {}

func TestBulkShimFallback(t *testing.T) {
	out := make([]float64, 10)
	b := AsBulk[float64](&addOnlyPrivate{out: out})
	b.AddN(2, []float64{1, 2, 3})
	b.Scatter([]int32{0, 9, 2}, []float64{5, 7, 10})
	want := []float64{5, 0, 11, 2, 3, 0, 0, 0, 0, 7}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("shim result %v, want %v", out, want)
	}
	// A native strategy accessor must come back unwrapped.
	dn := NewDense(out, 1)
	acc := dn.Private(0)
	if _, ok := AsBulk(acc).(*densePrivate[float64]); !ok {
		t.Errorf("AsBulk wrapped a native bulk accessor: %T", AsBulk(acc))
	}
}

// TestFinalizeWithAllStrategies runs a team-finalized reduction for every
// strategy — block's hash-partitioned parallel merge included — against
// the sequential reference.
func TestFinalizeWithAllStrategies(t *testing.T) {
	const n, iters, threads = 900, 250, 4
	ops := genBulkOps(5, iters, n)
	want := make([]float64, n)
	for _, op := range ops {
		if op.Idx == nil {
			for j, v := range op.Vals {
				want[op.Base+j] += v
			}
		} else {
			for j, i := range op.Idx {
				want[int(i)] += op.Vals[j]
			}
		}
	}
	byIter := make([][]bulkOp, iters)
	for _, op := range ops {
		byIter[op.Iter] = append(byIter[op.Iter], op)
	}
	for name, mk := range strategies(n) {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		r := mk(out, threads)
		team.Run(func(tid int) {
			from, to := par.StaticRange(0, iters, tid, threads)
			acc := AsBulk(r.Private(tid))
			for it := from; it < to; it++ {
				for _, op := range byIter[it] {
					applyBulk(acc, op)
				}
			}
			acc.Done()
		})
		r.FinalizeWith(team)
		team.Close()
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("%s FinalizeWith: diff %v", name, d)
		}
	}
}

// TestValidateIndex32 pins the int32 guard shared by keeper, block, map,
// btree and ordered constructors: lengths above MaxInt32 must be rejected
// (they would silently truncate queue/key indices), MaxInt32 itself is
// fine.
func TestValidateIndex32(t *testing.T) {
	validateIndex32(0)
	validateIndex32(math.MaxInt32) // must not panic
	defer func() {
		if recover() == nil {
			t.Error("validateIndex32(MaxInt32+1) did not panic")
		}
	}()
	validateIndex32(math.MaxInt32 + 1)
}

// TestKeeperCapacityAccounting pins the capacity-based memory accounting:
// queue growth is charged when it happens (inside Add, before Done), Done
// reconciles to the exact capacity held, and capacity retained across
// regions stays charged so PeakBytes cannot under-report.
func TestKeeperCapacityAccounting(t *testing.T) {
	const n, threads = 400, 4
	out := make([]float64, n)
	k := NewKeeper(out, threads)

	acc := k.Private(0)
	for i := n / 4; i < n; i++ { // all foreign to owner 0
		acc.Add(i, 1)
	}
	if k.Bytes() == 0 {
		t.Fatal("queue growth not charged before Done")
	}
	acc.Done()
	// Done reconciles to exact capacity: 3 foreign queues, each holding
	// n/4 elements at 12 bytes each, possibly over-allocated by append.
	if min := int64(3 * (n / 4) * 12); k.Bytes() < min {
		t.Errorf("Bytes=%d after Done, want >= %d", k.Bytes(), min)
	}
	k.Finalize()
	retained := k.Bytes()
	if retained == 0 {
		t.Fatal("retained queue capacity not charged after Finalize")
	}

	// A second, smaller region must reuse the retained capacity without
	// growing the charge.
	acc = k.Private(0)
	for i := n / 4; i < n/2; i++ {
		acc.Add(i, 1)
	}
	acc.Done()
	if k.Bytes() != retained {
		t.Errorf("Bytes=%d after smaller second region, want unchanged %d", k.Bytes(), retained)
	}
	if k.PeakBytes() < retained {
		t.Errorf("PeakBytes=%d < retained %d", k.PeakBytes(), retained)
	}
	k.Finalize()
	want := seqApply(n, nil, 0)
	for i := n / 4; i < n; i++ {
		want[i]++
	}
	for i := n / 4; i < n/2; i++ {
		want[i]++
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("keeper result diff %v", d)
	}
}

// TestSteadyStateZeroAllocs pins the cross-region buffer pooling: after a
// warm-up region, a time loop driving the same reducer must perform zero
// allocations per region for the pooled strategies (dense retains its
// copies, block pools its fallback blocks, keeper keeps queue capacity).
func TestSteadyStateZeroAllocs(t *testing.T) {
	const n, threads = 2048, 4
	vals := make([]float64, 64)
	for name, mk := range map[string]func([]float64) Reducer[float64]{
		"dense":  func(o []float64) Reducer[float64] { return NewDense(o, threads) },
		"keeper": func(o []float64) Reducer[float64] { return NewKeeper(o, threads) },
		"block-private": func(o []float64) Reducer[float64] {
			return NewBlock(o, threads, 256, BlockPrivate)
		},
	} {
		out := make([]float64, n)
		r := mk(out)
		// Accessors are goroutine-affine, not goroutine-pinned: driving all
		// four sequentially from the test goroutine is legal and keeps
		// AllocsPerRun deterministic. Every thread sweeps the whole array,
		// so the keeper enqueues foreign updates and block privatizes
		// fallback copies.
		region := func() {
			for tid := 0; tid < threads; tid++ {
				acc := AsBulk(r.Private(tid))
				for base := 0; base < n; base += 128 {
					acc.AddN(base, vals)
				}
				acc.Done()
			}
			r.Finalize()
		}
		region() // warm up: first region allocates the pooled storage
		if allocs := testing.AllocsPerRun(5, region); allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state region, want 0", name, allocs)
		}
	}
}

// TestBlockSteadyStateBytesFlat drives a team through repeated regions
// and asserts the block reducer's memory high-water stops growing after
// the first region: pooled fallback buffers are reused, not reallocated.
func TestBlockSteadyStateBytesFlat(t *testing.T) {
	// BlockPrivate mode: fallback allocation is deterministic (every
	// thread privatizes every block it touches), so the pool from region
	// one covers all later regions exactly. In the claiming modes the racy
	// ownership distribution shifts between regions and the per-thread
	// pools take a few regions to saturate.
	const n, bs, threads, regions = 1 << 14, 512, 4, 6
	out := make([]float64, n)
	team := par.NewTeam(threads)
	defer team.Close()
	bl := NewBlock(out, threads, bs, BlockPrivate)
	var peakAfterFirst int64
	for reg := 0; reg < regions; reg++ {
		team.Run(func(tid int) {
			acc := AsBulk(bl.Private(tid))
			// Every thread touches every block so most threads fall back.
			for base := 0; base < n; base += bs {
				acc.AddN(base, out[0:8])
			}
			acc.Done()
		})
		bl.FinalizeWith(team)
		if reg == 0 {
			peakAfterFirst = bl.PeakBytes()
		}
	}
	if bl.PeakBytes() != peakAfterFirst {
		t.Errorf("block peak grew across regions: first=%d final=%d", peakAfterFirst, bl.PeakBytes())
	}
}

// TestDenseReleaseThenReuse checks a released dense reducer can run again
// (it re-allocates lazily) and that Release is idempotent.
func TestDenseReleaseThenReuse(t *testing.T) {
	out := make([]float64, 64)
	d := NewDense(out, 2)
	d.Private(0).Add(3, 2)
	d.Finalize()
	d.Release()
	d.Release()
	if d.Bytes() != 0 {
		t.Fatalf("Bytes=%d after Release", d.Bytes())
	}
	d.Private(1).Add(3, 3)
	d.Finalize()
	if out[3] != 5 {
		t.Errorf("out[3]=%v, want 5", out[3])
	}
}

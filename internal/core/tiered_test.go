package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/scatter"
	"spray/internal/telemetry"
)

// tieredCfgAggressive promotes on almost any repeat and rebalances
// constantly, so tests exercise promotion and eviction rather than the
// all-cold steady state.
var tieredCfgAggressive = TieredConfig{Slots: 8, RebalanceEvery: 32, PromoteMin: 1}

// TestTieredSeededHotSetAbsorbsHotLines seeds the cache with exactly the
// lines the region touches and checks the whole stream lands in the hot
// path: zero cold misses, every update a hot hit, and an exact result.
func TestTieredSeededHotSetAbsorbsHotLines(t *testing.T) {
	const n, threads, perThread = 1 << 12, 4, 5000
	out := make([]float64, n)
	tr := NewTiered(NewAtomic(out, threads), out, TieredConfig{Slots: 16, RebalanceEvery: -1})
	le := tr.LineElems()
	hotLines := []int{3, 17, 40, 41}
	tr.SeedHotLines(hotLines)
	rec := telemetry.NewRecorder(tr.Name(), threads)
	tr.Instrument(rec)

	want := make([]float64, n)
	team := par.NewTeam(threads)
	team.Run(func(tid int) {
		acc := tr.Private(tid)
		rng := rand.New(rand.NewSource(int64(tid)))
		for j := 0; j < perThread; j++ {
			ln := hotLines[rng.Intn(len(hotLines))]
			i := ln*le + rng.Intn(le)
			acc.Add(i, 1)
		}
		acc.Done()
	})
	tr.FinalizeWith(team)
	team.Close()
	for tid := 0; tid < threads; tid++ {
		rng := rand.New(rand.NewSource(int64(tid)))
		for j := 0; j < perThread; j++ {
			ln := hotLines[rng.Intn(len(hotLines))]
			want[ln*le+rng.Intn(le)]++
		}
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("seeded hot run diverged: max diff %v", d)
	}
	snap := rec.Snapshot()
	if cold := snap.Get(telemetry.TieredColdMisses); cold != 0 {
		t.Errorf("seeded all-hot stream took %d cold misses", cold)
	}
	if hits := snap.Get(telemetry.TieredHotHits); hits != uint64(threads*perThread) {
		t.Errorf("hot hits = %d, want %d", hits, threads*perThread)
	}
	if promos := snap.Get(telemetry.TieredPromotions); promos != uint64(threads*len(hotLines)) {
		t.Errorf("promotions = %d, want %d (one per seeded line per thread)", promos, threads*len(hotLines))
	}
}

// TestTieredOnlinePromotionAdoptsSkew runs a skewed element-wise stream
// with no seeding and checks the online path promotes (hot hits appear),
// evicts under slot pressure, and stays exact.
func TestTieredOnlinePromotionAdoptsSkew(t *testing.T) {
	const n, threads, iters = 1 << 13, 3, 200
	out := make([]float64, n)
	tr := NewTiered(NewAtomic(out, threads), out, tieredCfgAggressive)
	rec := telemetry.NewRecorder(tr.Name(), threads)
	tr.Instrument(rec)
	le := tr.LineElems()

	// 90% of updates hit 24 lines (3x the 8 cache slots, forcing slot
	// competition and evictions), the rest are uniform.
	ups := genUpdates(21, iters, n, 4)
	for j := range ups {
		if j%10 != 0 {
			ups[j].Idx = ((j * 7) % 24) * le
		}
	}
	want := seqApply(n, ups, 0)
	team := par.NewTeam(threads)
	for region := 0; region < 3; region++ {
		runReduction(t, team, tr, iters, ups)
	}
	team.Close()
	for i := range want {
		want[i] *= 3
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("online-promotion run diverged: max diff %v", d)
	}
	snap := rec.Snapshot()
	if snap.Get(telemetry.TieredPromotions) == 0 {
		t.Error("skewed stream produced no online promotions")
	}
	if snap.Get(telemetry.TieredHotHits) == 0 {
		t.Error("skewed stream produced no hot hits after promotion")
	}
	if snap.Get(telemetry.TieredEvictions) == 0 {
		t.Error("24 hot lines over 8 slots produced no evictions")
	}
}

// TestTieredChunkBoundaryPromotion drives the MidRegionDrainer hook the
// way RunReduction does and checks promotions happen at chunk
// boundaries even when the cold-miss trigger would not have fired.
func TestTieredChunkBoundaryPromotion(t *testing.T) {
	const n, threads, iters = 1 << 12, 2, 400
	out := make([]float64, n)
	// RebalanceEvery too large for the cold-count trigger: promotions can
	// only come from DrainMid.
	tr := NewTiered(NewAtomic(out, threads), out, TieredConfig{Slots: 8, RebalanceEvery: 1 << 30, PromoteMin: 1})
	rec := telemetry.NewRecorder(tr.Name(), threads)
	tr.Instrument(rec)

	want := make([]float64, n)
	hotIdx := 5 * tr.LineElems()
	tr.EnableMidDrain(true)
	team := par.NewTeam(threads)
	c := par.NewChunker(par.StaticChunk(16), 0, iters, threads)
	c.SetChunkDone(tr.DrainMid)
	team.Run(func(tid int) {
		acc := tr.Private(tid)
		c.For(tid, func(from, to int) {
			for it := from; it < to; it++ {
				acc.Add(hotIdx, 1)
				acc.Add((it*97)%n, 1)
			}
		})
		acc.Done()
	})
	tr.FinalizeWith(team)
	team.Close()
	for it := 0; it < iters; it++ {
		want[hotIdx]++
		want[(it*97)%n]++
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("chunk-boundary run diverged: max diff %v", d)
	}
	if rec.Snapshot().Get(telemetry.TieredPromotions) == 0 {
		t.Error("no promotions despite chunk-boundary rebalance hook")
	}
}

// TestTieredBulkSeededBitwiseMatchesElementwise is the Kahan ordering
// contract under a fixed promotion schedule: with online rebalancing
// disabled and a seeded hot set, the AddN/Scatter paths over a
// compensated inner must be bitwise identical to the element-wise path
// on arbitrary (non-integer) float data.
func TestTieredBulkSeededBitwiseMatchesElementwise(t *testing.T) {
	const n, threads = 1 << 10, 3
	rng := rand.New(rand.NewSource(99))
	seeds := []int{1, 7, 8, 30}

	mk := func(out []float64) *Tiered[float64] {
		tr := NewTiered(NewCompensated(out, threads), out, TieredConfig{Slots: 8, RebalanceEvery: -1})
		tr.SeedHotLines(seeds)
		return tr
	}
	// One deterministic batch stream per thread: mixed runs and scatters
	// with awkward values that expose any reassociation.
	type batch struct {
		base int
		idx  []int32
		vals []float64
	}
	streams := make([][]batch, threads)
	for tid := range streams {
		for b := 0; b < 40; b++ {
			m := 1 + rng.Intn(64)
			vals := make([]float64, m)
			for j := range vals {
				vals[j] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20)
			}
			if b%2 == 0 {
				streams[tid] = append(streams[tid], batch{base: rng.Intn(n - m), vals: vals})
			} else {
				idx := make([]int32, m)
				for j := range idx {
					if rng.Intn(3) == 0 { // hot line
						idx[j] = int32(seeds[rng.Intn(len(seeds))]*8 + rng.Intn(8))
					} else {
						idx[j] = int32(rng.Intn(n))
					}
				}
				streams[tid] = append(streams[tid], batch{idx: idx, vals: vals})
			}
		}
	}

	run := func(bulk bool) []float64 {
		out := make([]float64, n)
		tr := mk(out)
		team := par.NewTeam(threads)
		team.Run(func(tid int) {
			acc := AsBulk(tr.Private(tid))
			for _, b := range streams[tid] {
				switch {
				case !bulk && b.idx == nil:
					for j, v := range b.vals {
						acc.Add(b.base+j, v)
					}
				case !bulk:
					for j, i := range b.idx {
						acc.Add(int(i), b.vals[j])
					}
				case b.idx == nil:
					acc.AddN(b.base, b.vals)
				default:
					acc.Scatter(b.idx, b.vals)
				}
			}
			acc.Done()
		})
		tr.FinalizeWith(team)
		team.Close()
		return out
	}

	each, bulk := run(false), run(true)
	for i := range each {
		if math.Float64bits(each[i]) != math.Float64bits(bulk[i]) {
			t.Fatalf("out[%d]: element-wise %x, bulk %x — bulk path reassociated under a fixed promotion schedule",
				i, math.Float64bits(each[i]), math.Float64bits(bulk[i]))
		}
	}
}

// TestTieredPropertyRandomSchedules is the fuzz-style property test:
// random streams, random cache geometry, random promotion pressure —
// the result must stay exactly the sequential sum (integer-valued data)
// across whatever promotion/eviction schedule falls out.
func TestTieredPropertyRandomSchedules(t *testing.T) {
	f := func(seed int64, nRaw, itersRaw uint16, threadsRaw, slotsRaw, rebRaw uint8) bool {
		n := int(nRaw)%2000 + 64
		iters := int(itersRaw)%200 + 1
		threads := int(threadsRaw)%5 + 1
		slots := 1 << (int(slotsRaw) % 6) // 1..32
		reb := int(rebRaw)%200 + 8
		ups := genUpdates(seed, iters, n, 3)
		want := seqApply(n, ups, 0)
		out := make([]float64, n)
		tr := NewTiered(NewAtomic(out, threads), out,
			TieredConfig{Slots: slots, RebalanceEvery: reb, PromoteMin: 1})
		team := par.NewTeam(threads)
		runReduction(t, team, tr, iters, ups)
		team.Close()
		if num.MaxAbsDiff(out, want) != 0 {
			t.Logf("tiered diverged for n=%d iters=%d threads=%d slots=%d reb=%d",
				n, iters, threads, slots, reb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTieredUntouchedElementsUnperturbed checks the touched-bitmask
// contract: elements of a hot line the region never writes keep their
// exact bit pattern (including -0.0), because merge and eviction flush
// only touched slots.
func TestTieredUntouchedElementsUnperturbed(t *testing.T) {
	const n = 256
	out := make([]float64, n)
	negZero := math.Copysign(0, -1)
	for i := range out {
		out[i] = negZero
	}
	tr := NewTiered(NewAtomic(out, 1), out, TieredConfig{Slots: 4, RebalanceEvery: -1})
	le := tr.LineElems()
	tr.SeedHotLines([]int{0, 1})
	acc := tr.Private(0)
	acc.Add(0, 1)      // line 0, element 0 touched
	acc.Add(le+2, 2.5) // line 1, element 2 touched
	acc.Done()
	tr.Finalize()
	for i := range out {
		switch i {
		case 0:
			if out[i] != 1 {
				t.Errorf("out[0] = %v, want 1", out[i])
			}
		case le + 2:
			if out[i] != 2.5 {
				t.Errorf("out[%d] = %v, want 2.5", i, out[i])
			}
		default:
			if math.Float64bits(out[i]) != math.Float64bits(negZero) {
				t.Errorf("untouched out[%d] perturbed: %x", i, math.Float64bits(out[i]))
			}
		}
	}
}

// TestTieredEvictionFlushesPartial forces an eviction through the seeded
// install path while a partial is cached and checks the partial reaches
// the output through the inner strategy.
func TestTieredEvictionFlushesPartial(t *testing.T) {
	const n = 1 << 10
	out := make([]float64, n)
	tr := NewTiered(NewAtomic(out, 1), out, TieredConfig{Slots: 4, RebalanceEvery: 24, PromoteMin: 1})
	rec := telemetry.NewRecorder(tr.Name(), 1)
	tr.Instrument(rec)
	le := tr.LineElems()
	tr.SeedHotLines([]int{0}) // slot 0
	acc := tr.Private(0)
	acc.Add(0, 7) // cached partial on line 0
	// Hammer line 4 (same slot: 4 % 4 == 0) until the online path
	// promotes it, evicting line 0's partial mid-region.
	for j := 0; j < 4096; j++ {
		acc.Add(4*le, 1)
	}
	acc.Done()
	tr.Finalize()
	if out[0] != 7 {
		t.Errorf("evicted partial lost: out[0] = %v, want 7", out[0])
	}
	if out[4*le] != 4096 {
		t.Errorf("out[%d] = %v, want 4096", 4*le, out[4*le])
	}
	if rec.Snapshot().Get(telemetry.TieredEvictions) == 0 {
		t.Error("no eviction recorded despite slot displacement")
	}
}

// TestTieredUnderBinnedWrapper checks the binned+hot+atomic nesting: the
// write-combining engine's bin flushes route through the tiered
// FlushBin, and the result stays exact.
func TestTieredUnderBinnedWrapper(t *testing.T) {
	const n, threads, iters = 1 << 13, 3, 80
	rng := rand.New(rand.NewSource(17))
	out := make([]float64, n)
	want := make([]float64, n)
	tr := NewTiered(NewAtomic(out, threads), out, tieredCfgAggressive)
	b := NewBinned[float64](tr, out, scatter.Config{})
	rec := telemetry.NewRecorder(b.Name(), threads)
	b.Instrument(rec)

	batches := make([][]int32, iters)
	bvals := make([][]float64, iters)
	for it := range batches {
		m := 128 + rng.Intn(256)
		idx := make([]int32, m)
		vals := make([]float64, m)
		for j := range idx {
			if j%3 != 0 { // duplicate-heavy hot traffic
				idx[j] = int32(rng.Intn(16) * tr.LineElems())
			} else {
				idx[j] = int32(rng.Intn(n))
			}
			vals[j] = float64(rng.Intn(9) - 4)
			want[idx[j]] += vals[j]
		}
		batches[it], bvals[it] = idx, vals
	}
	team := par.NewTeam(threads)
	team.Run(func(tid int) {
		acc := AsBulk(b.Private(tid))
		from, to := par.StaticRange(0, iters, tid, threads)
		for it := from; it < to; it++ {
			acc.Scatter(batches[it], bvals[it])
		}
		acc.Done()
	})
	b.FinalizeWith(team)
	team.Close()
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("binned+hot run diverged: max diff %v", d)
	}
	if rec.Snapshot().Get(telemetry.BinFlushes) == 0 {
		t.Error("binned wrapper flushed no bins")
	}
}

// TestTieredConcurrentPromotionRace is the race-detector target (runs
// under -race via make race-telemetry): all threads promote, evict and
// merge concurrently with a telemetry recorder and the team-parallel
// finalize.
func TestTieredConcurrentPromotionRace(t *testing.T) {
	const n, threads, iters = 1 << 12, 4, 300
	for rep := 0; rep < 3; rep++ {
		out := make([]float64, n)
		tr := NewTiered(NewAtomic(out, threads), out, tieredCfgAggressive)
		rec := telemetry.NewRecorder(tr.Name(), threads)
		tr.Instrument(rec)
		ups := genUpdates(int64(rep), iters, n, 3)
		want := seqApply(n, ups, 0)
		team := par.NewTeam(threads)
		tr.EnableMidDrain(true)
		byIter := make([][]update, iters)
		for _, u := range ups {
			byIter[u.Iter] = append(byIter[u.Iter], u)
		}
		c := par.NewChunker(par.Dynamic(4), 0, iters, threads)
		c.SetChunkDone(tr.DrainMid)
		team.Run(func(tid int) {
			acc := tr.Private(tid)
			c.For(tid, func(from, to int) {
				for it := from; it < to; it++ {
					for _, u := range byIter[it] {
						acc.Add(u.Idx, u.Val)
					}
				}
			})
			acc.Done()
		})
		tr.FinalizeWith(team)
		team.Close()
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("rep %d: concurrent tiered run diverged: max diff %v", rep, d)
		}
	}
}

// tieredOp is one fuzz-derived bulk operation; idx carries the target
// indices and vals the contributions (Add ops have length 1, AddN ops
// target base..base+len, Scatter ops are index/value pairs).
type tieredOp struct {
	kind byte // 0 = Add, 1 = AddN, 2 = Scatter
	base int
	idx  []int32
	vals []float64
}

// parseTieredOps turns a fuzzer byte string into a mixed Add/AddN/Scatter
// stream over [0, n). wild selects awkward non-integer values (for the
// fixed-schedule bitwise leg); otherwise values are small integers, for
// which any promotion/eviction schedule must reproduce the scalar sum
// exactly.
func parseTieredOps(raw []byte, n int, wild bool) []tieredOp {
	var ops []tieredOp
	val := func(p int) float64 {
		if wild {
			return math.Ldexp(float64(int(raw[p%len(raw)])-128), p%40-20)
		}
		return float64(int(raw[p%len(raw)])%9 - 4)
	}
	for p := 0; p < len(raw); {
		kind := raw[p] % 3
		switch kind {
		case 0:
			ops = append(ops, tieredOp{kind: 0,
				idx:  []int32{int32(int(raw[p]) * 131 % n)},
				vals: []float64{val(p + 1)}})
			p += 2
		case 1:
			m := int(raw[p])%6 + 1
			base := int(raw[p]) * 31 % (n - m)
			vals := make([]float64, m)
			for j := range vals {
				vals[j] = val(p + 1 + j)
			}
			ops = append(ops, tieredOp{kind: 1, base: base, vals: vals})
			p += 1 + m
		default:
			m := int(raw[p])%8 + 1
			idx := make([]int32, m)
			vals := make([]float64, m)
			for j := range idx {
				idx[j] = int32(int(raw[(p+j)%len(raw)]) * 67 % n)
				vals[j] = val(p + 1 + j)
			}
			ops = append(ops, tieredOp{kind: 2, idx: idx, vals: vals})
			p += 1 + m
		}
	}
	return ops
}

// scalarApplyOps is the scalar reference: the ops in order, element by
// element in batch order — the chain every tiered configuration is
// compared against.
func scalarApplyOps(n int, ops []tieredOp) []float64 {
	out := make([]float64, n)
	for _, op := range ops {
		switch op.kind {
		case 1:
			for j, v := range op.vals {
				out[op.base+j] += v
			}
		default:
			for j, i := range op.idx {
				out[int(i)] += op.vals[j]
			}
		}
	}
	return out
}

func applyTieredOps(acc BulkPrivate[float64], ops []tieredOp) {
	for _, op := range ops {
		switch op.kind {
		case 0:
			acc.Add(int(op.idx[0]), op.vals[0])
		case 1:
			acc.AddN(op.base, op.vals)
		default:
			acc.Scatter(op.idx, op.vals)
		}
	}
}

// FuzzTieredEquivalence cross-checks hot+atomic and hot+compensated
// against the scalar reference on fuzzer-invented mixed streams, two
// ways. Random-schedule leg: integer-valued data, hair-trigger
// promotion/eviction churn across two threads — the result must be
// bitwise the scalar sum no matter what schedule falls out (integer
// addition is order-exact). Fixed-schedule leg: arbitrary awkward float
// values with the hot set seeded and online rebalancing disabled — a
// single thread's Add/AddN/Scatter stream must be bitwise the scalar
// chain, because every per-index accumulation chain survives the
// temperature routing intact.
func FuzzTieredEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 200, 200, 9, 9, 9, 9, 0, 255})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 64, 65, 66})
	f.Add([]byte{0, 128, 255, 1, 129, 2, 130, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		const n = 512
		cfg := TieredConfig{Slots: 4, RebalanceEvery: 16, PromoteMin: 1}

		// Random-schedule leg: integer values, two threads, constant churn.
		ops := parseTieredOps(raw, n, false)
		want := scalarApplyOps(n, ops)
		for name, mk := range map[string]func(o []float64) Reducer[float64]{
			"atomic":      func(o []float64) Reducer[float64] { return NewAtomic(o, 2) },
			"compensated": func(o []float64) Reducer[float64] { return NewCompensated(o, 2) },
		} {
			out := make([]float64, n)
			tr := NewTiered(mk(out), out, cfg)
			team := par.NewTeam(2)
			team.Run(func(tid int) {
				acc := AsBulk(tr.Private(tid))
				from, to := par.StaticRange(0, len(ops), tid, 2)
				applyTieredOps(acc, ops[from:to])
				acc.Done()
			})
			tr.FinalizeWith(team)
			team.Close()
			for i := range out {
				if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
					t.Fatalf("hot+%s random schedule: out[%d] = %v, want %v", name, i, out[i], want[i])
				}
			}
		}

		// Fixed-schedule leg: wild values, seeded hot set, online disabled.
		wildOps := parseTieredOps(raw, n, true)
		wildWant := scalarApplyOps(n, wildOps)
		out := make([]float64, n)
		tr := NewTiered(NewAtomic(out, 1), out, TieredConfig{Slots: 8, RebalanceEvery: -1})
		le := tr.LineElems()
		tr.SeedHotLines([]int{0, 3, 7, n/le - 1})
		acc := AsBulk(tr.Private(0))
		applyTieredOps(acc, wildOps)
		acc.Done()
		tr.Finalize()
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(wildWant[i]) {
				t.Fatalf("hot+atomic fixed schedule: out[%d] bits %x, want %x",
					i, math.Float64bits(out[i]), math.Float64bits(wildWant[i]))
			}
		}
	})
}

// TestTieredMemoryAccounted checks Bytes covers the tracker and the
// per-thread caches, and that the footprint is array-size-independent.
func TestTieredMemoryAccounted(t *testing.T) {
	const threads = 2
	small := make([]float64, 1<<10)
	big := make([]float64, 1<<18)
	trS := NewTiered(NewAtomic(small, threads), small, TieredConfig{})
	trB := NewTiered(NewAtomic(big, threads), big, TieredConfig{})
	if trS.Bytes() == 0 {
		t.Error("tracker footprint not charged at construction")
	}
	for tid := 0; tid < threads; tid++ {
		trS.Private(tid)
		trB.Private(tid)
	}
	if trS.Bytes() == 0 || trB.Bytes() == 0 {
		t.Fatal("per-thread cache not charged")
	}
	if trS.Bytes() != trB.Bytes() {
		t.Errorf("tiered footprint depends on array size: %d vs %d bytes (must be hot-set-capacity bound)",
			trS.Bytes(), trB.Bytes())
	}
}

package core

import (
	"math"
	"time"
	"unsafe"

	"spray/internal/hotspot"
	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Tiered splits the index space by temperature: each thread owns a small
// direct-mapped replica cache of the cache lines it collides on most
// (accumulate-in-place, no synchronization, cache-line granularity), and
// every other update falls through to the inner strategy — atomics by
// default. It is the hot/cold middle ground the uniform strategies
// bracket from either side: dense replication pays O(n) per thread to
// make every line private, atomics pay CAS latency exactly on the few
// lines where threads actually collide; the tiered reducer privatizes
// only the contended hot set (a fixed, array-size-independent footprint)
// and lets the sparse cold tail keep the inner strategy's semantics.
//
// The hot set is fed two ways:
//
//   - Profile-guided: SeedHotLines installs a fixed promotion set (the
//     top-K lines of a previous region's hotspot.Profile) into every
//     thread's cache at the start of each region.
//   - Online: every thread records its cold misses into a private
//     count-min/top-K shard (the same machinery as internal/hotspot) and
//     promotes the top candidates at rebalance points — chunk boundaries
//     via the MidRegionDrainer hook, plus a cold-miss-count trigger so
//     single-chunk (Static) schedules still adapt mid-region.
//
// Correctness never depends on the cache contents: a promotion that
// displaces an incumbent line flushes the incumbent's accumulated
// partial through the inner strategy first (the eviction path), and
// Finalize merges the surviving partials into the output with a
// team-parallel, line-partitioned pass. Only elements actually touched
// by updates are flushed or merged (a per-slot bitmask tracks them), so
// untouched elements are never perturbed — not even by adding a zero.
//
// Like the binned wrapper, Tiered relaxes one letter of the BulkPrivate
// contract: a batch is routed by temperature, so cold elements of a
// Scatter batch reach the inner strategy slightly later than interleaved
// hot elements (staged in arrival order), and a line's hot partial is
// applied to the output as one merged contribution at eviction or
// finalize rather than update by update. Same-index updates of equal
// temperature keep their arrival order, sums stay exact for
// integer-valued data, and for a fixed promotion schedule (seeding with
// online rebalancing disabled) the bulk paths remain bitwise equivalent
// to the element-wise path.
type Tiered[T num.Float] struct {
	inner     Reducer[T]
	out       []T
	threads   int
	slots     int // per-thread direct-mapped cache slots (power of two)
	lineElems int // elements per cached line (power of two, <= 16)
	shift     uint
	emask     int    // lineElems - 1
	slotMask  uint32 // slots - 1
	numLines  int
	online    bool
	rebalance int // cold misses per thread between forced rebalances
	promote   uint64
	privs     []tieredPrivate[T]
	track     *hotspot.Profiler // online promotion signal (always on, internal)
	seed      []int32           // profile-guided promotion set (line numbers)
	drainer   MidRegionDrainer
	midDrain  bool
	mem       memtrack.Counter
	tel       *telemetry.Recorder
}

// TieredConfig tunes the replica cache; the zero value selects the
// defaults.
type TieredConfig struct {
	// Slots is the per-thread cache capacity in lines, rounded up to a
	// power of two (default 128 — 8 KiB of float32 payload per thread).
	Slots int
	// LineElems is the number of array elements per cached line, a power
	// of two at most 16 (the touched-bitmask width). Defaults to one
	// hardware cache line: 64/sizeof(T).
	LineElems int
	// RebalanceEvery is the number of cold misses a thread absorbs
	// before forcing an online rebalance outside chunk boundaries
	// (default 4096). Negative disables online promotion entirely —
	// the cache then holds exactly the seeded lines, which makes the
	// promotion schedule deterministic for tests.
	RebalanceEvery int
	// PromoteMin is the minimum sampled conflict weight before a line is
	// promotion-eligible (default 32) — keeps one-off misses out of the
	// cache.
	PromoteMin uint64
}

// Default tiered parameters; see TieredConfig.
const (
	DefaultTieredSlots    = 128
	defaultRebalanceEvery = 4096
	defaultPromoteMin     = 32
	// tieredColdSample decimates the element-wise cold path's recording
	// into the online tracker: one cold Add per tieredColdSample records,
	// on average, with full weight, keeping the expectation unbiased
	// (bulk paths record per batch instead, which is already cheap). The
	// gap between samples is drawn uniformly from [1, 2*tieredColdSample)
	// by a per-thread xorshift rather than counted deterministically: a
	// fixed every-Nth stride phase-locks against periodic update
	// patterns (e.g. a body alternating hot and uniform indices never
	// gets its hot index sampled when the stride is even), which starves
	// the tracker of exactly the lines promotion exists to find.
	tieredColdSample = 8
	// tieredTrackPeriod is the online tracker's own per-call decimation;
	// stacked with tieredColdSample the element-wise sketch work runs
	// 1-in-64.
	tieredTrackPeriod = 8
	// tieredColdBatch sizes the per-thread staging buffer that carries a
	// Scatter batch's cold remainder to the inner strategy.
	tieredColdBatch = 256
	// tieredMaxLineElems is the touched-bitmask width.
	tieredMaxLineElems = 16
)

type tieredPrivate[T num.Float] struct {
	parent *Tiered[T]
	inner  BulkPrivate[T]
	sink   BinFlusher[T] // inner's bin sink, for FlushBin forwarding

	// Geometry copied from the parent so the hot path dereferences one
	// pointer (the accessor) instead of two.
	shift     uint
	emask     int
	lineElems int
	slotMask  uint32

	tags  []int32  // per slot: cached line number, -1 empty
	masks []uint16 // per slot: bitmask of touched elements
	buf   []T      // slots x lineElems accumulation storage

	trk       *hotspot.Shard // own online tracker shard (always attached)
	coldTick  uint32         // cold Adds left until the next tracker sample
	coldRng   uint64         // xorshift state for randomized sample gaps
	coldSince int            // cold misses since the last rebalance
	rebalance int
	promote   uint64

	cand []hotspot.LineCount // rebalance scratch (tracker top-K)
	fidx []int32             // eviction-flush scratch, cap lineElems
	fval []T
	cidx []int32 // cold-remainder staging for Scatter/FlushBin
	cval []T
	// hotHits batches the hot-hit counter in a plain field and flushes to
	// the telemetry shard at Done: the hot path is a handful of ns, so
	// even a nil-gated shard call per element would be measurable there
	// (the <2% overhead budget). Mid-region monitors see hot hits at
	// region ends, not live — an accepted trade for a free hot path.
	hotHits int
	tel     *telemetry.Shard
	hot     *hotspot.Shard // exported profiler shard (nil-gated mirror)
	tid     int
	_       [64]byte // pad: adjacent privs must not share tag/mask lines
}

// NewTiered wraps inner, which must reduce into out, with per-thread
// hot-set replica caches. The inner reducer sees only the cold tail (and
// eviction flushes); it must reduce into the same out.
func NewTiered[T num.Float](inner Reducer[T], out []T, cfg TieredConfig) *Tiered[T] {
	validate(out, inner.Threads())
	validateIndex32(len(out))
	var zero T
	le := cfg.LineElems
	if le <= 0 {
		le = 64 / int(unsafe.Sizeof(zero))
	}
	if le > tieredMaxLineElems {
		le = tieredMaxLineElems
	}
	if le&(le-1) != 0 {
		panic("core: tiered LineElems must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < le {
		shift++
	}
	numLines := (len(out) + le - 1) >> shift
	if numLines < 1 {
		numLines = 1
	}
	slots := 1
	if cfg.Slots <= 0 {
		slots = DefaultTieredSlots
	} else {
		for slots < cfg.Slots {
			slots <<= 1
		}
	}
	// Never hold more slots than lines: round the line count up to a
	// power of two and cap there.
	capSlots := 1
	for capSlots < numLines {
		capSlots <<= 1
	}
	if slots > capSlots {
		slots = capSlots
	}
	reb := cfg.RebalanceEvery
	online := reb >= 0
	if reb == 0 {
		reb = defaultRebalanceEvery
	}
	if !online {
		reb = math.MaxInt
	}
	pm := cfg.PromoteMin
	if pm == 0 {
		pm = defaultPromoteMin
	}
	tr := &Tiered[T]{
		inner:     inner,
		out:       out,
		threads:   inner.Threads(),
		slots:     slots,
		lineElems: le,
		shift:     shift,
		emask:     le - 1,
		slotMask:  uint32(slots - 1),
		numLines:  numLines,
		online:    online,
		rebalance: reb,
		promote:   pm,
		privs:     make([]tieredPrivate[T], inner.Threads()),
	}
	tr.track = hotspot.New("hot+"+inner.Name(), len(out), tr.threads, hotspot.Options{
		LineElems:    le,
		SamplePeriod: tieredTrackPeriod,
	})
	// The tracker's shards are the strategy's working state, not opt-in
	// instrumentation; charge their footprint like any other reducer
	// storage.
	tr.mem.Alloc(int64(tr.threads) *
		int64((hotspot.DefaultSketchDepth*hotspot.DefaultSketchWidth+
			hotspot.DefaultTopK+hotspot.DefaultHeatBuckets)*8))
	tr.drainer, _ = inner.(MidRegionDrainer)
	return tr
}

// SeedHotLines installs a profile-guided promotion set: the given cache
// lines (hottest first, e.g. hotspot.Profile.PromotionSet) are promoted
// into every thread's replica cache at the start of each subsequent
// region, before any updates arrive. Out-of-range lines are dropped;
// lines that collide on a cache slot resolve hottest-first. Call between
// regions only. A nil or empty set clears the seeding.
func (tr *Tiered[T]) SeedHotLines(lines []int) {
	tr.seed = tr.seed[:0]
	for _, ln := range lines {
		if ln >= 0 && ln < tr.numLines {
			tr.seed = append(tr.seed, int32(ln))
		}
	}
}

// LineElems reports the cache-line granularity of the hot set in array
// elements — the unit SeedHotLines line numbers are expressed in.
func (tr *Tiered[T]) LineElems() int { return tr.lineElems }

// Slots reports the per-thread replica-cache capacity in lines.
func (tr *Tiered[T]) Slots() int { return tr.slots }

// Private returns the tiered accessor for tid. The replica cache and its
// scratch buffers persist across regions (capacity-retention rule); the
// inner accessor and telemetry shard refresh, and the profile-guided
// seed set, when present, is (re-)installed.
func (tr *Tiered[T]) Private(tid int) Private[T] {
	p := &tr.privs[tid]
	ip := AsBulk(tr.inner.Private(tid))
	p.inner = ip
	p.sink, _ = ip.(BinFlusher[T])
	p.tel = tr.tel.Shard(tid)
	p.hot = p.tel.Hot()
	if p.tags == nil {
		var zero T
		p.parent = tr
		p.tid = tid
		p.shift = tr.shift
		p.emask = tr.emask
		p.lineElems = tr.lineElems
		p.slotMask = tr.slotMask
		p.rebalance = tr.rebalance
		p.promote = tr.promote
		p.tags = make([]int32, tr.slots)
		for s := range p.tags {
			p.tags[s] = -1
		}
		p.masks = make([]uint16, tr.slots)
		p.buf = make([]T, tr.slots*tr.lineElems)
		p.cand = make([]hotspot.LineCount, hotspot.DefaultTopK)
		// Non-zero per-thread seed; threads de-correlate so their sample
		// points don't line up even on identical streams.
		p.coldRng = uint64(tid)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
		p.coldTick = p.nextSampleGap()
		p.fidx = make([]int32, tr.lineElems)
		p.fval = make([]T, tr.lineElems)
		p.cidx = make([]int32, tieredColdBatch)
		p.cval = make([]T, tieredColdBatch)
		tr.mem.Alloc(int64(tr.slots)*(4+2) +
			memtrack.SliceBytes(len(p.buf), unsafe.Sizeof(zero)) +
			memtrack.SliceBytes(len(p.fval)+len(p.cval), unsafe.Sizeof(zero)) +
			int64(len(p.fidx)+len(p.cidx))*4 +
			int64(len(p.cand))*16)
		p.trk = tr.track.Shard(tid)
	}
	// Profile-guided seeding: install coldest-first so a slot collision
	// inside the seed set resolves in favor of the hotter (earlier)
	// line. At region start the cache carries no partials (Finalize
	// merged and cleared them), so installs are tag writes, not flushes.
	for k := len(tr.seed) - 1; k >= 0; k-- {
		p.install(tr.seed[k])
	}
	return p
}

// install promotes line ln into its cache slot, flushing a displaced
// incumbent's partial through the inner strategy. No heat comparison —
// callers decide the policy.
func (p *tieredPrivate[T]) install(ln int32) {
	s := uint32(ln) & p.slotMask
	if p.tags[s] == ln {
		return
	}
	if p.tags[s] >= 0 {
		p.evict(s)
	}
	p.tags[s] = ln
	p.tel.Inc(telemetry.TieredPromotions)
}

// evict clears slot s, flushing its accumulated partial (touched
// elements only) through the inner strategy so no contribution is lost.
func (p *tieredPrivate[T]) evict(s uint32) {
	m := p.masks[s]
	if m == 0 {
		p.tags[s] = -1
		return
	}
	base := int(p.tags[s]) << p.shift
	b := int(s) * p.lineElems
	k := 0
	for off := 0; m != 0; off++ {
		if m&1 != 0 {
			p.fidx[k] = int32(base + off)
			p.fval[k] = p.buf[b+off]
			p.buf[b+off] = 0
			k++
		}
		m >>= 1
	}
	p.masks[s] = 0
	p.tags[s] = -1
	p.tel.Inc(telemetry.TieredEvictions)
	if p.tel.Sample(telemetry.EvictFlush) {
		start := time.Now()
		p.inner.Scatter(p.fidx[:k], p.fval[:k])
		p.tel.Observe(telemetry.EvictFlush, time.Since(start))
		return
	}
	p.inner.Scatter(p.fidx[:k], p.fval[:k])
}

// Add routes one update by temperature: a hot line accumulates in place
// (a tag compare, an add and a bitmask or — no synchronization), a cold
// one falls through to the inner strategy.
func (p *tieredPrivate[T]) Add(i int, v T) {
	ln := int32(uint32(i) >> p.shift)
	s := uint32(ln) & p.slotMask
	if p.tags[s] == ln {
		p.hotHits++
		off := i & p.emask
		p.buf[int(s)*p.lineElems+off] += v
		p.masks[s] |= 1 << uint(off)
		return
	}
	p.coldAdd(i, v)
}

// coldAdd is the fall-through path, kept out of Add so the hot path
// inlines.
func (p *tieredPrivate[T]) coldAdd(i int, v T) {
	p.tel.Inc(telemetry.TieredColdMisses)
	p.inner.Add(i, v)
	p.coldSince++
	if p.coldTick > 0 {
		p.coldTick--
		return
	}
	p.coldTick = p.nextSampleGap()
	p.trk.RecordW(hotspot.TieredCold, i, tieredColdSample)
	p.hot.RecordW(hotspot.TieredCold, i, tieredColdSample)
	if p.coldSince >= p.rebalance {
		p.rebalanceNow()
	}
}

// nextSampleGap draws the number of cold Adds to skip before the next
// tracker sample: uniform on [0, 2*tieredColdSample-1), so the
// inter-sample interval is uniform on [1, 2*tieredColdSample) with mean
// tieredColdSample — the documented sampling rate, free of phase lock
// with periodic bodies (see the tieredColdSample comment).
func (p *tieredPrivate[T]) nextSampleGap() uint32 {
	p.coldRng ^= p.coldRng << 13
	p.coldRng ^= p.coldRng >> 7
	p.coldRng ^= p.coldRng << 17
	return uint32(p.coldRng % (2*tieredColdSample - 1))
}

// AddN splits a contiguous run at line granularity: hot lines accumulate
// through the shared addInto kernel, maximal cold sub-runs forward to
// the inner strategy in one AddN each.
func (p *tieredPrivate[T]) AddN(base int, vals []T) {
	for len(vals) > 0 {
		ln := int32(uint32(base) >> p.shift)
		s := uint32(ln) & p.slotMask
		n := p.lineElems - (base & p.emask)
		if n > len(vals) {
			n = len(vals)
		}
		if p.tags[s] == ln {
			off := base & p.emask
			b := int(s)*p.lineElems + off
			addInto(p.buf[b:b+n], vals[:n])
			p.masks[s] |= uint16((uint32(1)<<uint(n) - 1) << uint(off))
			p.hotHits += n
			base += n
			vals = vals[n:]
			continue
		}
		// Coalesce the cold run across consecutive cold lines so the
		// inner strategy sees one bulk call, not one per line.
		m := n
		for m < len(vals) {
			ln2 := int32(uint32(base+m) >> p.shift)
			if p.tags[uint32(ln2)&p.slotMask] == ln2 {
				break
			}
			r := p.lineElems
			if m+r > len(vals) {
				r = len(vals) - m
			}
			m += r
		}
		p.coldRun(base, vals[:m])
		base += m
		vals = vals[m:]
	}
}

func (p *tieredPrivate[T]) coldRun(base int, vals []T) {
	p.tel.Add(telemetry.TieredColdMisses, len(vals))
	p.inner.AddN(base, vals)
	p.coldSince += len(vals)
	p.trk.RecordRun(hotspot.TieredCold, base, len(vals))
	p.hot.RecordRun(hotspot.TieredCold, base, len(vals))
	if p.coldSince >= p.rebalance {
		p.rebalanceNow()
	}
}

// Scatter routes each element by temperature: hot elements accumulate in
// place immediately, cold elements are staged in arrival order and
// flushed to the inner strategy in batches.
func (p *tieredPrivate[T]) Scatter(idx []int32, vals []T) {
	hot, nc := 0, 0
	for j, i := range idx {
		ln := int32(uint32(i) >> p.shift)
		s := uint32(ln) & p.slotMask
		if p.tags[s] == ln {
			off := int(i) & p.emask
			p.buf[int(s)*p.lineElems+off] += vals[j]
			p.masks[s] |= 1 << uint(off)
			hot++
			continue
		}
		p.cidx[nc] = i
		p.cval[nc] = vals[j]
		nc++
		if nc == len(p.cidx) {
			p.flushCold(p.cidx, p.cval, nil)
			nc = 0
		}
	}
	if nc > 0 {
		p.flushCold(p.cidx[:nc], p.cval[:nc], nil)
	}
	p.hotHits += hot
}

// flushCold hands a staged cold batch to the inner strategy — through
// the given bin sink when the batch came from a write-combining bin
// flush, else through Scatter — and feeds the online tracker.
func (p *tieredPrivate[T]) flushCold(idx []int32, vals []T, bin func(idx []int32, vals []T)) {
	p.tel.Add(telemetry.TieredColdMisses, len(idx))
	if bin != nil {
		bin(idx, vals)
	} else {
		p.inner.Scatter(idx, vals)
	}
	p.coldSince += len(idx)
	p.trk.RecordBatch(hotspot.TieredCold, idx)
	p.hot.RecordBatch(hotspot.TieredCold, idx)
	if p.coldSince >= p.rebalance {
		p.rebalanceNow()
	}
}

// FlushBin keeps the write-combining fast path alive under a binned
// wrapper: hot elements of the drained bin accumulate in place, the cold
// remainder (still unique, in-block, in first-arrival order) forwards to
// the inner strategy's own bin sink when it has one.
func (p *tieredPrivate[T]) FlushBin(base, end int, idx []int32, vals []T) {
	hot, nc := 0, 0
	for j, i := range idx {
		ln := int32(uint32(i) >> p.shift)
		s := uint32(ln) & p.slotMask
		if p.tags[s] == ln {
			off := int(i) & p.emask
			p.buf[int(s)*p.lineElems+off] += vals[j]
			p.masks[s] |= 1 << uint(off)
			hot++
			continue
		}
		p.cidx[nc] = i
		p.cval[nc] = vals[j]
		nc++
		if nc == len(p.cidx) {
			p.dispatchBin(base, end, p.cidx, p.cval)
			nc = 0
		}
	}
	if nc > 0 {
		p.dispatchBin(base, end, p.cidx[:nc], p.cval[:nc])
	}
	p.hotHits += hot
}

func (p *tieredPrivate[T]) dispatchBin(base, end int, idx []int32, vals []T) {
	if p.sink != nil {
		p.flushCold(idx, vals, func(idx []int32, vals []T) {
			p.sink.FlushBin(base, end, idx, vals)
		})
		return
	}
	p.flushCold(idx, vals, nil)
}

// rebalanceNow promotes the online tracker's current top candidates:
// a candidate line above the promotion floor displaces an empty slot
// outright and a colder incumbent only with 2x hysteresis (the tracker's
// count-min estimate of the incumbent's heat), so borderline lines do
// not thrash. Displaced partials flush through the inner strategy.
func (p *tieredPrivate[T]) rebalanceNow() {
	p.coldSince = 0
	k := p.trk.TopCandidates(p.cand)
	for _, c := range p.cand[:k] {
		if c.Count < p.promote {
			break // sorted hottest-first
		}
		ln := int32(c.Line)
		s := uint32(ln) & p.slotMask
		cur := p.tags[s]
		if cur == ln {
			continue
		}
		if cur >= 0 {
			if c.Count < 2*p.trk.Estimate(int(cur)) {
				continue
			}
			p.evict(s)
		}
		p.tags[s] = ln
		p.tel.Inc(telemetry.TieredPromotions)
	}
}

// Done flushes the batched hot-hit count to the telemetry shard and
// forwards to the inner accessor. Cache partials stay put — the region
// contract makes them visible at Finalize, and keeping them warm across
// regions is the point of the cache.
func (p *tieredPrivate[T]) Done() {
	if p.hotHits > 0 {
		p.tel.Add(telemetry.TieredHotHits, p.hotHits)
		p.hotHits = 0
	}
	p.inner.Done()
}

// EnableMidDrain arms chunk-boundary rebalancing and forwards to the
// inner reducer's drain machinery when it has one.
func (tr *Tiered[T]) EnableMidDrain(on bool) {
	tr.midDrain = on
	if tr.drainer != nil {
		tr.drainer.EnableMidDrain(on)
	}
}

// DrainMid runs tid's online rebalance at a chunk boundary (the natural,
// cheap promotion point) and then forwards to the inner drainer. Must
// run on tid's goroutine, like every accessor method.
func (tr *Tiered[T]) DrainMid(tid int) {
	if !tr.midDrain {
		return
	}
	if tr.online {
		if p := &tr.privs[tid]; p.tags != nil && p.coldSince >= tieredColdSample {
			p.rebalanceNow()
		}
	}
	if tr.drainer != nil {
		tr.drainer.DrainMid(tid)
	}
}

// mergeRange folds every thread's cached partials for lines in
// [from, to) into the output and clears them. Threads are visited in
// ascending order, so the per-line combine order is deterministic
// regardless of how the line range is partitioned.
func (tr *Tiered[T]) mergeRange(from, to int) {
	for t := range tr.privs {
		p := &tr.privs[t]
		if p.tags == nil {
			continue
		}
		for s, ln := range p.tags {
			if int(ln) < from || int(ln) >= to || p.masks[s] == 0 {
				continue
			}
			lo := int(ln) << tr.shift
			hi := lo + tr.lineElems
			if hi > len(tr.out) {
				hi = len(tr.out)
			}
			b := s * tr.lineElems
			addMaskedLine(tr.out[lo:hi], p.buf[b:b+tr.lineElems], p.masks[s])
			clear(p.buf[b : b+tr.lineElems])
			p.masks[s] = 0
		}
	}
}

// Finalize merges every thread's cached partials into the output
// serially, then finalizes the inner strategy. Tags survive (the cache
// stays warm for the next region); partials do not.
func (tr *Tiered[T]) Finalize() {
	tr.mergeRange(0, tr.numLines)
	tr.inner.Finalize()
}

// FinalizeWith merges the replica caches with the team — the line space
// is statically partitioned, each member folds all threads' partials for
// its lines (same shape as the dense/compensated merges) — and then runs
// the inner strategy's parallel finalize.
func (tr *Tiered[T]) FinalizeWith(t *par.Team) {
	t.Run(func(tid int) {
		from, to := par.StaticRange(0, tr.numLines, tid, t.Size())
		tr.mergeRange(from, to)
	})
	tr.inner.FinalizeWith(t)
}

// Instrument attaches (nil: detaches) the recorder to the wrapper and
// the inner reducer, so the region report shows the temperature split
// (tiered-hot-hits, tiered-cold-misses, promotions, evictions, eviction
// flush latency) next to the inner strategy's own counters. The online
// promotion tracker is unaffected — it is strategy state, not
// instrumentation.
func (tr *Tiered[T]) Instrument(rec *telemetry.Recorder) {
	tr.tel = rec
	if in, ok := tr.inner.(Instrumentable); ok {
		in.Instrument(rec)
	}
}

// BlockSize forwards the inner strategy's block geometry (0 when it has
// none) so an enclosing binned wrapper aligns its bins with the inner
// blocks, exactly as it would without the tiered layer in between.
func (tr *Tiered[T]) BlockSize() int {
	if bs, ok := tr.inner.(interface{ BlockSize() int }); ok {
		return bs.BlockSize()
	}
	return 0
}

// Bytes reports the inner strategy's memory plus the replica caches,
// their scratch buffers and the online tracker shards.
func (tr *Tiered[T]) Bytes() int64     { return tr.inner.Bytes() + tr.mem.Bytes() }
func (tr *Tiered[T]) PeakBytes() int64 { return tr.inner.PeakBytes() + tr.mem.Peak() }
func (tr *Tiered[T]) Name() string     { return "hot+" + tr.inner.Name() }
func (tr *Tiered[T]) Threads() int     { return tr.threads }

// Inner exposes the wrapped reducer (observability for tests, the
// experiment harness and the root-level seeding helpers).
func (tr *Tiered[T]) Inner() Reducer[T] { return tr.inner }

package core

import (
	"sync"
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Builtin models the reduction strategy the OpenMP standard prescribes for
// the reduction clause, as implemented by the compilers the paper tested:
// each thread privatizes the whole array and the private instances are
// combined into the original "in an implementation-defined order" when the
// region ends — in practice serialized, each thread folding its copy in
// under a lock as it finishes. It is the paper's primary baseline.
//
// Two deliberate differences from Dense: the combine happens in Done (so
// it is serialized across threads exactly like a compiler-emitted critical
// combine), and the private copy is dropped immediately after combining.
// One unavoidable difference from the C++ compilers: the copies live on
// the heap, since Go goroutine stacks are not user-sized (the paper notes
// the stack placement is itself a quality-of-implementation problem that
// forces users to raise OMP_STACKSIZE).
type Builtin[T num.Float] struct {
	out     []T
	privs   []builtinPrivate[T]
	threads int
	mu      sync.Mutex
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder.
func (d *Builtin[T]) Instrument(rec *telemetry.Recorder) { d.tel = rec }

// NewBuiltin wraps out for a team of the given size.
func NewBuiltin[T num.Float](out []T, threads int) *Builtin[T] {
	validate(out, threads)
	return &Builtin[T]{out: out, privs: make([]builtinPrivate[T], threads), threads: threads}
}

type builtinPrivate[T num.Float] struct {
	parent *Builtin[T]
	buf    []T
	tel    *telemetry.Shard
}

func (p *builtinPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	p.buf[i] += v
}

// AddN accumulates a contiguous run into the private copy.
func (p *builtinPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	dst := p.buf[base : base+len(vals)]
	for j, v := range vals {
		dst[j] += v
	}
}

// Scatter accumulates a gathered batch into the private copy.
func (p *builtinPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	buf := p.buf
	for j, i := range idx {
		buf[i] += vals[j]
	}
}

// Done folds the private copy into the original under the combine lock and
// releases it, mirroring the end-of-region combination step.
func (p *builtinPrivate[T]) Done() {
	d := p.parent
	d.mu.Lock()
	for i, v := range p.buf {
		d.out[i] += v
	}
	d.mu.Unlock()
	var zero T
	d.mem.Free(memtrack.SliceBytes(len(p.buf), unsafe.Sizeof(zero)))
	p.buf = nil
}

// Private allocates and zero-initializes the thread's full copy.
func (d *Builtin[T]) Private(tid int) Private[T] {
	var zero T
	buf := make([]T, len(d.out))
	d.mem.Alloc(memtrack.SliceBytes(len(d.out), unsafe.Sizeof(zero)))
	d.privs[tid] = builtinPrivate[T]{parent: d, buf: buf, tel: d.tel.Shard(tid)}
	return &d.privs[tid]
}

// Finalize is a no-op: every private copy was already combined in Done.
func (d *Builtin[T]) Finalize() {}

// FinalizeWith is a no-op like Finalize; the combine is serialized in
// Done by design (that is the baseline being modeled).
func (d *Builtin[T]) FinalizeWith(*par.Team) {}

func (d *Builtin[T]) Bytes() int64     { return d.mem.Bytes() }
func (d *Builtin[T]) PeakBytes() int64 { return d.mem.Peak() }
func (d *Builtin[T]) Name() string     { return "omp-builtin" }
func (d *Builtin[T]) Threads() int     { return d.threads }

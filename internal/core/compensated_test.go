package core

import (
	"math"
	"testing"

	"spray/internal/num"
	"spray/internal/par"
)

func TestCompensatedMatchesSequentialOnExactValues(t *testing.T) {
	const n, iters = 600, 250
	ups := genUpdates(31, iters, n, 3)
	want := seqApply(n, ups, 1)
	for _, threads := range []int{1, 4} {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		for i := range out {
			out[i] = 1
		}
		r := NewCompensated(out, threads)
		runReduction(t, team, r, iters, ups)
		team.Close()
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("threads=%d: diff %v", threads, d)
		}
	}
}

// TestCompensatedBeatsDenseAccuracy reduces many float32 values that an
// uncompensated partial sum cannot absorb exactly; the Kahan strategy
// must land strictly closer to the float64 reference.
func TestCompensatedBeatsDenseAccuracy(t *testing.T) {
	const n = 4
	const updates = 1 << 20
	const tiny = float32(1e-7)
	run := func(mk func(out []float32) Reducer[float32]) []float32 {
		out := make([]float32, n)
		r := mk(out)
		acc := r.Private(0)
		acc.Add(0, 1) // large head value the tiny tail fights against
		for i := 0; i < updates; i++ {
			acc.Add(0, tiny)
		}
		acc.Done()
		r.Finalize()
		return out
	}
	want := 1 + float64(updates)*float64(tiny)
	dense := run(func(o []float32) Reducer[float32] { return NewDense(o, 1) })
	comp := run(func(o []float32) Reducer[float32] { return NewCompensated(o, 1) })
	denseErr := math.Abs(float64(dense[0]) - want)
	compErr := math.Abs(float64(comp[0]) - want)
	if compErr >= denseErr {
		t.Errorf("compensated error %v not below dense %v (want %v)", compErr, denseErr, want)
	}
	if compErr > 1e-6*want {
		t.Errorf("compensated error %v too large", compErr)
	}
}

func TestCompensatedParallelFinalize(t *testing.T) {
	const n, iters, threads = 500, 200, 4
	ups := genUpdates(32, iters, n, 2)
	want := seqApply(n, ups, 0)
	team := par.NewTeam(threads)
	defer team.Close()
	out := make([]float64, n)
	r := NewCompensated(out, threads)
	byIter := make([][]update, iters)
	for _, u := range ups {
		byIter[u.Iter] = append(byIter[u.Iter], u)
	}
	team.Run(func(tid int) {
		from, to := par.StaticRange(0, iters, tid, threads)
		acc := r.Private(tid)
		for it := from; it < to; it++ {
			for _, u := range byIter[it] {
				acc.Add(u.Idx, u.Val)
			}
		}
		acc.Done()
	})
	r.FinalizeWith(team)
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("FinalizeWith diff %v", d)
	}
}

func TestCompensatedMemoryTwiceDense(t *testing.T) {
	const n, threads = 1 << 10, 3
	out := make([]float64, n)
	c := NewCompensated(out, threads)
	for tid := 0; tid < threads; tid++ {
		c.Private(tid)
	}
	want := int64(2 * threads * n * 8)
	if c.Bytes() != want {
		t.Errorf("bytes=%d, want %d", c.Bytes(), want)
	}
	c.Finalize()
	if c.Bytes() != 0 {
		t.Errorf("bytes after finalize=%d", c.Bytes())
	}
	if c.Name() != "compensated" {
		t.Errorf("name=%q", c.Name())
	}
}

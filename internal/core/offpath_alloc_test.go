package core

import (
	"testing"

	"spray/internal/scatter"
)

// TestOffPathSamplingGateNoAlloc guards the telemetry-off hot paths at
// the allocator level: with no recorder attached, the sampling and
// histogram gates added for latency instrumentation must not cause a
// single allocation per operation — the off path stays a nil check.
// (The off path's time budget is guarded separately by
// TestTelemetryOffOverhead.)
func TestOffPathSamplingGateNoAlloc(t *testing.T) {
	const n = 1 << 12
	vals := make([]float64, 64)
	for j := range vals {
		vals[j] = 1
	}
	idx := make([]int32, len(vals))
	for j := range idx {
		idx[j] = int32(j)
	}

	t.Run("atomic", func(t *testing.T) {
		a := NewAtomic(make([]float64, n), 1)
		acc := AsBulk(a.Private(0))
		assertNoAllocs(t, func() {
			acc.Add(7, 1)
			acc.AddN(128, vals)
			acc.Scatter(idx, vals)
		})
	})

	t.Run("block-cas", func(t *testing.T) {
		bl := NewBlock(make([]float64, n), 1, 256, BlockCAS)
		acc := AsBulk(bl.Private(0))
		assertNoAllocs(t, func() {
			acc.Add(7, 1)
			acc.AddN(512, vals) // resolves its block in the warm-up run
			acc.Scatter(idx, vals)
		})
	})

	t.Run("binned-atomic", func(t *testing.T) {
		// The write-combining wrapper: staging, bin-full emits, drains and
		// the flush dispatch must all run on pooled storage after warm-up.
		out := make([]float64, n)
		br := NewBinned(NewAtomic(out, 1), out,
			scatter.Config{BlockSize: 256, BinCap: 32, MaxLive: 4})
		acc := AsBulk(br.Private(0))
		spread := make([]int32, len(vals))
		for j := range spread {
			spread[j] = int32((j * 997) % n) // touches > MaxLive blocks
		}
		assertNoAllocs(t, func() {
			acc.Scatter(idx, vals)
			acc.Scatter(spread, vals)
			acc.Done()
		})
	})

	t.Run("tiered-atomic", func(t *testing.T) {
		// The hot-set cache: hot hits, cold misses (tracker recording),
		// online rebalancing, promotion and eviction flushes must all run
		// on the fixed per-thread storage — the aggressive config forces
		// promotion/eviction churn inside the measured closure.
		out := make([]float64, n)
		tr := NewTiered(NewAtomic(out, 1), out,
			TieredConfig{Slots: 8, RebalanceEvery: 64, PromoteMin: 1})
		tr.SeedHotLines([]int{0, 1})
		acc := AsBulk(tr.Private(0))
		le := tr.LineElems()
		spread := make([]int32, len(vals))
		for j := range spread {
			spread[j] = int32((j * 997) % n) // mostly cold traffic
		}
		assertNoAllocs(t, func() {
			acc.Add(3, 1)          // hot hit (line 0)
			acc.Add(le+1, 1)       // hot hit (line 1)
			acc.AddN(64*le, vals)  // cold run -> tracker + rebalance trigger
			acc.Scatter(idx, vals) // mixed batch
			acc.Scatter(spread, vals)
		})
	})

	t.Run("keeper-mailbox", func(t *testing.T) {
		// Publication threshold crossed every run, parcels recycled by the
		// owner's mid-region drain: the whole mailbox loop must be
		// allocation-free once the first parcels exist.
		k := NewKeeper(make([]float64, 4*keeperMailboxFlush), 2)
		k.EnableMidDrain(true)
		acc := AsBulk(k.Private(0))
		_ = k.Private(1)
		m := keeperMailboxFlush + 64
		foreign := make([]int32, m)
		fvals := make([]float64, m)
		for j := range foreign {
			foreign[j] = int32(2*keeperMailboxFlush + j%keeperMailboxFlush)
			fvals[j] = 1
		}
		assertNoAllocs(t, func() {
			acc.Scatter(foreign, fvals) // crosses the threshold -> publish
			k.DrainMid(1)               // apply + return the parcel
		})
	})

	t.Run("keeper-foreign", func(t *testing.T) {
		// Two-thread keeper driven from member 0 with updates into member
		// 1's range: the foreign enqueue path (where the dwell stamp gate
		// lives) runs every iteration, and Finalize drains the queues so
		// their capacity — grown once in the warm-up run — is reused.
		k := NewKeeper(make([]float64, n), 2)
		acc := AsBulk(k.Private(0))
		foreign := make([]int32, len(vals))
		for j := range foreign {
			foreign[j] = int32(n/2 + 128 + j)
		}
		assertNoAllocs(t, func() {
			acc.Add(n-5, 1)
			acc.AddN(n/2+512, vals)
			acc.Scatter(foreign, vals)
			k.Finalize()
		})
	})
}

func assertNoAllocs(t *testing.T, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("uninstrumented path allocates %.2f times per run, want 0", avg)
	}
}

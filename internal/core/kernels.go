package core

import "spray/internal/num"

// Bounds-check-free inner kernels shared by the strategies' hot
// accumulate paths (dense copy merge, block segment accumulate and
// fallback merge, keeper owned-segment accumulate, write-combined bin
// flush). Each kernel front-loads one explicit length (or shape) guard
// so the compiler's prove pass can discharge every check inside the
// loop — including the pinning re-slices, which an implicit prologue
// re-slice alone would not achieve (the re-slice itself emits
// IsSliceInBounds unless a dominating comparison proves it).
//
// `make bce-audit` builds the tree with -d=ssa/check_bce and fails if
// the compiler reports any bounds check in this file, so the property
// is enforced, not aspirational. Data-dependent gathers (out[idx[j]]
// over the whole array, slot-table lookups) are NOT routed through
// here: their per-element check is irreducible and they keep their
// local loops.

// addInto accumulates src into dst elementwise: dst[j] += src[j] for
// every j < len(dst). src may be longer than dst; it must not be
// shorter.
func addInto[T num.Float](dst, src []T) {
	if len(src) < len(dst) {
		panic("core: addInto source shorter than destination")
	}
	src = src[:len(dst)]
	for j := range dst {
		dst[j] += src[j]
	}
}

// addMaskedLine accumulates the touched elements of one replica-cache
// line into its destination window: dst[j] += src[j] for every j < len(dst)
// with bit j set in m. The tiered merge calls it once per (thread, hot
// slot); untouched elements are skipped rather than added, so a cached
// line never perturbs signed zeros or NaN payloads the region did not
// actually write. src may be longer than dst (the last line of the array
// can be partial); it must not be shorter.
func addMaskedLine[T num.Float](dst, src []T, m uint16) {
	if len(src) < len(dst) {
		panic("core: addMaskedLine source shorter than destination")
	}
	src = src[:len(dst)]
	for j := range dst {
		if m&(1<<uint(j)) != 0 {
			dst[j] += src[j]
		}
	}
}

// maskedScatterAdd applies a gathered batch whose destinations all lie
// in one power-of-two-sized, power-of-two-aligned window of the target
// array: view[int(i)&(len(view)-1)] += vals[j]. Because the window base
// is a multiple of len(view), masking the absolute index yields the
// in-window offset, and prove knows x&(len-1) is always in range — the
// one scatter shape where the per-element bounds check is reducible.
func maskedScatterAdd[T num.Float](view []T, idx []int32, vals []T) {
	if len(view) == 0 || len(view)&(len(view)-1) != 0 {
		panic("core: maskedScatterAdd window not a power of two")
	}
	if len(vals) < len(idx) {
		panic("core: maskedScatterAdd fewer values than indices")
	}
	mask := len(view) - 1
	vals = vals[:len(idx)]
	for j, i := range idx {
		view[int(i)&mask] += vals[j]
	}
}

// Package core implements the paper's primary contribution: the SPRAY
// reducer objects. Each reducer wraps a target array and lets a team of
// goroutines accumulate `out[i] += v` contributions concurrently while the
// strategy decides how safety is achieved — full privatization (dense),
// atomics, key-value accumulation (map / B-tree), lazily privatized blocks
// (block-private / block-lock / block-CAS), or static ownership with
// update-request queues (keeper).
//
// Lifecycle (mirroring OpenMP declare-reduction): the constructor is cheap
// and wraps (array, size); Private(tid) is the per-thread `init`; Add is
// the overloaded `+=`; Finalize is the `reduce` fix-up that makes every
// contribution visible in the original array and returns the reducer to a
// reusable state for the next parallel region.
//
// Beyond the element-wise contract, every strategy in this package also
// implements the bulk fast path (BulkPrivate): AddN applies a contiguous
// run of contributions and Scatter applies a gathered batch. The bulk
// entry points pay one dynamic dispatch per batch instead of one per
// element, and each strategy exploits its own structure inside the batch
// (block reducers resolve the block pointer once per run, the keeper
// partitions a batch by owner in one pass, dense strategies reduce to
// plain vectorizable loops).
package core

import (
	"fmt"
	"math"

	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Private is the per-thread accessor handed to the parallel region body.
// Implementations are not safe for use by more than the owning goroutine.
type Private[T num.Float] interface {
	// Add accumulates v into logical position i of the wrapped array.
	Add(i int, v T)
	// Done signals that the owning thread has finished its iterations
	// for the current region.
	Done()
}

// BulkPrivate extends Private with batch update entry points. Both
// methods are exactly equivalent to calling Add element by element in
// ascending batch order (j = 0, 1, ...), including floating-point
// summation order, but cost one dynamic dispatch per batch. All reducers
// in this package implement it; third-party reducers that only provide
// Add still work through AsBulk's element-wise fallback.
type BulkPrivate[T num.Float] interface {
	Private[T]
	// AddN accumulates a contiguous run: out[base+j] += vals[j].
	AddN(base int, vals []T)
	// Scatter accumulates a gathered batch: out[idx[j]] += vals[j].
	Scatter(idx []int32, vals []T)
}

// AsBulk returns p's bulk fast path: p itself when the strategy
// implements BulkPrivate, or an element-wise emulation otherwise. Resolve
// it once per chunk (outside the inner loop) — the type assertion is the
// devirtualization point.
func AsBulk[T num.Float](p Private[T]) BulkPrivate[T] {
	if bp, ok := p.(BulkPrivate[T]); ok {
		return bp
	}
	return bulkShim[T]{p}
}

// bulkShim is the generic element-wise fallback that keeps the bulk API
// non-breaking for third-party Private implementations.
type bulkShim[T num.Float] struct {
	Private[T]
}

func (s bulkShim[T]) AddN(base int, vals []T) {
	for j, v := range vals {
		s.Private.Add(base+j, v)
	}
}

func (s bulkShim[T]) Scatter(idx []int32, vals []T) {
	for j, i := range idx {
		s.Private.Add(int(i), vals[j])
	}
}

// BinFlusher is the optional write-combining sink on a Private accessor:
// FlushBin applies one drained bin from the scatter engine. The caller
// guarantees every index lies in the destination block [base, end), that
// indices are unique (duplicates were coalesced upstream), and that
// entries appear in first-arrival order. Implementations must be exactly
// equivalent to Add(int(idx[j]), vals[j]) for ascending j — the
// uniqueness guarantee is what lets a strategy claim a block or walk a
// warm cache region once for the whole bin without reordering sums.
// Accessors without FlushBin still work through the binned wrapper's
// Scatter fallback.
type BinFlusher[T num.Float] interface {
	FlushBin(base, end int, idx []int32, vals []T)
}

// MidRegionDrainer is implemented by reducers that can apply inbound
// cross-thread work cooperatively at chunk boundaries instead of
// deferring everything to Finalize (the keeper's mailbox drain, and the
// binned wrapper forwarding to an inner drainer). EnableMidDrain turns
// the mid-region publication machinery on or off between regions;
// DrainMid(tid) must be called on tid's own goroutine — the run harness
// wires it to the chunker's chunk-boundary hook. Both are safe no-ops
// when publication is disabled.
type MidRegionDrainer interface {
	EnableMidDrain(on bool)
	DrainMid(tid int)
}

// AddN applies a contiguous run through p, using its bulk fast path when
// available. For repeated calls prefer resolving AsBulk once.
func AddN[T num.Float](p Private[T], base int, vals []T) {
	AsBulk(p).AddN(base, vals)
}

// Scatter applies a gathered batch through p, using its bulk fast path
// when available. For repeated calls prefer resolving AsBulk once.
func Scatter[T num.Float](p Private[T], idx []int32, vals []T) {
	AsBulk(p).Scatter(idx, vals)
}

// Reducer is the strategy-independent contract every SPRAY reducer object
// fulfills. After Finalize (or FinalizeWith) returns, all contributions
// from all Privates are visible in the wrapped array.
type Reducer[T num.Float] interface {
	// Private returns the accessor for thread tid in [0, Threads()).
	// It must be called at most once per tid per region.
	Private(tid int) Private[T]
	// Finalize runs the fix-up combining step serially and resets the
	// reducer for reuse in a subsequent region.
	Finalize()
	// FinalizeWith runs the fix-up step using the team when the strategy
	// can parallelize it (dense, compensated, block, keeper), and falls
	// back to the serial Finalize otherwise.
	FinalizeWith(t *par.Team)
	// Bytes reports the strategy's current extra memory in bytes.
	Bytes() int64
	// PeakBytes reports the high-water mark of extra memory.
	PeakBytes() int64
	// Name identifies the strategy (e.g. "block-cas-1024").
	Name() string
	// Threads returns the team size the reducer was built for.
	Threads() int
}

// Instrumentable is implemented by every reducer in this package: it
// attaches a telemetry recorder whose per-thread shards the strategy's
// accessors bump from their hot paths (update counts, bulk runs, CAS
// retries, block claims/fallbacks, keeper queue traffic, entry counts).
//
// Attaching nil detaches the recorder and restores the uninstrumented
// fast path — accessors hold a per-thread shard pointer resolved in
// Private, so a detached reducer pays exactly one predictable nil-check
// branch per instrumented event. Instrument must not be called while a
// region is running.
type Instrumentable interface {
	Instrument(rec *telemetry.Recorder)
}

// validate panics on obviously bad constructor arguments; reducers are
// infrastructure and misuse should fail loudly.
func validate[T num.Float](out []T, threads int) {
	if threads < 1 {
		panic("core: reducer needs a positive thread count")
	}
	if out == nil {
		panic("core: reducer needs a non-nil target array")
	}
}

// validateIndex32 guards strategies that record update indices as int32
// (keeper queues, map/B-tree keys, ordered logs, the Scatter batch
// format): an array longer than MaxInt32 would silently truncate indices,
// so such arrays are rejected at construction.
func validateIndex32(n int) {
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("core: array length %d exceeds the strategy's int32 index range (max %d)", n, math.MaxInt32))
	}
}

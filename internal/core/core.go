// Package core implements the paper's primary contribution: the SPRAY
// reducer objects. Each reducer wraps a target array and lets a team of
// goroutines accumulate `out[i] += v` contributions concurrently while the
// strategy decides how safety is achieved — full privatization (dense),
// atomics, key-value accumulation (map / B-tree), lazily privatized blocks
// (block-private / block-lock / block-CAS), or static ownership with
// update-request queues (keeper).
//
// Lifecycle (mirroring OpenMP declare-reduction): the constructor is cheap
// and wraps (array, size); Private(tid) is the per-thread `init`; Add is
// the overloaded `+=`; Finalize is the `reduce` fix-up that makes every
// contribution visible in the original array and returns the reducer to a
// reusable state for the next parallel region.
package core

import (
	"spray/internal/num"
	"spray/internal/par"
)

// Private is the per-thread accessor handed to the parallel region body.
// Implementations are not safe for use by more than the owning goroutine.
type Private[T num.Float] interface {
	// Add accumulates v into logical position i of the wrapped array.
	Add(i int, v T)
	// Done signals that the owning thread has finished its iterations
	// for the current region.
	Done()
}

// Reducer is the strategy-independent contract every SPRAY reducer object
// fulfills. After Finalize returns, all contributions from all Privates
// are visible in the wrapped array.
type Reducer[T num.Float] interface {
	// Private returns the accessor for thread tid in [0, Threads()).
	// It must be called at most once per tid per region.
	Private(tid int) Private[T]
	// Finalize runs the fix-up combining step and resets the reducer
	// for reuse in a subsequent region.
	Finalize()
	// Bytes reports the strategy's current extra memory in bytes.
	Bytes() int64
	// PeakBytes reports the high-water mark of extra memory.
	PeakBytes() int64
	// Name identifies the strategy (e.g. "block-cas-1024").
	Name() string
	// Threads returns the team size the reducer was built for.
	Threads() int
}

// ParallelFinalizer is implemented by reducers whose fix-up step can use
// the team itself (the way OpenMP runtimes combine private copies with the
// team that executed the region). Drivers should prefer FinalizeWith when
// a team is at hand.
type ParallelFinalizer interface {
	FinalizeWith(t *par.Team)
}

// validate panics on obviously bad constructor arguments; reducers are
// infrastructure and misuse should fail loudly.
func validate[T num.Float](out []T, threads int) {
	if threads < 1 {
		panic("core: reducer needs a positive thread count")
	}
	if out == nil {
		panic("core: reducer needs a non-nil target array")
	}
}

package core

import (
	"testing"

	"spray/internal/num"
	"spray/internal/par"
)

// Extension strategies (ordered, adaptive) get the same correctness
// treatment as the paper's strategies plus tests of their distinguishing
// guarantees: bitwise determinism for Ordered, regime behavior for
// Adaptive.

func TestOrderedMatchesSequential(t *testing.T) {
	const n, iters = 700, 300
	ups := genUpdates(21, iters, n, 3)
	want := seqApply(n, ups, 0)
	for _, threads := range []int{1, 3, 6} {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		r := NewOrdered(out, threads)
		runReduction(t, team, r, iters, ups)
		team.Close()
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("threads=%d: diff %v", threads, d)
		}
	}
}

func TestOrderedBitwiseDeterministic(t *testing.T) {
	// With irrational-ish values the result depends on summation order;
	// Ordered must give the identical bit pattern on every run for a
	// fixed thread count, where racing strategies may not.
	const n, iters, threads, runs = 400, 500, 4, 6
	ups := genUpdates(22, iters, n, 3)
	for k := range ups {
		ups[k].Val = 0.1 * float64(k%97+1) // values with rounding sensitivity
	}
	var first []float64
	for run := 0; run < runs; run++ {
		team := par.NewTeam(threads)
		out := make([]float64, n)
		r := NewOrdered(out, threads)
		runReduction(t, team, r, iters, ups)
		team.Close()
		if first == nil {
			first = append([]float64(nil), out...)
			continue
		}
		for i := range out {
			if out[i] != first[i] {
				t.Fatalf("run %d: out[%d] = %x, first run %x", run, i, out[i], first[i])
			}
		}
	}
}

func TestOrderedMemoryProportionalToUpdates(t *testing.T) {
	const n = 1000
	out := make([]float64, n)
	r := NewOrdered(out, 1)
	acc := r.Private(0)
	const updates = 5000
	for i := 0; i < updates; i++ {
		acc.Add(i%n, 1)
	}
	acc.Done()
	want := int64(updates * (4 + 8))
	if r.Bytes() != want {
		t.Errorf("bytes=%d, want %d", r.Bytes(), want)
	}
	r.Finalize()
	if r.Bytes() != 0 {
		t.Errorf("bytes after finalize=%d", r.Bytes())
	}
	if out[0] != 5 {
		t.Errorf("out[0]=%v, want 5", out[0])
	}
}

func TestAdaptiveMatchesSequential(t *testing.T) {
	const n, iters = 900, 400
	ups := genUpdates(23, iters, n, 3)
	want := seqApply(n, ups, 1)
	for _, threads := range []int{1, 4, 7} {
		for _, bs := range []int{16, 256} {
			team := par.NewTeam(threads)
			out := make([]float64, n)
			for i := range out {
				out[i] = 1
			}
			r := NewAdaptive(out, threads, bs)
			runReduction(t, team, r, iters, ups)
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("threads=%d bs=%d: diff %v", threads, bs, d)
			}
		}
	}
}

func TestAdaptiveStaysAtomicForScatteredAccess(t *testing.T) {
	// One touch per block: no escalation, no block memory.
	const n, bs = 1 << 16, 1024
	out := make([]float64, n)
	a := NewAdaptive(out, 1, bs)
	acc := a.Private(0)
	for b := 0; b < n/bs; b++ {
		acc.Add(b*bs, 1)
	}
	acc.Done()
	if got := a.EscalatedBlocks(); got != 0 {
		t.Errorf("escalated %d blocks for one-touch access", got)
	}
	a.Finalize()
	tables := int64((n / bs) * (4 + 24))
	if a.PeakBytes() != tables {
		t.Errorf("peak=%d, want tables only %d", a.PeakBytes(), tables)
	}
}

func TestAdaptiveEscalatesHotBlocks(t *testing.T) {
	// Hammer a single block far past the threshold: exactly one
	// escalation, and the result is still exact.
	const n, bs = 1 << 14, 256
	out := make([]float64, n)
	a := NewAdaptive(out, 1, bs)
	acc := a.Private(0)
	const hits = 10 * bs
	for i := 0; i < hits; i++ {
		acc.Add(bs+i%bs, 1) // block 1 only
	}
	acc.Done()
	if got := a.EscalatedBlocks(); got != 1 {
		t.Errorf("escalated %d blocks, want 1", got)
	}
	a.Finalize()
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum != hits {
		t.Errorf("sum=%v, want %d", sum, hits)
	}
}

func TestAdaptiveReuseResetsRegime(t *testing.T) {
	const n, bs, threads = 2048, 64, 2
	out := make([]float64, n)
	team := par.NewTeam(threads)
	defer team.Close()
	a := NewAdaptive(out, threads, bs)
	for region := 0; region < 3; region++ {
		team.Run(func(tid int) {
			acc := a.Private(tid)
			for i := tid; i < n; i += threads {
				acc.Add(i, 1)
			}
			acc.Done()
		})
		a.Finalize()
	}
	for i, v := range out {
		if v != 3 {
			t.Fatalf("out[%d]=%v, want 3", i, v)
		}
	}
}

func TestAdaptiveRejectsBadBlockSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two adaptive block did not panic")
		}
	}()
	NewAdaptive(make([]float64, 16), 1, 100)
}

func TestExtensionNames(t *testing.T) {
	out := make([]float64, 8)
	if got := NewOrdered(out, 1).Name(); got != "ordered" {
		t.Errorf("ordered Name=%q", got)
	}
	if got := NewAdaptive(out, 1, 512).Name(); got != "auto-512" {
		t.Errorf("adaptive Name=%q", got)
	}
}

package core

import (
	"unsafe"

	"spray/internal/memtrack"
	"spray/internal/num"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// Ordered is a reproducibility-oriented reducer the paper lists as future
// work ("additional strategies could be developed with reproducibility in
// mind"): every thread logs its (index, value) updates in program order,
// and Finalize replays the logs in ascending thread id. Under a
// deterministic schedule (the default static schedule maps iterations to
// threads by a fixed rule) the summation order — and therefore the
// floating-point result — is bitwise identical across runs, regardless of
// timing. Changing the thread count or using a timing-dependent schedule
// (dynamic/guided) changes the canonical order and may change the last
// bits, exactly as rerunning an OpenMP program with a different
// OMP_NUM_THREADS would.
//
// The price is memory proportional to the total number of updates, making
// Ordered the most memory-hungry strategy for update-dense loops; it is a
// correctness tool, not a performance strategy.
type Ordered[T num.Float] struct {
	out     []T
	privs   []orderedPrivate[T]
	threads int
	mem     memtrack.Counter
	tel     *telemetry.Recorder
}

// Instrument attaches (nil: detaches) the telemetry recorder. The entries
// counter records each thread's log length at Done.
func (o *Ordered[T]) Instrument(rec *telemetry.Recorder) { o.tel = rec }

// NewOrdered wraps out for a team of the given size. Arrays longer than
// MaxInt32 are rejected: the update logs store int32 indices.
func NewOrdered[T num.Float](out []T, threads int) *Ordered[T] {
	validate(out, threads)
	validateIndex32(len(out))
	o := &Ordered[T]{out: out, threads: threads}
	o.privs = make([]orderedPrivate[T], threads)
	for t := range o.privs {
		o.privs[t].parent = o
	}
	return o
}

type orderedPrivate[T num.Float] struct {
	parent *Ordered[T]
	idx    []int32
	val    []T
	tel    *telemetry.Shard
}

// Add logs the update in thread-program order.
func (p *orderedPrivate[T]) Add(i int, v T) {
	p.tel.Inc(telemetry.Updates)
	p.idx = append(p.idx, int32(i))
	p.val = append(p.val, v)
}

// AddN logs a contiguous run; the value log is extended with one append.
func (p *orderedPrivate[T]) AddN(base int, vals []T) {
	p.tel.IncRun(telemetry.AddNRuns, len(vals))
	idx := p.idx
	for j := range vals {
		idx = append(idx, int32(base+j))
	}
	p.idx = idx
	p.val = append(p.val, vals...)
}

// Scatter logs a gathered batch with two whole-slice appends — the
// replay order is unchanged, so determinism is preserved.
func (p *orderedPrivate[T]) Scatter(idx []int32, vals []T) {
	p.tel.IncRun(telemetry.ScatterRuns, len(idx))
	p.idx = append(p.idx, idx...)
	p.val = append(p.val, vals...)
}

// Done charges the log to the memory counter.
func (p *orderedPrivate[T]) Done() {
	p.tel.Add(telemetry.Entries, len(p.idx))
	var zero T
	p.parent.mem.Alloc(int64(len(p.idx)) * int64(4+unsafe.Sizeof(zero)))
}

// Private returns the accessor for thread tid; logs retained from a
// previous region are reused with their capacity.
func (o *Ordered[T]) Private(tid int) Private[T] {
	p := &o.privs[tid]
	p.tel = o.tel.Shard(tid)
	p.idx = p.idx[:0]
	p.val = p.val[:0]
	return p
}

// FinalizeWith delegates to the serial Finalize: the canonical replay
// order is the whole point of the strategy and cannot be split.
func (o *Ordered[T]) FinalizeWith(*par.Team) { o.Finalize() }

// Finalize replays all logs in canonical (thread id, program) order.
func (o *Ordered[T]) Finalize() {
	for t := range o.privs {
		p := &o.privs[t]
		for j, i := range p.idx {
			o.out[i] += p.val[j]
		}
	}
	o.mem.Free(o.mem.Bytes())
}

func (o *Ordered[T]) Bytes() int64     { return o.mem.Bytes() }
func (o *Ordered[T]) PeakBytes() int64 { return o.mem.Peak() }
func (o *Ordered[T]) Name() string     { return "ordered" }
func (o *Ordered[T]) Threads() int     { return o.threads }

package core

import (
	"testing"
	"time"

	"spray/internal/num"
	"spray/internal/scatter"
)

// rawAtomicPrivate replicates atomicPrivate's uninstrumented method bodies
// with the telemetry nil-check gates deleted — the "pre-telemetry"
// baseline the overhead acceptance compares against. The bodies below must
// stay copies of the `p.tel == nil` branches in atomic.go.
type rawAtomicPrivate[T num.Float] struct{ out []T }

func (p *rawAtomicPrivate[T]) Add(i int, v T) { num.AtomicAdd(p.out, i, v) }

func (p *rawAtomicPrivate[T]) AddN(base int, vals []T) {
	dst := p.out[base : base+len(vals)]
	for j, v := range vals {
		num.AtomicAdd(dst, j, v)
	}
}

func (p *rawAtomicPrivate[T]) Scatter(idx []int32, vals []T) {
	out := p.out
	for j, i := range idx {
		num.AtomicAdd(out, int(i), vals[j])
	}
}

func (p *rawAtomicPrivate[T]) Done() {}

// driveOverheadBulk is the shared measurement body: tiled AddN plus a
// Scatter pass through the bulk interface, the per-thread shape of the
// BenchmarkBulk* workloads.
func driveOverheadBulk(acc BulkPrivate[float32], tile []float32, idx []int32, svals []float32, n, passes int) {
	for p := 0; p < passes; p++ {
		for base := 0; base+len(tile) <= n; base += len(tile) {
			acc.AddN(base, tile)
		}
		acc.Scatter(idx, svals)
	}
}

// TestTelemetryOffOverhead is the observability acceptance guard: with no
// recorder attached, an instrumented-but-off accessor must stay within 2%
// of a replica with the telemetry gates deleted. The atomic strategy makes
// the comparison measurable: both sides run the identical num.AtomicAdd
// per element over the *same* array (no allocator placement skew), so the
// only code difference is the per-batch nil-check gate, and the CAS cost
// per element dwarfs front-end effects that would drown a 2% budget on a
// plain add loop. The gate structure under test — one nil-check branch per
// accessor entry point — is the same in every strategy. Interleaved
// min-of-7 timing with retry attempts absorbs scheduler noise.
func TestTelemetryOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const n, tileLen, passes = 1 << 12, 1024, 20
	tile := make([]float32, tileLen)
	for i := range tile {
		tile[i] = 1
	}
	idx := make([]int32, 512)
	svals := make([]float32, 512)
	for i := range idx {
		idx[i] = int32((i * 97) % n)
		svals[i] = 1
	}

	out := make([]float32, n)
	r := NewAtomic(out, 1) // telemetry off: Instrument never called
	gated := AsBulk(r.Private(0))
	raw := AsBulk(Private[float32](&rawAtomicPrivate[float32]{out: out}))

	const maxRatio = 1.02
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		bestGated, bestRaw := time.Duration(1<<62-1), time.Duration(1<<62-1)
		driveOverheadBulk(gated, tile, idx, svals, n, 2) // warm caches and predictors
		driveOverheadBulk(raw, tile, idx, svals, n, 2)
		for rep := 0; rep < 7; rep++ {
			start := time.Now()
			driveOverheadBulk(gated, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestGated {
				bestGated = d
			}
			start = time.Now()
			driveOverheadBulk(raw, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestRaw {
				bestRaw = d
			}
		}
		ratio = float64(bestGated) / float64(bestRaw)
		t.Logf("attempt %d: gated %v raw %v ratio %.4f", attempt, bestGated, bestRaw, ratio)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("telemetry-off accessor is %.2f%% slower than the ungated replica (budget 2%%)",
		100*(ratio-1))
}

// rawTieredPrivate replicates the telemetry-off tiered accessor's hot
// path with the gates deleted: the same tag-compare, accumulate-in-place
// and touched-bitmask writes, minus the nil-checked shard calls. The
// bodies must stay copies of the hot branches in tiered.go; the cold
// branch forwards to the bare atomic replica (the overhead drive below
// seeds the whole array hot, so it never runs).
type rawTieredPrivate[T num.Float] struct {
	inner     rawAtomicPrivate[T]
	shift     uint
	emask     int
	lineElems int
	slotMask  uint32
	tags      []int32
	masks     []uint16
	buf       []T
}

func newRawTiered[T num.Float](out []T, slots, lineElems int) *rawTieredPrivate[T] {
	shift := uint(0)
	for 1<<shift < lineElems {
		shift++
	}
	p := &rawTieredPrivate[T]{
		inner:     rawAtomicPrivate[T]{out: out},
		shift:     shift,
		emask:     lineElems - 1,
		lineElems: lineElems,
		slotMask:  uint32(slots - 1),
		tags:      make([]int32, slots),
		masks:     make([]uint16, slots),
		buf:       make([]T, slots*lineElems),
	}
	for s := range p.tags {
		p.tags[s] = int32(s) // identity seeding: line s in slot s
	}
	return p
}

func (p *rawTieredPrivate[T]) Add(i int, v T) {
	ln := int32(uint32(i) >> p.shift)
	s := uint32(ln) & p.slotMask
	if p.tags[s] == ln {
		off := i & p.emask
		p.buf[int(s)*p.lineElems+off] += v
		p.masks[s] |= 1 << uint(off)
		return
	}
	p.inner.Add(i, v)
}

func (p *rawTieredPrivate[T]) AddN(base int, vals []T) {
	for len(vals) > 0 {
		ln := int32(uint32(base) >> p.shift)
		s := uint32(ln) & p.slotMask
		n := p.lineElems - (base & p.emask)
		if n > len(vals) {
			n = len(vals)
		}
		if p.tags[s] == ln {
			off := base & p.emask
			b := int(s)*p.lineElems + off
			addInto(p.buf[b:b+n], vals[:n])
			p.masks[s] |= uint16((uint32(1)<<uint(n) - 1) << uint(off))
		} else {
			p.inner.AddN(base, vals[:n])
		}
		base += n
		vals = vals[n:]
	}
}

func (p *rawTieredPrivate[T]) Scatter(idx []int32, vals []T) {
	for j, i := range idx {
		ln := int32(uint32(i) >> p.shift)
		s := uint32(ln) & p.slotMask
		if p.tags[s] == ln {
			off := int(i) & p.emask
			p.buf[int(s)*p.lineElems+off] += vals[j]
			p.masks[s] |= 1 << uint(off)
			continue
		}
		p.inner.Add(int(i), vals[j])
	}
}

func (p *rawTieredPrivate[T]) Done() {}

// TestTelemetryOffOverheadTiered extends the overhead acceptance to the
// hot-set cache: with no recorder attached, the tiered accessor's hot
// path (nil-check gates in Add, the AddN run loop and the Scatter hot
// loop) must stay within 2% of the ungated replica. The array is fully
// covered by the seeded hot set with online rebalancing disabled, so
// both sides execute pure cache hits over identically-shaped storage.
func TestTelemetryOffOverheadTiered(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const n, tileLen, passes = 1 << 12, 1024, 20
	tile := make([]float32, tileLen)
	for i := range tile {
		tile[i] = 1
	}
	idx := make([]int32, 512)
	svals := make([]float32, 512)
	for i := range idx {
		idx[i] = int32((i * 97) % n)
		svals[i] = 1
	}

	out := make([]float32, n)
	tr := NewTiered(NewAtomic(out, 1), out, TieredConfig{Slots: 256, RebalanceEvery: -1})
	le := tr.LineElems()
	all := make([]int, (n+le-1)/le)
	for ln := range all {
		all[ln] = ln
	}
	tr.SeedHotLines(all) // whole array hot: every drive op is a cache hit
	gated := AsBulk(tr.Private(0))
	raw := AsBulk(Private[float32](newRawTiered[float32](out, tr.Slots(), le)))

	const maxRatio = 1.02
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		bestGated, bestRaw := time.Duration(1<<62-1), time.Duration(1<<62-1)
		driveOverheadBulk(gated, tile, idx, svals, n, 2)
		driveOverheadBulk(raw, tile, idx, svals, n, 2)
		for rep := 0; rep < 7; rep++ {
			start := time.Now()
			driveOverheadBulk(gated, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestGated {
				bestGated = d
			}
			start = time.Now()
			driveOverheadBulk(raw, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestRaw {
				bestRaw = d
			}
		}
		ratio = float64(bestGated) / float64(bestRaw)
		t.Logf("attempt %d: gated %v raw %v ratio %.4f", attempt, bestGated, bestRaw, ratio)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("telemetry-off tiered accessor is %.2f%% slower than the ungated replica (budget 2%%)",
		100*(ratio-1))
}

// rawBinnedPrivate replicates the telemetry-off binned accessor with the
// gates deleted: the same write-combining engine, but the flush sink is
// the bare CAS loop (atomicPrivate's FlushBin nil branch) and Scatter and
// Done skip the shard calls. The bodies must stay copies of the
// `tel == nil` branches in binned.go and atomic.go.
type rawBinnedPrivate[T num.Float] struct {
	inner rawAtomicPrivate[T]
	eng   *scatter.Binner[T]
}

func newRawBinned[T num.Float](out []T, cfg scatter.Config) *rawBinnedPrivate[T] {
	p := &rawBinnedPrivate[T]{inner: rawAtomicPrivate[T]{out: out}}
	p.eng = scatter.New(func(base, end int, idx []int32, vals []T) {
		for j, i := range idx {
			num.AtomicAdd(out, int(i), vals[j])
		}
	}, len(out), cfg)
	return p
}

func (p *rawBinnedPrivate[T]) Add(i int, v T)          { p.inner.Add(i, v) }
func (p *rawBinnedPrivate[T]) AddN(base int, vals []T) { p.inner.AddN(base, vals) }
func (p *rawBinnedPrivate[T]) Scatter(idx []int32, vals []T) {
	p.eng.Scatter(idx, vals)
}
func (p *rawBinnedPrivate[T]) Done() {
	p.eng.Flush()
	p.eng.TakeCoalesced()
}

// driveOverheadBinned is driveOverheadBulk plus the per-region Done the
// binned accessor needs to flush its staged bins.
func driveOverheadBinned(acc BulkPrivate[float32], tile []float32, idx []int32, svals []float32, n, passes int) {
	driveOverheadBulk(acc, tile, idx, svals, n, passes)
	acc.Done()
}

// TestTelemetryOffOverheadBinned extends the overhead acceptance to the
// write-combining wrapper: with no recorder attached, the binned atomic
// accessor (nil-check gates in Scatter staging, the flush dispatch and
// Done) must stay within 2% of the ungated replica over the same engine
// geometry and the same output array.
func TestTelemetryOffOverheadBinned(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const n, tileLen, passes = 1 << 12, 1024, 20
	cfg := scatter.Config{BlockSize: 1024, BinCap: 256, MaxLive: 16}
	tile := make([]float32, tileLen)
	for i := range tile {
		tile[i] = 1
	}
	idx := make([]int32, 512)
	svals := make([]float32, 512)
	for i := range idx {
		idx[i] = int32((i * 97) % n)
		svals[i] = 1
	}

	out := make([]float32, n)
	br := NewBinned(NewAtomic(out, 1), out, cfg)
	gated := AsBulk(br.Private(0))
	raw := AsBulk(Private[float32](newRawBinned(out, cfg)))

	const maxRatio = 1.02
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		bestGated, bestRaw := time.Duration(1<<62-1), time.Duration(1<<62-1)
		driveOverheadBinned(gated, tile, idx, svals, n, 2)
		driveOverheadBinned(raw, tile, idx, svals, n, 2)
		for rep := 0; rep < 7; rep++ {
			start := time.Now()
			driveOverheadBinned(gated, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestGated {
				bestGated = d
			}
			start = time.Now()
			driveOverheadBinned(raw, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestRaw {
				bestRaw = d
			}
		}
		ratio = float64(bestGated) / float64(bestRaw)
		t.Logf("attempt %d: gated %v raw %v ratio %.4f", attempt, bestGated, bestRaw, ratio)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("telemetry-off binned accessor is %.2f%% slower than the ungated replica (budget 2%%)",
		100*(ratio-1))
}

package core

import (
	"testing"
	"time"

	"spray/internal/hotspot"
	"spray/internal/telemetry"
)

// driveOverheadKeeper exercises the keeper paths the profiler touches —
// owned bulk updates, one boundary-straddling run (a foreign RecordRun),
// and a scatter with foreign singles — then finalizes so queue capacity
// is reused across passes. The caller partitions n into ownership halves
// of n/2; tiles stay inside thread 0's own range except the last, which
// crosses the boundary.
func driveOverheadKeeper(acc BulkPrivate[float64], fin func(), tile []float64, idx []int32, svals []float64, n, passes int) {
	own := n / 2
	for p := 0; p < passes; p++ {
		for base := 0; base+len(tile) <= own; base += len(tile) {
			acc.AddN(base, tile)
		}
		acc.AddN(own-len(tile)/4, tile) // straddles the ownership boundary
		acc.Scatter(idx, svals)
		fin()
	}
}

// TestHotspotOffOverhead is the contention profiler's timing acceptance
// guard, measured differentially on the very same keeper accessor: one
// phase runs with the profiler detached (the disabled path — a nil-shard
// check per recording site), the other with it attached at the default
// 1-in-64 sampling. Enabled must stay within 2% of disabled; since the
// disabled path is a strict prefix of the enabled one, this bounds both
// sides of the "always-cheap" claim without depending on a hand-kept
// replica of the keeper's hot path (the telemetry replica idiom of
// TestTelemetryOffOverhead doesn't transfer: the keeper was never held
// to a replica budget, so a replica gap would measure pre-existing
// telemetry costs, not the profiler).
//
// The workload has the conv-backprop shape the keeper is built for:
// bulk updates inside the thread's own range plus a boundary-crossing
// run and scattered foreign singles (~3% foreign share). The sampled
// sketch cost is proportional to foreign volume / SamplePeriod, so the
// 2% budget is a statement about realistic ownership-mostly workloads —
// an adversarial 50%-foreign stream pays proportionally more, which is
// the profiler working as designed, not overhead to hide. Interleaved
// min-of-7 timing with retry attempts absorbs scheduler noise.
func TestHotspotOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const n, threads, tileLen, passes = 1 << 12, 2, 256, 20
	const own = n / threads // thread 0 owns [0, own)
	tile := make([]float64, tileLen)
	for i := range tile {
		tile[i] = 1
	}
	// Scattered batch: runs inside the own range with every 32nd entry a
	// foreign single near the ownership boundary.
	idx := make([]int32, 512)
	svals := make([]float64, 512)
	for i := range idx {
		if i%32 == 31 {
			idx[i] = int32(own + i%64)
		} else {
			idx[i] = int32((i * 8) % own)
		}
		svals[i] = 1
	}

	out := make([]float64, n)
	rec := telemetry.NewRecorder("keeper", threads)
	prof := hotspot.New("keeper", n, threads, hotspot.Options{})
	k := NewKeeper(out, threads)
	k.Instrument(rec)

	// Private re-reads the shard's profiler pointer, so attaching or
	// detaching between phases switches the same accessor object between
	// the enabled and disabled paths.
	disabled := func() BulkPrivate[float64] {
		rec.AttachHotspot(nil)
		return AsBulk(k.Private(0))
	}
	enabled := func() BulkPrivate[float64] {
		rec.AttachHotspot(prof)
		return AsBulk(k.Private(0))
	}

	const maxRatio = 1.02
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		bestOff, bestOn := time.Duration(1<<62-1), time.Duration(1<<62-1)
		driveOverheadKeeper(disabled(), k.Finalize, tile, idx, svals, n, 2)
		driveOverheadKeeper(enabled(), k.Finalize, tile, idx, svals, n, 2)
		for rep := 0; rep < 7; rep++ {
			acc := disabled()
			start := time.Now()
			driveOverheadKeeper(acc, k.Finalize, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestOff {
				bestOff = d
			}
			acc = enabled()
			start = time.Now()
			driveOverheadKeeper(acc, k.Finalize, tile, idx, svals, n, passes)
			if d := time.Since(start); d < bestOn {
				bestOn = d
			}
		}
		ratio = float64(bestOn) / float64(bestOff)
		t.Logf("attempt %d: enabled %v disabled %v ratio %.4f", attempt, bestOn, bestOff, ratio)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("profiler-enabled keeper accessor is %.2f%% slower than with the profiler detached (budget 2%%)",
		100*(ratio-1))
}

// TestHotspotOffPathNoAlloc guards the profiler-disabled paths at the
// allocator level: with no recorder attached, the nil-safe hotspot
// recording calls added to the strategies must not allocate.
func TestHotspotOffPathNoAlloc(t *testing.T) {
	const n = 1 << 12
	vals := make([]float64, 64)
	for j := range vals {
		vals[j] = 1
	}

	t.Run("keeper-foreign", func(t *testing.T) {
		k := NewKeeper(make([]float64, n), 2)
		acc := AsBulk(k.Private(0))
		foreign := make([]int32, len(vals))
		for j := range foreign {
			foreign[j] = int32(n/2 + 128 + j)
		}
		assertNoAllocs(t, func() {
			acc.Add(n-5, 1)
			acc.AddN(n/2+512, vals)
			acc.Scatter(foreign, vals)
			k.Finalize()
		})
	})

	t.Run("atomic-instrumented-branchless", func(t *testing.T) {
		// Atomic's recording sits inside the telemetry branch: with the
		// recorder attached but the profiler off, the nil p.hot gate must
		// not allocate either.
		rec := telemetry.NewRecorder("atomic", 1)
		a := NewAtomic(make([]float64, n), 1)
		a.Instrument(rec)
		acc := AsBulk(a.Private(0))
		idx := make([]int32, len(vals))
		for j := range idx {
			idx[j] = int32((j * 997) % n)
		}
		assertNoAllocs(t, func() {
			acc.Add(7, 1)
			acc.AddN(128, vals)
			acc.Scatter(idx, vals)
		})
	})
}

// TestHotspotOnPathNoAllocSteadyState: with the profiler enabled, the
// per-event recording (sketch rows, heat bucket, top-K table) runs on
// storage allocated at New time — steady-state recording must not
// allocate either.
func TestHotspotOnPathNoAllocSteadyState(t *testing.T) {
	const n = 1 << 12
	rec := telemetry.NewRecorder("keeper", 2)
	prof := hotspot.New("keeper", n, 2, hotspot.Options{SamplePeriod: 1})
	rec.AttachHotspot(prof)
	k := NewKeeper(make([]float64, n), 2)
	k.Instrument(rec)
	acc := AsBulk(k.Private(0))
	vals := make([]float64, 64)
	foreign := make([]int32, len(vals))
	for j := range foreign {
		foreign[j] = int32(n/2 + 128 + j)
		vals[j] = 1
	}
	// Warm-up grows the queues; the assert runs on recycled capacity.
	acc.Scatter(foreign, vals)
	k.Finalize()
	assertNoAllocs(t, func() {
		acc.Add(n-5, 1)
		acc.AddN(n/2+512, vals)
		acc.Scatter(foreign, vals)
		k.Finalize()
	})
}

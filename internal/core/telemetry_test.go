package core

import (
	"runtime"
	"testing"

	"spray/internal/par"
	"spray/internal/telemetry"
)

// allInstrumentable builds one reducer of every strategy for a small array
// and team, all sharing shape so they can be driven identically.
func allInstrumentable(out []float64, threads int) []Reducer[float64] {
	return []Reducer[float64]{
		NewDense(out, threads),
		NewBuiltin(out, threads),
		NewAtomic(out, threads),
		NewMap(out, threads),
		NewBTree(out, threads, 0),
		NewBlock(out, threads, 8, BlockPrivate),
		NewBlock(out, threads, 8, BlockLock),
		NewBlock(out, threads, 8, BlockCAS),
		NewKeeper(out, threads),
		NewOrdered(out, threads),
		NewAdaptive(out, threads, 8),
		NewCompensated(out, threads),
	}
}

// TestEveryStrategyIsInstrumentable asserts the package-wide contract: all
// reducers implement Instrumentable, record the three core counters
// (updates, bulk runs/elements) with exact values, and return to the
// uninstrumented state on Instrument(nil).
func TestEveryStrategyIsInstrumentable(t *testing.T) {
	const n, threads = 64, 2
	for _, r := range allInstrumentable(make([]float64, n), threads) {
		t.Run(r.Name(), func(t *testing.T) {
			in, ok := r.(Instrumentable)
			if !ok {
				t.Fatalf("%s does not implement Instrumentable", r.Name())
			}
			rec := telemetry.NewRecorder(r.Name(), threads)
			in.Instrument(rec)

			// Drive one region sequentially so counts are deterministic:
			// each tid does 4 element adds, one 8-run AddN, one 3-batch
			// Scatter.
			vals := []float64{1, 1, 1, 1, 1, 1, 1, 1}
			for tid := 0; tid < threads; tid++ {
				p := r.Private(tid)
				for i := 0; i < 4; i++ {
					p.Add(tid*16+i, 1)
				}
				bp := AsBulk(p)
				bp.AddN(tid*16+4, vals)
				bp.Scatter([]int32{0, 31, 63}, []float64{1, 1, 1})
				p.Done()
			}
			r.Finalize()

			snap := rec.Snapshot()
			if got := snap.Get(telemetry.Updates); got < uint64(threads*4) {
				t.Errorf("updates = %d, want >= %d", got, threads*4)
			}
			if got := snap.Get(telemetry.AddNRuns); got != uint64(threads) {
				t.Errorf("addn-runs = %d, want %d", got, threads)
			}
			if got := snap.Get(telemetry.ScatterRuns); got != uint64(threads) {
				t.Errorf("scatter-runs = %d, want %d", got, threads)
			}
			if got := snap.Get(telemetry.BulkElems); got != uint64(threads*(8+3)) {
				t.Errorf("bulk-elems = %d, want %d", got, threads*(8+3))
			}
			perThread := rec.PerThread()
			for tid, ps := range perThread {
				if ps.Total() == 0 {
					t.Errorf("tid %d shard recorded nothing", tid)
				}
			}

			// Detach: the next region must not move the counters.
			in.Instrument(nil)
			rec.Reset()
			for tid := 0; tid < threads; tid++ {
				p := r.Private(tid)
				p.Add(tid, 1)
				AsBulk(p).AddN(8, vals)
				p.Done()
			}
			r.Finalize()
			if got := rec.Snapshot().Total(); got != 0 {
				t.Errorf("detached reducer recorded %d events", got)
			}
		})
	}
}

// TestBlockCASCountersDeterministic drives block-cas sequentially so the
// claim outcome of every acquire is fixed: tid 0 claims the block in
// place, tid 1's claim CAS fails and it falls back to a private copy.
func TestBlockCASCountersDeterministic(t *testing.T) {
	const n, threads, bs = 64, 2, 8
	out := make([]float64, n)
	r := NewBlock(out, threads, bs, BlockCAS)
	rec := telemetry.NewRecorder(r.Name(), threads)
	r.Instrument(rec)

	p0 := r.Private(0)
	p1 := r.Private(1)
	p0.Add(3, 1)  // tid 0 claims block 0
	p1.Add(4, 1)  // tid 1 loses the claim -> fallback private block
	p1.Add(12, 1) // tid 1 claims block 1
	p0.Done()
	p1.Done()
	r.Finalize()

	snap := rec.Snapshot()
	if got := snap.Get(telemetry.BlockClaims); got != 2 {
		t.Errorf("block-claims = %d, want 2", got)
	}
	if got := snap.Get(telemetry.CASRetries); got != 1 {
		t.Errorf("cas-retries = %d, want 1", got)
	}
	if got := snap.Get(telemetry.BlockFallbacks); got != 1 {
		t.Errorf("block-fallbacks = %d, want 1", got)
	}
	if got := snap.Get(telemetry.PoolReuses); got != 0 {
		t.Errorf("pool-reuses = %d in the first region", got)
	}
	if out[3] != 1 || out[4] != 1 || out[12] != 1 {
		t.Errorf("results corrupted: %v", out[:16])
	}

	// Second region, same pattern: the fallback block must come from the
	// pool and Bytes must not grow.
	bytesBefore := r.Bytes()
	p0 = r.Private(0)
	p1 = r.Private(1)
	p0.Add(3, 1)
	p1.Add(4, 1)
	p0.Done()
	p1.Done()
	r.Finalize()
	if got := rec.Snapshot().Get(telemetry.PoolReuses); got != 1 {
		t.Errorf("pool-reuses = %d after reuse region, want 1", got)
	}
	if r.Bytes() != bytesBefore {
		t.Errorf("pooled region grew Bytes %d -> %d", bytesBefore, r.Bytes())
	}
}

// TestBlockPrivateCountsFallbacksAndPool checks the always-privatize mode:
// every first touch is a fallback, later regions reuse pooled buffers.
func TestBlockPrivateCountsFallbacksAndPool(t *testing.T) {
	const n, threads, bs = 64, 2, 8
	r := NewBlock(make([]float64, n), threads, bs, BlockPrivate)
	rec := telemetry.NewRecorder(r.Name(), threads)
	r.Instrument(rec)
	for region := 0; region < 2; region++ {
		for tid := 0; tid < threads; tid++ {
			p := r.Private(tid)
			p.Add(tid*8, 1)
			p.Done()
		}
		r.Finalize()
	}
	snap := rec.Snapshot()
	if got := snap.Get(telemetry.BlockClaims); got != 0 {
		t.Errorf("block-private claimed %d blocks", got)
	}
	if got := snap.Get(telemetry.BlockFallbacks); got != 4 {
		t.Errorf("block-fallbacks = %d, want 4 (2 tids x 2 regions)", got)
	}
	if got := snap.Get(telemetry.PoolReuses); got != 2 {
		t.Errorf("pool-reuses = %d, want 2 (second region)", got)
	}
}

// TestKeeperCountersSplitOwnership drives the keeper sequentially over a
// cross-owner pattern and checks the owned/foreign/drained split exactly.
func TestKeeperCountersSplitOwnership(t *testing.T) {
	const n, threads = 16, 2 // chunk = 8: tid 0 owns [0,8), tid 1 owns [8,16)
	out := make([]float64, n)
	r := NewKeeper(out, threads)
	rec := telemetry.NewRecorder(r.Name(), threads)
	r.Instrument(rec)

	p0 := r.Private(0)
	p1 := r.Private(1)
	p0.Add(1, 1)  // owned
	p0.Add(9, 1)  // foreign -> owner 1
	p0.Add(10, 1) // foreign -> owner 1
	p1.Add(9, 1)  // owned
	p1.Add(2, 1)  // foreign -> owner 0
	// Bulk: run [6,10) from tid 0 splits 2 owned + 2 foreign.
	AsBulk(p0).AddN(6, []float64{1, 1, 1, 1})
	// Scatter from tid 1: indices 3 (foreign) and 12 (owned).
	AsBulk(p1).Scatter([]int32{3, 12}, []float64{1, 1})
	p0.Done()
	p1.Done()
	r.Finalize()

	snap := rec.Snapshot()
	if got := snap.Get(telemetry.KeeperOwned); got != 2+2+1 {
		t.Errorf("keeper-owned = %d, want 5", got)
	}
	if got := snap.Get(telemetry.KeeperForeign); got != 3+2+1 {
		t.Errorf("keeper-foreign = %d, want 6", got)
	}
	if drained := snap.Get(telemetry.KeeperDrained); drained != snap.Get(telemetry.KeeperForeign) {
		t.Errorf("keeper-drained = %d, want every foreign enqueue (%d) applied",
			drained, snap.Get(telemetry.KeeperForeign))
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum != 11 {
		t.Errorf("total mass %v, want 11", sum)
	}
}

// TestKeeperDrainedWithTeamFinalize checks the drain counter under the
// parallel fix-up: each owner is processed by one member, so the count
// must match the serial path.
func TestKeeperDrainedWithTeamFinalize(t *testing.T) {
	const n, threads = 32, 4
	team := par.NewTeam(threads)
	defer team.Close()
	r := NewKeeper(make([]float64, n), threads)
	rec := telemetry.NewRecorder(r.Name(), threads)
	r.Instrument(rec)
	team.Run(func(tid int) {
		p := r.Private(tid)
		for i := 0; i < n; i++ { // every member touches every index
			p.Add(i, 1)
		}
		p.Done()
	})
	r.FinalizeWith(team)
	snap := rec.Snapshot()
	// Each member owns chunk=8 of 32 indices: 8 owned, 24 foreign.
	if got := snap.Get(telemetry.KeeperOwned); got != uint64(threads*8) {
		t.Errorf("keeper-owned = %d, want %d", got, threads*8)
	}
	if got := snap.Get(telemetry.KeeperForeign); got != uint64(threads*24) {
		t.Errorf("keeper-foreign = %d, want %d", got, threads*24)
	}
	if got := snap.Get(telemetry.KeeperDrained); got != snap.Get(telemetry.KeeperForeign) {
		t.Errorf("keeper-drained = %d, want %d", got, snap.Get(telemetry.KeeperForeign))
	}
}

// TestAtomicCASRetryCounting verifies the retry plumbing end to end under
// real contention: many goroutines hammering one element must record at
// least one lost CAS, and the sum must stay exact.
func TestAtomicCASRetryCounting(t *testing.T) {
	const threads, per = 4, 20000
	out := make([]float64, 4)
	team := par.NewTeam(threads)
	defer team.Close()
	r := NewAtomic(out, threads)
	rec := telemetry.NewRecorder(r.Name(), threads)
	r.Instrument(rec)
	team.Run(func(tid int) {
		p := r.Private(tid)
		for i := 0; i < per; i++ {
			p.Add(0, 1) // single hot element
		}
		p.Done()
	})
	r.Finalize()
	if out[0] != threads*per {
		t.Fatalf("sum %v, want %d (instrumented CAS dropped updates)", out[0], threads*per)
	}
	snap := rec.Snapshot()
	if got := snap.Get(telemetry.Updates); got != threads*per {
		t.Errorf("updates = %d, want %d", got, threads*per)
	}
	// Lost CASes require true parallelism; on a single-core runner the
	// goroutines serialize and zero retries is the correct reading.
	if runtime.GOMAXPROCS(0) > 1 && snap.Get(telemetry.CASRetries) == 0 {
		t.Error("no CAS retries recorded on a single hot element with 4 writers")
	}
}

// TestAdaptiveEscalationCounter checks that hammering one block records
// exactly the expected escalations and the atomic->private crossover keeps
// the result intact.
func TestAdaptiveEscalationCounter(t *testing.T) {
	const n, bs = 64, 8
	out := make([]float64, n)
	r := NewAdaptive(out, 1, bs)
	rec := telemetry.NewRecorder(r.Name(), 1)
	r.Instrument(rec)
	p := r.Private(0)
	const hits = 100 // far past the bs>>2 threshold for block 0
	for i := 0; i < hits; i++ {
		p.Add(0, 1)
	}
	p.Done()
	r.Finalize()
	snap := rec.Snapshot()
	if got := snap.Get(telemetry.Escalations); got != 1 {
		t.Errorf("escalations = %d, want 1", got)
	}
	if got := snap.Get(telemetry.Updates); got != hits {
		t.Errorf("updates = %d, want %d", got, hits)
	}
	if out[0] != hits {
		t.Errorf("out[0] = %v, want %d", out[0], hits)
	}
}

// TestEntryCounters checks the map, btree and ordered entry accounting.
func TestEntryCounters(t *testing.T) {
	const n = 32
	for _, tc := range []struct {
		r    Reducer[float64]
		want uint64
	}{
		{NewMap(make([]float64, n), 1), 3},      // 3 distinct keys
		{NewBTree(make([]float64, n), 1, 0), 3}, // 3 distinct keys
		{NewOrdered(make([]float64, n), 1), 4},  // 4 log records
	} {
		rec := telemetry.NewRecorder(tc.r.Name(), 1)
		tc.r.(Instrumentable).Instrument(rec)
		p := tc.r.Private(0)
		p.Add(1, 1)
		p.Add(2, 1)
		p.Add(2, 1) // repeat key: new log record, same map/tree entry
		p.Add(30, 1)
		p.Done()
		tc.r.Finalize()
		if got := rec.Snapshot().Get(telemetry.Entries); got != tc.want {
			t.Errorf("%s entries = %d, want %d", tc.r.Name(), got, tc.want)
		}
	}
}

// TestInstrumentedResultsUnchanged runs the full update battery from
// core_test through instrumented reducers and compares against the serial
// reference — attaching telemetry must never perturb results.
func TestInstrumentedResultsUnchanged(t *testing.T) {
	const n, threads = 128, 4
	ups := genUpdates(7, 40, n, 6)
	want := seqApply(n, ups, 0)
	team := par.NewTeam(threads)
	defer team.Close()
	for _, mk := range []func(out []float64) Reducer[float64]{
		func(out []float64) Reducer[float64] { return NewDense(out, threads) },
		func(out []float64) Reducer[float64] { return NewAtomic(out, threads) },
		func(out []float64) Reducer[float64] { return NewBlock(out, threads, 16, BlockCAS) },
		func(out []float64) Reducer[float64] { return NewKeeper(out, threads) },
		func(out []float64) Reducer[float64] { return NewAdaptive(out, threads, 16) },
	} {
		out := make([]float64, n)
		r := mk(out)
		rec := telemetry.NewRecorder(r.Name(), threads)
		r.(Instrumentable).Instrument(rec)
		team.Run(func(tid int) {
			p := r.Private(tid)
			for u := tid; u < len(ups); u += threads {
				p.Add(ups[u].Idx, ups[u].Val)
			}
			p.Done()
		})
		r.FinalizeWith(team)
		for i := range out {
			if out[i] != want[i] {
				t.Errorf("%s: out[%d] = %v, want %v", r.Name(), i, out[i], want[i])
				break
			}
		}
		if got := rec.Snapshot().Get(telemetry.Updates); got != uint64(len(ups)) {
			t.Errorf("%s: updates = %d, want %d", r.Name(), got, len(ups))
		}
	}
}

// TestPoolAccountingAudits cross-checks the cross-region buffer pools
// against the memory counters: retained dense copies release to zero,
// keeper queue capacity stabilizes across identical regions, and pooled
// block fallbacks neither leak nor double-free charged bytes.
func TestPoolAccountingAudits(t *testing.T) {
	const n, threads = 256, 2

	t.Run("dense-retain-release", func(t *testing.T) {
		d := NewDense(make([]float64, n), threads)
		for region := 0; region < 3; region++ {
			for tid := 0; tid < threads; tid++ {
				d.Private(tid).Add(tid, 1)
			}
			d.Finalize()
		}
		want := int64(threads * n * 8)
		if d.Bytes() != want { // retained copies stay charged
			t.Errorf("retained bytes %d, want %d", d.Bytes(), want)
		}
		if d.PeakBytes() != want {
			t.Errorf("peak %d, want %d (no steady-state growth)", d.PeakBytes(), want)
		}
		d.Release()
		if d.Bytes() != 0 {
			t.Errorf("after Release: %d bytes still charged", d.Bytes())
		}
	})

	t.Run("keeper-capacity-stable", func(t *testing.T) {
		k := NewKeeper(make([]float64, n), threads)
		runRegion := func() {
			for tid := 0; tid < threads; tid++ {
				p := k.Private(tid)
				for i := 0; i < n; i += 2 { // half foreign for tid 1, half for tid 0
					p.Add(i, 1)
				}
				p.Done()
			}
			k.Finalize()
		}
		runRegion()
		after1 := k.Bytes()
		if after1 <= 0 {
			t.Fatalf("no queue capacity charged: %d", after1)
		}
		runRegion()
		if k.Bytes() != after1 { // identical region reuses retained capacity
			t.Errorf("capacity drifted across identical regions: %d -> %d", after1, k.Bytes())
		}
		if k.PeakBytes() < after1 {
			t.Errorf("peak %d below live %d", k.PeakBytes(), after1)
		}
	})

	t.Run("block-pool-stable", func(t *testing.T) {
		bl := NewBlock(make([]float64, n), threads, 16, BlockPrivate)
		runRegion := func() {
			for tid := 0; tid < threads; tid++ {
				p := bl.Private(tid)
				p.Add(0, 1)
				p.Add(100, 1)
				p.Done()
			}
			bl.Finalize()
		}
		runRegion()
		after1 := bl.Bytes()
		for region := 0; region < 3; region++ {
			runRegion()
		}
		if bl.Bytes() != after1 {
			t.Errorf("pooled fallback bytes drifted: %d -> %d", after1, bl.Bytes())
		}
		if bl.PeakBytes() != after1 {
			t.Errorf("peak %d, want %d (pool must prevent growth)", bl.PeakBytes(), after1)
		}
	})
}

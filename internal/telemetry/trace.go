package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// The trace timeline layer: bounded per-thread span rings that the
// parallel runtime (internal/par) and the strategy fix-ups feed with
// begin/end events, exported as Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing. Like the counter shards, a nil *Tracer
// is the "tracing off" state: every emit method is nil-safe and the
// untraced path pays one predictable branch at the call site.

// SpanKind enumerates the span types the runtime records.
type SpanKind uint8

const (
	// SpanRegion brackets one team member's execution of a parallel
	// region body (arg0 = region sequence number).
	SpanRegion SpanKind = iota
	// SpanChunk brackets one dispatched loop chunk (arg0 = from,
	// arg1 = to).
	SpanChunk
	// SpanBarrier brackets the wait inside a team barrier.
	SpanBarrier
	// SpanFinalize brackets the reduction fix-up step.
	SpanFinalize
	// SpanDrain brackets one owner-range drain of queued update
	// requests during a keeper fix-up (arg0 = owner).
	SpanDrain

	numSpanKinds
)

var spanNames = [numSpanKinds]string{
	SpanRegion:   "region",
	SpanChunk:    "chunk",
	SpanBarrier:  "barrier",
	SpanFinalize: "finalize",
	SpanDrain:    "drain",
}

// String returns the span name used in the exported trace.
func (k SpanKind) String() string {
	if int(k) < len(spanNames) {
		return spanNames[k]
	}
	return fmt.Sprintf("span(%d)", int(k))
}

// traceEvent is one ring entry. ph is 'B' (begin), 'E' (end) or 'I'
// (instant), mirroring the Chrome trace-event phases.
type traceEvent struct {
	ts   int64 // ns since the tracer's base time
	arg0 int64
	arg1 int64
	kind SpanKind
	ph   byte
}

// traceRing is one thread's bounded event buffer. When full, the oldest
// event is overwritten and counted as dropped — tracing a long run
// keeps the most recent window instead of growing without bound. Only
// the owning thread writes; reads (export, Dropped) must happen after
// the region has joined. Padding keeps neighboring rings off each
// other's cache lines.
type traceRing struct {
	buf     []traceEvent
	next    int
	wrapped bool
	dropped uint64
	_       [64]byte
}

func (g *traceRing) push(e traceEvent) {
	if g.next == len(g.buf) {
		g.next = 0
		g.wrapped = true
	}
	if g.wrapped {
		g.dropped++
	}
	g.buf[g.next] = e
	g.next++
}

// ordered returns the ring's events oldest-first.
func (g *traceRing) ordered() []traceEvent {
	if !g.wrapped {
		return g.buf[:g.next]
	}
	out := make([]traceEvent, 0, len(g.buf))
	out = append(out, g.buf[g.next:]...)
	out = append(out, g.buf[:g.next]...)
	return out
}

// DefaultTraceEvents is the per-thread ring capacity used when a tracer
// is created with a non-positive capacity.
const DefaultTraceEvents = 4096

// Tracer records span events for one team into per-thread rings. Emit
// methods are nil-safe and owner-thread-only; export and inspection
// methods must run after the traced regions have joined (the usual
// instrument → run → write lifecycle).
type Tracer struct {
	base  time.Time
	rings []traceRing
}

// NewTracer creates a tracer for a team of the given size with the
// given per-thread ring capacity (<= 0 selects DefaultTraceEvents).
func NewTracer(threads, eventsPerThread int) *Tracer {
	if threads < 1 {
		panic(fmt.Sprintf("telemetry: tracer needs a positive thread count, got %d", threads))
	}
	if eventsPerThread <= 0 {
		eventsPerThread = DefaultTraceEvents
	}
	tr := &Tracer{base: time.Now(), rings: make([]traceRing, threads)}
	for t := range tr.rings {
		tr.rings[t].buf = make([]traceEvent, eventsPerThread)
		tr.rings[t].next = 0
	}
	return tr
}

// Threads returns the number of per-thread rings.
func (tr *Tracer) Threads() int {
	if tr == nil {
		return 0
	}
	return len(tr.rings)
}

func (tr *Tracer) now() int64 { return int64(time.Since(tr.base)) }

// Begin opens a span of the given kind on member tid's timeline.
func (tr *Tracer) Begin(tid int, k SpanKind, arg0, arg1 int64) {
	if tr == nil {
		return
	}
	tr.rings[tid].push(traceEvent{ts: tr.now(), arg0: arg0, arg1: arg1, kind: k, ph: 'B'})
}

// End closes the innermost open span of the given kind on member tid's
// timeline.
func (tr *Tracer) End(tid int, k SpanKind) {
	if tr == nil {
		return
	}
	tr.rings[tid].push(traceEvent{ts: tr.now(), kind: k, ph: 'E'})
}

// Instant records a zero-duration marker on member tid's timeline.
func (tr *Tracer) Instant(tid int, k SpanKind, arg0, arg1 int64) {
	if tr == nil {
		return
	}
	tr.rings[tid].push(traceEvent{ts: tr.now(), arg0: arg0, arg1: arg1, kind: k, ph: 'I'})
}

// Dropped returns the number of events evicted by ring overflow so far.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	var n uint64
	for t := range tr.rings {
		n += tr.rings[t].dropped
	}
	return n
}

// Events returns the number of events currently held across all rings.
func (tr *Tracer) Events() int {
	if tr == nil {
		return 0
	}
	var n int
	for t := range tr.rings {
		if tr.rings[t].wrapped {
			n += len(tr.rings[t].buf)
		} else {
			n += tr.rings[t].next
		}
	}
	return n
}

// Reset empties every ring and zeroes the drop counters; the time base
// is kept so successive windows share one clock.
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	for t := range tr.rings {
		tr.rings[t].next = 0
		tr.rings[t].wrapped = false
		tr.rings[t].dropped = 0
	}
}

// chromeEvent is the exported Chrome trace-event record. TS is in
// microseconds as the format requires.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeMeta is a Chrome metadata event (process/thread naming).
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeFile is the object form of the trace-event format: the event
// array plus free-form metadata (drop counts).
type chromeFile struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
	OtherData   map[string]uint64 `json:"otherData,omitempty"`
}

// sanitize marks the events of one timeline that survive export: only
// properly matched B/E pairs (per span kind, stack-nested) and instants
// are kept, so a ring whose overflow evicted a begin event can never
// emit the orphaned end — the file stays loadable. It returns the
// number of skipped (orphaned) events.
func sanitize(events []traceEvent) (valid []bool, skipped int) {
	valid = make([]bool, len(events))
	var stack []int
	for i, e := range events {
		switch e.ph {
		case 'B':
			stack = append(stack, i)
		case 'E':
			if n := len(stack); n > 0 && events[stack[n-1]].kind == e.kind {
				valid[stack[n-1]] = true
				valid[i] = true
				stack = stack[:n-1]
			} else {
				skipped++
			}
		default:
			valid[i] = true
		}
	}
	skipped += len(stack) // unclosed begins
	return valid, skipped
}

// TraceProcess names one tracer for a multi-process export: each
// process becomes its own pid/track group in the viewer.
type TraceProcess struct {
	Name   string
	Tracer *Tracer
}

// WriteChrome writes the tracer's events as Chrome trace-event JSON
// (object form) under process name "spray". Must not run concurrently
// with a traced region.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	return WriteChromeProcesses(w, []TraceProcess{{Name: "spray", Tracer: tr}})
}

// WriteChromeProcesses writes several tracers into one Chrome trace
// file, one pid per tracer (pids start at 1). Orphaned events from ring
// overflow are dropped and counted under otherData.trace_dropped
// together with the ring evictions.
func WriteChromeProcesses(w io.Writer, procs []TraceProcess) error {
	var events []json.RawMessage
	var dropped uint64
	appendJSON := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		events = append(events, raw)
		return nil
	}
	for pi, proc := range procs {
		pid := pi + 1
		if err := appendJSON(chromeMeta{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": proc.Name}}); err != nil {
			return err
		}
		tr := proc.Tracer
		if tr == nil {
			continue
		}
		dropped += tr.Dropped()
		for tid := range tr.rings {
			if err := appendJSON(chromeMeta{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": fmt.Sprintf("member %d", tid)}}); err != nil {
				return err
			}
			ordered := tr.rings[tid].ordered()
			valid, skipped := sanitize(ordered)
			dropped += uint64(skipped)
			for i, e := range ordered {
				if !valid[i] {
					continue
				}
				ce := chromeEvent{
					Name: e.kind.String(),
					Ph:   string(e.ph),
					TS:   float64(e.ts) / 1e3,
					Pid:  pid,
					Tid:  tid,
				}
				if e.ph != 'E' && (e.arg0 != 0 || e.arg1 != 0) {
					ce.Args = map[string]int64{"arg0": e.arg0, "arg1": e.arg1}
				}
				if err := appendJSON(ce); err != nil {
					return err
				}
			}
		}
	}
	file := chromeFile{TraceEvents: events}
	if dropped > 0 {
		file.OtherData = map[string]uint64{"trace_dropped": dropped}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// TraceSink collects named tracers from a multi-run sweep (one tracer
// per measured point) and writes them as one multi-process Chrome
// trace. Registration is concurrency-safe; writing must happen after
// the traced runs complete.
type TraceSink struct {
	mu              sync.Mutex
	procs           []TraceProcess
	eventsPerThread int
}

// NewTraceSink creates a sink whose tracers use the given per-thread
// ring capacity (<= 0 selects DefaultTraceEvents).
func NewTraceSink(eventsPerThread int) *TraceSink {
	return &TraceSink{eventsPerThread: eventsPerThread}
}

// New creates, registers and returns a tracer for a team of the given
// size, exported as process name.
func (s *TraceSink) New(name string, threads int) *Tracer {
	tr := NewTracer(threads, s.eventsPerThread)
	s.mu.Lock()
	s.procs = append(s.procs, TraceProcess{Name: name, Tracer: tr})
	s.mu.Unlock()
	return tr
}

// Len returns the number of registered tracers.
func (s *TraceSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.procs)
}

// Dropped sums ring evictions across all registered tracers.
func (s *TraceSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, p := range s.procs {
		n += p.Tracer.Dropped()
	}
	return n
}

// WriteChrome writes all registered tracers as one Chrome trace file.
func (s *TraceSink) WriteChrome(w io.Writer) error {
	s.mu.Lock()
	procs := make([]TraceProcess, len(s.procs))
	copy(procs, s.procs)
	s.mu.Unlock()
	return WriteChromeProcesses(w, procs)
}

package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// HKind enumerates the latency distributions the strategies can sample.
// Unlike the event counters (Kind), these are not bumped on every event:
// the instrumented hot paths time one event in SamplePeriod (the cost of
// reading the clock twice is too high to pay per update) and feed the
// measured duration into a log-bucketed histogram shard.
type HKind uint8

const (
	// CASLatency is the latency of one atomic CAS-loop accumulation
	// (atomic strategy and the adaptive atomic regime), sampled 1-in-N.
	CASLatency HKind = iota
	// ClaimLatency is the latency of resolving storage for a block on
	// first touch — the in-place claim or the fallback privatization,
	// including pool reuse and zeroing. Block acquisition is rare (at
	// most once per block per thread per region), so every acquire is
	// observed when instrumented.
	ClaimLatency
	// KeeperDwell is the time a foreign update request spent queued
	// before the finalize drain applied it. Sampled per (thread, owner)
	// pair: the first foreign enqueue to each owner per region is
	// stamped and measured when that owner's queue drains (or, with the
	// mid-region mailbox path, when a published parcel is applied).
	KeeperDwell
	// FlushLatency is the latency of flushing one write-combining bin
	// through the strategy's sink — the per-block claim/CAS/apply pass
	// the binned Scatter path pays instead of per-element work. Sampled
	// 1-in-N flushes.
	FlushLatency
	// PlanCompile is the latency of compiling one execution plan from a
	// recorded region (ownership partitioning plus exchange-list
	// construction). Compilation is rare — once per record region — so
	// every compile is observed when instrumented, making the one-time
	// inspection cost the amortization curve divides away directly
	// readable from the histogram.
	PlanCompile
	// EvictFlush is the latency of flushing one evicted hot-set slot's
	// partial through the tiered wrapper's inner strategy — the price the
	// online promotion policy pays to displace a cooled line. Sampled
	// 1-in-N evictions.
	EvictFlush

	// NumHKinds sizes histogram shard blocks and snapshots.
	NumHKinds
)

var hkindNames = [NumHKinds]string{
	CASLatency:   "cas-latency",
	ClaimLatency: "claim-latency",
	KeeperDwell:  "keeper-dwell",
	FlushLatency: "flush-latency",
	PlanCompile:  "plan-compile-latency",
	EvictFlush:   "evict-flush-latency",
}

// String returns the stable external name of the latency kind.
func (k HKind) String() string {
	if int(k) < len(hkindNames) {
		return hkindNames[k]
	}
	return fmt.Sprintf("hkind(%d)", int(k))
}

// HKindByName resolves an external latency name back to its HKind.
func HKindByName(name string) (HKind, bool) {
	for k, n := range hkindNames {
		if n == name {
			return HKind(k), true
		}
	}
	return 0, false
}

// SamplePeriod is the decimation factor of the latency sampling hooks:
// Shard.Sample fires on the first event and then every SamplePeriod-th.
const SamplePeriod = 64

// HistBuckets is the number of power-of-two latency buckets. Bucket 0
// holds 0ns; bucket b holds durations in [2^(b-1), 2^b) ns, so 40
// buckets span sub-nanosecond to ~9 minutes — far beyond any latency a
// single reduction event can exhibit.
const HistBuckets = 40

// histBucket returns the bucket index for a nanosecond value.
func histBucket(ns uint64) int {
	b := bits.Len64(ns)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket b, the value
// quantile estimates report. The top bucket is unbounded; its nominal
// upper bound is returned.
func BucketUpper(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		b = 63
	}
	return time.Duration(uint64(1)<<uint(b) - 1)
}

// HistSnapshot is a point-in-time copy of one latency histogram:
// log-bucketed counts plus exact count, sum and max. Snapshots merge
// slot-wise, so per-thread shards combine into exactly the histogram a
// single-threaded run over the same samples would produce.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64 // nanoseconds
	Max     uint64 // nanoseconds
}

// Merge adds other into h slot-wise.
func (h *HistSnapshot) Merge(other HistSnapshot) {
	for b := range h.Buckets {
		h.Buckets[b] += other.Buckets[b]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Observe records one duration (a convenience for building reference
// histograms in tests and offline tooling; the hot path uses Shard).
func (h *HistSnapshot) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	h.Buckets[histBucket(ns)]++
	h.Count++
	h.Sum += ns
	if ns > h.Max {
		h.Max = ns
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket holding the ceil(q*Count)-th smallest sample — by
// construction within one power-of-two bucket of the exact quantile.
// Returns 0 on an empty histogram.
func (h HistSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for b, n := range h.Buckets {
		cum += n
		if cum >= rank {
			if b == HistBuckets-1 || BucketUpper(b) > time.Duration(h.Max) {
				// The top (or max-containing) bucket is better bounded
				// by the exact maximum than by its nominal upper edge.
				return time.Duration(h.Max)
			}
			return BucketUpper(b)
		}
	}
	return time.Duration(h.Max)
}

// P50 returns the median estimate.
func (h HistSnapshot) P50() time.Duration { return h.Quantile(0.50) }

// P90 returns the 90th-percentile estimate.
func (h HistSnapshot) P90() time.Duration { return h.Quantile(0.90) }

// P99 returns the 99th-percentile estimate.
func (h HistSnapshot) P99() time.Duration { return h.Quantile(0.99) }

// MaxLatency returns the exact largest observed sample.
func (h HistSnapshot) MaxLatency() time.Duration { return time.Duration(h.Max) }

// Mean returns the exact arithmetic mean of the observed samples.
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.Sum / h.Count)
}

// String renders the summary line the region report embeds.
func (h HistSnapshot) String() string {
	if h.Count == 0 {
		return "(no samples)"
	}
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v",
		h.Count, h.P50(), h.P90(), h.P99(), h.MaxLatency())
}

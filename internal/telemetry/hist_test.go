package telemetry

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestHKindNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := HKind(0); k < NumHKinds; k++ {
		n := k.String()
		if n == "" || strings.HasPrefix(n, "hkind(") {
			t.Errorf("hkind %d has no name", k)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		got, ok := HKindByName(n)
		if !ok || got != k {
			t.Errorf("HKindByName(%q) = %v, %v", n, got, ok)
		}
	}
	if _, ok := HKindByName("no-such-latency"); ok {
		t.Error("bogus name resolved")
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Each nonzero value must not exceed its bucket's upper bound and
	// must exceed the previous bucket's.
	for _, ns := range []uint64{1, 5, 100, 4096, 1 << 30} {
		b := histBucket(ns)
		if up := BucketUpper(b); time.Duration(ns) > up {
			t.Errorf("ns %d above bucket %d upper %v", ns, b, up)
		}
		if b > 0 {
			if low := BucketUpper(b - 1); time.Duration(ns) <= low {
				t.Errorf("ns %d not above bucket %d upper %v", ns, b-1, low)
			}
		}
	}
	// Absurd values clamp into the top bucket rather than indexing out.
	if got := histBucket(^uint64(0)); got != HistBuckets-1 {
		t.Errorf("max value bucket = %d", got)
	}
}

// TestHistShardMergeMatchesReference is the merge property of the
// tentpole: per-thread shards merged by the recorder must equal, slot
// for slot, the reference histogram a single-threaded pass over the
// same samples produces.
func TestHistShardMergeMatchesReference(t *testing.T) {
	const threads, samples = 5, 4000
	rng := rand.New(rand.NewSource(7))
	rec := NewRecorder("prop", threads)
	var ref HistSnapshot
	for i := 0; i < samples; i++ {
		// Span many octaves, including zero and the clamped top range.
		d := time.Duration(rng.Int63n(1 << uint(1+rng.Intn(40))))
		rec.Shard(i%threads).Observe(CASLatency, d)
		ref.Observe(d)
	}
	got := rec.Hist(CASLatency)
	if got != ref {
		t.Errorf("merged shards != single-threaded reference\n got %+v\nwant %+v", got, ref)
	}
	if hs := rec.Hists(); hs[CASLatency] != ref {
		t.Errorf("Hists()[CASLatency] diverges from Hist(CASLatency)")
	}
	if rec.Hist(KeeperDwell).Count != 0 {
		t.Error("untouched kind has samples")
	}
	rec.Reset()
	if rec.Hist(CASLatency).Count != 0 {
		t.Error("reset left histogram samples")
	}
}

// TestQuantileWithinOneBucket checks the estimator property: the
// reported quantile is never below the exact quantile and never more
// than one power-of-two bucket above it.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		var h HistSnapshot
		exactNs := make([]uint64, n)
		for i := range exactNs {
			exactNs[i] = uint64(rng.Int63n(1 << uint(1+rng.Intn(34))))
			h.Observe(time.Duration(exactNs[i]))
		}
		sort.Slice(exactNs, func(i, j int) bool { return exactNs[i] < exactNs[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			rank := int(float64(n)*q+0.9999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			exact := exactNs[rank]
			est := uint64(h.Quantile(q))
			if est < exact {
				t.Fatalf("trial %d q=%v: estimate %d below exact %d", trial, q, est, exact)
			}
			if exact > 0 && est >= 2*exact {
				t.Fatalf("trial %d q=%v: estimate %d not within one bucket of exact %d", trial, q, est, exact)
			}
			if exact == 0 && est != 0 {
				t.Fatalf("trial %d q=%v: estimate %d for exact 0", trial, q, est)
			}
		}
		if got, want := uint64(h.MaxLatency()), exactNs[n-1]; got != want {
			t.Fatalf("trial %d: max %d, want %d", trial, got, want)
		}
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h HistSnapshot
	if h.Quantile(0.5) != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Error("empty histogram has nonzero quantiles")
	}
	if h.String() != "(no samples)" {
		t.Errorf("empty string %q", h.String())
	}
	h.Observe(100 * time.Nanosecond)
	for _, q := range []float64{0.01, 0.5, 1.0} {
		if v := h.Quantile(q); v < 100 || v > 127 {
			t.Errorf("single-sample quantile(%v) = %v", q, v)
		}
	}
	if !strings.Contains(h.String(), "n=1") {
		t.Errorf("string %q", h.String())
	}
}

func TestSampleDecimation(t *testing.T) {
	rec := NewRecorder("s", 1)
	sh := rec.Shard(0)
	fired := 0
	const calls = 10 * SamplePeriod
	for i := 0; i < calls; i++ {
		hit := sh.Sample(CASLatency)
		if hit {
			fired++
		}
		if (i%SamplePeriod == 0) != hit {
			t.Fatalf("call %d: sample = %v", i, hit)
		}
	}
	if fired != calls/SamplePeriod {
		t.Errorf("fired %d of %d calls", fired, calls)
	}
	// Independent streams per kind.
	if !sh.Sample(ClaimLatency) {
		t.Error("first sample of a fresh kind did not fire")
	}
	rec.Reset()
	if !sh.Sample(CASLatency) {
		t.Error("first sample after reset did not fire")
	}
}

func TestNilShardHistAndSample(t *testing.T) {
	var s *Shard
	if s.Sample(CASLatency) {
		t.Error("nil shard sampled")
	}
	s.Observe(CASLatency, time.Second) // must not panic
	if s.Hist(CASLatency).Count != 0 {
		t.Error("nil shard has samples")
	}
	var r *Recorder
	if r.Hist(CASLatency).Count != 0 {
		t.Error("nil recorder has samples")
	}
	if r.Hists() != ([NumHKinds]HistSnapshot{}) {
		t.Error("nil recorder Hists nonzero")
	}
}

func TestObserveNegativeAndMax(t *testing.T) {
	rec := NewRecorder("edge", 1)
	sh := rec.Shard(0)
	sh.Observe(CASLatency, -time.Second) // clock went backwards: clamp to 0
	sh.Observe(CASLatency, time.Duration(1)<<62)
	h := rec.Hist(CASLatency)
	if h.Count != 2 {
		t.Fatalf("count %d", h.Count)
	}
	if h.Buckets[0] != 1 || h.Buckets[HistBuckets-1] != 1 {
		t.Errorf("buckets %v", h.Buckets)
	}
	if h.Max != uint64(1)<<62 {
		t.Errorf("max %d", h.Max)
	}
}

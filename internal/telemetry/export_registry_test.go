package telemetry

import "testing"

// TestUnregisterClearsVacatedSlot guards the registry against the leak
// where removing a recorder left a stale pointer in the tail of the
// backing array: repeated register/unregister cycles (one per
// instrumented benchmark point) must not keep any detached recorder —
// and its cache-line-padded shards — reachable.
func TestUnregisterClearsVacatedSlot(t *testing.T) {
	r1 := NewRecorder("leak-a", 2)
	r2 := NewRecorder("leak-b", 2)
	Register(r1)
	Register(r2)
	Unregister(r1) // removes from the middle: tail slides down

	regMu.Lock()
	full := recorders[:cap(recorders)]
	for i, have := range full {
		if have == r1 {
			regMu.Unlock()
			t.Fatalf("unregistered recorder still pinned in backing array slot %d", i)
		}
	}
	regMu.Unlock()
	Unregister(r2)
}

// TestRegisterUnregisterCyclesDoNotGrow drives many attach/detach
// cycles and checks the registry footprint stays flat — the /debug/vars
// export must only ever see currently-attached recorders.
func TestRegisterUnregisterCyclesDoNotGrow(t *testing.T) {
	before := len(Registered())
	for i := 0; i < 200; i++ {
		r := NewRecorder("cycle", 4)
		Register(r)
		Unregister(r)
	}
	after := Registered()
	if len(after) != before {
		t.Fatalf("registry grew from %d to %d entries", before, len(after))
	}
	for _, r := range after {
		if r.Name() == "cycle" {
			t.Fatal("detached recorder still exported")
		}
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeTrace mirrors the exported file shape for test-side parsing.
// Args values are strings on metadata events and numbers on span events,
// so they parse as any.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]uint64 `json:"otherData"`
}

// numArg reads a numeric span argument from a parsed event.
func numArg(args map[string]any, key string) int64 {
	v, ok := args[key].(float64)
	if !ok {
		return -1
	}
	return int64(v)
}

func parseChrome(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return tr
}

// checkStructure asserts the Chrome trace-event invariants: known
// phases, set pid/tid, and stack-matched B/E pairs per (pid, tid).
func checkStructure(t *testing.T, tr chromeTrace) {
	t.Helper()
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	for i, e := range tr.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if e.Pid < 1 {
			t.Fatalf("event %d (%s) pid %d", i, e.Name, e.Pid)
		}
		k := track{e.Pid, e.Tid}
		switch e.Ph {
		case "M", "I":
		case "B":
			stacks[k] = append(stacks[k], e.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q with no open span on pid=%d tid=%d", i, e.Name, e.Pid, e.Tid)
			}
			if st[len(st)-1] != e.Name {
				t.Fatalf("event %d: E %q closes open span %q", i, e.Name, st[len(st)-1])
			}
			stacks[k] = st[:len(st)-1]
		default:
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
		if e.Ph != "M" && e.TS < 0 {
			t.Fatalf("event %d has negative timestamp", i)
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("pid=%d tid=%d left %d unclosed spans %v", k.pid, k.tid, len(st), st)
		}
	}
}

func TestTracerWritesValidChromeTrace(t *testing.T) {
	tr := NewTracer(2, 64)
	for tid := 0; tid < 2; tid++ {
		tr.Begin(tid, SpanRegion, int64(tid), 0)
		tr.Begin(tid, SpanChunk, 0, 100)
		tr.End(tid, SpanChunk)
		tr.Begin(tid, SpanBarrier, 0, 0)
		tr.End(tid, SpanBarrier)
		tr.End(tid, SpanRegion)
	}
	tr.Instant(0, SpanFinalize, 1, 2)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	ct := parseChrome(t, buf.Bytes())
	checkStructure(t, ct)

	names := map[string]int{}
	phases := map[string]int{}
	for _, e := range ct.TraceEvents {
		names[e.Name]++
		phases[e.Ph]++
	}
	if names["region"] != 4 || names["chunk"] != 4 || names["barrier"] != 4 {
		t.Errorf("span counts %v", names)
	}
	if phases["B"] != phases["E"] || phases["B"] != 6 {
		t.Errorf("phase counts %v", phases)
	}
	if names["process_name"] != 1 || names["thread_name"] != 2 {
		t.Errorf("metadata events %v", names)
	}
	if phases["I"] != 1 {
		t.Errorf("instant events %v", phases)
	}
	// Begin events carry their arguments; chunk begins carry [from, to).
	for _, e := range ct.TraceEvents {
		if e.Name == "chunk" && e.Ph == "B" {
			if numArg(e.Args, "arg0") != 0 || numArg(e.Args, "arg1") != 100 {
				t.Errorf("chunk args %v", e.Args)
			}
		}
	}
	if len(ct.OtherData) != 0 {
		t.Errorf("unexpected drops %v", ct.OtherData)
	}
	if tr.Events() != 13 {
		t.Errorf("events held = %d", tr.Events())
	}
}

func TestTraceRingOverflowDropsOldestAndCounts(t *testing.T) {
	const capacity = 16
	tr := NewTracer(1, capacity)
	const pairs = 100
	for i := 0; i < pairs; i++ {
		tr.Begin(0, SpanChunk, int64(i), int64(i+1))
		tr.End(0, SpanChunk)
	}
	wantDropped := uint64(2*pairs - capacity)
	if got := tr.Dropped(); got != wantDropped {
		t.Fatalf("dropped = %d, want %d", got, wantDropped)
	}
	if got := tr.Events(); got != capacity {
		t.Fatalf("events held = %d, want %d", got, capacity)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	ct := parseChrome(t, buf.Bytes())
	checkStructure(t, ct)
	// The survivors are the newest chunks: arg0 strictly increasing and
	// ending at the last pair.
	var last int64 = -1
	n := 0
	for _, e := range ct.TraceEvents {
		if e.Name != "chunk" || e.Ph != "B" {
			continue
		}
		if a := numArg(e.Args, "arg0"); a <= last {
			t.Fatalf("survivor order broken: %d after %d", a, last)
		} else {
			last = a
		}
		n++
	}
	if last != pairs-1 {
		t.Errorf("newest surviving chunk = %d, want %d", last, pairs-1)
	}
	if n != capacity/2 {
		t.Errorf("%d surviving pairs, want %d", n, capacity/2)
	}
	if ct.OtherData["trace_dropped"] < wantDropped {
		t.Errorf("otherData.trace_dropped = %d, want >= %d", ct.OtherData["trace_dropped"], wantDropped)
	}
}

func TestTraceOverflowOrphanSkipped(t *testing.T) {
	// Capacity 3 with two B/E pairs: the first pair's B is evicted, so
	// the ring holds E B E. The orphaned E must be sanitized away (and
	// counted), leaving a loadable file with one matched pair.
	tr := NewTracer(1, 3)
	tr.Begin(0, SpanRegion, 0, 0)
	tr.End(0, SpanRegion)
	tr.Begin(0, SpanRegion, 1, 0)
	tr.End(0, SpanRegion)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	ct := parseChrome(t, buf.Bytes())
	checkStructure(t, ct)
	b, e := 0, 0
	for _, ev := range ct.TraceEvents {
		if ev.Name == "region" {
			switch ev.Ph {
			case "B":
				b++
			case "E":
				e++
			}
		}
	}
	if b != 1 || e != 1 {
		t.Errorf("survived %d B / %d E, want 1/1", b, e)
	}
	if ct.OtherData["trace_dropped"] == 0 {
		t.Error("orphan not counted as dropped")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Begin(0, SpanRegion, 0, 0)
	tr.End(0, SpanRegion)
	tr.Instant(0, SpanChunk, 0, 0)
	tr.Reset()
	if tr.Threads() != 0 || tr.Dropped() != 0 || tr.Events() != 0 {
		t.Error("nil tracer has state")
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Instant(0, SpanChunk, int64(i), 0)
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops before reset")
	}
	tr.Reset()
	if tr.Events() != 0 || tr.Dropped() != 0 {
		t.Error("reset left events or drops")
	}
	tr.Begin(0, SpanRegion, 0, 0)
	tr.End(0, SpanRegion)
	if tr.Events() != 2 {
		t.Errorf("events after reset = %d", tr.Events())
	}
}

func TestTraceSinkMultiProcess(t *testing.T) {
	sink := NewTraceSink(32)
	a := sink.New("atomic t=2", 2)
	b := sink.New("keeper t=1", 1)
	a.Begin(1, SpanRegion, 0, 0)
	a.End(1, SpanRegion)
	b.Instant(0, SpanDrain, 3, 0)
	if sink.Len() != 2 {
		t.Fatalf("sink has %d tracers", sink.Len())
	}

	var buf bytes.Buffer
	if err := sink.WriteChrome(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	ct := parseChrome(t, buf.Bytes())
	checkStructure(t, ct)

	pids := map[int]bool{}
	procNames := 0
	for _, e := range ct.TraceEvents {
		pids[e.Pid] = true
		if e.Name == "process_name" {
			procNames++
		}
	}
	if len(pids) != 2 || procNames != 2 {
		t.Errorf("pids %v, process_name events %d", pids, procNames)
	}
	if sink.Dropped() != 0 {
		t.Errorf("sink dropped %d", sink.Dropped())
	}
}

func TestSpanKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := SpanKind(0); k < numSpanKinds; k++ {
		n := k.String()
		if n == "" || seen[n] {
			t.Errorf("span kind %d name %q", k, n)
		}
		seen[n] = true
	}
}

package telemetry

import "time"

// Event is one structured diagnostic record: the anomaly detector emits
// them when a streaming baseline is breached, the flight recorder emits
// them around panics and dumps, and both feed every attached EventSink.
// Events are plain data — JSON-marshalable as-is — so sinks can ring-
// buffer, log, or ship them without knowing who produced them.
type Event struct {
	// Seq is a process-wide monotonically increasing sequence number,
	// assigned by the first ring the event lands in (0 until then).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock emission time.
	Time time.Time `json:"time"`
	// Source identifies the producer: "anomaly", "panic", "flight".
	Source string `json:"source"`
	// Strategy is the reducer strategy the event is about, when any.
	Strategy string `json:"strategy,omitempty"`
	// Metric is the derived metric that tripped ("cas-retry-rate",
	// "barrier-share", "wall-per-region", ...) for anomaly events.
	Metric string `json:"metric,omitempty"`
	// Counter names the dominant deviating raw counter the event is
	// attributed to (e.g. "cas-retries"), the hook an operator greps for.
	Counter string `json:"counter,omitempty"`
	// Value, Mean and Sigma describe the observation against its
	// baseline: the observed value, the baseline mean, and the baseline
	// standard deviation the z-score was computed with.
	Value float64 `json:"value,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Z is the z-score that crossed the detector threshold.
	Z float64 `json:"z,omitempty"`
	// Suggestion is the remediation hint attached by the attribution
	// table ("advisor suggests block or binned+atomic").
	Suggestion string `json:"suggestion,omitempty"`
	// Message is the ready-to-log human-readable rendering.
	Message string `json:"message"`
}

// EventSink consumes structured diagnostic events. Implementations must
// be safe for concurrent Emit calls; Emit must not block for long (it
// runs on the poller or the panicking goroutine).
type EventSink interface {
	Emit(Event)
}

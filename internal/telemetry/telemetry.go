// Package telemetry is the runtime observability substrate of the SPRAY
// reproduction: per-thread, cache-line-padded counter shards that the
// reduction strategies bump from their hot paths, recorders that
// aggregate the shards per reducer instance, and an expvar-backed export
// for long-running processes (export.go).
//
// Design constraints, in priority order:
//
//  1. A reducer with no recorder attached must pay at most a nil check
//     per instrumented event — instrumentation is strictly opt-in and the
//     disabled path differs from an uninstrumented build only by
//     predictable not-taken branches.
//  2. Enabled counters must not introduce false sharing between team
//     members: each thread writes its own shard, padded out to two cache
//     lines.
//  3. Snapshots must be safe to take while a region is running (the live
//     expvar export reads concurrently): slots are atomic, single-writer,
//     many-reader.
package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"spray/internal/hotspot"
)

// Kind enumerates the event counters a strategy can report. One shard
// carries one slot per kind; strategies bump only the kinds that exist in
// their design (a dense reducer has no keeper queues to count).
type Kind uint8

const (
	// Updates counts element-wise Add calls.
	Updates Kind = iota
	// AddNRuns counts bulk contiguous-run submissions (AddN calls).
	AddNRuns
	// ScatterRuns counts bulk gathered-batch submissions (Scatter calls).
	ScatterRuns
	// BulkElems counts elements delivered through AddN/Scatter batches.
	BulkElems
	// CASRetries counts failed compare-and-swap attempts: atomic-strategy
	// (and adaptive atomic-regime) value CAS loops that had to re-read,
	// and block-cas claim CASes that lost the ownership race.
	CASRetries
	// BlockClaims counts blocks claimed in place inside the original
	// array (block-lock / block-cas modes).
	BlockClaims
	// BlockFallbacks counts full private fallback blocks materialized
	// because the block was privatized (block-private mode) or already
	// owned by another thread.
	BlockFallbacks
	// PoolReuses counts fallback blocks served from the cross-region
	// buffer pool instead of a fresh allocation.
	PoolReuses
	// KeeperOwned counts keeper updates applied directly to the thread's
	// own static ownership range.
	KeeperOwned
	// KeeperForeign counts keeper updates enqueued with a foreign owner.
	KeeperForeign
	// KeeperDrained counts queued update requests applied at finalize.
	KeeperDrained
	// Entries counts key-value entries held at Done (map/B-tree
	// strategies) or update-log records (ordered strategy).
	Entries
	// Escalations counts adaptive blocks promoted from the atomic regime
	// to a private copy.
	Escalations
	// ScatterCoalesced counts duplicate scatter contributions merged
	// inside a write-combining bin before reaching the strategy (each
	// merged pair counts one: n updates to one index coalesce to n-1).
	ScatterCoalesced
	// BinFlushes counts write-combining bins flushed to a strategy —
	// whether because the bin filled, the live-bin bound was hit, or the
	// region ended.
	BinFlushes
	// KeeperMidDrains counts mid-region mailbox drains: chunk boundaries
	// at which an owner found (and applied) inbound foreign parcels
	// before Finalize.
	KeeperMidDrains
	// TraceDropped counts span events evicted from a full trace ring
	// buffer (oldest-first) before they could be exported.
	TraceDropped
	// PlanHits counts parallel regions the plan-compiled reducer executed
	// through its compiled plan (race-free owned loops + exchange merge,
	// inner strategy bypassed).
	PlanHits
	// PlanMisses counts regions the plan-compiled reducer ran in record
	// mode (forwarding to the inner strategy while capturing the update
	// stream) — the regions that pay the inspection cost.
	PlanMisses
	// PlanInvalidations counts executor regions that detected a deviation
	// from the recorded index pattern (unseen index, changed op stream)
	// and fell back to record mode for the next region.
	PlanInvalidations
	// TieredHotHits counts updates absorbed by the tiered wrapper's
	// per-thread hot-set replica cache (no inner-strategy work at all).
	TieredHotHits
	// TieredColdMisses counts updates that fell through the tiered
	// wrapper's replica cache to the inner (cold-tail) strategy.
	TieredColdMisses
	// TieredPromotions counts cache lines installed into a tiered hot
	// set — profile-guided seeds at region start plus online promotions
	// at rebalance points.
	TieredPromotions
	// TieredEvictions counts hot-set slots whose accumulated partial was
	// flushed through the inner strategy because a hotter line displaced
	// the incumbent (the correctness-preserving demotion path).
	TieredEvictions
	// Steals counts successful work-steal acquisitions under the steal
	// schedule: chunks a dry member took FIFO from a victim's deque.
	Steals
	// StealFails counts steal probes that came back empty — the victim's
	// deque was empty or the top CAS lost to a competing thief.
	StealFails
	// StealIters counts loop iterations transferred by successful steals
	// (the runtime's unit of stolen work; multiply by the element size of
	// the workload for bytes).
	StealIters
	// GrainSplits counts oversized chunks the adaptive grain controller
	// split after a steal: the far half goes back on the thief's deque
	// (stealable again), the near half executes immediately.
	GrainSplits
	// GrainCoalesces counts adjacent chunks the grain controller merged
	// on the owner's pop path while the deque's steal rate was zero —
	// each merged pair counts one.
	GrainCoalesces
	// ChunksExecuted counts loop chunks executed under the steal
	// schedule; read per thread (Recorder.PerThread) it is the chunk-level
	// load-balance picture of the region.
	ChunksExecuted

	// NumKinds is the number of counter kinds; it sizes shards and
	// snapshots.
	NumKinds
)

var kindNames = [NumKinds]string{
	Updates:           "updates",
	AddNRuns:          "addn-runs",
	ScatterRuns:       "scatter-runs",
	BulkElems:         "bulk-elems",
	CASRetries:        "cas-retries",
	BlockClaims:       "block-claims",
	BlockFallbacks:    "block-fallbacks",
	PoolReuses:        "pool-reuses",
	KeeperOwned:       "keeper-owned",
	KeeperForeign:     "keeper-foreign",
	KeeperDrained:     "keeper-drained",
	Entries:           "entries",
	Escalations:       "escalations",
	ScatterCoalesced:  "scatter-coalesced",
	BinFlushes:        "bin-flushes",
	KeeperMidDrains:   "keeper-midregion-drains",
	TraceDropped:      "trace-dropped",
	PlanHits:          "plan-hits",
	PlanMisses:        "plan-misses",
	PlanInvalidations: "plan-invalidations",
	TieredHotHits:     "tiered-hot-hits",
	TieredColdMisses:  "tiered-cold-misses",
	TieredPromotions:  "tiered-promotions",
	TieredEvictions:   "tiered-evictions",
	Steals:            "steals",
	StealFails:        "steal-fails",
	StealIters:        "steal-iters",
	GrainSplits:       "grain-splits",
	GrainCoalesces:    "grain-coalesces",
	ChunksExecuted:    "chunks-executed",
}

// String returns the stable external name of the counter kind (used in
// tables, JSON and the expvar export).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName resolves an external counter name back to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// histSlot is one latency histogram inside a shard: log-bucketed counts
// plus exact count/sum/max. All slots are atomic for live snapshot reads;
// only the owning thread writes.
type histSlot struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // ns
	max     atomic.Uint64 // ns
}

// shardPayload is the byte size of one shard's counter, histogram and
// sampling slots; the pad rounds the struct up to a multiple of 128 bytes
// (two cache lines, so adjacent-line prefetching cannot couple
// neighboring shards either).
const shardPayload = int(NumKinds)*8 + int(NumHKinds)*(HistBuckets+3)*8 + int(NumHKinds)*8 + 8

// Shard is one thread's private counter block. All increment methods are
// nil-safe — a nil *Shard is the "telemetry off" state and costs one
// branch — and writes are atomic so concurrent snapshot reads (live
// export) are race-free. Only the owning thread may increment.
type Shard struct {
	c [NumKinds]atomic.Uint64
	h [NumHKinds]histSlot
	// hot is this thread's index-space contention profiler shard, nil
	// unless a Profiler is attached (AttachHotspot). It rides inside the
	// telemetry shard so strategies resolve both gates with the one
	// Shard(tid) call they already make in Private.
	hot *hotspot.Shard
	// The pad sits before the last field: a zero-length array at the end
	// of a struct would itself be padded (to keep past-the-end pointers
	// out of the next object), breaking the 128-byte rounding exactly
	// when the payload already is a multiple.
	_ [(-shardPayload) & 127]byte
	// tick is the sampling decimation state per latency kind. It is a
	// plain counter: only the owning thread touches it, and snapshots
	// never read it.
	tick [NumHKinds]uint64
}

// Inc adds one to counter k.
func (s *Shard) Inc(k Kind) {
	if s != nil {
		s.c[k].Add(1)
	}
}

// Add adds n to counter k.
func (s *Shard) Add(k Kind, n int) {
	if s != nil {
		s.c[k].Add(uint64(n))
	}
}

// IncRun records one bulk batch of n elements: one run of kind k plus n
// BulkElems, behind a single nil check.
func (s *Shard) IncRun(k Kind, n int) {
	if s != nil {
		s.c[k].Add(1)
		s.c[BulkElems].Add(uint64(n))
	}
}

// Count returns the current value of counter k (0 on a nil shard).
func (s *Shard) Count(k Kind) uint64 {
	if s == nil {
		return 0
	}
	return s.c[k].Load()
}

// Hot returns the attached hotspot shard, or nil when the shard itself
// is nil or no profiler is attached. Strategies cache the result next
// to their telemetry shard in Private, so the profiler-off path is one
// predictable nil check per conflict event.
func (s *Shard) Hot() *hotspot.Shard {
	if s == nil {
		return nil
	}
	return s.hot
}

// Sample reports whether the next event of latency kind k should be
// timed: true for the first event after attach/reset and then every
// SamplePeriod-th. Nil shards never sample, so the hook disappears
// behind the same gate as the counters. Only the owning thread may call
// Sample.
func (s *Shard) Sample(k HKind) bool {
	if s == nil {
		return false
	}
	t := s.tick[k]
	s.tick[k] = t + 1
	return t%SamplePeriod == 0
}

// Observe records one latency sample into kind k's histogram. Nil-safe.
func (s *Shard) Observe(k HKind, d time.Duration) {
	if s == nil {
		return
	}
	var ns uint64
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	h := &s.h[k]
	h.buckets[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Hist copies latency kind k's histogram (zero on a nil shard).
func (s *Shard) Hist(k HKind) HistSnapshot {
	var out HistSnapshot
	if s == nil {
		return out
	}
	h := &s.h[k]
	for b := range h.buckets {
		out.Buckets[b] = h.buckets[b].Load()
	}
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	out.Max = h.max.Load()
	return out
}

// snapshot copies the shard's slots.
func (s *Shard) snapshot() Snapshot {
	var out Snapshot
	for k := range s.c {
		out[k] = s.c[k].Load()
	}
	return out
}

// reset zeroes the shard, including histograms and sampling state.
func (s *Shard) reset() {
	for k := range s.c {
		s.c[k].Store(0)
	}
	for k := range s.h {
		h := &s.h[k]
		for b := range h.buckets {
			h.buckets[b].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		s.tick[k] = 0
	}
}

// Recorder aggregates the per-thread shards of one reducer instance. A
// nil *Recorder is valid everywhere and hands out nil shards — reducers
// hold a possibly-nil recorder and stay on the uninstrumented fast path
// until one is attached.
type Recorder struct {
	name   string
	shards []Shard
}

// NewRecorder creates a recorder for a reducer with the given strategy
// name and team size.
func NewRecorder(name string, threads int) *Recorder {
	if threads < 1 {
		panic(fmt.Sprintf("telemetry: recorder needs a positive thread count, got %d", threads))
	}
	return &Recorder{name: name, shards: make([]Shard, threads)}
}

// Name returns the strategy name the recorder was created for.
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Threads returns the number of per-thread shards.
func (r *Recorder) Threads() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Shard returns thread tid's counter shard, or nil when the recorder
// itself is nil — the single nil check strategies hoist into Private.
func (r *Recorder) Shard(tid int) *Shard {
	if r == nil {
		return nil
	}
	return &r.shards[tid]
}

// AttachHotspot points every shard at the matching shard of the given
// index-space contention profiler (nil detaches). Call it from the same
// setup context that attaches the recorder itself — before the team
// runs regions — so accessors resolve a settled pointer in Private.
func (r *Recorder) AttachHotspot(p *hotspot.Profiler) {
	if r == nil {
		return
	}
	for t := range r.shards {
		r.shards[t].hot = p.Shard(t)
	}
}

// Snapshot sums all shards into one consistent-enough view (counters are
// read atomically slot by slot; a snapshot taken mid-region may split a
// logically paired update across slots, which is inherent to live reads).
func (r *Recorder) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	for t := range r.shards {
		out.Merge(r.shards[t].snapshot())
	}
	return out
}

// Hist merges latency kind k's per-thread histogram shards into one
// snapshot — by construction identical to the histogram a single thread
// would have accumulated over the union of the samples.
func (r *Recorder) Hist(k HKind) HistSnapshot {
	var out HistSnapshot
	if r == nil {
		return out
	}
	for t := range r.shards {
		out.Merge(r.shards[t].Hist(k))
	}
	return out
}

// Hists returns all merged latency histograms, indexed by HKind.
func (r *Recorder) Hists() [NumHKinds]HistSnapshot {
	var out [NumHKinds]HistSnapshot
	if r == nil {
		return out
	}
	for k := HKind(0); k < NumHKinds; k++ {
		out[k] = r.Hist(k)
	}
	return out
}

// PerThread returns one snapshot per shard, for load-skew diagnostics.
func (r *Recorder) PerThread() []Snapshot {
	if r == nil {
		return nil
	}
	out := make([]Snapshot, len(r.shards))
	for t := range r.shards {
		out[t] = r.shards[t].snapshot()
	}
	return out
}

// Reset zeroes every shard.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for t := range r.shards {
		r.shards[t].reset()
	}
}

// Snapshot is a point-in-time copy of one counter set, indexed by Kind.
type Snapshot [NumKinds]uint64

// Get returns counter k.
func (s Snapshot) Get(k Kind) uint64 { return s[k] }

// Merge adds other into s slot-wise.
func (s *Snapshot) Merge(other Snapshot) {
	for k := range s {
		s[k] += other[k]
	}
}

// Total returns the sum over all slots (a cheap "anything recorded?"
// probe).
func (s Snapshot) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// Delta returns the slot-wise difference s - prev, clamping each slot at
// zero — the per-interval view a scraper or the anomaly detector derives
// from two successive snapshots of monotonically increasing counters. A
// slot that went backwards (recorder Reset between the snapshots) reads
// as zero rather than wrapping.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var out Snapshot
	for k, v := range s {
		if v > prev[k] {
			out[k] = v - prev[k]
		}
	}
	return out
}

// Map returns the nonzero counters keyed by their external names — the
// form embedded in bench points and the expvar export.
func (s Snapshot) Map() map[string]uint64 {
	return s.MapInto(make(map[string]uint64))
}

// MapInto fills dst with the nonzero counters keyed by their external
// names, removing stale keys, and returns dst (allocating it only when
// nil). Steady-state callers that reuse dst across snapshots — the 1 Hz
// expvar scrape path — pay zero allocations once the map has seen every
// key it will hold: kind names are preallocated package constants and
// deleting plus re-adding keys reuses a Go map's buckets.
func (s Snapshot) MapInto(dst map[string]uint64) map[string]uint64 {
	if dst == nil {
		dst = make(map[string]uint64)
	}
	for k, v := range s {
		name := Kind(k).String()
		if v != 0 {
			dst[name] = v
		} else {
			delete(dst, name)
		}
	}
	return dst
}

// String renders the nonzero counters as "name=value" pairs in kind
// order.
func (s Snapshot) String() string {
	var b strings.Builder
	for k, v := range s {
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", Kind(k), v)
	}
	if b.Len() == 0 {
		return "(no events)"
	}
	return b.String()
}

// SortedNames returns all counter names in kind order — the canonical
// column order for emitters that want stable headers.
func SortedNames() []string {
	out := make([]string, NumKinds)
	for k := range out {
		out[k] = Kind(k).String()
	}
	return out
}

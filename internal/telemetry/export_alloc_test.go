package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestExportRenderZeroSteadyStateAlloc pins the scrape-path budget: after
// the first render has sized the cached maps and buffer, a steady-state
// expvar render must not allocate. A 1 Hz Prometheus sidecar or spraymon
// scraping a long-lived service must not turn into GC pressure.
func TestExportRenderZeroSteadyStateAlloc(t *testing.T) {
	r1 := NewRecorder("alloc-probe-a", 2)
	r2 := NewRecorder("alloc-probe-b", 2)
	Register(r1)
	Register(r2)
	t.Cleanup(func() { Unregister(r1); Unregister(r2) })
	r1.Shard(0).Add(Updates, 11)
	r1.Shard(1).Add(CASRetries, 3)
	r2.Shard(0).Add(KeeperForeign, 7)

	exportRender() // warm the caches
	if allocs := testing.AllocsPerRun(100, func() { exportRender() }); allocs != 0 {
		t.Errorf("steady-state exportRender allocates %.1f/op, want 0", allocs)
	}

	// The payload must still be the valid registry view.
	var view struct {
		Recorders []struct {
			Name     string            `json:"name"`
			Counters map[string]uint64 `json:"counters"`
		} `json:"recorders"`
		Totals map[string]uint64 `json:"totals"`
	}
	if err := json.Unmarshal(exportRender(), &view); err != nil {
		t.Fatalf("render not valid JSON: %v", err)
	}
	if view.Totals["updates"] < 11 || view.Totals["keeper-foreign"] < 7 {
		t.Errorf("totals %v", view.Totals)
	}

	// Counters moving between scrapes must not reintroduce allocations:
	// MapInto rewrites values into the same buckets.
	r1.Shard(0).Add(Updates, 1)
	exportRender()
	if allocs := testing.AllocsPerRun(100, func() {
		r1.Shard(0).Add(Updates, 1)
		exportRender()
	}); allocs != 0 {
		t.Errorf("render with moving counters allocates %.1f/op, want 0", allocs)
	}
}

func TestSnapshotMapIntoReusesDestination(t *testing.T) {
	var s Snapshot
	s[Updates] = 5
	s[CASRetries] = 2
	dst := make(map[string]uint64, NumKinds)
	if got := s.MapInto(dst); len(got) != 2 || got["updates"] != 5 {
		t.Fatalf("MapInto = %v", got)
	}
	// A key that drops to zero must vanish from the reused map.
	s[CASRetries] = 0
	s[Updates] = 9
	got := s.MapInto(dst)
	if _, ok := got["cas-retries"]; ok {
		t.Error("stale zeroed key survived MapInto")
	}
	if got["updates"] != 9 {
		t.Errorf("updates = %d, want 9", got["updates"])
	}
	if allocs := testing.AllocsPerRun(100, func() { s.MapInto(dst) }); allocs != 0 {
		t.Errorf("warm MapInto allocates %.1f/op, want 0", allocs)
	}
	// nil destination still works (allocates a fresh map).
	if got := s.MapInto(nil); got["updates"] != 9 {
		t.Errorf("MapInto(nil) = %v", got)
	}
}

func TestSnapshotDeltaClampsAtZero(t *testing.T) {
	var cur, prev Snapshot
	cur[Updates], prev[Updates] = 10, 4
	cur[CASRetries], prev[CASRetries] = 1, 5 // counter reset between polls
	d := cur.Delta(prev)
	if d[Updates] != 6 {
		t.Errorf("delta updates = %d, want 6", d[Updates])
	}
	if d[CASRetries] != 0 {
		t.Errorf("reset counter delta = %d, want clamp to 0", d[CASRetries])
	}
}

// TestTelemetryConcurrentRegisterDuringScrape hammers Register/Unregister
// while scrapes render, under -race: the registry mutation and the cached
// render maps must serialize under one lock.
func TestTelemetryConcurrentRegisterDuringScrape(t *testing.T) {
	const workers, iters = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := NewRecorder("churn-probe", 1)
				Register(r)
				r.Shard(0).Add(Updates, 1)
				Unregister(r)
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				out := exportVar{}.String()
				if !strings.HasPrefix(out, `{"recorders":[`) {
					t.Errorf("scrape corrupted: %.60s", out)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Churned recorders must leave no cache entries behind.
	regMu.Lock()
	n := len(exportMaps)
	live := len(recorders)
	regMu.Unlock()
	if n > live {
		t.Errorf("render cache holds %d entries for %d live recorders", n, live)
	}
}

package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The export registry: every Recorder that spray.Instrument attaches is
// registered here so one expvar variable can render the live counters of
// every instrumented reducer in the process. Registration is explicit —
// constructing a Recorder alone does not publish anything.
//
// regMu also guards the scrape render cache below: a scrape holds it for
// the whole snapshot-and-render, so Register/Unregister during an
// in-flight scrape serialize cleanly instead of racing the cached maps.
var (
	regMu     sync.Mutex
	recorders []*Recorder
	published = map[string]bool{}

	// Render cache for the expvar export path. A long-lived process is
	// scraped forever (1 Hz Prometheus sidecars, spraymon), so the
	// per-scrape snapshot→map conversion reuses one map per recorder and
	// one byte buffer: after the first scrape has sized everything, a
	// steady-state render allocates nothing (MapInto reuses map buckets,
	// strconv appends into the retained buffer). Entries are dropped on
	// Unregister so detached recorders are not kept alive.
	exportMaps  = map[*Recorder]map[string]uint64{}
	exportTotal map[string]uint64
	exportBuf   []byte
	exportKeys  []string
)

// Register adds r to the live-export registry. Registering the same
// recorder twice is a no-op.
func Register(r *Recorder) {
	if r == nil {
		return
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range recorders {
		if have == r {
			return
		}
	}
	recorders = append(recorders, r)
}

// Unregister removes r from the live-export registry. The vacated tail
// slot is cleared so the backing array does not keep the recorder (and
// its shards) alive — repeated Instrument/Detach cycles, as in
// per-benchmark-point instrumentation, must not accumulate anything. The
// render cache entry is dropped for the same reason.
func Unregister(r *Recorder) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(exportMaps, r)
	for i, have := range recorders {
		if have == r {
			copy(recorders[i:], recorders[i+1:])
			recorders[len(recorders)-1] = nil
			recorders = recorders[:len(recorders)-1]
			return
		}
	}
}

// Registered returns a copy of the current registry, newest last.
func Registered() []*Recorder {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Recorder, len(recorders))
	copy(out, recorders)
	return out
}

// Publish exposes the registry under the given expvar name (conventionally
// "spray"). The exported value is recomputed on every /debug/vars scrape:
//
//	{"recorders": [{"name": ..., "counters": {...}}, ...],
//	 "totals": {...}}
//
// Publishing the same name twice is a no-op (expvar itself panics on
// duplicates, so the guard keeps Publish idempotent for CLI wiring).
func Publish(name string) {
	regMu.Lock()
	if published[name] {
		regMu.Unlock()
		return
	}
	published[name] = true
	regMu.Unlock()
	expvar.Publish(name, exportVar{})
}

// exportVar renders the registry as JSON on demand. It implements
// expvar.Var via String — not expvar.Func — so the whole render happens
// under regMu inside one call: expvar marshals the returned string by
// embedding it verbatim, leaving no window where a second scrape could
// mutate shared cached maps while the first is still being serialized.
type exportVar struct{}

func (exportVar) String() string {
	regMu.Lock()
	defer regMu.Unlock()
	// The []byte→string copy must happen under the lock too: the returned
	// slice aliases the shared cached buffer, which the next scrape
	// rewrites in place.
	return string(exportRenderLocked())
}

// exportRender builds the JSON scrape payload into the cached buffer and
// returns it. Steady state (registry unchanged since the last scrape) is
// allocation-free; the only per-scrape allocation on the export path is
// the []byte→string copy in exportVar.String, which the expvar interface
// forces. Callers must not retain the returned slice across scrapes.
func exportRender() []byte {
	regMu.Lock()
	defer regMu.Unlock()
	return exportRenderLocked()
}

func exportRenderLocked() []byte {
	var total Snapshot
	buf := exportBuf[:0]
	buf = append(buf, `{"recorders":[`...)
	for i, r := range recorders {
		snap := r.Snapshot()
		total.Merge(snap)
		m, ok := exportMaps[r]
		if !ok {
			m = make(map[string]uint64, NumKinds)
			exportMaps[r] = m
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, r.Name())
		buf = append(buf, `,"counters":`...)
		buf = appendCounterJSON(buf, snap.MapInto(m))
		buf = append(buf, '}')
	}
	buf = append(buf, `],"totals":`...)
	exportTotal = total.MapInto(exportTotal)
	buf = appendCounterJSON(buf, exportTotal)
	buf = append(buf, '}')
	exportBuf = buf
	return buf
}

// appendCounterJSON renders a counter map as a JSON object with keys in
// sorted order (stable scrape output), reusing the package key scratch
// slice so steady-state renders stay allocation-free.
func appendCounterJSON(buf []byte, m map[string]uint64) []byte {
	keys := exportKeys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	exportKeys = keys
	buf = append(buf, '{')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendQuote(buf, k)
		buf = append(buf, ':')
		buf = strconv.AppendUint(buf, m[k], 10)
	}
	return append(buf, '}')
}

// Handler returns the expvar scrape handler (the same payload that
// /debug/vars serves), for embedding in an existing mux.
func Handler() http.Handler { return expvar.Handler() }

// Server is a running metrics listener. Addr is the bound address to
// scrape; Close shuts the listener down — tests and embedders must close
// it rather than leak the port for the process lifetime.
type Server struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.addr }

// Close immediately shuts down the server and closes its listener.
// Closing twice is safe.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP server on addr — pass ":0" or "localhost:0" for
// an ephemeral port — serving h (nil selects http.DefaultServeMux, where
// expvar registers /debug/vars). The server carries read-header and idle
// timeouts so a stuck or slowloris client cannot pin a connection to the
// long-lived metrics port forever, and the returned handle exposes the
// bound address and a shutdown method.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	if h == nil {
		h = http.DefaultServeMux
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln) //nolint:errcheck — ends when the handle is closed
	return &Server{srv: srv, addr: ln.Addr().String()}, nil
}

package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// The export registry: every Recorder that spray.Instrument attaches is
// registered here so one expvar variable can render the live counters of
// every instrumented reducer in the process. Registration is explicit —
// constructing a Recorder alone does not publish anything.
var (
	regMu     sync.Mutex
	recorders []*Recorder
	published = map[string]bool{}
)

// Register adds r to the live-export registry. Registering the same
// recorder twice is a no-op.
func Register(r *Recorder) {
	if r == nil {
		return
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range recorders {
		if have == r {
			return
		}
	}
	recorders = append(recorders, r)
}

// Unregister removes r from the live-export registry. The vacated tail
// slot is cleared so the backing array does not keep the recorder (and
// its shards) alive — repeated Instrument/Detach cycles, as in
// per-benchmark-point instrumentation, must not accumulate anything.
func Unregister(r *Recorder) {
	regMu.Lock()
	defer regMu.Unlock()
	for i, have := range recorders {
		if have == r {
			copy(recorders[i:], recorders[i+1:])
			recorders[len(recorders)-1] = nil
			recorders = recorders[:len(recorders)-1]
			return
		}
	}
}

// Registered returns a copy of the current registry, newest last.
func Registered() []*Recorder {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Recorder, len(recorders))
	copy(out, recorders)
	return out
}

// Publish exposes the registry under the given expvar name (conventionally
// "spray"). The exported value is recomputed on every /debug/vars scrape:
//
//	{"recorders": [{"name": ..., "counters": {...}}, ...],
//	 "totals": {...}}
//
// Publishing the same name twice is a no-op (expvar itself panics on
// duplicates, so the guard keeps Publish idempotent for CLI wiring).
func Publish(name string) {
	regMu.Lock()
	if published[name] {
		regMu.Unlock()
		return
	}
	published[name] = true
	regMu.Unlock()
	expvar.Publish(name, expvar.Func(exportValue))
}

// exportValue builds the JSON-marshalable live view of all registered
// recorders.
func exportValue() any {
	type recView struct {
		Name     string            `json:"name"`
		Counters map[string]uint64 `json:"counters"`
	}
	var total Snapshot
	views := make([]recView, 0, 8)
	for _, r := range Registered() {
		snap := r.Snapshot()
		total.Merge(snap)
		views = append(views, recView{Name: r.Name(), Counters: snap.Map()})
	}
	return map[string]any{
		"recorders": views,
		"totals":    total.Map(),
	}
}

// Handler returns the expvar scrape handler (the same payload that
// /debug/vars serves), for embedding in an existing mux.
func Handler() http.Handler { return expvar.Handler() }

// Serve starts an HTTP server on addr exposing the process's expvar
// variables (including everything Publish exported) at /debug/vars. It
// returns the bound address — pass ":0" for an ephemeral port — and keeps
// serving until the process exits.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck — runs for process lifetime
	return ln.Addr().String(), nil
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestShardPadding(t *testing.T) {
	var s [2]Shard
	if sz := unsafe.Sizeof(s[0]); sz%128 != 0 {
		t.Errorf("shard size %d is not a multiple of 128", sz)
	}
	// Adjacent shards must not share a cache line pair.
	a := uintptr(unsafe.Pointer(&s[0]))
	b := uintptr(unsafe.Pointer(&s[1]))
	if b-a < 128 {
		t.Errorf("adjacent shards %d bytes apart", b-a)
	}
}

func TestNilShardAndRecorderAreSafe(t *testing.T) {
	var s *Shard
	s.Inc(Updates)
	s.Add(CASRetries, 5)
	s.IncRun(AddNRuns, 100)
	if s.Count(Updates) != 0 {
		t.Error("nil shard counted")
	}
	var r *Recorder
	if r.Shard(3) != nil {
		t.Error("nil recorder handed out a shard")
	}
	if r.Name() != "" || r.Threads() != 0 {
		t.Error("nil recorder has identity")
	}
	if r.Snapshot().Total() != 0 || r.PerThread() != nil {
		t.Error("nil recorder has data")
	}
	r.Reset() // must not panic
}

func TestRecorderAggregatesShards(t *testing.T) {
	r := NewRecorder("dense", 3)
	r.Shard(0).Inc(Updates)
	r.Shard(0).Inc(Updates)
	r.Shard(1).Add(Updates, 5)
	r.Shard(2).IncRun(AddNRuns, 64)
	snap := r.Snapshot()
	if got := snap.Get(Updates); got != 7 {
		t.Errorf("updates = %d, want 7", got)
	}
	if snap.Get(AddNRuns) != 1 || snap.Get(BulkElems) != 64 {
		t.Errorf("bulk counters %v", snap.Map())
	}
	per := r.PerThread()
	if len(per) != 3 || per[0].Get(Updates) != 2 || per[1].Get(Updates) != 5 {
		t.Errorf("per-thread %v", per)
	}
	if snap.Total() != 7+1+64 {
		t.Errorf("total = %d", snap.Total())
	}
	r.Reset()
	if r.Snapshot().Total() != 0 {
		t.Error("reset left counts")
	}
}

func TestSnapshotMapAndString(t *testing.T) {
	var s Snapshot
	s[Updates] = 10
	s[CASRetries] = 3
	m := s.Map()
	if len(m) != 2 || m["updates"] != 10 || m["cas-retries"] != 3 {
		t.Errorf("map %v", m)
	}
	str := s.String()
	if !strings.Contains(str, "updates=10") || !strings.Contains(str, "cas-retries=3") {
		t.Errorf("string %q", str)
	}
	var empty Snapshot
	if empty.String() != "(no events)" {
		t.Errorf("empty string %q", empty.String())
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	names := SortedNames()
	if len(names) != int(NumKinds) {
		t.Fatalf("%d names for %d kinds", len(names), NumKinds)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || strings.HasPrefix(n, "kind(") {
			t.Errorf("kind %d has no name", i)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		k, ok := KindByName(n)
		if !ok || int(k) != i {
			t.Errorf("KindByName(%q) = %v, %v", n, k, ok)
		}
	}
	if _, ok := KindByName("no-such-counter"); ok {
		t.Error("bogus name resolved")
	}
}

func TestConcurrentShardWritesWithLiveSnapshots(t *testing.T) {
	// One writer goroutine per shard plus a concurrent snapshot reader:
	// must be race-clean (run under -race) and lose no increments.
	const threads, per = 4, 10000
	r := NewRecorder("atomic", threads)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // live reader, as the expvar export would
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		writers.Add(1)
		go func(sh *Shard) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				sh.Inc(Updates)
			}
		}(r.Shard(tid))
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := r.Snapshot().Get(Updates); got != threads*per {
		t.Errorf("updates = %d, want %d", got, threads*per)
	}
}

func TestRegistryAndExport(t *testing.T) {
	r1 := NewRecorder("dense", 2)
	r2 := NewRecorder("keeper", 2)
	Register(r1)
	Register(r1) // idempotent
	Register(r2)
	defer Unregister(r1)
	defer Unregister(r2)
	n := 0
	for _, r := range Registered() {
		if r == r1 || r == r2 {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("registry holds %d of the 2 recorders", n)
	}
	r1.Shard(0).Add(Updates, 11)
	r2.Shard(1).Add(KeeperForeign, 7)

	Publish("spray-test")
	Publish("spray-test") // must not panic (expvar rejects duplicates)

	req := httptest.NewRequest(http.MethodGet, "/debug/vars", nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("expvar payload: %v", err)
	}
	raw, ok := vars["spray-test"]
	if !ok {
		t.Fatalf("published variable missing from %v", rec.Body.String())
	}
	var view struct {
		Recorders []struct {
			Name     string            `json:"name"`
			Counters map[string]uint64 `json:"counters"`
		} `json:"recorders"`
		Totals map[string]uint64 `json:"totals"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("export value: %v", err)
	}
	if view.Totals["updates"] < 11 || view.Totals["keeper-foreign"] < 7 {
		t.Errorf("totals %v", view.Totals)
	}
	found := map[string]bool{}
	for _, rv := range view.Recorders {
		found[rv.Name] = true
	}
	if !found["dense"] || !found["keeper"] {
		t.Errorf("recorder views %v", view.Recorders)
	}

	Unregister(r1)
	still := false
	for _, r := range Registered() {
		if r == r1 {
			still = true
		}
	}
	if still {
		t.Error("unregistered recorder still listed")
	}
}

func TestServeBindsAndServes(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

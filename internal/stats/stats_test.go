package stats

import (
	"math"
	"testing"
	"time"
)

func TestOfBasic(t *testing.T) {
	s := Of([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N=%d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("mean=%v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max=%v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median=%v, want 4.5", s.Median)
	}
	// Sample stddev of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev=%v, want %v", s.Stddev, want)
	}
}

func TestOfOddMedianAndSingle(t *testing.T) {
	if m := Of([]float64{3, 1, 2}).Median; m != 2 {
		t.Errorf("odd median=%v", m)
	}
	s := Of([]float64{42})
	if s.Mean != 42 || s.Median != 42 || s.Stddev != 0 {
		t.Errorf("single: %+v", s)
	}
}

func TestOfEmpty(t *testing.T) {
	s := Of(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty: %+v", s)
	}
}

func TestOfDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Of(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestOfDurations(t *testing.T) {
	s := OfDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2 {
		t.Errorf("mean=%v", s.Mean)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup=%v", got)
	}
	if got := Speedup(10, 0); got != 0 {
		t.Errorf("Speedup by zero=%v", got)
	}
}

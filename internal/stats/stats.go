// Package stats computes the summary statistics the benchmark harness
// reports. The paper repeats run-time experiments at least 10 times and
// reports means; we additionally keep min/max/median/stddev so noisy runs
// are visible in the output.
package stats

import (
	"math"
	"sort"
	"time"
)

// Summary describes a set of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	Stddev float64
}

// Of computes a Summary over xs. An empty input yields a zero Summary.
func Of(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// OfDurations converts ds to seconds and summarizes them.
func OfDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Of(xs)
}

// Speedup returns baseline/t, the paper's speedup-over-sequential metric,
// or 0 if t is not positive.
func Speedup(baseline, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return baseline / t
}

package mesh

import "testing"

func TestBuildNeighborsAdjacency(t *testing.T) {
	const ee = 3
	m := NewHex(ee, 1)
	nb := m.BuildNeighbors()
	elem := func(i, j, k int) int32 { return int32(k*ee*ee + j*ee + i) }

	// Interior element (1,1,1) has all six proper neighbors and no BC.
	c := elem(1, 1, 1)
	if nb.BC[c] != 0 {
		t.Errorf("interior BC=%b", nb.BC[c])
	}
	if nb.XiM[c] != elem(0, 1, 1) || nb.XiP[c] != elem(2, 1, 1) {
		t.Errorf("xi neighbors %d/%d", nb.XiM[c], nb.XiP[c])
	}
	if nb.EtaM[c] != elem(1, 0, 1) || nb.EtaP[c] != elem(1, 2, 1) {
		t.Errorf("eta neighbors %d/%d", nb.EtaM[c], nb.EtaP[c])
	}
	if nb.ZetaM[c] != elem(1, 1, 0) || nb.ZetaP[c] != elem(1, 1, 2) {
		t.Errorf("zeta neighbors %d/%d", nb.ZetaM[c], nb.ZetaP[c])
	}

	// Origin corner: symmetry on all minus faces, self-reference.
	o := elem(0, 0, 0)
	wantBC := int32(XiMSymm | EtaMSymm | ZetaMSymm)
	if nb.BC[o] != wantBC {
		t.Errorf("origin BC=%b, want %b", nb.BC[o], wantBC)
	}
	if nb.XiM[o] != o || nb.EtaM[o] != o || nb.ZetaM[o] != o {
		t.Errorf("origin minus-neighbors not self: %d %d %d", nb.XiM[o], nb.EtaM[o], nb.ZetaM[o])
	}

	// Far corner: free on all plus faces.
	f := elem(ee-1, ee-1, ee-1)
	wantBC = int32(XiPFree | EtaPFree | ZetaPFree)
	if nb.BC[f] != wantBC {
		t.Errorf("far BC=%b, want %b", nb.BC[f], wantBC)
	}
}

func TestNeighborsSymmetricRelation(t *testing.T) {
	m := NewHex(4, 1)
	nb := m.BuildNeighbors()
	for e := 0; e < m.NumElem; e++ {
		if n := nb.XiP[e]; int(n) != e && nb.XiM[n] != int32(e) {
			t.Fatalf("xi adjacency not symmetric at %d", e)
		}
		if n := nb.EtaP[e]; int(n) != e && nb.EtaM[n] != int32(e) {
			t.Fatalf("eta adjacency not symmetric at %d", e)
		}
		if n := nb.ZetaP[e]; int(n) != e && nb.ZetaM[n] != int32(e) {
			t.Fatalf("zeta adjacency not symmetric at %d", e)
		}
	}
}

func TestSingleElementMeshAllBoundary(t *testing.T) {
	m := NewHex(1, 1)
	nb := m.BuildNeighbors()
	want := int32(XiMSymm | XiPFree | EtaMSymm | EtaPFree | ZetaMSymm | ZetaPFree)
	if nb.BC[0] != want {
		t.Errorf("BC=%b, want %b", nb.BC[0], want)
	}
	if nb.XiM[0] != 0 || nb.XiP[0] != 0 {
		t.Errorf("self-reference broken")
	}
}

package mesh

// Element face-adjacency and boundary conditions, the connectivity the
// LULESH monotonic artificial-viscosity limiter consumes: each element
// knows its neighbor across each of the six faces (ξ−, ξ+, η−, η+, ζ−,
// ζ+ in LULESH naming, i.e. −x, +x, −y, +y, −z, +z here) and a bitmask
// describing which of its faces lie on a domain boundary and of which
// kind (symmetry plane or free surface).

// Boundary-condition bits per element face, matching LULESH's elemBC
// encoding conceptually (one symm and one free bit per face).
const (
	XiMSymm = 1 << iota
	XiMFree
	XiPSymm
	XiPFree
	EtaMSymm
	EtaMFree
	EtaPSymm
	EtaPFree
	ZetaMSymm
	ZetaMFree
	ZetaPSymm
	ZetaPFree
)

// Neighbors holds face adjacency for every element of a Hex mesh.
type Neighbors struct {
	// XiM etc. give the element id across the face, or the element's
	// own id on a boundary face (the LULESH convention — the BC mask
	// decides how the limiter treats it).
	XiM, XiP     []int32
	EtaM, EtaP   []int32
	ZetaM, ZetaP []int32
	// BC is the per-element boundary mask.
	BC []int32
}

// BuildNeighbors computes face adjacency and the Sedov-problem boundary
// conditions: symmetry on the −x/−y/−z domain faces, free surface on
// +x/+y/+z, matching the LULESH setup.
func (m *Hex) BuildNeighbors() *Neighbors {
	ee := m.EdgeElems
	n := &Neighbors{
		XiM: make([]int32, m.NumElem), XiP: make([]int32, m.NumElem),
		EtaM: make([]int32, m.NumElem), EtaP: make([]int32, m.NumElem),
		ZetaM: make([]int32, m.NumElem), ZetaP: make([]int32, m.NumElem),
		BC: make([]int32, m.NumElem),
	}
	e := 0
	for pz := 0; pz < ee; pz++ {
		for py := 0; py < ee; py++ {
			for px := 0; px < ee; px++ {
				id := int32(e)
				var bc int32

				if px > 0 {
					n.XiM[e] = id - 1
				} else {
					n.XiM[e] = id
					bc |= XiMSymm
				}
				if px < ee-1 {
					n.XiP[e] = id + 1
				} else {
					n.XiP[e] = id
					bc |= XiPFree
				}

				if py > 0 {
					n.EtaM[e] = id - int32(ee)
				} else {
					n.EtaM[e] = id
					bc |= EtaMSymm
				}
				if py < ee-1 {
					n.EtaP[e] = id + int32(ee)
				} else {
					n.EtaP[e] = id
					bc |= EtaPFree
				}

				if pz > 0 {
					n.ZetaM[e] = id - int32(ee*ee)
				} else {
					n.ZetaM[e] = id
					bc |= ZetaMSymm
				}
				if pz < ee-1 {
					n.ZetaP[e] = id + int32(ee*ee)
				} else {
					n.ZetaP[e] = id
					bc |= ZetaPFree
				}

				n.BC[e] = bc
				e++
			}
		}
	}
	return n
}

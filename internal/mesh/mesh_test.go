package mesh

import "testing"

func TestNewHexCounts(t *testing.T) {
	for _, edge := range []int{1, 2, 3, 7} {
		m := NewHex(edge, 1.0)
		if m.NumElem != edge*edge*edge {
			t.Errorf("edge %d: NumElem=%d", edge, m.NumElem)
		}
		en := edge + 1
		if m.NumNode != en*en*en {
			t.Errorf("edge %d: NumNode=%d", edge, m.NumNode)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("edge %d: %v", edge, err)
		}
	}
}

func TestNewHexPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHex(0) did not panic")
		}
	}()
	NewHex(0, 1)
}

func TestCoordinatesSpanCube(t *testing.T) {
	m := NewHex(4, 2.0)
	var maxX, maxY, maxZ float64
	for i := 0; i < m.NumNode; i++ {
		if m.X[i] > maxX {
			maxX = m.X[i]
		}
		if m.Y[i] > maxY {
			maxY = m.Y[i]
		}
		if m.Z[i] > maxZ {
			maxZ = m.Z[i]
		}
		if m.X[i] < 0 || m.Y[i] < 0 || m.Z[i] < 0 {
			t.Fatalf("negative coordinate at node %d", i)
		}
	}
	if maxX != 2 || maxY != 2 || maxZ != 2 {
		t.Errorf("cube extent %v %v %v, want 2", maxX, maxY, maxZ)
	}
}

func TestElemNodesGeometry(t *testing.T) {
	// For element 0 of a 2³ mesh the corner order must follow the
	// LULESH convention: bottom face counterclockwise, then top face.
	m := NewHex(2, 2.0)
	nl := m.ElemNodes(0)
	wantCoords := [8][3]float64{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	for c, n := range nl {
		got := [3]float64{m.X[n], m.Y[n], m.Z[n]}
		if got != wantCoords[c] {
			t.Errorf("corner %d at %v, want %v", c, got, wantCoords[c])
		}
	}
}

func TestCornerSharingCounts(t *testing.T) {
	// In a 2³ mesh the center node is shared by all 8 elements; corner
	// nodes of the cube belong to exactly 1.
	m := NewHex(2, 1.0)
	counts := make(map[int]int)
	for n := 0; n < m.NumNode; n++ {
		deg := int(m.NodeElemStart[n+1] - m.NodeElemStart[n])
		counts[deg]++
	}
	if counts[8] != 1 {
		t.Errorf("center-degree-8 nodes: %d, want 1", counts[8])
	}
	if counts[1] != 8 {
		t.Errorf("corner-degree-1 nodes: %d, want 8", counts[1])
	}
}

func TestCollectCoords(t *testing.T) {
	m := NewHex(3, 3.0)
	var x, y, z [8]float64
	m.CollectCoords(5, &x, &y, &z)
	nl := m.ElemNodes(5)
	for c := 0; c < 8; c++ {
		if x[c] != m.X[nl[c]] || y[c] != m.Y[nl[c]] || z[c] != m.Z[nl[c]] {
			t.Fatalf("corner %d mismatch", c)
		}
	}
}

func TestSymmetryPlanes(t *testing.T) {
	m := NewHex(3, 1.0)
	for _, n := range m.SymmX {
		if m.X[n] != 0 {
			t.Errorf("SymmX node %d has x=%v", n, m.X[n])
		}
	}
	for _, n := range m.SymmY {
		if m.Y[n] != 0 {
			t.Errorf("SymmY node %d has y=%v", n, m.Y[n])
		}
	}
	for _, n := range m.SymmZ {
		if m.Z[n] != 0 {
			t.Errorf("SymmZ node %d has z=%v", n, m.Z[n])
		}
	}
}

// Package mesh provides the unstructured-view hexahedral mesh substrate
// for the LULESH proxy application: a regular edge³ arrangement of
// hexahedral elements stored the way LULESH stores it — an explicit
// element→node connectivity list ("nodelist") that the solver treats as
// unstructured, plus the inverse node→element-corner adjacency that the
// original LULESH parallelization scheme needs for its gather sweep.
package mesh

import "fmt"

// CornersPerElem is the number of nodes of a hexahedral element.
const CornersPerElem = 8

// Hex is a mesh of edge³ hexahedral elements on (edge+1)³ nodes spanning
// a cube of the given physical side length.
type Hex struct {
	EdgeElems int // elements per edge
	EdgeNodes int // nodes per edge = EdgeElems+1
	NumElem   int
	NumNode   int

	// NodeList holds the 8 node ids of element e at
	// NodeList[8e .. 8e+8) in the standard LULESH corner order:
	// (i,j,k) (i+1,j,k) (i+1,j+1,k) (i,j+1,k) then the k+1 plane.
	NodeList []int32

	// X, Y, Z are the node coordinates.
	X, Y, Z []float64

	// SymmX, SymmY, SymmZ list the node ids on the x=0, y=0 and z=0
	// symmetry planes (the boundary conditions of the Sedov problem).
	SymmX, SymmY, SymmZ []int32

	// NodeElemStart/NodeElemCornerList is the inverse connectivity:
	// the element corners touching node n are
	// NodeElemCornerList[NodeElemStart[n] .. NodeElemStart[n+1]),
	// each encoded as 8*elem + corner. This is the structure the
	// original LULESH force scheme gathers through.
	NodeElemStart      []int32
	NodeElemCornerList []int32
}

// NewHex builds the mesh for edgeElems elements per side over a cube with
// physical side length sideLen.
func NewHex(edgeElems int, sideLen float64) *Hex {
	if edgeElems < 1 {
		panic(fmt.Sprintf("mesh: need at least one element per edge, got %d", edgeElems))
	}
	en := edgeElems + 1
	m := &Hex{
		EdgeElems: edgeElems,
		EdgeNodes: en,
		NumElem:   edgeElems * edgeElems * edgeElems,
		NumNode:   en * en * en,
	}

	// Node coordinates, lexicographic (x fastest), matching LULESH.
	m.X = make([]float64, m.NumNode)
	m.Y = make([]float64, m.NumNode)
	m.Z = make([]float64, m.NumNode)
	h := sideLen / float64(edgeElems)
	idx := 0
	for pz := 0; pz < en; pz++ {
		for py := 0; py < en; py++ {
			for px := 0; px < en; px++ {
				m.X[idx] = h * float64(px)
				m.Y[idx] = h * float64(py)
				m.Z[idx] = h * float64(pz)
				idx++
			}
		}
	}

	// Element connectivity.
	m.NodeList = make([]int32, CornersPerElem*m.NumElem)
	e := 0
	for pz := 0; pz < edgeElems; pz++ {
		for py := 0; py < edgeElems; py++ {
			for px := 0; px < edgeElems; px++ {
				n0 := int32(pz*en*en + py*en + px)
				lnl := m.NodeList[CornersPerElem*e : CornersPerElem*e+8]
				lnl[0] = n0
				lnl[1] = n0 + 1
				lnl[2] = n0 + int32(en) + 1
				lnl[3] = n0 + int32(en)
				lnl[4] = n0 + int32(en*en)
				lnl[5] = n0 + int32(en*en) + 1
				lnl[6] = n0 + int32(en*en+en) + 1
				lnl[7] = n0 + int32(en*en+en)
				e++
			}
		}
	}

	// Symmetry plane node sets.
	for pz := 0; pz < en; pz++ {
		for py := 0; py < en; py++ {
			for px := 0; px < en; px++ {
				n := int32(pz*en*en + py*en + px)
				if px == 0 {
					m.SymmX = append(m.SymmX, n)
				}
				if py == 0 {
					m.SymmY = append(m.SymmY, n)
				}
				if pz == 0 {
					m.SymmZ = append(m.SymmZ, n)
				}
			}
		}
	}

	m.buildInverseConnectivity()
	return m
}

// buildInverseConnectivity constructs the node→element-corner lists.
func (m *Hex) buildInverseConnectivity() {
	counts := make([]int32, m.NumNode+1)
	for _, n := range m.NodeList {
		counts[n+1]++
	}
	for i := 0; i < m.NumNode; i++ {
		counts[i+1] += counts[i]
	}
	m.NodeElemStart = counts
	m.NodeElemCornerList = make([]int32, len(m.NodeList))
	cursor := make([]int32, m.NumNode)
	copy(cursor, counts[:m.NumNode])
	for c, n := range m.NodeList {
		m.NodeElemCornerList[cursor[n]] = int32(c)
		cursor[n]++
	}
}

// ElemNodes returns the 8 node ids of element e as a slice view into
// NodeList (do not mutate).
func (m *Hex) ElemNodes(e int) []int32 {
	return m.NodeList[CornersPerElem*e : CornersPerElem*e+8]
}

// CollectCoords gathers the corner coordinates of element e into the
// provided arrays.
func (m *Hex) CollectCoords(e int, x, y, z *[8]float64) {
	nl := m.ElemNodes(e)
	for c, n := range nl {
		x[c] = m.X[n]
		y[c] = m.Y[n]
		z[c] = m.Z[n]
	}
}

// Validate checks structural invariants of the mesh and the inverse
// connectivity; used by the test suite.
func (m *Hex) Validate() error {
	if len(m.NodeList) != CornersPerElem*m.NumElem {
		return fmt.Errorf("mesh: NodeList length %d for %d elements", len(m.NodeList), m.NumElem)
	}
	for _, n := range m.NodeList {
		if n < 0 || int(n) >= m.NumNode {
			return fmt.Errorf("mesh: node id %d out of range", n)
		}
	}
	// Inverse connectivity must list each corner exactly once.
	seen := make([]bool, len(m.NodeList))
	for n := 0; n < m.NumNode; n++ {
		for k := m.NodeElemStart[n]; k < m.NodeElemStart[n+1]; k++ {
			c := m.NodeElemCornerList[k]
			if c < 0 || int(c) >= len(m.NodeList) {
				return fmt.Errorf("mesh: corner id %d out of range", c)
			}
			if m.NodeList[c] != int32(n) {
				return fmt.Errorf("mesh: corner %d listed under node %d but belongs to node %d", c, n, m.NodeList[c])
			}
			if seen[c] {
				return fmt.Errorf("mesh: corner %d listed twice", c)
			}
			seen[c] = true
		}
	}
	for c, s := range seen {
		if !s {
			return fmt.Errorf("mesh: corner %d missing from inverse connectivity", c)
		}
	}
	want := m.EdgeNodes * m.EdgeNodes
	if len(m.SymmX) != want || len(m.SymmY) != want || len(m.SymmZ) != want {
		return fmt.Errorf("mesh: symmetry plane sizes %d/%d/%d, want %d",
			len(m.SymmX), len(m.SymmY), len(m.SymmZ), want)
	}
	return nil
}

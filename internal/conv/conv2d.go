package conv

import (
	"fmt"

	"spray"
	"spray/internal/num"
)

// Stencil2D is a 2-D cross/box stencil over a row-major rows×cols grid,
// the two-dimensional analogue of the paper's convolution test case. Its
// back-propagation scatters into a 2-D neighborhood, exercising the
// Reducer2D extension.
type Stencil2D[T num.Float] struct {
	// Taps maps (di+R, dj+R) to the weight of offset (di, dj); the
	// matrix must be square with odd side 2R+1.
	Taps [][]T
}

// Radius returns the stencil half-width and validates the tap matrix.
func (s Stencil2D[T]) Radius() int {
	k := len(s.Taps)
	if k == 0 || k%2 == 0 {
		panic(fmt.Sprintf("conv: 2-D stencil needs odd positive side, got %d", k))
	}
	for _, row := range s.Taps {
		if len(row) != k {
			panic("conv: 2-D stencil taps must be square")
		}
	}
	return k / 2
}

// Forward computes the gather stencil over the grid interior:
// out[i][j] = Σ taps[di][dj] · in[i+di-R][j+dj-R].
func (s Stencil2D[T]) Forward(in, out []T, rows, cols int) {
	checkGrid(in, out, rows, cols)
	r := s.Radius()
	for i := r; i < rows-r; i++ {
		for j := r; j < cols-r; j++ {
			var sum T
			for di := 0; di <= 2*r; di++ {
				for dj := 0; dj <= 2*r; dj++ {
					sum += s.Taps[di][dj] * in[(i+di-r)*cols+(j+dj-r)]
				}
			}
			out[i*cols+j] = sum
		}
	}
}

// BackpropSeq is the sequential adjoint scatter of Forward.
func (s Stencil2D[T]) BackpropSeq(seed, out []T, rows, cols int) {
	checkGrid(seed, out, rows, cols)
	r := s.Radius()
	for i := r; i < rows-r; i++ {
		for j := r; j < cols-r; j++ {
			sd := seed[i*cols+j]
			for di := 0; di <= 2*r; di++ {
				for dj := 0; dj <= 2*r; dj++ {
					out[(i+di-r)*cols+(j+dj-r)] += s.Taps[di][dj] * sd
				}
			}
		}
	}
}

// Backprop runs the adjoint scatter in parallel over rows through a 2-D
// SPRAY reducer with the given strategy.
func (s Stencil2D[T]) Backprop(team *spray.Team, st spray.Strategy, seed, out []T, rows, cols int) spray.Reducer2D[T] {
	checkGrid(seed, out, rows, cols)
	r := s.Radius()
	// Each tap row of the neighborhood is contiguous within one grid row,
	// so it is scaled into a scratch buffer and pushed as one 2-D AddN.
	return spray.ReduceFor2D(team, st, out, rows, cols, r, rows-r, spray.Static(),
		func(acc spray.Accessor2D[T], fromRow, toRow int) {
			vals := make([]T, 2*r+1)
			for i := fromRow; i < toRow; i++ {
				for j := r; j < cols-r; j++ {
					sd := seed[i*cols+j]
					for di := 0; di <= 2*r; di++ {
						taps := s.Taps[di]
						for dj := range vals {
							vals[dj] = taps[dj] * sd
						}
						acc.AddN(i+di-r, j-r, vals)
					}
				}
			}
		})
}

func checkGrid[T num.Float](a, b []T, rows, cols int) {
	if len(a) != rows*cols || len(b) != rows*cols {
		panic(fmt.Sprintf("conv: grid size mismatch: %d and %d elements for %dx%d", len(a), len(b), rows, cols))
	}
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("conv: grid %dx%d too small for a stencil", rows, cols))
	}
}

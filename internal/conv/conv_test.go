package conv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spray"
	"spray/internal/num"
)

func randSeed(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(rng.Intn(9) - 4)
	}
	return s
}

func TestBackpropMatchesSequentialAllStrategies(t *testing.T) {
	const n = 3000
	w := Weights3[float64]{WL: 0.25, WC: 0.5, WR: 0.25}
	seed := randSeed(n, 1)
	want := make([]float64, n)
	w.BackpropSeq(seed, want)
	for _, st := range spray.AllStrategies() {
		for _, threads := range []int{1, 4, 7} {
			team := spray.NewTeam(threads)
			out := make([]float64, n)
			w.Backprop(team, st, seed, out)
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
		}
	}
}

// TestRunBackpropScatterMatchesSequential drives the duplicate-heavy
// interleaved-triple scatter form — plain and through the write-combining
// wrapper — and checks exact agreement with the sequential sweep (the
// integer-valued seed makes every summation order exact).
func TestRunBackpropScatterMatchesSequential(t *testing.T) {
	const n = 3000
	w := Weights3[float64]{WL: 0.25, WC: 0.5, WR: 0.25}
	seed := randSeed(n, 4)
	want := make([]float64, n)
	w.BackpropSeq(seed, want)
	for _, st := range []spray.Strategy{
		spray.Atomic(),
		spray.BlockCAS(64),
		spray.Keeper(),
		spray.Auto(64),
		spray.Binned(spray.Atomic()),
		spray.Binned(spray.BlockCAS(64)),
		spray.Binned(spray.Keeper()),
		spray.Binned(spray.Auto(64)),
	} {
		for _, threads := range []int{1, 4, 7} {
			team := spray.NewTeam(threads)
			out := make([]float64, n)
			r := spray.New(st, out, threads)
			w.RunBackpropScatter(team, r, seed)
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
		}
	}
}

// TestBackpropIsAdjointOfForward checks the defining property of
// reverse-mode differentiation: <W u, v> == <u, Wᵀ v> for the linear
// stencil operator W.
func TestBackpropIsAdjointOfForward(t *testing.T) {
	const n = 500
	w := Weights3[float64]{WL: 2, WC: -3, WR: 5}
	u := randSeed(n, 2)
	v := randSeed(n, 3)
	wu := make([]float64, n)
	w.Forward(u, wu)
	wtv := make([]float64, n)
	w.BackpropSeq(v, wtv)
	var lhs, rhs float64
	// Forward writes only the interior, so restrict <Wu, v> there; the
	// adjoint then pairs with u over the full range.
	for i := 1; i < n-1; i++ {
		lhs += wu[i] * v[i]
	}
	for i := 0; i < n; i++ {
		rhs += u[i] * wtv[i]
	}
	if !num.RelClose(lhs, rhs, 1e-9) {
		t.Errorf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestStencilAdjointProperty(t *testing.T) {
	f := func(tapsRaw []int8, seedA, seedB int64) bool {
		width := len(tapsRaw)
		if width%2 == 0 {
			width--
		}
		if width < 1 {
			return true
		}
		taps := make([]float64, width)
		for i := range taps {
			taps[i] = float64(tapsRaw[i]) / 8
		}
		s := Stencil[float64]{Taps: taps}
		const n = 200
		u := randSeed(n, seedA)
		v := randSeed(n, seedB)
		su := make([]float64, n)
		s.Forward(u, su)
		stv := make([]float64, n)
		s.BackpropSeq(v, stv)
		var lhs, rhs float64
		r := s.Radius()
		for i := r; i < n-r; i++ {
			lhs += su[i] * v[i]
		}
		for i := 0; i < n; i++ {
			rhs += u[i] * stv[i]
		}
		return num.RelClose(lhs, rhs, 1e-9) || (lhs == 0 && rhs == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStencilBackpropParallelMatches(t *testing.T) {
	const n = 2000
	s := Stencil[float64]{Taps: []float64{1, -2, 4, -2, 1}}
	seed := randSeed(n, 5)
	want := make([]float64, n)
	s.BackpropSeq(seed, want)
	team := spray.NewTeam(5)
	defer team.Close()
	for _, st := range []spray.Strategy{spray.Atomic(), spray.BlockCAS(256), spray.Keeper(), spray.Builtin()} {
		out := make([]float64, n)
		s.Backprop(team, st, seed, out)
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("%s: diff %v", st, d)
		}
	}
}

func TestRunBackpropReuse(t *testing.T) {
	const n, rounds = 1000, 3
	w := Weights3[float64]{WL: 1, WC: 2, WR: 3}
	seed := randSeed(n, 6)
	want := make([]float64, n)
	for r := 0; r < rounds; r++ {
		w.BackpropSeq(seed, want)
	}
	team := spray.NewTeam(4)
	defer team.Close()
	out := make([]float64, n)
	red := spray.New(spray.BlockLock(128), out, team.Size())
	for r := 0; r < rounds; r++ {
		w.RunBackprop(team, red, seed)
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("reuse diff %v", d)
	}
}

func TestRunBackpropItersPlanMatchesSequential(t *testing.T) {
	const n, rounds = 1500, 4
	w := Weights3[float64]{WL: 1, WC: 2, WR: 3}
	seed := randSeed(n, 11)
	want := make([]float64, n)
	for r := 0; r < rounds; r++ {
		w.BackpropSeq(seed, want)
	}
	team := spray.NewTeam(4)
	defer team.Close()
	out := make([]float64, n)
	// The plan wrapper records the fixed tile pattern on round 1 and
	// executes it for the remaining rounds; integer-valued taps and seeds
	// make the comparison exact.
	red := spray.New(spray.Planned(spray.Atomic()), out, team.Size())
	w.RunBackpropIters(team, red, seed, rounds)
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("planned iterated backprop diff %v", d)
	}
}

func TestForwardBoundariesUntouched(t *testing.T) {
	const n = 64
	w := Weights3[float64]{WL: 1, WC: 1, WR: 1}
	in := randSeed(n, 7)
	out := make([]float64, n)
	out[0], out[n-1] = 42, 43
	w.Forward(in, out)
	if out[0] != 42 || out[n-1] != 43 {
		t.Errorf("forward touched boundaries: %v %v", out[0], out[n-1])
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"len mismatch": func() {
			Weights3[float64]{}.Forward(make([]float64, 5), make([]float64, 6))
		},
		"too short": func() {
			Weights3[float64]{}.BackpropSeq(make([]float64, 2), make([]float64, 2))
		},
		"even stencil": func() {
			Stencil[float64]{Taps: []float64{1, 2}}.Forward(make([]float64, 10), make([]float64, 10))
		},
		"empty stencil": func() {
			Stencil[float64]{}.Radius()
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFloat32Backprop(t *testing.T) {
	const n = 1024
	w := Weights3[float32]{WL: 0.5, WC: 1, WR: 0.5}
	rng := rand.New(rand.NewSource(8))
	seed := make([]float32, n)
	for i := range seed {
		seed[i] = float32(rng.Intn(5))
	}
	want := make([]float32, n)
	w.BackpropSeq(seed, want)
	team := spray.NewTeam(3)
	defer team.Close()
	out := make([]float32, n)
	w.Backprop(team, spray.BlockCAS(128), seed, out)
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("float32 diff %v", d)
	}
}

package conv

import (
	"math/rand"
	"testing"

	"spray"
	"spray/internal/num"
)

func grid(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, rows*cols)
	for i := range g {
		g[i] = float64(rng.Intn(9) - 4)
	}
	return g
}

var cross2D = Stencil2D[float64]{Taps: [][]float64{
	{0, 1, 0},
	{1, -4, 1},
	{0, 1, 0},
}}

func TestStencil2DBackpropMatchesSequential(t *testing.T) {
	const rows, cols = 50, 70
	seed := grid(rows, cols, 1)
	want := make([]float64, rows*cols)
	cross2D.BackpropSeq(seed, want, rows, cols)
	for _, st := range []spray.Strategy{
		spray.Atomic(), spray.BlockCAS(256), spray.Keeper(), spray.Dense(),
		spray.Ordered(), spray.Auto(256),
	} {
		for _, threads := range []int{1, 4} {
			team := spray.NewTeam(threads)
			out := make([]float64, rows*cols)
			cross2D.Backprop(team, st, seed, out, rows, cols)
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
		}
	}
}

func TestStencil2DAdjointIdentity(t *testing.T) {
	// <Su, v>_interior == <u, Sᵀv> for the linear stencil operator S.
	const rows, cols = 40, 30
	u := grid(rows, cols, 2)
	v := grid(rows, cols, 3)
	su := make([]float64, rows*cols)
	cross2D.Forward(u, su, rows, cols)
	stv := make([]float64, rows*cols)
	cross2D.BackpropSeq(v, stv, rows, cols)
	var lhs, rhs float64
	r := cross2D.Radius()
	for i := r; i < rows-r; i++ {
		for j := r; j < cols-r; j++ {
			lhs += su[i*cols+j] * v[i*cols+j]
		}
	}
	for k := range u {
		rhs += u[k] * stv[k]
	}
	if !num.RelClose(lhs, rhs, 1e-9) {
		t.Errorf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestStencil2DFiveByFive(t *testing.T) {
	taps := make([][]float64, 5)
	rng := rand.New(rand.NewSource(4))
	for i := range taps {
		taps[i] = make([]float64, 5)
		for j := range taps[i] {
			taps[i][j] = float64(rng.Intn(5) - 2)
		}
	}
	s := Stencil2D[float64]{Taps: taps}
	const rows, cols = 32, 27
	seed := grid(rows, cols, 5)
	want := make([]float64, rows*cols)
	s.BackpropSeq(seed, want, rows, cols)
	team := spray.NewTeam(3)
	defer team.Close()
	out := make([]float64, rows*cols)
	s.Backprop(team, spray.BlockLock(64), seed, out, rows, cols)
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Errorf("5x5 diff %v", d)
	}
}

func TestStencil2DPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"even side": func() {
			Stencil2D[float64]{Taps: [][]float64{{1, 2}, {3, 4}}}.Radius()
		},
		"ragged": func() {
			Stencil2D[float64]{Taps: [][]float64{{1, 2, 3}, {1}, {1, 2, 3}}}.Radius()
		},
		"grid mismatch": func() {
			cross2D.Forward(make([]float64, 10), make([]float64, 12), 3, 4)
		},
		"grid too small": func() {
			cross2D.Forward(make([]float64, 4), make([]float64, 4), 2, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Package conv implements the paper's first test case (§VI-A): a 1-D
// convolution (a trivially parallel stencil gather) and its
// back-propagation / reverse-mode derivative, which scatters each input's
// contribution to a neighborhood of output locations — the Figure 9 loop
// whose loop-carried reduction dependencies prevent naive parallelization
// and which SPRAY makes parallel with one wrapped array.
package conv

import (
	"fmt"

	"spray"
	"spray/internal/num"
)

// Weights3 is the 3-point stencil of the paper's kernel: left, center,
// right taps.
type Weights3[T num.Float] struct {
	WL, WC, WR T
}

// Forward computes the forward stencil out[i] = wl·in[i-1] + wc·in[i] +
// wr·in[i+1] for i in [1, n-1), a gather loop with no reduction.
func (w Weights3[T]) Forward(in, out []T) {
	checkSameLen(in, out)
	for i := 1; i < len(in)-1; i++ {
		out[i] = w.WL*in[i-1] + w.WC*in[i] + w.WR*in[i+1]
	}
}

// BackpropSeq is the sequential reverse-mode sweep (Figure 9): the
// adjoint of Forward, scattering seed[i] into out[i-1], out[i], out[i+1].
func (w Weights3[T]) BackpropSeq(seed, out []T) {
	checkSameLen(seed, out)
	for i := 1; i < len(seed)-1; i++ {
		s := seed[i]
		out[i-1] += w.WL * s
		out[i] += w.WC * s
		out[i+1] += w.WR * s
	}
}

// Backprop runs the Figure 9 scatter in parallel with the given SPRAY
// strategy and returns the reducer for its memory statistics.
func (w Weights3[T]) Backprop(team *spray.Team, st spray.Strategy, seed, out []T) spray.Reducer[T] {
	checkSameLen(seed, out)
	r := spray.New(st, out, team.Size())
	w.RunBackprop(team, r, seed)
	return r
}

// backpropTile sizes the scratch buffers of the bulk back-propagation:
// large enough to amortize the three per-tile bulk dispatches, small
// enough to stay cache-resident alongside the seed tile.
const backpropTile = 1024

// RunBackprop is the reusable-reducer form of Backprop for iterated
// training-style loops. It drives the reducer through the bulk fast
// path: each tile of iterations is turned into three scaled value runs
// (one per tap) pushed with AddN, so the strategy pays three dynamic
// dispatches per tile instead of three per element. Contributions to an
// output location arrive tap-by-tap instead of iteration-by-iteration —
// the same reassociation any vectorizing compiler applies to the Figure 9
// loop.
func (w Weights3[T]) RunBackprop(team *spray.Team, r spray.Reducer[T], seed []T) {
	w.RunBackpropSched(team, r, seed, spray.Static())
}

// RunBackpropSched is RunBackprop with the loop schedule exposed — the
// stencil sweep is uniform-cost, so it doubles as the balanced-workload
// leg of schedule comparisons (static should win; steal must stay within
// noise of it).
func (w Weights3[T]) RunBackpropSched(team *spray.Team, r spray.Reducer[T], seed []T, sched spray.Schedule) {
	n := len(seed)
	spray.RunReduction(team, r, 1, n-1, sched,
		func(acc spray.Accessor[T], from, to int) {
			bacc := spray.Bulk(acc)
			var vl, vc, vr [backpropTile]T
			for t0 := from; t0 < to; t0 += backpropTile {
				m := min(backpropTile, to-t0)
				tile := seed[t0 : t0+m]
				for j, s := range tile {
					vl[j] = w.WL * s
					vc[j] = w.WC * s
					vr[j] = w.WR * s
				}
				bacc.AddN(t0-1, vl[:m])
				bacc.AddN(t0, vc[:m])
				bacc.AddN(t0+1, vr[:m])
			}
		})
}

// RunBackpropIters runs iters back-propagation sweeps through one
// Reducer — the training-loop shape where the stencil geometry (and so
// every region's AddN pattern) is fixed across epochs while the seed
// values change. With a plan-compiled reducer the first sweep records
// the fixed tile pattern and later sweeps execute race-free, amortizing
// the compile exactly as MKL's inspector/executor amortizes inspection
// over repeated applications.
func (w Weights3[T]) RunBackpropIters(team *spray.Team, r spray.Reducer[T], seed []T, iters int) {
	for it := 0; it < iters; it++ {
		w.RunBackprop(team, r, seed)
	}
}

// RunBackpropScatter drives the Figure 9 loop through the Scatter entry
// point in its natural adjoint order: each tile emits the interleaved
// triple stream (i-1, wl·s), (i, wc·s), (i+1, wr·s) for ascending i —
// one Scatter per tile, three entries per iteration. Every interior
// output location appears three times per tile (right tap of i-1, center
// tap of i, left tap of i+1), so the stream is duplicate-heavy by
// construction: a write-combining reducer (spray.Binned) coalesces the
// three contributions into one flushed update, and because the arrival
// order per index matches the sequential sweep's order, coalescing
// reproduces BackpropSeq's summation order exactly. This is the
// benchmark workload for the binned-vs-unbinned scatter comparison.
func (w Weights3[T]) RunBackpropScatter(team *spray.Team, r spray.Reducer[T], seed []T) {
	n := len(seed)
	spray.RunReduction(team, r, 1, n-1, spray.Static(),
		func(acc spray.Accessor[T], from, to int) {
			bacc := spray.Bulk(acc)
			var idx [3 * backpropTile]int32
			var vals [3 * backpropTile]T
			for t0 := from; t0 < to; t0 += backpropTile {
				m := min(backpropTile, to-t0)
				k := 0
				for j := 0; j < m; j++ {
					i := t0 + j
					s := seed[i]
					idx[k], vals[k] = int32(i-1), w.WL*s
					idx[k+1], vals[k+1] = int32(i), w.WC*s
					idx[k+2], vals[k+2] = int32(i+1), w.WR*s
					k += 3
				}
				bacc.Scatter(idx[:k], vals[:k])
			}
		})
}

// RunBackpropEach is the element-wise form of RunBackprop — one Add per
// tap per iteration, the paper's original loop shape. Kept as the
// reference (and benchmark baseline) for the bulk path.
func (w Weights3[T]) RunBackpropEach(team *spray.Team, r spray.Reducer[T], seed []T) {
	n := len(seed)
	spray.RunReduction(team, r, 1, n-1, spray.Static(),
		func(acc spray.Accessor[T], from, to int) {
			for i := from; i < to; i++ {
				s := seed[i]
				acc.Add(i-1, w.WL*s)
				acc.Add(i, w.WC*s)
				acc.Add(i+1, w.WR*s)
			}
		})
}

// Stencil is a general odd-width 1-D stencil for the wider-radius tests:
// taps[r] is the center weight, taps has length 2r+1.
type Stencil[T num.Float] struct {
	Taps []T
}

// Radius returns the stencil half-width.
func (s Stencil[T]) Radius() int {
	if len(s.Taps) == 0 || len(s.Taps)%2 == 0 {
		panic(fmt.Sprintf("conv: stencil needs odd positive width, got %d taps", len(s.Taps)))
	}
	return len(s.Taps) / 2
}

// Forward computes the gather stencil over the interior.
func (s Stencil[T]) Forward(in, out []T) {
	checkSameLen(in, out)
	r := s.Radius()
	for i := r; i < len(in)-r; i++ {
		var sum T
		for j, w := range s.Taps {
			sum += w * in[i+j-r]
		}
		out[i] = sum
	}
}

// BackpropSeq is the sequential adjoint scatter of Forward.
func (s Stencil[T]) BackpropSeq(seed, out []T) {
	checkSameLen(seed, out)
	r := s.Radius()
	for i := r; i < len(seed)-r; i++ {
		sd := seed[i]
		for j, w := range s.Taps {
			out[i+j-r] += w * sd
		}
	}
}

// Backprop runs the adjoint scatter in parallel with the given strategy.
// Each iteration's tap fan-out is one contiguous run [i-r, i+r], so it is
// scaled into a scratch buffer and pushed with a single AddN.
func (s Stencil[T]) Backprop(team *spray.Team, st spray.Strategy, seed, out []T) spray.Reducer[T] {
	checkSameLen(seed, out)
	r := s.Radius()
	n := len(seed)
	red := spray.New(st, out, team.Size())
	spray.RunReduction(team, red, r, n-r, spray.Static(),
		func(acc spray.Accessor[T], from, to int) {
			bacc := spray.Bulk(acc)
			vals := make([]T, len(s.Taps))
			for i := from; i < to; i++ {
				sd := seed[i]
				for j, w := range s.Taps {
					vals[j] = w * sd
				}
				bacc.AddN(i-r, vals)
			}
		})
	return red
}

func checkSameLen[T num.Float](a, b []T) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("conv: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) < 3 {
		panic(fmt.Sprintf("conv: arrays too short (%d) for a stencil", len(a)))
	}
}

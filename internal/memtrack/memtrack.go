// Package memtrack provides byte-exact accounting of reducer-owned
// allocations. The paper measures reduction-scheme memory overhead as the
// difference in maximum resident set size between the parallel and
// sequential programs, noting ±5 MB run-to-run noise; instrumented
// accounting measures the same quantity (extra memory attributable to the
// reduction scheme) without the noise.
package memtrack

import "sync/atomic"

// Counter accumulates bytes allocated on behalf of one reducer instance.
// It is safe for concurrent use: private per-thread instances record their
// allocations as they happen inside the parallel region.
type Counter struct {
	bytes atomic.Int64
	peak  atomic.Int64
}

// Alloc records n freshly allocated bytes and updates the peak.
func (c *Counter) Alloc(n int64) {
	if c == nil || n == 0 {
		return
	}
	v := c.bytes.Add(n)
	for {
		p := c.peak.Load()
		if v <= p || c.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Free records that n previously counted bytes were released back (e.g. a
// reducer resets per-iteration scratch).
func (c *Counter) Free(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.bytes.Add(-n)
}

// Bytes returns the currently live tracked bytes.
func (c *Counter) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// Peak returns the high-water mark of tracked bytes.
func (c *Counter) Peak() int64 {
	if c == nil {
		return 0
	}
	return c.peak.Load()
}

// Reset zeroes the counter and its peak.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.bytes.Store(0)
	c.peak.Store(0)
}

// SliceBytes returns the heap footprint of a slice of n elements of size
// elem bytes. Helper to keep call sites self-describing.
func SliceBytes(n int, elem uintptr) int64 {
	return int64(n) * int64(elem)
}

package memtrack

import (
	"sync"
	"testing"
)

func TestAllocFreePeak(t *testing.T) {
	var c Counter
	c.Alloc(100)
	c.Alloc(50)
	if c.Bytes() != 150 || c.Peak() != 150 {
		t.Fatalf("after allocs: bytes=%d peak=%d", c.Bytes(), c.Peak())
	}
	c.Free(120)
	if c.Bytes() != 30 {
		t.Errorf("after free: bytes=%d, want 30", c.Bytes())
	}
	if c.Peak() != 150 {
		t.Errorf("peak moved: %d, want 150", c.Peak())
	}
	c.Alloc(60)
	if c.Bytes() != 90 || c.Peak() != 150 {
		t.Errorf("realloc below peak: bytes=%d peak=%d", c.Bytes(), c.Peak())
	}
	c.Alloc(100)
	if c.Peak() != 190 {
		t.Errorf("new peak: %d, want 190", c.Peak())
	}
}

func TestZeroAndNilSafe(t *testing.T) {
	var c Counter
	c.Alloc(0)
	c.Free(0)
	if c.Bytes() != 0 || c.Peak() != 0 {
		t.Errorf("zero ops changed counter: %d/%d", c.Bytes(), c.Peak())
	}
	var nilC *Counter
	nilC.Alloc(10) // must not panic
	nilC.Free(10)
	nilC.Reset()
	if nilC.Bytes() != 0 || nilC.Peak() != 0 {
		t.Errorf("nil counter nonzero")
	}
}

func TestReset(t *testing.T) {
	var c Counter
	c.Alloc(500)
	c.Reset()
	if c.Bytes() != 0 || c.Peak() != 0 {
		t.Errorf("after reset: %d/%d", c.Bytes(), c.Peak())
	}
}

func TestConcurrentAccounting(t *testing.T) {
	var c Counter
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Alloc(3)
			}
			for i := 0; i < each; i++ {
				c.Free(1)
			}
		}()
	}
	wg.Wait()
	want := int64(workers * each * 2)
	if c.Bytes() != want {
		t.Errorf("bytes=%d, want %d", c.Bytes(), want)
	}
	if c.Peak() < want || c.Peak() > int64(workers*each*3) {
		t.Errorf("peak=%d outside [%d,%d]", c.Peak(), want, workers*each*3)
	}
}

func TestSliceBytes(t *testing.T) {
	if got := SliceBytes(10, 8); got != 80 {
		t.Errorf("SliceBytes(10,8)=%d", got)
	}
	if got := SliceBytes(0, 8); got != 0 {
		t.Errorf("SliceBytes(0,8)=%d", got)
	}
}

// TestConcurrentAllocFreePeakInvariants interleaves Alloc and Free across
// goroutines (run under -race) and checks what the lock-free peak CAS loop
// must guarantee: the final balance is exact, the peak never reads below
// the live bytes at any sample, and it never exceeds the theoretical
// maximum of all allocations landing before any free.
func TestConcurrentAllocFreePeakInvariants(t *testing.T) {
	var c Counter
	const workers, rounds, chunk = 8, 2000, 5
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: peak must never lag live bytes
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b, p := c.Bytes(), c.Peak()
				// Bytes is sampled first; it can only have shrunk by the
				// time Peak is read, so peak >= that sample is required.
				if p < b {
					t.Errorf("peak %d < live bytes %d", p, b)
					return
				}
			}
		}
	}()
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			for i := 0; i < rounds; i++ {
				c.Alloc(chunk)
				c.Free(chunk - 1) // net +1 per round
			}
		}()
	}
	workersWG.Wait()
	close(stop)
	wg.Wait()
	want := int64(workers * rounds)
	if c.Bytes() != want {
		t.Errorf("final bytes %d, want %d", c.Bytes(), want)
	}
	if c.Peak() < want || c.Peak() > int64(workers*rounds*chunk) {
		t.Errorf("peak %d outside [%d, %d]", c.Peak(), want, workers*rounds*chunk)
	}
}

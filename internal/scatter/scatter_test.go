package scatter

import (
	"math/rand"
	"reflect"
	"testing"
)

// sinkAdd returns a flush sink that applies entries element-wise to out,
// plus a pointer to a log of flushed (base, end, stream) records for
// order-sensitive assertions.
type flushRec struct {
	base, end int
	idx       []int32
	vals      []float64
}

func recordingSink(out []float64, log *[]flushRec) Flush[float64] {
	return func(base, end int, idx []int32, vals []float64) {
		for j, i := range idx {
			if int(i) < base || int(i) >= end {
				panic("flush entry outside [base,end)")
			}
			out[i] += vals[j]
		}
		if log != nil {
			*log = append(*log, flushRec{
				base: base, end: end,
				idx:  append([]int32(nil), idx...),
				vals: append([]float64(nil), vals...),
			})
		}
	}
}

func TestConfigValidation(t *testing.T) {
	sink := func(base, end int, idx []int32, vals []float64) {}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("non-pow2 block", func() { New(sink, 100, Config{BlockSize: 48}) })
	mustPanic("negative bincap", func() { New(sink, 100, Config{BinCap: -1}) })
	mustPanic("negative maxlive", func() { New(sink, 100, Config{MaxLive: -2}) })
	mustPanic("nil sink", func() { New[float64](nil, 100, Config{}) })
	mustPanic("negative n", func() { New(sink, -1, Config{}) })
	// Defaults fill in.
	b := New(sink, 100, Config{})
	if b.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize = %d, want default %d", b.BlockSize(), DefaultBlockSize)
	}
}

func TestCoalescingAndFlush(t *testing.T) {
	const n = 64
	out := make([]float64, n)
	var log []flushRec
	b := New(recordingSink(out, &log), n, Config{BlockSize: 16, BinCap: 8, MaxLive: 4})

	// Three contributions to index 5, two to 6, one to 20 (second block).
	b.Add(5, 1)
	b.Add(6, 10)
	b.Add(5, 2)
	b.Add(20, 100)
	b.Add(5, 4)
	b.Add(6, 20)
	if got := b.LiveBins(); got != 2 {
		t.Fatalf("LiveBins = %d, want 2", got)
	}
	if len(log) != 0 {
		t.Fatalf("premature flush: %v", log)
	}
	b.Flush()
	if out[5] != 7 || out[6] != 30 || out[20] != 100 {
		t.Fatalf("out[5,6,20] = %v %v %v, want 7 30 100", out[5], out[6], out[20])
	}
	if got := b.TakeCoalesced(); got != 3 {
		t.Fatalf("TakeCoalesced = %d, want 3 (two dup 5s, one dup 6)", got)
	}
	if got := b.TakeCoalesced(); got != 0 {
		t.Fatalf("TakeCoalesced after reset = %d, want 0", got)
	}
	// First-touch flush order: block 0 (index 5 first) before block 1.
	if len(log) != 2 || log[0].base != 0 || log[1].base != 16 {
		t.Fatalf("flush order wrong: %+v", log)
	}
	// Entries in first-arrival order with coalesced values.
	if !reflect.DeepEqual(log[0].idx, []int32{5, 6}) || !reflect.DeepEqual(log[0].vals, []float64{7, 30}) {
		t.Fatalf("block-0 flush = %+v", log[0])
	}
	if b.LiveBins() != 0 {
		t.Fatalf("LiveBins after Flush = %d", b.LiveBins())
	}
}

func TestBinFullAutoFlush(t *testing.T) {
	const n = 32
	out := make([]float64, n)
	var log []flushRec
	b := New(recordingSink(out, &log), n, Config{BlockSize: 16, BinCap: 4, MaxLive: 4})
	for i := int32(0); i < 4; i++ {
		b.Add(i, 1)
	}
	if len(log) != 1 {
		t.Fatalf("bin-full flush count = %d, want 1", len(log))
	}
	// Bin stays armed after an auto-flush and refills cleanly.
	if b.LiveBins() != 1 {
		t.Fatalf("LiveBins after auto-flush = %d, want 1", b.LiveBins())
	}
	b.Add(0, 5) // previously flushed index: slot must have been reset
	b.Flush()
	if out[0] != 6 {
		t.Fatalf("out[0] = %v, want 6", out[0])
	}
}

func TestMaxLiveOverflowDrains(t *testing.T) {
	const n = 16 * 8
	out := make([]float64, n)
	var log []flushRec
	b := New(recordingSink(out, &log), n, Config{BlockSize: 16, BinCap: 8, MaxLive: 2})
	b.Add(0, 1)  // block 0
	b.Add(16, 1) // block 1
	b.Add(32, 1) // block 2: overflows MaxLive, drains blocks 0 and 1 first
	if len(log) != 2 || log[0].base != 0 || log[1].base != 16 {
		t.Fatalf("overflow drain = %+v, want blocks 0,1 in first-touch order", log)
	}
	if b.LiveBins() != 1 {
		t.Fatalf("LiveBins after overflow = %d, want 1 (the new bin)", b.LiveBins())
	}
	b.Flush()
	for _, i := range []int{0, 16, 32} {
		if out[i] != 1 {
			t.Fatalf("out[%d] = %v, want 1", i, out[i])
		}
	}
}

func TestTailBlockEndClamped(t *testing.T) {
	// n not a multiple of BlockSize: the last block's end must clamp to n.
	const n = 20
	out := make([]float64, n)
	var log []flushRec
	b := New(recordingSink(out, &log), n, Config{BlockSize: 16, BinCap: 8, MaxLive: 2})
	b.Add(19, 3)
	b.Flush()
	if len(log) != 1 || log[0].base != 16 || log[0].end != n {
		t.Fatalf("tail flush = %+v, want base 16 end %d", log, n)
	}
}

// TestExactEquivalence checks binned staging against the plain element-wise
// loop, bitwise, using small-integer values where float addition is exact —
// so any association order yields identical bits and the only thing under
// test is that no contribution is lost, duplicated, or misrouted.
func TestExactEquivalence(t *testing.T) {
	streams := map[string]func(rng *rand.Rand, n, m int) []int32{
		"uniform": func(rng *rand.Rand, n, m int) []int32 {
			idx := make([]int32, m)
			for j := range idx {
				idx[j] = int32(rng.Intn(n))
			}
			return idx
		},
		"duplicate-heavy": func(rng *rand.Rand, n, m int) []int32 {
			idx := make([]int32, m)
			hot := int32(rng.Intn(n))
			for j := range idx {
				if rng.Intn(4) != 0 {
					idx[j] = hot + int32(rng.Intn(8))%int32(n)
					if idx[j] >= int32(n) {
						idx[j] -= int32(n)
					}
				} else {
					idx[j] = int32(rng.Intn(n))
				}
			}
			return idx
		},
		"block-crossing": func(rng *rand.Rand, n, m int) []int32 {
			// Alternate across block boundaries to defeat bin locality.
			idx := make([]int32, m)
			for j := range idx {
				idx[j] = int32((j * 17) % n)
			}
			return idx
		},
		"descending": func(rng *rand.Rand, n, m int) []int32 {
			idx := make([]int32, m)
			for j := range idx {
				idx[j] = int32(n - 1 - j%n)
			}
			return idx
		},
	}
	for name, gen := range streams {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.Intn(300)
				m := rng.Intn(2000)
				idx := gen(rng, n, m)
				vals := make([]float64, m)
				for j := range vals {
					vals[j] = float64(rng.Intn(9) - 4) // exact in float64
				}
				want := make([]float64, n)
				for j, i := range idx {
					want[i] += vals[j]
				}
				got := make([]float64, n)
				b := New(recordingSink(got, nil), n, Config{
					BlockSize: 1 << uint(rng.Intn(7)), // 1..64
					BinCap:    1 + rng.Intn(16),
					MaxLive:   1 + rng.Intn(8),
				})
				// Mix Add and Scatter entry points.
				half := m / 2
				for j := 0; j < half; j++ {
					b.Add(idx[j], vals[j])
				}
				b.Scatter(idx[half:], vals[half:])
				b.Flush()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (n=%d m=%d): binned result diverged", trial, n, m)
				}
			}
		})
	}
}

// TestDeterministicReplay runs the identical stream through two engines
// and asserts the emitted flush streams are identical record-for-record —
// the determinism the strategy-level bitwise tests build on.
func TestDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, m = 500, 5000
	idx := make([]int32, m)
	vals := make([]float64, m)
	for j := range idx {
		idx[j] = int32(rng.Intn(n))
		vals[j] = (rng.Float64() - 0.5) * 1e3 // rounding-hostile
	}
	run := func() (out []float64, log []flushRec) {
		out = make([]float64, n)
		b := New(recordingSink(out, &log), n, Config{BlockSize: 64, BinCap: 16, MaxLive: 4})
		b.Scatter(idx, vals)
		b.Flush()
		return
	}
	out1, log1 := run()
	out2, log2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Fatal("two runs over the same stream emitted different flush streams")
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatal("two runs over the same stream produced different results")
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	const n = 1 << 14
	out := make([]float64, n)
	sink := func(base, end int, idx []int32, vals []float64) {
		for j, i := range idx {
			out[i] += vals[j]
		}
	}
	b := New(sink, n, Config{BlockSize: 256, BinCap: 64, MaxLive: 8})
	idx := make([]int32, 1024)
	vals := make([]float64, 1024)
	rng := rand.New(rand.NewSource(3))
	for j := range idx {
		idx[j] = int32(rng.Intn(n))
		vals[j] = 1
	}
	// Warm the pools: touch more blocks than MaxLive so every path
	// (arm-from-pool, overflow drain, bin-full emit) has run.
	b.Scatter(idx, vals)
	b.Flush()
	allocs := testing.AllocsPerRun(100, func() {
		b.Scatter(idx, vals)
		b.Flush()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Scatter+Flush allocates %v/op, want 0", allocs)
	}
}

func TestFootprintGrowsOnceThenStable(t *testing.T) {
	var charged int64
	b := New(func(base, end int, idx []int32, vals []float64) {}, 1<<12,
		Config{BlockSize: 64, BinCap: 16, MaxLive: 4, OnAlloc: func(n int64) { charged += n }})
	if charged != b.FootprintBytes() {
		t.Fatalf("OnAlloc total %d != FootprintBytes %d after New", charged, b.FootprintBytes())
	}
	for i := int32(0); i < 1<<12; i++ {
		b.Add(i, 1)
	}
	b.Flush()
	after := b.FootprintBytes()
	if charged != after {
		t.Fatalf("OnAlloc total %d != FootprintBytes %d", charged, after)
	}
	// A second identical pass reuses pooled storage: footprint frozen.
	for i := int32(0); i < 1<<12; i++ {
		b.Add(i, 1)
	}
	b.Flush()
	if b.FootprintBytes() != after {
		t.Fatalf("footprint grew on steady-state pass: %d -> %d", after, b.FootprintBytes())
	}
	// Bounded by MaxLive regardless of block count: 4 live bins max.
	maxBins := int64(4) * (64*4 + 16*4 + 16*8)
	table := int64((1 << 12) / 64 * 3 * 24)
	if after > table+maxBins {
		t.Fatalf("footprint %d exceeds MaxLive bound %d", after, table+maxBins)
	}
}

func TestFloat32(t *testing.T) {
	const n = 100
	out := make([]float32, n)
	b := New(func(base, end int, idx []int32, vals []float32) {
		for j, i := range idx {
			out[i] += vals[j]
		}
	}, n, Config{BlockSize: 32, BinCap: 4, MaxLive: 2})
	for i := int32(0); i < n; i++ {
		b.Add(i%n, 1)
		b.Add(i%n, 2)
	}
	b.Flush()
	for i := range out {
		if out[i] != 3 {
			t.Fatalf("out[%d] = %v, want 3", i, out[i])
		}
	}
}

// FuzzBinnedEquivalence drives the engine with arbitrary index/value
// streams — duplicate-heavy, out-of-order, block-crossing, whatever the
// fuzzer invents — and cross-checks against the element-wise loop using
// exact small-integer values (bitwise-stable under any association).
func FuzzBinnedEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0, 255, 17, 17, 17}, uint8(4), uint8(3), uint8(2))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, uint8(1), uint8(1), uint8(1))
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, bshift, bcap, mlive uint8) {
		const n = 256
		cfg := Config{
			BlockSize: 1 << (bshift % 9), // 1..256
			BinCap:    1 + int(bcap%32),  // 1..32
			MaxLive:   1 + int(mlive%16), // 1..16
		}
		want := make([]float64, n)
		got := make([]float64, n)
		b := New(func(base, end int, idx []int32, vals []float64) {
			if base%cfg.BlockSize != 0 || end > n || end <= base {
				t.Fatalf("bad flush window [%d,%d)", base, end)
			}
			seen := map[int32]bool{}
			for j, i := range idx {
				if int(i) < base || int(i) >= end {
					t.Fatalf("index %d outside flush window [%d,%d)", i, base, end)
				}
				if seen[i] {
					t.Fatalf("duplicate index %d survived coalescing", i)
				}
				seen[i] = true
				got[i] += vals[j]
			}
		}, n, cfg)
		for p, by := range raw {
			i := int32(by)
			v := float64(p%7 - 3) // exact integers
			want[i] += v
			b.Add(i, v)
		}
		b.Flush()
		if !reflect.DeepEqual(got, want) {
			t.Fatal("binned result diverged from element-wise loop")
		}
	})
}

// Package scatter implements software write-combining for gathered batch
// updates: a per-thread binning engine that stages (index, value) pairs
// into cache-sized bins keyed by destination block, coalesces duplicate
// indices inside each bin, and flushes whole bins at once.
//
// The engine converts an arrival-ordered scatter stream — where every
// foreign or cold index pays a full cache miss, CAS retry, or queue
// append at the strategy layer — into destination-ordered batches: each
// flush presents the strategy with a run of unique indices that all land
// in one block, so an atomic reducer issues one CAS pass per warm cache
// region instead of per element, a block reducer resolves its block
// pointer exactly once per flush, and a keeper classifies the whole bin
// against one ownership range in O(1).
//
// Determinism: the engine is a pure function of its input stream. Entries
// coalesce in first-arrival order (later duplicates fold into the earlier
// entry's value), a bin flushes the moment it holds BinCap entries, all
// live bins flush in first-touch order when the MaxLive bound is hit, and
// Flush drains the remainder in first-touch order. Contributions to
// *distinct* indices therefore commute bitwise (they touch independent
// memory), while contributions to the *same* index are pre-summed in
// arrival order — the one reassociation write-combining inherently
// performs, surfaced to callers through the flush-stream contract
// documented on Add.
//
// Memory: all bin storage (entry arrays, per-offset slot tables) is
// pooled and reused across flushes and regions. A steady-state workload
// re-binning the same access pattern performs zero allocations; the
// retained capacity is reported through FootprintBytes and the OnAlloc
// hook so owning reducers can charge it to their memory accounting.
package scatter

import (
	"fmt"
	"math/bits"
	"unsafe"

	"spray/internal/num"
)

// Default engine geometry: 1024-element blocks keep a bin's destination
// span inside a few cache lines of the target array, 256-entry bins
// amortize the flush dispatch ~256x, and 128 live bins bound the pooled
// footprint regardless of how scattered the stream is.
const (
	DefaultBlockSize = 1024
	DefaultBinCap    = 256
	DefaultMaxLive   = 128
)

// Config tunes one binning engine.
type Config struct {
	// BlockSize is the destination-block width in elements (a positive
	// power of two; 0 selects DefaultBlockSize). Strategies with their
	// own block structure should align it with theirs so a flush never
	// straddles a strategy block.
	BlockSize int
	// BinCap is the number of staged entries that triggers an automatic
	// bin flush (0 selects DefaultBinCap). A bin never holds more than
	// BinCap entries, so entry arrays are allocated once at exactly this
	// capacity and never grow.
	BinCap int
	// MaxLive bounds the number of simultaneously materialized bins
	// (0 selects DefaultMaxLive): touching the MaxLive+1-th distinct
	// block flushes every other live bin, capping the engine footprint
	// at MaxLive*(BlockSize*4 + BinCap*(4+sizeof(T))) bytes per thread.
	MaxLive int
	// OnAlloc, when set, is invoked with the byte size of every backing
	// allocation the engine performs (bins table, slot tables, entry
	// arrays). Capacity is pooled and never returned, matching the
	// capacity-retention accounting rule of the reducers.
	OnAlloc func(bytes int64)
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.BinCap == 0 {
		c.BinCap = DefaultBinCap
	}
	if c.MaxLive == 0 {
		c.MaxLive = DefaultMaxLive
	}
	return c
}

// Flush receives one drained bin: every index in idx lies in the
// destination block [base, end), indices are unique (duplicates were
// coalesced), and entries appear in first-arrival order. The callback
// must not retain the slices past the call — the engine reuses them.
type Flush[T num.Float] func(base, end int, idx []int32, vals []T)

// bin is the staging state of one destination block. slot is nil while
// the bin is dormant; an armed bin holds a per-offset table mapping the
// intra-block offset to its entry position (-1 = absent) plus the entry
// arrays, all drawn from the engine pools.
type bin[T num.Float] struct {
	idx  []int32
	vals []T
	slot []int32
}

// Binner is a single-threaded write-combining engine in front of one
// flush sink. It is not safe for concurrent use — each team member owns
// one (mirroring the reducers' Private accessors).
type Binner[T num.Float] struct {
	flush   Flush[T]
	shift   uint
	mask    int32
	bsize   int
	binCap  int
	maxLive int
	n       int

	bins []bin[T]
	live []int32 // armed blocks in first-touch order

	poolSlot [][]int32
	poolIdx  [][]int32
	poolVal  [][]T

	coalesced  uint64
	footprint  int64
	onAlloc    func(int64)
	onCoalesce func(int32) // per coalesced index, nil when unobserved
}

// New builds an engine over the index space [0, n) flushing through f.
func New[T num.Float](f Flush[T], n int, cfg Config) *Binner[T] {
	cfg = cfg.withDefaults()
	if cfg.BlockSize < 1 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic(fmt.Sprintf("scatter: block size must be a positive power of two, got %d", cfg.BlockSize))
	}
	if cfg.BinCap < 1 {
		panic(fmt.Sprintf("scatter: bin capacity must be positive, got %d", cfg.BinCap))
	}
	if cfg.MaxLive < 1 {
		panic(fmt.Sprintf("scatter: live-bin bound must be positive, got %d", cfg.MaxLive))
	}
	if f == nil {
		panic("scatter: nil flush sink")
	}
	if n < 0 {
		panic(fmt.Sprintf("scatter: negative index space %d", n))
	}
	nblocks := (n + cfg.BlockSize - 1) / cfg.BlockSize
	b := &Binner[T]{
		flush:   f,
		shift:   uint(bits.TrailingZeros(uint(cfg.BlockSize))),
		mask:    int32(cfg.BlockSize - 1),
		bsize:   cfg.BlockSize,
		binCap:  cfg.BinCap,
		maxLive: cfg.MaxLive,
		n:       n,
		bins:    make([]bin[T], nblocks),
		onAlloc: cfg.OnAlloc,
	}
	b.charge(int64(nblocks) * int64(3*24)) // bins table: three slice headers per block
	return b
}

func (b *Binner[T]) charge(bytes int64) {
	b.footprint += bytes
	if b.onAlloc != nil {
		b.onAlloc(bytes)
	}
}

// BlockSize returns the configured destination-block width.
func (b *Binner[T]) BlockSize() int { return b.bsize }

// SetOnCoalesce installs (nil: removes) an observer invoked with the
// index of every duplicate the engine coalesces inside a bin — the bin
// flush collision feed of the contention profiler. The unobserved path
// pays one predictable nil check per coalesce, in line with the
// telemetry gate convention.
func (b *Binner[T]) SetOnCoalesce(f func(int32)) { b.onCoalesce = f }

// Add stages one contribution out[i] += v.
//
// Ordering contract: the engine emits, through its flush sink, exactly
// one entry per (index, flush-epoch) whose value is the arrival-order sum
// of the contributions staged for that index since its last flush.
// Relative order of entries for *different* indices follows bin flush
// order; relative order of the flush epochs of one index follows staging
// order. Callers needing the precise emitted stream can capture it with a
// recording Flush sink — the engine is deterministic.
func (b *Binner[T]) Add(i int32, v T) {
	blk := i >> b.shift
	bn := &b.bins[blk]
	if bn.slot == nil {
		b.arm(blk)
	}
	off := i & b.mask
	if s := bn.slot[off]; s >= 0 {
		bn.vals[s] += v
		b.coalesced++
		if b.onCoalesce != nil {
			b.onCoalesce(i)
		}
		return
	}
	bn.slot[off] = int32(len(bn.idx))
	bn.idx = append(bn.idx, i)
	bn.vals = append(bn.vals, v)
	if len(bn.idx) == b.binCap {
		b.emit(bn)
	}
}

// Scatter stages a gathered batch: out[idx[j]] += vals[j] for ascending j.
func (b *Binner[T]) Scatter(idx []int32, vals []T) {
	for j, i := range idx {
		blk := i >> b.shift
		bn := &b.bins[blk]
		if bn.slot == nil {
			b.arm(blk)
		}
		off := i & b.mask
		if s := bn.slot[off]; s >= 0 {
			bn.vals[s] += vals[j]
			b.coalesced++
			if b.onCoalesce != nil {
				b.onCoalesce(i)
			}
			continue
		}
		bn.slot[off] = int32(len(bn.idx))
		bn.idx = append(bn.idx, i)
		bn.vals = append(bn.vals, vals[j])
		if len(bn.idx) == b.binCap {
			b.emit(bn)
		}
	}
}

// arm materializes block blk's bin from the pools (or fresh allocations)
// and registers it live. Hitting the MaxLive bound first flushes and
// disarms every other live bin, so the pools are guaranteed to have
// storage available and the footprint stays bounded.
func (b *Binner[T]) arm(blk int32) {
	if len(b.live) >= b.maxLive {
		b.drainLive()
	}
	bn := &b.bins[blk]
	if n := len(b.poolSlot); n > 0 {
		bn.slot = b.poolSlot[n-1] // pooled tables come back reset to -1
		b.poolSlot = b.poolSlot[:n-1]
		bn.idx = b.poolIdx[len(b.poolIdx)-1][:0]
		b.poolIdx = b.poolIdx[:len(b.poolIdx)-1]
		bn.vals = b.poolVal[len(b.poolVal)-1][:0]
		b.poolVal = b.poolVal[:len(b.poolVal)-1]
	} else {
		bn.slot = make([]int32, b.bsize)
		for o := range bn.slot {
			bn.slot[o] = -1
		}
		bn.idx = make([]int32, 0, b.binCap)
		bn.vals = make([]T, 0, b.binCap)
		var zero T
		b.charge(int64(b.bsize)*4 + int64(b.binCap)*4 + int64(b.binCap)*int64(unsafe.Sizeof(zero)))
	}
	b.live = append(b.live, blk)
}

// emit flushes one armed bin's entries and resets it for refill; the bin
// stays armed (a bin that just filled is likely hot) and live.
func (b *Binner[T]) emit(bn *bin[T]) {
	if len(bn.idx) == 0 {
		return
	}
	base := int(bn.idx[0]) &^ int(b.mask)
	end := base + b.bsize
	if end > b.n {
		end = b.n
	}
	b.flush(base, end, bn.idx, bn.vals)
	for _, i := range bn.idx {
		bn.slot[i&b.mask] = -1
	}
	bn.idx = bn.idx[:0]
	bn.vals = bn.vals[:0]
}

// drainLive flushes every live bin in first-touch order and disarms it,
// returning its storage to the pools.
func (b *Binner[T]) drainLive() {
	for _, blk := range b.live {
		bn := &b.bins[blk]
		b.emit(bn)
		b.poolSlot = append(b.poolSlot, bn.slot)
		b.poolIdx = append(b.poolIdx, bn.idx[:0])
		b.poolVal = append(b.poolVal, bn.vals[:0])
		bn.slot, bn.idx, bn.vals = nil, nil, nil
	}
	b.live = b.live[:0]
}

// Flush drains every live bin in first-touch order and returns their
// storage to the pools. Call at the end of a chunk or region (the binned
// accessor's Done does).
func (b *Binner[T]) Flush() { b.drainLive() }

// TakeCoalesced returns the number of duplicate contributions merged
// since the last call, and resets the count.
func (b *Binner[T]) TakeCoalesced() uint64 {
	c := b.coalesced
	b.coalesced = 0
	return c
}

// FootprintBytes reports the engine's cumulative backing allocation.
// Storage is pooled, never freed, so this is both current and peak.
func (b *Binner[T]) FootprintBytes() int64 { return b.footprint }

// LiveBins reports the number of currently materialized bins
// (observability for tests and tuning).
func (b *Binner[T]) LiveBins() int { return len(b.live) }

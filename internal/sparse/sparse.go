// Package sparse is the sparse linear-algebra substrate for the paper's
// CSR transpose-matrix-vector experiment (§VI-B): COO and CSR storage,
// CSR transposition (equivalently CSC construction), Matrix Market I/O,
// synthetic generators matched to the evaluation matrices, and the
// data-dependent scatter kernel y += Aᵀx that SPRAY parallelizes.
package sparse

import (
	"fmt"
	"sort"

	"spray/internal/num"
)

// COO is a coordinate-format sparse matrix, the assembly/interchange
// format: unsorted (row, col, value) triples.
type COO[T num.Float] struct {
	Rows, Cols int
	I, J       []int32
	V          []T
}

// NewCOO creates an empty COO matrix with the given shape.
func NewCOO[T num.Float](rows, cols int) *COO[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	return &COO[T]{Rows: rows, Cols: cols}
}

// Add appends the entry a[i,j] += v. Duplicates are legal and are summed
// during CSR conversion, the usual finite-element assembly convention.
func (c *COO[T]) Add(i, j int, v T) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, int32(i))
	c.J = append(c.J, int32(j))
	c.V = append(c.V, v)
}

// NNZ returns the number of stored triples (before duplicate folding).
func (c *COO[T]) NNZ() int { return len(c.V) }

// CSR is a compressed-sparse-row matrix: row i's entries live at
// positions RowPtr[i] .. RowPtr[i+1] of Col/Val, with Col ascending within
// each row. A CSR matrix read as "columns of the transpose" is a CSC
// matrix; the package follows the paper in storing everything as CSR.
type CSR[T num.Float] struct {
	Rows, Cols int
	RowPtr     []int64
	Col        []int32
	Val        []T
}

// NNZ returns the number of stored entries.
func (a *CSR[T]) NNZ() int { return len(a.Val) }

// Bytes returns the heap footprint of the matrix arrays.
func (a *CSR[T]) Bytes() int64 {
	var v T
	return int64(len(a.RowPtr))*8 + int64(len(a.Col))*4 + int64(len(a.Val))*int64(sizeofT(v))
}

func sizeofT[T num.Float](v T) int {
	// float32 and float64 are the only instantiations.
	if _, ok := any(v).(float32); ok {
		return 4
	}
	return 8
}

// FromCOO converts a COO matrix to CSR, summing duplicate entries and
// sorting columns within each row.
func FromCOO[T num.Float](c *COO[T]) *CSR[T] {
	// Count entries per row, then bucket.
	counts := make([]int64, c.Rows+1)
	for _, i := range c.I {
		counts[i+1]++
	}
	for r := 0; r < c.Rows; r++ {
		counts[r+1] += counts[r]
	}
	rowPtr := counts // counts is now the row pointer of the un-deduped matrix
	col := make([]int32, len(c.J))
	val := make([]T, len(c.V))
	cursor := make([]int64, c.Rows)
	copy(cursor, rowPtr[:c.Rows])
	for k := range c.I {
		r := c.I[k]
		p := cursor[r]
		col[p] = c.J[k]
		val[p] = c.V[k]
		cursor[r] = p + 1
	}
	// Sort within rows and fold duplicates in place.
	outPtr := make([]int64, c.Rows+1)
	var w int64
	for r := 0; r < c.Rows; r++ {
		lo, hi := rowPtr[r], rowPtr[r+1]
		seg := rowSeg[T]{col: col[lo:hi], val: val[lo:hi]}
		sort.Sort(seg)
		outPtr[r] = w
		for k := lo; k < hi; k++ {
			if w > outPtr[r] && col[w-1] == col[k] {
				val[w-1] += val[k]
			} else {
				col[w] = col[k]
				val[w] = val[k]
				w++
			}
		}
	}
	outPtr[c.Rows] = w
	return &CSR[T]{Rows: c.Rows, Cols: c.Cols, RowPtr: outPtr, Col: col[:w], Val: val[:w]}
}

type rowSeg[T num.Float] struct {
	col []int32
	val []T
}

func (s rowSeg[T]) Len() int           { return len(s.col) }
func (s rowSeg[T]) Less(i, j int) bool { return s.col[i] < s.col[j] }
func (s rowSeg[T]) Swap(i, j int) {
	s.col[i], s.col[j] = s.col[j], s.col[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// Transpose returns Aᵀ in CSR form (equivalently, A in CSC form). This is
// the inspection step the MKL inspector/executor substitute performs when
// operation hints are supplied.
func (a *CSR[T]) Transpose() *CSR[T] {
	t := &CSR[T]{Rows: a.Cols, Cols: a.Rows}
	t.RowPtr = make([]int64, a.Cols+1)
	for _, j := range a.Col {
		t.RowPtr[j+1]++
	}
	for r := 0; r < a.Cols; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	t.Col = make([]int32, a.NNZ())
	t.Val = make([]T, a.NNZ())
	cursor := make([]int64, a.Cols)
	copy(cursor, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			p := cursor[j]
			t.Col[p] = int32(i)
			t.Val[p] = a.Val[k]
			cursor[j] = p + 1
		}
	}
	return t
}

// MulVec computes y = A·x sequentially (y is overwritten). This is the
// race-free gather kernel; parallelizing it needs no reduction.
func (a *CSR[T]) MulVec(x, y []T) {
	a.checkDims(x, y, false)
	for i := 0; i < a.Rows; i++ {
		var sum T
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		y[i] = sum
	}
}

// TMulVecSeq computes y += Aᵀ·x sequentially — the paper's Figure 10
// scatter loop and the baseline every parallel strategy is checked
// against.
func (a *CSR[T]) TMulVecSeq(x, y []T) {
	a.checkDims(x, y, true)
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.Col[k]] += a.Val[k] * xi
		}
	}
}

func (a *CSR[T]) checkDims(x, y []T, transpose bool) {
	xi, yi := a.Cols, a.Rows
	if transpose {
		xi, yi = a.Rows, a.Cols
	}
	if len(x) != xi || len(y) != yi {
		panic(fmt.Sprintf("sparse: dimension mismatch: %dx%d (transpose=%v) with x[%d], y[%d]",
			a.Rows, a.Cols, transpose, len(x), len(y)))
	}
}

// Validate checks CSR structural invariants and returns the first
// violation, for use by tests and the Matrix Market reader.
func (a *CSR[T]) Validate() error {
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d for %d rows", len(a.RowPtr), a.Rows)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != int64(len(a.Col)) || len(a.Col) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent pointers/arrays")
	}
	for r := 0; r < a.Rows; r++ {
		if a.RowPtr[r] > a.RowPtr[r+1] {
			return fmt.Errorf("sparse: RowPtr decreasing at row %d", r)
		}
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.Col[k] < 0 || int(a.Col[k]) >= a.Cols {
				return fmt.Errorf("sparse: column %d out of range at row %d", a.Col[k], r)
			}
			if k > a.RowPtr[r] && a.Col[k-1] >= a.Col[k] {
				return fmt.Errorf("sparse: columns not strictly ascending in row %d", r)
			}
		}
	}
	return nil
}

// Bandwidth returns the maximum |i - j| over stored entries, the property
// that distinguishes the paper's two test matrices.
func (a *CSR[T]) Bandwidth() int {
	var bw int
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - int(a.Col[k])
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

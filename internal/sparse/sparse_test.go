package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spray/internal/num"
)

// denseOf expands a CSR matrix for reference computations.
func denseOf(a *CSR[float64]) [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		d[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.Col[k]] += a.Val[k]
		}
	}
	return d
}

func randomCOO(rng *rand.Rand, rows, cols, nnz int) *COO[float64] {
	c := NewCOO[float64](rows, cols)
	for e := 0; e < nnz; e++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), float64(rng.Intn(9)-4))
	}
	return c
}

func TestFromCOOFoldsDuplicatesAndSorts(t *testing.T) {
	c := NewCOO[float64](3, 4)
	c.Add(1, 2, 5)
	c.Add(1, 0, 1)
	c.Add(1, 2, -2) // duplicate of (1,2)
	c.Add(0, 3, 7)
	c.Add(2, 2, 4)
	a := FromCOO(c)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 4 {
		t.Errorf("NNZ=%d, want 4", a.NNZ())
	}
	d := denseOf(a)
	if d[1][2] != 3 || d[1][0] != 1 || d[0][3] != 7 || d[2][2] != 4 {
		t.Errorf("values wrong: %v", d)
	}
}

func TestFromCOOProperty(t *testing.T) {
	f := func(seed int64, rowsRaw, colsRaw, nnzRaw uint8) bool {
		rows := int(rowsRaw)%20 + 1
		cols := int(colsRaw)%20 + 1
		nnz := int(nnzRaw) % 200
		rng := rand.New(rand.NewSource(seed))
		c := randomCOO(rng, rows, cols, nnz)
		// Reference accumulation.
		want := make(map[[2]int32]float64)
		for k := range c.I {
			want[[2]int32{c.I[k], c.J[k]}] += c.V[k]
		}
		a := FromCOO(c)
		if a.Validate() != nil {
			return false
		}
		got := make(map[[2]int32]float64)
		for i := 0; i < a.Rows; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				got[[2]int32{int32(i), a.Col[k]}] = a.Val[k]
			}
		}
		if len(got) > len(want) {
			return false
		}
		for key, v := range want {
			if got[key] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := FromCOO(randomCOO(rng, 17, 23, 120))
	att := a.Transpose().Transpose()
	if att.Rows != a.Rows || att.Cols != a.Cols || att.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz %d", att.Rows, att.Cols, att.NNZ())
	}
	da, dt := denseOf(a), denseOf(att)
	for i := range da {
		for j := range da[i] {
			if da[i][j] != dt[i][j] {
				t.Fatalf("(%d,%d): %v vs %v", i, j, da[i][j], dt[i][j])
			}
		}
	}
	if err := att.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTMulVecSeqMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := FromCOO(randomCOO(rng, 40, 30, 300))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(rng.Intn(7) - 3)
	}
	y1 := make([]float64, a.Cols)
	a.TMulVecSeq(x, y1)
	at := a.Transpose()
	y2 := make([]float64, a.Cols)
	at.MulVec(x, y2)
	if d := num.MaxAbsDiff(y1, y2); d > 1e-12 {
		t.Errorf("scatter vs transposed gather diff %v", d)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := FromCOO(randomCOO(rng, 25, 35, 200))
	d := denseOf(a)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, a.Rows)
	a.MulVec(x, y)
	for i := range y {
		var want float64
		for j := range x {
			want += d[i][j] * x[j]
		}
		if !num.RelClose(y[i], want, 1e-12) {
			t.Fatalf("row %d: %v vs %v", i, y[i], want)
		}
	}
}

func TestDimensionPanics(t *testing.T) {
	a := FromCOO(randomCOO(rand.New(rand.NewSource(1)), 5, 7, 10))
	for name, fn := range map[string]func(){
		"MulVec x":     func() { a.MulVec(make([]float64, 5), make([]float64, 5)) },
		"TMulVecSeq y": func() { a.TMulVecSeq(make([]float64, 5), make([]float64, 5)) },
		"COO bounds":   func() { NewCOO[float64](2, 2).Add(2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGenerators(t *testing.T) {
	a := Banded[float32](5000, 5000, 9, 40, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if bw := a.Bandwidth(); bw > 40 {
		t.Errorf("bandwidth %d exceeds requested 40", bw)
	}
	perRow := float64(a.NNZ()) / 5000
	if perRow < 5 || perRow > 9 {
		t.Errorf("entries per row %.1f outside [5,9]", perRow)
	}
	r := Random[float64](100, 80, 500, 2)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NNZ() < 450 || r.NNZ() > 500 {
		t.Errorf("random NNZ=%d", r.NNZ())
	}
	g := Graph[float32](2000, 4, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NNZ() < 2000 {
		t.Errorf("graph too sparse: %d edges", g.NNZ())
	}
}

func TestPaperMatrixProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix generation is slow under -short")
	}
	s3 := S3DKT3M2Like[float32](1)
	if s3.Rows != 90449 || s3.Cols != 90449 {
		t.Errorf("s3dkt3m2-like shape %dx%d", s3.Rows, s3.Cols)
	}
	// Paper: 1.9M nonzeros, narrow band.
	if s3.NNZ() < 1_500_000 || s3.NNZ() > 2_100_000 {
		t.Errorf("s3dkt3m2-like NNZ=%d", s3.NNZ())
	}
	if bw := s3.Bandwidth(); bw > 600 {
		t.Errorf("s3dkt3m2-like bandwidth %d", bw)
	}
	if err := s3.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCSRBytesPositive(t *testing.T) {
	a := Random[float32](50, 50, 100, 1)
	if a.Bytes() <= 0 {
		t.Errorf("Bytes=%d", a.Bytes())
	}
	b := Random[float64](50, 50, 100, 1)
	if b.Bytes() <= a.Bytes() {
		t.Errorf("float64 matrix not bigger: %d vs %d", b.Bytes(), a.Bytes())
	}
}

func TestBandwidth(t *testing.T) {
	c := NewCOO[float64](10, 10)
	c.Add(0, 0, 1)
	c.Add(3, 7, 1)
	c.Add(9, 2, 1)
	a := FromCOO(c)
	if bw := a.Bandwidth(); bw != 7 {
		t.Errorf("bandwidth=%d, want 7", bw)
	}
}

package sparse

import (
	"math/rand"

	"spray/internal/num"
)

// The two matrices of the paper's transpose-matrix-vector evaluation are
// not redistributable inside this offline workspace, so the generators
// below synthesize matrices with the same performance-determining
// properties: dimensions, nonzero count, and bandwidth (which controls
// whether the result vector fits in cache and how much update locality /
// conflict a reduction strategy sees). The Matrix Market reader in mm.go
// loads the real files when available.

// S3DKT3M2Like mirrors the Matrix Market s3dkt3m2 matrix: 90,449
// rows/columns and ~1.9M stored entries concentrated in a narrow band
// (a finite-element shell problem, "almost diagonal" per the paper).
func S3DKT3M2Like[T num.Float](seed int64) *CSR[T] {
	return Banded[T](90449, 90449, 21, 600, seed)
}

// DebrLike mirrors the UF collection debr matrix: 1,048,576 rows/columns
// and ~4.1M entries with a broad band, too large for cache.
func DebrLike[T num.Float](seed int64) *CSR[T] {
	return Banded[T](1048576, 1048576, 4, 500000, seed)
}

// Banded generates a rows×cols matrix with avgPerRow entries per row
// placed uniformly inside a band of half-width halfBand around the
// diagonal. Values are uniform in (0, 1]. The pattern is structurally
// symmetric-ish in distribution but stored and used as a general matrix,
// exactly how the paper treats its symmetric inputs.
func Banded[T num.Float](rows, cols, avgPerRow, halfBand int, seed int64) *CSR[T] {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO[T](rows, cols)
	for i := 0; i < rows; i++ {
		// Always keep the diagonal (when it exists) so rows are nonempty.
		if i < cols {
			c.Add(i, i, T(rng.Float64()+0.5))
		}
		for e := 1; e < avgPerRow; e++ {
			off := rng.Intn(2*halfBand+1) - halfBand
			j := i + off
			if j < 0 || j >= cols {
				continue
			}
			c.Add(i, j, T(rng.Float64()+0.01))
		}
	}
	return FromCOO(c)
}

// Random generates a rows×cols matrix with exactly nnz entries at
// uniformly random positions (duplicates folded, so the final count can
// be marginally lower). Used by tests and the PageRank example.
func Random[T num.Float](rows, cols, nnz int, seed int64) *CSR[T] {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO[T](rows, cols)
	for e := 0; e < nnz; e++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), T(rng.Float64()+0.01))
	}
	return FromCOO(c)
}

// Graph generates the CSR adjacency matrix of a random directed graph
// with out-degree spread following a crude power law, a stand-in for the
// GAP-style PageRank workload the paper cites as the graph analogue of
// transpose-SpMV.
func Graph[T num.Float](nodes, avgDegree int, seed int64) *CSR[T] {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO[T](nodes, nodes)
	for u := 0; u < nodes; u++ {
		deg := 1 + rng.Intn(2*avgDegree)
		if rng.Intn(32) == 0 { // occasional hub
			deg *= 8
		}
		for e := 0; e < deg; e++ {
			var v int
			if rng.Intn(4) == 0 { // preferential-ish: low ids are popular
				v = rng.Intn(1 + nodes/16)
			} else {
				v = rng.Intn(nodes)
			}
			c.Add(u, v, 1)
		}
	}
	return FromCOO(c)
}

package sparse

import (
	"spray"
	"spray/internal/num"
)

// TMulVec computes y += Aᵀ·x in parallel using the given SPRAY strategy:
// rows are split across the team (the paper's outer loop, default static
// schedule) and the data-dependent column updates scatter through the
// reducer. The returned Reducer exposes the strategy's memory overhead.
func TMulVec[T num.Float](team *spray.Team, st spray.Strategy, a *CSR[T], x, y []T) spray.Reducer[T] {
	a.checkDims(x, y, true)
	r := spray.New(st, y, team.Size())
	RunTMulVec(team, r, a, x)
	return r
}

// RunTMulVec runs one y += Aᵀ·x region through an existing Reducer
// wrapping y, for callers that apply the product repeatedly (iterative
// solvers, PageRank) and want to reuse the reducer's internal state.
//
// Each CSR row's updates are a gathered batch whose index list already
// exists (a.Col): the row's values are scaled by x[i] into a per-thread
// scratch buffer and pushed with one Scatter per row, so the reducer
// pays one dynamic dispatch per row instead of one per nonzero.
func RunTMulVec[T num.Float](team *spray.Team, r spray.Reducer[T], a *CSR[T], x []T) {
	RunTMulVecSched(team, r, a, x, spray.Static())
}

// RunTMulVecSched is RunTMulVec with an explicit loop schedule. Chunked
// schedules (StaticChunk, Dynamic) give reducers with a mid-region drain
// (keeper, and binned wrappers over it) chunk boundaries inside each
// member's row range, so inbound foreign work is applied while the region
// runs instead of piling up until Finalize.
func RunTMulVecSched[T num.Float](team *spray.Team, r spray.Reducer[T], a *CSR[T], x []T, s spray.Schedule) {
	spray.RunReduction(team, r, 0, a.Rows, s,
		func(acc spray.Accessor[T], from, to int) {
			bacc := spray.Bulk(acc)
			var vals []T
			for i := from; i < to; i++ {
				xi := x[i]
				k0, k1 := a.RowPtr[i], a.RowPtr[i+1]
				n := int(k1 - k0)
				if n == 0 {
					continue
				}
				if cap(vals) < n {
					vals = make([]T, n)
				}
				vals = vals[:n]
				row := a.Val[k0:k1]
				for k, v := range row {
					vals[k] = v * xi
				}
				bacc.Scatter(a.Col[k0:k1], vals)
			}
		})
}

// RunTMulVecIters applies y += Aᵀ·x for iters rounds through one
// Reducer — the iterative-solver shape (power iteration, PageRank,
// repeated SpMV in MKL's inspector/executor benchmarks) where the matrix
// structure, and therefore every region's scatter index pattern, is
// identical across rounds. That makes it the amortization workload for
// the plan-compiled wrapper: round 1 records and compiles, rounds 2..N
// execute race-free, and the one-time inspection cost divides away as
// iters grows.
func RunTMulVecIters[T num.Float](team *spray.Team, r spray.Reducer[T], a *CSR[T], x []T, iters int) {
	for it := 0; it < iters; it++ {
		RunTMulVec(team, r, a, x)
	}
}

// RunTMulVecEach is the element-wise form of RunTMulVec — one Add per
// nonzero, the paper's original loop shape. Kept as the reference (and
// benchmark baseline) for the bulk path.
func RunTMulVecEach[T num.Float](team *spray.Team, r spray.Reducer[T], a *CSR[T], x []T) {
	spray.RunReduction(team, r, 0, a.Rows, spray.Static(),
		func(acc spray.Accessor[T], from, to int) {
			for i := from; i < to; i++ {
				xi := x[i]
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					acc.Add(int(a.Col[k]), a.Val[k]*xi)
				}
			}
		})
}

package sparse

import (
	"math/rand"
	"testing"

	"spray"
	"spray/internal/num"
)

func TestTMulVecAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := FromCOO(randomCOO(rng, 300, 250, 2500))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(rng.Intn(7) - 3)
	}
	want := make([]float64, a.Cols)
	a.TMulVecSeq(x, want)
	for _, st := range spray.AllStrategies() {
		for _, threads := range []int{1, 4} {
			team := spray.NewTeam(threads)
			y := make([]float64, a.Cols)
			r := TMulVec(team, st, a, x, y)
			team.Close()
			if d := num.MaxAbsDiff(y, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
			if r == nil {
				t.Errorf("%s: nil reducer", st)
			}
		}
	}
}

func TestRunTMulVecIterated(t *testing.T) {
	// PageRank-style repeated application through one reused reducer.
	rng := rand.New(rand.NewSource(12))
	a := FromCOO(randomCOO(rng, 200, 200, 1500))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(rng.Intn(5))
	}
	const rounds = 4
	want := make([]float64, a.Cols)
	for r := 0; r < rounds; r++ {
		a.TMulVecSeq(x, want)
	}
	team := spray.NewTeam(3)
	defer team.Close()
	y := make([]float64, a.Cols)
	red := spray.New(spray.BlockCAS(64), y, team.Size())
	for r := 0; r < rounds; r++ {
		RunTMulVec(team, red, a, x)
	}
	if d := num.MaxAbsDiff(y, want); d != 0 {
		t.Errorf("iterated diff %v", d)
	}
}

func TestTMulVecAccumulatesIntoExisting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := FromCOO(randomCOO(rng, 50, 60, 300))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, a.Cols)
	for i := range want {
		want[i] = 10
	}
	a.TMulVecSeq(x, want)
	team := spray.NewTeam(2)
	defer team.Close()
	y := make([]float64, a.Cols)
	for i := range y {
		y[i] = 10
	}
	TMulVec(team, spray.Keeper(), a, x, y)
	if d := num.MaxAbsDiff(y, want); d != 0 {
		t.Errorf("+= semantics broken: diff %v", d)
	}
}

func TestTMulVecDimensionPanic(t *testing.T) {
	a := Random[float64](10, 12, 30, 1)
	team := spray.NewTeam(2)
	defer team.Close()
	defer func() {
		if recover() == nil {
			t.Error("mismatched y did not panic")
		}
	}()
	TMulVec(team, spray.Atomic(), a, make([]float64, 10), make([]float64, 10))
}
